// Simulated OpenMP/OmpSs runtime system (paper §II "MUSA injects runtime
// system API calls ... effectively simulating the runtime system, including
// scheduling and synchronization for the desired number of simulated cores").
//
// Replays a Region's task instances (tasks / parallel-for chunks with
// dependencies and critical sections) onto N simulated cores with:
//   * FIFO-by-readiness list scheduling,
//   * a serialised task-dispatch stage with constant software overhead
//     (the runtime bottleneck HYDRO hits above 2.5 GHz in Fig. 9a),
//   * global-lock serialisation for `critical` tasks,
//   * an optional memory-bandwidth contention pass: when the aggregate
//     DRAM demand of concurrently running tasks exceeds the node's channel
//     capacity, the memory-bound fraction of every task dilates accordingly
//     (this is how LULESH's 4→8-channel speedup materialises).
//
// Produces the region makespan plus a task-execution timeline (Fig. 3).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/region.hpp"

namespace musa::cpusim {

/// Per-task-type timing obtained from detailed core simulation.
struct TaskTiming {
  double seconds_per_work = 1e-6;  // base duration of a work-1.0 task
  double mem_stall_frac = 0.0;     // fraction of time stalled on memory
  double dram_gbps = 0.0;          // DRAM demand while running
};

/// Ready-queue ordering of the simulated runtime scheduler.
enum class SchedPolicy : std::uint8_t {
  kFifo,  // creation order (OpenMP default-ish)
  kLpt,   // longest processing time first — imbalance-tolerant
  kSpt,   // shortest processing time first — latency-oriented
};

constexpr const char* sched_policy_name(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kLpt: return "lpt";
    case SchedPolicy::kSpt: return "spt";
  }
  return "?";
}

struct RuntimeConfig {
  int cores = 1;
  double dispatch_overhead_s = 150e-9;  // serialized per-task runtime cost
  double bw_capacity_gbps = 0.0;        // 0 = no bandwidth contention pass
  SchedPolicy policy = SchedPolicy::kFifo;
};

/// One scheduled execution interval (for timeline rendering / Fig. 3).
struct TimelineSeg {
  int core = 0;
  double start = 0.0;
  double end = 0.0;
  int task_type = 0;
};

struct NodeResult {
  double seconds = 0.0;          // region makespan
  double busy_seconds = 0.0;     // Σ task durations (all cores)
  double avg_concurrency = 0.0;  // busy_seconds / seconds
  double contention_factor = 1.0;  // applied memory dilation (≥ 1)
  double mem_gbps = 0.0;         // achieved DRAM bandwidth at node level
  std::vector<TimelineSeg> timeline;

  double busy_fraction(int cores) const {
    return seconds > 0 && cores > 0 ? busy_seconds / (seconds * cores) : 0.0;
  }
};

class RuntimeSim {
 public:
  /// `timings` is indexed by TaskInstance::type.
  NodeResult run(const trace::Region& region,
                 const std::vector<TaskTiming>& timings,
                 const RuntimeConfig& config) const;

 private:
  NodeResult schedule(const trace::Region& region,
                      const std::vector<double>& durations,
                      const RuntimeConfig& config) const;
};

}  // namespace musa::cpusim
