// Core microarchitecture configurations (paper Table I, "Core OoO").
#pragma once

#include <string>
#include <vector>

namespace musa::cpusim {

/// Out-of-order core resources. The four presets span the paper's design
/// space from a lean near-in-order FP-capable core to an aggressive
/// 8-issue machine.
struct CoreConfig {
  std::string label;
  int rob = 180;          // reorder-buffer entries
  int issue_width = 4;    // dispatch/commit width (instructions/cycle)
  int store_buffer = 100; // in-flight stores
  int alus = 3;           // integer ALUs
  int fpus = 3;           // floating-point units (full vector width each)
  int lsus = 2;           // load/store ports (lean cores have one)
  int irf = 130;          // integer physical register file
  int frf = 70;           // FP physical register file

  /// A scalar index of OoO capability used by the PCA analysis (§V-C).
  double ooo_capability() const {
    return rob + irf + frf + 10.0 * issue_width;
  }
};

inline CoreConfig core_low_end() {
  return {.label = "lowend", .rob = 40, .issue_width = 2, .store_buffer = 20,
          .alus = 1, .fpus = 3, .lsus = 1, .irf = 30, .frf = 50};
}
inline CoreConfig core_medium() {
  return {.label = "medium", .rob = 180, .issue_width = 4,
          .store_buffer = 100, .alus = 3, .fpus = 3, .lsus = 2, .irf = 130,
          .frf = 70};
}
inline CoreConfig core_high() {
  return {.label = "high", .rob = 224, .issue_width = 6, .store_buffer = 120,
          .alus = 4, .fpus = 3, .lsus = 2, .irf = 180, .frf = 100};
}
inline CoreConfig core_aggressive() {
  return {.label = "aggressive", .rob = 300, .issue_width = 8,
          .store_buffer = 150, .alus = 5, .fpus = 4, .lsus = 2, .irf = 210,
          .frf = 120};
}

/// All Table I presets in the paper's normalisation order
/// (figures normalise against "aggressive").
inline std::vector<CoreConfig> core_presets() {
  return {core_aggressive(), core_low_end(), core_high(), core_medium()};
}

}  // namespace musa::cpusim
