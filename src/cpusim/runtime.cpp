#include "cpusim/runtime.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "common/check.hpp"
#include "common/deadline.hpp"

namespace musa::cpusim {

NodeResult RuntimeSim::schedule(const trace::Region& region,
                                const std::vector<double>& durations,
                                const RuntimeConfig& config) const {
  const auto& tasks = region.tasks;
  const std::size_t n = tasks.size();

  // Dependency bookkeeping. The dependents adjacency is laid out CSR-style
  // (one offsets array + one flat edge array): schedule() runs once per
  // design point on the sweep hot path, where a vector-of-vectors costs an
  // allocation per task.
  std::vector<int> indegree(n, 0);
  std::vector<std::int32_t> dep_offset(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::int32_t d : tasks[i].deps) {
      MUSA_CHECK_MSG(d >= 0 && static_cast<std::size_t>(d) < i,
                     "task dependency must reference an earlier task");
      ++indegree[i];
      ++dep_offset[d + 1];
    }
  }
  for (std::size_t i = 0; i < n; ++i) dep_offset[i + 1] += dep_offset[i];
  std::vector<std::int32_t> dep_list(dep_offset[n]);
  {
    std::vector<std::int32_t> cursor(dep_offset.begin(),
                                     dep_offset.end() - 1);
    for (std::size_t i = 0; i < n; ++i)
      for (std::int32_t d : tasks[i].deps)
        dep_list[cursor[d]++] = static_cast<std::int32_t>(i);
  }

  // Ready tasks ordered by readiness time, then by the configured policy
  // (FIFO by creation order; LPT/SPT by task duration), with the task index
  // as the deterministic tiebreaker.
  using Ready = std::tuple<double, double, std::int32_t>;
  std::priority_queue<Ready, std::vector<Ready>, std::greater<>> ready;
  auto policy_key = [&](std::int32_t idx) {
    switch (config.policy) {
      case SchedPolicy::kFifo: return 0.0;
      case SchedPolicy::kLpt: return -durations[idx];
      case SchedPolicy::kSpt: return durations[idx];
    }
    return 0.0;
  };
  auto push_ready = [&](double at, std::int32_t idx) {
    ready.emplace(at, policy_key(idx), idx);
  };
  for (std::size_t i = 0; i < n; ++i)
    if (indegree[i] == 0) push_ready(0.0, static_cast<std::int32_t>(i));

  // Earliest-free core as a min-heap keyed (free_time, core): pops the
  // smallest free time, ties broken by the lowest core index — exactly the
  // first-minimum a linear scan would pick, at O(log cores) per task.
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>, std::greater<>>
      core_heap;
  for (int c = 0; c < config.cores; ++c) core_heap.emplace(0.0, c);
  std::vector<double> done(n, 0.0);
  double sched_free = 0.0;  // serialized dispatch stage of the runtime
  double lock_free = 0.0;   // global lock for `critical` tasks

  NodeResult result;
  result.timeline.reserve(n);
  std::size_t completed = 0;

  while (!ready.empty()) {
    deadline::poll();
    const auto [task_ready, key, idx] = ready.top();
    (void)key;
    ready.pop();

    // Earliest-free core executes the task.
    const auto [core_at, core] = core_heap.top();
    core_heap.pop();

    // The runtime's dispatch stage is a serial software resource.
    const double dispatch_at = std::max({task_ready, core_at, sched_free});
    sched_free = dispatch_at + config.dispatch_overhead_s;

    double start = sched_free;
    if (tasks[idx].critical) start = std::max(start, lock_free);
    const double end = start + durations[idx];
    if (tasks[idx].critical) lock_free = end;

    core_heap.emplace(end, core);
    done[idx] = end;
    ++completed;
    result.busy_seconds += durations[idx];
    result.timeline.push_back(
        {.core = core, .start = start, .end = end,
         .task_type = tasks[idx].type});
    result.seconds = std::max(result.seconds, end);

    for (std::int32_t e = dep_offset[idx]; e < dep_offset[idx + 1]; ++e) {
      const std::int32_t dep = dep_list[e];
      if (--indegree[dep] == 0) {
        // Ready when the latest dependency finished.
        double at = 0.0;
        for (std::int32_t d : tasks[dep].deps) at = std::max(at, done[d]);
        push_ready(at, dep);
      }
    }
  }

  MUSA_CHECK_MSG(completed == n, "dependency cycle: region did not drain");
  result.avg_concurrency =
      result.seconds > 0 ? result.busy_seconds / result.seconds : 0.0;
  return result;
}

NodeResult RuntimeSim::run(const trace::Region& region,
                           const std::vector<TaskTiming>& timings,
                           const RuntimeConfig& config) const {
  MUSA_CHECK_MSG(config.cores >= 1, "need at least one core");
  MUSA_CHECK_MSG(!region.tasks.empty(), "region has no tasks");

  std::vector<double> durations(region.tasks.size());
  double bytes_total = 0.0;
  double demand_weighted = 0.0;  // Σ gbps_i · d_i  (per-task demand · time)
  for (std::size_t i = 0; i < region.tasks.size(); ++i) {
    const auto& t = region.tasks[i];
    MUSA_CHECK_MSG(t.type >= 0 &&
                       static_cast<std::size_t>(t.type) < timings.size(),
                   "task type has no timing entry");
    durations[i] = timings[t.type].seconds_per_work * t.work;
    bytes_total += timings[t.type].dram_gbps * 1e9 * durations[i];
    demand_weighted += timings[t.type].dram_gbps * durations[i];
  }

  // Pass 1: no contention.
  NodeResult base = schedule(region, durations, config);

  double factor = 1.0;
  if (config.bw_capacity_gbps > 0 && base.busy_seconds > 0) {
    // Average per-running-task demand × average concurrency = node demand.
    // Memory time dilates with an open-queueing utilisation law: latency
    // grows sharply as the channels approach saturation (ρ → 1), which is
    // what detailed DRAM simulation shows near the bandwidth wall.
    const double avg_task_gbps = demand_weighted / base.busy_seconds;
    const double node_demand = avg_task_gbps * base.avg_concurrency;
    const double rho =
        std::min(0.92, node_demand / config.bw_capacity_gbps);
    factor = 1.0 + 0.15 * rho / (1.0 - rho);
  }

  if (factor > 1.001) {
    // Pass 2: dilate the memory-bound fraction of every task.
    for (std::size_t i = 0; i < region.tasks.size(); ++i) {
      const auto& tm = timings[region.tasks[i].type];
      durations[i] = durations[i] * (1.0 - tm.mem_stall_frac) +
                     durations[i] * tm.mem_stall_frac * factor;
    }
    NodeResult adjusted = schedule(region, durations, config);
    adjusted.contention_factor = factor;
    adjusted.mem_gbps =
        adjusted.seconds > 0 ? bytes_total / adjusted.seconds / 1e9 : 0.0;
    return adjusted;
  }

  base.contention_factor = 1.0;
  base.mem_gbps = base.seconds > 0 ? bytes_total / base.seconds / 1e9 : 0.0;
  return base;
}

}  // namespace musa::cpusim
