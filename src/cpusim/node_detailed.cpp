#include "cpusim/node_detailed.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace musa::cpusim {

NodeDetailedResult run_node_detailed(const trace::KernelProfile& kernel,
                                     const NodeDetailedConfig& config) {
  MUSA_CHECK_MSG(config.cores >= 1, "need at least one core");
  MUSA_CHECK_MSG(config.instrs_per_core > 0, "need a trace slice");

  cachesim::HierarchyConfig caches = config.caches;
  caches.num_cores = config.cores;
  cachesim::MemHierarchy hierarchy(caches);
  dramsim::DramSystem dram(config.dram_timing, config.dram_channels);

  NodeDetailedResult result;
  result.per_core.assign(config.cores, CoreStats{});

  // Functional warm-up of every core's private caches and the shared L3,
  // interleaved so L3 occupancy reflects concurrent working sets.
  std::vector<trace::KernelSource> sources;
  sources.reserve(config.cores);
  for (int c = 0; c < config.cores; ++c) {
    trace::KernelProfile slice = kernel;
    // Each core works a disjoint slice of the global arrays.
    slice.address_offset = static_cast<std::uint64_t>(c) << 28;
    sources.emplace_back(std::move(slice), config.instrs_per_core * 2,
                         0x9e37 + 131 * c);
  }
  isa::Instr in;
  for (std::uint64_t i = 0; i < config.instrs_per_core; ++i) {
    for (int c = 0; c < config.cores; ++c) {
      if (!sources[c].next(in)) continue;
      if (isa::is_mem(in.op))
        hierarchy.access(c, in.addr, in.op == isa::OpClass::kStore);
    }
  }
  hierarchy.reset_stats();
  dram.reset_counters();

  // Timed execution in round-robin *time quanta*: within each round every
  // core advances its local clock to the same global deadline, pushing its
  // slice of the stream through the shared hierarchy and DRAM. Core clocks
  // therefore stay within one quantum of each other, and the channels see
  // the cores' *combined* offered load on a coherent timeline — queueing
  // under shared bandwidth emerges without a cycle-interleaved engine.
  constexpr double kQuantumCycles = 500.0;
  std::vector<double> core_clock(config.cores, 0.0);
  std::vector<bool> done(config.cores, false);
  double deadline = kQuantumCycles;
  int active = config.cores;
  while (active > 0) {
    for (int c = 0; c < config.cores; ++c) {
      if (done[c]) continue;
      CoreStats& acc = result.per_core[c];
      const std::uint64_t remaining =
          config.instrs_per_core > acc.scalar_instrs
              ? config.instrs_per_core - acc.scalar_instrs
              : 0;
      if (remaining == 0 || core_clock[c] >= deadline) {
        if (remaining == 0) {
          done[c] = true;
          --active;
        }
        continue;
      }
      CoreModel core(config.core, config.freq, hierarchy, dram, c);
      const CoreStats chunk =
          core.run(sources[c], {.vector_bits = config.vector_bits,
                                .max_scalar_instrs = remaining,
                                .start_cycle = core_clock[c],
                                .max_cycle = deadline});
      if (chunk.scalar_instrs == 0) {
        // Source drained (the fusion pass may consume a few buffered lanes
        // at each chunk boundary, so the stream can end slightly short of
        // the nominal target).
        done[c] = true;
        --active;
        continue;
      }
      core_clock[c] += chunk.cycles;
      acc.cycles += chunk.cycles;
      acc.fused_ops += chunk.fused_ops;
      acc.scalar_instrs += chunk.scalar_instrs;
      acc.dram_reads += chunk.dram_reads;
      acc.dram_writes += chunk.dram_writes;
      for (int k = 0; k < isa::kNumOpClasses; ++k) {
        acc.class_ops[k] += chunk.class_ops[k];
        acc.class_lanes[k] += chunk.class_lanes[k];
      }
      if (acc.scalar_instrs >= config.instrs_per_core) {
        done[c] = true;
        --active;
      }
    }
    deadline += kQuantumCycles;
  }

  double total_cycles = 0.0;
  std::uint64_t total_instrs = 0;
  for (int c = 0; c < config.cores; ++c) {
    CoreStats& s = result.per_core[c];
    s.l1_accesses = hierarchy.l1_stats(c).accesses;
    s.l1_misses = hierarchy.l1_stats(c).misses;
    s.l2_accesses = hierarchy.l2_stats(c).accesses;
    s.l2_misses = hierarchy.l2_stats(c).misses;
    total_cycles += s.cycles;
    total_instrs += s.scalar_instrs;
  }

  result.avg_cpi = total_cycles / static_cast<double>(total_instrs);
  result.l3_mpki =
      1000.0 * static_cast<double>(hierarchy.l3_stats().misses) /
      static_cast<double>(total_instrs);
  const auto counters = dram.total_counters();
  const double span_s =
      config.freq.cycles_to_seconds(total_cycles / config.cores);
  result.dram_gbps =
      span_s > 0 ? 64.0 *
                       static_cast<double>(counters.reads + counters.writes) /
                       span_s / 1e9
                 : 0.0;
  return result;
}

}  // namespace musa::cpusim
