#include "cpusim/core_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "isa/latencies.hpp"
#include "trace/instr_source.hpp"

namespace musa::cpusim {

namespace {
constexpr double kStoreCommitLatency = 1.0;  // store data into the buffer
}

CoreModel::CoreModel(const CoreConfig& config, Frequency freq,
                     cachesim::MemHierarchy& hierarchy,
                     dramsim::DramSystem& dram, int core_id)
    : config_(config),
      freq_(freq),
      hierarchy_(hierarchy),
      dram_(dram),
      core_id_(core_id) {
  MUSA_CHECK_MSG(config.rob > 0 && config.issue_width > 0, "bad core config");
  MUSA_CHECK_MSG(config.alus > 0 && config.fpus > 0 && config.lsus > 0,
                 "core needs FUs");
  MUSA_CHECK_MSG(config.irf > 0 && config.frf > 0 && config.store_buffer > 0,
                 "core needs registers and a store buffer");
}

double CoreModel::fu_acquire(std::vector<double>& pool, double ready,
                             double busy) {
  // Pick the earliest-free unit; pools are ≤ 8 entries, linear scan is fine.
  std::size_t best = 0;
  for (std::size_t i = 1; i < pool.size(); ++i)
    if (pool[i] < pool[best]) best = i;
  const double start = std::max(ready, pool[best]);
  pool[best] = start + busy;
  return start;
}

double CoreModel::mem_access(const isa::FusedInstr& op, double issue_cycle,
                             bool is_write, CoreStats& stats) {
  const bool prefetch_on = prefetch_enabled_;
  // A fused memory op touches `lanes` addresses `stride` bytes apart; every
  // distinct cache line is accessed (so bandwidth and cache state are fully
  // charged — the paper's fusion model "doubles the size to account for
  // memory bandwidth"), while the op's load-to-use latency is that of the
  // leading line: trailing lines stream behind it, matching the paper's
  // deliberately optimistic vectorisation model (§III).
  const double period = freq_.period_ns();
  double lead = -1.0;
  std::uint64_t prev_line = ~0ull;
  for (int lane = 0; lane < op.lanes; ++lane) {
    const std::uint64_t addr =
        op.first.addr + static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(lane) * op.stride);
    const std::uint64_t line = addr / cachesim::kLineBytes;
    if (line == prev_line) continue;  // coalesced with the previous lane
    prev_line = line;

    const cachesim::MemOutcome out =
        hierarchy_.access(core_id_, addr, is_write);
    double lat = out.latency_cycles;
    const double issue_ns = issue_cycle * period;
    if (out.dram_read) {
      // Line-fill buffer hit: a prefetch already fetched (or is fetching)
      // this line; pay only the residual time.
      const auto pf = prefetch_on ? prefetcher_.inflight.find(line)
                                  : prefetcher_.inflight.end();
      if (pf != prefetcher_.inflight.end()) {
        lat = std::max<double>(out.latency_cycles,
                               (pf->second - issue_ns) / period);
        prefetcher_.inflight.erase(pf);
      } else {
        ++stats.dram_reads;
        const double done_ns =
            dram_.request(issue_ns + out.latency_cycles * period, addr,
                          /*is_write=*/false);
        lat = (done_ns - issue_ns) / period;
      }

      // Stream detection per 2 MB region; confident streams prefetch the
      // next lines so later demand misses find them in flight.
      if (prefetch_on) {
        Prefetcher::RegionState& rs = prefetcher_.regions[line >> 15];
        rs.confidence = line == rs.last_line + 1 ? rs.confidence + 1 : 0;
        if (line != rs.last_line) rs.last_line = line;
        if (rs.confidence >= Prefetcher::kConfidence) {
          for (int ahead = 1; ahead <= Prefetcher::kDepth; ++ahead) {
            const std::uint64_t next = line + ahead;
            if (prefetcher_.inflight.count(next)) continue;
            ++stats.dram_reads;
            prefetcher_.inflight[next] = dram_.request(
                issue_ns, next * cachesim::kLineBytes, /*is_write=*/false);
          }
          if (prefetcher_.inflight.size() > 8192)
            prefetcher_.inflight.clear();
        }
      }
    }
    if (out.dram_writebacks > 0) {
      stats.dram_writes += out.dram_writebacks;
      // Write-backs drain in the background; they consume DRAM bandwidth
      // (affecting later reads through the channel state) but do not stall
      // this instruction.
      dram_.request(issue_ns, out.wb_addr, /*is_write=*/true);
    }
    if (lead < 0) lead = lat;
  }
  return lead < 0 ? hierarchy_.config().l1.latency_cycles : lead;
}

CoreStats CoreModel::run(trace::InstrSource& source,
                         const CoreRunOptions& options) {
  CoreStats stats;
  prefetch_enabled_ = options.enable_prefetcher;
  isa::VectorFusion fusion(source, options.vector_bits);

  // Scoreboard of register ready-times.
  const double t0 = options.start_cycle;
  std::array<double, isa::kNumRegs> reg_ready{};
  // Ring buffers of resource release times: an op reusing entry (i mod N)
  // must wait for that entry's previous owner to release it.
  std::vector<double> rob_release(config_.rob, t0);
  std::vector<double> irf_release(config_.irf, t0);
  std::vector<double> frf_release(config_.frf, t0);
  std::vector<double> sb_release(config_.store_buffer, t0);
  std::vector<double> alu_pool(config_.alus, t0);
  std::vector<double> fpu_pool(config_.fpus, t0);
  std::vector<double> lsu_pool(config_.lsus, t0);

  const double dispatch_step = 1.0 / config_.issue_width;
  double last_dispatch = t0;
  double last_commit = t0;
  std::uint64_t n = 0, n_int_dst = 0, n_fp_dst = 0, n_store = 0;

  isa::FusedInstr op;
  while ((options.max_scalar_instrs == 0 ||
          stats.scalar_instrs < options.max_scalar_instrs) &&
         (options.max_cycle == 0.0 || last_commit < options.max_cycle) &&
         fusion.next(op)) {
    const isa::OpClass cls = op.first.op;

    // ---- Dispatch: bandwidth + ROB + RF + SB occupancy ----
    double dispatch = std::max(last_dispatch + dispatch_step,
                               rob_release[n % config_.rob]);
    const bool has_dst = op.first.dst != isa::kNoReg;
    const bool fp_dst = has_dst && op.first.dst >= isa::kFpRegBase;
    if (has_dst) {
      if (fp_dst)
        dispatch = std::max(dispatch, frf_release[n_fp_dst % config_.frf]);
      else
        dispatch = std::max(dispatch, irf_release[n_int_dst % config_.irf]);
    }
    if (cls == isa::OpClass::kStore)
      dispatch =
          std::max(dispatch, sb_release[n_store % config_.store_buffer]);
    last_dispatch = dispatch;

    // ---- Issue: operand readiness + functional unit ----
    double ready = dispatch;
    if (op.first.src1 != isa::kNoReg)
      ready = std::max(ready, reg_ready[op.first.src1]);
    if (op.first.src2 != isa::kNoReg)
      ready = std::max(ready, reg_ready[op.first.src2]);

    // Pipelined units occupy one slot-cycle; divides block the unit.
    const double busy = cls == isa::OpClass::kFpDiv
                            ? static_cast<double>(isa::exec_latency(cls))
                            : 1.0;
    std::vector<double>& pool = isa::is_fp(cls)  ? fpu_pool
                                : isa::is_mem(cls) ? lsu_pool
                                                   : alu_pool;
    const double start = fu_acquire(pool, ready, busy);

    // ---- Execute ----
    double complete;
    double release = 0.0;  // extra lifetime for SB entries
    switch (cls) {
      case isa::OpClass::kLoad: {
        const double lat =
            options.perfect_memory
                ? hierarchy_.config().l1.latency_cycles
                : mem_access(op, start, /*is_write=*/false, stats);
        complete = start + lat;
        break;
      }
      case isa::OpClass::kStore: {
        complete = start + kStoreCommitLatency;
        // The buffered store drains to memory after commit; the entry is
        // held until the write completes.
        const double drain =
            options.perfect_memory
                ? hierarchy_.config().l1.latency_cycles
                : mem_access(op, start, /*is_write=*/true, stats);
        release = drain;
        break;
      }
      default:
        complete = start + isa::exec_latency(cls);
        break;
    }

    // ---- Writeback / commit ----
    if (has_dst) reg_ready[op.first.dst] = complete;
    const double commit =
        std::max(complete, last_commit + dispatch_step);
    last_commit = commit;
    rob_release[n % config_.rob] = commit;
    if (has_dst) {
      // Physical registers recycle at completion (early release): holding
      // them to commit would double-count the ROB occupancy limit.
      if (fp_dst)
        frf_release[n_fp_dst++ % config_.frf] = complete;
      else
        irf_release[n_int_dst++ % config_.irf] = complete;
    }
    if (cls == isa::OpClass::kStore)
      sb_release[n_store++ % config_.store_buffer] = commit + release;

    // ---- Statistics ----
    ++n;
    ++stats.fused_ops;
    stats.scalar_instrs += op.lanes;
    const auto ci = static_cast<std::size_t>(cls);
    ++stats.class_ops[ci];
    stats.class_lanes[ci] += op.lanes;
  }

  stats.cycles = last_commit - t0;
  stats.l1_accesses = hierarchy_.total_l1_stats().accesses;
  stats.l1_misses = hierarchy_.total_l1_stats().misses;
  stats.l2_accesses = hierarchy_.total_l2_stats().accesses;
  stats.l2_misses = hierarchy_.total_l2_stats().misses;
  stats.l3_accesses = hierarchy_.l3_stats().accesses;
  stats.l3_misses = hierarchy_.l3_stats().misses;
  stats.dram = dram_.total_counters();
  return stats;
}

}  // namespace musa::cpusim
