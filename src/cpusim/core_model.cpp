#include "cpusim/core_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/deadline.hpp"
#include "isa/latencies.hpp"
#include "trace/instr_source.hpp"

namespace musa::cpusim {

namespace {
constexpr double kStoreCommitLatency = 1.0;  // store data into the buffer

// Per-class tables for the block loop, indexed by OpClass value:
// IntAlu, IntMul, FpAdd, FpMul, FpDiv, Load, Store, Branch. They mirror
// isa::exec_latency and the pipelined-unless-divide occupancy rule of the
// single-step path exactly (int → double is value-preserving, so the two
// paths stay bit-identical).
constexpr double kBusy[isa::kNumOpClasses] = {1.0, 1.0, 1.0,  1.0,
                                              18.0, 1.0, 1.0, 1.0};
constexpr double kExecLatency[isa::kNumOpClasses] = {1.0,  3.0, 3.0, 4.0,
                                                     18.0, 1.0, 1.0, 1.0};
}  // namespace

CoreModel::CoreModel(const CoreConfig& config, Frequency freq,
                     cachesim::MemHierarchy& hierarchy,
                     dramsim::DramSystem& dram, int core_id)
    : config_(config),
      freq_(freq),
      hierarchy_(hierarchy),
      dram_(dram),
      core_id_(core_id) {
  MUSA_CHECK_MSG(config.rob > 0 && config.issue_width > 0, "bad core config");
  MUSA_CHECK_MSG(config.alus > 0 && config.fpus > 0 && config.lsus > 0,
                 "core needs FUs");
  MUSA_CHECK_MSG(config.irf > 0 && config.frf > 0 && config.store_buffer > 0,
                 "core needs registers and a store buffer");
  rob_release_.resize(static_cast<std::size_t>(config.rob));
  irf_release_.resize(static_cast<std::size_t>(config.irf));
  frf_release_.resize(static_cast<std::size_t>(config.frf));
  sb_release_.resize(static_cast<std::size_t>(config.store_buffer));
  alu_pool_.resize(static_cast<std::size_t>(config.alus));
  fpu_pool_.resize(static_cast<std::size_t>(config.fpus));
  lsu_pool_.resize(static_cast<std::size_t>(config.lsus));
}

void StreamPrefetcher::admit(std::uint64_t line, double ready_ns) {
  Line& entry = inflight.find_or_insert(line);
  entry.ready_ns = ready_ns;
  entry.seq = next_seq;
  fifo.emplace_back(line, next_seq);
  ++next_seq;
  // Compact once dead entries dominate. Every live in-flight line has
  // exactly one fifo entry whose seq matches the table (re-admits stale the
  // older entry), so live == inflight.size() and the predicate fires on the
  // dead fraction alone — a run that keeps consuming entries without ever
  // overflowing the buffer stays bounded too, not just one that pushes
  // fifo_head past the capacity. Amortised O(1): each compaction scans
  // entries that each paid O(1) on admission.
  if (fifo.size() >= 2 * (inflight.size() + kCompactSlack)) {
    std::size_t keep = 0;
    for (std::size_t i = fifo_head; i < fifo.size(); ++i) {
      const Line* live = inflight.find(fifo[i].first);
      if (live != nullptr && live->seq == fifo[i].second)
        fifo[keep++] = fifo[i];
    }
    fifo.resize(keep);
    fifo_head = 0;
  }
}

std::uint64_t StreamPrefetcher::evict_to_capacity() {
  std::uint64_t evicted = 0;
  while (inflight.size() > kMaxInflight && fifo_head < fifo.size()) {
    const auto [line, seq] = fifo[fifo_head++];
    const Line* entry = inflight.find(line);
    if (entry == nullptr || entry->seq != seq) continue;  // already consumed
    inflight.erase(line);
    ++evicted;
  }
  return evicted;
}

double CoreModel::fu_acquire(std::vector<double>& pool, double ready,
                             double busy) {
  // Pick the earliest-free unit; pools are ≤ 8 entries, linear scan is fine.
  std::size_t best = 0;
  for (std::size_t i = 1; i < pool.size(); ++i)
    if (pool[i] < pool[best]) best = i;
  const double start = std::max(ready, pool[best]);
  pool[best] = start + busy;
  return start;
}

double CoreModel::mem_access(std::uint64_t addr, std::int64_t stride,
                             int lanes, double issue_cycle, bool is_write,
                             CoreStats& stats) {
  // A fused memory op touches `lanes` addresses `stride` bytes apart; every
  // distinct cache line is accessed (so bandwidth and cache state are fully
  // charged — the paper's fusion model "doubles the size to account for
  // memory bandwidth"), while the op's load-to-use latency is that of the
  // leading line: trailing lines stream behind it, matching the paper's
  // deliberately optimistic vectorisation model (§III).
  //
  // Phase split: the coalesced line list goes through the hierarchy in one
  // batched walk, then DRAM/prefetcher effects are applied per line in the
  // original order. Cache state is touched only by phase 1 and DRAM/
  // prefetcher state only by phase 2, and each phase preserves the per-line
  // order, so the split is outcome-identical to the interleaved loop.
  line_addrs_.clear();
  std::uint64_t prev_line = ~0ull;
  for (int lane = 0; lane < lanes; ++lane) {
    const std::uint64_t a =
        addr +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(lane) * stride);
    const std::uint64_t line = a / cachesim::kLineBytes;
    if (line == prev_line) continue;  // coalesced with the previous lane
    prev_line = line;
    line_addrs_.push_back(a);
  }
  const std::size_t n = line_addrs_.size();
  if (n == 0) return hierarchy_.config().l1.latency_cycles;
  line_outcomes_.resize(n);
  hierarchy_.access_block(core_id_, line_addrs_.data(), n, is_write,
                          line_outcomes_.data());

  const bool prefetch_on = prefetch_enabled_;
  const double period = freq_.period_ns();
  const double issue_ns = issue_cycle * period;
  double lead = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const cachesim::MemOutcome& out = line_outcomes_[i];
    double lat = out.latency_cycles;
    if (out.dram_read) {
      const std::uint64_t a = line_addrs_[i];
      const std::uint64_t line = a / cachesim::kLineBytes;
      // Line-fill buffer hit: a prefetch already fetched (or is fetching)
      // this line; pay only the residual time.
      const StreamPrefetcher::Line* pf =
          prefetch_on ? prefetcher_.inflight.find(line) : nullptr;
      if (pf != nullptr) {
        lat = std::max<double>(out.latency_cycles,
                               (pf->ready_ns - issue_ns) / period);
        prefetcher_.inflight.erase(line);
      } else {
        ++stats.dram_reads;
        const double done_ns =
            dram_.request(issue_ns + out.latency_cycles * period, a,
                          /*is_write=*/false);
        lat = (done_ns - issue_ns) / period;
      }

      // Stream detection per 2 MB region; confident streams prefetch the
      // next lines so later demand misses find them in flight.
      if (prefetch_on && prefetcher_.observe_miss(line)) {
        for (int ahead = 1; ahead <= StreamPrefetcher::kDepth; ++ahead) {
          const std::uint64_t next = line + ahead;
          if (prefetcher_.inflight.contains(next)) continue;
          ++stats.dram_reads;
          prefetcher_.admit(next, dram_.request(issue_ns,
                                                next * cachesim::kLineBytes,
                                                /*is_write=*/false));
        }
        // Over capacity the *oldest* in-flight lines fall out of the
        // line-fill buffer (their DRAM requests were already issued and
        // paid for; only the latency benefit is lost). The previous
        // behaviour — dropping the entire buffer — forfeited every
        // outstanding prefetch at once.
        stats.pf_evictions += prefetcher_.evict_to_capacity();
      }
    }
    if (out.dram_writebacks > 0) {
      stats.dram_writes += out.dram_writebacks;
      // Write-backs drain in the background; they consume DRAM bandwidth
      // (affecting later reads through the channel state) but do not stall
      // this instruction.
      dram_.request(issue_ns, out.wb_addr, /*is_write=*/true);
    }
    if (lead < 0) lead = lat;
  }
  return lead < 0 ? hierarchy_.config().l1.latency_cycles : lead;
}

void CoreModel::reset_rings(double t0) {
  for (auto* v : {&rob_release_, &irf_release_, &frf_release_, &sb_release_,
                  &alu_pool_, &fpu_pool_, &lsu_pool_})
    std::fill(v->begin(), v->end(), t0);
}

CoreStats CoreModel::run(trace::InstrSource& source,
                         const CoreRunOptions& options) {
  prefetch_enabled_ = options.enable_prefetcher;
  // The block path reads the source ahead of what it retires, so any run
  // that can stop early (instruction or cycle bound) and expects the source
  // positioned at the stop point must single-step: node_detailed resumes
  // cores from a shared source across time quanta.
  const bool single_step = options.single_step ||
                           options.max_scalar_instrs != 0 ||
                           options.max_cycle != 0.0;
  return single_step ? run_single_step(source, options)
                     : run_blocked(source, options);
}

CoreStats CoreModel::run_single_step(trace::InstrSource& source,
                                     const CoreRunOptions& options) {
  CoreStats stats;
  isa::VectorFusion fusion(source, options.vector_bits);
  // A bounded run can stop mid-stream and the caller may resume the same
  // source later (time-quantum execution): the fusion pass must consume the
  // source one instruction at a time, never ahead of what it retires.
  if (options.max_scalar_instrs != 0 || options.max_cycle != 0.0)
    fusion.disable_bulk_pull();

  // Scoreboard of register ready-times.
  const double t0 = options.start_cycle;
  std::array<double, isa::kNumRegs> reg_ready{};
  // Ring buffers of resource release times: an op reusing entry (i mod N)
  // must wait for that entry's previous owner to release it. The vectors
  // are member scratch (sized at construction) so repeated run() calls on
  // the sweep hot path reset them in place instead of reallocating.
  reset_rings(t0);
  std::vector<double>& rob_release = rob_release_;
  std::vector<double>& irf_release = irf_release_;
  std::vector<double>& frf_release = frf_release_;
  std::vector<double>& sb_release = sb_release_;
  std::vector<double>& alu_pool = alu_pool_;
  std::vector<double>& fpu_pool = fpu_pool_;
  std::vector<double>& lsu_pool = lsu_pool_;

  const double dispatch_step = 1.0 / config_.issue_width;
  double last_dispatch = t0;
  double last_commit = t0;
  // Ring positions as wrapping indices: `counter % size` costs an integer
  // division per op on the sweep hot path, the compare-and-reset does not.
  const std::size_t rob_n = rob_release.size(), irf_n = irf_release.size(),
                    frf_n = frf_release.size(), sb_n = sb_release.size();
  std::size_t rob_i = 0, irf_i = 0, frf_i = 0, sb_i = 0;

  isa::FusedInstr op;
  while ((options.max_scalar_instrs == 0 ||
          stats.scalar_instrs < options.max_scalar_instrs) &&
         (options.max_cycle == 0.0 || last_commit < options.max_cycle) &&
         fusion.next(op)) {
    deadline::poll();
    const isa::OpClass cls = op.first.op;

    // ---- Dispatch: bandwidth + ROB + RF + SB occupancy ----
    double dispatch =
        std::max(last_dispatch + dispatch_step, rob_release[rob_i]);
    const bool has_dst = op.first.dst != isa::kNoReg;
    const bool fp_dst = has_dst && op.first.dst >= isa::kFpRegBase;
    if (has_dst) {
      if (fp_dst)
        dispatch = std::max(dispatch, frf_release[frf_i]);
      else
        dispatch = std::max(dispatch, irf_release[irf_i]);
    }
    if (cls == isa::OpClass::kStore)
      dispatch = std::max(dispatch, sb_release[sb_i]);
    last_dispatch = dispatch;

    // ---- Issue: operand readiness + functional unit ----
    double ready = dispatch;
    if (op.first.src1 != isa::kNoReg)
      ready = std::max(ready, reg_ready[op.first.src1]);
    if (op.first.src2 != isa::kNoReg)
      ready = std::max(ready, reg_ready[op.first.src2]);

    // Pipelined units occupy one slot-cycle; divides block the unit.
    const double busy = cls == isa::OpClass::kFpDiv
                            ? static_cast<double>(isa::exec_latency(cls))
                            : 1.0;
    std::vector<double>& pool = isa::is_fp(cls)    ? fpu_pool
                                : isa::is_mem(cls) ? lsu_pool
                                                   : alu_pool;
    const double start = fu_acquire(pool, ready, busy);

    // ---- Execute ----
    double complete;
    double release = 0.0;  // extra lifetime for SB entries
    switch (cls) {
      case isa::OpClass::kLoad: {
        const double lat = options.perfect_memory
                               ? hierarchy_.config().l1.latency_cycles
                               : mem_access(op.first.addr, op.stride, op.lanes,
                                            start, /*is_write=*/false, stats);
        complete = start + lat;
        break;
      }
      case isa::OpClass::kStore: {
        complete = start + kStoreCommitLatency;
        // The buffered store drains to memory after commit; the entry is
        // held until the write completes.
        const double drain = options.perfect_memory
                                 ? hierarchy_.config().l1.latency_cycles
                                 : mem_access(op.first.addr, op.stride,
                                              op.lanes, start,
                                              /*is_write=*/true, stats);
        release = drain;
        break;
      }
      default:
        complete = start + isa::exec_latency(cls);
        break;
    }

    // ---- Writeback / commit ----
    if (has_dst) reg_ready[op.first.dst] = complete;
    const double commit = std::max(complete, last_commit + dispatch_step);
    last_commit = commit;
    rob_release[rob_i] = commit;
    if (++rob_i == rob_n) rob_i = 0;
    if (has_dst) {
      // Physical registers recycle at completion (early release): holding
      // them to commit would double-count the ROB occupancy limit.
      if (fp_dst) {
        frf_release[frf_i] = complete;
        if (++frf_i == frf_n) frf_i = 0;
      } else {
        irf_release[irf_i] = complete;
        if (++irf_i == irf_n) irf_i = 0;
      }
    }
    if (cls == isa::OpClass::kStore) {
      sb_release[sb_i] = commit + release;
      if (++sb_i == sb_n) sb_i = 0;
    }

    // ---- Statistics ----
    ++stats.fused_ops;
    stats.scalar_instrs += op.lanes;
    const auto ci = static_cast<std::size_t>(cls);
    ++stats.class_ops[ci];
    stats.class_lanes[ci] += op.lanes;
  }

  stats.cycles = last_commit - t0;
  stats.l1_accesses = hierarchy_.total_l1_stats().accesses;
  stats.l1_misses = hierarchy_.total_l1_stats().misses;
  stats.l2_accesses = hierarchy_.total_l2_stats().accesses;
  stats.l2_misses = hierarchy_.total_l2_stats().misses;
  stats.l3_accesses = hierarchy_.l3_stats().accesses;
  stats.l3_misses = hierarchy_.l3_stats().misses;
  stats.dram = dram_.total_counters();
  return stats;
}

CoreStats CoreModel::run_blocked(trace::InstrSource& source,
                                 const CoreRunOptions& options) {
  CoreStats stats;
  isa::VectorFusion fusion(source, options.vector_bits);

  const double t0 = options.start_cycle;
  // Scoreboard extended with a dead slot so src reads are unconditional:
  // kNoReg (0xff) indexes slot 255, which stays 0.0 forever (writes are
  // guarded by has_dst and real registers are < 64) and 0.0 never exceeds
  // `ready`, so max() with it is the identity — same result as the
  // branching reads of the single-step path, without the two branches on
  // every op.
  std::array<double, 256> reg_ready{};
  reset_rings(t0);
  // Raw pointers into the member rings: indexing through the vectors makes
  // every release-array touch reload the data pointer after any opaque call
  // (mem_access and the DRAM model may alias anything as far as the
  // compiler can tell); the pointees are still re-read as required, but the
  // bases stay in registers across the whole run.
  double* const rob_release = rob_release_.data();
  double* const irf_release = irf_release_.data();
  double* const frf_release = frf_release_.data();
  double* const sb_release = sb_release_.data();
  // Per-class FU pool table (order = OpClass): int/branch → ALU, fp → FPU,
  // mem → LSU, matching the is_fp/is_mem selection of the single-step path.
  struct Pool {
    double* data;
    std::size_t n;
  };
  const Pool alu{alu_pool_.data(), alu_pool_.size()};
  const Pool fpu{fpu_pool_.data(), fpu_pool_.size()};
  const Pool lsu{lsu_pool_.data(), lsu_pool_.size()};
  const Pool pool_of[isa::kNumOpClasses] = {alu, alu, fpu, fpu,
                                            fpu, lsu, lsu, alu};

  const double dispatch_step = 1.0 / config_.issue_width;
  const double l1_lat = hierarchy_.config().l1.latency_cycles;
  const bool perfect = options.perfect_memory;
  cachesim::Cache& l1 = hierarchy_.l1_cache(core_id_);
  double last_dispatch = t0;
  double last_commit = t0;
  const std::size_t rob_n = rob_release_.size(), irf_n = irf_release_.size(),
                    frf_n = frf_release_.size(), sb_n = sb_release_.size();
  std::size_t rob_i = 0, irf_i = 0, frf_i = 0, sb_i = 0;
  // Per-class tallies in locals whose address never escapes (unlike
  // `stats`, which is handed to mem_access and so lives in memory): the
  // three per-op counter bumps stay register-resident across the loop.
  std::uint64_t scalar_instrs = 0;
  std::array<std::uint64_t, isa::kNumOpClasses> class_ops{};
  std::array<std::uint64_t, isa::kNumOpClasses> class_lanes{};

  isa::FusedBlock block;
  while (fusion.next_block(block)) {
    // One watchdog poll and one fusion call per block, not per op.
    deadline::poll();
    // Per-class tallies are a pure function of the block's columns: count
    // them in their own tight pass so the timing loop below carries no
    // counter read-modify-writes.
    for (std::size_t i = 0; i < block.size; ++i) {
      const auto ci = static_cast<std::size_t>(block.cls[i]);
      const std::uint16_t lanes = block.lanes[i];
      scalar_instrs += lanes;
      ++class_ops[ci];
      class_lanes[ci] += lanes;
    }
    for (std::size_t i = 0; i < block.size; ++i) {
      const isa::OpClass cls = block.cls[i];
      const auto ci = static_cast<std::size_t>(cls);
      const std::uint8_t dst = block.dst[i];

      // ---- Dispatch ----
      // Branchless gates: a constraint that does not apply resolves to t0,
      // which no pipeline time ever drops below (everything starts at t0
      // and only grows), so max() with it is the identity — bit-identical
      // to the guarded version of the single-step path. Reassociating the
      // four-way max into a tree is exact too (plain non-NaN doubles; no
      // ±0 mixing since all times are ≥ t0): both gates resolve off the
      // loop-carried last_dispatch chain instead of serialising behind it.
      const bool has_dst = dst != isa::kNoReg;
      const bool fp_dst = has_dst && dst >= isa::kFpRegBase;
      const double rf_gate =
          has_dst ? (fp_dst ? frf_release[frf_i] : irf_release[irf_i]) : t0;
      const bool is_store = cls == isa::OpClass::kStore;
      const double sb_gate = is_store ? sb_release[sb_i] : t0;
      const double dispatch =
          std::max(std::max(last_dispatch + dispatch_step, rob_release[rob_i]),
                   std::max(rf_gate, sb_gate));
      last_dispatch = dispatch;

      // ---- Issue ----
      const double ready =
          std::max(dispatch, std::max(reg_ready[block.src1[i]],
                                      reg_ready[block.src2[i]]));
      // fu_acquire inlined on the raw pool, split into a branchless value
      // scan (std::min chains compile to minsd, no data-dependent branch
      // to mispredict) and a first-match index pick — the same unit the
      // strict-< scan of fu_acquire chooses, with the same start time.
      const Pool& pl = pool_of[ci];
      double pool_min = pl.data[0];
      for (std::size_t k = 1; k < pl.n; ++k)
        pool_min = std::min(pool_min, pl.data[k]);
      std::size_t best = pl.n - 1;
      for (std::size_t k = pl.n - 1; k-- > 0;)
        if (pl.data[k] == pool_min) best = k;
      const double start = std::max(ready, pool_min);
      pl.data[best] = start + kBusy[ci];

      // ---- Execute ----
      // Fast path: the dominant non-memory classes complete off the
      // latency table with no memory-system involvement at all.
      double complete;
      double release = 0.0;
      if (!isa::is_mem(cls)) {
        complete = start + kExecLatency[ci];
      } else {
        // Memory fast path: when every lane of the fused op falls into one
        // cache line (the overwhelming replay case — unit strides coalesce,
        // scalar ops are single-lane) and that line hits L1, the access is
        // fully resolved right here: the L1 probe performs the exact
        // access() hit side effects and nothing downstream (L2/L3, DRAM,
        // prefetcher) would have been touched anyway. Same-line test:
        // lane addresses are monotone in the lane index, so if the first
        // and last lane share a line every lane does (a line is a
        // contiguous range). Any other case — multi-line, L1 miss,
        // perfect memory — takes the generic path, which starts from the
        // same cache state because a failed probe changes nothing.
        const std::uint64_t a = block.addr[i];
        const std::int64_t stride = block.stride[i];
        const std::uint16_t lanes = block.lanes[i];
        const std::uint64_t last =
            a + static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(lanes - 1) * stride);
        const bool single_line = a / cachesim::kLineBytes ==
                                 last / cachesim::kLineBytes;
        double lat;
        if (perfect) {
          lat = l1_lat;
        } else if (single_line && l1.try_hit(a, is_store)) {
          lat = l1_lat;
        } else {
          lat = mem_access(a, stride, lanes, start, is_store, stats);
        }
        if (is_store) {
          complete = start + kStoreCommitLatency;
          release = lat;
        } else {
          complete = start + lat;
        }
      }

      // ---- Writeback / commit ----
      if (has_dst) reg_ready[dst] = complete;
      const double commit = std::max(complete, last_commit + dispatch_step);
      last_commit = commit;
      rob_release[rob_i] = commit;
      if (++rob_i == rob_n) rob_i = 0;
      if (has_dst) {
        if (fp_dst) {
          frf_release[frf_i] = complete;
          if (++frf_i == frf_n) frf_i = 0;
        } else {
          irf_release[irf_i] = complete;
          if (++irf_i == irf_n) irf_i = 0;
        }
      }
      if (is_store) {
        sb_release[sb_i] = commit + release;
        if (++sb_i == sb_n) sb_i = 0;
      }
    }
    stats.fused_ops += block.size;
  }

  stats.scalar_instrs = scalar_instrs;
  stats.class_ops = class_ops;
  stats.class_lanes = class_lanes;
  stats.cycles = last_commit - t0;
  stats.l1_accesses = hierarchy_.total_l1_stats().accesses;
  stats.l1_misses = hierarchy_.total_l1_stats().misses;
  stats.l2_accesses = hierarchy_.total_l2_stats().accesses;
  stats.l2_misses = hierarchy_.total_l2_stats().misses;
  stats.l3_accesses = hierarchy_.l3_stats().accesses;
  stats.l3_misses = hierarchy_.l3_stats().misses;
  stats.dram = dram_.total_counters();
  return stats;
}

}  // namespace musa::cpusim
