#include "cpusim/core_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/deadline.hpp"
#include "isa/latencies.hpp"
#include "trace/instr_source.hpp"

namespace musa::cpusim {

namespace {
constexpr double kStoreCommitLatency = 1.0;  // store data into the buffer
}

CoreModel::CoreModel(const CoreConfig& config, Frequency freq,
                     cachesim::MemHierarchy& hierarchy,
                     dramsim::DramSystem& dram, int core_id)
    : config_(config),
      freq_(freq),
      hierarchy_(hierarchy),
      dram_(dram),
      core_id_(core_id) {
  MUSA_CHECK_MSG(config.rob > 0 && config.issue_width > 0, "bad core config");
  MUSA_CHECK_MSG(config.alus > 0 && config.fpus > 0 && config.lsus > 0,
                 "core needs FUs");
  MUSA_CHECK_MSG(config.irf > 0 && config.frf > 0 && config.store_buffer > 0,
                 "core needs registers and a store buffer");
  rob_release_.resize(static_cast<std::size_t>(config.rob));
  irf_release_.resize(static_cast<std::size_t>(config.irf));
  frf_release_.resize(static_cast<std::size_t>(config.frf));
  sb_release_.resize(static_cast<std::size_t>(config.store_buffer));
  alu_pool_.resize(static_cast<std::size_t>(config.alus));
  fpu_pool_.resize(static_cast<std::size_t>(config.fpus));
  lsu_pool_.resize(static_cast<std::size_t>(config.lsus));
}

void CoreModel::Prefetcher::admit(std::uint64_t line, double ready_ns) {
  Line& entry = inflight.find_or_insert(line);
  entry.ready_ns = ready_ns;
  entry.seq = next_seq;
  fifo.emplace_back(line, next_seq);
  ++next_seq;
  // Compact the consumed prefix so fifo never grows unboundedly: every
  // admit pushes one entry, so live entries are at most kMaxInflight.
  if (fifo_head > kMaxInflight && fifo_head * 2 > fifo.size()) {
    fifo.erase(fifo.begin(),
               fifo.begin() + static_cast<std::ptrdiff_t>(fifo_head));
    fifo_head = 0;
  }
}

std::uint64_t CoreModel::Prefetcher::evict_to_capacity() {
  std::uint64_t evicted = 0;
  while (inflight.size() > kMaxInflight && fifo_head < fifo.size()) {
    const auto [line, seq] = fifo[fifo_head++];
    const Line* entry = inflight.find(line);
    if (entry == nullptr || entry->seq != seq) continue;  // already consumed
    inflight.erase(line);
    ++evicted;
  }
  return evicted;
}

double CoreModel::fu_acquire(std::vector<double>& pool, double ready,
                             double busy) {
  // Pick the earliest-free unit; pools are ≤ 8 entries, linear scan is fine.
  std::size_t best = 0;
  for (std::size_t i = 1; i < pool.size(); ++i)
    if (pool[i] < pool[best]) best = i;
  const double start = std::max(ready, pool[best]);
  pool[best] = start + busy;
  return start;
}

double CoreModel::mem_access(const isa::FusedInstr& op, double issue_cycle,
                             bool is_write, CoreStats& stats) {
  const bool prefetch_on = prefetch_enabled_;
  // A fused memory op touches `lanes` addresses `stride` bytes apart; every
  // distinct cache line is accessed (so bandwidth and cache state are fully
  // charged — the paper's fusion model "doubles the size to account for
  // memory bandwidth"), while the op's load-to-use latency is that of the
  // leading line: trailing lines stream behind it, matching the paper's
  // deliberately optimistic vectorisation model (§III).
  const double period = freq_.period_ns();
  double lead = -1.0;
  std::uint64_t prev_line = ~0ull;
  for (int lane = 0; lane < op.lanes; ++lane) {
    const std::uint64_t addr =
        op.first.addr + static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(lane) * op.stride);
    const std::uint64_t line = addr / cachesim::kLineBytes;
    if (line == prev_line) continue;  // coalesced with the previous lane
    prev_line = line;

    const cachesim::MemOutcome out =
        hierarchy_.access(core_id_, addr, is_write);
    double lat = out.latency_cycles;
    const double issue_ns = issue_cycle * period;
    if (out.dram_read) {
      // Line-fill buffer hit: a prefetch already fetched (or is fetching)
      // this line; pay only the residual time.
      const Prefetcher::Line* pf =
          prefetch_on ? prefetcher_.inflight.find(line) : nullptr;
      if (pf != nullptr) {
        lat = std::max<double>(out.latency_cycles,
                               (pf->ready_ns - issue_ns) / period);
        prefetcher_.inflight.erase(line);
      } else {
        ++stats.dram_reads;
        const double done_ns =
            dram_.request(issue_ns + out.latency_cycles * period, addr,
                          /*is_write=*/false);
        lat = (done_ns - issue_ns) / period;
      }

      // Stream detection per 2 MB region; confident streams prefetch the
      // next lines so later demand misses find them in flight.
      if (prefetch_on) {
        Prefetcher::RegionState& rs =
            prefetcher_.regions.find_or_insert(line >> 15);
        rs.confidence = line == rs.last_line + 1 ? rs.confidence + 1 : 0;
        if (line != rs.last_line) rs.last_line = line;
        if (rs.confidence >= Prefetcher::kConfidence) {
          for (int ahead = 1; ahead <= Prefetcher::kDepth; ++ahead) {
            const std::uint64_t next = line + ahead;
            if (prefetcher_.inflight.contains(next)) continue;
            ++stats.dram_reads;
            prefetcher_.admit(next,
                              dram_.request(issue_ns,
                                            next * cachesim::kLineBytes,
                                            /*is_write=*/false));
          }
          // Over capacity the *oldest* in-flight lines fall out of the
          // line-fill buffer (their DRAM requests were already issued and
          // paid for; only the latency benefit is lost). The previous
          // behaviour — dropping the entire buffer — forfeited every
          // outstanding prefetch at once.
          stats.pf_evictions += prefetcher_.evict_to_capacity();
        }
      }
    }
    if (out.dram_writebacks > 0) {
      stats.dram_writes += out.dram_writebacks;
      // Write-backs drain in the background; they consume DRAM bandwidth
      // (affecting later reads through the channel state) but do not stall
      // this instruction.
      dram_.request(issue_ns, out.wb_addr, /*is_write=*/true);
    }
    if (lead < 0) lead = lat;
  }
  return lead < 0 ? hierarchy_.config().l1.latency_cycles : lead;
}

CoreStats CoreModel::run(trace::InstrSource& source,
                         const CoreRunOptions& options) {
  CoreStats stats;
  prefetch_enabled_ = options.enable_prefetcher;
  isa::VectorFusion fusion(source, options.vector_bits);

  // Scoreboard of register ready-times.
  const double t0 = options.start_cycle;
  std::array<double, isa::kNumRegs> reg_ready{};
  // Ring buffers of resource release times: an op reusing entry (i mod N)
  // must wait for that entry's previous owner to release it. The vectors
  // are member scratch (sized at construction) so repeated run() calls on
  // the sweep hot path reset them in place instead of reallocating.
  std::vector<double>& rob_release = rob_release_;
  std::vector<double>& irf_release = irf_release_;
  std::vector<double>& frf_release = frf_release_;
  std::vector<double>& sb_release = sb_release_;
  std::vector<double>& alu_pool = alu_pool_;
  std::vector<double>& fpu_pool = fpu_pool_;
  std::vector<double>& lsu_pool = lsu_pool_;
  for (auto* v : {&rob_release, &irf_release, &frf_release, &sb_release,
                  &alu_pool, &fpu_pool, &lsu_pool})
    std::fill(v->begin(), v->end(), t0);

  const double dispatch_step = 1.0 / config_.issue_width;
  double last_dispatch = t0;
  double last_commit = t0;
  // Ring positions as wrapping indices: `counter % size` costs an integer
  // division per op on the sweep hot path, the compare-and-reset does not.
  const std::size_t rob_n = rob_release.size(), irf_n = irf_release.size(),
                    frf_n = frf_release.size(), sb_n = sb_release.size();
  std::size_t rob_i = 0, irf_i = 0, frf_i = 0, sb_i = 0;

  isa::FusedInstr op;
  while ((options.max_scalar_instrs == 0 ||
          stats.scalar_instrs < options.max_scalar_instrs) &&
         (options.max_cycle == 0.0 || last_commit < options.max_cycle) &&
         fusion.next(op)) {
    deadline::poll();
    const isa::OpClass cls = op.first.op;

    // ---- Dispatch: bandwidth + ROB + RF + SB occupancy ----
    double dispatch =
        std::max(last_dispatch + dispatch_step, rob_release[rob_i]);
    const bool has_dst = op.first.dst != isa::kNoReg;
    const bool fp_dst = has_dst && op.first.dst >= isa::kFpRegBase;
    if (has_dst) {
      if (fp_dst)
        dispatch = std::max(dispatch, frf_release[frf_i]);
      else
        dispatch = std::max(dispatch, irf_release[irf_i]);
    }
    if (cls == isa::OpClass::kStore)
      dispatch = std::max(dispatch, sb_release[sb_i]);
    last_dispatch = dispatch;

    // ---- Issue: operand readiness + functional unit ----
    double ready = dispatch;
    if (op.first.src1 != isa::kNoReg)
      ready = std::max(ready, reg_ready[op.first.src1]);
    if (op.first.src2 != isa::kNoReg)
      ready = std::max(ready, reg_ready[op.first.src2]);

    // Pipelined units occupy one slot-cycle; divides block the unit.
    const double busy = cls == isa::OpClass::kFpDiv
                            ? static_cast<double>(isa::exec_latency(cls))
                            : 1.0;
    std::vector<double>& pool = isa::is_fp(cls)  ? fpu_pool
                                : isa::is_mem(cls) ? lsu_pool
                                                   : alu_pool;
    const double start = fu_acquire(pool, ready, busy);

    // ---- Execute ----
    double complete;
    double release = 0.0;  // extra lifetime for SB entries
    switch (cls) {
      case isa::OpClass::kLoad: {
        const double lat =
            options.perfect_memory
                ? hierarchy_.config().l1.latency_cycles
                : mem_access(op, start, /*is_write=*/false, stats);
        complete = start + lat;
        break;
      }
      case isa::OpClass::kStore: {
        complete = start + kStoreCommitLatency;
        // The buffered store drains to memory after commit; the entry is
        // held until the write completes.
        const double drain =
            options.perfect_memory
                ? hierarchy_.config().l1.latency_cycles
                : mem_access(op, start, /*is_write=*/true, stats);
        release = drain;
        break;
      }
      default:
        complete = start + isa::exec_latency(cls);
        break;
    }

    // ---- Writeback / commit ----
    if (has_dst) reg_ready[op.first.dst] = complete;
    const double commit =
        std::max(complete, last_commit + dispatch_step);
    last_commit = commit;
    rob_release[rob_i] = commit;
    if (++rob_i == rob_n) rob_i = 0;
    if (has_dst) {
      // Physical registers recycle at completion (early release): holding
      // them to commit would double-count the ROB occupancy limit.
      if (fp_dst) {
        frf_release[frf_i] = complete;
        if (++frf_i == frf_n) frf_i = 0;
      } else {
        irf_release[irf_i] = complete;
        if (++irf_i == irf_n) irf_i = 0;
      }
    }
    if (cls == isa::OpClass::kStore) {
      sb_release[sb_i] = commit + release;
      if (++sb_i == sb_n) sb_i = 0;
    }

    // ---- Statistics ----
    ++stats.fused_ops;
    stats.scalar_instrs += op.lanes;
    const auto ci = static_cast<std::size_t>(cls);
    ++stats.class_ops[ci];
    stats.class_lanes[ci] += op.lanes;
  }

  stats.cycles = last_commit - t0;
  stats.l1_accesses = hierarchy_.total_l1_stats().accesses;
  stats.l1_misses = hierarchy_.total_l1_stats().misses;
  stats.l2_accesses = hierarchy_.total_l2_stats().accesses;
  stats.l2_misses = hierarchy_.total_l2_stats().misses;
  stats.l3_accesses = hierarchy_.l3_stats().accesses;
  stats.l3_misses = hierarchy_.l3_stats().misses;
  stats.dram = dram_.total_counters();
  return stats;
}

}  // namespace musa::cpusim
