// Multi-core detailed validation mode.
//
// The production pipeline simulates *one* core of the node against its
// bandwidth share (fast: one detailed simulation per design point). This
// module runs K cores' instruction streams against a genuinely *shared*
// L3 and DRAM system, so the share-approximation can be validated: per-core
// CPI under real capacity contention (shared L3 occupancy) and real
// bandwidth interleaving (all miss streams through the same channels).
//
// Cores execute in round-robin *time quanta* against the common
// hierarchy/DRAM state, so their local clocks stay within one quantum of
// each other and the memory system sees the combined load on a coherent
// timeline. Within a quantum the cores' requests are ordered by core id
// rather than interleaved, which overestimates queueing somewhat: results
// bracket the truth between the solo run and full serialisation. This
// captures first-order shared-resource pressure without a cycle-interleaved
// multicore engine.
#pragma once

#include <vector>

#include "cachesim/hierarchy.hpp"
#include "common/units.hpp"
#include "cpusim/core_config.hpp"
#include "cpusim/core_model.hpp"
#include "dramsim/dram.hpp"
#include "trace/kernel.hpp"

namespace musa::cpusim {

struct NodeDetailedConfig {
  CoreConfig core = core_medium();
  cachesim::HierarchyConfig caches;   // num_cores set from `cores`
  dramsim::DramTiming dram_timing;
  int dram_channels = 4;
  int cores = 4;
  Frequency freq{2.0};
  int vector_bits = 128;
  std::uint64_t instrs_per_core = 100'000;
};

struct NodeDetailedResult {
  std::vector<CoreStats> per_core;
  double avg_cpi = 0.0;
  double l3_mpki = 0.0;        // shared-L3 misses per kinstr (all cores)
  double dram_gbps = 0.0;      // aggregate demand bandwidth
};

/// Runs `config.cores` copies of the kernel (distinct seeds — distinct rank
/// slices of the same computation) against shared L3/DRAM.
NodeDetailedResult run_node_detailed(const trace::KernelProfile& kernel,
                                     const NodeDetailedConfig& config);

}  // namespace musa::cpusim
