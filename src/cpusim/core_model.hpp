// Trace-driven out-of-order core timing model (the TaskSim-equivalent).
//
// An O(1)-per-instruction timestamp model: each (possibly vector-fused)
// operation computes its dispatch, issue and completion times from
//
//   * dispatch bandwidth (issue_width per cycle),
//   * re-order-buffer and physical-register-file occupancy (ring buffers of
//     release times — an instruction cannot dispatch until the entry it
//     reuses has been committed/freed),
//   * store-buffer occupancy for stores,
//   * true register dependences (64-entry ready-time scoreboard),
//   * functional-unit contention (per-pool next-free times; FP ops use the
//     FPU pool at full vector width, everything else the ALU/AGU pool),
//   * memory latency resolved through the simulated cache hierarchy and,
//     on L3 misses, the DRAM system — so memory-level parallelism is bounded
//     by the ROB window exactly as in a real OoO core.
//
// This class of model reproduces first-order microarchitectural sensitivity
// (what a design-space sweep measures) at tens of millions of instructions
// per second; it does not model wrong-path execution or fetch alignment.
//
// The replay hot loop is *batched* (DESIGN.md §7f): the fusion pass emits
// SoA instruction blocks (isa::FusedBlock) and the scoreboard walks them in
// a tight loop — one deadline poll and one fusion call per block instead of
// per operation. A single-step reference path is retained (see
// CoreRunOptions::single_step); both paths produce bit-identical CoreStats.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "common/flat_table.hpp"
#include "common/units.hpp"
#include "cpusim/core_config.hpp"
#include "dramsim/dram.hpp"
#include "isa/instr.hpp"
#include "isa/vector_fusion.hpp"

namespace musa::trace {
class InstrSource;
}

namespace musa::cpusim {

/// Everything the node/power models need from one detailed core simulation.
struct CoreStats {
  double cycles = 0.0;
  std::uint64_t fused_ops = 0;     // operations as simulated (post-fusion)
  std::uint64_t scalar_instrs = 0; // scalar-equivalent instruction count
  std::array<std::uint64_t, isa::kNumOpClasses> class_ops{};   // fused
  std::array<std::uint64_t, isa::kNumOpClasses> class_lanes{}; // scalar-eq

  // Memory system (counts of 64 B line transactions).
  std::uint64_t l1_accesses = 0, l1_misses = 0;
  std::uint64_t l2_accesses = 0, l2_misses = 0;
  std::uint64_t l3_accesses = 0, l3_misses = 0;
  std::uint64_t dram_reads = 0, dram_writes = 0;
  /// Prefetched lines dropped from the line-fill buffer because it filled
  /// up before a demand access consumed them (their DRAM bandwidth was
  /// already paid; only the latency benefit is forfeited).
  std::uint64_t pf_evictions = 0;
  dramsim::DramCounters dram;

  double ipc() const { return cycles > 0 ? scalar_instrs / cycles : 0.0; }
  double mpki_l1() const { return ratio_k(l1_misses); }
  double mpki_l2() const { return ratio_k(l2_misses); }
  double mpki_l3() const { return ratio_k(l3_misses); }
  /// DRAM traffic in bytes (reads + write-backs).
  double dram_bytes() const {
    return 64.0 * static_cast<double>(dram_reads + dram_writes);
  }
  /// Average DRAM demand bandwidth over the simulated run, GB/s.
  double dram_gbps(Frequency f) const {
    const double secs = f.cycles_to_seconds(cycles);
    return secs > 0 ? dram_bytes() / secs / 1e9 : 0.0;
  }

 private:
  // MPKI is normalised by scalar-equivalent instructions so the metric is
  // stable across simulated vector widths.
  double ratio_k(std::uint64_t n) const {
    return scalar_instrs ? 1000.0 * static_cast<double>(n) / scalar_instrs
                         : 0.0;
  }
};

/// Options for one core-model run.
struct CoreRunOptions {
  int vector_bits = 128;   // simulated SIMD width (64 = scalar)
  bool perfect_memory = false;  // all memory ops hit L1 (stall attribution)
  std::uint64_t max_scalar_instrs = 0;  // stop after this many lanes (0=all)
  bool enable_prefetcher = true;  // stream prefetcher (ablation knob)
  /// Local clock at which this run begins (cycles). Lets a caller resume a
  /// core's timeline across run() calls so memory-system arrival times stay
  /// continuous (used by the multi-core validation mode). Reported cycles
  /// exclude the offset.
  double start_cycle = 0.0;
  /// Stop dispatching once the local clock passes this cycle (0 = no bound).
  /// With start_cycle this implements time-quantum execution: interleaved
  /// cores stay within one quantum of each other, so shared memory-system
  /// state sees a coherent combined timeline.
  double max_cycle = 0.0;
  /// Force the retained single-step reference path (one fusion.next() per
  /// operation) instead of the batched block path. Both paths produce
  /// bit-identical CoreStats — the block-vs-scalar equivalence property
  /// test and sweep_bench's kernel_speedup measurement hang off this knob.
  bool single_step = false;
};

/// Region-based stream prefetcher (one per core). Detects ascending
/// line sequences within 2 MB regions and, once confident, streams the
/// following lines from DRAM ahead of demand. Prefetched lines sit in a
/// line-fill buffer: a later demand miss to one pays only the residual
/// latency. This is what makes strided codes *bandwidth*-bound (OoO-
/// insensitive, channel-sensitive) while irregular codes stay
/// *latency*-bound — the distinction §V-B.3/§V-B.4 of the paper hinges on.
///
/// Public (not nested in CoreModel) so the stream-detector and FIFO
/// compaction edge cases are unit-testable in isolation.
struct StreamPrefetcher {
  static constexpr int kDepth = 4;        // lines fetched ahead
  static constexpr int kConfidence = 2;   // +1 steps before streaming
  static constexpr std::size_t kMaxInflight = 8192;  // line-fill capacity
  /// No miss observed yet in this region. Without the sentinel a fresh
  /// region (zero-initialised last_line) would score a first miss on line 1
  /// as a stream continuation of line 0.
  static constexpr std::uint64_t kNoLine = ~0ull;
  /// Dead-entry slack before the FIFO compacts (see admit()).
  static constexpr std::size_t kCompactSlack = 64;

  struct RegionState {
    std::uint64_t last_line = kNoLine;
    int confidence = 0;
  };
  struct Line {
    double ready_ns = 0.0;
    std::uint64_t seq = 0;  // insertion order, for exact FIFO eviction
  };
  // Both tables sit on the per-miss path: open-addressed flat storage
  // (one cache line per probe, no per-insert allocation) instead of
  // std::unordered_map node soup.
  FlatTable64<RegionState> regions{1024};
  FlatTable64<Line> inflight{kMaxInflight};  // line -> Line
  // Insertion-order queue of (line, seq) used to find the oldest entry
  // when the buffer overflows. Entries whose seq no longer matches the
  // table (consumed and re-prefetched lines) are skipped as stale.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fifo;
  std::size_t fifo_head = 0;
  std::uint64_t next_seq = 0;

  /// Stream detection for a demand miss on `line`: an ascending-line miss
  /// builds confidence, a jump resets it, and a *repeat* of the last-seen
  /// line is neutral — a line re-missing after eviction says nothing about
  /// the stream's direction, so it must not tear down an established
  /// stream. Returns true once the region is confident enough to stream.
  bool observe_miss(std::uint64_t line) {
    RegionState& rs = regions.find_or_insert(line >> 15);
    if (line != rs.last_line) {
      rs.confidence = rs.last_line != kNoLine && line == rs.last_line + 1
                          ? rs.confidence + 1
                          : 0;
      rs.last_line = line;
    }
    return rs.confidence >= kConfidence;
  }

  /// Record `line` as in flight (ready at `ready_ns`).
  void admit(std::uint64_t line, double ready_ns);
  /// Drop oldest entries until at most kMaxInflight remain; returns how
  /// many live lines were evicted.
  std::uint64_t evict_to_capacity();
};

class CoreModel {
 public:
  /// The hierarchy and DRAM system are borrowed; `core_id` selects the
  /// private L1/L2 pair inside the hierarchy.
  CoreModel(const CoreConfig& config, Frequency freq,
            cachesim::MemHierarchy& hierarchy, dramsim::DramSystem& dram,
            int core_id = 0);

  /// Consumes the whole source (through the fusion pass) and returns timing
  /// plus activity statistics. Runs the batched block path unless the
  /// options demand single-step semantics (resumable quantum runs pull
  /// exactly what they retire; the block path reads ahead).
  CoreStats run(trace::InstrSource& source, const CoreRunOptions& options);

 private:
  /// Batched path: walks SoA fused-instruction blocks (isa::FusedBlock).
  CoreStats run_blocked(trace::InstrSource& source,
                        const CoreRunOptions& options);
  /// Retained single-step reference path (and the only path implementing
  /// max_scalar_instrs / max_cycle early exit).
  CoreStats run_single_step(trace::InstrSource& source,
                            const CoreRunOptions& options);

  /// Reset the per-run ring buffers / FU pools to `t0` without reallocating.
  void reset_rings(double t0);

  double fu_acquire(std::vector<double>& pool, double ready, double busy);
  /// Memory access for a fused op (`lanes` addresses `stride` bytes apart
  /// starting at `addr`); returns load-to-use latency in cycles.
  double mem_access(std::uint64_t addr, std::int64_t stride, int lanes,
                    double issue_cycle, bool is_write, CoreStats& stats);

  CoreConfig config_;
  Frequency freq_;
  cachesim::MemHierarchy& hierarchy_;
  dramsim::DramSystem& dram_;
  int core_id_;
  StreamPrefetcher prefetcher_;
  bool prefetch_enabled_ = true;

  // Per-run ring buffers, sized once at construction and reset (not
  // reallocated) at every run() — run() is called per phase per point, so
  // these were seven heap allocations on the sweep's hot path.
  std::vector<double> rob_release_, irf_release_, frf_release_, sb_release_;
  std::vector<double> alu_pool_, fpu_pool_, lsu_pool_;
  // Scratch for mem_access: coalesced per-line representative addresses and
  // their hierarchy outcomes (reused across calls, no per-op allocation).
  std::vector<std::uint64_t> line_addrs_;
  std::vector<cachesim::MemOutcome> line_outcomes_;
};

}  // namespace musa::cpusim
