// Pareto-frontier extraction over simulation results — the decision layer
// a co-design study ends with: of 864 configurations, which are not
// dominated in the (execution time, energy) plane?
#pragma once

#include <cstddef>
#include <vector>

namespace musa::analysis {

/// A point in a minimisation problem: both coordinates are costs.
struct CostPoint {
  double x = 0.0;       // e.g. execution time
  double y = 0.0;       // e.g. energy to solution
  std::size_t tag = 0;  // caller's index into its own result set
};

/// Indices (tags) of the non-dominated points, sorted by ascending x.
/// A point is dominated if another point is <= in both coordinates and
/// strictly < in at least one.
std::vector<CostPoint> pareto_front(std::vector<CostPoint> points);

/// Hypervolume indicator of a front w.r.t. a reference (worst-corner)
/// point: the area dominated by the front. Larger = better frontier.
double hypervolume(const std::vector<CostPoint>& front, double ref_x,
                   double ref_y);

/// Proven lower bounds on both costs over a *region* of the design space
/// (e.g. verify::MetricBounds::min_time_s over an analyzer box): every
/// achievable point in the region has x >= x_lo and y >= y_lo.
struct CostBound {
  double x_lo = 0.0;
  double y_lo = 0.0;
  std::size_t tag = 0;  // caller's index into its own region list
};

/// Dominance pruning for guided search: drops every candidate region whose
/// best corner (x_lo, y_lo) is already matched-or-beaten in both costs by a
/// point of `front` — no point of such a region can strictly improve the
/// front, so it need not be simulated. Returns the surviving candidates in
/// input order. Sound with lower bounds only: regions are pruned, never
/// points invented.
std::vector<CostBound> prune_dominated(const std::vector<CostPoint>& front,
                                       std::vector<CostBound> candidates);

}  // namespace musa::analysis
