// ASCII timeline rendering — the Paraver-visualisation stand-in for the
// paper's Fig. 3 (task occupancy per thread) and Fig. 4 (MPI phases per
// rank). Rows are threads/ranks, columns are time bins.
#pragma once

#include <string>
#include <vector>

#include "cpusim/runtime.hpp"
#include "netsim/dimemas.hpp"

namespace musa::analysis {

struct TimelineOptions {
  int width = 100;     // character columns (time bins)
  int max_rows = 64;   // rows rendered (threads or ranks)
};

/// Fig. 3 style: one row per core; '#' where a task runs, '.' idle.
/// Appends an occupancy summary line.
std::string render_core_timeline(const std::vector<cpusim::TimelineSeg>& segs,
                                 int cores, double makespan,
                                 const TimelineOptions& options = {});

/// Fig. 4 style: one row per rank; 'C' compute, 'p' point-to-point,
/// 'B' collective/barrier, '.' idle.
std::string render_rank_timeline(const std::vector<netsim::RankSeg>& segs,
                                 int ranks, double makespan,
                                 const TimelineOptions& options = {});

}  // namespace musa::analysis
