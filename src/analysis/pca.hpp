// Principal Component Analysis (paper §V-C).
//
// Standardises the input variables, builds the covariance (= correlation)
// matrix and diagonalises it with the cyclic Jacobi method — sufficient and
// exact for the paper's 5-variable problem (OoO capacity, memory channels,
// SIMD width, cache size, execution cycles over 72 simulations).
#pragma once

#include <string>
#include <vector>

namespace musa::analysis {

struct PcaResult {
  std::vector<std::string> variables;
  /// components[k][v]: loading of variable v on the k-th principal
  /// component, ordered by decreasing explained variance. Sign convention:
  /// the largest-magnitude loading of each component is positive.
  std::vector<std::vector<double>> components;
  std::vector<double> explained_variance;  // fraction per component, sums ~1
};

/// `samples[i][v]` = value of variable v in observation i. Requires at
/// least two observations and one variable; constant variables are allowed
/// (their loadings are zero).
PcaResult pca(const std::vector<std::vector<double>>& samples,
              std::vector<std::string> variable_names);

}  // namespace musa::analysis
