#include "analysis/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace musa::analysis {

namespace {

/// Cyclic Jacobi eigen-decomposition of a symmetric matrix (row-major).
/// Returns eigenvalues; `vectors[i]` becomes the i-th eigenvector.
std::vector<double> jacobi_eigen(std::vector<std::vector<double>> a,
                                 std::vector<std::vector<double>>& vectors) {
  const std::size_t n = a.size();
  vectors.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) vectors[i][i] = 1.0;

  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += a[p][q] * a[p][q];
    if (off < 1e-18) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a[p][q]) < 1e-15) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k][p], akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p][k], aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = vectors[p][k], vkq = vectors[q][k];
          vectors[p][k] = c * vkp - s * vkq;
          vectors[q][k] = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<double> eigenvalues(n);
  for (std::size_t i = 0; i < n; ++i) eigenvalues[i] = a[i][i];
  return eigenvalues;
}

}  // namespace

PcaResult pca(const std::vector<std::vector<double>>& samples,
              std::vector<std::string> variable_names) {
  MUSA_CHECK_MSG(samples.size() >= 2, "PCA needs at least two observations");
  const std::size_t nvars = variable_names.size();
  MUSA_CHECK_MSG(nvars >= 1, "PCA needs at least one variable");
  for (const auto& row : samples)
    MUSA_CHECK_MSG(row.size() == nvars, "observation width mismatch");

  const double n = static_cast<double>(samples.size());

  // Standardise each variable (z-scores); constant variables become zero.
  std::vector<double> mean(nvars, 0.0), sd(nvars, 0.0);
  for (const auto& row : samples)
    for (std::size_t v = 0; v < nvars; ++v) mean[v] += row[v];
  for (auto& m : mean) m /= n;
  for (const auto& row : samples)
    for (std::size_t v = 0; v < nvars; ++v)
      sd[v] += (row[v] - mean[v]) * (row[v] - mean[v]);
  for (auto& s : sd) s = std::sqrt(s / (n - 1.0));

  std::vector<std::vector<double>> z(samples.size(),
                                     std::vector<double>(nvars, 0.0));
  for (std::size_t i = 0; i < samples.size(); ++i)
    for (std::size_t v = 0; v < nvars; ++v)
      z[i][v] = sd[v] > 1e-12 ? (samples[i][v] - mean[v]) / sd[v] : 0.0;

  // Correlation matrix.
  std::vector<std::vector<double>> cov(nvars, std::vector<double>(nvars));
  for (std::size_t p = 0; p < nvars; ++p)
    for (std::size_t q = 0; q < nvars; ++q) {
      double acc = 0.0;
      for (std::size_t i = 0; i < samples.size(); ++i)
        acc += z[i][p] * z[i][q];
      cov[p][q] = acc / (n - 1.0);
    }

  std::vector<std::vector<double>> vectors;
  std::vector<double> eigenvalues = jacobi_eigen(cov, vectors);

  // Order components by decreasing eigenvalue.
  std::vector<std::size_t> order(nvars);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return eigenvalues[a] > eigenvalues[b];
  });

  const double total = std::accumulate(eigenvalues.begin(),
                                       eigenvalues.end(), 0.0);
  PcaResult result;
  result.variables = std::move(variable_names);
  for (std::size_t k : order) {
    std::vector<double> comp = vectors[k];
    // Sign convention: dominant loading positive.
    const auto it =
        std::max_element(comp.begin(), comp.end(), [](double a, double b) {
          return std::abs(a) < std::abs(b);
        });
    if (*it < 0)
      for (auto& c : comp) c = -c;
    result.components.push_back(std::move(comp));
    result.explained_variance.push_back(
        total > 0 ? std::max(0.0, eigenvalues[k]) / total : 0.0);
  }
  return result;
}

}  // namespace musa::analysis
