#include "analysis/pareto.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace musa::analysis {

std::vector<CostPoint> pareto_front(std::vector<CostPoint> points) {
  if (points.empty()) return {};
  // Sort by x ascending, then y ascending: sweeping left to right, a point
  // is on the front iff its y is strictly below every y seen so far.
  std::sort(points.begin(), points.end(),
            [](const CostPoint& a, const CostPoint& b) {
              return a.x != b.x ? a.x < b.x : a.y < b.y;
            });
  std::vector<CostPoint> front;
  double best_y = std::numeric_limits<double>::infinity();
  for (const auto& p : points) {
    if (p.y < best_y) {
      front.push_back(p);
      best_y = p.y;
    }
  }
  return front;
}

std::vector<CostBound> prune_dominated(const std::vector<CostPoint>& front,
                                       std::vector<CostBound> candidates) {
  if (front.empty()) return candidates;
  // Re-derive the non-dominated subset sorted by ascending x (callers may
  // pass any point set, not just pareto_front output); its y values are
  // then strictly descending, so the strongest competitor against a corner
  // (x_lo, y_lo) is the front point with the largest x <= x_lo.
  const std::vector<CostPoint> f = pareto_front(front);
  std::vector<CostBound> kept;
  kept.reserve(candidates.size());
  for (auto& c : candidates) {
    auto it = std::upper_bound(
        f.begin(), f.end(), c.x_lo,
        [](double x, const CostPoint& p) { return x < p.x; });
    const bool dominated = it != f.begin() && std::prev(it)->y <= c.y_lo;
    if (!dominated) kept.push_back(c);
  }
  return kept;
}

double hypervolume(const std::vector<CostPoint>& front, double ref_x,
                   double ref_y) {
  if (front.empty()) return 0.0;
  // Front is sorted by ascending x / descending y (pareto_front output).
  double volume = 0.0;
  double prev_x = ref_x;
  for (auto it = front.rbegin(); it != front.rend(); ++it) {
    MUSA_CHECK_MSG(it->x <= ref_x && it->y <= ref_y,
                   "reference point must dominate no front point");
    volume += (prev_x - it->x) * (ref_y - it->y);
    prev_x = it->x;
  }
  return volume;
}

}  // namespace musa::analysis
