#include "analysis/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace musa::analysis {

namespace {

/// Paints [start,end) of a row with `ch`, bins scaled to `makespan`.
void paint(std::string& row, double start, double end, double makespan,
           char ch) {
  const int w = static_cast<int>(row.size());
  int b0 = static_cast<int>(start / makespan * w);
  int b1 = static_cast<int>(end / makespan * w);
  b0 = std::clamp(b0, 0, w - 1);
  b1 = std::clamp(b1, b0, w - 1);
  for (int b = b0; b <= b1; ++b) row[b] = ch;
}

}  // namespace

std::string render_core_timeline(const std::vector<cpusim::TimelineSeg>& segs,
                                 int cores, double makespan,
                                 const TimelineOptions& options) {
  MUSA_CHECK_MSG(cores >= 1 && makespan > 0, "empty timeline");
  const int rows = std::min(cores, options.max_rows);
  std::vector<std::string> grid(rows, std::string(options.width, '.'));
  double busy = 0.0;
  for (const auto& s : segs) {
    busy += s.end - s.start;
    if (s.core < rows) paint(grid[s.core], s.start, s.end, makespan, '#');
  }
  std::ostringstream out;
  for (int c = 0; c < rows; ++c) {
    char label[16];
    std::snprintf(label, sizeof label, "cpu%3d |", c);
    out << label << grid[c] << '\n';
  }
  char summary[128];
  std::snprintf(summary, sizeof summary,
                "occupancy: %.1f%% of %d cores over %.3f ms\n",
                100.0 * busy / (makespan * cores), cores, makespan * 1e3);
  out << summary;
  return out.str();
}

std::string render_rank_timeline(const std::vector<netsim::RankSeg>& segs,
                                 int ranks, double makespan,
                                 const TimelineOptions& options) {
  MUSA_CHECK_MSG(ranks >= 1 && makespan > 0, "empty timeline");
  const int rows = std::min(ranks, options.max_rows);
  // Down-sample ranks evenly when there are more ranks than rows.
  const int stride = (ranks + rows - 1) / rows;
  std::vector<std::string> grid(rows, std::string(options.width, '.'));
  double mpi_time = 0.0, compute_time = 0.0;
  for (const auto& s : segs) {
    if (s.kind == netsim::RankSeg::Kind::kCompute)
      compute_time += s.end - s.start;
    else
      mpi_time += s.end - s.start;
    if (s.rank % stride != 0) continue;
    const int row = s.rank / stride;
    if (row >= rows) continue;
    const char ch = s.kind == netsim::RankSeg::Kind::kCompute  ? 'C'
                    : s.kind == netsim::RankSeg::Kind::kP2p    ? 'p'
                                                               : 'B';
    paint(grid[row], s.start, s.end, makespan, ch);
  }
  std::ostringstream out;
  for (int r = 0; r < rows; ++r) {
    char label[16];
    std::snprintf(label, sizeof label, "rank%4d |", r * stride);
    out << label << grid[r] << '\n';
  }
  char summary[160];
  std::snprintf(summary, sizeof summary,
                "compute %.3f s, MPI %.3f s (%.1f%% of rank-time in MPI)\n",
                compute_time, mpi_time,
                100.0 * mpi_time / std::max(1e-12, compute_time + mpi_time));
  out << summary;
  return out.str();
}

}  // namespace musa::analysis
