#include "common/progress.hpp"

#include <cmath>
#include <cstdio>

namespace musa {

std::string format_duration(double seconds) {
  if (!(seconds >= 0.0) || !std::isfinite(seconds)) return "?";
  const auto s = static_cast<std::uint64_t>(seconds);
  char buf[48];
  if (s >= 3600)
    std::snprintf(buf, sizeof buf, "%lluh%02llum",
                  static_cast<unsigned long long>(s / 3600),
                  static_cast<unsigned long long>((s % 3600) / 60));
  else if (s >= 60)
    std::snprintf(buf, sizeof buf, "%llum%02llus",
                  static_cast<unsigned long long>(s / 60),
                  static_cast<unsigned long long>(s % 60));
  else
    std::snprintf(buf, sizeof buf, "%llus",
                  static_cast<unsigned long long>(s));
  return buf;
}

ProgressReporter::ProgressReporter(std::string label, std::uint64_t total,
                                   double min_interval_s, bool enabled)
    : label_(std::move(label)),
      total_(total),
      min_interval_s_(min_interval_s),
      enabled_(enabled),
      start_(std::chrono::steady_clock::now()) {}

std::string ProgressReporter::line(std::uint64_t done,
                                   double elapsed_s) const {
  const double pct =
      total_ ? 100.0 * static_cast<double>(done) / static_cast<double>(total_)
             : 100.0;
  const double rate =
      elapsed_s > 0.0 ? static_cast<double>(done) / elapsed_s : 0.0;
  // ETA policy: a positive rate with work remaining gives an estimate;
  // nothing remaining gives "-"; a zero rate (startup, stall) is *unknown*
  // — the old code rendered both cases as a confident "ETA 0s".
  std::string eta;
  if (done >= total_)
    eta = "-";
  else if (rate > 0.0)
    eta = format_duration(static_cast<double>(total_ - done) / rate);
  else
    eta = "?";
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "%s: %llu/%llu (%.1f%%) | %.2f/s | elapsed %s | ETA %s",
                label_.c_str(), static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(total_), pct, rate,
                format_duration(elapsed_s).c_str(), eta.c_str());
  return buf;
}

void ProgressReporter::print(const std::string& text) {
  if (sink_) {
    sink_(text);
    return;
  }
  std::fprintf(stderr, "  %s\n", text.c_str());
}

void ProgressReporter::tick_at(std::uint64_t count, double elapsed_s) {
  const std::uint64_t done = done_.fetch_add(count) + count;
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(print_mu_);
  if (done >= total_) {
    // The 100% line always prints — the rate limiter must not eat the
    // sweep's final status — but exactly once, even when several workers
    // finish together or a stray tick lands after the total.
    if (final_printed_) return;
    final_printed_ = true;
  } else if (elapsed_s - last_print_s_ < min_interval_s_) {
    return;
  }
  last_print_s_ = elapsed_s;
  print(line(done, elapsed_s));
}

void ProgressReporter::tick(std::uint64_t count) {
  const bool needs_clock = enabled_;
  const double elapsed =
      needs_clock
          ? std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_)
                .count()
          : 0.0;
  tick_at(count, elapsed);
}

}  // namespace musa
