#include "common/progress.hpp"

#include <cmath>
#include <cstdio>

namespace musa {

std::string format_duration(double seconds) {
  if (!(seconds >= 0.0) || !std::isfinite(seconds)) return "?";
  const auto s = static_cast<std::uint64_t>(seconds);
  char buf[48];
  if (s >= 3600)
    std::snprintf(buf, sizeof buf, "%lluh%02llum",
                  static_cast<unsigned long long>(s / 3600),
                  static_cast<unsigned long long>((s % 3600) / 60));
  else if (s >= 60)
    std::snprintf(buf, sizeof buf, "%llum%02llus",
                  static_cast<unsigned long long>(s / 60),
                  static_cast<unsigned long long>(s % 60));
  else
    std::snprintf(buf, sizeof buf, "%llus",
                  static_cast<unsigned long long>(s));
  return buf;
}

ProgressReporter::ProgressReporter(std::string label, std::uint64_t total,
                                   double min_interval_s, bool enabled)
    : label_(std::move(label)),
      total_(total),
      min_interval_s_(min_interval_s),
      enabled_(enabled),
      start_(std::chrono::steady_clock::now()) {}

std::string ProgressReporter::line(std::uint64_t done,
                                   double elapsed_s) const {
  const double pct =
      total_ ? 100.0 * static_cast<double>(done) / static_cast<double>(total_)
             : 100.0;
  const double rate =
      elapsed_s > 0.0 ? static_cast<double>(done) / elapsed_s : 0.0;
  const double eta_s =
      (rate > 0.0 && done < total_)
          ? static_cast<double>(total_ - done) / rate
          : 0.0;
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "%s: %llu/%llu (%.1f%%) | %.2f/s | elapsed %s | ETA %s",
                label_.c_str(), static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(total_), pct, rate,
                format_duration(elapsed_s).c_str(),
                format_duration(eta_s).c_str());
  return buf;
}

void ProgressReporter::tick(std::uint64_t count) {
  const std::uint64_t done = done_.fetch_add(count) + count;
  if (!enabled_) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  std::lock_guard<std::mutex> lock(print_mu_);
  if (done < total_ && elapsed - last_print_s_ < min_interval_s_) return;
  last_print_s_ = elapsed;
  std::fprintf(stderr, "  %s\n", line(done, elapsed).c_str());
}

}  // namespace musa
