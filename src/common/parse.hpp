// Strict field parsers for wire and journal text: full-consume,
// range-checked, no silent aliasing.
//
// std::atoi and an end-pointer-less strtoull both map garbage to 0 — which
// is a *valid* chunk id, epoch, and offset everywhere this codebase uses
// integers, so a malformed field would silently alias record 0 instead of
// being rejected. These helpers follow the MUSA_THREADS env-parsing
// discipline (common/parallel.cpp): the whole string must be one decimal
// number, in range, with nothing before or after it. Anything else —
// empty, leading whitespace or '+', a stray suffix, overflow, a negative
// where none is allowed — parses to false and leaves the caller to apply
// its malformed-frame policy (babble-ignore on the wire, checksum-class
// drop in the journal).
#pragma once

#include <cstdint>
#include <string>

namespace musa {

/// Non-negative decimal u64. Rejects empty strings, any non-digit byte
/// (including leading whitespace, '+', '-', and trailing garbage) and
/// values above UINT64_MAX.
bool parse_u64(const std::string& s, std::uint64_t* out);

/// Decimal int with an optional leading '-'. Same full-consume contract;
/// rejects values outside [INT_MIN, INT_MAX].
bool parse_int(const std::string& s, int* out);

}  // namespace musa
