#include "common/parse.hpp"

#include <cerrno>
#include <climits>
#include <cstdlib>

namespace musa {

bool parse_u64(const std::string& s, std::uint64_t* out) {
  // strtoull alone is not strict enough: it skips leading whitespace,
  // accepts '+'/'-' (negatives wrap to huge values), and stops at the
  // first non-digit. Gate on the first byte being a digit and the end
  // pointer consuming everything.
  if (s.empty() || s[0] < '0' || s[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno != 0) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_int(const std::string& s, int* out) {
  const bool neg = !s.empty() && s[0] == '-';
  const std::size_t first = neg ? 1 : 0;
  if (s.size() <= first || s[first] < '0' || s[first] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno != 0) return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace musa
