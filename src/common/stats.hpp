// Streaming statistics used throughout result aggregation.
#pragma once

#include <cstdint>
#include <vector>

namespace musa {

/// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of positive samples; returns 0 if empty.
double geomean(const std::vector<double>& xs);

/// Arithmetic mean; returns 0 if empty.
double mean(const std::vector<double>& xs);

/// Sample standard deviation; returns 0 for fewer than two samples.
double stddev(const std::vector<double>& xs);

/// Parallel efficiency: speedup / ideal speedup.
inline double parallel_efficiency(double speedup, int cores) {
  return cores > 0 ? speedup / static_cast<double>(cores) : 0.0;
}

}  // namespace musa
