// Streaming statistics used throughout result aggregation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace musa {

/// Welford's online algorithm: numerically stable running mean/variance.
///
/// Spread convention (shared with the free stddev() below, and locked in by
/// TestRunningStats): *sample* variance with the n-1 denominator, and 0.0
/// for fewer than two samples — n == 0 and n == 1 both report zero spread
/// rather than NaN, so aggregation code never has to special-case a
/// single-sample accumulator. merge() preserves this exactly: merging any
/// split of a sample set — including singletons — yields the same
/// count/mean/variance/min/max as accumulating the whole set into one.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of the *positive* entries of xs. Non-positive or NaN
/// entries have no defined log and are skipped (counted into *skipped when
/// provided) instead of silently poisoning the result with NaN/-inf — the
/// bug this signature replaces. Returns 0 when no positive entry remains.
/// Callers aggregating ratios that must all be positive (speedups,
/// normalised energies) should prefer geomean_strict.
double geomean(const std::vector<double>& xs,
               std::size_t* skipped = nullptr);

/// Throwing variant: any non-positive or NaN entry raises
/// SimError{config} naming the offending index and value.
double geomean_strict(const std::vector<double>& xs);

/// Arithmetic mean; returns 0 if empty.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than two
/// samples — the same convention as RunningStats::stddev, so the two are
/// interchangeable at every n.
double stddev(const std::vector<double>& xs);

/// Parallel efficiency: speedup / ideal speedup.
inline double parallel_efficiency(double speedup, int cores) {
  return cores > 0 ? speedup / static_cast<double>(cores) : 0.0;
}

}  // namespace musa
