#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace musa {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double geomean(const std::vector<double>& xs, std::size_t* skipped) {
  if (skipped) *skipped = 0;
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    // log() of a non-positive (or NaN) sample is -inf/NaN and used to leak
    // straight into the mean; such samples carry no geometric information,
    // so they are skipped and counted instead.
    if (!(x > 0.0)) {
      if (skipped) ++*skipped;
      continue;
    }
    log_sum += std::log(x);
    ++n;
  }
  if (n == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(n));
}

double geomean_strict(const std::vector<double>& xs) {
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (!(xs[i] > 0.0))
      throw SimError("geomean_strict: sample " + std::to_string(i) + " is " +
                         std::to_string(xs[i]) +
                         " (every sample must be positive)",
                     ErrorClass::kConfig);
  return geomean(xs);
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

}  // namespace musa
