// Crash-safe, append-only result journal for long-running sweeps.
//
// A journal is a sidecar file next to a final CSV artifact. Every completed
// sweep point appends one checksummed record that is flushed and fsync'd
// before the writer moves on, so a killed process loses at most the point it
// was simulating. On load, records with a bad checksum, wrong width, or a
// truncated tail are dropped (and counted) — never silently accepted — and
// the sweep recomputes exactly those points.
//
// File layout (plain text):
//
//   musa-journal v1
//   <header cells joined by ','>
//   <key> \t <cells joined by ','> \t <fnv1a-64 hex of "key\tcells">
//   ...
//
// The two header lines pin the schema: a journal written for a different
// column set is discarded wholesale instead of being misinterpreted. Keys
// identify a sweep point (e.g. "app|config-id"); a duplicate key keeps the
// last record, so re-running a point is idempotent.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace musa {

/// FNV-1a 64-bit hash — the journal's per-record integrity check.
std::uint64_t fnv1a64(const std::string& data);

class ResultJournal {
 public:
  using Entries = std::unordered_map<std::string, std::vector<std::string>>;

  /// Result of scanning a journal file without opening it for writing.
  struct LoadResult {
    Entries entries;                // valid records, last write per key wins
    std::size_t dropped = 0;        // corrupt/truncated records discarded
    bool schema_mismatch = false;   // header lines did not match `header`
  };

  /// Parses an existing journal file; a missing file yields an empty result.
  static LoadResult read(const std::string& path,
                         const std::vector<std::string>& header);

  /// Opens `path` for appending, first loading every valid record. A
  /// schema-mismatched journal is replaced by an empty one; a journal with a
  /// corrupt tail is compacted (rewritten atomically with only the valid
  /// records) so subsequent appends start on a clean line boundary.
  ResultJournal(std::string path, std::vector<std::string> header);
  ~ResultJournal();

  ResultJournal(const ResultJournal&) = delete;
  ResultJournal& operator=(const ResultJournal&) = delete;

  const std::string& path() const { return path_; }
  const Entries& entries() const { return entries_; }
  bool contains(const std::string& key) const {
    return entries_.count(key) != 0;
  }
  std::size_t size() const { return entries_.size(); }

  /// Records dropped while loading (corruption from a previous crash).
  std::size_t dropped_on_load() const { return dropped_; }

  /// Appends one record and fsyncs it before returning. Thread-safe. The
  /// key must be line-clean (no tab/newline); cells must be CSV-clean.
  void append(const std::string& key, const std::vector<std::string>& row);

  /// Closes the append handle and deletes the journal file (after the final
  /// artifact has been atomically written).
  void discard();

 private:
  std::string path_;
  std::vector<std::string> header_;
  Entries entries_;
  std::size_t dropped_ = 0;
  std::unique_ptr<class DurableAppender> out_;
  std::mutex mu_;
};

/// Every journal that belongs to `artifact_path`, i.e. files named
/// "<artifact>.journal" or "<artifact>.<anything>.journal" in the same
/// directory (shard journals use "<artifact>.shard-i-of-N.journal").
/// Sorted for deterministic merge order.
std::vector<std::string> find_journals(const std::string& artifact_path);

}  // namespace musa
