// Crash-safe, append-only result journal for long-running sweeps.
//
// A journal is a sidecar file next to a final CSV artifact. Every completed
// sweep point appends one checksummed record that is flushed and fsync'd
// before the writer moves on, so a killed process loses at most the point it
// was simulating. On load, records with a bad checksum, wrong width, or a
// truncated tail are dropped (and counted) — never silently accepted — and
// the sweep recomputes exactly those points.
//
// File layout (plain text):
//
//   musa-journal v1
//   <header cells joined by ','>
//   <key> \t <cells joined by ','> \t <fnv1a-64 hex of "key\tcells">
//   ...
//
// The two header lines pin the schema: a journal written for a different
// column set is discarded wholesale instead of being misinterpreted. Keys
// identify a sweep point (e.g. "app|config-id"); a duplicate key keeps the
// last record, so re-running a point is idempotent.
//
// Quarantine (FAIL) rows share the record format under a reserved key
// prefix: a record with key "FAIL!<key>" carries the fixed four-cell
// payload {error class, stage, attempts, message} instead of a result row.
// Resolution is idempotent and order-independent: a good row for a key
// always supersedes any FAIL row for the same key (a quarantine must never
// shadow a real result), and duplicate FAIL rows dedupe to the last one.
//
// Lease (LEASE) rows are the elastic sweep controller's audit log, under a
// second reserved key prefix: a record with key "LEASE!<seq>" carries the
// fixed six-cell payload {event, chunk, worker, begin, end, detail}. They
// never shadow result keys — loaders keep them in a separate, file-ordered
// list — so a controller journal can interleave lease events with the
// result rows its in-process fallback computes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace musa {

/// FNV-1a 64-bit hash — the journal's per-record integrity check.
std::uint64_t fnv1a64(const std::string& data);

/// One lease-lifecycle event journaled by the elastic sweep controller.
/// `event` is one of the known_lease_event() vocabulary; an event outside
/// it means writer/reader version skew and is flagged by the lint tools.
struct LeaseRecord {
  std::string event;            // granted | revoked | committed | ...
  int chunk = -1;               // chunk id (-1 = not chunk-scoped)
  int worker = -1;              // worker spawn id (-1 = controller)
  std::uint64_t begin = 0;      // chunk's [begin, end) slice of the
  std::uint64_t end = 0;        //   pending-point list
  std::string detail;           // revocation reason, pid, ... ("" = none)
};

/// The lease-event vocabulary this reader understands. Writers must not
/// invent events outside it: per the journal version-skew policy, an
/// unknown event is a lint violation, not something to skip silently.
bool known_lease_event(const std::string& event);

class ResultJournal {
 public:
  using Entries = std::unordered_map<std::string, std::vector<std::string>>;

  /// One quarantined point: why it failed, where, after how many attempts.
  struct FailRecord {
    std::string error_class;  // error_class_name() of the final failure
    std::string stage;        // pipeline stage marker ("" when unknown)
    int attempts = 0;         // attempts consumed before quarantine
    std::string message;      // sanitised exception text
  };
  using Fails = std::unordered_map<std::string, FailRecord>;

  /// Result of scanning a journal file without opening it for writing.
  struct LoadResult {
    Entries entries;                // valid records, last write per key wins
    Fails fails;                    // quarantined keys without a good row
    std::vector<LeaseRecord> leases;  // lease events, in file order
    std::size_t dropped = 0;        // corrupt/truncated records discarded
    bool schema_mismatch = false;   // header lines did not match `header`
  };

  /// Parses an existing journal file; a missing file yields an empty result.
  static LoadResult read(const std::string& path,
                         const std::vector<std::string>& header);

  /// Opens `path` for appending, first loading every valid record. A
  /// schema-mismatched journal is replaced by an empty one; a journal with a
  /// corrupt tail is compacted (rewritten atomically with only the valid
  /// records) so subsequent appends start on a clean line boundary.
  ResultJournal(std::string path, std::vector<std::string> header);
  ~ResultJournal();

  ResultJournal(const ResultJournal&) = delete;
  ResultJournal& operator=(const ResultJournal&) = delete;

  const std::string& path() const { return path_; }
  const Entries& entries() const { return entries_; }
  bool contains(const std::string& key) const {
    return entries_.count(key) != 0;
  }
  std::size_t size() const { return entries_.size(); }

  /// Records dropped while loading (corruption from a previous crash).
  std::size_t dropped_on_load() const { return dropped_; }

  /// Quarantined keys loaded or appended, minus any key that also has a
  /// good row (good always supersedes FAIL).
  const Fails& fails() const { return fails_; }
  bool contains_fail(const std::string& key) const {
    return fails_.count(key) != 0;
  }

  /// Thread-safe single-key lookups, for callers that read the journal
  /// while other threads append to it (the DSE server answers queries from
  /// the cache concurrently with computing into it). entries()/fails()
  /// stay the cheap unlocked views for single-threaded load/merge code.
  bool find_row(const std::string& key, std::vector<std::string>* row) const;
  bool find_fail(const std::string& key, FailRecord* fail) const;

  /// Appends one record and fsyncs it before returning. Thread-safe. The
  /// key must be line-clean (no tab/newline); cells must be CSV-clean.
  /// A good row retires any in-memory FAIL record for the same key.
  void append(const std::string& key, const std::vector<std::string>& row);

  /// Appends a quarantine (FAIL) record for `key`. The message is
  /// sanitised (delimiters stripped, length-bounded) rather than rejected —
  /// quarantine must never fail because an exception text contained a
  /// comma. Thread-safe.
  void append_fail(const std::string& key, const FailRecord& fail);

  /// Appends one lease-lifecycle record (the string fields are sanitised
  /// like FAIL messages). Lease records are an append-only audit log: they
  /// never affect entries()/fails() or the good-beats-FAIL resolution.
  /// Thread-safe.
  void append_lease(const LeaseRecord& lease);

  /// Lease records loaded plus appended, in order.
  const std::vector<LeaseRecord>& leases() const { return leases_; }

  /// Chaos/test hook: transforms a serialised record line just before it
  /// hits the appender (the checksum is already inside the line, so any
  /// mutation is detectable on load). A mutated record is treated as lost:
  /// it is not entered into the in-memory maps, exactly matching what a
  /// process restart would observe. Install before concurrent appends.
  using AppendMutator =
      std::function<std::string(const std::string& key,
                                const std::string& line)>;
  void set_append_mutator(AppendMutator mutator);

  /// Closes the append handle and deletes the journal file (after the final
  /// artifact has been atomically written).
  void discard();

 private:
  std::string path_;
  std::vector<std::string> header_;
  Entries entries_;
  Fails fails_;
  std::vector<LeaseRecord> leases_;
  std::size_t dropped_ = 0;
  std::unique_ptr<class DurableAppender> out_;
  AppendMutator mutator_;
  mutable std::mutex mu_;
};

/// Incremental reader for a journal another process is appending to — the
/// controller's continuous-ingestion view of its workers' journals,
/// replacing merge-at-finalize for progress tracking. Each poll() returns
/// exactly the records that became durable (complete, newline-terminated,
/// checksum-valid) since the previous poll. A partial tail record — the
/// writer was mid-append, or died mid-append — is left unconsumed and
/// retried on the next poll. Replacement of the file (the owning process
/// compacted it via atomic rename) or truncation is detected from the
/// inode+size stamp of the very handle the bytes were read from, and the
/// new file is re-read from the start; consumers must treat re-delivered
/// records as idempotent, which the journal's key semantics already are.
class JournalTailer {
 public:
  JournalTailer(std::string path, std::vector<std::string> header);

  struct Batch {
    std::vector<std::pair<std::string, std::vector<std::string>>> entries;
    std::vector<std::string> fail_keys;  // keys of FAIL rows, prefix stripped
    std::vector<LeaseRecord> leases;
    std::size_t dropped = 0;             // checksum/width rejects
  };

  /// Reads and parses everything new; cheap no-op when the file is
  /// unchanged or absent.
  Batch poll();

  /// Byte offset of the next unread record (0 until the file exists).
  std::uint64_t offset() const { return offset_; }

 private:
  std::string path_;
  std::vector<std::string> header_;
  std::uint64_t offset_ = 0;
  std::uint64_t inode_ = 0;
  int header_lines_ = 0;  // header lines consumed (2 = record region)
  bool schema_bad_ = false;
};

/// Every journal that belongs to `artifact_path`, i.e. files named
/// "<artifact>.journal" or "<artifact>.<anything>.journal" in the same
/// directory (shard journals use "<artifact>.shard-i-of-N.journal").
/// Sorted for deterministic merge order.
std::vector<std::string> find_journals(const std::string& artifact_path);

}  // namespace musa
