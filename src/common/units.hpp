// Physical/simulation units used across the MUSA libraries.
//
// Convention: microarchitectural simulators count in *cycles* (uint64_t);
// system-level components (network, power, reports) use *seconds* (double).
// Conversions always go through Frequency to keep the clock domain explicit.
#pragma once

#include <cstdint>

namespace musa {

using Cycle = std::uint64_t;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;

constexpr std::uint64_t kKiB = 1024ull;
constexpr std::uint64_t kMiB = 1024ull * kKiB;
constexpr std::uint64_t kGiB = 1024ull * kMiB;

/// A clock domain. Converts between cycles and wall-clock seconds.
struct Frequency {
  double ghz = 1.0;

  constexpr double hz() const { return ghz * 1e9; }
  constexpr double period_ns() const { return 1.0 / ghz; }
  constexpr double cycles_to_seconds(double cycles) const {
    return cycles / hz();
  }
  constexpr double seconds_to_cycles(double seconds) const {
    return seconds * hz();
  }
};

/// Bandwidth helper: bytes over seconds, reported in GB/s (1e9 bytes/s).
constexpr double bytes_per_s_to_gbps(double bps) { return bps / 1e9; }

}  // namespace musa
