// Minimal deterministic work-sharing helper for embarrassingly parallel
// sweeps (the DSE engine's 4320 independent simulations).
#pragma once

#include <cstdint>
#include <functional>

namespace musa {

/// Number of worker threads to use by default: the hardware concurrency,
/// overridable with the MUSA_THREADS environment variable (0/1 = serial).
int default_thread_count();

/// Runs fn(i) for i in [0, n) on up to `threads` workers. Indices are
/// block-partitioned, so writes to disjoint slots of a pre-sized vector are
/// race-free and the result layout is identical to a serial run. Exceptions
/// thrown by fn are rethrown on the calling thread (first one wins).
void parallel_for(std::uint64_t n, int threads,
                  const std::function<void(std::uint64_t)>& fn);

/// Block-granular variant: fn(begin, end) once per contiguous block, one
/// block per worker. Lets callers build per-worker state (a simulator
/// instance, an accumulator) exactly once per thread.
void parallel_blocks(std::uint64_t n, int threads,
                     const std::function<void(std::uint64_t, std::uint64_t)>& fn);

}  // namespace musa
