// Work-sharing helpers for embarrassingly parallel sweeps (the DSE
// engine's 4320 independent simulations): static block partitioning for
// uniform work, and a dynamic chunk-stealing queue for skewed work, where
// per-item cost varies >10x and static blocks leave threads idle at the
// tail.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

namespace musa {

/// Number of worker threads to use by default: the hardware concurrency,
/// overridable with the MUSA_THREADS environment variable (0/1 = serial).
/// MUSA_THREADS must be a plain non-negative integer; garbage, negative, or
/// overflowing values are rejected (with a stderr warning) rather than
/// silently mis-parsed, and huge values clamp to a sane pool size.
int default_thread_count();

/// Runs fn(i) for i in [0, n) on up to `threads` workers. Indices are
/// block-partitioned, so writes to disjoint slots of a pre-sized vector are
/// race-free and the result layout is identical to a serial run. Exceptions
/// thrown by fn are rethrown on the calling thread (first one wins); the
/// first exception also cancels indices not yet started on every worker,
/// so a failing sweep aborts promptly instead of simulating the remaining
/// thousands of points first.
void parallel_for(std::uint64_t n, int threads,
                  const std::function<void(std::uint64_t)>& fn);

/// Block-granular variant: fn(begin, end) once per contiguous block, one
/// block per worker. Lets callers build per-worker state (a simulator
/// instance, an accumulator) exactly once per thread.
void parallel_blocks(std::uint64_t n, int threads,
                     const std::function<void(std::uint64_t, std::uint64_t)>& fn);

/// Thread-safe dispenser of index chunks for dynamic work sharing: each
/// next() hands out the next `chunk`-sized range [begin, end) until the
/// space [0, n) is exhausted. Fast workers simply come back for more, so a
/// few expensive items cannot strand the rest of the pool behind one thread.
class WorkQueue {
 public:
  explicit WorkQueue(std::uint64_t n, std::uint64_t chunk = 1);

  /// Claims the next chunk. Returns false when no work remains or the
  /// queue has been cancelled.
  bool next(std::uint64_t& begin, std::uint64_t& end);

  /// Stops handing out work: every subsequent next() returns false.
  /// Chunks already claimed keep running — cancellation is cooperative.
  /// Called by parallel_dynamic when a worker throws, and by the DSE
  /// engine's fail-fast path.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  std::uint64_t size() const { return n_; }

 private:
  std::uint64_t n_;
  std::uint64_t chunk_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<bool> cancelled_{false};
};

/// Runs fn(worker_index) on up to `threads` workers (at least one). Workers
/// typically construct per-thread state (a simulator instance) once, then
/// drain a shared WorkQueue. Exceptions thrown by fn are rethrown on the
/// calling thread (first one wins).
void parallel_workers(int threads, const std::function<void(int)>& fn);

/// Dynamic counterpart of parallel_for: fn(i) for i in [0, n), scheduled in
/// `chunk`-sized ranges stolen from a shared queue, so skewed per-item cost
/// balances across workers automatically. The first exception cancels the
/// queue (remaining chunks are never claimed) and is rethrown on the
/// calling thread.
void parallel_dynamic(std::uint64_t n, int threads, std::uint64_t chunk,
                      const std::function<void(std::uint64_t)>& fn);

}  // namespace musa
