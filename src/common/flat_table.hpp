// Open-addressed hash table for 64-bit keys on simulator hot paths.
//
// The prefetcher's region/in-flight tables sit on the per-memory-access
// path of the core model; std::unordered_map costs a node allocation per
// insert and a pointer chase per probe there. FlatTable64 stores key/value
// slots contiguously (linear probing, backward-shift deletion, power-of-two
// capacity), so the common hit is one cache line and inserts never allocate
// until the table grows.
//
// Not a general-purpose map: keys are raw uint64_t, the value ~0ull is
// reserved as the empty-slot sentinel, and iteration order is unspecified.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace musa {

template <typename V>
class FlatTable64 {
 public:
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  /// `expected` sizes the table for that many entries without growth
  /// (capacity = next power of two above expected / kMaxLoad).
  explicit FlatTable64(std::size_t expected = 16) {
    std::size_t cap = 16;
    while (cap * kMaxLoadNum < expected * kMaxLoadDen) cap <<= 1;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  void clear() {
    for (auto& s : slots_) s.key = kEmptyKey;
    size_ = 0;
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  V* find(std::uint64_t key) {
    std::size_t i = probe_of(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == kEmptyKey) return nullptr;
      i = (i + 1) & mask_;
    }
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatTable64*>(this)->find(key);
  }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  /// Value for `key`, default-constructing it if absent (operator[]).
  V& find_or_insert(std::uint64_t key) {
    MUSA_DCHECK_MSG(key != kEmptyKey, "key collides with empty sentinel");
    std::size_t i = probe_of(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == kEmptyKey) {
        if ((size_ + 1) * kMaxLoadDen > capacity() * kMaxLoadNum) {
          grow();
          return find_or_insert(key);
        }
        s.key = key;
        s.value = V{};
        ++size_;
        return s.value;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Inserts key -> value, overwriting any existing entry.
  void insert(std::uint64_t key, const V& value) {
    find_or_insert(key) = value;
  }

  /// Removes `key` if present; returns whether an entry was removed.
  /// Backward-shift deletion keeps probe sequences intact with no
  /// tombstones, so lookup cost never degrades with churn.
  bool erase(std::uint64_t key) {
    std::size_t i = probe_of(key);
    while (true) {
      if (slots_[i].key == kEmptyKey) return false;
      if (slots_[i].key == key) break;
      i = (i + 1) & mask_;
    }
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask_;
    while (slots_[j].key != kEmptyKey) {
      const std::size_t home = probe_of(slots_[j].key);
      // Shift j back into the hole unless j sits between its home slot and
      // the hole (cyclically), in which case the probe chain still works.
      const bool keep = ((j - home) & mask_) < ((j - hole) & mask_);
      if (!keep) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole].key = kEmptyKey;
    --size_;
    return true;
  }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    V value{};
  };

  // Max load factor 7/8: probes stay short while slots stay dense.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  std::size_t probe_of(std::uint64_t key) const {
    // Fibonacci hashing spreads dense keys (line numbers, region ids)
    // across the table; a multiply is cheaper than a general hash.
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ull) >>
                                    (64 - __builtin_ctzll(mask_ + 1))) &
           mask_;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (const Slot& s : old)
      if (s.key != kEmptyKey) {
        // Re-insert without load-factor checks: capacity already doubled.
        std::size_t i = probe_of(s.key);
        while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
        slots_[i] = s;
        ++size_;
      }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace musa
