// Durable file-system primitives shared by the CSV cache and the sweep
// journal: atomic whole-file replacement (tmp + fsync + rename) and an
// fsync'd append handle. Both exist so that a crash at any instant leaves
// either the old artifact or the new one on disk — never a half-written
// hybrid that parses cleanly and silently corrupts downstream figures.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace musa {

/// Writes `content` to `path` atomically: the bytes land in `<path>.tmp`,
/// are flushed and fsync'd, and the temp file is rename(2)'d over `path`.
/// Readers see either the previous file or the complete new one.
void atomic_write_file(const std::string& path, const std::string& content);

/// Identity snapshot of a file, for detecting replacement (an atomic
/// rewrite swaps the inode) and truncation between reads. `inode` is 0 on
/// platforms without one; `size` alone still catches truncation there.
struct FileStamp {
  bool exists = false;
  std::uint64_t inode = 0;
  std::uint64_t size = 0;
};

/// Stamps `path` without opening it; `exists == false` when absent.
FileStamp stat_file(const std::string& path);

/// Reads `path` from byte `offset` to EOF. When `stamp` is non-null it is
/// filled from the *open* handle (fstat), so identity and content are a
/// consistent snapshot — the caller can detect that the file it read is not
/// the file it expected, with no stat-then-open race. A missing file reads
/// as empty with `stamp->exists == false`; an offset past EOF reads empty.
std::string read_file_from(const std::string& path, std::uint64_t offset,
                           FileStamp* stamp = nullptr);

/// Append-only file handle whose append() does not return until the bytes
/// are flushed and fsync'd — the durability backbone of the sweep journal.
/// Not thread-safe; callers serialise externally.
class DurableAppender {
 public:
  /// Opens `path` for appending, creating it if absent; throws SimError on
  /// failure.
  explicit DurableAppender(const std::string& path);
  ~DurableAppender();

  DurableAppender(const DurableAppender&) = delete;
  DurableAppender& operator=(const DurableAppender&) = delete;

  /// Appends `data` verbatim, then fflush + fsync.
  void append(const std::string& data);

  void close();

 private:
  std::FILE* out_ = nullptr;
};

}  // namespace musa
