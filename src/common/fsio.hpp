// Durable file-system primitives shared by the CSV cache and the sweep
// journal: atomic whole-file replacement (tmp + fsync + rename) and an
// fsync'd append handle. Both exist so that a crash at any instant leaves
// either the old artifact or the new one on disk — never a half-written
// hybrid that parses cleanly and silently corrupts downstream figures.
#pragma once

#include <cstdio>
#include <string>

namespace musa {

/// Writes `content` to `path` atomically: the bytes land in `<path>.tmp`,
/// are flushed and fsync'd, and the temp file is rename(2)'d over `path`.
/// Readers see either the previous file or the complete new one.
void atomic_write_file(const std::string& path, const std::string& content);

/// Append-only file handle whose append() does not return until the bytes
/// are flushed and fsync'd — the durability backbone of the sweep journal.
/// Not thread-safe; callers serialise externally.
class DurableAppender {
 public:
  /// Opens `path` for appending, creating it if absent; throws SimError on
  /// failure.
  explicit DurableAppender(const std::string& path);
  ~DurableAppender();

  DurableAppender(const DurableAppender&) = delete;
  DurableAppender& operator=(const DurableAppender&) = delete;

  /// Appends `data` verbatim, then fflush + fsync.
  void append(const std::string& data);

  void close();

 private:
  std::FILE* out_ = nullptr;
};

}  // namespace musa
