// Error-handling helpers: invariant checks that throw instead of aborting so
// library users (and tests) can recover and report.
#pragma once

#include <stdexcept>
#include <string>

namespace musa {

/// Exception thrown when a simulation invariant or configuration constraint
/// is violated. All MUSA libraries report misuse through this type.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw SimError(std::string(file) + ":" + std::to_string(line) +
                 ": check failed: " + expr + (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace musa

/// Invariant check: throws musa::SimError on failure. Always enabled — these
/// guard configuration and trace-consistency errors, not hot inner loops.
#define MUSA_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr))                                                         \
      ::musa::detail::check_failed(#expr, __FILE__, __LINE__, {});       \
  } while (0)

#define MUSA_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr))                                                         \
      ::musa::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)

/// Debug-only invariant check for hot inner loops (per-access, per-cycle
/// paths) where an always-on MUSA_CHECK would cost measurable throughput.
/// Enabled when MUSA_DCHECK_ENABLED is 1; by default that follows the build
/// type (on unless NDEBUG). Override from the build system with
/// -DMUSA_DCHECK_ENABLED=1 (the MUSA_DCHECK CMake option does this) to keep
/// the checks in optimized builds.
#ifndef MUSA_DCHECK_ENABLED
#ifdef NDEBUG
#define MUSA_DCHECK_ENABLED 0
#else
#define MUSA_DCHECK_ENABLED 1
#endif
#endif

#if MUSA_DCHECK_ENABLED
#define MUSA_DCHECK(expr) MUSA_CHECK(expr)
#define MUSA_DCHECK_MSG(expr, msg) MUSA_CHECK_MSG(expr, msg)
#else
// sizeof keeps `expr` syntactically alive (no unused-variable warnings)
// without evaluating it.
#define MUSA_DCHECK(expr) static_cast<void>(sizeof(!(expr)))
#define MUSA_DCHECK_MSG(expr, msg) static_cast<void>(sizeof(!(expr)))
#endif
