// Error-handling helpers: invariant checks that throw instead of aborting so
// library users (and tests) can recover and report.
#pragma once

#include <stdexcept>
#include <string>

namespace musa {

/// Why a simulation failed — the key the sweep supervisor's containment
/// policy dispatches on (DESIGN.md "Failure model"). Transient classes
/// (`kIo`) are retried with backoff; deterministic ones (`kModel`,
/// `kInvariant`, `kConfig`) are quarantined on the first attempt, because a
/// deterministic simulator will fail the same way every time.
enum class ErrorClass {
  kConfig,     // invalid machine/sweep configuration (pre-simulation lint)
  kIo,         // filesystem / serialisation failure (possibly transient)
  kModel,      // simulator defect or unclassified exception
  kInvariant,  // physical-consistency violation on a fresh result
  kTimeout,    // per-point watchdog budget exceeded (common/deadline.hpp)
  kInjected,   // deterministic fault injection (verify/faultpoint.hpp)
};

/// Stable lowercase names ("config", "io", ...) — the journal's FAIL-row
/// encoding of the class, shared with tools/journal_status.py.
inline const char* error_class_name(ErrorClass cls) {
  switch (cls) {
    case ErrorClass::kConfig: return "config";
    case ErrorClass::kIo: return "io";
    case ErrorClass::kModel: return "model";
    case ErrorClass::kInvariant: return "invariant";
    case ErrorClass::kTimeout: return "timeout";
    case ErrorClass::kInjected: return "injected";
  }
  return "model";
}

/// Inverse of error_class_name; unknown names map to kModel (a journal
/// written by a newer build must degrade, not crash the reader).
inline ErrorClass error_class_from_name(const std::string& name) {
  for (ErrorClass cls : {ErrorClass::kConfig, ErrorClass::kIo,
                         ErrorClass::kModel, ErrorClass::kInvariant,
                         ErrorClass::kTimeout, ErrorClass::kInjected})
    if (name == error_class_name(cls)) return cls;
  return ErrorClass::kModel;
}

/// Exception thrown when a simulation invariant or configuration constraint
/// is violated. All MUSA libraries report misuse through this type. Each
/// error carries an ErrorClass (so containment policy can key on *why* the
/// point died) and optionally the pipeline stage that raised it.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what,
                    ErrorClass cls = ErrorClass::kModel,
                    std::string stage = {})
      : std::runtime_error(what), cls_(cls), stage_(std::move(stage)) {}

  ErrorClass error_class() const { return cls_; }

  /// Pipeline stage that raised the error ("" when unknown; the sweep
  /// supervisor falls back to the thread's deadline stage marker).
  const std::string& stage() const { return stage_; }

 private:
  ErrorClass cls_;
  std::string stage_;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw SimError(std::string(file) + ":" + std::to_string(line) +
                 ": check failed: " + expr + (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace musa

/// Invariant check: throws musa::SimError on failure. Always enabled — these
/// guard configuration and trace-consistency errors, not hot inner loops.
#define MUSA_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr))                                                         \
      ::musa::detail::check_failed(#expr, __FILE__, __LINE__, {});       \
  } while (0)

#define MUSA_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr))                                                         \
      ::musa::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)

/// Debug-only invariant check for hot inner loops (per-access, per-cycle
/// paths) where an always-on MUSA_CHECK would cost measurable throughput.
/// Enabled when MUSA_DCHECK_ENABLED is 1; by default that follows the build
/// type (on unless NDEBUG). Override from the build system with
/// -DMUSA_DCHECK_ENABLED=1 (the MUSA_DCHECK CMake option does this) to keep
/// the checks in optimized builds.
#ifndef MUSA_DCHECK_ENABLED
#ifdef NDEBUG
#define MUSA_DCHECK_ENABLED 0
#else
#define MUSA_DCHECK_ENABLED 1
#endif
#endif

#if MUSA_DCHECK_ENABLED
#define MUSA_DCHECK(expr) MUSA_CHECK(expr)
#define MUSA_DCHECK_MSG(expr, msg) MUSA_CHECK_MSG(expr, msg)
#else
// sizeof keeps `expr` syntactically alive (no unused-variable warnings)
// without evaluating it.
#define MUSA_DCHECK(expr) static_cast<void>(sizeof(!(expr)))
#define MUSA_DCHECK_MSG(expr, msg) static_cast<void>(sizeof(!(expr)))
#endif
