#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace musa {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MUSA_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(std::string text) {
  MUSA_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  MUSA_CHECK_MSG(rows_.back().size() < header_.size(),
                 "more cells than header columns");
  rows_.back().push_back(std::move(text));
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return cell(std::string(buf));
}

TextTable& TextTable::cell(long long value) {
  return cell(std::to_string(value));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells, bool pad_right) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string text = c < cells.size() ? cells[c] : "";
      if (c) out << " | ";
      if (pad_right || c == 0) {
        out << text << std::string(width[c] - text.size(), ' ');
      } else {
        out << std::string(width[c] - text.size(), ' ') << text;
      }
    }
    out << '\n';
  };
  emit_row(header_, /*pad_right=*/true);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) out << "-+-";
    out << std::string(width[c], '-');
  }
  out << '\n';
  for (const auto& r : rows_) emit_row(r, /*pad_right=*/false);
  return out.str();
}

}  // namespace musa
