#include "common/journal.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/fsio.hpp"
#include "common/parse.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace musa {

namespace {

obs::Counter& append_count() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("journal.append.count");
  return c;
}

obs::Counter& fail_row_count() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("journal.append.fail_rows");
  return c;
}

obs::Counter& dropped_records() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("journal.dropped_records");
  return c;
}

obs::Histogram& append_us() {
  static obs::Histogram& h =
      obs::MetricRegistry::global().histogram("journal.append.us");
  return h;
}

constexpr const char* kMagic = "musa-journal v1";
/// Reserved key prefix marking a quarantine (FAIL) record; its payload is
/// the fixed four-cell {class, stage, attempts, message} schema.
constexpr const char* kFailPrefix = "FAIL!";
constexpr std::size_t kFailCells = 4;
constexpr std::size_t kFailMessageMax = 240;
/// Reserved key prefix marking a lease-lifecycle record; its payload is the
/// fixed six-cell {event, chunk, worker, begin, end, detail} schema.
constexpr const char* kLeasePrefix = "LEASE!";
constexpr std::size_t kLeaseCells = 6;

std::string join(const std::vector<std::string>& cells, char sep) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out.push_back(sep);
    out += cells[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == sep) {
      out.push_back(cur);
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string record_line(const std::string& key,
                        const std::vector<std::string>& cells) {
  const std::string payload = key + '\t' + join(cells, ',');
  return payload + '\t' + hex64(fnv1a64(payload)) + '\n';
}

bool line_clean(const std::string& s) {
  return s.find_first_of("\t\n\r") == std::string::npos;
}

bool has_fail_prefix(const std::string& key) {
  return key.compare(0, std::strlen(kFailPrefix), kFailPrefix) == 0;
}

bool has_lease_prefix(const std::string& key) {
  return key.compare(0, std::strlen(kLeasePrefix), kLeasePrefix) == 0;
}

/// Exception texts are arbitrary; make them record-safe instead of letting
/// a comma in a message abort the quarantine path.
std::string sanitize_message(std::string msg) {
  for (char& ch : msg)
    if (ch == '\t' || ch == '\n' || ch == '\r' || ch == ',') ch = ';';
  if (msg.size() > kFailMessageMax) {
    msg.resize(kFailMessageMax - 3);
    msg += "...";
  }
  return msg;
}

std::vector<std::string> fail_cells(const ResultJournal::FailRecord& fail) {
  return {sanitize_message(fail.error_class), sanitize_message(fail.stage),
          std::to_string(fail.attempts), sanitize_message(fail.message)};
}

/// Strict FAIL payload decode. A numeric cell that does not parse exactly
/// (non-numeric, trailing bytes, negative, overflow) fails the whole
/// record — the checksum proves the bytes are what the writer sent, so a
/// malformed cell means writer/reader version skew or a writer bug, and
/// the record is treated like any other corrupt row: dropped and the
/// point recomputed, never a zero-attempts quarantine.
bool parse_fail(const std::vector<std::string>& cells,
                ResultJournal::FailRecord* fail) {
  if (!parse_int(cells[2], &fail->attempts) || fail->attempts < 0)
    return false;
  fail->error_class = cells[0];
  fail->stage = cells[1];
  fail->message = cells[3];
  return true;
}

std::vector<std::string> lease_cells(const LeaseRecord& lease) {
  return {sanitize_message(lease.event), std::to_string(lease.chunk),
          std::to_string(lease.worker), std::to_string(lease.begin),
          std::to_string(lease.end), sanitize_message(lease.detail)};
}

/// Strict LEASE payload decode, same policy as parse_fail: a malformed
/// numeric cell is a checksum-class violation (record dropped + counted),
/// never a zero-valued lease event that would corrupt the audit trail.
bool parse_lease(const std::vector<std::string>& cells, LeaseRecord* lease) {
  if (!parse_int(cells[1], &lease->chunk) || lease->chunk < -1) return false;
  if (!parse_int(cells[2], &lease->worker) || lease->worker < -1) return false;
  if (!parse_u64(cells[3], &lease->begin)) return false;
  if (!parse_u64(cells[4], &lease->end)) return false;
  lease->event = cells[0];
  lease->detail = cells[5];
  return true;
}

/// One parsed journal record line. kBad covers every reject: wrong part
/// count, checksum mismatch, wrong cell width for the key's record type.
struct ParsedRecord {
  enum class Kind { kBad, kEntry, kFail, kLease };
  Kind kind = Kind::kBad;
  std::string key;                 // entry key, or FAIL key prefix-stripped
  std::vector<std::string> cells;  // entry row cells
  ResultJournal::FailRecord fail;
  LeaseRecord lease;
};

ParsedRecord parse_record(const std::string& line,
                          const std::vector<std::string>& header) {
  ParsedRecord rec;
  const std::vector<std::string> parts = split(line, '\t');
  if (parts.size() != 3) return rec;
  const std::string payload = parts[0] + '\t' + parts[1];
  if (hex64(fnv1a64(payload)) != parts[2]) return rec;
  std::vector<std::string> cells = split(parts[1], ',');
  if (has_fail_prefix(parts[0])) {
    if (cells.size() != kFailCells) return rec;
    if (!parse_fail(cells, &rec.fail)) return rec;
    rec.kind = ParsedRecord::Kind::kFail;
    rec.key = parts[0].substr(std::strlen(kFailPrefix));
    return rec;
  }
  if (has_lease_prefix(parts[0])) {
    if (cells.size() != kLeaseCells) return rec;
    if (!parse_lease(cells, &rec.lease)) return rec;
    rec.kind = ParsedRecord::Kind::kLease;
    return rec;
  }
  if (cells.size() != header.size()) return rec;
  rec.kind = ParsedRecord::Kind::kEntry;
  rec.key = parts[0];
  rec.cells = std::move(cells);
  return rec;
}

}  // namespace

bool known_lease_event(const std::string& event) {
  for (const char* known : {"granted", "revoked", "committed", "spawned",
                            "respawned", "killed", "inprocess", "abandoned"})
    if (event == known) return true;
  return false;
}

std::uint64_t fnv1a64(const std::string& data) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

ResultJournal::LoadResult ResultJournal::read(
    const std::string& path, const std::vector<std::string>& header) {
  LoadResult out;
  std::ifstream in(path);
  if (!in.good()) return out;

  std::string line;
  if (!std::getline(in, line) || split(line, '\t')[0] != kMagic) {
    out.schema_mismatch = true;
    return out;
  }
  if (!std::getline(in, line) || split(line, ',') != header) {
    out.schema_mismatch = true;
    return out;
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ParsedRecord rec = parse_record(line, header);
    switch (rec.kind) {
      case ParsedRecord::Kind::kBad:
        ++out.dropped;
        break;
      case ParsedRecord::Kind::kFail:
        out.fails[rec.key] = std::move(rec.fail);
        break;
      case ParsedRecord::Kind::kLease:
        out.leases.push_back(std::move(rec.lease));
        break;
      case ParsedRecord::Kind::kEntry:
        out.entries[rec.key] = std::move(rec.cells);
        break;
    }
  }
  // A file that ends without a final newline has a truncated tail record;
  // the checksum (or part count) already rejected it above.

  // Good-beats-FAIL resolution, independent of record order: a key that
  // eventually produced a result is not quarantined, no matter how many
  // FAIL rows an earlier run appended for it.
  for (auto it = out.fails.begin(); it != out.fails.end();)
    it = out.entries.count(it->first) != 0 ? out.fails.erase(it) : ++it;
  return out;
}

ResultJournal::ResultJournal(std::string path, std::vector<std::string> header)
    : path_(std::move(path)), header_(std::move(header)) {
  MUSA_CHECK_MSG(!header_.empty(), "journal header must be non-empty");
  for (const auto& col : header_)
    MUSA_CHECK_MSG(line_clean(col) && col.find(',') == std::string::npos,
                   "journal header cell contains a delimiter: " + col);

  LoadResult loaded = read(path_, header_);
  if (loaded.schema_mismatch) {
    std::fprintf(stderr,
                 "[journal] %s: schema mismatch, starting a fresh journal\n",
                 path_.c_str());
    loaded = LoadResult{};
  }
  entries_ = std::move(loaded.entries);
  fails_ = std::move(loaded.fails);
  leases_ = std::move(loaded.leases);
  dropped_ = loaded.dropped;
  if (dropped_ > 0) dropped_records().add(dropped_);

  // Compact: rewrite only the valid records so a corrupt tail from a crash
  // (or a stale-schema file) cannot collide with the next append. Surviving
  // FAIL rows (quarantines without a good row) are kept — they are what
  // --retry-failed and the quarantine report resume from — and lease
  // records are kept in order (renumbered): they are the controller's
  // audit log across restarts.
  std::string text = std::string(kMagic) + '\n' + join(header_, ',') + '\n';
  for (const auto& [key, cells] : entries_) text += record_line(key, cells);
  for (const auto& [key, fail] : fails_)
    text += record_line(kFailPrefix + key, fail_cells(fail));
  for (std::size_t i = 0; i < leases_.size(); ++i)
    text += record_line(kLeasePrefix + std::to_string(i),
                        lease_cells(leases_[i]));
  atomic_write_file(path_, text);
  out_ = std::make_unique<DurableAppender>(path_);
}

ResultJournal::~ResultJournal() = default;

bool ResultJournal::find_row(const std::string& key,
                             std::vector<std::string>* row) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  if (row != nullptr) *row = it->second;
  return true;
}

bool ResultJournal::find_fail(const std::string& key,
                              FailRecord* fail) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = fails_.find(key);
  if (it == fails_.end()) return false;
  if (fail != nullptr) *fail = it->second;
  return true;
}

void ResultJournal::append(const std::string& key,
                           const std::vector<std::string>& row) {
  MUSA_CHECK_MSG(line_clean(key), "journal key contains a delimiter: " + key);
  MUSA_CHECK_MSG(row.size() == header_.size(),
                 "journal record width mismatches header");
  for (const auto& cell : row)
    MUSA_CHECK_MSG(line_clean(cell) && cell.find(',') == std::string::npos,
                   "journal cell contains a delimiter: " + cell);
  MUSA_CHECK_MSG(!has_fail_prefix(key),
                 "journal key collides with the FAIL prefix: " + key);
  MUSA_CHECK_MSG(!has_lease_prefix(key),
                 "journal key collides with the LEASE prefix: " + key);
  const std::string line = record_line(key, row);
  obs::Span span("journal.append", key);
  const auto t0 = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  MUSA_CHECK_MSG(out_ != nullptr, "append on a discarded journal");
  if (mutator_) {
    const std::string mutated = mutator_(key, line);
    if (mutated != line) {
      // A mutated record is lost work: write the damaged bytes (the next
      // load drops them via the checksum) but do not remember the entry,
      // exactly matching what a crash-and-restart would observe.
      out_->append(mutated);
      return;
    }
  }
  out_->append(line);
  append_count().add();
  append_us().observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  entries_[key] = row;
  fails_.erase(key);
}

void ResultJournal::append_fail(const std::string& key,
                                const FailRecord& fail) {
  MUSA_CHECK_MSG(line_clean(key), "journal key contains a delimiter: " + key);
  FailRecord clean;
  clean.error_class = sanitize_message(fail.error_class);
  clean.stage = sanitize_message(fail.stage);
  clean.attempts = fail.attempts;
  clean.message = sanitize_message(fail.message);
  const std::string line = record_line(kFailPrefix + key, fail_cells(clean));
  obs::Span span("journal.append_fail", key);
  span.set_outcome(obs::Outcome::kFail);
  std::lock_guard<std::mutex> lock(mu_);
  MUSA_CHECK_MSG(out_ != nullptr, "append on a discarded journal");
  out_->append(line);
  fail_row_count().add();
  // Good beats FAIL: a quarantine row never shadows a completed result.
  if (entries_.count(key) == 0) fails_[key] = std::move(clean);
}

void ResultJournal::append_lease(const LeaseRecord& lease) {
  LeaseRecord clean = lease;
  clean.event = sanitize_message(clean.event);
  clean.detail = sanitize_message(clean.detail);
  std::lock_guard<std::mutex> lock(mu_);
  MUSA_CHECK_MSG(out_ != nullptr, "append on a discarded journal");
  // The sequence number only keeps record keys distinct; readers recover
  // order from file position, so renumbering on compaction is harmless.
  out_->append(record_line(kLeasePrefix + std::to_string(leases_.size()),
                           lease_cells(clean)));
  leases_.push_back(std::move(clean));
}

void ResultJournal::set_append_mutator(AppendMutator mutator) {
  std::lock_guard<std::mutex> lock(mu_);
  mutator_ = std::move(mutator);
}

void ResultJournal::discard() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_) {
    out_->close();
    out_.reset();
  }
  std::remove(path_.c_str());
}

JournalTailer::JournalTailer(std::string path,
                             std::vector<std::string> header)
    : path_(std::move(path)), header_(std::move(header)) {}

JournalTailer::Batch JournalTailer::poll() {
  Batch batch;
  FileStamp stamp;
  std::string data = read_file_from(path_, offset_, &stamp);
  if (!stamp.exists) return batch;
  if (stamp.inode != inode_ || stamp.size < offset_) {
    // The file was replaced (the owner compacted it: atomic rename swaps
    // the inode) or truncated. Restart from the top of what is there now —
    // re-reading records the old incarnation already delivered is safe
    // because journal consumption is keyed, hence idempotent.
    inode_ = stamp.inode;
    offset_ = 0;
    header_lines_ = 0;
    schema_bad_ = false;
    data = read_file_from(path_, 0, &stamp);
    if (!stamp.exists) return batch;
    inode_ = stamp.inode;  // replaced again mid-poll; next poll reconciles
  }
  if (schema_bad_ || data.empty()) return batch;

  // Consume only complete lines; a partial tail (a writer mid-append, or
  // killed mid-append) stays unconsumed and is retried next poll once —
  // if ever — its newline lands.
  const std::size_t complete = data.rfind('\n');
  if (complete == std::string::npos) return batch;
  data.resize(complete + 1);
  offset_ += data.size();

  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t eol = data.find('\n', pos);
    std::string line = data.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (header_lines_ == 0) {
      if (split(line, '\t')[0] != kMagic) schema_bad_ = true;
      ++header_lines_;
      if (schema_bad_) return batch;
      continue;
    }
    if (header_lines_ == 1) {
      if (split(line, ',') != header_) schema_bad_ = true;
      ++header_lines_;
      if (schema_bad_) return batch;
      continue;
    }
    ParsedRecord rec = parse_record(line, header_);
    switch (rec.kind) {
      case ParsedRecord::Kind::kBad:
        ++batch.dropped;
        break;
      case ParsedRecord::Kind::kFail:
        batch.fail_keys.push_back(std::move(rec.key));
        break;
      case ParsedRecord::Kind::kLease:
        batch.leases.push_back(std::move(rec.lease));
        break;
      case ParsedRecord::Kind::kEntry:
        batch.entries.emplace_back(std::move(rec.key), std::move(rec.cells));
        break;
    }
  }
  return batch;
}

std::vector<std::string> find_journals(const std::string& artifact_path) {
  namespace fs = std::filesystem;
  const fs::path artifact(artifact_path);
  const fs::path dir =
      artifact.has_parent_path() ? artifact.parent_path() : fs::path(".");
  const std::string prefix = artifact.filename().string() + ".";
  const std::string suffix = ".journal";

  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < prefix.size() + suffix.size() - 1) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    out.push_back((dir / name).string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace musa
