#include "common/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/fsio.hpp"

namespace musa {

namespace {

constexpr const char* kMagic = "musa-journal v1";

std::string join(const std::vector<std::string>& cells, char sep) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out.push_back(sep);
    out += cells[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == sep) {
      out.push_back(cur);
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string record_line(const std::string& key,
                        const std::vector<std::string>& cells) {
  const std::string payload = key + '\t' + join(cells, ',');
  return payload + '\t' + hex64(fnv1a64(payload)) + '\n';
}

bool line_clean(const std::string& s) {
  return s.find_first_of("\t\n\r") == std::string::npos;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& data) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

ResultJournal::LoadResult ResultJournal::read(
    const std::string& path, const std::vector<std::string>& header) {
  LoadResult out;
  std::ifstream in(path);
  if (!in.good()) return out;

  std::string line;
  if (!std::getline(in, line) || split(line, '\t')[0] != kMagic) {
    out.schema_mismatch = true;
    return out;
  }
  if (!std::getline(in, line) || split(line, ',') != header) {
    out.schema_mismatch = true;
    return out;
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> parts = split(line, '\t');
    if (parts.size() != 3) {
      ++out.dropped;
      continue;
    }
    const std::string payload = parts[0] + '\t' + parts[1];
    if (hex64(fnv1a64(payload)) != parts[2]) {
      ++out.dropped;
      continue;
    }
    std::vector<std::string> cells = split(parts[1], ',');
    if (cells.size() != header.size()) {
      ++out.dropped;
      continue;
    }
    out.entries[parts[0]] = std::move(cells);
  }
  // A file that ends without a final newline has a truncated tail record;
  // the checksum (or part count) already rejected it above.
  return out;
}

ResultJournal::ResultJournal(std::string path, std::vector<std::string> header)
    : path_(std::move(path)), header_(std::move(header)) {
  MUSA_CHECK_MSG(!header_.empty(), "journal header must be non-empty");
  for (const auto& col : header_)
    MUSA_CHECK_MSG(line_clean(col) && col.find(',') == std::string::npos,
                   "journal header cell contains a delimiter: " + col);

  LoadResult loaded = read(path_, header_);
  if (loaded.schema_mismatch) {
    std::fprintf(stderr,
                 "[journal] %s: schema mismatch, starting a fresh journal\n",
                 path_.c_str());
    loaded = LoadResult{};
  }
  entries_ = std::move(loaded.entries);
  dropped_ = loaded.dropped;

  // Compact: rewrite only the valid records so a corrupt tail from a crash
  // (or a stale-schema file) cannot collide with the next append.
  std::string text = std::string(kMagic) + '\n' + join(header_, ',') + '\n';
  for (const auto& [key, cells] : entries_) text += record_line(key, cells);
  atomic_write_file(path_, text);
  out_ = std::make_unique<DurableAppender>(path_);
}

ResultJournal::~ResultJournal() = default;

void ResultJournal::append(const std::string& key,
                           const std::vector<std::string>& row) {
  MUSA_CHECK_MSG(line_clean(key), "journal key contains a delimiter: " + key);
  MUSA_CHECK_MSG(row.size() == header_.size(),
                 "journal record width mismatches header");
  for (const auto& cell : row)
    MUSA_CHECK_MSG(line_clean(cell) && cell.find(',') == std::string::npos,
                   "journal cell contains a delimiter: " + cell);
  const std::string line = record_line(key, row);
  std::lock_guard<std::mutex> lock(mu_);
  MUSA_CHECK_MSG(out_ != nullptr, "append on a discarded journal");
  out_->append(line);
  entries_[key] = row;
}

void ResultJournal::discard() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_) {
    out_->close();
    out_.reset();
  }
  std::remove(path_.c_str());
}

std::vector<std::string> find_journals(const std::string& artifact_path) {
  namespace fs = std::filesystem;
  const fs::path artifact(artifact_path);
  const fs::path dir =
      artifact.has_parent_path() ? artifact.parent_path() : fs::path(".");
  const std::string prefix = artifact.filename().string() + ".";
  const std::string suffix = ".journal";

  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < prefix.size() + suffix.size() - 1) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    out.push_back((dir / name).string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace musa
