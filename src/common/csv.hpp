// Minimal CSV reader/writer used by the DSE engine's on-disk result cache.
// Values never contain commas or quotes (all fields are identifiers or
// numbers), so no quoting/escaping layer is needed; add_row() enforces that
// invariant, rejecting cells that hold a delimiter. save() replaces the
// target atomically (tmp + fsync + rename) so an interrupted write cannot
// leave a truncated file that later parses cleanly.
#pragma once

#include <string>
#include <vector>

namespace musa {

/// In-memory CSV document: a header row plus data rows of equal width.
class CsvDoc {
 public:
  CsvDoc() = default;
  explicit CsvDoc(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Index of a header column; throws SimError if absent.
  std::size_t column(const std::string& name) const;

  /// Appends one row; throws SimError on width mismatch or on a cell that
  /// contains a CSV delimiter (',', newline).
  void add_row(std::vector<std::string> row);

  /// Serialise to CSV text / parse from CSV text.
  std::string str() const;
  static CsvDoc parse(const std::string& text);

  /// File helpers. save() overwrites; load() throws SimError if unreadable.
  void save(const std::string& path) const;
  static CsvDoc load(const std::string& path);
  static bool file_exists(const std::string& path);

  /// Like load(), but rows whose width mismatches the header are skipped
  /// (counted into *dropped) instead of aborting the whole parse — for
  /// salvaging crash-truncated files. Still throws if the file is
  /// unreadable or the header line is empty.
  static CsvDoc load_tolerant(const std::string& path, std::size_t* dropped);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace musa
