// Plain-text table rendering for benchmark/report output: every figure
// reproduction prints its series as an aligned table, the way the paper's
// plots enumerate bars.
#pragma once

#include <string>
#include <vector>

namespace musa {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// with fixed precision. Rendered with a header rule, e.g.:
///
///   app     | 128-bit | 256-bit | 512-bit
///   --------+---------+---------+--------
///   hydro   |    1.00 |    1.12 |    1.21
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; subsequent add_*() calls fill it left to right.
  TextTable& row();
  TextTable& cell(std::string text);
  TextTable& cell(double value, int precision = 2);
  TextTable& cell(long long value);

  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace musa
