// Deterministic pseudo-random number generation for trace synthesis.
//
// All stochastic choices in workload models draw from Xoshiro256** seeded
// through SplitMix64, so a given (application, seed) pair always produces the
// identical trace — a requirement for MUSA-style replayable methodology.
#pragma once

#include <cstdint>

namespace musa {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality, 2^256-period generator.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : s_{} {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift reduction; bias is negligible for simulation purposes.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// True with probability p (clamped to [0,1]).
  constexpr bool bernoulli(double p) { return next_double() < p; }

  /// Approximately normal sample via sum of uniforms (Irwin–Hall, n=12):
  /// cheap, deterministic, adequate for workload imbalance modelling.
  constexpr double next_normal(double mean, double stddev) {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += next_double();
    return mean + (acc - 6.0) * stddev;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace musa
