// Cooperative per-point watchdog for long-running sweeps.
//
// A runaway simulation point (model bug, pathological configuration,
// injected delay fault) must become a `timeout` quarantine, not a hung
// shard. The sweep supervisor installs a wall-clock budget around each
// point (`deadline::Scope`), and the simulator hot loops poll it with
// `deadline::poll()`: a thread-local tick counter that touches the clock
// only once every 2^10 polls, so the fast path is one TLS load, an
// increment, and two predictable branches — no syscall per access, and
// strictly nothing at all beyond one branch when no budget is armed.
//
// The same thread-local state carries a *stage marker* ("burst", "kernel",
// "replay", "power", ...) maintained by the pipeline, so both watchdog
// timeouts and foreign exceptions can be attributed to the stage that was
// executing when they fired.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/check.hpp"

namespace musa::deadline {

/// Thread-local watchdog state. Public only so that poll() can inline; use
/// Scope / poll() / set_stage(), never the fields directly.
struct TlState {
  bool active = false;
  std::uint32_t tick = 0;
  std::chrono::steady_clock::time_point limit{};
  double budget_s = 0.0;      // original budget, for the timeout message
  const char* stage = "";     // current pipeline stage marker
};

extern thread_local TlState tl_state;

/// Clock reads happen once per (kPollStride) polls; at simulator hot-loop
/// rates (millions of polls/s) that bounds watchdog latency well under a
/// millisecond while keeping the per-poll cost to a counter increment.
constexpr std::uint32_t kPollStride = 1u << 10;

/// Slow path: reads the clock and throws SimError{timeout} naming the
/// budget and the active stage if the deadline has passed.
void check_now();

/// Hot-loop poll. Free when no deadline is armed; a counter increment
/// otherwise, with a clock read every kPollStride calls.
inline void poll() {
  TlState& s = tl_state;
  if (!s.active) return;
  if ((++s.tick & (kPollStride - 1)) != 0) return;
  check_now();
}

/// Non-throwing forced check (one clock read); false when no deadline.
bool expired();

/// Sets the thread's stage marker, returning the previous one so callers
/// can restore it (markers must be string literals or otherwise outlive
/// the scope — they are not copied).
inline const char* set_stage(const char* stage) {
  const char* prev = tl_state.stage;
  tl_state.stage = stage;
  return prev;
}

inline const char* current_stage() { return tl_state.stage; }

/// Arms a wall-clock budget for the enclosing scope. Budgets nest by
/// tightening only: an inner Scope never extends an outer deadline. A
/// budget <= 0 arms nothing (the scope is a no-op), so callers can thread
/// an "unlimited" option through without branching.
class Scope {
 public:
  explicit Scope(double budget_s);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  TlState saved_;
};

}  // namespace musa::deadline
