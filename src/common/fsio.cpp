#include "common/fsio.hpp"

#include <cstdio>
#include <string>

#include "common/check.hpp"

#ifdef _WIN32
#include <io.h>
#define musa_fileno _fileno
#define musa_fsync _commit
#else
#include <unistd.h>
#define musa_fileno fileno
#define musa_fsync fsync
#endif

namespace musa {

namespace {
void flush_and_sync(std::FILE* f, const std::string& path) {
  MUSA_CHECK_MSG(std::fflush(f) == 0, "flush failed: " + path);
  MUSA_CHECK_MSG(musa_fsync(musa_fileno(f)) == 0, "fsync failed: " + path);
}
}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  MUSA_CHECK_MSG(f != nullptr, "cannot open for writing: " + tmp);
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  if (written != content.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    throw SimError("short write: " + tmp);
  }
  flush_and_sync(f, tmp);
  MUSA_CHECK_MSG(std::fclose(f) == 0, "close failed: " + tmp);
#ifdef _WIN32
  std::remove(path.c_str());  // Windows rename() refuses to overwrite
#endif
  MUSA_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "rename failed: " + tmp + " -> " + path);
}

DurableAppender::DurableAppender(const std::string& path) {
  out_ = std::fopen(path.c_str(), "ab");
  MUSA_CHECK_MSG(out_ != nullptr, "cannot open for appending: " + path);
}

DurableAppender::~DurableAppender() { close(); }

void DurableAppender::append(const std::string& data) {
  MUSA_CHECK_MSG(out_ != nullptr, "append on closed file");
  MUSA_CHECK_MSG(std::fwrite(data.data(), 1, data.size(), out_) == data.size(),
                 "short append");
  flush_and_sync(out_, "<journal>");
}

void DurableAppender::close() {
  if (out_) {
    std::fclose(out_);
    out_ = nullptr;
  }
}

}  // namespace musa
