#include "common/fsio.hpp"

#include <cstdio>
#include <string>

#include "common/check.hpp"

#include <sys/stat.h>

#ifdef _WIN32
#include <io.h>
#define musa_fileno _fileno
#define musa_fsync _commit
#define musa_stat _stat64
#define musa_fstat _fstat64
using musa_stat_t = struct ::_stat64;
#else
#include <unistd.h>
#define musa_fileno fileno
#define musa_fsync fsync
#define musa_stat stat
#define musa_fstat fstat
using musa_stat_t = struct ::stat;
#endif

namespace musa {

namespace {
void flush_and_sync(std::FILE* f, const std::string& path) {
  MUSA_CHECK_MSG(std::fflush(f) == 0, "flush failed: " + path);
  MUSA_CHECK_MSG(musa_fsync(musa_fileno(f)) == 0, "fsync failed: " + path);
}
}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  MUSA_CHECK_MSG(f != nullptr, "cannot open for writing: " + tmp);
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  if (written != content.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    throw SimError("short write: " + tmp);
  }
  flush_and_sync(f, tmp);
  MUSA_CHECK_MSG(std::fclose(f) == 0, "close failed: " + tmp);
#ifdef _WIN32
  std::remove(path.c_str());  // Windows rename() refuses to overwrite
#endif
  MUSA_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "rename failed: " + tmp + " -> " + path);
}

namespace {
FileStamp stamp_from(const musa_stat_t& st) {
  FileStamp s;
  s.exists = true;
  s.inode = static_cast<std::uint64_t>(st.st_ino);
  s.size = static_cast<std::uint64_t>(st.st_size);
  return s;
}
}  // namespace

FileStamp stat_file(const std::string& path) {
  musa_stat_t st{};
  if (musa_stat(path.c_str(), &st) != 0) return {};
  return stamp_from(st);
}

std::string read_file_from(const std::string& path, std::uint64_t offset,
                           FileStamp* stamp) {
  if (stamp) *stamp = {};
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  musa_stat_t st{};
  if (musa_fstat(musa_fileno(f), &st) != 0) {
    std::fclose(f);
    return {};
  }
  if (stamp) *stamp = stamp_from(st);
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (offset >= size) {
    std::fclose(f);
    return {};
  }
  std::string out;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0) {
    out.resize(static_cast<std::size_t>(size - offset));
    const std::size_t n = std::fread(out.data(), 1, out.size(), f);
    out.resize(n);  // the writer may still be mid-append; keep what we got
  }
  std::fclose(f);
  return out;
}

DurableAppender::DurableAppender(const std::string& path) {
  out_ = std::fopen(path.c_str(), "ab");
  MUSA_CHECK_MSG(out_ != nullptr, "cannot open for appending: " + path);
}

DurableAppender::~DurableAppender() { close(); }

void DurableAppender::append(const std::string& data) {
  MUSA_CHECK_MSG(out_ != nullptr, "append on closed file");
  MUSA_CHECK_MSG(std::fwrite(data.data(), 1, data.size(), out_) == data.size(),
                 "short append");
  flush_and_sync(out_, "<journal>");
}

void DurableAppender::close() {
  if (out_) {
    std::fclose(out_);
    out_ = nullptr;
  }
}

}  // namespace musa
