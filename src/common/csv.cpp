#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/fsio.hpp"

namespace musa {

namespace {
std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}
}  // namespace

CsvDoc::CsvDoc(std::vector<std::string> header) : header_(std::move(header)) {
  MUSA_CHECK_MSG(!header_.empty(), "CSV header must be non-empty");
}

std::size_t CsvDoc::column(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i)
    if (header_[i] == name) return i;
  throw SimError("CSV column not found: " + name);
}

void CsvDoc::add_row(std::vector<std::string> row) {
  MUSA_CHECK_MSG(row.size() == header_.size(),
                 "CSV row width mismatches header");
  // This writer has no quoting layer, so a cell holding a delimiter would
  // serialise fine and then desync every column on reload. Reject at
  // insertion, where the offending value is still attributable.
  for (const auto& cell : row)
    MUSA_CHECK_MSG(cell.find_first_of(",\n\r") == std::string::npos,
                   "CSV cell contains a delimiter: \"" + cell + "\"");
  rows_.push_back(std::move(row));
}

std::string CsvDoc::str() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ',';
      out << cells[i];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

CsvDoc CsvDoc::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  CsvDoc doc;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto cells = split_line(line);
    if (!have_header) {
      doc.header_ = std::move(cells);
      have_header = true;
    } else {
      doc.add_row(std::move(cells));
    }
  }
  MUSA_CHECK_MSG(have_header, "CSV text has no header row");
  return doc;
}

void CsvDoc::save(const std::string& path) const {
  // Atomic replace: a crash mid-save must leave the previous file intact,
  // never a truncated CSV that later parses cleanly (tmp + fsync + rename).
  atomic_write_file(path, str());
}

CsvDoc CsvDoc::load(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw SimError("cannot open CSV for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool CsvDoc::file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

CsvDoc CsvDoc::load_tolerant(const std::string& path, std::size_t* dropped) {
  std::ifstream in(path);
  if (!in.good()) throw SimError("cannot open CSV for reading: " + path);
  CsvDoc doc;
  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto cells = split_line(line);
    if (!have_header) {
      doc.header_ = std::move(cells);
      have_header = true;
    } else if (cells.size() == doc.header_.size()) {
      doc.rows_.push_back(std::move(cells));
    } else if (dropped) {
      ++*dropped;
    }
  }
  MUSA_CHECK_MSG(have_header && !doc.header_.empty(),
                 "CSV file has no header row: " + path);
  return doc;
}

}  // namespace musa
