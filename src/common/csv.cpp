#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace musa {

namespace {
std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}
}  // namespace

CsvDoc::CsvDoc(std::vector<std::string> header) : header_(std::move(header)) {
  MUSA_CHECK_MSG(!header_.empty(), "CSV header must be non-empty");
}

std::size_t CsvDoc::column(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i)
    if (header_[i] == name) return i;
  throw SimError("CSV column not found: " + name);
}

void CsvDoc::add_row(std::vector<std::string> row) {
  MUSA_CHECK_MSG(row.size() == header_.size(),
                 "CSV row width mismatches header");
  rows_.push_back(std::move(row));
}

std::string CsvDoc::str() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ',';
      out << cells[i];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

CsvDoc CsvDoc::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  CsvDoc doc;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto cells = split_line(line);
    if (!have_header) {
      doc.header_ = std::move(cells);
      have_header = true;
    } else {
      doc.add_row(std::move(cells));
    }
  }
  MUSA_CHECK_MSG(have_header, "CSV text has no header row");
  return doc;
}

void CsvDoc::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  MUSA_CHECK_MSG(out.good(), "cannot open CSV for writing: " + path);
  out << str();
}

CsvDoc CsvDoc::load(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw SimError("cannot open CSV for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool CsvDoc::file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace musa
