// Progress / throughput / ETA reporting for long-running sweeps.
//
// Replaces ad-hoc "print every Nth item" counters: updates are rate-limited
// by wall time instead of item count, so the cadence is right whether a
// point takes milliseconds or minutes, and each line carries throughput and
// a remaining-time estimate computed from the measured rate.
//
// ETA semantics (locked in by TestProgress): a measurable positive rate
// yields a duration; a zero rate with work remaining yields "?" (unknown —
// never the old, misleading "ETA 0s"); done >= total yields "-" (nothing
// remains to estimate). The 100% line prints exactly once, even when the
// finishing tick lands inside the rate-limit window or several threads race
// past the total together.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

namespace musa {

/// "2m08s"-style rendering of a duration (sub-second → "0s"; hours shown
/// once the duration crosses one hour).
std::string format_duration(double seconds);

class ProgressReporter {
 public:
  /// `label` prefixes every line; `total` is the item count; updates print
  /// to stderr at most every `min_interval_s` seconds (the final item always
  /// prints, exactly once). `enabled` = false silences output entirely
  /// (tests, workers).
  ProgressReporter(std::string label, std::uint64_t total,
                   double min_interval_s = 2.0, bool enabled = true);

  /// Marks `count` more items done; prints a status line when one is due.
  /// Thread-safe.
  void tick(std::uint64_t count = 1);

  /// Deterministic core of tick(): same counting/printing policy, but with
  /// the elapsed time supplied by the caller — the fake clock the tests
  /// drive. tick() delegates here with the real elapsed time.
  void tick_at(std::uint64_t count, double elapsed_s);

  std::uint64_t done() const { return done_.load(); }

  /// Formats the status line for `done` items after `elapsed_s` seconds —
  /// exposed (and deterministic) for tests.
  std::string line(std::uint64_t done, double elapsed_s) const;

  /// Redirects printed lines away from stderr (tests). Not thread-safe:
  /// install before the first tick.
  void set_sink(std::function<void(const std::string&)> sink) {
    sink_ = std::move(sink);
  }

 private:
  void print(const std::string& text);

  std::string label_;
  std::uint64_t total_;
  double min_interval_s_;
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> done_{0};
  std::function<void(const std::string&)> sink_;
  std::mutex print_mu_;
  double last_print_s_ = -1e30;
  bool final_printed_ = false;
};

}  // namespace musa
