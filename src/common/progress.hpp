// Progress / throughput / ETA reporting for long-running sweeps.
//
// Replaces ad-hoc "print every Nth item" counters: updates are rate-limited
// by wall time instead of item count, so the cadence is right whether a
// point takes milliseconds or minutes, and each line carries throughput and
// a remaining-time estimate computed from the measured rate.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace musa {

/// "2m08s"-style rendering of a duration (sub-second → "0s"; hours shown
/// once the duration crosses one hour).
std::string format_duration(double seconds);

class ProgressReporter {
 public:
  /// `label` prefixes every line; `total` is the item count; updates print
  /// to stderr at most every `min_interval_s` seconds (the final item always
  /// prints). `enabled` = false silences output entirely (tests, workers).
  ProgressReporter(std::string label, std::uint64_t total,
                   double min_interval_s = 2.0, bool enabled = true);

  /// Marks `count` more items done; prints a status line when one is due.
  /// Thread-safe.
  void tick(std::uint64_t count = 1);

  std::uint64_t done() const { return done_.load(); }

  /// Formats the status line for `done` items after `elapsed_s` seconds —
  /// exposed (and deterministic) for tests.
  std::string line(std::uint64_t done, double elapsed_s) const;

 private:
  std::string label_;
  std::uint64_t total_;
  double min_interval_s_;
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> done_{0};
  std::mutex print_mu_;
  double last_print_s_ = -1e30;
};

}  // namespace musa
