#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace musa {

namespace {
/// Upper clamp for MUSA_THREADS: far above any real machine, low enough
/// that a unit typo (e.g. "100000") cannot oversubscribe into an OOM.
constexpr long kMaxThreads = 1024;

obs::Counter& chunk_claims() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("queue.chunks");
  return c;
}
}  // namespace

int default_thread_count() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read before any worker spawns.
  if (const char* env = std::getenv("MUSA_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long n = std::strtol(env, &end, 10);
    // Strict parse: the whole value must be a non-negative decimal number.
    // Garbage ("abc", "4x", ""), negatives, and overflow fall back to the
    // hardware concurrency instead of whatever atoi would have returned.
    if (end != env && *end == '\0' && errno == 0 && n >= 0)
      return static_cast<int>(std::clamp(n, 1L, kMaxThreads));
    std::fprintf(stderr,
                 "[musa] ignoring invalid MUSA_THREADS=\"%s\" "
                 "(want an integer in [0, %ld])\n",
                 env, kMaxThreads);
  }
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

void parallel_blocks(
    std::uint64_t n, int threads,
    const std::function<void(std::uint64_t, std::uint64_t)>& fn) {
  MUSA_CHECK_MSG(threads >= 0, "negative thread count");
  if (n == 0) return;
  const auto workers =
      static_cast<std::uint64_t>(std::clamp<std::uint64_t>(threads, 1, n));
  if (workers == 1) {
    fn(0, n);
    return;
  }

  std::exception_ptr first_error;
  std::atomic_flag error_latch;  // default-clear since C++20
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::uint64_t block = (n + workers - 1) / workers;
  for (std::uint64_t w = 0; w < workers; ++w) {
    const std::uint64_t begin = w * block;
    const std::uint64_t end = std::min(n, begin + block);
    if (begin >= end) break;
    pool.emplace_back([&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        if (!error_latch.test_and_set()) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

WorkQueue::WorkQueue(std::uint64_t n, std::uint64_t chunk)
    : n_(n), chunk_(chunk) {
  MUSA_CHECK_MSG(chunk >= 1, "work-queue chunk must be >= 1");
}

bool WorkQueue::next(std::uint64_t& begin, std::uint64_t& end) {
  if (cancelled_.load(std::memory_order_relaxed)) return false;
  const std::uint64_t b = next_.fetch_add(chunk_, std::memory_order_relaxed);
  if (b >= n_) return false;
  begin = b;
  end = std::min(n_, b + chunk_);
  chunk_claims().add();
  return true;
}

void parallel_workers(int threads, const std::function<void(int)>& fn) {
  MUSA_CHECK_MSG(threads >= 0, "negative thread count");
  const int workers = std::max(1, threads);
  if (workers == 1) {
    fn(0);
    return;
  }
  std::exception_ptr first_error;
  std::atomic_flag error_latch;  // default-clear since C++20
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (int w = 0; w < workers; ++w)
    pool.emplace_back([&, w] {
      try {
        fn(w);
      } catch (...) {
        if (!error_latch.test_and_set()) first_error = std::current_exception();
      }
    });
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_dynamic(std::uint64_t n, int threads, std::uint64_t chunk,
                      const std::function<void(std::uint64_t)>& fn) {
  if (n == 0) return;
  WorkQueue queue(n, chunk);
  const int workers =
      static_cast<int>(std::clamp<std::uint64_t>(std::max(1, threads), 1, n));
  parallel_workers(workers, [&](int) {
    std::uint64_t begin = 0, end = 0;
    while (queue.next(begin, end)) {
      for (std::uint64_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          // First failure drains the queue: other workers finish their
          // current item and stop, instead of chewing through thousands of
          // doomed points while this exception waits to be rethrown.
          queue.cancel();
          throw;
        }
        if (queue.cancelled()) return;
      }
    }
  });
}

void parallel_for(std::uint64_t n, int threads,
                  const std::function<void(std::uint64_t)>& fn) {
  std::atomic<bool> stop{false};
  parallel_blocks(n, threads, [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) {
      if (stop.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        stop.store(true, std::memory_order_relaxed);
        throw;
      }
    }
  });
}

}  // namespace musa
