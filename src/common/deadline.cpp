#include "common/deadline.hpp"

#include <cstdio>
#include <string>

namespace musa::deadline {

thread_local TlState tl_state;

void check_now() {
  TlState& s = tl_state;
  if (!s.active) return;
  if (std::chrono::steady_clock::now() <= s.limit) return;
  char msg[160];
  std::snprintf(msg, sizeof msg,
                "point exceeded its %.3gs wall-clock budget (stage: %s)",
                s.budget_s, s.stage[0] != '\0' ? s.stage : "unknown");
  throw SimError(msg, ErrorClass::kTimeout, s.stage);
}

bool expired() {
  const TlState& s = tl_state;
  return s.active && std::chrono::steady_clock::now() > s.limit;
}

Scope::Scope(double budget_s) : saved_(tl_state) {
  if (budget_s <= 0.0) return;
  const auto limit = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(budget_s));
  TlState& s = tl_state;
  // Tighten-only nesting: an inner scope cannot outlive the outer budget.
  if (!s.active || limit < s.limit) {
    s.limit = limit;
    s.budget_s = budget_s;
  }
  s.active = true;
  s.tick = 0;
}

Scope::~Scope() {
  // Restore the outer deadline but keep the current stage marker: stages
  // are orthogonal to budgets and managed by set_stage().
  const char* stage = tl_state.stage;
  tl_state = saved_;
  tl_state.stage = stage;
}

}  // namespace musa::deadline
