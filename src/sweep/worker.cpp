#include "sweep/worker.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "common/journal.hpp"
#include "common/parse.hpp"
#include "core/point_runner.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "sweep/protocol.hpp"
#include "verify/faultpoint.hpp"

#ifndef _WIN32
#include <signal.h>
#include <unistd.h>
#endif

namespace musa::sweep {

std::string worker_journal_path(const std::string& cache_path, int spawn_id) {
  return cache_path + ".worker-" + std::to_string(spawn_id) + ".journal";
}

std::string worker_trace_path(const std::string& trace_path, int spawn_id) {
  return trace_path + ".worker-" + std::to_string(spawn_id) +
         ".events.jsonl";
}

#ifndef _WIN32

namespace {

/// Heartbeat side thread: one `beat <chunk> <done>` line per interval.
/// Pausing it (the hang fault) silences the worker without killing it —
/// exactly the failure the controller's stale-worker rule must catch.
class Heartbeat {
 public:
  Heartbeat(LineChannel& channel, double interval_s,
            const std::atomic<int>& chunk, const std::atomic<std::uint64_t>& done)
      : channel_(channel),
        interval_s_(interval_s),
        chunk_(chunk),
        done_(done),
        thread_([this] { loop(); }) {}

  ~Heartbeat() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void set_paused(bool paused) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      paused_ = paused;
    }
    cv_.notify_all();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      if (!paused_)
        channel_.send("beat " + std::to_string(chunk_.load()) + " " +
                      std::to_string(done_.load()));
      cv_.wait_for(lock, std::chrono::duration<double>(interval_s_),
                   [this] { return stop_; });
    }
  }

  LineChannel& channel_;
  double interval_s_;
  const std::atomic<int>& chunk_;
  const std::atomic<std::uint64_t>& done_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool paused_ = false;
  std::thread thread_;
};

}  // namespace

int worker_main(int fd, const WorkerEnv& env) {
  LineChannel channel(fd);

  // The fork copied the parent's trace ring, events and all; re-install so
  // this process starts an empty ring (and shuts tracing off when the run
  // is untraced — inherited events would otherwise pile up unread).
  if (!env.trace_path.empty())
    obs::Tracer::install();
  else
    obs::Tracer::shutdown();

  core::SweepOptions sweep = env.sweep;
  sweep.fail_fast = false;  // a worker quarantines; it never aborts the fleet
  sweep.verbose = false;

  ResultJournal journal(worker_journal_path(env.cache_path, env.spawn_id),
                        core::DseEngine::csv_header());
  // Same chaos hook as the in-process engine: a corrupt-kind fault firing
  // on journal.append damages this worker's record so the controller's
  // tailer must detect, drop, and re-lease.
  if (verify::FaultPlan::active())
    journal.set_append_mutator(
        [](const std::string& key, const std::string& line) {
          if (!verify::fault_corrupt("journal.append", key)) return line;
          std::string out = line;
          const std::size_t pos = out.size() >= 2 ? out.size() - 2 : 0;
          out[pos] = out[pos] == '0' ? '1' : '0';
          return out;
        });

  std::shared_ptr<core::StageMemo> memo;
  if (sweep.memoize)
    memo = std::make_shared<core::StageMemo>(
        core::pipeline_options_fingerprint(env.pipeline));
  core::Pipeline pipeline(env.pipeline, memo);
  core::PointRunner runner(*env.plan, sweep);

  std::atomic<int> current_chunk{-1};
  std::atomic<std::uint64_t> points_done{0};
  Heartbeat heartbeat(channel, env.heartbeat_s, current_chunk, points_done);

  channel.send("hello " + std::to_string(::getpid()));

  std::string line;
  while (channel.read_line(&line)) {
    const std::vector<std::string> words = split_words(line);
    if (words.empty()) continue;
    if (words[0] == "quit") break;
    if (words[0] != "lease" || words.size() < 4) continue;  // version skew

    // Strict field decode: a lease whose chunk/offset/count do not parse
    // exactly is babble — atoi-style aliasing to chunk 0 would make this
    // worker silently recompute (and beat for) a chunk nobody leased it.
    // Per the version-skew policy the whole line is ignored; the
    // controller's straggler rule re-leases whatever it thinks we hold.
    int chunk = 0;
    std::uint64_t offset = 0, count = 0;
    if (!parse_int(words[1], &chunk) || chunk < 0 ||
        !parse_u64(words[2], &offset) || !parse_u64(words[3], &count))
      continue;
    current_chunk.store(chunk);

    // Process-level chaos, keyed by chunk so the *same* chunks are cursed
    // no matter which worker draws them (the decision is pure): die, go
    // silent, or babble — then, if still alive, compute normally.
    const verify::ProcessFault fault =
        verify::process_fault("worker.chunk", "chunk-" + std::to_string(chunk));
    switch (fault.action) {
      case verify::ProcessFault::Action::kKill:
        ::kill(::getpid(), SIGKILL);
        break;
      case verify::ProcessFault::Action::kHang:
        // Heartbeats stop with the computation: to the controller this
        // worker is indistinguishable from a deadlocked one, which is the
        // scenario under test.
        heartbeat.set_paused(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
        heartbeat.set_paused(false);
        break;
      case verify::ProcessFault::Action::kBabble:
        // Heartbeats keep flowing while no work happens — the stale rule
        // must NOT fire (the worker is live); the straggler rule must.
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
        break;
      case verify::ProcessFault::Action::kNone:
        break;
    }

    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t t = offset;
         t < offset + count && t < env.pending->size(); ++t) {
      runner.run(pipeline, (*env.pending)[t], &journal, nullptr);
      points_done.fetch_add(1);
    }
    const auto busy_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    current_chunk.store(-1);
    if (!channel.send("done " + std::to_string(chunk) + " " +
                      std::to_string(busy_us)))
      break;  // controller died; our journal rows survive for its successor
  }

  if (!env.trace_path.empty()) {
    obs::TraceMeta meta;
    meta.pid = static_cast<int>(::getpid());
    meta.process_name = "musa-worker-" + std::to_string(env.spawn_id);
    try {
      obs::write_trace_jsonl(worker_trace_path(env.trace_path, env.spawn_id),
                             obs::Tracer::drain(),
                             obs::Tracer::epoch_unix_us(), meta);
    } catch (...) {
      // Trace sidecars are best-effort observability, never worth an exit
      // code that would look like a compute failure to the controller.
    }
  }
  return 0;
}

#else  // _WIN32

int worker_main(int, const WorkerEnv&) { return 1; }

#endif

}  // namespace musa::sweep
