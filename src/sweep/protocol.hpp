// Controller ↔ worker wire protocol: newline-delimited text over one
// AF_UNIX socketpair per worker.
//
//   worker → controller   hello <pid>
//                         beat <chunk> <points-done>     (heartbeat thread)
//                         done <chunk> <busy-us>
//   controller → worker   lease <chunk> <offset> <count>
//                         quit
//
// Offsets index the controller's pending-point list, which the worker
// inherited verbatim through fork — the protocol never ships plan data,
// only coordinates into it. Text lines keep the protocol greppable in
// straces and trivially versionable; an unknown verb is ignored by both
// sides (same skew policy as unknown journal record types: visible to
// lint, fatal to neither process).
//
// The channel is intentionally dumb: send() is mutex-guarded (the worker's
// compute and heartbeat threads share one fd) and reports peer death as
// `false` instead of raising SIGPIPE; reads come in two flavors — a
// blocking read_line() for the worker's command loop and a non-blocking
// drain() for the controller's poll loop.
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace musa::sweep {

class LineChannel {
 public:
  /// Longest line either side will buffer. Every legitimate frame — lease
  /// grants, heartbeats, serve requests and replies — is orders of
  /// magnitude smaller; a peer that exceeds it (a newline-less babbler, a
  /// runaway writer) is flagged and disconnected instead of growing the
  /// receive buffer without bound. Required before any network client is
  /// allowed on the wire.
  static constexpr std::size_t kMaxLineBytes = 64 * 1024;

  /// Takes ownership of `fd` (closed on destruction).
  explicit LineChannel(int fd) : fd_(fd) {}
  ~LineChannel() { close(); }

  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  int fd() const { return fd_; }
  void close();

  /// True once the peer sent an over-long line (complete or not): it is
  /// babbling, the channel has been closed, and any buffered partial tail
  /// was discarded. Lines completed *before* the flood were delivered.
  bool babbling() const { return babbling_; }

  /// Bytes currently buffered awaiting a newline (bounded by
  /// kMaxLineBytes; exposed so tests can assert the bound holds).
  std::size_t buffered() const { return inbuf_.size(); }

  /// Sends `line` plus a trailing newline. False when the peer is gone
  /// (EPIPE/reset) — never a signal. Thread-safe.
  bool send(const std::string& line);

  /// Non-blocking read (call after poll(2) reports readable): consumes
  /// everything available, appends each complete line to `lines`, and
  /// keeps a partial tail buffered for the next call. Returns false on
  /// EOF, a hard error, or an over-long line (babbling() distinguishes
  /// the last) — i.e. the peer is gone or disowned; lines drained before
  /// that are still delivered.
  bool drain(std::vector<std::string>* lines);

  /// Blocking read of one line. False on EOF/error/over-long line.
  bool read_line(std::string* line);

 private:
  /// Moves complete lines out of inbuf_. False when a line exceeds
  /// kMaxLineBytes (delivered lines up to it are kept).
  bool split_lines(std::vector<std::string>* lines);
  /// Marks the peer babbling: close, drop the partial tail.
  void flag_babbling();

  int fd_ = -1;
  std::string inbuf_;
  bool babbling_ = false;
  std::mutex send_mu_;
};

/// splits "verb a b c" on single spaces; no quoting, empty fields elided.
std::vector<std::string> split_words(const std::string& line);

}  // namespace musa::sweep
