// Controller ↔ worker wire protocol: newline-delimited text over one
// AF_UNIX socketpair per worker.
//
//   worker → controller   hello <pid>
//                         beat <chunk> <points-done>     (heartbeat thread)
//                         done <chunk> <busy-us>
//   controller → worker   lease <chunk> <offset> <count>
//                         quit
//
// Offsets index the controller's pending-point list, which the worker
// inherited verbatim through fork — the protocol never ships plan data,
// only coordinates into it. Text lines keep the protocol greppable in
// straces and trivially versionable; an unknown verb is ignored by both
// sides (same skew policy as unknown journal record types: visible to
// lint, fatal to neither process).
//
// The channel is intentionally dumb: send() is mutex-guarded (the worker's
// compute and heartbeat threads share one fd) and reports peer death as
// `false` instead of raising SIGPIPE; reads come in two flavors — a
// blocking read_line() for the worker's command loop and a non-blocking
// drain() for the controller's poll loop.
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace musa::sweep {

class LineChannel {
 public:
  /// Takes ownership of `fd` (closed on destruction).
  explicit LineChannel(int fd) : fd_(fd) {}
  ~LineChannel() { close(); }

  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  int fd() const { return fd_; }
  void close();

  /// Sends `line` plus a trailing newline. False when the peer is gone
  /// (EPIPE/reset) — never a signal. Thread-safe.
  bool send(const std::string& line);

  /// Non-blocking read (call after poll(2) reports readable): consumes
  /// everything available, appends each complete line to `lines`, and
  /// keeps a partial tail buffered for the next call. Returns false on
  /// EOF or a hard error, i.e. the peer is gone — lines drained before
  /// the EOF are still delivered.
  bool drain(std::vector<std::string>* lines);

  /// Blocking read of one line. False on EOF/error.
  bool read_line(std::string* line);

 private:
  /// Moves complete lines out of inbuf_.
  void split_lines(std::vector<std::string>* lines);

  int fd_ = -1;
  std::string inbuf_;
  std::mutex send_mu_;
};

/// splits "verb a b c" on single spaces; no quoting, empty fields elided.
std::vector<std::string> split_words(const std::string& line);

}  // namespace musa::sweep
