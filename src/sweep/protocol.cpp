#include "sweep/protocol.hpp"

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace musa::sweep {

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == ' ') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

#ifndef _WIN32

void LineChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool LineChannel::send(const std::string& line) {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ < 0) return false;
  std::string data = line;
  data.push_back('\n');
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a dead peer is an expected condition the caller
    // handles (that is the whole point of this subsystem), not a SIGPIPE.
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void LineChannel::flag_babbling() {
  babbling_ = true;
  inbuf_.clear();  // the over-long tail is garbage by definition
  close();
}

bool LineChannel::split_lines(std::vector<std::string>* lines) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t eol = inbuf_.find('\n', start);
    if (eol == std::string::npos) break;
    if (eol - start > kMaxLineBytes) {  // complete but absurd: babble
      inbuf_.erase(0, start);
      flag_babbling();
      return false;
    }
    lines->push_back(inbuf_.substr(start, eol - start));
    start = eol + 1;
  }
  inbuf_.erase(0, start);
  if (inbuf_.size() > kMaxLineBytes) {  // newline-less flood
    flag_babbling();
    return false;
  }
  return true;
}

bool LineChannel::drain(std::vector<std::string>* lines) {
  if (fd_ < 0) return false;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, MSG_DONTWAIT);
    if (n > 0) {
      inbuf_.append(buf, static_cast<std::size_t>(n));
      // Split as we go so a flood is cut off at the first over-long line
      // instead of after the kernel buffer has been fully slurped.
      if (!split_lines(lines)) return false;
      continue;
    }
    if (n == 0) {  // EOF: peer exited; deliver what we have
      split_lines(lines);
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    split_lines(lines);
    return false;
  }
  return split_lines(lines);
}

bool LineChannel::read_line(std::string* line) {
  if (fd_ < 0) return false;
  for (;;) {
    const std::size_t eol = inbuf_.find('\n');
    if (eol != std::string::npos) {
      if (eol > kMaxLineBytes) {
        flag_babbling();
        return false;
      }
      *line = inbuf_.substr(0, eol);
      inbuf_.erase(0, eol + 1);
      return true;
    }
    if (inbuf_.size() > kMaxLineBytes) {
      flag_babbling();
      return false;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

#else  // _WIN32: the elastic controller is POSIX-only (fork/socketpair)

void LineChannel::close() { fd_ = -1; }
bool LineChannel::send(const std::string&) { return false; }
void LineChannel::flag_babbling() {}
bool LineChannel::split_lines(std::vector<std::string>*) { return false; }
bool LineChannel::drain(std::vector<std::string>*) { return false; }
bool LineChannel::read_line(std::string*) { return false; }

#endif

}  // namespace musa::sweep
