#include "sweep/protocol.hpp"

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace musa::sweep {

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == ' ') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

#ifndef _WIN32

void LineChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool LineChannel::send(const std::string& line) {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ < 0) return false;
  std::string data = line;
  data.push_back('\n');
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a dead peer is an expected condition the caller
    // handles (that is the whole point of this subsystem), not a SIGPIPE.
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void LineChannel::split_lines(std::vector<std::string>* lines) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t eol = inbuf_.find('\n', start);
    if (eol == std::string::npos) break;
    lines->push_back(inbuf_.substr(start, eol - start));
    start = eol + 1;
  }
  inbuf_.erase(0, start);
}

bool LineChannel::drain(std::vector<std::string>* lines) {
  if (fd_ < 0) return false;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, MSG_DONTWAIT);
    if (n > 0) {
      inbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {  // EOF: peer exited; deliver what we have
      split_lines(lines);
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    split_lines(lines);
    return false;
  }
  split_lines(lines);
  return true;
}

bool LineChannel::read_line(std::string* line) {
  if (fd_ < 0) return false;
  for (;;) {
    const std::size_t eol = inbuf_.find('\n');
    if (eol != std::string::npos) {
      *line = inbuf_.substr(0, eol);
      inbuf_.erase(0, eol + 1);
      return true;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

#else  // _WIN32: the elastic controller is POSIX-only (fork/socketpair)

void LineChannel::close() { fd_ = -1; }
bool LineChannel::send(const std::string&) { return false; }
void LineChannel::split_lines(std::vector<std::string>*) {}
bool LineChannel::drain(std::vector<std::string>*) { return false; }
bool LineChannel::read_line(std::string*) { return false; }

#endif

}  // namespace musa::sweep
