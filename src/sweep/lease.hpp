// Lease bookkeeping for the elastic sweep controller (DESIGN.md §7h).
//
// The controller splits its pending point list into fixed-size chunks and
// leases them to worker processes. A lease is *revocable*: when the holder
// dies, stops heartbeating, or falls past the straggler threshold, the
// chunk returns to the pending pool and is re-leased — possibly while the
// original holder is still computing it, which is safe because journal
// rows are keyed and idempotent (duplicate recomputation produces
// byte-identical records). A chunk *commits* only when every one of its
// point keys has a durable journal row (good or FAIL), never on a worker's
// say-so.
//
// LeaseTable is the pure state machine behind that: every time-dependent
// query takes an explicit `now` (seconds, any monotone base), so the
// failure-matrix tests drive it with a fake clock instead of sleeping.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace musa::sweep {

/// Tuning knobs of the elastic controller. Defaults are sized for sweep
/// points that take tens of milliseconds to seconds.
struct ElasticOptions {
  int workers = 2;        // worker processes to keep alive
  int lease_points = 8;   // plan points per leased chunk
  double heartbeat_s = 0.25;  // expected worker beat interval

  /// A worker silent for longer than stale_beats × heartbeat_s is declared
  /// dead: SIGKILLed (it may be hung, not gone), its lease revoked, and a
  /// replacement spawned while the respawn budget lasts.
  double stale_beats = 8.0;

  /// A lease older than max(straggler_min_s, straggler_factor × median
  /// committed-chunk duration) is revoked and re-leased; the holder keeps
  /// running — whichever copy finishes first resolves the keys. The median
  /// needs min_medians commits before straggler detection arms (early
  /// chunks have nothing sane to compare against).
  double straggler_factor = 4.0;
  double straggler_min_s = 0.5;
  int min_medians = 3;

  /// A chunk revoked this many times is poisoned: no worker can finish it
  /// (e.g. an armed kill-fault keyed to the chunk murders every holder),
  /// so the controller computes it in-process, where worker-only fault
  /// sites are never evaluated. This is the convergence backstop that
  /// makes "kill -9 any worker, any time" terminate.
  int poison_limit = 3;

  /// Worker processes forked beyond the initial set before the controller
  /// stops replacing the dead and falls back to in-process execution for
  /// whatever remains. -1 = 2 × workers.
  int respawn_budget = -1;

  /// Trace artifact path of the run ("" = tracing off). Workers derive
  /// their per-process sidecar paths from it; the finalize export merges
  /// the sidecars onto the one timeline.
  std::string trace_path;

  int effective_respawn_budget() const {
    return respawn_budget >= 0 ? respawn_budget : 2 * workers;
  }
  double stale_after_s() const { return stale_beats * heartbeat_s; }
};

/// One leased chunk: the [begin, end) slice of the controller's pending
/// point list (indices into that list, not plan indices).
struct LeaseChunk {
  enum class Phase { kPending, kLeased, kCommitted };

  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  Phase phase = Phase::kPending;
  int holder = -1;        // worker spawn id holding the lease (-1 = none)
  double granted_at = 0.0;
  int revocations = 0;

  std::uint64_t points() const { return end - begin; }
};

class LeaseTable {
 public:
  /// Carves `point_count` pending points into ceil(count / lease_points)
  /// contiguous chunks.
  LeaseTable(std::uint64_t point_count, const ElasticOptions& options);

  int chunk_count() const { return static_cast<int>(chunks_.size()); }
  const LeaseChunk& chunk(int id) const { return chunks_.at(id); }
  bool poisoned(int id) const {
    return chunks_.at(id).revocations >= options_.poison_limit;
  }

  /// --- worker liveness (logical: ids, not pids) ---
  void add_worker(int worker, double now);
  void remove_worker(int worker);
  void beat(int worker, double now);
  /// Workers whose last beat is older than stale_after_s().
  std::vector<int> stale_workers(double now) const;
  int live_workers() const { return static_cast<int>(beats_.size()); }

  /// --- lease lifecycle ---
  /// Grants the lowest pending, non-poisoned chunk to `worker`; -1 when
  /// none is grantable.
  int grant(int worker, double now);
  /// Returns a leased chunk to pending, counting a revocation and clearing
  /// the holder. False (no-op) for committed or already-pending chunks —
  /// a revocation racing a commit must lose.
  bool revoke(int chunk);
  /// Marks a chunk committed. Legal from kLeased *and* kPending: a chunk
  /// revoked from a straggler commits when the straggler's rows land
  /// anyway. A leased commit feeds now - granted_at into the duration
  /// median. False for already-committed chunks.
  bool commit(int chunk, double now);
  /// Chunk currently leased to `worker`, or -1.
  int held_by(int worker) const;

  /// Leased chunks past the straggler threshold (empty until min_medians
  /// chunks have committed while leased).
  std::vector<int> stragglers(double now) const;

  /// Pending chunks whose revocation count reached the poison limit —
  /// the controller's in-process queue.
  std::vector<int> poisoned_pending() const;
  std::vector<int> pending() const;

  bool all_committed() const { return committed_ == chunks_.size(); }
  std::uint64_t committed_points() const;
  /// Median duration of chunks committed while leased (0 before any).
  double median_duration() const;

 private:
  ElasticOptions options_;
  std::vector<LeaseChunk> chunks_;
  std::map<int, double> beats_;  // live worker id -> last beat time
  std::vector<double> durations_;
  std::size_t committed_ = 0;
};

}  // namespace musa::sweep
