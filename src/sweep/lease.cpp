#include "sweep/lease.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace musa::sweep {

LeaseTable::LeaseTable(std::uint64_t point_count,
                       const ElasticOptions& options)
    : options_(options) {
  MUSA_CHECK_MSG(options_.lease_points >= 1, "lease_points must be >= 1");
  const auto k = static_cast<std::uint64_t>(options_.lease_points);
  for (std::uint64_t begin = 0; begin < point_count; begin += k) {
    LeaseChunk c;
    c.begin = begin;
    c.end = std::min(point_count, begin + k);
    chunks_.push_back(c);
  }
}

void LeaseTable::add_worker(int worker, double now) { beats_[worker] = now; }

void LeaseTable::remove_worker(int worker) { beats_.erase(worker); }

void LeaseTable::beat(int worker, double now) {
  const auto it = beats_.find(worker);
  if (it != beats_.end()) it->second = now;
}

std::vector<int> LeaseTable::stale_workers(double now) const {
  std::vector<int> out;
  for (const auto& [worker, last] : beats_)
    if (now - last > options_.stale_after_s()) out.push_back(worker);
  return out;
}

int LeaseTable::grant(int worker, double now) {
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    LeaseChunk& c = chunks_[i];
    if (c.phase != LeaseChunk::Phase::kPending) continue;
    if (c.revocations >= options_.poison_limit) continue;
    c.phase = LeaseChunk::Phase::kLeased;
    c.holder = worker;
    c.granted_at = now;
    return static_cast<int>(i);
  }
  return -1;
}

bool LeaseTable::revoke(int chunk) {
  LeaseChunk& c = chunks_.at(chunk);
  if (c.phase != LeaseChunk::Phase::kLeased) return false;
  c.phase = LeaseChunk::Phase::kPending;
  c.holder = -1;
  ++c.revocations;
  return true;
}

bool LeaseTable::commit(int chunk, double now) {
  LeaseChunk& c = chunks_.at(chunk);
  if (c.phase == LeaseChunk::Phase::kCommitted) return false;
  if (c.phase == LeaseChunk::Phase::kLeased)
    durations_.push_back(now - c.granted_at);
  c.phase = LeaseChunk::Phase::kCommitted;
  c.holder = -1;
  ++committed_;
  return true;
}

int LeaseTable::held_by(int worker) const {
  for (std::size_t i = 0; i < chunks_.size(); ++i)
    if (chunks_[i].phase == LeaseChunk::Phase::kLeased &&
        chunks_[i].holder == worker)
      return static_cast<int>(i);
  return -1;
}

double LeaseTable::median_duration() const {
  if (durations_.empty()) return 0.0;
  std::vector<double> d = durations_;
  std::sort(d.begin(), d.end());
  return d[d.size() / 2];
}

std::vector<int> LeaseTable::stragglers(double now) const {
  std::vector<int> out;
  if (durations_.size() < static_cast<std::size_t>(options_.min_medians))
    return out;
  const double threshold = std::max(
      options_.straggler_min_s, options_.straggler_factor * median_duration());
  for (std::size_t i = 0; i < chunks_.size(); ++i)
    if (chunks_[i].phase == LeaseChunk::Phase::kLeased &&
        now - chunks_[i].granted_at > threshold)
      out.push_back(static_cast<int>(i));
  return out;
}

std::vector<int> LeaseTable::poisoned_pending() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < chunks_.size(); ++i)
    if (chunks_[i].phase == LeaseChunk::Phase::kPending &&
        chunks_[i].revocations >= options_.poison_limit)
      out.push_back(static_cast<int>(i));
  return out;
}

std::vector<int> LeaseTable::pending() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < chunks_.size(); ++i)
    if (chunks_[i].phase == LeaseChunk::Phase::kPending)
      out.push_back(static_cast<int>(i));
  return out;
}

std::uint64_t LeaseTable::committed_points() const {
  std::uint64_t n = 0;
  for (const LeaseChunk& c : chunks_)
    if (c.phase == LeaseChunk::Phase::kCommitted) n += c.points();
  return n;
}

}  // namespace musa::sweep
