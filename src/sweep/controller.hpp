// Elastic sweep controller (DESIGN.md §7h): the parent half of the
// controller/worker pair.
//
// The controller owns the sweep plan, forks worker processes, and leases
// them bounded chunks of the pending-point list. Ground truth is never a
// message: a chunk commits only when the controller's incremental journal
// tailers have seen a durable, checksum-valid row (good or FAIL) for every
// key in it. Heartbeats and `done` messages only steer scheduling — a dead
// or lying worker can therefore delay the sweep but never corrupt it.
//
// Failure handling, in escalation order:
//   - worker exits (or is kill -9'd)  -> waitpid notices, lease revoked,
//     replacement forked while the respawn budget lasts
//   - worker goes silent (hang)       -> stale-heartbeat rule: SIGKILL,
//     revoke, respawn
//   - worker beats but crawls         -> straggler rule (lease age vs the
//     running median of committed chunk times): revoke and re-lease; the
//     slow worker keeps running, duplicate rows are idempotent
//   - a chunk keeps killing holders   -> after poison_limit revocations the
//     controller computes it in-process, where worker-only fault sites are
//     never evaluated
//   - workers keep dying              -> respawn budget exhausts, the
//     controller finishes everything in-process
// Every arrow ends in full key coverage, so the finalize pass (a normal
// DseEngine::sweep over the merged journals) writes a cache byte-identical
// to a fault-free single-process run.
#pragma once

#include <cstdint>
#include <string>

#include "core/dse.hpp"
#include "core/pipeline.hpp"
#include "sweep/lease.hpp"

namespace musa::sweep {

/// What one elastic lease phase did.
struct ElasticReport {
  int chunks = 0;                // chunks the pending list was carved into
  std::uint64_t points = 0;      // points pending when the phase started
  std::uint64_t resolved = 0;    // keys resolved (good or FAIL) this phase
  int spawned = 0;               // worker processes forked, respawns included
  int respawns = 0;              // forks beyond the initial set
  int deaths = 0;                // workers that exited/died on their own
  int killed = 0;                // workers the controller SIGKILLed (stale)
  int revocations = 0;           // leases revoked, all causes
  int stragglers = 0;            // ... of which by the straggler rule
  int inprocess_chunks = 0;      // chunks the controller computed itself
  std::uint64_t tail_dropped = 0;  // corrupt worker records tailers dropped
  double wall_s = 0.0;
};

/// True where the controller can run at all (POSIX: fork + socketpair).
bool elastic_supported();

class ElasticController {
 public:
  /// `pipeline` supplies the options workers replicate; `sweep` must not be
  /// sharded (the controller owns the whole plan) and needs a cache path —
  /// journals are the only channel worker results travel through.
  ElasticController(core::Pipeline& pipeline, std::string cache_path,
                    core::SweepOptions sweep, ElasticOptions elastic);

  /// Drives the lease phase until every pending plan key has a durable
  /// journal row, surviving any combination of worker deaths, hangs, and
  /// stragglers. Does not finalize: the caller follows with a normal
  /// DseEngine::sweep(), which merges the worker journals, re-runs any
  /// residue in-process, and writes the cache. Throws SimError{config} on
  /// unsupported platforms.
  ElasticReport run();

  /// Audit-log sidecar (`<cache>.leases`): every lease event of the last
  /// run(), in journal format with LEASE records only. Unlike the working
  /// journals it survives finalize — tools/journal_status.py does its
  /// lease accounting against it.
  static std::string lease_log_path(const std::string& cache_path);

 private:
  core::Pipeline& pipeline_;
  std::string cache_path_;
  core::SweepOptions sweep_;
  ElasticOptions elastic_;
};

}  // namespace musa::sweep
