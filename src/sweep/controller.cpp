#include "sweep/controller.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/journal.hpp"
#include "common/parse.hpp"
#include "common/progress.hpp"
#include "core/point_runner.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sweep/protocol.hpp"
#include "sweep/worker.hpp"
#include "verify/config_rules.hpp"
#include "verify/faultpoint.hpp"

#ifndef _WIN32
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace musa::sweep {

bool elastic_supported() {
#ifndef _WIN32
  return true;
#else
  return false;
#endif
}

ElasticController::ElasticController(core::Pipeline& pipeline,
                                     std::string cache_path,
                                     core::SweepOptions sweep,
                                     ElasticOptions elastic)
    : pipeline_(pipeline),
      cache_path_(std::move(cache_path)),
      sweep_(std::move(sweep)),
      elastic_(std::move(elastic)) {
  MUSA_CHECK_MSG(!cache_path_.empty(),
                 "elastic sweeps need a cache path: worker results travel "
                 "through its journals");
  MUSA_CHECK_MSG(sweep_.shard_count == 1,
                 "elastic sweeps own the whole plan; --shard does not "
                 "compose with --workers");
  MUSA_CHECK_MSG(elastic_.workers >= 1, "need at least one worker");
  MUSA_CHECK_MSG(elastic_.lease_points >= 1, "lease chunks need >= 1 point");
  MUSA_CHECK_MSG(elastic_.heartbeat_s > 0.0, "heartbeat interval must be > 0");
}

std::string ElasticController::lease_log_path(const std::string& cache_path) {
  return cache_path + ".leases";
}

#ifndef _WIN32

namespace {

obs::Counter& revocations_total() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("sweep.elastic.revocations");
  return c;
}
obs::Counter& respawns_total() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("sweep.elastic.respawns");
  return c;
}
obs::Counter& stragglers_total() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("sweep.elastic.stragglers");
  return c;
}
obs::Counter& inprocess_total() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("sweep.elastic.inprocess_chunks");
  return c;
}
obs::Gauge& workers_live() {
  static obs::Gauge& g =
      obs::MetricRegistry::global().gauge("sweep.workers.live");
  return g;
}

/// One forked worker from the controller's side of the fence.
struct WorkerProc {
  enum class State { kStarting, kIdle, kLeased, kQuitting };

  int id = 0;  // spawn id: unique across respawns
  pid_t pid = -1;
  std::unique_ptr<LineChannel> channel;
  std::unique_ptr<JournalTailer> tailer;
  State state = State::kStarting;
  int chunk = -1;  // chunk we believe it is computing (even when revoked)
};

}  // namespace

ElasticReport ElasticController::run() {
  const auto wall0 = std::chrono::steady_clock::now();
  const auto now = [&wall0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall0)
        .count();
  };
  const std::vector<std::string> header = core::DseEngine::csv_header();

  const core::SweepPlan plan = core::make_sweep_plan(sweep_);
  if (sweep_.verify && !plan.statically_verified)
    for (const auto& config : plan.configs) verify::validate_machine(config);

  // Resume state: a key is resolved if a parseable cache row or any
  // journal (a dead controller's, a dead worker's) already covers it.
  // Invariant-violating rows are NOT filtered here — the finalize engine
  // drops and recomputes those in-process; the lease phase only promises
  // coverage, not validity.
  std::unordered_set<std::string> resolved;
  if (CsvDoc::file_exists(cache_path_)) {
    try {
      std::size_t bad = 0;
      const CsvDoc doc = CsvDoc::load_tolerant(cache_path_, &bad);
      if (doc.header() == header)
        for (const auto& row : doc.rows()) {
          try {
            const core::SimResult r = core::DseEngine::from_row(row);
            resolved.insert(core::DseEngine::point_key(r.app, r.config));
          } catch (const SimError&) {
          }
        }
    } catch (const SimError&) {
    }
  }
  for (const auto& path : find_journals(cache_path_)) {
    const ResultJournal::LoadResult lr = ResultJournal::read(path, header);
    if (lr.schema_mismatch) continue;
    for (const auto& [key, row] : lr.entries) resolved.insert(key);
    if (!sweep_.retry_failed)
      for (const auto& [key, fail] : lr.fails) resolved.insert(key);
  }

  std::vector<std::uint64_t> pending;
  for (std::uint64_t i = 0; i < plan.size(); ++i)
    if (resolved.count(plan.keys[i]) == 0) pending.push_back(i);

  ElasticReport rep;
  rep.points = pending.size();

  // The audit log survives finalize; one file per run, not appended across
  // runs — journal_status accounts for exactly this invocation.
  std::remove(lease_log_path(cache_path_).c_str());
  std::vector<LeaseRecord> lease_log;

  if (pending.empty()) {
    ResultJournal audit(lease_log_path(cache_path_), header);
    return rep;
  }

  LeaseTable table(pending.size(), elastic_);
  rep.chunks = table.chunk_count();

  // Controller journal: in-process fallback rows and the live lease-event
  // stream. Same path an unsharded engine uses, so the finalize pass loads
  // it as its own.
  ResultJournal journal(cache_path_ + ".journal", header);
  if (verify::FaultPlan::active())
    journal.set_append_mutator(
        [](const std::string& key, const std::string& line) {
          if (!verify::fault_corrupt("journal.append", key)) return line;
          std::string out = line;
          const std::size_t pos = out.size() >= 2 ? out.size() - 2 : 0;
          out[pos] = out[pos] == '0' ? '1' : '0';
          return out;
        });

  const auto log_lease = [&](const char* event, int chunk, int worker,
                             const std::string& detail) {
    LeaseRecord r;
    r.event = event;
    r.chunk = chunk;
    r.worker = worker;
    if (chunk >= 0) {
      r.begin = table.chunk(chunk).begin;
      r.end = table.chunk(chunk).end;
    }
    r.detail = detail;
    lease_log.push_back(r);
    journal.append_lease(r);
  };

  ProgressReporter progress("elastic sweep", pending.size(), 2.0,
                            sweep_.verbose);
  const auto mark_resolved = [&](const std::string& key) {
    if (!resolved.insert(key).second) return;
    ++rep.resolved;
    progress.tick();
  };
  const auto chunk_covered = [&](int c) {
    const LeaseChunk& chunk = table.chunk(c);
    for (std::uint64_t t = chunk.begin; t < chunk.end; ++t)
      if (resolved.count(plan.keys[pending[t]]) == 0) return false;
    return true;
  };

  // Lease timeline on the shared trace: one 'X' span per lease tenure,
  // from grant to commit (ok) or revocation (fail), keyed "chunk-<id>".
  std::unordered_map<int, std::uint64_t> grant_us;
  const auto emit_lease_span = [&](int c, int worker, obs::Outcome outcome) {
    if (!obs::Tracer::enabled()) return;
    obs::TraceEvent ev;
    ev.name = "lease";
    ev.phase = 'X';
    ev.ts_us = grant_us.count(c) ? grant_us[c] : obs::Tracer::now_us();
    ev.dur_us = obs::Tracer::now_us() - ev.ts_us;
    ev.outcome = outcome;
    ev.tid = static_cast<std::uint16_t>(obs::thread_id());
    obs::set_event_key(ev, "chunk-" + std::to_string(c) + " w" +
                               std::to_string(worker));
    obs::Tracer::emit(ev);
  };

  const auto commit_chunk = [&](int c, const char* how) {
    const int holder = table.chunk(c).holder;
    if (!table.commit(c, now())) return;
    log_lease("committed", c, holder, how);
    emit_lease_span(c, holder, obs::Outcome::kOk);
  };
  const auto revoke_chunk = [&](int c, const char* reason, int worker) {
    if (!table.revoke(c)) return false;
    ++rep.revocations;
    revocations_total().add();
    log_lease("revoked", c, worker, reason);
    emit_lease_span(c, worker, obs::Outcome::kFail);
    obs::instant("lease.revoke", "chunk-" + std::to_string(c),
                 obs::Outcome::kFail);
    return true;
  };

  // In-process fallback: the terminal state of a chunk that worker
  // processes cannot finish. PointRunner never consults the process-level
  // fault kinds, so a kill/hang spec keyed to this chunk cannot reach the
  // controller; journal.append faults are retried a bounded number of
  // times (their fire budget is per process, so the retry succeeds), and
  // any key still unresolved after that is left to the finalize engine.
  std::shared_ptr<core::StageMemo> ctrl_memo;
  if (sweep_.memoize)
    ctrl_memo = std::make_shared<core::StageMemo>(
        core::pipeline_options_fingerprint(pipeline_.options()));
  std::unique_ptr<core::Pipeline> ctrl_pipeline;
  core::SweepOptions ctrl_sweep = sweep_;
  ctrl_sweep.fail_fast = false;
  core::PointRunner runner(plan, ctrl_sweep);
  const auto run_inprocess = [&](int c) {
    if (!ctrl_pipeline)
      ctrl_pipeline =
          std::make_unique<core::Pipeline>(pipeline_.options(), ctrl_memo);
    ++rep.inprocess_chunks;
    inprocess_total().add();
    log_lease("inprocess", c, -1, "");
    const LeaseChunk& chunk = table.chunk(c);
    for (int attempt = 0; attempt < 3 && !chunk_covered(c); ++attempt)
      for (std::uint64_t t = chunk.begin; t < chunk.end; ++t) {
        const std::uint64_t idx = pending[t];
        if (resolved.count(plan.keys[idx]) != 0) continue;
        runner.run(*ctrl_pipeline, idx, &journal, nullptr);
        if (journal.contains(plan.keys[idx]) ||
            journal.contains_fail(plan.keys[idx]))
          mark_resolved(plan.keys[idx]);
      }
    for (std::uint64_t t = chunk.begin; t < chunk.end; ++t)
      if (resolved.count(plan.keys[pending[t]]) == 0)
        log_lease("abandoned", c, -1, plan.keys[pending[t]]);
    commit_chunk(c, "inprocess");
  };

  // --- worker process management ---
  std::vector<std::unique_ptr<WorkerProc>> procs;
  int next_spawn = 0;
  bool fork_failed = false;
  WorkerEnv env_base;
  env_base.plan = &plan;
  env_base.pending = &pending;
  env_base.sweep = sweep_;
  env_base.pipeline = pipeline_.options();
  env_base.cache_path = cache_path_;
  env_base.trace_path = elastic_.trace_path;
  env_base.heartbeat_s = elastic_.heartbeat_s;

  const auto spawn = [&]() -> bool {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      fork_failed = true;
      return false;
    }
    WorkerEnv env = env_base;
    env.spawn_id = next_spawn;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      fork_failed = true;
      return false;
    }
    if (pid == 0) {
      // Child: drop the controller's ends — ours and every sibling's —
      // then run the worker loop. _Exit skips atexit/stream flushing of
      // fork-inherited state that belongs to the parent.
      ::close(sv[0]);
      for (auto& p : procs) p->channel->close();
      int code = 1;
      try {
        code = worker_main(sv[1], env);
      } catch (...) {
      }
      std::_Exit(code);
    }
    ::close(sv[1]);
    auto proc = std::make_unique<WorkerProc>();
    proc->id = env.spawn_id;
    proc->pid = pid;
    proc->channel = std::make_unique<LineChannel>(sv[0]);
    proc->tailer = std::make_unique<JournalTailer>(
        worker_journal_path(cache_path_, env.spawn_id), header);
    const bool respawn = rep.spawned >= elastic_.workers;
    ++rep.spawned;
    if (respawn) {
      ++rep.respawns;
      respawns_total().add();
    }
    log_lease(respawn ? "respawned" : "spawned", -1, env.spawn_id,
              "pid=" + std::to_string(pid));
    procs.push_back(std::move(proc));
    ++next_spawn;
    workers_live().set(static_cast<double>(procs.size()));
    return true;
  };

  const auto ingest = [&](WorkerProc& p) {
    JournalTailer::Batch batch = p.tailer->poll();
    rep.tail_dropped += batch.dropped;
    for (const auto& [key, row] : batch.entries) mark_resolved(key);
    for (const auto& key : batch.fail_keys) mark_resolved(key);
  };

  // Removes a dead worker: final journal tail, lease revocation, registry
  // cleanup. `reason` distinguishes a self-inflicted death from a
  // controller SIGKILL in the audit log.
  const auto bury = [&](std::size_t i, const char* reason) {
    WorkerProc& p = *procs[i];
    ingest(p);
    const int held = table.held_by(p.id);
    if (held >= 0 && !chunk_covered(held)) revoke_chunk(held, reason, p.id);
    else if (held >= 0) commit_chunk(held, reason);
    table.remove_worker(p.id);
    log_lease("killed", held, p.id, reason);
    procs.erase(procs.begin() + static_cast<std::ptrdiff_t>(i));
    workers_live().set(static_cast<double>(procs.size()));
  };

  const auto grant_to = [&](WorkerProc& p) {
    const int c = table.grant(p.id, now());
    if (c < 0) {
      p.state = WorkerProc::State::kIdle;
      p.chunk = -1;
      return;
    }
    p.state = WorkerProc::State::kLeased;
    p.chunk = c;
    if (obs::Tracer::enabled()) grant_us[c] = obs::Tracer::now_us();
    log_lease("granted", c, p.id, "");
    const LeaseChunk& chunk = table.chunk(c);
    p.channel->send("lease " + std::to_string(c) + " " +
                    std::to_string(chunk.begin) + " " +
                    std::to_string(chunk.points()));
  };

  const int spawn_cap = elastic_.workers + elastic_.effective_respawn_budget();

  // --- main loop ---
  while (!table.all_committed()) {
    // Population: keep `workers` processes alive while the budget lasts.
    while (static_cast<int>(procs.size()) < elastic_.workers &&
           next_spawn < spawn_cap && !fork_failed)
      if (!spawn()) break;

    // Wait for traffic. Half a heartbeat keeps stale detection prompt
    // without busy-spinning; the lower bound keeps a tiny heartbeat from
    // turning the controller into a spin loop.
    std::vector<pollfd> fds;
    fds.reserve(procs.size());
    for (auto& p : procs) fds.push_back({p->channel->fd(), POLLIN, 0});
    const int timeout_ms = std::max(
        10, static_cast<int>(elastic_.heartbeat_s * 1000.0 / 2.0));
    if (!fds.empty())
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

    // (1) Drain messages. Scheduling only — no message resolves a key.
    for (std::size_t i = 0; i < procs.size(); ++i) {
      if (i < fds.size() && (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
        continue;
      WorkerProc& p = *procs[i];
      std::vector<std::string> lines;
      p.channel->drain(&lines);  // EOF is reaped via waitpid below
      for (const std::string& line : lines) {
        const std::vector<std::string> words = split_words(line);
        if (words.empty()) continue;
        if (words[0] == "hello") {
          table.add_worker(p.id, now());
          grant_to(p);
        } else if (words[0] == "beat") {
          table.beat(p.id, now());
        } else if (words[0] == "done" && words.size() >= 2) {
          // Strict chunk decode: a malformed field makes the whole line
          // babble (ignored, like an unknown verb) instead of aliasing to
          // chunk 0 and committing/revoking a chunk the worker never held.
          // Recovery needs no message: the tailers still see its rows and
          // the straggler rule re-leases anything genuinely unfinished.
          int c = -1;
          if (!parse_int(words[1], &c)) continue;
          table.beat(p.id, now());
          if (c >= 0 && c < table.chunk_count()) {
            ingest(p);
            if (chunk_covered(c)) {
              commit_chunk(c, "done");
            } else if (table.chunk(c).phase == LeaseChunk::Phase::kLeased &&
                       table.chunk(c).holder == p.id) {
              // The worker claims completion but the journal disagrees
              // (e.g. a corrupt-fault ate a record): the journal wins.
              revoke_chunk(c, "incomplete", p.id);
            }
          }
          p.state = WorkerProc::State::kIdle;
          p.chunk = -1;
        }
        // Unknown verbs: version skew, visible to lint, fatal to nobody.
      }
    }

    // (2) Tail journals; commit anything now covered (duplicate rows from
    // revoked holders resolve keys like any others).
    for (auto& p : procs) ingest(*p);
    for (int c = 0; c < table.chunk_count(); ++c)
      if (table.chunk(c).phase != LeaseChunk::Phase::kCommitted &&
          chunk_covered(c))
        commit_chunk(c, "tail");

    // (3) Reap workers that died on their own (kill -9 chaos, crashes).
    for (;;) {
      int status = 0;
      const pid_t dead = ::waitpid(-1, &status, WNOHANG);
      if (dead <= 0) break;
      for (std::size_t i = 0; i < procs.size(); ++i)
        if (procs[i]->pid == dead) {
          ++rep.deaths;
          bury(i, "died");
          break;
        }
    }

    // (4) Stale-heartbeat rule: silence means hung or wedged — the worker
    // may well be alive, so revocation alone would race its late rows
    // against the re-lease forever. SIGKILL first, then bury.
    for (int worker : table.stale_workers(now())) {
      for (std::size_t i = 0; i < procs.size(); ++i)
        if (procs[i]->id == worker) {
          ::kill(procs[i]->pid, SIGKILL);
          ::waitpid(procs[i]->pid, nullptr, 0);
          ++rep.killed;
          bury(i, "stale-heartbeat");
          break;
        }
    }

    // (5) Straggler rule: beating but slow. Revoke and re-lease; the
    // holder keeps running — whichever copy lands rows first wins, the
    // duplicate is idempotent by key.
    for (int c : table.stragglers(now())) {
      const int holder = table.chunk(c).holder;
      if (revoke_chunk(c, "straggler", holder)) {
        ++rep.stragglers;
        stragglers_total().add();
      }
    }

    // (6) Poisoned chunks murdered every holder: compute them here, where
    // worker-only fault sites do not exist.
    for (int c : table.poisoned_pending()) run_inprocess(c);

    // (7) Last resort: no workers and no budget to make more.
    if (procs.empty() && (next_spawn >= spawn_cap || fork_failed))
      for (int c : table.pending()) run_inprocess(c);

    // (8) Grants for idle workers; quit signals once nothing is left.
    for (auto& p : procs)
      if (p->state == WorkerProc::State::kIdle) grant_to(*p);
    if (table.all_committed())
      for (auto& p : procs)
        if (p->state != WorkerProc::State::kQuitting) {
          p->channel->send("quit");
          p->state = WorkerProc::State::kQuitting;
        }
  }

  // Shutdown: quit everyone (revoked stragglers may still be mid-chunk —
  // their residual rows are harmless), give them a grace window to flush
  // trace sidecars, then SIGKILL the rest. Journals are fsync'd per row,
  // so nothing of value can be lost here.
  for (auto& p : procs)
    if (p->state != WorkerProc::State::kQuitting) p->channel->send("quit");
  const double grace_deadline = now() + 15.0;
  while (!procs.empty() && now() < grace_deadline) {
    for (std::size_t i = 0; i < procs.size();) {
      if (::waitpid(procs[i]->pid, nullptr, WNOHANG) > 0) {
        ingest(*procs[i]);
        table.remove_worker(procs[i]->id);
        procs.erase(procs.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (!procs.empty())
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (auto& p : procs) {
    ::kill(p->pid, SIGKILL);
    ::waitpid(p->pid, nullptr, 0);
    ingest(*p);
  }
  procs.clear();
  workers_live().set(0.0);

  rep.wall_s = now();

  // Persist the audit log where finalize cannot delete it.
  ResultJournal audit(lease_log_path(cache_path_), header);
  for (const LeaseRecord& r : lease_log) audit.append_lease(r);

  if (sweep_.verbose)
    std::fprintf(stderr,
                 "[elastic] %d chunk(s), %llu point(s) resolved, "
                 "%d spawned (%d respawns), %d death(s), %d killed, "
                 "%d revocation(s) (%d straggler), %d in-process chunk(s), "
                 "%llu corrupt record(s) dropped in %.1fs\n",
                 rep.chunks, static_cast<unsigned long long>(rep.resolved),
                 rep.spawned, rep.respawns, rep.deaths, rep.killed,
                 rep.revocations, rep.stragglers, rep.inprocess_chunks,
                 static_cast<unsigned long long>(rep.tail_dropped),
                 rep.wall_s);
  return rep;
}

#else  // _WIN32

ElasticReport ElasticController::run() {
  throw SimError("elastic sweeps need fork/socketpair; use --shard on this "
                 "platform",
                 ErrorClass::kConfig);
}

#endif

}  // namespace musa::sweep
