// Elastic sweep worker: the child half of the controller/worker pair.
//
// A worker is forked by the controller, inherits the sweep plan and the
// pending-point list by address, and then lives on the wire protocol
// (sweep/protocol.hpp): it announces itself, computes the chunks it is
// leased through the exact same PointRunner the in-process engine uses —
// so its journal rows are byte-identical — and heartbeats from a side
// thread so a hung computation is distinguishable from a slow one.
//
// Every worker owns a private journal (`<cache>.worker-<spawn>.journal`)
// that the controller tails incrementally and the finalize pass merges
// like any shard journal. Workers never write the cache and never talk to
// each other; the fsync'd journal rows are their only durable output,
// which is what makes killing a worker at any instant recoverable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dse.hpp"
#include "core/pipeline.hpp"

namespace musa::sweep {

/// Everything a worker needs, passed by address through fork — none of it
/// is serialised. Pointers must stay valid in the parent for the worker's
/// lifetime (they do: ElasticController::run owns them on its stack).
struct WorkerEnv {
  const core::SweepPlan* plan = nullptr;
  const std::vector<std::uint64_t>* pending = nullptr;  // plan indices
  core::SweepOptions sweep;          // containment policy (fail_fast off)
  core::PipelineOptions pipeline;
  std::string cache_path;
  std::string trace_path;  // "" = tracing off
  int spawn_id = 0;        // unique across respawns, names the journal
  double heartbeat_s = 0.25;
};

/// Journal a worker writes: `<cache>.worker-<spawn>.journal` — matched by
/// find_journals(), so the finalize pass merges it automatically.
std::string worker_journal_path(const std::string& cache_path, int spawn_id);

/// Trace sidecar a worker writes on clean shutdown:
/// `<trace>.worker-<spawn>.events.jsonl` — matched by
/// find_trace_sidecars(), merged into the final Chrome trace.
std::string worker_trace_path(const std::string& trace_path, int spawn_id);

/// Body of the worker process: runs the protocol loop on `fd` until `quit`
/// or controller death. Returns the process exit code. The caller (the
/// forked child) must exit via std::_Exit with it — running atexit
/// handlers in a fork twin flushes inherited state that is not its own.
int worker_main(int fd, const WorkerEnv& env);

}  // namespace musa::sweep
