#include "powersim/power.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "powersim/tech.hpp"

namespace musa::powersim {

namespace {
// Per-lane functional-unit dynamic energies at 1.0 V, picojoules.
constexpr double kLaneEnergyPj[isa::kNumOpClasses] = {
    90.0,   // int_alu
    220.0,  // int_mul
    220.0,  // fp_add
    300.0,  // fp_mul
    750.0,  // fp_div
    75.0,   // load (AGU + LSQ)
    75.0,   // store
    60.0,   // branch
};
// SIMD lanes share control/scheduling; per-lane energy shrinks slightly.
constexpr double kSimdAmortization = 0.95;
constexpr double kL1AccessPj = 200.0;

constexpr double kPj = 1e-12;
}  // namespace

CorePower::CorePower(const cpusim::CoreConfig& core, int vector_bits,
                     double freq_ghz)
    : core_(core),
      vector_bits_(vector_bits),
      volts_(voltage_for_ghz(freq_ghz)) {
  MUSA_CHECK_MSG(vector_bits >= 64, "vector width below one lane");
  // Front-end/decode + rename/ROB write + physical RF access, per fused op.
  per_op_overhead_pj_ = 130.0 + 0.2 * core_.rob + 10.0 * core_.issue_width +
                        40.0 + 0.1 * (core_.irf + core_.frf);
}

double CorePower::op_energy_j(isa::OpClass cls, double lanes) const {
  const double lane_pj = kLaneEnergyPj[static_cast<std::size_t>(cls)];
  const double fu_pj =
      lanes <= 1.0 ? lane_pj : lanes * lane_pj * kSimdAmortization;
  return (per_op_overhead_pj_ + fu_pj) * kPj * dynamic_scale(volts_);
}

double CorePower::core_leakage_w() const {
  // Structure leakage at 1.0 V; the FPU array grows with vector width.
  const double fpu_lanes = static_cast<double>(vector_bits_) / 128.0;
  const double watts_1v = 0.08                          // misc logic
                          + 0.0006 * core_.rob          // ROB CAM/RAM
                          + 0.00045 * (core_.irf + core_.frf)
                          + 0.0015 * core_.store_buffer
                          + 0.04 * (core_.alus + core_.lsus)
                          + 0.11 * core_.fpus * fpu_lanes
                          + 0.12;                       // L1 I+D arrays
  return watts_1v * leakage_scale(volts_);
}

double CorePower::evaluate_w(const NodeActivity& activity) const {
  double dynamic = 0.0;
  for (int c = 0; c < isa::kNumOpClasses; ++c) {
    const double ops = activity.ops_s[c];
    if (ops <= 0) continue;
    const double lanes_per_op = activity.lanes_s[c] / ops;
    dynamic +=
        ops * op_energy_j(static_cast<isa::OpClass>(c), lanes_per_op);
  }
  dynamic += activity.l1_access_s * kL1AccessPj * kPj * dynamic_scale(volts_);
  // Every core leaks, busy or idle; clock/uncore overhead folds into the
  // per-core leakage term.
  const double leakage = activity.total_cores * core_leakage_w();
  return dynamic + leakage;
}

double CorePower::core_area_mm2() const {
  const double fpu_lanes = static_cast<double>(vector_bits_) / 128.0;
  return 1.2                              // front-end, misc logic
         + 0.004 * core_.rob              // ROB
         + 0.003 * (core_.irf + core_.frf)
         + 0.005 * core_.store_buffer
         + 0.35 * (core_.alus + core_.lsus)
         + 0.55 * core_.fpus * fpu_lanes  // SIMD datapath dominates
         + 0.9;                           // L1 I+D arrays
}

double CachePower::area_mm2(int total_cores) const {
  const double mb = (static_cast<double>(caches_.l2.size_bytes) * total_cores +
                     static_cast<double>(caches_.l3.size_bytes)) /
                    (1024.0 * 1024.0);
  return 0.8 * mb;
}

CachePower::CachePower(const cachesim::HierarchyConfig& caches,
                       double freq_ghz)
    : caches_(caches), volts_(voltage_for_ghz(freq_ghz)) {}

double CachePower::evaluate_w(const NodeActivity& activity) const {
  // Dynamic: per-access energy grows with the square root of array size
  // (longer word/bit lines), anchored at 250 pJ per 256 kB-L2 access and
  // 1 nJ per 32 MB-L3 access.
  const double l2_pj =
      250.0 * std::sqrt(static_cast<double>(caches_.l2.size_bytes) /
                        (256.0 * 1024.0));
  const double l3_pj =
      1000.0 * std::sqrt(static_cast<double>(caches_.l3.size_bytes) /
                         (32.0 * 1024.0 * 1024.0));
  const double dynamic = (activity.l2_access_s * l2_pj +
                          activity.l3_access_s * l3_pj) *
                         kPj * dynamic_scale(volts_);
  // Leakage: 0.15 W per MB of SRAM at 1.0 V (L2 per core + shared L3).
  const double mb = (static_cast<double>(caches_.l2.size_bytes) *
                         activity.total_cores +
                     static_cast<double>(caches_.l3.size_bytes)) /
                    (1024.0 * 1024.0);
  const double leakage = 0.15 * mb * leakage_scale(volts_);
  return dynamic + leakage;
}

DramPower::DramPower(int dimms) : dimms_(dimms) {
  MUSA_CHECK_MSG(dimms >= 1, "need at least one DIMM");
}

double DramPower::evaluate_w(const dramsim::DramCounters& counters,
                             double duration_s) const {
  // Background (precharge/active standby, PLL, termination): per DIMM.
  const double background = 1.2 * dimms_;
  if (duration_s <= 0) return background;
  // Command energies per Micron DDR4 datasheet class (nJ).
  const double dyn_j = (static_cast<double>(counters.acts) * 8.0 +
                        static_cast<double>(counters.reads) * 12.0 +
                        static_cast<double>(counters.writes) * 14.0 +
                        static_cast<double>(counters.refreshes) * 50.0) *
                       1e-9;
  return background + dyn_j / duration_s;
}

}  // namespace musa::powersim
