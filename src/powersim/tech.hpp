// Technology model: 22 nm voltage/frequency pairs (paper §V-B.5: "we provide
// McPAT with adequate voltage parameters to scale up voltage accordingly to
// 22nm process technology").
#pragma once

namespace musa::powersim {

/// Supply voltage for a target clock, linear V/f curve anchored at the
/// paper's operating points (1.5 GHz → 0.75 V ... 3.0 GHz → 1.05 V).
constexpr double voltage_for_ghz(double ghz) {
  return 0.45 + 0.2 * ghz;
}

/// Dynamic energy scales with V² (energies below are quoted at 1.0 V).
constexpr double dynamic_scale(double volts) { return volts * volts; }

/// Leakage power scales ~linearly with V in the region of interest.
constexpr double leakage_scale(double volts) { return volts; }

}  // namespace musa::powersim
