// Node power models.
//
//  * CorePower: McPAT-equivalent structure-based model of the multicore —
//    per-operation dynamic energies sized by the OoO structures (ROB, RFs,
//    issue width, FUs at the configured vector width) plus per-structure
//    leakage. Idle cores still burn leakage — the effect behind the paper's
//    conclusion that poor parallel efficiency wastes static power.
//  * CachePower: dynamic energy per access (∝ √size) + leakage (∝ capacity)
//    for the L2/L3 arrays.
//  * DramPower: DRAMPower-equivalent — background power per DIMM plus
//    per-command energies driven by the DRAM simulator's command counters.
//
// All dynamic energies are quoted at 1.0 V and scaled by V²; leakage scales
// by V (tech.hpp). The node report splits power into the paper's three
// components: Core+L1, L2+L3Cache, and Memory.
#pragma once

#include <array>
#include <cstdint>

#include "cachesim/hierarchy.hpp"
#include "cpusim/core_config.hpp"
#include "dramsim/dram.hpp"
#include "isa/instr.hpp"

namespace musa::powersim {

/// Node-level activity rates (events per second) plus occupancy.
struct NodeActivity {
  std::array<double, isa::kNumOpClasses> ops_s{};    // fused ops / s
  std::array<double, isa::kNumOpClasses> lanes_s{};  // scalar lanes / s
  double l1_access_s = 0.0;
  double l2_access_s = 0.0;
  double l3_access_s = 0.0;
  double active_cores = 0.0;  // average busy cores (≤ total_cores)
  int total_cores = 1;        // all of them leak
};

/// The paper's three power components (Figs 5b–9b).
struct PowerBreakdown {
  double core_l1_w = 0.0;
  double l2_l3_w = 0.0;
  double dram_w = 0.0;

  double total() const { return core_l1_w + l2_l3_w + dram_w; }
};

/// McPAT-like multicore power model.
class CorePower {
 public:
  CorePower(const cpusim::CoreConfig& core, int vector_bits, double freq_ghz);

  /// Dynamic energy of one fused operation of class `cls` spanning `lanes`
  /// scalar lanes, in joules (at the configured voltage).
  double op_energy_j(isa::OpClass cls, double lanes) const;

  /// Leakage power of one core (including its L1), watts.
  double core_leakage_w() const;

  /// Silicon area of one core (including its L1) at 22 nm, mm².
  /// McPAT-style structure sum: ROB/RF CAMs, FU datapaths (FPUs grow with
  /// the configured vector width), buffers, and the L1 arrays.
  double core_area_mm2() const;

  /// Core+L1 power for the given activity.
  double evaluate_w(const NodeActivity& activity) const;

 private:
  cpusim::CoreConfig core_;
  int vector_bits_;
  double volts_;
  double per_op_overhead_pj_;  // front-end + rename/ROB + RF access, at 1 V
};

/// L2/L3 array power model.
class CachePower {
 public:
  CachePower(const cachesim::HierarchyConfig& caches, double freq_ghz);

  double evaluate_w(const NodeActivity& activity) const;

  /// Silicon area of the L2/L3 arrays at 22 nm, mm² (≈ 0.8 mm²/MB SRAM).
  double area_mm2(int total_cores) const;

 private:
  cachesim::HierarchyConfig caches_;
  double volts_;
};

/// DRAMPower-like DIMM model.
class DramPower {
 public:
  /// `dimms`: populated modules (the paper uses 2 DIMMs per channel: 8 for
  /// 4-channel / 64 GB, 16 for 8-channel / 128 GB).
  explicit DramPower(int dimms);

  /// Average power over `duration_s` given the controller's command counts.
  double evaluate_w(const dramsim::DramCounters& counters,
                    double duration_s) const;

  static int dimms_for_channels(int channels) { return 2 * channels; }

 private:
  int dimms_;
};

}  // namespace musa::powersim
