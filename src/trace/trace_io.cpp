#include "trace/trace_io.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

static_assert(std::endian::native == std::endian::little,
              "trace files are little-endian; add byte swapping for this host");

namespace musa::trace {

namespace {

constexpr std::uint32_t kBurstMagic = 0x4D555342;  // "MUSB"
constexpr std::uint32_t kRegionMagic = 0x4D555352;  // "MUSR"
constexpr std::uint32_t kInstrMagic = 0x4D555349;  // "MUSI"
constexpr std::uint32_t kVersion = 1;

/// Every malformed-input path lands here: an io-class SimError naming the
/// stream offset where the damage was noticed, so a corrupt trace can be
/// located with `xxd` instead of guessed at. Truncation and garbage fields
/// must never become UB or a silently shorter trace.
[[noreturn]] void bad_trace(std::istream& in, const std::string& what) {
  in.clear();  // tellg() returns -1 on a failed stream otherwise
  const auto pos = static_cast<long long>(in.tellg());
  throw SimError("corrupt trace: " + what + " (near byte offset " +
                     std::to_string(pos) + ")",
                 ErrorClass::kIo, "trace");
}

template <typename T>
void put(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in.good()) bad_trace(in, "file truncated mid-field");
  return value;
}

void put_string(std::ostream& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& in) {
  const auto n = get<std::uint32_t>(in);
  if (n >= (1u << 20)) bad_trace(in, "implausible string length");
  std::string s(n, '\0');
  in.read(s.data(), n);
  if (!in.good()) bad_trace(in, "file truncated inside a string");
  return s;
}

void check_header(std::istream& in, std::uint32_t magic, const char* what) {
  if (get<std::uint32_t>(in) != magic)
    bad_trace(in, std::string("not a ") + what + " trace file (bad magic)");
  if (get<std::uint32_t>(in) != kVersion)
    bad_trace(in, std::string("unsupported ") + what + " trace version");
}

/// A reader that consumed its declared contents must also have consumed the
/// file: trailing bytes mean a length field was corrupted *smaller* (the
/// per-field truncation checks cannot see that) and part of the trace was
/// silently ignored.
void expect_eof(std::istream& in) {
  if (in.peek() != std::char_traits<char>::eof())
    bad_trace(in, "trailing bytes after the declared contents "
                  "(shrunk length field?)");
}

/// Tags stream-level errors with the file they came from.
template <typename Fn>
auto with_path(const std::string& path, Fn&& fn) {
  try {
    return fn();
  } catch (const SimError& e) {
    if (e.error_class() != ErrorClass::kIo) throw;
    throw SimError(path + ": " + e.what(), ErrorClass::kIo, "trace");
  }
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good())
    throw SimError("cannot open for writing: " + path, ErrorClass::kIo,
                   "trace");
  return out;
}

/// A writer that reports success must have durably produced every byte: a
/// full disk truncates silently otherwise and the *reader* pays for it.
void close_out(std::ofstream& out, const std::string& path) {
  out.flush();
  if (!out.good())
    throw SimError("short write (disk full?): " + path, ErrorClass::kIo,
                   "trace");
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good())
    throw SimError("cannot open for reading: " + path, ErrorClass::kIo,
                   "trace");
  return in;
}

}  // namespace

// ---- Burst traces ---------------------------------------------------------

void write_app_trace(const AppTrace& trace, std::ostream& out) {
  put(out, kBurstMagic);
  put(out, kVersion);
  put_string(out, trace.app_name);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.ranks.size()));
  for (const auto& rank : trace.ranks) {
    put<std::int32_t>(out, rank.rank);
    put<std::uint64_t>(out, rank.events.size());
    for (const auto& e : rank.events) {
      put<std::uint8_t>(out, static_cast<std::uint8_t>(e.kind));
      if (e.kind == BurstEvent::Kind::kCompute) {
        put(out, e.seconds);
        put<std::int32_t>(out, e.region_id);
      } else {
        put<std::uint8_t>(out, static_cast<std::uint8_t>(e.op));
        put<std::int32_t>(out, e.peer);
        put<std::uint64_t>(out, e.bytes);
        put<std::int32_t>(out, e.req);
      }
    }
  }
}

AppTrace read_app_trace(std::istream& in) {
  check_header(in, kBurstMagic, "burst");
  AppTrace trace;
  trace.app_name = get_string(in);
  const auto ranks = get<std::uint32_t>(in);
  if (ranks > 1u << 20) bad_trace(in, "implausible rank count");
  trace.ranks.resize(ranks);
  for (auto& rank : trace.ranks) {
    rank.rank = get<std::int32_t>(in);
    const auto n = get<std::uint64_t>(in);
    if (n > 1ull << 32) bad_trace(in, "implausible event count");
    rank.events.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      // Enum bytes are validated before the cast: a flipped bit must fail
      // the load here, not surface later as UB in a switch over the enum.
      const auto kind_raw = get<std::uint8_t>(in);
      if (kind_raw > static_cast<std::uint8_t>(BurstEvent::Kind::kMpi))
        bad_trace(in, "invalid event kind byte");
      if (static_cast<BurstEvent::Kind>(kind_raw) ==
          BurstEvent::Kind::kCompute) {
        const double seconds = get<double>(in);
        if (!std::isfinite(seconds) || seconds < 0.0)
          bad_trace(in, "non-finite or negative compute-burst duration");
        const auto region = get<std::int32_t>(in);
        rank.events.push_back(BurstEvent::compute(seconds, region));
      } else {
        const auto op_raw = get<std::uint8_t>(in);
        if (op_raw > static_cast<std::uint8_t>(MpiOp::kBarrier))
          bad_trace(in, "invalid MPI op byte");
        const auto op = static_cast<MpiOp>(op_raw);
        const auto peer = get<std::int32_t>(in);
        const auto bytes = get<std::uint64_t>(in);
        const auto req = get<std::int32_t>(in);
        rank.events.push_back(BurstEvent::mpi(op, peer, bytes, req));
      }
    }
  }
  return trace;
}

void save_app_trace(const AppTrace& trace, const std::string& path) {
  auto out = open_out(path);
  write_app_trace(trace, out);
  close_out(out, path);
}

AppTrace load_app_trace(const std::string& path) {
  auto in = open_in(path);
  return with_path(path, [&] {
    AppTrace trace = read_app_trace(in);
    expect_eof(in);
    return trace;
  });
}

// ---- Regions --------------------------------------------------------------

void write_region(const Region& region, std::ostream& out) {
  put(out, kRegionMagic);
  put(out, kVersion);
  put_string(out, region.name);
  put<std::uint64_t>(out, region.tasks.size());
  for (const auto& t : region.tasks) {
    put<std::int32_t>(out, t.type);
    put(out, t.work);
    put<std::uint8_t>(out, t.critical ? 1 : 0);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(t.deps.size()));
    for (auto d : t.deps) put<std::int32_t>(out, d);
  }
}

Region read_region(std::istream& in) {
  check_header(in, kRegionMagic, "region");
  Region region;
  region.name = get_string(in);
  const auto n = get<std::uint64_t>(in);
  if (n > 1ull << 28) bad_trace(in, "implausible task count");
  region.tasks.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    TaskInstance t;
    t.type = get<std::int32_t>(in);
    t.work = get<double>(in);
    if (!std::isfinite(t.work) || t.work < 0.0)
      bad_trace(in, "non-finite or negative task work");
    t.critical = get<std::uint8_t>(in) != 0;
    const auto deps = get<std::uint32_t>(in);
    if (deps > n) bad_trace(in, "implausible dependency count");
    t.deps.reserve(deps);
    for (std::uint32_t d = 0; d < deps; ++d) {
      const auto dep = get<std::int32_t>(in);
      // A dependency index outside the task array would be an out-of-bounds
      // read in the runtime simulator — reject it at the boundary.
      if (dep < 0 || static_cast<std::uint64_t>(dep) >= n)
        bad_trace(in, "task dependency index out of range");
      t.deps.push_back(dep);
    }
    region.tasks.push_back(std::move(t));
  }
  return region;
}

void save_region(const Region& region, const std::string& path) {
  auto out = open_out(path);
  write_region(region, out);
  close_out(out, path);
}

Region load_region(const std::string& path) {
  auto in = open_in(path);
  return with_path(path, [&] {
    Region region = read_region(in);
    expect_eof(in);
    return region;
  });
}

// ---- Instruction streams --------------------------------------------------

std::uint64_t spool_instr_trace(InstrSource& source, const std::string& path,
                                std::uint64_t limit) {
  auto out = open_out(path);
  put(out, kInstrMagic);
  put(out, kVersion);
  const auto count_pos = out.tellp();
  put<std::uint64_t>(out, 0);  // patched below
  isa::Instr in;
  std::uint64_t n = 0;
  while ((limit == 0 || n < limit) && source.next(in)) {
    out.write(reinterpret_cast<const char*>(&in), sizeof in);
    ++n;
  }
  out.seekp(count_pos);
  put<std::uint64_t>(out, n);
  close_out(out, path);
  return n;
}

FileInstrSource::FileInstrSource(const std::string& path) {
  auto in = open_in(path);
  with_path(path, [&] {
    check_header(in, kInstrMagic, "instruction");
    const auto n = get<std::uint64_t>(in);
    if (n > 1ull << 32) bad_trace(in, "implausible instruction count");
    instrs_.resize(n);
    in.read(reinterpret_cast<char*>(instrs_.data()),
            static_cast<std::streamsize>(n * sizeof(isa::Instr)));
    if (!in.good()) bad_trace(in, "instruction trace truncated");
    expect_eof(in);
  });
}

bool FileInstrSource::next(isa::Instr& out) {
  if (pos_ >= instrs_.size()) return false;
  out = instrs_[pos_++];
  return true;
}

std::string describe_trace_file(const std::string& path) {
  auto in = open_in(path);
  const auto magic = get<std::uint32_t>(in);
  const auto version = get<std::uint32_t>(in);
  std::ostringstream out;
  if (magic == kBurstMagic) {
    const std::string app = get_string(in);
    const auto ranks = get<std::uint32_t>(in);
    out << "burst trace v" << version << ": app=" << app
        << " ranks=" << ranks;
  } else if (magic == kRegionMagic) {
    const std::string name = get_string(in);
    const auto tasks = get<std::uint64_t>(in);
    out << "region v" << version << ": name=" << name << " tasks=" << tasks;
  } else if (magic == kInstrMagic) {
    const auto n = get<std::uint64_t>(in);
    out << "instruction trace v" << version << ": records=" << n << " ("
        << n * sizeof(isa::Instr) << " bytes payload)";
  } else {
    throw SimError("unrecognised trace file: " + path, ErrorClass::kIo,
                   "trace");
  }
  return out.str();
}

}  // namespace musa::trace
