#include "trace/trace_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

static_assert(std::endian::native == std::endian::little,
              "trace files are little-endian; add byte swapping for this host");

namespace musa::trace {

namespace {

constexpr std::uint32_t kBurstMagic = 0x4D555342;  // "MUSB"
constexpr std::uint32_t kRegionMagic = 0x4D555352;  // "MUSR"
constexpr std::uint32_t kInstrMagic = 0x4D555349;  // "MUSI"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  MUSA_CHECK_MSG(in.good(), "trace file truncated");
  return value;
}

void put_string(std::ostream& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& in) {
  const auto n = get<std::uint32_t>(in);
  MUSA_CHECK_MSG(n < (1u << 20), "implausible string length in trace file");
  std::string s(n, '\0');
  in.read(s.data(), n);
  MUSA_CHECK_MSG(in.good(), "trace file truncated");
  return s;
}

void check_header(std::istream& in, std::uint32_t magic, const char* what) {
  MUSA_CHECK_MSG(get<std::uint32_t>(in) == magic,
                 std::string("not a ") + what + " trace file");
  MUSA_CHECK_MSG(get<std::uint32_t>(in) == kVersion,
                 std::string("unsupported ") + what + " trace version");
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MUSA_CHECK_MSG(out.good(), "cannot open for writing: " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MUSA_CHECK_MSG(in.good(), "cannot open for reading: " + path);
  return in;
}

}  // namespace

// ---- Burst traces ---------------------------------------------------------

void write_app_trace(const AppTrace& trace, std::ostream& out) {
  put(out, kBurstMagic);
  put(out, kVersion);
  put_string(out, trace.app_name);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.ranks.size()));
  for (const auto& rank : trace.ranks) {
    put<std::int32_t>(out, rank.rank);
    put<std::uint64_t>(out, rank.events.size());
    for (const auto& e : rank.events) {
      put<std::uint8_t>(out, static_cast<std::uint8_t>(e.kind));
      if (e.kind == BurstEvent::Kind::kCompute) {
        put(out, e.seconds);
        put<std::int32_t>(out, e.region_id);
      } else {
        put<std::uint8_t>(out, static_cast<std::uint8_t>(e.op));
        put<std::int32_t>(out, e.peer);
        put<std::uint64_t>(out, e.bytes);
        put<std::int32_t>(out, e.req);
      }
    }
  }
}

AppTrace read_app_trace(std::istream& in) {
  check_header(in, kBurstMagic, "burst");
  AppTrace trace;
  trace.app_name = get_string(in);
  const auto ranks = get<std::uint32_t>(in);
  MUSA_CHECK_MSG(ranks <= 1u << 20, "implausible rank count in trace");
  trace.ranks.resize(ranks);
  for (auto& rank : trace.ranks) {
    rank.rank = get<std::int32_t>(in);
    const auto n = get<std::uint64_t>(in);
    MUSA_CHECK_MSG(n <= 1ull << 32, "implausible event count in trace");
    rank.events.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto kind = static_cast<BurstEvent::Kind>(get<std::uint8_t>(in));
      if (kind == BurstEvent::Kind::kCompute) {
        const double seconds = get<double>(in);
        const auto region = get<std::int32_t>(in);
        rank.events.push_back(BurstEvent::compute(seconds, region));
      } else {
        const auto op = static_cast<MpiOp>(get<std::uint8_t>(in));
        const auto peer = get<std::int32_t>(in);
        const auto bytes = get<std::uint64_t>(in);
        const auto req = get<std::int32_t>(in);
        rank.events.push_back(BurstEvent::mpi(op, peer, bytes, req));
      }
    }
  }
  return trace;
}

void save_app_trace(const AppTrace& trace, const std::string& path) {
  auto out = open_out(path);
  write_app_trace(trace, out);
}

AppTrace load_app_trace(const std::string& path) {
  auto in = open_in(path);
  return read_app_trace(in);
}

// ---- Regions --------------------------------------------------------------

void write_region(const Region& region, std::ostream& out) {
  put(out, kRegionMagic);
  put(out, kVersion);
  put_string(out, region.name);
  put<std::uint64_t>(out, region.tasks.size());
  for (const auto& t : region.tasks) {
    put<std::int32_t>(out, t.type);
    put(out, t.work);
    put<std::uint8_t>(out, t.critical ? 1 : 0);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(t.deps.size()));
    for (auto d : t.deps) put<std::int32_t>(out, d);
  }
}

Region read_region(std::istream& in) {
  check_header(in, kRegionMagic, "region");
  Region region;
  region.name = get_string(in);
  const auto n = get<std::uint64_t>(in);
  MUSA_CHECK_MSG(n <= 1ull << 28, "implausible task count in region file");
  region.tasks.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    TaskInstance t;
    t.type = get<std::int32_t>(in);
    t.work = get<double>(in);
    t.critical = get<std::uint8_t>(in) != 0;
    const auto deps = get<std::uint32_t>(in);
    MUSA_CHECK_MSG(deps <= n, "implausible dependency count");
    t.deps.reserve(deps);
    for (std::uint32_t d = 0; d < deps; ++d)
      t.deps.push_back(get<std::int32_t>(in));
    region.tasks.push_back(std::move(t));
  }
  return region;
}

void save_region(const Region& region, const std::string& path) {
  auto out = open_out(path);
  write_region(region, out);
}

Region load_region(const std::string& path) {
  auto in = open_in(path);
  return read_region(in);
}

// ---- Instruction streams --------------------------------------------------

std::uint64_t spool_instr_trace(InstrSource& source, const std::string& path,
                                std::uint64_t limit) {
  auto out = open_out(path);
  put(out, kInstrMagic);
  put(out, kVersion);
  const auto count_pos = out.tellp();
  put<std::uint64_t>(out, 0);  // patched below
  isa::Instr in;
  std::uint64_t n = 0;
  while ((limit == 0 || n < limit) && source.next(in)) {
    out.write(reinterpret_cast<const char*>(&in), sizeof in);
    ++n;
  }
  out.seekp(count_pos);
  put<std::uint64_t>(out, n);
  return n;
}

FileInstrSource::FileInstrSource(const std::string& path) {
  auto in = open_in(path);
  check_header(in, kInstrMagic, "instruction");
  const auto n = get<std::uint64_t>(in);
  MUSA_CHECK_MSG(n <= 1ull << 32, "implausible instruction count");
  instrs_.resize(n);
  in.read(reinterpret_cast<char*>(instrs_.data()),
          static_cast<std::streamsize>(n * sizeof(isa::Instr)));
  MUSA_CHECK_MSG(in.good(), "instruction trace truncated");
}

bool FileInstrSource::next(isa::Instr& out) {
  if (pos_ >= instrs_.size()) return false;
  out = instrs_[pos_++];
  return true;
}

std::string describe_trace_file(const std::string& path) {
  auto in = open_in(path);
  const auto magic = get<std::uint32_t>(in);
  const auto version = get<std::uint32_t>(in);
  std::ostringstream out;
  if (magic == kBurstMagic) {
    const std::string app = get_string(in);
    const auto ranks = get<std::uint32_t>(in);
    out << "burst trace v" << version << ": app=" << app
        << " ranks=" << ranks;
  } else if (magic == kRegionMagic) {
    const std::string name = get_string(in);
    const auto tasks = get<std::uint64_t>(in);
    out << "region v" << version << ": name=" << name << " tasks=" << tasks;
  } else if (magic == kInstrMagic) {
    const auto n = get<std::uint64_t>(in);
    out << "instruction trace v" << version << ": records=" << n << " ("
        << n * sizeof(isa::Instr) << " bytes payload)";
  } else {
    throw SimError("unrecognised trace file: " + path);
  }
  return out.str();
}

}  // namespace musa::trace
