// Trace serialisation.
//
// MUSA's central economy is *trace once, simulate everywhere*: one set of
// traces drives every architectural configuration (paper §II). This module
// provides the on-disk formats that make traces durable artifacts:
//
//  * burst traces (per-rank MPI/compute event streams)  — versioned binary,
//  * regions (task graphs with dependencies)            — versioned binary,
//  * instruction streams — a compact binary record format any InstrSource
//    can be spooled into and replayed from (`FileInstrSource`), exactly the
//    role DynamoRIO trace files play for the original toolchain.
//
// All formats carry a magic + version header and fail loudly (SimError) on
// mismatch or truncation. Integers are stored little-endian (asserted at
// compile time for the host).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/burst.hpp"
#include "trace/instr_source.hpp"
#include "trace/region.hpp"

namespace musa::trace {

// ---- Burst traces ---------------------------------------------------------

/// Writes an application burst trace; overwrites `path`.
void save_app_trace(const AppTrace& trace, const std::string& path);
AppTrace load_app_trace(const std::string& path);

void write_app_trace(const AppTrace& trace, std::ostream& out);
AppTrace read_app_trace(std::istream& in);

// ---- Regions --------------------------------------------------------------

void save_region(const Region& region, const std::string& path);
Region load_region(const std::string& path);

void write_region(const Region& region, std::ostream& out);
Region read_region(std::istream& in);

// ---- Instruction streams --------------------------------------------------

/// Spools a source to a binary instruction trace file; returns the number
/// of records written. `limit` bounds the trace length (0 = drain).
std::uint64_t spool_instr_trace(InstrSource& source, const std::string& path,
                                std::uint64_t limit = 0);

/// Replays a binary instruction trace file. The whole trace is mapped into
/// memory on open (traces used here are sample regions, not full runs).
class FileInstrSource final : public InstrSource {
 public:
  explicit FileInstrSource(const std::string& path);

  bool next(isa::Instr& out) override;
  void reset() override { pos_ = 0; }

  std::size_t size() const { return instrs_.size(); }

 private:
  std::vector<isa::Instr> instrs_;
  std::size_t pos_ = 0;
};

/// Human-readable one-line summary of a trace file (either format),
/// e.g. for a `trace-info` tool: type, version, ranks/tasks/instrs.
std::string describe_trace_file(const std::string& path);

}  // namespace musa::trace
