// OpenMP worksharing-construct builders (paper §III: "we extend the tracing
// infrastructure to support parallel loops as well as other common
// directives like omp critical").
//
// These helpers turn loop-level worksharing into the Region task graphs the
// runtime simulator replays: a `#pragma omp parallel for` with a given
// schedule becomes one task per chunk; `omp critical` sections become
// critical tasks; taskloop-style recursive decomposition becomes a balanced
// dependency tree.
#pragma once

#include <cstdint>
#include <functional>

#include "trace/region.hpp"

namespace musa::trace {

enum class OmpSchedule : std::uint8_t {
  kStatic,   // equal contiguous chunks, one per thread slot
  kDynamic,  // fixed chunk_size chunks, grabbed on demand
  kGuided,   // geometrically shrinking chunks (down to chunk_size)
};

constexpr const char* omp_schedule_name(OmpSchedule s) {
  switch (s) {
    case OmpSchedule::kStatic: return "static";
    case OmpSchedule::kDynamic: return "dynamic";
    case OmpSchedule::kGuided: return "guided";
  }
  return "?";
}

/// Per-iteration relative cost; index is the loop iteration.
using IterationCost = std::function<double(std::int64_t)>;

/// Builds the task graph of `#pragma omp parallel for schedule(...)` over
/// `iterations` loop iterations for a team of `threads`.
///
///  * kStatic ignores chunk_size when 0 and divides iterations into
///    `threads` contiguous blocks (OpenMP default);
///  * kDynamic produces ceil(iterations / chunk_size) equal-size chunks;
///  * kGuided produces chunks of remaining/threads, floored at chunk_size.
///
/// Each chunk's work is the sum of its iterations' costs (uniform 1.0 when
/// `cost` is empty). Chunks are independent tasks; the runtime simulator's
/// dispatch order supplies the on-demand behaviour.
Region make_parallel_for(std::int64_t iterations, int threads,
                         OmpSchedule schedule, std::int64_t chunk_size = 0,
                         const IterationCost& cost = {});

/// Appends a `#pragma omp critical` section of `work` to a region: the new
/// task is serialised against every other critical task at simulation time.
/// Returns the new task's index.
std::int32_t add_critical(Region& region, double work);

/// Builds a taskloop-style balanced binary decomposition: internal tasks
/// split (negligible work), `leaves` leaf tasks carry the work, and a join
/// chain mirrors the spawn tree. Exercises dependency-graph scheduling.
Region make_task_tree(int leaves, double leaf_work = 1.0);

}  // namespace musa::trace
