#include "trace/worksharing.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace musa::trace {

namespace {

double chunk_work(std::int64_t begin, std::int64_t end,
                  const IterationCost& cost) {
  if (!cost) return static_cast<double>(end - begin);
  double acc = 0.0;
  for (std::int64_t i = begin; i < end; ++i) acc += cost(i);
  return acc;
}

void push_chunk(Region& region, std::int64_t begin, std::int64_t end,
                const IterationCost& cost) {
  TaskInstance t;
  t.type = 0;
  t.work = chunk_work(begin, end, cost);
  region.tasks.push_back(std::move(t));
}

}  // namespace

Region make_parallel_for(std::int64_t iterations, int threads,
                         OmpSchedule schedule, std::int64_t chunk_size,
                         const IterationCost& cost) {
  MUSA_CHECK_MSG(iterations > 0, "parallel for needs iterations");
  MUSA_CHECK_MSG(threads > 0, "parallel for needs a team");
  MUSA_CHECK_MSG(chunk_size >= 0, "negative chunk size");

  Region region;
  region.name = std::string("omp_for_") + omp_schedule_name(schedule);

  switch (schedule) {
    case OmpSchedule::kStatic: {
      if (chunk_size == 0) {
        // Default static: one contiguous block per thread slot.
        const std::int64_t base = iterations / threads;
        const std::int64_t extra = iterations % threads;
        std::int64_t begin = 0;
        for (int t = 0; t < threads && begin < iterations; ++t) {
          const std::int64_t len = base + (t < extra ? 1 : 0);
          if (len == 0) continue;
          push_chunk(region, begin, begin + len, cost);
          begin += len;
        }
      } else {
        // static,chunk: round-robin fixed chunks. Chunks assigned to the
        // same thread are serialised with dependencies, matching OpenMP's
        // deterministic static mapping.
        std::vector<std::int32_t> last_of_thread(threads, -1);
        std::int64_t begin = 0;
        int slot = 0;
        while (begin < iterations) {
          const std::int64_t end = std::min(iterations, begin + chunk_size);
          push_chunk(region, begin, end, cost);
          const auto idx = static_cast<std::int32_t>(region.tasks.size() - 1);
          if (last_of_thread[slot] >= 0)
            region.tasks[idx].deps.push_back(last_of_thread[slot]);
          last_of_thread[slot] = idx;
          slot = (slot + 1) % threads;
          begin = end;
        }
      }
      break;
    }
    case OmpSchedule::kDynamic: {
      const std::int64_t step = chunk_size > 0 ? chunk_size : 1;
      for (std::int64_t begin = 0; begin < iterations; begin += step)
        push_chunk(region, begin, std::min(iterations, begin + step), cost);
      break;
    }
    case OmpSchedule::kGuided: {
      const std::int64_t floor_size = std::max<std::int64_t>(
          1, chunk_size > 0 ? chunk_size : 1);
      std::int64_t remaining = iterations;
      std::int64_t begin = 0;
      while (remaining > 0) {
        const std::int64_t len = std::max(
            floor_size, remaining / std::max(1, threads));
        const std::int64_t take = std::min(len, remaining);
        push_chunk(region, begin, begin + take, cost);
        begin += take;
        remaining -= take;
      }
      break;
    }
  }
  return region;
}

std::int32_t add_critical(Region& region, double work) {
  TaskInstance t;
  t.type = 0;
  t.work = work;
  t.critical = true;
  region.tasks.push_back(std::move(t));
  return static_cast<std::int32_t>(region.tasks.size() - 1);
}

Region make_task_tree(int leaves, double leaf_work) {
  MUSA_CHECK_MSG(leaves >= 1, "task tree needs leaves");
  Region region;
  region.name = "taskloop_tree";

  // Recursive binary split; each internal node is a (cheap) spawn task the
  // children depend on. Returns the indices of the subtree's leaf tasks.
  const std::function<std::vector<std::int32_t>(int, std::int32_t)> build =
      [&](int n, std::int32_t parent) -> std::vector<std::int32_t> {
    if (n == 1) {
      TaskInstance leaf;
      leaf.type = 0;
      leaf.work = leaf_work;
      if (parent >= 0) leaf.deps.push_back(parent);
      region.tasks.push_back(std::move(leaf));
      return {static_cast<std::int32_t>(region.tasks.size() - 1)};
    }
    TaskInstance split;
    split.type = 0;
    split.work = leaf_work / 100.0;  // spawn overhead
    if (parent >= 0) split.deps.push_back(parent);
    region.tasks.push_back(std::move(split));
    const auto self = static_cast<std::int32_t>(region.tasks.size() - 1);
    auto left = build(n / 2, self);
    auto right = build(n - n / 2, self);
    left.insert(left.end(), right.begin(), right.end());
    return left;
  };
  build(leaves, -1);
  return region;
}

}  // namespace musa::trace
