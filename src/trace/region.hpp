// Runtime-system events of a compute region — the task-level trace.
//
// MUSA records runtime-system events (task creation, dependencies, critical
// sections) in the coarse trace, and replays them through a simulated
// OpenMP/OmpSs runtime to model any number of cores per node (paper §II).
// A Region is that record: the task instances of one representative compute
// region of one rank, with their types, relative work and dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace musa::trace {

/// One schedulable task instance (an OpenMP task or a parallel-for chunk).
struct TaskInstance {
  int type = 0;        // kernel id: selects the detailed timing of this task
  double work = 1.0;   // relative work (scales the kernel's base duration)
  std::vector<std::int32_t> deps;  // indices of tasks that must finish first
  bool critical = false;  // executes under a global lock (omp critical)
};

/// A compute region: the unit the detailed simulation samples.
struct Region {
  std::string name;
  std::vector<TaskInstance> tasks;

  /// Sum of task work, used for ideal-time normalisation.
  double total_work() const {
    double acc = 0.0;
    for (const auto& t : tasks) acc += t.work;
    return acc;
  }
};

}  // namespace musa::trace
