// Burst (coarse-grain) traces — the Extrae-level trace of MUSA.
//
// A burst trace records, per MPI rank, the alternating sequence of compute
// bursts and MPI calls over the whole execution. Compute burst durations are
// the *reference machine* timings; the Dimemas-style replay engine
// (netsim) rescales them with factors obtained from detailed simulation of
// the sampled region, then simulates the MPI events on a network model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace musa::trace {

enum class MpiOp : std::uint8_t {
  kSend,       // blocking send
  kRecv,       // blocking receive
  kIsend,      // non-blocking send (completion at matching kWait)
  kIrecv,      // non-blocking receive
  kWait,       // wait on request `req`
  kAllreduce,  // global reduction (synchronising collective)
  kBarrier,    // global barrier
};

constexpr const char* mpi_op_name(MpiOp op) {
  switch (op) {
    case MpiOp::kSend: return "Send";
    case MpiOp::kRecv: return "Recv";
    case MpiOp::kIsend: return "Isend";
    case MpiOp::kIrecv: return "Irecv";
    case MpiOp::kWait: return "Wait";
    case MpiOp::kAllreduce: return "Allreduce";
    case MpiOp::kBarrier: return "Barrier";
  }
  return "?";
}

/// One event in a rank's burst trace.
struct BurstEvent {
  enum class Kind : std::uint8_t { kCompute, kMpi } kind = Kind::kCompute;

  // kCompute fields:
  double seconds = 0.0;  // reference-machine duration of the burst
  int region_id = 0;     // which compute region this burst belongs to

  // kMpi fields:
  MpiOp op = MpiOp::kSend;
  int peer = -1;           // partner rank (point-to-point ops)
  std::uint64_t bytes = 0; // message payload
  int req = -1;            // request id linking Isend/Irecv to Wait

  static BurstEvent compute(double seconds, int region_id) {
    BurstEvent e;
    e.kind = Kind::kCompute;
    e.seconds = seconds;
    e.region_id = region_id;
    return e;
  }
  static BurstEvent mpi(MpiOp op, int peer, std::uint64_t bytes,
                        int req = -1) {
    BurstEvent e;
    e.kind = Kind::kMpi;
    e.op = op;
    e.peer = peer;
    e.bytes = bytes;
    e.req = req;
    return e;
  }
};

/// All events of one rank, in program order.
struct RankTrace {
  int rank = 0;
  std::vector<BurstEvent> events;
};

/// Whole-application burst trace: one RankTrace per MPI rank.
struct AppTrace {
  std::string app_name;
  std::vector<RankTrace> ranks;

  int num_ranks() const { return static_cast<int>(ranks.size()); }
};

}  // namespace musa::trace
