// Instruction-stream abstraction.
//
// MUSA decouples trace *producers* (a DynamoRIO tracer in the paper, the
// synthetic kernel models here) from trace *consumers* (the fusion pass and
// the core timing model) behind this interface. Streams are pull-based and
// restartable, so one trace drives all 864 architectural configurations —
// the property the methodology relies on to amortise tracing cost.
#pragma once

#include <vector>

#include "isa/instr.hpp"

namespace musa::trace {

class InstrSource {
 public:
  virtual ~InstrSource() = default;

  /// Produces the next dynamic instruction; returns false at end of stream.
  virtual bool next(isa::Instr& out) = 0;

  /// Rewinds to the beginning of the stream (must replay identically).
  virtual void reset() = 0;
};

/// In-memory stream over a fixed instruction vector (tests, small traces).
class VectorSource final : public InstrSource {
 public:
  explicit VectorSource(std::vector<isa::Instr> instrs)
      : instrs_(std::move(instrs)) {}

  bool next(isa::Instr& out) override {
    if (pos_ >= instrs_.size()) return false;
    out = instrs_[pos_++];
    return true;
  }

  void reset() override { pos_ = 0; }

 private:
  std::vector<isa::Instr> instrs_;
  std::size_t pos_ = 0;
};

}  // namespace musa::trace
