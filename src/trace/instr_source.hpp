// Instruction-stream abstraction.
//
// MUSA decouples trace *producers* (a DynamoRIO tracer in the paper, the
// synthetic kernel models here) from trace *consumers* (the fusion pass and
// the core timing model) behind this interface. Streams are pull-based and
// restartable, so one trace drives all 864 architectural configurations —
// the property the methodology relies on to amortise tracing cost.
#pragma once

#include <algorithm>
#include <vector>

#include "isa/instr.hpp"

namespace musa::trace {

class InstrSource {
 public:
  virtual ~InstrSource() = default;

  /// Produces the next dynamic instruction; returns false at end of stream.
  virtual bool next(isa::Instr& out) = 0;

  /// Rewinds to the beginning of the stream (must replay identically).
  virtual void reset() = 0;

  /// Bulk read: hands out a contiguous run of at most `max_n` upcoming
  /// instructions and marks them consumed, or returns 0 if this source
  /// cannot (or is exhausted). Consumers fall back to next() — behaviour is
  /// identical either way; in-memory sources just skip the virtual call per
  /// instruction, which matters on the memoized-sweep replay path
  /// (core/stage_memo.hpp) where every design point re-walks the same
  /// materialized stream. The cap lets a consumer stop at an exact
  /// instruction count (functional warm-up must leave the source positioned
  /// precisely where the measured run begins).
  virtual std::size_t take_block(const isa::Instr** out,
                                 std::size_t /*max_n*/) {
    *out = nullptr;
    return 0;
  }
};

/// In-memory stream over a fixed instruction vector (tests, small traces).
class VectorSource final : public InstrSource {
 public:
  explicit VectorSource(std::vector<isa::Instr> instrs)
      : instrs_(std::move(instrs)) {}

  bool next(isa::Instr& out) override {
    if (pos_ >= instrs_.size()) return false;
    out = instrs_[pos_++];
    return true;
  }

  void reset() override { pos_ = 0; }

  std::size_t take_block(const isa::Instr** out, std::size_t max_n) override {
    const std::size_t n = std::min(instrs_.size() - pos_, max_n);
    *out = n > 0 ? instrs_.data() + pos_ : nullptr;
    pos_ += n;
    return n;
  }

 private:
  std::vector<isa::Instr> instrs_;
  std::size_t pos_ = 0;
};

/// Stream over a *borrowed* instruction vector, starting at `begin`.
///
/// This is how memoized kernel streams replay (core/stage_memo.hpp): the
/// materialized stream is generated once per (app, phase), and each design
/// point walks it through a SpanSource. `begin` positions the stream as if
/// a prefix had already been consumed — the measured run starts where the
/// functional warm-up left off. The vector must outlive the source.
class SpanSource final : public InstrSource {
 public:
  explicit SpanSource(const std::vector<isa::Instr>& instrs,
                      std::size_t begin = 0)
      : instrs_(&instrs), begin_(begin), pos_(begin) {}

  bool next(isa::Instr& out) override {
    if (pos_ >= instrs_->size()) return false;
    out = (*instrs_)[pos_++];
    return true;
  }

  void reset() override { pos_ = begin_; }

  std::size_t take_block(const isa::Instr** out, std::size_t max_n) override {
    const std::size_t n = std::min(instrs_->size() - pos_, max_n);
    *out = n > 0 ? instrs_->data() + pos_ : nullptr;
    pos_ += n;
    return n;
  }

 private:
  const std::vector<isa::Instr>* instrs_;
  std::size_t begin_;
  std::size_t pos_;
};

}  // namespace musa::trace
