#include "trace/kernel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace musa::trace {

namespace {
// Register allocation scheme (see isa/instr.hpp: 0..31 int, 32..63 fp).
constexpr std::uint8_t kIntBase = 0;        // rotating integer temporaries
constexpr int kIntRot = 8;
constexpr std::uint8_t kFpLoadBase = 32;    // vector-load destinations
constexpr std::uint8_t kFpTmpBase = 44;     // vector arithmetic temporaries
constexpr std::uint8_t kFpAccBase = 52;     // accumulator chains (ILP knob)
constexpr std::uint8_t kFpCoeff = 62;       // loop-invariant coefficient
constexpr std::uint8_t kChainRegBase = 16;  // per-stream address-chain regs
constexpr std::uint64_t kVecBase = 1ull << 40;   // vector-stream address space
constexpr std::uint64_t kStreamSpacing = 1ull << 32;
}  // namespace

KernelSource::KernelSource(KernelProfile profile, std::uint64_t budget,
                           std::uint64_t seed)
    : profile_(std::move(profile)), budget_(budget), seed_(seed), rng_(seed) {
  MUSA_CHECK_MSG(profile_.instrs_per_outer() > 0,
                 "kernel profile generates no instructions");
  MUSA_CHECK_MSG(profile_.ilp_chains >= 1 && profile_.ilp_chains <= 8,
                 "ilp_chains must be in [1,8]");
  double total_share = 0.0;
  for (const auto& s : profile_.streams) {
    MUSA_CHECK_MSG(s.ws_bytes >= 64, "stream working set below one line");
    total_share += s.share;
  }
  if (!profile_.streams.empty())
    MUSA_CHECK_MSG(total_share > 0.0, "stream shares sum to zero");
  reset();
}

void KernelSource::reset() {
  rng_ = musa::Rng(seed_);
  buffer_.clear();
  buf_pos_ = 0;
  emitted_ = 0;
  vec_cursor_ = 0;
  chain_rr_ = 0;
  cursors_.assign(profile_.streams.size(), 0);
  bases_.resize(profile_.streams.size());
  for (std::size_t i = 0; i < bases_.size(); ++i)
    bases_[i] = (i + 1) * kStreamSpacing + profile_.address_offset;
}

bool KernelSource::next(isa::Instr& out) {
  if (buf_pos_ >= buffer_.size()) {
    if (emitted_ >= budget_) return false;
    refill();
    if (buffer_.empty()) return false;
  }
  out = buffer_[buf_pos_++];
  ++emitted_;
  return true;
}

std::size_t KernelSource::take_block(const isa::Instr** out,
                                     std::size_t max_n) {
  if (buf_pos_ >= buffer_.size()) {
    if (emitted_ >= budget_) {
      *out = nullptr;
      return 0;
    }
    refill();
    if (buffer_.empty()) {
      *out = nullptr;
      return 0;
    }
  }
  const std::size_t n = std::min(buffer_.size() - buf_pos_, max_n);
  *out = buffer_.data() + buf_pos_;
  buf_pos_ += n;
  emitted_ += n;
  return n;
}

std::uint64_t KernelSource::stream_addr(std::size_t stream_idx,
                                        bool& /*is_write*/) {
  const StreamDesc& s = profile_.streams[stream_idx];
  std::uint64_t offset;
  if (s.stride == 0) {
    // Irregular access: uniform within the working set, 8-byte aligned.
    offset = rng_.next_below(s.ws_bytes / 8) * 8;
  } else {
    offset = cursors_[stream_idx] % s.ws_bytes;
    cursors_[stream_idx] += static_cast<std::uint64_t>(s.stride);
  }
  return bases_[stream_idx] + offset;
}

void KernelSource::refill() {
  buffer_.clear();
  buf_pos_ = 0;

  const VecBody& vb = profile_.vec_body;
  const ScalarTail& st = profile_.scalar_tail;

  // --- Vectorisable inner loop -------------------------------------------
  // Static ids 1..vb.total() are the SIMD instructions of the loop body;
  // every inner iteration emits one dynamic lane of each.
  if (profile_.vec_trip > 0 && vb.total() > 0) {
    const int mem_slots = std::max(1, vb.loads + vb.stores);
    const std::uint64_t slot_ws =
        std::max<std::uint64_t>(64, profile_.vec_ws_bytes / mem_slots);
    for (int t = 0; t < profile_.vec_trip; ++t) {
      std::uint32_t sid = 1;
      int slot = 0;
      std::uint8_t last_tmp = kFpTmpBase;
      for (int i = 0; i < vb.loads; ++i, ++slot) {
        isa::Instr in;
        in.op = isa::OpClass::kLoad;
        in.dst = static_cast<std::uint8_t>(kFpLoadBase + (i % 12));
        in.src1 = static_cast<std::uint8_t>(kIntBase + (slot % kIntRot));
        // The base wraps per outer iteration; lanes extend contiguously so
        // a fused group's addresses are exactly base + lane*stride.
        const std::uint64_t lane_off =
            vec_cursor_ % slot_ws +
            static_cast<std::uint64_t>(t) *
                static_cast<std::uint64_t>(profile_.vec_stride);
        in.addr = kVecBase + profile_.address_offset +
                  static_cast<std::uint64_t>(slot) * slot_ws * 4 + lane_off;
        in.size = 8;
        in.static_id = sid++;
        in.lane = static_cast<std::uint16_t>(t);
        in.vectorizable = 1;
        buffer_.push_back(in);
      }
      for (int i = 0; i < vb.fp_mul; ++i) {
        isa::Instr in;
        in.op = isa::OpClass::kFpMul;
        in.src1 = static_cast<std::uint8_t>(kFpLoadBase +
                                            (i % std::max(1, vb.loads)));
        in.src2 = kFpCoeff;
        last_tmp = static_cast<std::uint8_t>(kFpTmpBase + (i % 8));
        in.dst = last_tmp;
        in.static_id = sid++;
        in.lane = static_cast<std::uint16_t>(t);
        in.vectorizable = 1;
        buffer_.push_back(in);
      }
      for (int i = 0; i < vb.fp_add; ++i) {
        isa::Instr in;
        in.op = isa::OpClass::kFpAdd;
        // Accumulator chains: rotating over ilp_chains registers controls
        // the length of loop-carried dependence chains (the ILP knob).
        const std::uint8_t acc = static_cast<std::uint8_t>(
            kFpAccBase + (chain_rr_ % profile_.ilp_chains));
        ++chain_rr_;
        in.src1 = last_tmp;
        in.src2 = acc;
        in.dst = acc;
        in.static_id = sid++;
        in.lane = static_cast<std::uint16_t>(t);
        in.vectorizable = 1;
        buffer_.push_back(in);
      }
      for (int i = 0; i < vb.stores; ++i, ++slot) {
        isa::Instr in;
        in.op = isa::OpClass::kStore;
        in.src1 = last_tmp;
        in.src2 = static_cast<std::uint8_t>(kIntBase + (slot % kIntRot));
        // The base wraps per outer iteration; lanes extend contiguously so
        // a fused group's addresses are exactly base + lane*stride.
        const std::uint64_t lane_off =
            vec_cursor_ % slot_ws +
            static_cast<std::uint64_t>(t) *
                static_cast<std::uint64_t>(profile_.vec_stride);
        in.addr = kVecBase + profile_.address_offset +
                  static_cast<std::uint64_t>(slot) * slot_ws * 4 + lane_off;
        in.size = 8;
        in.static_id = sid++;
        in.lane = static_cast<std::uint16_t>(t);
        in.vectorizable = 1;
        buffer_.push_back(in);
      }
    }
    vec_cursor_ += static_cast<std::uint64_t>(profile_.vec_trip) *
                   static_cast<std::uint64_t>(profile_.vec_stride);
  }

  // --- Scalar tail ---------------------------------------------------------
  // Interleave the remaining classes round-robin so the stream resembles a
  // compiled basic block rather than class-sorted batches.
  int rem[8] = {st.int_alu, st.int_mul, st.fp_add, st.fp_mul,
                st.fp_div,  st.loads,   st.stores, st.branches};
  const isa::OpClass cls[8] = {
      isa::OpClass::kIntAlu, isa::OpClass::kIntMul, isa::OpClass::kFpAdd,
      isa::OpClass::kFpMul,  isa::OpClass::kFpDiv,  isa::OpClass::kLoad,
      isa::OpClass::kStore,  isa::OpClass::kBranch};
  int int_rr = 0;
  bool remaining = true;
  while (remaining) {
    remaining = false;
    for (int c = 0; c < 8; ++c) {
      if (rem[c] == 0) continue;
      --rem[c];
      remaining = remaining || rem[c] > 0;
      isa::Instr in;
      in.op = cls[c];
      switch (in.op) {
        case isa::OpClass::kIntAlu:
        case isa::OpClass::kIntMul: {
          const std::uint8_t dst =
              static_cast<std::uint8_t>(kIntBase + (int_rr % kIntRot));
          in.dst = dst;
          // Half the integer ops chain on the previous result.
          in.src1 = rng_.bernoulli(0.5)
                        ? static_cast<std::uint8_t>(
                              kIntBase + ((int_rr + kIntRot - 1) % kIntRot))
                        : static_cast<std::uint8_t>(kIntBase);
          ++int_rr;
          break;
        }
        case isa::OpClass::kFpAdd:
        case isa::OpClass::kFpMul:
        case isa::OpClass::kFpDiv: {
          const std::uint8_t acc = static_cast<std::uint8_t>(
              kFpAccBase + (chain_rr_ % profile_.ilp_chains));
          ++chain_rr_;
          in.src1 = acc;
          // A profile-controlled fraction of the arithmetic consumes
          // recently loaded values, so memory latency sits on real
          // dependence chains (cache sensitivity vs latency tolerance).
          in.src2 = rng_.bernoulli(profile_.load_use_prob)
                        ? static_cast<std::uint8_t>(kFpLoadBase +
                                                    (int_rr % 12))
                        : kFpCoeff;
          in.dst = acc;
          break;
        }
        case isa::OpClass::kLoad:
        case isa::OpClass::kStore: {
          bool chain = false;
          std::size_t idx = 0;
          if (profile_.streams.empty()) {
            in.addr = kVecBase + profile_.address_offset +
                      (rng_.next_below(1 << 20)) * 8;
          } else {
            // Weighted stream selection by share.
            const double pick = rng_.next_double();
            double total = 0.0;
            for (const auto& s : profile_.streams) total += s.share;
            double acc_share = 0.0;
            for (std::size_t i = 0; i < profile_.streams.size(); ++i) {
              acc_share += profile_.streams[i].share / total;
              idx = i;
              if (pick < acc_share) break;
            }
            bool unused = false;
            in.addr = stream_addr(idx, unused);
            chain = profile_.streams[idx].dependent;
          }
          in.size = 8;
          if (in.op == isa::OpClass::kLoad) {
            if (chain) {
              // Address-dependence chain: this load's result is the next
              // chained load's address base (indirection).
              const auto reg =
                  static_cast<std::uint8_t>(kChainRegBase + (idx % 8));
              in.dst = reg;
              in.src1 = reg;
            } else {
              in.dst = static_cast<std::uint8_t>(kFpLoadBase + (int_rr % 12));
              in.src1 =
                  static_cast<std::uint8_t>(kIntBase + (int_rr % kIntRot));
            }
          } else {
            in.src1 = static_cast<std::uint8_t>(kFpLoadBase + (int_rr % 12));
            in.src2 = static_cast<std::uint8_t>(kIntBase + (int_rr % kIntRot));
          }
          ++int_rr;
          break;
        }
        case isa::OpClass::kBranch:
          in.src1 = static_cast<std::uint8_t>(kIntBase);
          break;
      }
      buffer_.push_back(in);
    }
  }
}

}  // namespace musa::trace
