// Synthetic kernel traces.
//
// The paper traces real applications (HYDRO, SP-MZ, BT-MZ, Specfem3D,
// LULESH) with DynamoRIO. This environment cannot run those MPI codes, so
// each application's computational kernels are replaced by a *parameterised
// trace generator* (DESIGN.md §2) producing the same record format a DBI
// tracer emits. A kernel is modelled as a loop nest:
//
//   for each outer iteration:
//     for t in 0..vec_trip-1:          # vectorisable inner loop
//       <vec_body>  (static SIMD instructions, lane marker = t)
//     <scalar_tail> (address arithmetic, reductions, control flow)
//
// Memory instructions draw addresses from a set of weighted *streams*
// (working-set size, stride, write ratio) — working sets relative to cache
// capacities produce the application's published MPKI profile; stride-0
// streams model irregular (pointer-chasing) access. Instruction-level
// parallelism is controlled by the number of independent accumulator chains.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "isa/instr.hpp"
#include "trace/instr_source.hpp"

namespace musa::trace {

/// One memory access stream of a kernel.
struct StreamDesc {
  double share = 1.0;        // fraction of scalar-tail memory ops using it
  std::uint64_t ws_bytes = 1 * 1024 * 1024;  // working-set size
  std::int64_t stride = 8;   // bytes between consecutive accesses; 0 = random
  /// Loads of this stream form an address-dependence chain (each load's
  /// result feeds the next load's address): their miss latency serialises
  /// regardless of OoO depth — indirection through connectivity/slope
  /// tables. Drives cache-size sensitivity without OoO sensitivity.
  bool dependent = false;
};

/// Composition of the vectorisable inner-loop body (per inner iteration).
struct VecBody {
  int loads = 0;
  int fp_add = 0;
  int fp_mul = 0;
  int stores = 0;

  int total() const { return loads + fp_add + fp_mul + stores; }
};

/// Composition of the scalar tail (per outer iteration).
struct ScalarTail {
  int int_alu = 0;
  int int_mul = 0;
  int fp_add = 0;
  int fp_mul = 0;
  int fp_div = 0;
  int loads = 0;
  int stores = 0;
  int branches = 0;

  int total() const {
    return int_alu + int_mul + fp_add + fp_mul + fp_div + loads + stores +
           branches;
  }
};

/// Full statistical description of one computational kernel.
struct KernelProfile {
  std::string name;
  VecBody vec_body;
  int vec_trip = 0;       // inner-loop trip count; 0 = no vectorisable loop
  ScalarTail scalar_tail;
  int ilp_chains = 4;     // independent dependence chains (1 = fully serial)
  double load_use_prob = 0.5;  // fraction of arithmetic consuming loads
  std::vector<StreamDesc> streams;   // scalar-tail / irregular streams
  std::int64_t vec_stride = 8;       // per-lane stride of vector-loop streams
  std::uint64_t vec_ws_bytes = 4 * 1024 * 1024;  // vector-loop working set
  /// Added to every generated address: distinct ranks/threads work on
  /// distinct slices of the global arrays (multi-core simulation).
  std::uint64_t address_offset = 0;

  /// Instructions generated per outer iteration.
  int instrs_per_outer() const {
    return vec_body.total() * (vec_trip > 0 ? vec_trip : 0) +
           scalar_tail.total();
  }
};

/// Deterministic instruction stream for a kernel profile.
///
/// `budget` bounds the stream length (rounded up to whole outer iterations).
/// Identical (profile, seed) pairs replay identical streams across reset().
class KernelSource final : public InstrSource {
 public:
  KernelSource(KernelProfile profile, std::uint64_t budget,
               std::uint64_t seed = 0x5151'dead'beef'0001ull);

  bool next(isa::Instr& out) override;
  void reset() override;
  /// Hands out the generated buffer in bulk (at most `max_n` at a time).
  /// The budget check stays at the refill boundary exactly as in next() —
  /// streams round up to whole outer iterations either way, so mixing
  /// next() and take_block() consumers sees the same instruction sequence.
  std::size_t take_block(const isa::Instr** out, std::size_t max_n) override;

  const KernelProfile& profile() const { return profile_; }

 private:
  void refill();  // generates one outer iteration into buffer_
  std::uint64_t stream_addr(std::size_t stream_idx, bool& is_write);

  KernelProfile profile_;
  std::uint64_t budget_;
  std::uint64_t seed_;

  musa::Rng rng_;
  std::vector<isa::Instr> buffer_;
  std::size_t buf_pos_ = 0;
  std::uint64_t emitted_ = 0;
  std::vector<std::uint64_t> cursors_;       // per-stream walking cursor
  std::vector<std::uint64_t> bases_;         // per-stream base address
  std::uint64_t vec_cursor_ = 0;
  std::uint32_t next_static_id_ = 1;
  int chain_rr_ = 0;  // round-robin over accumulator chains
};

}  // namespace musa::trace
