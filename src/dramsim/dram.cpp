#include "dramsim/dram.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace musa::dramsim {

DramTiming ddr4_2333() {
  DramTiming t;
  t.name = "DDR4-2333";
  t.tCK = 2.0 / 2.333;  // 1166.5 MHz clock, 2333 MT/s
  t.tRCD = 14.16;
  t.tRP = 14.16;
  t.tCAS = 13.72;  // CL16
  t.tRAS = 32.0;
  t.tFAW = 21.0;
  t.tRFC = 350.0;
  t.tREFI = 7800.0;
  t.banks = 16;
  t.ranks = 1;
  t.bytes_per_clock = 16.0;  // 64-bit bus, DDR
  t.row_bytes = 8192;
  return t;
}

DramTiming ddr4_2666() {
  DramTiming t = ddr4_2333();
  t.name = "DDR4-2666";
  t.tCK = 2.0 / 2.666;  // 2666 MT/s
  t.tCAS = 13.5;        // CL18
  return t;
}

DramTiming lpddr4_3200() {
  DramTiming t;
  t.name = "LPDDR4-3200";
  t.tCK = 2.0 / 3.2;
  t.tRCD = 18.0;
  t.tRP = 21.0;
  t.tCAS = 17.5;
  t.tRAS = 42.0;
  t.tFAW = 40.0;
  t.tRFC = 280.0;
  t.tREFI = 3904.0;
  t.banks = 8;
  t.ranks = 1;
  t.bytes_per_clock = 8.0;  // 32-bit channel, DDR
  t.row_bytes = 2048;
  return t;
}

DramTiming wide_io2() {
  DramTiming t;
  t.name = "Wide-IO2";
  t.tCK = 3.75;  // 266 MHz clock, very wide bus
  t.tRCD = 18.0;
  t.tRP = 18.0;
  t.tCAS = 18.0;
  t.tRAS = 42.0;
  t.tFAW = 50.0;
  t.tRFC = 210.0;
  t.tREFI = 3900.0;
  t.banks = 8;
  t.ranks = 1;
  t.bytes_per_clock = 128.0;  // 512-bit interface, DDR
  t.row_bytes = 4096;
  return t;
}

DramTiming hbm2() {
  DramTiming t;
  t.name = "HBM2";
  t.tCK = 1.0;  // 1 GHz, 2 GT/s
  t.tRCD = 14.0;
  t.tRP = 14.0;
  t.tCAS = 14.0;
  t.tRAS = 33.0;
  t.tFAW = 16.0;
  t.tRFC = 260.0;
  t.tREFI = 3900.0;
  t.banks = 32;
  t.ranks = 1;
  t.bytes_per_clock = 32.0;  // 128-bit pseudo-channel, DDR
  t.row_bytes = 2048;
  return t;
}

int default_channels(MemTech tech) {
  switch (tech) {
    case MemTech::kDdr4_2333:
    case MemTech::kDdr4_2666:
      return 4;
    case MemTech::kLpddr4_3200: return 8;
    case MemTech::kWideIo2: return 4;
    case MemTech::kHbm2: return 16;
  }
  return 4;
}

DramTiming timing_for(MemTech tech) {
  switch (tech) {
    case MemTech::kDdr4_2333: return ddr4_2333();
    case MemTech::kDdr4_2666: return ddr4_2666();
    case MemTech::kLpddr4_3200: return lpddr4_3200();
    case MemTech::kWideIo2: return wide_io2();
    case MemTech::kHbm2: return hbm2();
  }
  return ddr4_2333();
}

DramChannel::DramChannel(const DramTiming& timing)
    : timing_(timing),
      banks_(static_cast<std::size_t>(timing.banks) * timing.ranks),
      act_window_(4, -1e18),
      next_refresh_ns_(timing.tREFI) {
  MUSA_CHECK_MSG(timing.banks > 0 && timing.ranks > 0, "bad DRAM geometry");
  MUSA_CHECK_MSG(timing.bytes_per_clock > 0 && timing.tCK > 0,
                 "bad DRAM data bus parameters");
}

void DramChannel::advance_refresh(double now_ns) {
  // All-bank refresh: when a refresh interval elapses, every bank is
  // unavailable for tRFC and all rows close.
  while (next_refresh_ns_ <= now_ns) {
    const double refresh_end = next_refresh_ns_ + timing_.tRFC;
    for (auto& b : banks_) {
      b.ready_ns = std::max(b.ready_ns, refresh_end);
      b.open_row = -1;
    }
    ++counters_.refreshes;
    next_refresh_ns_ += timing_.tREFI;
  }
}

double DramChannel::request(double now_ns, std::uint64_t addr, bool is_write) {
  // Per-request path: debug-only guards against a caller feeding negative
  // or non-finite times (which would wedge the refresh loop below).
  MUSA_DCHECK_MSG(now_ns >= 0.0 && std::isfinite(now_ns),
                  "bad request time");
  advance_refresh(now_ns);

  const std::uint64_t line = addr / 64;
  const std::size_t bank_idx = line % banks_.size();
  const std::int64_t row = static_cast<std::int64_t>(
      line / banks_.size() / (timing_.row_bytes / 64));
  Bank& bank = banks_[bank_idx];

  double cmd_ready = std::max(now_ns, bank.ready_ns);
  if (bank.open_row == row) {
    ++counters_.row_hits;
  } else {
    if (bank.open_row >= 0) {
      // Row conflict: precharge first (respecting tRAS since the ACT).
      cmd_ready = std::max(cmd_ready, bank.act_ns + timing_.tRAS);
      cmd_ready += timing_.tRP;
      ++counters_.pres;
    }
    // Activate, respecting the per-rank four-activate window.
    const double faw_gate = act_window_[act_window_pos_] + timing_.tFAW;
    cmd_ready = std::max(cmd_ready, faw_gate);
    bank.act_ns = cmd_ready;
    act_window_[act_window_pos_] = cmd_ready;
    act_window_pos_ = (act_window_pos_ + 1) % act_window_.size();
    cmd_ready += timing_.tRCD;
    ++counters_.acts;
    bank.open_row = row;
  }

  // Column command: data starts after CAS latency, once the bus is free.
  const double data_start = std::max(cmd_ready + timing_.tCAS, bus_free_ns_);
  const double data_end = data_start + timing_.burst_ns();
  bus_free_ns_ = data_end;
  counters_.busy_ns += timing_.burst_ns();
  // Column commands to an open row pipeline at tCCD (≈ burst) pace.
  bank.ready_ns = std::max(bank.ready_ns, cmd_ready + timing_.burst_ns());
  if (is_write)
    ++counters_.writes;
  else
    ++counters_.reads;
  return data_end;
}

DramSystem::DramSystem(const DramTiming& timing, int channels)
    : timing_(timing) {
  MUSA_CHECK_MSG(channels > 0, "need at least one memory channel");
  channels_.reserve(channels);
  for (int c = 0; c < channels; ++c) channels_.emplace_back(timing);
  last_arrival_ns_.assign(channels, 0.0);
}

double DramSystem::request(double now_ns, std::uint64_t addr, bool is_write) {
  const std::uint64_t line = addr / 64;
  const auto ch = static_cast<std::size_t>(line % channels_.size());
  // Out-of-order arrivals (interleaved per-core streams with slightly
  // disagreeing local clocks) are tolerated naturally: the channel serves
  // each request no earlier than its bank/bus state allows, so an "early"
  // request simply queues behind the already-committed transfers.
  last_arrival_ns_[ch] = std::max(last_arrival_ns_[ch], now_ns);
  // Strip the channel-select bits so consecutive lines on one channel
  // rotate through all of its banks (standard address mapping).
  const std::uint64_t channel_local =
      line / channels_.size() * 64 + addr % 64;
  return channels_[ch].request(now_ns, channel_local, is_write);
}

DramCounters DramSystem::total_counters() const {
  DramCounters total;
  for (const auto& ch : channels_) total.merge(ch.counters());
  return total;
}

}  // namespace musa::dramsim
