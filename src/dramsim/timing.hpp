// DRAM device timing parameters and technology presets.
//
// Equivalent role to Ramulator's standards library: each preset captures a
// JEDEC-style timing set in nanoseconds plus the channel geometry. The
// request-level controller in dram.hpp consumes these.
#pragma once

#include <cstdint>
#include <string>

namespace musa::dramsim {

enum class MemTech : std::uint8_t {
  kDdr4_2333,   // the paper's baseline (Table I)
  kDdr4_2666,   // faster DDR4 bin
  kLpddr4_3200, // mobile-class low-power DRAM
  kWideIo2,     // 2.5D wide-interface stack
  kHbm2,        // high-bandwidth on-package memory (Table II MEM++)
};

constexpr const char* mem_tech_name(MemTech t) {
  switch (t) {
    case MemTech::kDdr4_2333: return "DDR4-2333";
    case MemTech::kDdr4_2666: return "DDR4-2666";
    case MemTech::kLpddr4_3200: return "LPDDR4-3200";
    case MemTech::kWideIo2: return "Wide-IO2";
    case MemTech::kHbm2: return "HBM2";
  }
  return "?";
}

/// Per-channel timing and geometry. All times in nanoseconds.
struct DramTiming {
  std::string name;
  double tCK = 0.857;       // memory clock period
  double tRCD = 14.16;      // ACT -> column command
  double tRP = 14.16;       // PRE -> ACT
  double tCAS = 14.16;      // column command -> first data (CL)
  double tRAS = 32.0;       // ACT -> PRE minimum
  double tFAW = 21.0;       // four-activate window (per rank)
  double tRFC = 350.0;      // refresh cycle time
  double tREFI = 7800.0;    // refresh interval
  int banks = 16;           // banks per rank
  int ranks = 1;            // ranks per channel
  double bytes_per_clock = 16.0;  // data bus: bytes transferred per tCK
  std::uint64_t row_bytes = 8192; // row-buffer coverage per bank

  /// Time to stream one 64-byte line over the data bus.
  double burst_ns() const { return 64.0 / bytes_per_clock * tCK; }
  /// Peak channel bandwidth in GB/s.
  double peak_gbps() const { return bytes_per_clock / tCK; }
};

/// DDR4-2333, CL16, single-rank RDIMM (Micron datasheet class): the paper's
/// baseline memory (Table I, 4- or 8-channel).
DramTiming ddr4_2333();

/// DDR4-2666, CL18: a faster commodity bin.
DramTiming ddr4_2666();

/// LPDDR4-3200: 32-bit channels, longer core timings, low standby power.
DramTiming lpddr4_3200();

/// Wide-IO2: very wide (512-bit) slow-clock stacked interface.
DramTiming wide_io2();

/// HBM2-like stack: many narrow pseudo-channels on-package; lower queueing
/// latency and far higher aggregate bandwidth (used by MEM++ in Table II).
DramTiming hbm2();

/// Channels a technology exposes per "memory subsystem unit": DDR4 counts
/// DIMM channels (the paper sweeps 4/8/16); HBM2 has 16 pseudo-channels.
int default_channels(MemTech tech);

DramTiming timing_for(MemTech tech);

}  // namespace musa::dramsim
