// Request-level DRAM system model (the Ramulator-equivalent substrate).
//
// Each channel keeps per-bank row-buffer state, data-bus occupancy, a
// four-activate window per rank, and periodic refresh. Requests are served
// in arrival order with an open-page policy: row hits pay only CAS, row
// misses pay ACT(+PRE) first. Because the caller presents requests at their
// simulated issue times, queueing delay — the bandwidth wall the paper's
// memory-bound codes hit — emerges from data-bus and bank serialisation.
//
// The controller also counts commands (ACT/PRE/RD/WR/REF) exactly as
// Ramulator's command trace would; powersim's DRAMPower-like model consumes
// those counters.
#pragma once

#include <cstdint>
#include <vector>

#include "dramsim/timing.hpp"

namespace musa::dramsim {

/// Command counters for one channel (input to the DRAM power model).
struct DramCounters {
  std::uint64_t acts = 0;
  std::uint64_t pres = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t row_hits = 0;
  double busy_ns = 0.0;  // data-bus occupancy

  void merge(const DramCounters& o) {
    acts += o.acts;
    pres += o.pres;
    reads += o.reads;
    writes += o.writes;
    refreshes += o.refreshes;
    row_hits += o.row_hits;
    busy_ns += o.busy_ns;
  }
};

/// One memory channel: banks, bus, refresh.
class DramChannel {
 public:
  explicit DramChannel(const DramTiming& timing);

  /// Issues a 64-byte line request at time `now_ns`; returns the completion
  /// time (ns) of the data transfer. Requests must arrive in non-decreasing
  /// time order per channel.
  double request(double now_ns, std::uint64_t addr, bool is_write);

  const DramCounters& counters() const { return counters_; }
  const DramTiming& timing() const { return timing_; }

  /// Clear command counters; bank/bus state stays warm.
  void reset_counters() { counters_ = DramCounters{}; }

 private:
  struct Bank {
    std::int64_t open_row = -1;
    double ready_ns = 0.0;     // earliest next column command
    double act_ns = -1e18;     // last ACT time (tRAS accounting)
  };

  void advance_refresh(double now_ns);

  DramTiming timing_;
  std::vector<Bank> banks_;
  std::vector<double> act_window_;  // last 4 ACT times (tFAW), ring buffer
  std::size_t act_window_pos_ = 0;
  double bus_free_ns_ = 0.0;
  double next_refresh_ns_;
  DramCounters counters_;
};

/// A multi-channel memory subsystem with line-interleaved channel mapping.
class DramSystem {
 public:
  DramSystem(const DramTiming& timing, int channels);

  /// Routes the request to its channel; see DramChannel::request.
  /// Out-of-order arrival across the whole system is tolerated: each
  /// channel clamps time to its own last-seen arrival.
  double request(double now_ns, std::uint64_t addr, bool is_write);

  int channels() const { return static_cast<int>(channels_.size()); }
  const DramTiming& timing() const { return timing_; }

  /// Aggregate counters over all channels.
  DramCounters total_counters() const;

  /// Clear counters on every channel; timing state stays warm.
  void reset_counters() {
    for (auto& ch : channels_) ch.reset_counters();
  }

  /// Aggregate peak bandwidth (GB/s).
  double peak_gbps() const {
    return timing_.peak_gbps() * static_cast<double>(channels_.size());
  }

 private:
  DramTiming timing_;
  std::vector<DramChannel> channels_;
  std::vector<double> last_arrival_ns_;
};

}  // namespace musa::dramsim
