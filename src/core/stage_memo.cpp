#include "core/stage_memo.hpp"

#include <cstring>
#include <string>

#include "obs/metrics.hpp"

namespace musa::core {

namespace {
/// Create-or-get is a shared-lock map find — cheap next to the simulation
/// work behind every memo lookup, so no per-table cache is kept here.
obs::Counter& memo_counter(const char* table, const char* leaf) {
  return obs::MetricRegistry::global().counter(std::string("memo.") + table +
                                               '.' + leaf);
}
}  // namespace

void memo_hit(const char* table) { memo_counter(table, "hits").add(); }
void memo_miss(const char* table) { memo_counter(table, "misses").add(); }

std::uint64_t fnv1a_bytes(const void* data, std::size_t n,
                          std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t app_fingerprint(const apps::AppModel& app) {
  const auto addr = reinterpret_cast<std::uintptr_t>(&app);
  return fnv1a_bytes(app.name.data(), app.name.size(),
                     0xcbf29ce484222325ull ^ static_cast<std::uint64_t>(addr));
}

namespace {
std::uint64_t mix_cache(const cachesim::CacheConfig& c, std::uint64_t h) {
  h = fnv1a_bytes(&c.size_bytes, sizeof(c.size_bytes), h);
  h = fnv1a_bytes(&c.ways, sizeof(c.ways), h);
  h = fnv1a_bytes(&c.latency_cycles, sizeof(c.latency_cycles), h);
  return h;
}
}  // namespace

std::uint64_t hierarchy_fingerprint(const cachesim::HierarchyConfig& c) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = mix_cache(c.l1, h);
  h = mix_cache(c.l2, h);
  h = mix_cache(c.l3, h);
  h = fnv1a_bytes(&c.num_cores, sizeof(c.num_cores), h);
  return h;
}

std::uint64_t core_fingerprint(const cpusim::CoreConfig& c) {
  std::uint64_t h = fnv1a_bytes(c.label.data(), c.label.size());
  const int fields[] = {c.rob,  c.issue_width, c.store_buffer, c.alus,
                        c.fpus, c.lsus,        c.irf,          c.frf};
  return fnv1a_bytes(fields, sizeof(fields), h);
}

}  // namespace musa::core
