#include "core/dse.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/journal.hpp"
#include "common/parallel.hpp"
#include "common/progress.hpp"
#include "common/stats.hpp"
#include "core/point_runner.hpp"
#include "obs/metrics.hpp"
#include "verify/config_rules.hpp"
#include "verify/faultpoint.hpp"
#include "verify/invariants.hpp"
#include "verify/space_analysis.hpp"

namespace musa::core {

namespace {
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}
double num(const std::string& s) { return std::strtod(s.c_str(), nullptr); }

obs::Counter& worker_busy_us() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("sweep.worker.busy_us");
  return c;
}
}  // namespace

DseEngine::DseEngine(Pipeline& pipeline, std::string cache_path,
                     SweepOptions options)
    : pipeline_(pipeline),
      cache_path_(std::move(cache_path)),
      options_(std::move(options)) {
  MUSA_CHECK_MSG(options_.shard_count >= 1 &&
                     options_.shard_index >= 0 &&
                     options_.shard_index < options_.shard_count,
                 "shard index must satisfy 0 <= i < N");
  MUSA_CHECK_MSG(options_.shard_count == 1 || !cache_path_.empty(),
                 "sharded sweeps need a cache path to merge journals into");
}

std::vector<std::string> DseEngine::csv_header() {
  return {"app",        "core",      "cache",     "freq_ghz", "vector_bits",
          "channels",   "tech",      "cores",     "ranks",    "region_s",
          "wall_s",     "ipc",       "concurrency", "busy_frac",
          "contention", "mpki_l1",   "mpki_l2",   "mpki_l3",  "gmem_req_s",
          "mem_gbps",   "core_l1_w", "l2_l3_w",   "dram_w",   "dram_known",
          "node_w",     "energy_j"};
}

std::vector<std::string> DseEngine::to_row(const SimResult& r) {
  return {r.app,
          r.config.core.label,
          r.config.cache_label,
          fmt(r.config.freq_ghz),
          std::to_string(r.config.vector_bits),
          std::to_string(r.config.mem_channels),
          dramsim::mem_tech_name(r.config.mem_tech),
          std::to_string(r.config.cores),
          std::to_string(r.config.ranks),
          fmt(r.region_seconds),
          fmt(r.wall_seconds),
          fmt(r.ipc),
          fmt(r.avg_concurrency),
          fmt(r.busy_fraction),
          fmt(r.contention_factor),
          fmt(r.mpki_l1),
          fmt(r.mpki_l2),
          fmt(r.mpki_l3),
          fmt(r.gmem_req_s),
          fmt(r.mem_gbps),
          fmt(r.core_l1_w),
          fmt(r.l2_l3_w),
          fmt(r.dram_w),
          r.dram_power_known ? "1" : "0",
          fmt(r.node_w),
          fmt(r.energy_j)};
}

SimResult DseEngine::from_row(const std::vector<std::string>& row) {
  MUSA_CHECK_MSG(row.size() == csv_header().size(),
                 "cached result row has wrong width");
  SimResult r;
  std::size_t i = 0;
  r.app = row[i++];
  const std::string core_label = row[i++];
  bool found = false;
  for (const auto& preset : cpusim::core_presets())
    if (preset.label == core_label) {
      r.config.core = preset;
      found = true;
    }
  MUSA_CHECK_MSG(found, "cached result has unknown core: " + core_label);
  r.config.cache_label = row[i++];
  r.config.freq_ghz = num(row[i++]);
  r.config.vector_bits = static_cast<int>(num(row[i++]));
  r.config.mem_channels = static_cast<int>(num(row[i++]));
  const std::string tech = row[i++];
  bool tech_found = false;
  for (auto t : {dramsim::MemTech::kDdr4_2333, dramsim::MemTech::kDdr4_2666,
                 dramsim::MemTech::kLpddr4_3200, dramsim::MemTech::kWideIo2,
                 dramsim::MemTech::kHbm2})
    if (tech == dramsim::mem_tech_name(t)) {
      r.config.mem_tech = t;
      tech_found = true;
    }
  MUSA_CHECK_MSG(tech_found, "cached result has unknown memory tech: " + tech);
  r.config.cores = static_cast<int>(num(row[i++]));
  r.config.ranks = static_cast<int>(num(row[i++]));
  r.region_seconds = num(row[i++]);
  r.wall_seconds = num(row[i++]);
  r.ipc = num(row[i++]);
  r.avg_concurrency = num(row[i++]);
  r.busy_fraction = num(row[i++]);
  r.contention_factor = num(row[i++]);
  r.mpki_l1 = num(row[i++]);
  r.mpki_l2 = num(row[i++]);
  r.mpki_l3 = num(row[i++]);
  r.gmem_req_s = num(row[i++]);
  r.mem_gbps = num(row[i++]);
  r.core_l1_w = num(row[i++]);
  r.l2_l3_w = num(row[i++]);
  r.dram_w = num(row[i++]);
  r.dram_power_known = row[i++] == "1";
  r.node_w = num(row[i++]);
  r.energy_j = num(row[i++]);
  return r;
}

std::string DseEngine::point_key(const std::string& app,
                                 const MachineConfig& config) {
  return app + "|" + config.id();
}

SweepPlan make_sweep_plan(const SweepOptions& options) {
  SweepPlan plan;
  if (options.apps.empty()) {
    for (const auto& app : apps::registry()) plan.app_list.push_back(&app);
  } else {
    for (const auto& name : options.apps)
      plan.app_list.push_back(&apps::find_app(name));
  }
  if (options.configs.empty() && options.axes.has_value()) {
    const SpaceAxes& axes = *options.axes;
    if (options.verify) {
      // Static space analysis instead of per-point lint: classify the grid
      // box-wise, drop infeasible boxes wholesale, and enumerate only the
      // feasible points — in row-major grid order, so the paper axes
      // reproduce the full_space() plan (and its cache keys) exactly.
      const verify::AnalysisReport analysis = verify::analyze(axes);
      plan.configs.reserve(
          static_cast<std::size_t>(analysis.feasible_points));
      for (std::uint64_t linear : verify::feasible_indices(axes, analysis))
        plan.configs.push_back(axes.config_at(linear));
      plan.statically_verified = true;
      plan.statically_skipped =
          analysis.total_points - analysis.feasible_points;
      plan.analysis_boxes = analysis.boxes_classified;
      if (options.verbose && plan.statically_skipped > 0)
        std::fprintf(
            stderr,
            "[dse] static space analysis: %llu of %llu grid point(s) "
            "infeasible, skipped without simulation (%llu boxes)\n",
            static_cast<unsigned long long>(analysis.total_points -
                                            analysis.feasible_points),
            static_cast<unsigned long long>(analysis.total_points),
            static_cast<unsigned long long>(analysis.boxes_classified));
    } else {
      // --no-verify: the grid description still defines the plan; every
      // point is swept unlinted, feasible or not.
      plan.configs.reserve(static_cast<std::size_t>(axes.points()));
      for (std::uint64_t linear = 0; linear < axes.points(); ++linear)
        plan.configs.push_back(axes.config_at(linear));
    }
  } else {
    plan.configs =
        options.configs.empty() ? ConfigSpace::full_space() : options.configs;
  }
  MUSA_CHECK_MSG(!plan.app_list.empty() && !plan.configs.empty(),
                 "empty sweep plan");
  plan.keys.reserve(plan.app_list.size() * plan.configs.size());
  for (const auto* app : plan.app_list)
    for (const auto& config : plan.configs)
      plan.keys.push_back(DseEngine::point_key(app->name, config));
  return plan;
}

std::string DseEngine::journal_path() const {
  if (options_.shard_count == 1) return cache_path_ + ".journal";
  return cache_path_ + ".shard-" + std::to_string(options_.shard_index) +
         "-of-" + std::to_string(options_.shard_count) + ".journal";
}

bool DseEngine::load_cache(
    const SweepPlan& plan,
    std::vector<std::pair<std::string, std::vector<std::string>>>* salvage,
    std::size_t* invalid_out) {
  // Tolerant parse: a kill -9 during a non-atomic write (e.g. an external
  // tool touched the file) can leave a truncated last line. Salvage every
  // intact row rather than discarding hours of results over one bad line.
  CsvDoc doc;
  std::size_t bad = 0;
  try {
    doc = CsvDoc::load_tolerant(cache_path_, &bad);
  } catch (const SimError& e) {
    if (options_.verbose)
      std::fprintf(stderr, "[dse] unreadable cache %s (%s); rebuilding\n",
                   cache_path_.c_str(), e.what());
    return false;
  }
  // A different schema is a deliberate code change, not crash damage:
  // refuse loudly rather than recompute hours of results behind the
  // caller's back.
  MUSA_CHECK_MSG(doc.header() == csv_header(),
                 "stale DSE cache (schema changed): delete " + cache_path_);

  std::unordered_map<std::string, std::uint64_t> index_of;
  index_of.reserve(plan.size());
  for (std::uint64_t i = 0; i < plan.size(); ++i) index_of[plan.keys[i]] = i;

  std::vector<SimResult> parsed(plan.size());
  std::vector<char> seen(plan.size(), 0);
  std::size_t valid = 0, foreign = 0, duplicate = 0, invalid = 0;
  for (const auto& row : doc.rows()) {
    SimResult r;
    try {
      r = from_row(row);
    } catch (const SimError&) {
      ++bad;
      continue;
    }
    // A parsable row that breaks the result invariants (negative energy,
    // NaN IPC, super-peak bandwidth, ...) is corruption or a stale model:
    // drop it like a checksum failure so the point is recomputed.
    if (options_.verify && !verify::check_result(r).empty()) {
      ++invalid;
      continue;
    }
    const auto it = index_of.find(point_key(r.app, r.config));
    if (it == index_of.end()) {
      ++foreign;
      continue;
    }
    if (seen[it->second]) {
      ++duplicate;
      continue;
    }
    seen[it->second] = 1;
    parsed[it->second] = std::move(r);
    ++valid;
    if (salvage) salvage->emplace_back(plan.keys[it->second], row);
  }

  if (invalid_out) *invalid_out = invalid;
  if (valid == plan.size() && bad == 0 && foreign == 0 && duplicate == 0 &&
      invalid == 0) {
    results_ = std::move(parsed);
    return true;
  }
  if (options_.verbose)
    std::fprintf(stderr,
                 "[dse] cache %s is incomplete: %zu/%llu points "
                 "(%zu unparsable, %zu foreign, %zu duplicate, "
                 "%zu invariant-violating rows); "
                 "resuming the missing points via the journal\n",
                 cache_path_.c_str(), valid,
                 static_cast<unsigned long long>(plan.size()), bad, foreign,
                 duplicate, invalid);
  return false;
}

SweepReport DseEngine::sweep(bool force) {
  if (force) {
    clear_cache();
    ready_ = false;
    results_.clear();
  }
  const SweepPlan plan = make_sweep_plan(options_);
  // Static config lint before any point simulates: a physically impossible
  // sweep point must fail here, in milliseconds, not hours into the sweep.
  // An analyzer-built plan skips the loop: its boxes are *proved* feasible,
  // so the per-point pass would re-derive what is already established.
  if (options_.verify && !plan.statically_verified)
    for (const auto& config : plan.configs) verify::validate_machine(config);
  SweepReport rep;
  rep.statically_skipped = plan.statically_skipped;
  rep.analysis_boxes = plan.analysis_boxes;
  rep.total = plan.size();
  for (std::uint64_t i = 0; i < plan.size(); ++i)
    if (i % options_.shard_count ==
        static_cast<std::uint64_t>(options_.shard_index))
      ++rep.shard_points;

  if (ready_) {
    rep.resumed = rep.shard_points;
    rep.finalized = true;
    report_ = rep;
    return rep;
  }

  // Every simulation point is independent. Workers own a private Pipeline
  // and steal points one at a time from a shared queue — points vary >10x
  // in cost across apps, so static blocks would idle threads at the tail.
  // The pipelines share one thread-safe StageMemo (unless --no-memo), so
  // cross-point-redundant stages are computed once per distinct input.
  std::shared_ptr<StageMemo> memo;
  if (options_.memoize)
    memo = pipeline_.memo() ? pipeline_.memo()
                            : std::make_shared<StageMemo>(
                                  pipeline_options_fingerprint(
                                      pipeline_.options()));
  // Per-point containment (budget, verify, retry-with-jitter, quarantine)
  // lives in PointRunner — the same executor the elastic workers run, so
  // journal rows are byte-identical no matter which process computed them.
  PointRunner runner(plan, options_);

  const auto run_points = [&](const std::vector<std::uint64_t>& todo,
                              ResultJournal* journal) {
    if (todo.empty()) return;
    WorkQueue queue(todo.size());
    ProgressReporter progress("dse sweep", todo.size(), 2.0,
                              options_.verbose);
    const int threads = static_cast<int>(std::min<std::uint64_t>(
        std::max(1, default_thread_count()), todo.size()));
    std::mutex merge_mu;
    const auto wall_t0 = std::chrono::steady_clock::now();
    const std::function<void()> cancel_queue = [&queue] { queue.cancel(); };
    parallel_workers(threads, [&](int) {
      Pipeline local(pipeline_.options(), memo);
      // Busy time = wall spent holding a claimed chunk; the gap to
      // workers × wall is queue/steal idle time (the occupancy breakdown
      // sweep_bench and trace_summary report).
      std::uint64_t busy_us = 0;
      std::uint64_t begin = 0, end = 0;
      while (queue.next(begin, end)) {
        const auto chunk_t0 = std::chrono::steady_clock::now();
        for (std::uint64_t t = begin; t < end; ++t) {
          runner.run(local, todo[t], journal,
                     journal ? nullptr : &results_[todo[t]], cancel_queue);
          progress.tick();
        }
        busy_us += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - chunk_t0)
                .count());
      }
      worker_busy_us().add(busy_us);
      std::lock_guard<std::mutex> lock(merge_mu);
      rep.stages.merge(local.stage_times());
    });
    rep.workers = threads;
    rep.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - wall_t0)
                     .count();
    rep.computed = runner.succeeded();
    rep.retries = runner.io_retries();
    if (memo) rep.memo = memo->stats();
  };

  if (cache_path_.empty()) {
    // Caching disabled: plain in-memory sweep (always unsharded; checked in
    // the constructor).
    results_.assign(plan.size(), SimResult{});
    std::vector<std::uint64_t> all(plan.size());
    for (std::uint64_t i = 0; i < plan.size(); ++i) all[i] = i;
    run_points(all, nullptr);
    ready_ = true;
    rep.finalized = true;
    report_ = rep;
    return rep;
  }

  std::vector<std::pair<std::string, std::vector<std::string>>> salvage;
  std::size_t cache_invalid = 0;
  if (CsvDoc::file_exists(cache_path_) &&
      load_cache(plan, &salvage, &cache_invalid)) {
    // A crash between cache finalize and journal cleanup can leave stale
    // journals behind; the complete cache supersedes them.
    for (const auto& path : find_journals(cache_path_))
      std::remove(path.c_str());
    ready_ = true;
    rep.resumed = rep.shard_points;
    rep.finalized = true;
    report_ = rep;
    return rep;
  }

  rep.invalid += cache_invalid;

  // Resume state: this shard's journal, seeded with whatever a partial
  // cache could contribute, plus read-only views of sibling journals.
  ResultJournal journal(journal_path(), csv_header());
  rep.dropped += journal.dropped_on_load();
  if (options_.verbose && journal.dropped_on_load() > 0)
    std::fprintf(stderr,
                 "[dse] journal %s: dropped %zu corrupt record(s) from a "
                 "previous crash\n",
                 journal.path().c_str(), journal.dropped_on_load());
  for (const auto& [key, row] : salvage)
    if (!journal.contains(key)) journal.append(key, row);

  // Chaos hook: with an armed fault plan, a corrupt-kind spec firing on
  // "journal.append" damages the serialised record's checksum so the next
  // load must detect and drop it — this is how the journal's integrity
  // checking is itself exercised end-to-end.
  if (verify::FaultPlan::active())
    journal.set_append_mutator(
        [](const std::string& key, const std::string& line) {
          if (!verify::fault_corrupt("journal.append", key)) return line;
          std::string out = line;
          const std::size_t pos = out.size() >= 2 ? out.size() - 2 : 0;
          out[pos] = out[pos] == '0' ? '1' : '0';
          return out;
        });

  const auto merge_siblings = [&](ResultJournal::Entries& known,
                                  ResultJournal::Fails& fails) {
    for (const auto& path : find_journals(cache_path_)) {
      if (path == journal.path()) continue;
      ResultJournal::LoadResult lr = ResultJournal::read(path, csv_header());
      if (lr.schema_mismatch) {
        if (options_.verbose)
          std::fprintf(stderr, "[dse] ignoring schema-mismatched journal %s\n",
                       path.c_str());
        continue;
      }
      rep.dropped += lr.dropped;
      for (auto& [key, row] : lr.entries)
        known.emplace(key, std::move(row));
      for (auto& [key, fail] : lr.fails)
        fails.emplace(key, std::move(fail));
    }
    // Good beats FAIL across journals too: a point one shard quarantined
    // but a sibling later completed is not quarantined.
    for (auto it = fails.begin(); it != fails.end();)
      it = known.count(it->first) != 0 ? fails.erase(it) : ++it;
  };

  // Journaled rows passed their checksum, but may still predate a model fix
  // or carry invariant-violating metrics: drop those so the points recompute
  // (appending under the same key supersedes the bad record).
  const auto drop_invalid = [&](ResultJournal::Entries& entries, bool count) {
    if (!options_.verify) return;
    for (auto it = entries.begin(); it != entries.end();) {
      bool ok;
      try {
        ok = verify::check_result(from_row(it->second)).empty();
      } catch (const SimError&) {
        ok = false;
      }
      if (ok) {
        ++it;
      } else {
        if (count) ++rep.invalid;
        it = entries.erase(it);
      }
    }
  };

  ResultJournal::Entries known = journal.entries();
  ResultJournal::Fails fails = journal.fails();
  merge_siblings(known, fails);
  drop_invalid(known, /*count=*/true);

  std::vector<std::uint64_t> missing;
  std::uint64_t skipped_quarantined = 0;
  for (std::uint64_t i = 0; i < plan.size(); ++i) {
    if (i % options_.shard_count !=
        static_cast<std::uint64_t>(options_.shard_index))
      continue;
    if (known.find(plan.keys[i]) != known.end()) continue;
    // A quarantined point is "known to fail": skip it on resume so a
    // deterministic failure is not re-simulated run after run — unless the
    // caller explicitly asked to retry the quarantine set.
    if (!options_.retry_failed && fails.count(plan.keys[i]) != 0) {
      ++skipped_quarantined;
      continue;
    }
    missing.push_back(i);
  }
  rep.resumed = rep.shard_points - missing.size() - skipped_quarantined;
  if (options_.verbose && skipped_quarantined > 0)
    std::fprintf(stderr,
                 "[dse] skipping %llu quarantined point(s); rerun with "
                 "--retry-failed to retry them\n",
                 static_cast<unsigned long long>(skipped_quarantined));
  if (options_.verbose && rep.resumed > 0)
    std::fprintf(stderr,
                 "[dse] resuming: %llu of this shard's %llu points already "
                 "journaled\n",
                 static_cast<unsigned long long>(rep.resumed),
                 static_cast<unsigned long long>(rep.shard_points));

  run_points(missing, &journal);

  // Finalize the moment cache-worthy coverage exists: cache rows are
  // emitted in plan order from the journalled strings, so an interrupted
  // (or sharded) sweep produces a byte-identical cache to an uninterrupted
  // one.
  known = journal.entries();
  fails = journal.fails();
  merge_siblings(known, fails);
  drop_invalid(known, /*count=*/false);  // already counted before computing

  // The quarantine set after this call, sorted for a stable report.
  rep.quarantined = fails.size();
  rep.quarantine.reserve(fails.size());
  for (const auto& [key, fail] : fails)
    rep.quarantine.push_back(
        {key, fail.error_class, fail.stage, fail.attempts, fail.message});
  std::sort(rep.quarantine.begin(), rep.quarantine.end(),
            [](const QuarantinePoint& a, const QuarantinePoint& b) {
              return a.key < b.key;
            });

  // Finalize only on *good* coverage: quarantined points keep the cache
  // unwritten (the journal carries the sweep's full state) so a later
  // --retry-failed run can still converge to a byte-identical cache.
  bool complete = true;
  for (const auto& key : plan.keys)
    if (known.find(key) == known.end()) {
      complete = false;
      break;
    }

  if (complete) {
    results_.assign(plan.size(), SimResult{});
    CsvDoc doc(csv_header());
    for (std::uint64_t i = 0; i < plan.size(); ++i) {
      const auto& row = known.at(plan.keys[i]);
      results_[i] = from_row(row);
      doc.add_row(row);
    }
    doc.save(cache_path_);
    journal.discard();
    for (const auto& path : find_journals(cache_path_))
      std::remove(path.c_str());
    ready_ = true;
    rep.finalized = true;
  } else if (options_.verbose) {
    if (rep.quarantined > 0)
      std::fprintf(stderr,
                   "[dse] sweep incomplete: %llu point(s) quarantined "
                   "(%llu known of %llu total); cache not finalized\n",
                   static_cast<unsigned long long>(rep.quarantined),
                   static_cast<unsigned long long>(known.size()),
                   static_cast<unsigned long long>(plan.size()));
    else
      std::fprintf(stderr,
                   "[dse] shard %d/%d complete (%llu known of %llu total); "
                   "rerun after the sibling shards finish to merge\n",
                   options_.shard_index, options_.shard_count,
                   static_cast<unsigned long long>(known.size()),
                   static_cast<unsigned long long>(plan.size()));
  }
  report_ = rep;
  return rep;
}

void DseEngine::clear_cache() {
  if (cache_path_.empty()) return;
  std::remove(cache_path_.c_str());
  for (const auto& path : find_journals(cache_path_))
    std::remove(path.c_str());
}

void DseEngine::ensure_results() {
  if (!ready_) sweep();
  if (!ready_ && report_.quarantined > 0)
    throw SimError("sweep results unavailable: " +
                       std::to_string(report_.quarantined) +
                       " point(s) are quarantined; inspect the quarantine "
                       "report and rerun with --retry-failed once the cause "
                       "is fixed",
                   ErrorClass::kModel);
  MUSA_CHECK_MSG(ready_,
                 "sweep results unavailable: sibling shards have not "
                 "finished; rerun once every shard's journal exists");
}

const std::vector<SimResult>& DseEngine::results() {
  ensure_results();
  return results_;
}

std::string DseEngine::dimension_value(const MachineConfig& config,
                                       const std::string& dimension) {
  if (dimension == "core") return config.core.label;
  if (dimension == "cache") return config.cache_label;
  if (dimension == "freq") {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%.1fGHz", config.freq_ghz);
    return buf;
  }
  if (dimension == "vector") return std::to_string(config.vector_bits) + "b";
  if (dimension == "channels")
    return std::to_string(config.mem_channels) + "ch-" +
           dramsim::mem_tech_name(config.mem_tech);
  if (dimension == "cores") return std::to_string(config.cores) + "c";
  throw SimError("unknown sweep dimension: " + dimension);
}

NormStat DseEngine::normalized_ratio(const std::string& app, int cores,
                                     const std::string& dimension,
                                     const std::string& value,
                                     const std::string& baseline,
                                     const Metric& metric) {
  ensure_results();
  // Map normalisation partner key -> baseline metric value.
  std::unordered_map<std::string, double> base;
  for (const auto& r : results_) {
    if (r.app != app || r.config.cores != cores) continue;
    if (!metric.admits(r)) continue;
    if (dimension_value(r.config, dimension) != baseline) continue;
    base[r.config.id_without(dimension)] = metric(r);
  }
  RunningStats acc;
  for (const auto& r : results_) {
    if (r.app != app || r.config.cores != cores) continue;
    if (!metric.admits(r)) continue;
    if (dimension_value(r.config, dimension) != value) continue;
    const auto it = base.find(r.config.id_without(dimension));
    if (it == base.end() || it->second == 0.0) continue;
    acc.add(metric(r) / it->second);
  }
  return {acc.mean(), acc.stddev(), static_cast<int>(acc.count())};
}

NormStat DseEngine::average(const std::string& app, int cores,
                            const std::string& dimension,
                            const std::string& value,
                            const Metric& metric) {
  ensure_results();
  RunningStats acc;
  for (const auto& r : results_) {
    if (r.app != app || r.config.cores != cores) continue;
    if (!metric.admits(r)) continue;
    if (!dimension.empty() &&
        dimension_value(r.config, dimension) != value)
      continue;
    acc.add(metric(r));
  }
  return {acc.mean(), acc.stddev(), static_cast<int>(acc.count())};
}

DseEngine::PowerSplit DseEngine::power_split(const std::string& app,
                                             int cores,
                                             const std::string& dimension,
                                             const std::string& value,
                                             const std::string& baseline) {
  ensure_results();
  // Power shares only make sense where every component is known: HBM2
  // points (dram_power_known == false) are excluded from both sides.
  std::unordered_map<std::string, double> base;
  for (const auto& r : results_) {
    if (r.app != app || r.config.cores != cores) continue;
    if (!r.dram_power_known) continue;
    if (dimension_value(r.config, dimension) != baseline) continue;
    base[r.config.id_without(dimension)] = r.node_w;
  }
  RunningStats core_acc, cache_acc, dram_acc;
  for (const auto& r : results_) {
    if (r.app != app || r.config.cores != cores) continue;
    if (!r.dram_power_known) continue;
    if (dimension_value(r.config, dimension) != value) continue;
    const auto it = base.find(r.config.id_without(dimension));
    if (it == base.end() || it->second == 0.0) continue;
    core_acc.add(r.core_l1_w / it->second);
    cache_acc.add(r.l2_l3_w / it->second);
    dram_acc.add(r.dram_w / it->second);
  }
  return {core_acc.mean(), cache_acc.mean(), dram_acc.mean()};
}

}  // namespace musa::core
