#include "core/dse.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace musa::core {

namespace {
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}
double num(const std::string& s) { return std::strtod(s.c_str(), nullptr); }
}  // namespace

DseEngine::DseEngine(Pipeline& pipeline, std::string cache_path)
    : pipeline_(pipeline), cache_path_(std::move(cache_path)) {}

std::vector<std::string> DseEngine::csv_header() {
  return {"app",        "core",      "cache",     "freq_ghz", "vector_bits",
          "channels",   "tech",      "cores",     "ranks",    "region_s",
          "wall_s",     "ipc",       "concurrency", "busy_frac",
          "contention", "mpki_l1",   "mpki_l2",   "mpki_l3",  "gmem_req_s",
          "mem_gbps",   "core_l1_w", "l2_l3_w",   "dram_w",   "dram_known",
          "node_w",     "energy_j"};
}

std::vector<std::string> DseEngine::to_row(const SimResult& r) {
  return {r.app,
          r.config.core.label,
          r.config.cache_label,
          fmt(r.config.freq_ghz),
          std::to_string(r.config.vector_bits),
          std::to_string(r.config.mem_channels),
          dramsim::mem_tech_name(r.config.mem_tech),
          std::to_string(r.config.cores),
          std::to_string(r.config.ranks),
          fmt(r.region_seconds),
          fmt(r.wall_seconds),
          fmt(r.ipc),
          fmt(r.avg_concurrency),
          fmt(r.busy_fraction),
          fmt(r.contention_factor),
          fmt(r.mpki_l1),
          fmt(r.mpki_l2),
          fmt(r.mpki_l3),
          fmt(r.gmem_req_s),
          fmt(r.mem_gbps),
          fmt(r.core_l1_w),
          fmt(r.l2_l3_w),
          fmt(r.dram_w),
          r.dram_power_known ? "1" : "0",
          fmt(r.node_w),
          fmt(r.energy_j)};
}

SimResult DseEngine::from_row(const std::vector<std::string>& row) {
  SimResult r;
  std::size_t i = 0;
  r.app = row[i++];
  const std::string core_label = row[i++];
  bool found = false;
  for (const auto& preset : cpusim::core_presets())
    if (preset.label == core_label) {
      r.config.core = preset;
      found = true;
    }
  MUSA_CHECK_MSG(found, "cached result has unknown core: " + core_label);
  r.config.cache_label = row[i++];
  r.config.freq_ghz = num(row[i++]);
  r.config.vector_bits = static_cast<int>(num(row[i++]));
  r.config.mem_channels = static_cast<int>(num(row[i++]));
  const std::string tech = row[i++];
  bool tech_found = false;
  for (auto t : {dramsim::MemTech::kDdr4_2333, dramsim::MemTech::kDdr4_2666,
                 dramsim::MemTech::kLpddr4_3200, dramsim::MemTech::kWideIo2,
                 dramsim::MemTech::kHbm2})
    if (tech == dramsim::mem_tech_name(t)) {
      r.config.mem_tech = t;
      tech_found = true;
    }
  MUSA_CHECK_MSG(tech_found, "cached result has unknown memory tech: " + tech);
  r.config.cores = static_cast<int>(num(row[i++]));
  r.config.ranks = static_cast<int>(num(row[i++]));
  r.region_seconds = num(row[i++]);
  r.wall_seconds = num(row[i++]);
  r.ipc = num(row[i++]);
  r.avg_concurrency = num(row[i++]);
  r.busy_fraction = num(row[i++]);
  r.contention_factor = num(row[i++]);
  r.mpki_l1 = num(row[i++]);
  r.mpki_l2 = num(row[i++]);
  r.mpki_l3 = num(row[i++]);
  r.gmem_req_s = num(row[i++]);
  r.mem_gbps = num(row[i++]);
  r.core_l1_w = num(row[i++]);
  r.l2_l3_w = num(row[i++]);
  r.dram_w = num(row[i++]);
  r.dram_power_known = row[i++] == "1";
  r.node_w = num(row[i++]);
  r.energy_j = num(row[i++]);
  return r;
}

void DseEngine::recompute() {
  const std::vector<MachineConfig> space = ConfigSpace::full_space();
  const auto& apps = apps::registry();
  const std::uint64_t total = space.size() * apps.size();
  results_.assign(total, SimResult{});

  // Every simulation point is independent; block-partition them over worker
  // threads, each with its own Pipeline (the pipeline memoises traces and is
  // not shared across threads). Results land in fixed slots, so the sweep
  // output is identical to a serial run.
  const int threads = default_thread_count();
  std::atomic<int> done{0};
  parallel_blocks(total, threads, [&](std::uint64_t begin, std::uint64_t end) {
    Pipeline local(pipeline_.options());
    for (std::uint64_t i = begin; i < end; ++i) {
      const auto& app = apps[i / space.size()];
      const auto& config = space[i % space.size()];
      results_[i] = local.run(app, config);
      const int d = ++done;
      if (d % 432 == 0)
        std::fprintf(stderr, "  dse sweep: %d / %llu simulations\n", d,
                     static_cast<unsigned long long>(total));
    }
  });
  ready_ = true;
  if (!cache_path_.empty()) {
    CsvDoc doc(csv_header());
    for (const auto& r : results_) doc.add_row(to_row(r));
    doc.save(cache_path_);
  }
}

void DseEngine::ensure_results() {
  if (ready_) return;
  if (!cache_path_.empty() && CsvDoc::file_exists(cache_path_)) {
    const CsvDoc doc = CsvDoc::load(cache_path_);
    MUSA_CHECK_MSG(doc.header() == csv_header(),
                   "stale DSE cache (schema changed): delete " + cache_path_);
    results_.clear();
    results_.reserve(doc.rows().size());
    for (const auto& row : doc.rows()) results_.push_back(from_row(row));
    ready_ = true;
    return;
  }
  recompute();
}

const std::vector<SimResult>& DseEngine::results() {
  ensure_results();
  return results_;
}

std::string DseEngine::dimension_value(const MachineConfig& config,
                                       const std::string& dimension) {
  if (dimension == "core") return config.core.label;
  if (dimension == "cache") return config.cache_label;
  if (dimension == "freq") {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%.1fGHz", config.freq_ghz);
    return buf;
  }
  if (dimension == "vector") return std::to_string(config.vector_bits) + "b";
  if (dimension == "channels")
    return std::to_string(config.mem_channels) + "ch-" +
           dramsim::mem_tech_name(config.mem_tech);
  if (dimension == "cores") return std::to_string(config.cores) + "c";
  throw SimError("unknown sweep dimension: " + dimension);
}

NormStat DseEngine::normalized_ratio(const std::string& app, int cores,
                                     const std::string& dimension,
                                     const std::string& value,
                                     const std::string& baseline,
                                     const MetricFn& metric) {
  ensure_results();
  // Map normalisation partner key -> baseline metric value.
  std::unordered_map<std::string, double> base;
  for (const auto& r : results_) {
    if (r.app != app || r.config.cores != cores) continue;
    if (dimension_value(r.config, dimension) != baseline) continue;
    base[r.config.id_without(dimension)] = metric(r);
  }
  RunningStats acc;
  for (const auto& r : results_) {
    if (r.app != app || r.config.cores != cores) continue;
    if (dimension_value(r.config, dimension) != value) continue;
    const auto it = base.find(r.config.id_without(dimension));
    if (it == base.end() || it->second == 0.0) continue;
    acc.add(metric(r) / it->second);
  }
  return {acc.mean(), acc.stddev(), static_cast<int>(acc.count())};
}

NormStat DseEngine::average(const std::string& app, int cores,
                            const std::string& dimension,
                            const std::string& value,
                            const MetricFn& metric) {
  ensure_results();
  RunningStats acc;
  for (const auto& r : results_) {
    if (r.app != app || r.config.cores != cores) continue;
    if (!dimension.empty() &&
        dimension_value(r.config, dimension) != value)
      continue;
    acc.add(metric(r));
  }
  return {acc.mean(), acc.stddev(), static_cast<int>(acc.count())};
}

DseEngine::PowerSplit DseEngine::power_split(const std::string& app,
                                             int cores,
                                             const std::string& dimension,
                                             const std::string& value,
                                             const std::string& baseline) {
  ensure_results();
  std::unordered_map<std::string, double> base;
  for (const auto& r : results_) {
    if (r.app != app || r.config.cores != cores) continue;
    if (dimension_value(r.config, dimension) != baseline) continue;
    base[r.config.id_without(dimension)] = r.node_w;
  }
  RunningStats core_acc, cache_acc, dram_acc;
  for (const auto& r : results_) {
    if (r.app != app || r.config.cores != cores) continue;
    if (dimension_value(r.config, dimension) != value) continue;
    const auto it = base.find(r.config.id_without(dimension));
    if (it == base.end() || it->second == 0.0) continue;
    core_acc.add(r.core_l1_w / it->second);
    cache_acc.add(r.l2_l3_w / it->second);
    dram_acc.add(r.dram_w / it->second);
  }
  return {core_acc.mean(), cache_acc.mean(), dram_acc.mean()};
}

}  // namespace musa::core
