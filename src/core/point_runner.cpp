#include "core/point_runner.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/deadline.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "verify/faultpoint.hpp"
#include "verify/invariants.hpp"

namespace musa::core {

namespace {
obs::Counter& points_ok() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("sweep.points.ok");
  return c;
}
obs::Counter& points_quarantined() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("sweep.points.quarantined");
  return c;
}
obs::Counter& point_retries() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("sweep.retries");
  return c;
}
}  // namespace

double backoff_jitter(const std::string& key, int attempt) {
  // FNV over "key#attempt", then a splitmix-style finalizer: FNV alone is
  // too correlated in its low bits across consecutive attempts to make a
  // uniform fraction.
  std::uint64_t h = fnv1a64(key + "#" + std::to_string(attempt));
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

PointRunner::PointRunner(const SweepPlan& plan, const SweepOptions& options)
    : plan_(plan), options_(options) {}

bool PointRunner::run(Pipeline& pipeline, std::uint64_t idx,
                      ResultJournal* journal, SimResult* slot,
                      const std::function<void()>& on_fatal) {
  const std::string& key = plan_.keys[idx];
  for (int attempt = 1;; ++attempt) {
    // One trace span per *attempt*: retried points show as back-to-back
    // spans with rising attempt numbers, each annotated with how the
    // attempt ended.
    obs::Span span("point", key);
    span.set_attempt(attempt);
    try {
      deadline::set_stage("");
      deadline::Scope budget(options_.point_timeout_s);
      const SimResult r =
          pipeline.run(plan_.app_of(idx), plan_.config_of(idx));
      // Fresh result: a violated invariant here is a model bug — the
      // point quarantines as `invariant` (or aborts the sweep in strict
      // mode) rather than journaling a bad row.
      if (options_.verify) {
        deadline::set_stage("verify");
        verify::verify_result(r);
      }
      if (journal) {
        verify::fault_point("journal.append", key);
        journal->append(key, DseEngine::to_row(r));
      }
      if (slot) *slot = r;  // disjoint slots, race-free
      succeeded_.fetch_add(1, std::memory_order_relaxed);
      span.set_outcome(obs::Outcome::kOk);
      points_ok().add();
      return true;
    } catch (const SimError& e) {
      if (options_.fail_fast || journal == nullptr) {
        span.set_outcome(obs::Outcome::kFail);
        if (on_fatal) on_fatal();
        throw;
      }
      const ErrorClass cls = e.error_class();
      if (cls == ErrorClass::kIo && attempt < options_.max_io_attempts) {
        // Transient: back off and retry the same point in place. Full
        // jitter — a deterministic fraction of the doubling cap — so
        // concurrent workers hitting the same shared-file failure spread
        // their retries; deterministic classes never reach here (same
        // inputs, same failure).
        io_retries_.fetch_add(1, std::memory_order_relaxed);
        point_retries().add();
        span.set_outcome(obs::Outcome::kRetry);
        obs::instant("retry", key, obs::Outcome::kRetry);
        std::this_thread::sleep_for(std::chrono::duration<double>(
            backoff_jitter(key, attempt) * options_.retry_backoff_s *
            static_cast<double>(1 << (attempt - 1))));
        continue;
      }
      ResultJournal::FailRecord fail;
      fail.error_class = error_class_name(cls);
      fail.stage = !e.stage().empty() ? e.stage() : deadline::current_stage();
      fail.attempts = attempt;
      fail.message = e.what();
      journal->append_fail(key, fail);
      span.set_outcome(obs::Outcome::kQuarantined);
      obs::instant("quarantine", key, obs::Outcome::kQuarantined);
      points_quarantined().add();
      if (options_.verbose)
        std::fprintf(stderr,
                     "[dse] quarantined %s after %d attempt(s): %s "
                     "(class %s, stage %s)\n",
                     key.c_str(), attempt, e.what(),
                     fail.error_class.c_str(),
                     fail.stage.empty() ? "unknown" : fail.stage.c_str());
      return false;
    } catch (const std::exception& e) {
      // Foreign exception (bad_alloc, logic_error from a dependency):
      // contain it like a model-class failure so one point cannot kill
      // the sweep, unless the caller asked for fail-fast.
      if (options_.fail_fast || journal == nullptr) {
        span.set_outcome(obs::Outcome::kFail);
        if (on_fatal) on_fatal();
        throw;
      }
      ResultJournal::FailRecord fail;
      fail.error_class = error_class_name(ErrorClass::kModel);
      fail.stage = deadline::current_stage();
      fail.attempts = attempt;
      fail.message = e.what();
      journal->append_fail(key, fail);
      span.set_outcome(obs::Outcome::kQuarantined);
      obs::instant("quarantine", key, obs::Outcome::kQuarantined);
      points_quarantined().add();
      if (options_.verbose)
        std::fprintf(stderr, "[dse] quarantined %s: %s\n", key.c_str(),
                     e.what());
      return false;
    }
  }
}

}  // namespace musa::core
