// Per-point containment executor shared by DseEngine::sweep and the
// elastic sweep workers (src/sweep/worker).
//
// A sweep point is the unit of failure containment: one attempt runs the
// full pipeline under a cooperative wall-clock budget, verifies the result
// invariants, and journals either the result row or a quarantine (FAIL)
// record. Transient io-class errors retry in place with full-jitter
// exponential backoff; everything else quarantines (or, in fail-fast mode,
// cancels the sweep and rethrows). The elastic controller relies on the
// executor being *the same code* in-process and in a worker process: a
// point computed by whichever party journals byte-identical rows, which is
// what makes duplicate recomputation after a lease revocation harmless.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/journal.hpp"
#include "core/dse.hpp"
#include "core/pipeline.hpp"

namespace musa::core {

/// Deterministic full-jitter fraction in [0, 1) for retry attempt
/// `attempt` of point `key`. Pure function of its arguments — chaos runs
/// under MUSA_FAULT reproduce the same sleep schedule — yet decorrelated
/// across keys and attempts, so N workers retrying a shared-file io
/// failure spread out instead of stampeding in lockstep.
double backoff_jitter(const std::string& key, int attempt);

class PointRunner {
 public:
  /// Both references must outlive the runner; `options` supplies the
  /// containment policy (verify, fail_fast, timeout, retry budget).
  PointRunner(const SweepPlan& plan, const SweepOptions& options);

  /// Runs plan point `idx` on `pipeline` with full containment. A good
  /// result is journaled into `journal` (when non-null) and/or stored into
  /// `slot` (when non-null); a contained failure appends a FAIL row and
  /// returns false. When quarantine is impossible (`fail_fast`, or no
  /// journal to quarantine into) the failure is fatal: `on_fatal` fires —
  /// the caller's chance to cancel its work queue — and the exception
  /// rethrows. Thread-safe; the success/retry tallies are atomic.
  bool run(Pipeline& pipeline, std::uint64_t idx, ResultJournal* journal,
           SimResult* slot, const std::function<void()>& on_fatal = {});

  /// Points that produced a good result, across all run() calls.
  std::uint64_t succeeded() const { return succeeded_.load(); }
  /// Extra attempts spent on io-class retries, across all run() calls.
  std::uint64_t io_retries() const { return io_retries_.load(); }

 private:
  const SweepPlan& plan_;
  const SweepOptions& options_;
  std::atomic<std::uint64_t> succeeded_{0};
  std::atomic<std::uint64_t> io_retries_{0};
};

}  // namespace musa::core
