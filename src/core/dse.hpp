// Design-space-exploration engine (paper §IV/§V-B).
//
// Runs the full 864-configuration × 5-application sweep through the MUSA
// pipeline as a *resumable* job: every completed point is appended to a
// crash-safe journal (common/journal.hpp) keyed by (app, config-id), so a
// killed sweep resumes exactly where it stopped instead of restarting all
// 4320 points, and the final CSV cache is written atomically only once the
// point set is complete. Sweeps can also be sharded across processes or
// machines (`SweepOptions::shard_*`); shard journals merge into the same
// cache the moment the union covers the plan.
//
// Figures 5–10 all normalise over the same sweep, using the paper's
// methodology: every simulation is divided by the simulation sharing *all
// other* architectural parameters but holding the swept parameter at its
// baseline value; bars report the mean (and stddev) of those ratios — 96
// samples per bar at the paper's grid.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/config_space.hpp"
#include "core/pipeline.hpp"

namespace musa::core {

/// Extracts the plotted quantity from one simulation result.
using MetricFn = std::function<double(const SimResult&)>;

/// A metric plus the guard the power figures need: HBM2 points carry
/// dram_power_known == false (the paper has no vendor power data, §V-D), so
/// any power- or energy-derived metric must skip them — folding a
/// partial node_w into a normalised ratio would silently skew every bar
/// that mixes memory technologies.
class Metric {
 public:
  Metric(MetricFn fn, bool needs_power = false)  // NOLINT: implicit by design
      : fn_(std::move(fn)), needs_power_(needs_power) {}

  double operator()(const SimResult& r) const { return fn_(r); }

  /// True if the metric reads power/energy fields; samples with
  /// dram_power_known == false are excluded from aggregation.
  bool needs_power() const { return needs_power_; }

  /// Whether `r` may contribute to an aggregate of this metric.
  bool admits(const SimResult& r) const {
    return !needs_power_ || r.dram_power_known;
  }

 private:
  MetricFn fn_;
  bool needs_power_;
};

/// Canonical metrics for the figure reproductions.
namespace metrics {
inline const Metric region_time{
    [](const SimResult& r) { return r.region_seconds; }};
inline const Metric wall_time{
    [](const SimResult& r) { return r.wall_seconds; }};
inline const Metric node_power{[](const SimResult& r) { return r.node_w; },
                               /*needs_power=*/true};
inline const Metric region_energy{
    [](const SimResult& r) { return r.node_w * r.region_seconds; },
    /*needs_power=*/true};
}  // namespace metrics

struct NormStat {
  double mean = 0.0;
  double sd = 0.0;
  int n = 0;
};

/// How a sweep is executed. Defaults reproduce the paper's full grid in one
/// process; shards split the plan round-robin for multi-process /
/// multi-machine runs whose journals merge into one cache.
struct SweepOptions {
  int shard_index = 0;
  int shard_count = 1;
  bool verbose = true;  // progress / repair warnings on stderr

  /// Cross-layer verification (src/verify): every config in the plan is
  /// linted before any simulation runs, every freshly computed point is
  /// checked against the physical-consistency invariants (violations throw
  /// SimError naming the point), and cache/journal rows that violate them
  /// are dropped and recomputed like any other corrupt record. Off =
  /// `run_dse --no-verify`, for perf experiments only.
  bool verify = true;

  /// Cross-point stage memoization (core/stage_memo.hpp): all workers share
  /// one StageMemo, so the burst pre-pass, kernel streams, warm-up cache
  /// states, perfect-memory runs and region/trace generation are computed
  /// once per distinct input instead of once per point. Results are
  /// bit-identical either way; `run_dse --no-memo` turns it off to bisect
  /// a suspected staleness bug (DESIGN.md explains the argument).
  bool memoize = true;

  /// Failure containment (DESIGN.md "Failure model"). By default a point
  /// that throws is *quarantined*: journaled as a checksummed FAIL row
  /// carrying {error class, stage, attempts, message}, and the sweep keeps
  /// going — one pathological point must not discard thousands of healthy
  /// ones. `fail_fast` (run_dse --strict) restores the old behaviour: the
  /// first failure cancels the queue and rethrows.
  bool fail_fast = false;

  /// Re-run points with a FAIL row. Off, a quarantined point counts as
  /// "known" on resume (the sweep does not retry it run after run); on
  /// (run_dse --retry-failed), exactly the quarantined points recompute.
  bool retry_failed = false;

  /// Wall-clock budget per point in seconds (0 = unlimited). Enforced by
  /// the cooperative watchdog (common/deadline.hpp): a point that exceeds
  /// it throws SimError{timeout} from a hot-loop poll and quarantines.
  double point_timeout_s = 0.0;

  /// Retry policy for *transient* failures: an `io`-class error is retried
  /// up to max_io_attempts times with exponential backoff before the point
  /// quarantines. Deterministic classes (model, invariant, config, timeout,
  /// injected) never retry — the same inputs would fail the same way.
  int max_io_attempts = 3;
  double retry_backoff_s = 0.05;

  /// Test hooks: restrict the plan to these configs / app names
  /// (empty → ConfigSpace::full_space() / every registry app).
  std::vector<MachineConfig> configs;
  std::vector<std::string> apps;

  /// Grid description of the config plan. When set (and `configs` is
  /// empty), plan construction runs the static space analyzer
  /// (verify/space_analysis.hpp) instead of linting per point: the grid is
  /// partitioned into feasible/infeasible boxes in O(boxes · rules),
  /// statically-infeasible boxes are excluded from the plan wholesale
  /// (SweepReport::statically_skipped counts their points), and the
  /// surviving points skip the per-point lint entirely — their boxes are
  /// *proved* feasible. Plan order is the grid's row-major enumeration, so
  /// SpaceAxes::paper() reproduces the ConfigSpace::full_space() plan (and
  /// cache) exactly. When `verify` is off the analyzer does not run (it
  /// exists to enforce the rules): the described grid is swept in full,
  /// every point unlinted.
  std::optional<SpaceAxes> axes;
};

/// The enumerated sweep plan: app-major over (apps × configs), the same
/// layout DseEngine::results() uses. Public because the elastic sweep
/// controller and its workers (src/sweep) must agree with the engine on the
/// exact point enumeration — both sides build it independently from the
/// same SweepOptions, and the journal keys line up by construction.
struct SweepPlan {
  std::vector<const apps::AppModel*> app_list;
  std::vector<MachineConfig> configs;
  std::vector<std::string> keys;  // point_key per plan index
  bool statically_verified = false;  // configs proved feasible box-wise
  std::uint64_t statically_skipped = 0;  // grid points the analyzer cut
  std::uint64_t analysis_boxes = 0;      // boxes it classified doing so

  std::uint64_t size() const { return keys.size(); }
  const apps::AppModel& app_of(std::uint64_t i) const {
    return *app_list[i / configs.size()];
  }
  const MachineConfig& config_of(std::uint64_t i) const {
    return configs[i % configs.size()];
  }
};

/// Builds the plan a sweep with `options` would run: explicit configs/apps
/// when given, an analyzer-filtered grid when `options.axes` is set, the
/// paper's full space otherwise. Deterministic — equal options produce an
/// identical plan, which is what makes independently-built controller and
/// worker plans interchangeable.
SweepPlan make_sweep_plan(const SweepOptions& options);

/// One quarantined sweep point, for the post-sweep report.
struct QuarantinePoint {
  std::string key;          // "app|config-id"
  std::string error_class;  // error_class_name() of the final failure
  std::string stage;        // stage marker at failure ("" when unknown)
  int attempts = 0;         // attempts consumed before quarantine
  std::string message;      // sanitised exception text
};

/// What one sweep() call did — the engine's observability surface.
struct SweepReport {
  std::uint64_t total = 0;         // points in the full plan
  std::uint64_t shard_points = 0;  // points owned by this shard
  std::uint64_t resumed = 0;       // shard points already in cache/journals
  std::uint64_t computed = 0;      // points simulated successfully this call
  std::uint64_t dropped = 0;       // corrupt journal records discarded
  std::uint64_t invalid = 0;       // loaded rows failing invariant checks
  std::uint64_t quarantined = 0;   // points with a FAIL row after this call
  std::uint64_t retries = 0;       // extra attempts spent on io-class errors
  std::uint64_t statically_skipped = 0;  // grid points excluded by the
                                         // static space analyzer
  std::uint64_t analysis_boxes = 0;      // boxes the analyzer classified
  bool finalized = false;          // cache CSV written (plan fully covered)
  int workers = 0;                 // worker threads the compute phase used
  double wall_s = 0.0;             // wall time of the compute phase
  StageTimes stages;               // per-stage wall time of computed points
  MemoStats memo;                  // shared-memo hit/miss counters
  std::vector<QuarantinePoint> quarantine;  // sorted by key
};

class DseEngine {
 public:
  /// `cache_path`: CSV file for result caching ("" disables caching and
  /// journaling; sharding then requires a cache to merge into).
  DseEngine(Pipeline& pipeline, std::string cache_path,
            SweepOptions options = {});

  /// Sweep results, computed on first use (or loaded from the cache file).
  /// Throws if this engine is a shard whose siblings have not finished —
  /// results only exist once the plan is fully covered.
  const std::vector<SimResult>& results();

  /// Ensures this shard's points exist, resuming from the journal and a
  /// (possibly partial) cache: a truncated or under-sampled cache is
  /// detected, warned about, and repaired by recomputing exactly the
  /// missing points. With `force`, cache and journals are deleted first.
  /// Finalizes (atomically writes the cache, removes journals) as soon as
  /// the union of cache + all shard journals covers the whole plan.
  SweepReport sweep(bool force = false);

  /// Forces a fresh sweep, replacing any cache.
  void recompute() { sweep(/*force=*/true); }

  /// Deletes the cache file and every journal belonging to it.
  void clear_cache();

  /// Report of the most recent sweep() (empty before the first one).
  const SweepReport& report() const { return report_; }

  /// Journal key of one sweep point: "app|config-id".
  static std::string point_key(const std::string& app,
                               const MachineConfig& config);

  /// CSV/journal schema and row codecs (exact string round-trip:
  /// from_row(to_row(r)) reproduces every field).
  static std::vector<std::string> csv_header();
  static std::vector<std::string> to_row(const SimResult& r);
  static SimResult from_row(const std::vector<std::string>& row);

  /// Value of a config along one sweep dimension, e.g. dimension "vector"
  /// → "512b". Dimensions: core, cache, freq, vector, channels, cores.
  static std::string dimension_value(const MachineConfig& config,
                                     const std::string& dimension);

  /// Paper-style normalised average for one bar of a figure:
  /// mean over all configuration pairs (app, cores panel fixed) of
  /// metric(config with dimension=value) / metric(partner with
  /// dimension=baseline). Points the metric does not admit (unknown DRAM
  /// power under a power/energy metric) are skipped.
  NormStat normalized_ratio(const std::string& app, int cores,
                            const std::string& dimension,
                            const std::string& value,
                            const std::string& baseline,
                            const Metric& metric);

  /// Average of a metric over all sweep points matching (app, cores, and
  /// dimension=value); used for absolute quantities such as power splits.
  NormStat average(const std::string& app, int cores,
                   const std::string& dimension, const std::string& value,
                   const Metric& metric);

  /// Component-wise power-share average (Core+L1 / L2+L3 / Memory),
  /// normalised to the baseline dimension value's total power. Points with
  /// unknown DRAM power are skipped on both sides of the ratio.
  struct PowerSplit {
    double core_l1 = 0.0, l2_l3 = 0.0, dram = 0.0;
  };
  PowerSplit power_split(const std::string& app, int cores,
                         const std::string& dimension,
                         const std::string& value,
                         const std::string& baseline);

 private:
  std::string journal_path() const;
  void ensure_results();

  /// Tries to load `cache_path_` as a complete, exactly-covering result
  /// set; on success fills results_ (plan order) and returns true. On any
  /// mismatch (missing/duplicate/foreign rows, unparsable rows) salvages
  /// what is valid into `salvage` and returns false.
  bool load_cache(const SweepPlan& plan,
                  std::vector<std::pair<std::string,
                                        std::vector<std::string>>>* salvage,
                  std::size_t* invalid_out = nullptr);

  Pipeline& pipeline_;
  std::string cache_path_;
  SweepOptions options_;
  std::vector<SimResult> results_;
  SweepReport report_;
  bool ready_ = false;
};

}  // namespace musa::core
