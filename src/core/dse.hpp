// Design-space-exploration engine (paper §IV/§V-B).
//
// Runs the full 864-configuration × 5-application sweep through the MUSA
// pipeline, caches results as CSV (Figs 5–10 all normalise over the same
// sweep, so the expensive part runs once), and implements the paper's
// normalisation methodology: every simulation is divided by the simulation
// sharing *all other* architectural parameters but holding the swept
// parameter at its baseline value; bars report the mean (and stddev) of
// those ratios — 96 samples per bar at the paper's grid.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/config_space.hpp"
#include "core/pipeline.hpp"

namespace musa::core {

/// Extracts the plotted quantity from one simulation result.
using MetricFn = std::function<double(const SimResult&)>;

/// Canonical metrics for the figure reproductions.
namespace metrics {
inline double region_time(const SimResult& r) { return r.region_seconds; }
inline double wall_time(const SimResult& r) { return r.wall_seconds; }
inline double node_power(const SimResult& r) { return r.node_w; }
inline double region_energy(const SimResult& r) {
  return r.node_w * r.region_seconds;
}
}  // namespace metrics

struct NormStat {
  double mean = 0.0;
  double sd = 0.0;
  int n = 0;
};

class DseEngine {
 public:
  /// `cache_path`: CSV file for result caching ("" disables caching).
  DseEngine(Pipeline& pipeline, std::string cache_path);

  /// Sweep results, computed on first use (or loaded from the cache file).
  const std::vector<SimResult>& results();

  /// Forces a fresh sweep, replacing any cache.
  void recompute();

  /// Value of a config along one sweep dimension, e.g. dimension "vector"
  /// → "512b". Dimensions: core, cache, freq, vector, channels, cores.
  static std::string dimension_value(const MachineConfig& config,
                                     const std::string& dimension);

  /// Paper-style normalised average for one bar of a figure:
  /// mean over all configuration pairs (app, cores panel fixed) of
  /// metric(config with dimension=value) / metric(partner with
  /// dimension=baseline).
  NormStat normalized_ratio(const std::string& app, int cores,
                            const std::string& dimension,
                            const std::string& value,
                            const std::string& baseline,
                            const MetricFn& metric);

  /// Average of a metric over all sweep points matching (app, cores, and
  /// dimension=value); used for absolute quantities such as power splits.
  NormStat average(const std::string& app, int cores,
                   const std::string& dimension, const std::string& value,
                   const MetricFn& metric);

  /// Component-wise power-share average (Core+L1 / L2+L3 / Memory),
  /// normalised to the baseline dimension value's total power.
  struct PowerSplit {
    double core_l1 = 0.0, l2_l3 = 0.0, dram = 0.0;
  };
  PowerSplit power_split(const std::string& app, int cores,
                         const std::string& dimension,
                         const std::string& value,
                         const std::string& baseline);

 private:
  void ensure_results();
  static std::vector<std::string> csv_header();
  static std::vector<std::string> to_row(const SimResult& r);
  static SimResult from_row(const std::vector<std::string>& row);

  Pipeline& pipeline_;
  std::string cache_path_;
  std::vector<SimResult> results_;
  bool ready_ = false;
};

}  // namespace musa::core
