#include "core/config_space.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace musa::core {

namespace {
cpusim::CoreConfig core_by_label(const std::string& label) {
  for (const auto& c : cpusim::core_presets())
    if (c.label == label) return c;
  throw SimError("unknown core label: " + label);
}

std::string dim_string(const MachineConfig& c, const std::string& skip) {
  char freq[16];
  std::snprintf(freq, sizeof freq, "%.1fGHz", c.freq_ghz);
  std::string out;
  auto add = [&](const std::string& dim, const std::string& value) {
    out += dim == skip ? std::string("*") : value;
    out += '|';
  };
  add("core", c.core.label);
  add("cache", c.cache_label);
  add("freq", freq);
  add("vector", std::to_string(c.vector_bits) + "b");
  add("channels", std::to_string(c.mem_channels) + "ch-" +
                      dramsim::mem_tech_name(c.mem_tech));
  add("cores", std::to_string(c.cores) + "c");
  out.pop_back();
  return out;
}
}  // namespace

namespace {

/// Splits "Nb"-style suffixed integers ("128b", "4ch", "32c"); throws
/// SimError when the suffix or the digits are missing.
int suffixed_int(const std::string& field, const std::string& suffix,
                 const char* what) {
  if (field.size() <= suffix.size() ||
      field.compare(field.size() - suffix.size(), suffix.size(), suffix) != 0)
    throw SimError(std::string("config id: ") + what + " field \"" + field +
                   "\" does not end in \"" + suffix + "\"");
  const std::string digits = field.substr(0, field.size() - suffix.size());
  char* end = nullptr;
  const long v = std::strtol(digits.c_str(), &end, 10);
  if (end == digits.c_str() || *end != '\0')
    throw SimError(std::string("config id: ") + what + " field \"" + field +
                   "\" is not an integer");
  return static_cast<int>(v);
}

}  // namespace

MachineConfig MachineConfig::parse_id(const std::string& id) {
  std::vector<std::string> fields;
  std::string cur;
  for (char ch : id) {
    if (ch == '|') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  fields.push_back(cur);
  if (fields.size() != 6)
    throw SimError("config id \"" + id + "\" must have 6 |-separated fields "
                   "(core|cache|freq|vector|channels-tech|cores)");

  MachineConfig c;
  c.core = core_by_label(fields[0]);
  c.cache_label = fields[1];

  const std::string& freq = fields[2];
  if (freq.size() <= 3 || freq.compare(freq.size() - 3, 3, "GHz") != 0)
    throw SimError("config id: frequency field \"" + freq +
                   "\" does not end in GHz");
  char* end = nullptr;
  const std::string freq_digits = freq.substr(0, freq.size() - 3);
  c.freq_ghz = std::strtod(freq_digits.c_str(), &end);
  if (end == freq_digits.c_str() || *end != '\0')
    throw SimError("config id: frequency field \"" + freq +
                   "\" is not a number");

  c.vector_bits = suffixed_int(fields[3], "b", "vector width");

  const std::string& chans = fields[4];
  const std::size_t dash = chans.find("ch-");
  if (dash == std::string::npos)
    throw SimError("config id: channel field \"" + chans +
                   "\" is not Nch-TECH");
  c.mem_channels = suffixed_int(chans.substr(0, dash + 2), "ch", "channel");
  const std::string tech = chans.substr(dash + 3);
  bool tech_found = false;
  for (auto t : {dramsim::MemTech::kDdr4_2333, dramsim::MemTech::kDdr4_2666,
                 dramsim::MemTech::kLpddr4_3200, dramsim::MemTech::kWideIo2,
                 dramsim::MemTech::kHbm2})
    if (tech == dramsim::mem_tech_name(t)) {
      c.mem_tech = t;
      tech_found = true;
    }
  if (!tech_found)
    throw SimError("config id: unknown memory tech \"" + tech + "\"");

  c.cores = suffixed_int(fields[5], "c", "core count");
  return c;  // ranks stay at the default: the id does not carry them
}

cachesim::HierarchyConfig MachineConfig::cache_config(int num_cores) const {
  if (cache_label == "32M:256K") return cachesim::cache_32m_256k(num_cores);
  if (cache_label == "64M:512K") return cachesim::cache_64m_512k(num_cores);
  if (cache_label == "96M:1M") return cachesim::cache_96m_1m(num_cores);
  throw SimError("unknown cache label: " + cache_label);
}

std::string MachineConfig::id() const { return dim_string(*this, ""); }

std::string MachineConfig::id_without(const std::string& dimension) const {
  return dim_string(*this, dimension);
}

const std::vector<std::string>& ConfigSpace::cache_labels() {
  static const std::vector<std::string> v = {"32M:256K", "64M:512K",
                                             "96M:1M"};
  return v;
}
const std::vector<double>& ConfigSpace::frequencies() {
  static const std::vector<double> v = {1.5, 2.0, 2.5, 3.0};
  return v;
}
const std::vector<int>& ConfigSpace::vector_widths() {
  static const std::vector<int> v = {128, 256, 512};
  return v;
}
const std::vector<int>& ConfigSpace::channel_counts() {
  static const std::vector<int> v = {4, 8};
  return v;
}
const std::vector<int>& ConfigSpace::core_counts() {
  static const std::vector<int> v = {1, 32, 64};
  return v;
}

std::vector<MachineConfig> ConfigSpace::full_space() {
  std::vector<MachineConfig> space;
  space.reserve(864);
  for (const auto& core : cpusim::core_presets())
    for (const auto& cache : cache_labels())
      for (double freq : frequencies())
        for (int vec : vector_widths())
          for (int ch : channel_counts())
            for (int cores : core_counts()) {
              MachineConfig c;
              c.core = core;
              c.cache_label = cache;
              c.freq_ghz = freq;
              c.vector_bits = vec;
              c.mem_channels = ch;
              c.mem_tech = dramsim::MemTech::kDdr4_2333;
              c.cores = cores;
              c.ranks = 256;
              space.push_back(c);
            }
  MUSA_CHECK_MSG(space.size() == 864, "Table I grid must have 864 points");
  return space;
}

SpaceAxes SpaceAxes::paper() {
  SpaceAxes a;
  a.core_presets = cpusim::core_presets();
  a.cache_labels = ConfigSpace::cache_labels();
  a.freqs_ghz = ConfigSpace::frequencies();
  a.vector_bits = ConfigSpace::vector_widths();
  a.mem_channels = ConfigSpace::channel_counts();
  a.mem_techs = {dramsim::MemTech::kDdr4_2333};
  a.core_counts = ConfigSpace::core_counts();
  a.rank_counts = {256};
  return a;
}

SpaceAxes SpaceAxes::extended() {
  SpaceAxes a;
  a.core_presets = cpusim::core_presets();
  a.cache_labels = ConfigSpace::cache_labels();
  // 0.5 .. 6.0 GHz in 0.1 steps. Generated as i/10 so every value survives
  // the %.1f round-trip through config ids exactly (no 0.25-style values
  // that would collide once formatted).
  for (int i = 5; i <= 60; ++i) a.freqs_ghz.push_back(i / 10.0);
  a.vector_bits = {32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};
  a.mem_channels = {1, 2, 4, 8, 16, 32, 64, 128};
  a.mem_techs = {dramsim::MemTech::kDdr4_2333, dramsim::MemTech::kDdr4_2666,
                 dramsim::MemTech::kLpddr4_3200, dramsim::MemTech::kWideIo2,
                 dramsim::MemTech::kHbm2};
  a.core_counts = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048};
  a.rank_counts = {256};
  return a;
}

std::uint64_t SpaceAxes::points() const {
  std::uint64_t n = 1;
  for (int d = 0; d < kDims; ++d)
    n *= static_cast<std::uint64_t>(dim_size(d));
  return n;
}

int SpaceAxes::dim_size(int dim) const {
  switch (dim) {
    case kDimCore: return static_cast<int>(core_presets.size());
    case kDimCache: return static_cast<int>(cache_labels.size());
    case kDimFreq: return static_cast<int>(freqs_ghz.size());
    case kDimVector: return static_cast<int>(vector_bits.size());
    case kDimChannels: return static_cast<int>(mem_channels.size());
    case kDimTech: return static_cast<int>(mem_techs.size());
    case kDimCores: return static_cast<int>(core_counts.size());
    case kDimRanks: return static_cast<int>(rank_counts.size());
    default: throw SimError("SpaceAxes: bad dimension " + std::to_string(dim));
  }
}

const char* SpaceAxes::dim_name(int dim) {
  switch (dim) {
    case kDimCore: return "core";
    case kDimCache: return "cache";
    case kDimFreq: return "freq";
    case kDimVector: return "vector";
    case kDimChannels: return "channels";
    case kDimTech: return "tech";
    case kDimCores: return "cores";
    case kDimRanks: return "ranks";
    default: throw SimError("SpaceAxes: bad dimension " + std::to_string(dim));
  }
}

std::string SpaceAxes::value_name(int dim, int index) const {
  MUSA_CHECK_MSG(index >= 0 && index < dim_size(dim),
                 "SpaceAxes: value index out of range");
  switch (dim) {
    case kDimCore: return core_presets[index].label;
    case kDimCache: return cache_labels[index];
    case kDimFreq: {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.1fGHz", freqs_ghz[index]);
      return buf;
    }
    case kDimVector: return std::to_string(vector_bits[index]) + "b";
    case kDimChannels: return std::to_string(mem_channels[index]) + "ch";
    case kDimTech: return dramsim::mem_tech_name(mem_techs[index]);
    case kDimCores: return std::to_string(core_counts[index]) + "c";
    default: return std::to_string(rank_counts[index]) + "r";
  }
}

MachineConfig SpaceAxes::config_at(const std::array<int, kDims>& idx) const {
  for (int d = 0; d < kDims; ++d)
    MUSA_CHECK_MSG(idx[d] >= 0 && idx[d] < dim_size(d),
                   "SpaceAxes: index out of range");
  MachineConfig c;
  c.core = core_presets[idx[kDimCore]];
  c.cache_label = cache_labels[idx[kDimCache]];
  c.freq_ghz = freqs_ghz[idx[kDimFreq]];
  c.vector_bits = vector_bits[idx[kDimVector]];
  c.mem_channels = mem_channels[idx[kDimChannels]];
  c.mem_tech = mem_techs[idx[kDimTech]];
  c.cores = core_counts[idx[kDimCores]];
  c.ranks = rank_counts[idx[kDimRanks]];
  return c;
}

MachineConfig SpaceAxes::config_at(std::uint64_t linear) const {
  MUSA_CHECK_MSG(linear < points(), "SpaceAxes: linear index out of range");
  std::array<int, kDims> idx{};
  for (int d = kDims - 1; d >= 0; --d) {
    const auto size = static_cast<std::uint64_t>(dim_size(d));
    idx[d] = static_cast<int>(linear % size);
    linear /= size;
  }
  return config_at(idx);
}

std::uint64_t SpaceAxes::linear_of(const std::array<int, kDims>& idx) const {
  std::uint64_t linear = 0;
  for (int d = 0; d < kDims; ++d) {
    MUSA_CHECK_MSG(idx[d] >= 0 && idx[d] < dim_size(d),
                   "SpaceAxes: index out of range");
    linear = linear * static_cast<std::uint64_t>(dim_size(d)) +
             static_cast<std::uint64_t>(idx[d]);
  }
  return linear;
}

MachineConfig ConfigSpace::dse_best(const std::string& app_name) {
  // Best execution-time conventional configs at 64 cores / 2 GHz (§V-D).
  MachineConfig c;
  c.freq_ghz = 2.0;
  c.cores = 64;
  if (app_name == "spmz") {
    c.core = core_by_label("aggressive");
    c.vector_bits = 512;
    c.cache_label = "96M:1M";
    c.mem_channels = 8;
    return c;
  }
  if (app_name == "lulesh") {
    c.core = core_by_label("high");
    c.vector_bits = 512;
    c.cache_label = "96M:1M";
    c.mem_channels = 8;
    return c;
  }
  throw SimError("no Table II baseline for app: " + app_name);
}

std::vector<std::pair<std::string, MachineConfig>>
ConfigSpace::unconventional(const std::string& app_name) {
  std::vector<std::pair<std::string, MachineConfig>> rows;
  rows.emplace_back("Best-DSE", dse_best(app_name));
  if (app_name == "spmz") {
    MachineConfig vplus = rows[0].second;
    vplus.core = core_by_label("high");
    vplus.vector_bits = 1024;
    vplus.cache_label = "64M:512K";
    vplus.mem_channels = 4;
    rows.emplace_back("Vector+", vplus);
    MachineConfig vpp = vplus;
    vpp.vector_bits = 2048;
    rows.emplace_back("Vector++", vpp);
    return rows;
  }
  if (app_name == "lulesh") {
    MachineConfig mplus = rows[0].second;
    mplus.core = core_by_label("medium");
    mplus.vector_bits = 64;  // narrow scalar FPUs
    mplus.cache_label = "64M:512K";
    mplus.mem_channels = 16;
    rows.emplace_back("MEM+", mplus);
    MachineConfig mpp = mplus;
    mpp.mem_tech = dramsim::MemTech::kHbm2;
    mpp.mem_channels = 16;
    rows.emplace_back("MEM++", mpp);
    return rows;
  }
  throw SimError("no Table II rows for app: " + app_name);
}

}  // namespace musa::core
