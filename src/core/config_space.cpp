#include "core/config_space.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace musa::core {

namespace {
cpusim::CoreConfig core_by_label(const std::string& label) {
  for (const auto& c : cpusim::core_presets())
    if (c.label == label) return c;
  throw SimError("unknown core label: " + label);
}

std::string dim_string(const MachineConfig& c, const std::string& skip) {
  char freq[16];
  std::snprintf(freq, sizeof freq, "%.1fGHz", c.freq_ghz);
  std::string out;
  auto add = [&](const std::string& dim, const std::string& value) {
    out += dim == skip ? std::string("*") : value;
    out += '|';
  };
  add("core", c.core.label);
  add("cache", c.cache_label);
  add("freq", freq);
  add("vector", std::to_string(c.vector_bits) + "b");
  add("channels", std::to_string(c.mem_channels) + "ch-" +
                      dramsim::mem_tech_name(c.mem_tech));
  add("cores", std::to_string(c.cores) + "c");
  out.pop_back();
  return out;
}
}  // namespace

cachesim::HierarchyConfig MachineConfig::cache_config(int num_cores) const {
  if (cache_label == "32M:256K") return cachesim::cache_32m_256k(num_cores);
  if (cache_label == "64M:512K") return cachesim::cache_64m_512k(num_cores);
  if (cache_label == "96M:1M") return cachesim::cache_96m_1m(num_cores);
  throw SimError("unknown cache label: " + cache_label);
}

std::string MachineConfig::id() const { return dim_string(*this, ""); }

std::string MachineConfig::id_without(const std::string& dimension) const {
  return dim_string(*this, dimension);
}

const std::vector<std::string>& ConfigSpace::cache_labels() {
  static const std::vector<std::string> v = {"32M:256K", "64M:512K",
                                             "96M:1M"};
  return v;
}
const std::vector<double>& ConfigSpace::frequencies() {
  static const std::vector<double> v = {1.5, 2.0, 2.5, 3.0};
  return v;
}
const std::vector<int>& ConfigSpace::vector_widths() {
  static const std::vector<int> v = {128, 256, 512};
  return v;
}
const std::vector<int>& ConfigSpace::channel_counts() {
  static const std::vector<int> v = {4, 8};
  return v;
}
const std::vector<int>& ConfigSpace::core_counts() {
  static const std::vector<int> v = {1, 32, 64};
  return v;
}

std::vector<MachineConfig> ConfigSpace::full_space() {
  std::vector<MachineConfig> space;
  space.reserve(864);
  for (const auto& core : cpusim::core_presets())
    for (const auto& cache : cache_labels())
      for (double freq : frequencies())
        for (int vec : vector_widths())
          for (int ch : channel_counts())
            for (int cores : core_counts()) {
              MachineConfig c;
              c.core = core;
              c.cache_label = cache;
              c.freq_ghz = freq;
              c.vector_bits = vec;
              c.mem_channels = ch;
              c.mem_tech = dramsim::MemTech::kDdr4_2333;
              c.cores = cores;
              c.ranks = 256;
              space.push_back(c);
            }
  MUSA_CHECK_MSG(space.size() == 864, "Table I grid must have 864 points");
  return space;
}

MachineConfig ConfigSpace::dse_best(const std::string& app_name) {
  // Best execution-time conventional configs at 64 cores / 2 GHz (§V-D).
  MachineConfig c;
  c.freq_ghz = 2.0;
  c.cores = 64;
  if (app_name == "spmz") {
    c.core = core_by_label("aggressive");
    c.vector_bits = 512;
    c.cache_label = "96M:1M";
    c.mem_channels = 8;
    return c;
  }
  if (app_name == "lulesh") {
    c.core = core_by_label("high");
    c.vector_bits = 512;
    c.cache_label = "96M:1M";
    c.mem_channels = 8;
    return c;
  }
  throw SimError("no Table II baseline for app: " + app_name);
}

std::vector<std::pair<std::string, MachineConfig>>
ConfigSpace::unconventional(const std::string& app_name) {
  std::vector<std::pair<std::string, MachineConfig>> rows;
  rows.emplace_back("Best-DSE", dse_best(app_name));
  if (app_name == "spmz") {
    MachineConfig vplus = rows[0].second;
    vplus.core = core_by_label("high");
    vplus.vector_bits = 1024;
    vplus.cache_label = "64M:512K";
    vplus.mem_channels = 4;
    rows.emplace_back("Vector+", vplus);
    MachineConfig vpp = vplus;
    vpp.vector_bits = 2048;
    rows.emplace_back("Vector++", vpp);
    return rows;
  }
  if (app_name == "lulesh") {
    MachineConfig mplus = rows[0].second;
    mplus.core = core_by_label("medium");
    mplus.vector_bits = 64;  // narrow scalar FPUs
    mplus.cache_label = "64M:512K";
    mplus.mem_channels = 16;
    rows.emplace_back("MEM+", mplus);
    MachineConfig mpp = mplus;
    mpp.mem_tech = dramsim::MemTech::kHbm2;
    mpp.mem_channels = 16;
    rows.emplace_back("MEM++", mpp);
    return rows;
  }
  throw SimError("no Table II rows for app: " + app_name);
}

}  // namespace musa::core
