// Cross-point memoization of redundant pipeline stages.
//
// The 864-configuration sweep recomputes, at every point, work whose inputs
// only span a handful of distinct values (DESIGN.md "Stage memoization"):
//
//   * region / burst-trace generation   — keyed (app, phase) / (app, ranks);
//   * the burst pre-pass concurrency    — keyed (app, cores): 3 values/app;
//   * the materialized kernel stream    — keyed (app, phase): the
//     KernelSource is deterministic in (profile, budget, seed), none of
//     which vary across machine configurations;
//   * the post-warm-up cache state      — keyed (app, phase, exact scaled
//     hierarchy geometry): the functional warm-up touches the hierarchy
//     with a fixed address stream, so its end state is a pure function of
//     the cache geometry (12 distinct states per app-phase, not 864);
//   * the perfect-memory CPI            — keyed (app, phase, core preset,
//     vector width): perfect memory never consults caches or DRAM, so
//     frequency / memory-technology / channel dimensions cancel out.
//
// Every memoized value is the bit-exact result the non-memoized path would
// compute (same constructors, same seeds, same arithmetic), which is what
// makes the memoized sweep's dse_cache.csv byte-identical — the property
// test_stage_memo locks in and `run_dse --no-memo` exists to bisect.
//
// Thread safety: one StageMemo is shared by every sweep worker. Each table
// has its own shared_mutex (read-mostly: taken shared on the hit path).
// Misses compute *outside* any lock — results are deterministic, so when
// two workers race to fill the same key the loser discards an identical
// value (try_emplace, first wins) — and std::unordered_map never moves
// node storage, so returned references stay valid while others insert.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "apps/apps.hpp"
#include "cachesim/hierarchy.hpp"
#include "cpusim/core_config.hpp"
#include "isa/instr.hpp"

namespace musa::core {

/// 128-bit memo key: an application fingerprint plus a stage-specific tag
/// (phase index, rank count, or a hash of the stage's remaining inputs).
struct MemoKey {
  std::uint64_t app = 0;
  std::uint64_t tag = 0;
  bool operator==(const MemoKey&) const = default;
};

struct MemoKeyHash {
  using is_transparent = void;
  std::size_t operator()(const MemoKey& k) const noexcept {
    // splitmix-style finalizer over the two halves.
    std::uint64_t h = k.app ^ (k.tag * 0x9e3779b97f4a7c15ull);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    return static_cast<std::size_t>(h);
  }
};

/// FNV-1a over raw bytes; the building block of every fingerprint.
std::uint64_t fnv1a_bytes(const void* data, std::size_t n,
                          std::uint64_t seed = 0xcbf29ce484222325ull);

/// Identity of an AppModel for memo keys: the registry apps are distinct
/// stable objects, so the address alone would do; the name hash guards the
/// stack-allocated apps tests build (same address reused, different app).
std::uint64_t app_fingerprint(const apps::AppModel& app);

/// Exact numeric content of a scaled hierarchy configuration.
std::uint64_t hierarchy_fingerprint(const cachesim::HierarchyConfig& c);

/// Exact numeric content of a core preset (label included).
std::uint64_t core_fingerprint(const cpusim::CoreConfig& c);

/// Mirror a table's hit/miss onto the global metric registry as
/// "memo.<table>.hits" / "memo.<table>.misses". The per-instance atomic
/// counters below stay the source of truth for stats() — tests assert
/// per-memo deltas — the registry mirror is what sweeps export
/// (metrics.json, summary table) without threading MemoStats around.
void memo_hit(const char* table);
void memo_miss(const char* table);

/// Per-table hit/miss counts, snapshot for reporting. A "miss" is a compute;
/// racing workers may both count a miss for one key (the loser's value is
/// discarded), so hits + misses >= lookups is the only invariant.
struct MemoStats {
  std::uint64_t region_hits = 0, region_misses = 0;
  std::uint64_t trace_hits = 0, trace_misses = 0;
  std::uint64_t burst_hits = 0, burst_misses = 0;
  std::uint64_t stream_hits = 0, stream_misses = 0;
  std::uint64_t warm_hits = 0, warm_misses = 0;
  std::uint64_t perfect_hits = 0, perfect_misses = 0;

  std::uint64_t total_hits() const {
    return region_hits + trace_hits + burst_hits + stream_hits + warm_hits +
           perfect_hits;
  }
  std::uint64_t total_misses() const {
    return region_misses + trace_misses + burst_misses + stream_misses +
           warm_misses + perfect_misses;
  }
  static double rate(std::uint64_t hits, std::uint64_t misses) {
    const std::uint64_t n = hits + misses;
    return n ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  }
};

class StageMemo {
 public:
  /// The kernel streams a (app, phase) pair ever needs: the warm+measure
  /// stream and the quarter-slice perfect-memory stream. Both are drained
  /// from KernelSources built with the same arguments the non-memoized
  /// path uses, so replaying them through SpanSource is bit-identical.
  struct KernelStreams {
    std::vector<isa::Instr> full;
    std::vector<isa::Instr> perfect;
  };

  /// `options_fingerprint` identifies the PipelineOptions every user of
  /// this memo must share (seed, slice sizes, cache scale — see
  /// pipeline_options_fingerprint in pipeline.hpp); Pipeline refuses to
  /// attach a memo built for different options.
  explicit StageMemo(std::uint64_t options_fingerprint)
      : options_fp_(options_fingerprint) {}

  std::uint64_t options_fingerprint() const { return options_fp_; }

  MemoStats stats() const {
    MemoStats s;
    s.region_hits = region_hits_.load(std::memory_order_relaxed);
    s.region_misses = region_misses_.load(std::memory_order_relaxed);
    s.trace_hits = trace_hits_.load(std::memory_order_relaxed);
    s.trace_misses = trace_misses_.load(std::memory_order_relaxed);
    s.burst_hits = burst_hits_.load(std::memory_order_relaxed);
    s.burst_misses = burst_misses_.load(std::memory_order_relaxed);
    s.stream_hits = stream_hits_.load(std::memory_order_relaxed);
    s.stream_misses = stream_misses_.load(std::memory_order_relaxed);
    s.warm_hits = warm_hits_.load(std::memory_order_relaxed);
    s.warm_misses = warm_misses_.load(std::memory_order_relaxed);
    s.perfect_hits = perfect_hits_.load(std::memory_order_relaxed);
    s.perfect_misses = perfect_misses_.load(std::memory_order_relaxed);
    return s;
  }

  template <typename Fn>
  const trace::Region& region(const apps::AppModel& app, std::size_t phase,
                              Fn&& compute) {
    return lookup("region", regions_mu_, regions_,
                  MemoKey{app_fingerprint(app), phase}, region_hits_,
                  region_misses_, std::forward<Fn>(compute));
  }

  template <typename Fn>
  const trace::AppTrace& trace(const apps::AppModel& app, int ranks,
                               Fn&& compute) {
    return lookup("trace", traces_mu_, traces_,
                  MemoKey{app_fingerprint(app),
                          static_cast<std::uint64_t>(ranks)},
                  trace_hits_, trace_misses_, std::forward<Fn>(compute));
  }

  /// Average concurrency of the burst pre-pass (drives the L3 share).
  template <typename Fn>
  double burst_concurrency(const apps::AppModel& app, int cores,
                           Fn&& compute) {
    return lookup("burst", burst_mu_, burst_,
                  MemoKey{app_fingerprint(app),
                          static_cast<std::uint64_t>(cores)},
                  burst_hits_, burst_misses_, std::forward<Fn>(compute));
  }

  template <typename Fn>
  const KernelStreams& streams(const apps::AppModel& app, std::size_t phase,
                               Fn&& compute) {
    return lookup("stream", streams_mu_, streams_,
                  MemoKey{app_fingerprint(app), phase}, stream_hits_,
                  stream_misses_, std::forward<Fn>(compute));
  }

  /// CPI of the perfect-memory run (stall attribution baseline).
  template <typename Fn>
  double perfect_cpi(const apps::AppModel& app, std::size_t phase,
                     const cpusim::CoreConfig& core, int vector_bits,
                     Fn&& compute) {
    std::uint64_t tag = core_fingerprint(core);
    tag = fnv1a_bytes(&phase, sizeof(phase), tag);
    tag = fnv1a_bytes(&vector_bits, sizeof(vector_bits), tag);
    return lookup("perfect", perfect_mu_, perfect_,
                  MemoKey{app_fingerprint(app), tag}, perfect_hits_,
                  perfect_misses_, std::forward<Fn>(compute));
  }

  /// Key for the post-warm-up hierarchy snapshot: app, phase and the exact
  /// scaled cache geometry (which already folds in the active-core L3
  /// share, itself a function of (app, cores)).
  static MemoKey warm_key(const apps::AppModel& app, std::size_t phase,
                          const cachesim::HierarchyConfig& caches) {
    return {app_fingerprint(app),
            fnv1a_bytes(&phase, sizeof(phase), hierarchy_fingerprint(caches))};
  }

  /// Snapshot of the hierarchy after functional warm-up + reset_stats, or
  /// nullptr (counted as a miss — the caller warms and store_warm()s).
  /// The pointer stays valid while other threads insert: unordered_map
  /// never relocates node storage.
  const cachesim::MemHierarchy* find_warm(const MemoKey& key) {
    {
      std::shared_lock lock(warm_mu_);
      auto it = warm_.find(key);
      if (it != warm_.end()) {
        warm_hits_.fetch_add(1, std::memory_order_relaxed);
        memo_hit("warm");
        return &it->second;
      }
    }
    warm_misses_.fetch_add(1, std::memory_order_relaxed);
    memo_miss("warm");
    return nullptr;
  }

  void store_warm(const MemoKey& key, const cachesim::MemHierarchy& state) {
    std::unique_lock lock(warm_mu_);
    warm_.try_emplace(key, state);  // first wins; identical anyway
  }

 private:
  template <typename Map, typename Fn>
  auto& lookup(const char* table, std::shared_mutex& mu, Map& map,
               const MemoKey& key, std::atomic<std::uint64_t>& hits,
               std::atomic<std::uint64_t>& misses, Fn&& compute) {
    {
      std::shared_lock lock(mu);
      auto it = map.find(key);
      if (it != map.end()) {
        hits.fetch_add(1, std::memory_order_relaxed);
        memo_hit(table);
        return it->second;
      }
    }
    misses.fetch_add(1, std::memory_order_relaxed);
    memo_miss(table);
    // Deterministic compute outside the lock: a racing loser discards a
    // bit-identical value, and callbacks that re-enter the memo (the burst
    // pre-pass builds regions/traces) cannot deadlock.
    auto value = compute();
    std::unique_lock lock(mu);
    return map.try_emplace(key, std::move(value)).first->second;
  }

  std::uint64_t options_fp_;

  std::shared_mutex regions_mu_, traces_mu_, burst_mu_, streams_mu_,
      warm_mu_, perfect_mu_;
  std::unordered_map<MemoKey, trace::Region, MemoKeyHash> regions_;
  std::unordered_map<MemoKey, trace::AppTrace, MemoKeyHash> traces_;
  std::unordered_map<MemoKey, double, MemoKeyHash> burst_;
  std::unordered_map<MemoKey, KernelStreams, MemoKeyHash> streams_;
  std::unordered_map<MemoKey, cachesim::MemHierarchy, MemoKeyHash> warm_;
  std::unordered_map<MemoKey, double, MemoKeyHash> perfect_;

  std::atomic<std::uint64_t> region_hits_{0}, region_misses_{0};
  std::atomic<std::uint64_t> trace_hits_{0}, trace_misses_{0};
  std::atomic<std::uint64_t> burst_hits_{0}, burst_misses_{0};
  std::atomic<std::uint64_t> stream_hits_{0}, stream_misses_{0};
  std::atomic<std::uint64_t> warm_hits_{0}, warm_misses_{0};
  std::atomic<std::uint64_t> perfect_hits_{0}, perfect_misses_{0};
};

}  // namespace musa::core
