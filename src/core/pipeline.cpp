#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.hpp"
#include "common/deadline.hpp"
#include "common/units.hpp"
#include "obs/span.hpp"
#include "cpusim/core_model.hpp"
#include "powersim/power.hpp"
#include "trace/kernel.hpp"
#include "verify/faultpoint.hpp"

namespace musa::core {

namespace {

/// Co-scales a kernel's working sets with the reduced-scale cache factor
/// (capacity ratios preserved; see pipeline.hpp header comment).
trace::KernelProfile scale_profile(const trace::KernelProfile& p,
                                   int factor) {
  trace::KernelProfile s = p;
  s.vec_ws_bytes = std::max<std::uint64_t>(256, p.vec_ws_bytes / factor);
  for (auto& st : s.streams)
    st.ws_bytes = std::max<std::uint64_t>(256, st.ws_bytes / factor);
  return s;
}

cachesim::HierarchyConfig scale_caches(const cachesim::HierarchyConfig& c,
                                       int factor, double l3_share) {
  cachesim::HierarchyConfig s = c;
  s.num_cores = 1;  // detailed mode simulates one core of the node
  // The L1 shrinks by half the factor: its reuse distances are short
  // already, and an over-scaled L1 cannot even hold the per-task resident
  // slice (no application stream sits between 32 kB and 64 kB, so the
  // level-classification of every stream is preserved).
  s.l1.size_bytes = std::max<std::uint64_t>(
      cachesim::kLineBytes * s.l1.ways,
      c.l1.size_bytes / std::max(1, factor / 2));
  s.l2.size_bytes = std::max<std::uint64_t>(
      cachesim::kLineBytes * s.l2.ways, c.l2.size_bytes / factor);
  const auto l3 = static_cast<std::uint64_t>(
      static_cast<double>(c.l3.size_bytes) / factor * l3_share);
  s.l3.size_bytes =
      std::max<std::uint64_t>(cachesim::kLineBytes * s.l3.ways, l3);
  return s;
}

/// Functional cache warm-up: touches the hierarchy with the stream's memory
/// accesses without simulating timing — an order of magnitude cheaper than
/// a timed run, and all the measured run needs is warm array state.
void functional_warm(trace::InstrSource& source,
                     cachesim::MemHierarchy& hierarchy,
                     std::uint64_t instrs) {
  // Bulk path: the take_block cap consumes *exactly* `instrs` instructions,
  // leaving the source positioned where the measured run must begin.
  std::uint64_t left = instrs;
  const isa::Instr* block = nullptr;
  std::size_t n;
  while (left > 0 && (n = source.take_block(
                          &block, static_cast<std::size_t>(left))) > 0) {
    deadline::poll();
    for (std::size_t i = 0; i < n; ++i)
      if (isa::is_mem(block[i].op))
        hierarchy.access(0, block[i].addr,
                         block[i].op == isa::OpClass::kStore);
    left -= n;
  }
  // Sources that cannot hand out blocks fall back to one next() per instr.
  isa::Instr in;
  for (; left > 0 && source.next(in); --left) {
    deadline::poll();
    if (isa::is_mem(in.op))
      hierarchy.access(0, in.addr, in.op == isa::OpClass::kStore);
  }
}

/// Seconds of wall time since `t0`, advancing `t0` to now — one call per
/// stage boundary turns a time point into a stage duration.
double lap_s(std::chrono::steady_clock::time_point& t0) {
  const auto now = std::chrono::steady_clock::now();
  const double s = std::chrono::duration<double>(now - t0).count();
  t0 = now;
  return s;
}

/// Tracer-side twin of lap_s: emits one complete span for the stage that
/// just ended (start `t0_us`, keyed by the point) and returns the timestamp
/// the next stage starts from. No-op while tracing is disarmed.
std::uint64_t trace_lap(const char* stage, const std::string& point,
                        std::uint64_t t0_us) {
  if (!obs::Tracer::enabled()) return 0;
  const std::uint64_t now = obs::Tracer::now_us();
  obs::TraceEvent ev;
  ev.name = stage;
  ev.ts_us = t0_us;
  ev.dur_us = now - t0_us;
  ev.outcome = obs::Outcome::kOk;
  obs::set_event_key(ev, point);
  obs::Tracer::emit(ev);
  return now;
}

/// Node-makespan lumpiness: with few tasks per core, the per-rank region
/// duration varies iteration to iteration (CLT over tasks/core); collectives
/// turn that variance into wait time (see ReplayOptions::region_jitter_sigma).
double makespan_jitter_sigma(const apps::AppModel& app, int cores) {
  if (cores <= 1) return 0.0;
  const double tasks_per_core =
      std::max(1.0, static_cast<double>(app.tasks_per_region) / cores);
  return std::min(0.35, app.task_imbalance / std::sqrt(tasks_per_core));
}

}  // namespace

std::uint64_t pipeline_options_fingerprint(const PipelineOptions& o) {
  std::uint64_t h = fnv1a_bytes(&o.seed, sizeof(o.seed));
  h = fnv1a_bytes(&o.warm_instrs, sizeof(o.warm_instrs), h);
  h = fnv1a_bytes(&o.measure_instrs, sizeof(o.measure_instrs), h);
  h = fnv1a_bytes(&o.cache_scale, sizeof(o.cache_scale), h);
  h = fnv1a_bytes(&o.node_bw_efficiency, sizeof(o.node_bw_efficiency), h);
  return h;
}

Pipeline::Pipeline(PipelineOptions options, std::shared_ptr<StageMemo> memo)
    : options_(options), memo_(std::move(memo)) {
  MUSA_CHECK_MSG(options_.measure_instrs > 0, "need a measured trace slice");
  MUSA_CHECK_MSG(options_.cache_scale >= 1, "cache scale must be >= 1");
  if (memo_)
    MUSA_CHECK_MSG(memo_->options_fingerprint() ==
                       pipeline_options_fingerprint(options_),
                   "stage memo was built for different pipeline options");
}

const trace::Region& Pipeline::region_of(const apps::AppModel& app,
                                         std::size_t phase) {
  auto make = [&] {
    const char* prev = deadline::set_stage("trace");
    verify::fault_point("pipeline.trace", app.name);
    auto region =
        apps::make_region(app.phases().at(phase), options_.seed + phase);
    deadline::set_stage(prev);
    return region;
  };
  if (memo_) return memo_->region(app, phase, make);
  const MemoKey key{app_fingerprint(app), phase};
  auto it = regions_.find(key);
  if (it == regions_.end()) it = regions_.emplace(key, make()).first;
  return it->second;
}

const trace::AppTrace& Pipeline::trace_of(const apps::AppModel& app,
                                          int ranks) {
  auto make = [&] {
    const char* prev = deadline::set_stage("trace");
    verify::fault_point("pipeline.trace", app.name);
    auto trace = apps::make_burst_trace(app, ranks, options_.seed + 1);
    deadline::set_stage(prev);
    return trace;
  };
  if (memo_) return memo_->trace(app, ranks, make);
  const MemoKey key{app_fingerprint(app), static_cast<std::uint64_t>(ranks)};
  auto it = traces_.find(key);
  if (it == traces_.end()) it = traces_.emplace(key, make()).first;
  return it->second;
}

BurstResult Pipeline::run_burst(const apps::AppModel& app, int cores,
                                int ranks, cpusim::NodeResult* node_out,
                                netsim::ReplayResult* replay_out) {
  const std::vector<apps::Phase> phases = app.phases();
  cpusim::RuntimeSim runtime;
  std::vector<double> scales;
  BurstResult out;

  for (std::size_t ph = 0; ph < phases.size(); ++ph) {
    const trace::Region& region = region_of(app, ph);
    // Hardware-agnostic: per-task duration straight from the reference trace.
    const std::vector<cpusim::TaskTiming> timing = {
        {.seconds_per_work =
             phases[ph].ref_region_seconds / region.total_work(),
         .mem_stall_frac = 0.0,
         .dram_gbps = 0.0}};
    const cpusim::NodeResult node = runtime.run(
        region, timing,
        {.cores = cores, .dispatch_overhead_s = app.dispatch_overhead_s,
         .bw_capacity_gbps = 0.0});
    out.region_seconds += node.seconds;
    scales.push_back(node.seconds / phases[ph].ref_region_seconds);
    if (node_out && ph == 0) *node_out = node;
  }

  netsim::DimemasEngine net(options_.network);
  netsim::ReplayOptions ropts;
  ropts.region_scale = std::move(scales);
  ropts.region_jitter_sigma = makespan_jitter_sigma(app, cores);
  ropts.record_timeline = replay_out != nullptr;
  const netsim::ReplayResult replay = net.replay(trace_of(app, ranks), ropts);
  out.wall_seconds = replay.total_seconds;

  if (replay_out) *replay_out = replay;
  return out;
}

Pipeline::DetailedTiming Pipeline::simulate_kernel(
    const apps::AppModel& app, std::size_t phase_index,
    const apps::Phase& phase, const MachineConfig& config,
    double active_cores) {
  const Frequency freq{config.freq_ghz};

  // The detailed simulation models one core of the node; the shared L3 is
  // represented by this core's capacity share given the cores that are
  // actually populated with tasks (idle cores do not pollute the L3).
  const double l3_share =
      config.cores > 1 ? 1.0 / std::max(1.0, active_cores) : 1.0;
  const cachesim::HierarchyConfig caches =
      scale_caches(config.cache_config(1), options_.cache_scale, l3_share);

  const trace::KernelProfile profile =
      scale_profile(phase.kernel, options_.cache_scale);

  // The DRAM system is genuinely per-point (technology, channels and the
  // active-core bandwidth share all vary), so it is never memoized.
  verify::fault_point("dram.sim", app.name + "|" + config.id());
  dramsim::DramTiming dram_timing = dramsim::timing_for(config.mem_tech);
  if (config.cores > 1)
    dram_timing.bytes_per_clock /= std::max(1.0, active_cores);
  dramsim::DramSystem dram(dram_timing, config.mem_channels);

  const cpusim::CoreRunOptions measure_opts{
      .vector_bits = config.vector_bits,
      .single_step = options_.single_step_core};
  const cpusim::CoreRunOptions perfect_opts{
      .vector_bits = config.vector_bits,
      .perfect_memory = true,
      .single_step = options_.single_step_core};

  // The perfect-memory attribution run converges on a quarter slice, but
  // the slice must never round down to zero instructions (measure_instrs
  // < 4): a 0-budget stream would make perfect_cpi 0/0 = NaN, and the
  // mem_stall_frac clamp on NaN is unspecified.
  const std::uint64_t perfect_slice =
      std::max<std::uint64_t>(1, options_.measure_instrs / 4);
  auto perfect_cpi_of = [&](const cpusim::CoreStats& pstats) {
    if (pstats.scalar_instrs == 0)
      throw SimError("perfect-memory run produced no instructions at point " +
                         app.name + "|" + config.id(),
                     ErrorClass::kConfig, "kernel");
    return pstats.cycles / static_cast<double>(pstats.scalar_instrs);
  };

  // --- Measured run (after cache warm-up) --------------------------------
  // The detailed simulation models one core of the node, so it sees its
  // *share* of the memory system: the data bus time-multiplexes across the
  // cores that actually hold tasks. Queueing near the bandwidth wall (the
  // lever behind LULESH's 8-channel gains, and the reason wider OoO cannot
  // buy more MLP on saturated channels) then emerges inside the DRAM model
  // itself rather than from an analytic correction.
  cpusim::CoreStats stats;
  double perfect_cpi = 0.0;
  if (memo_) {
    // Memoized path: replay the materialized per-(app, phase) stream, start
    // the measured run from the memoized post-warm-up cache snapshot, and
    // reuse the perfect-memory CPI across the dimensions it ignores. Every
    // reused value is bit-identical to what the branch below recomputes
    // (stage_memo.hpp explains why), as TestStageMemo proves.
    const StageMemo::KernelStreams& streams =
        memo_->streams(app, phase_index, [&] {
          StageMemo::KernelStreams s;
          trace::KernelSource full(
              profile, options_.warm_instrs + options_.measure_instrs,
              options_.seed * 7919 + 17);
          for (isa::Instr in; full.next(in);) s.full.push_back(in);
          trace::KernelSource perfect(profile, perfect_slice,
                                      options_.seed * 7919 + 17);
          for (isa::Instr in; perfect.next(in);) s.perfect.push_back(in);
          return s;
        });
    MUSA_DCHECK_MSG(streams.full.size() >= options_.warm_instrs,
                    "kernel stream shorter than the warm-up slice");

    const MemoKey wkey = StageMemo::warm_key(app, phase_index, caches);
    const cachesim::MemHierarchy* snapshot = memo_->find_warm(wkey);
    cachesim::MemHierarchy hierarchy =
        snapshot ? *snapshot : cachesim::MemHierarchy(caches);
    if (snapshot == nullptr) {
      trace::SpanSource warm_source(streams.full);
      functional_warm(warm_source, hierarchy, options_.warm_instrs);
      hierarchy.reset_stats();
      memo_->store_warm(wkey, hierarchy);
    }

    cpusim::CoreModel core(config.core, freq, hierarchy, dram);
    // Positioned exactly where functional_warm left the generator stream.
    trace::SpanSource source(streams.full, options_.warm_instrs);
    stats = core.run(source, measure_opts);

    // --- Perfect-memory run (memory stall attribution) -------------------
    perfect_cpi = memo_->perfect_cpi(
        app, phase_index, config.core, config.vector_bits, [&] {
          cachesim::MemHierarchy perfect_hierarchy(caches);
          dramsim::DramSystem perfect_dram(
              dramsim::timing_for(config.mem_tech), 1);
          trace::SpanSource psource(streams.perfect);
          cpusim::CoreModel pcore(config.core, freq, perfect_hierarchy,
                                  perfect_dram);
          const cpusim::CoreStats pstats = pcore.run(psource, perfect_opts);
          return perfect_cpi_of(pstats);
        });
  } else {
    cachesim::MemHierarchy hierarchy(caches);
    trace::KernelSource source(
        profile, options_.warm_instrs + options_.measure_instrs,
        options_.seed * 7919 + 17);
    cpusim::CoreModel core(config.core, freq, hierarchy, dram);

    functional_warm(source, hierarchy, options_.warm_instrs);
    hierarchy.reset_stats();
    dram.reset_counters();

    stats = core.run(source, measure_opts);

    // --- Perfect-memory run (memory stall attribution) -------------------
    // A quarter slice converges: the perfect-memory CPI is stationary.
    cachesim::MemHierarchy ph(caches);  // untouched under perfect_memory
    dramsim::DramSystem pd(dramsim::timing_for(config.mem_tech), 1);
    trace::KernelSource psource(profile, perfect_slice,
                                options_.seed * 7919 + 17);
    cpusim::CoreModel pcore(config.core, freq, ph, pd);
    const cpusim::CoreStats pstats = pcore.run(psource, perfect_opts);
    perfect_cpi = perfect_cpi_of(pstats);
  }
  MUSA_CHECK_MSG(stats.scalar_instrs > 0, "kernel produced no instructions");

  DetailedTiming out;
  const auto instrs = static_cast<double>(stats.scalar_instrs);
  const double cpi = stats.cycles / instrs;
  out.ipc = 1.0 / cpi;
  out.task.seconds_per_work = cpi * phase.task_instrs / freq.hz();
  out.task.mem_stall_frac =
      std::clamp(1.0 - perfect_cpi / cpi, 0.0, 0.98);
  out.task.dram_gbps = stats.dram_gbps(freq);
  out.mpki_l1 = stats.mpki_l1();
  out.mpki_l2 = stats.mpki_l2();
  out.mpki_l3 = stats.mpki_l3();
  for (int c = 0; c < isa::kNumOpClasses; ++c) {
    out.ops_per_instr[c] = static_cast<double>(stats.class_ops[c]) / instrs;
    out.lanes_per_instr[c] =
        static_cast<double>(stats.class_lanes[c]) / instrs;
  }
  out.l1_acc_per_instr = static_cast<double>(stats.l1_accesses) / instrs;
  out.l2_acc_per_instr = static_cast<double>(stats.l2_accesses) / instrs;
  out.l3_acc_per_instr = static_cast<double>(stats.l3_accesses) / instrs;
  out.dram_req_per_instr =
      static_cast<double>(stats.dram_reads + stats.dram_writes) / instrs;
  const double scale = 1e6 / instrs;
  out.dram_per_minstr.acts =
      static_cast<std::uint64_t>(stats.dram.acts * scale);
  out.dram_per_minstr.pres =
      static_cast<std::uint64_t>(stats.dram.pres * scale);
  out.dram_per_minstr.reads =
      static_cast<std::uint64_t>(stats.dram.reads * scale);
  out.dram_per_minstr.writes =
      static_cast<std::uint64_t>(stats.dram.writes * scale);
  out.dram_per_minstr.refreshes =
      static_cast<std::uint64_t>(stats.dram.refreshes * scale);
  return out;
}

SimResult Pipeline::run(const apps::AppModel& app,
                        const MachineConfig& config) {
  MUSA_CHECK_MSG(config.cores >= 1 && config.ranks >= 1, "bad machine size");
  const std::vector<apps::Phase> phases = app.phases();
  const std::string point = app.name + "|" + config.id();

  // Burst-mode pre-pass estimates how many cores actually hold tasks
  // (drives the L3 capacity share in detailed mode). It depends only on
  // (app, cores) — 3 distinct values per app across the whole sweep — so
  // with a memo attached the full pre-pass runs once per pair.
  auto stage_t0 = std::chrono::steady_clock::now();
  std::uint64_t span_t0 = obs::Tracer::now_us();
  deadline::set_stage("burst");
  verify::fault_point("pipeline.burst", point);
  double burst_concurrency = 0.0;
  if (memo_) {
    burst_concurrency = memo_->burst_concurrency(app, config.cores, [&] {
      cpusim::NodeResult burst_node;
      run_burst(app, config.cores, /*ranks=*/1, &burst_node, nullptr);
      return burst_node.avg_concurrency;
    });
  } else {
    cpusim::NodeResult burst_node;
    run_burst(app, config.cores, /*ranks=*/1, &burst_node, nullptr);
    burst_concurrency = burst_node.avg_concurrency;
  }
  stage_times_.burst_s += lap_s(stage_t0);
  span_t0 = trace_lap("burst", point, span_t0);
  const double active_cores = std::clamp(
      burst_concurrency, 1.0, static_cast<double>(config.cores));

  // --- Detailed + node level, per compute region ---------------------------
  cpusim::RuntimeSim runtime;
  std::vector<double> scales;
  double region_seconds = 0.0;
  double node_instrs = 0.0;         // Σ task instructions over all regions
  double busy_seconds = 0.0;
  double concurrency_weighted = 0.0;
  double contention_max = 1.0;
  double mem_bytes = 0.0;
  double dram_req = 0.0;            // DRAM line transactions, node level
  powersim::NodeActivity activity;  // accumulated as rates below
  dramsim::DramCounters node_dram;
  double mpki_l1 = 0, mpki_l2 = 0, mpki_l3 = 0, ipc = 0;

  deadline::set_stage("kernel");
  verify::fault_point("pipeline.kernel", point);
  struct PhaseOutcome {
    DetailedTiming detail;
    cpusim::NodeResult node;
    double instrs;
  };
  std::vector<PhaseOutcome> outcomes;
  for (std::size_t phi = 0; phi < phases.size(); ++phi) {
    const apps::Phase& phase = phases[phi];
    const trace::Region& region = region_of(app, phi);
    const DetailedTiming detail =
        simulate_kernel(app, phi, phase, config, active_cores);
    const cpusim::NodeResult node = runtime.run(
        region, {detail.task},
        {.cores = config.cores,
         .dispatch_overhead_s = app.dispatch_overhead_s,
         .bw_capacity_gbps = 0.0});

    const double instrs = phase.task_instrs * region.total_work();
    outcomes.push_back({detail, node, instrs});
    scales.push_back(node.seconds / phase.ref_region_seconds);
    region_seconds += node.seconds;
    node_instrs += instrs;
    busy_seconds += node.busy_seconds;
    concurrency_weighted += node.avg_concurrency * node.seconds;
    contention_max = std::max(contention_max, node.contention_factor);
    mem_bytes += node.mem_gbps * 1e9 * node.seconds;
  }

  // Weighted aggregation over regions (rates weighted by region time,
  // counts by instructions).
  for (const auto& o : outcomes) {
    const double w = o.instrs / node_instrs;
    mpki_l1 += o.detail.mpki_l1 * w;
    mpki_l2 += o.detail.mpki_l2 * w;
    mpki_l3 += o.detail.mpki_l3 * w;
    ipc += o.detail.ipc * w;
    dram_req += o.detail.dram_req_per_instr * o.instrs;
    const double minstr = o.instrs / 1e6;
    node_dram.acts += static_cast<std::uint64_t>(
        static_cast<double>(o.detail.dram_per_minstr.acts) * minstr);
    node_dram.reads += static_cast<std::uint64_t>(
        static_cast<double>(o.detail.dram_per_minstr.reads) * minstr);
    node_dram.writes += static_cast<std::uint64_t>(
        static_cast<double>(o.detail.dram_per_minstr.writes) * minstr);
    node_dram.refreshes += static_cast<std::uint64_t>(
        static_cast<double>(o.detail.dram_per_minstr.refreshes) * minstr);
    for (int c = 0; c < isa::kNumOpClasses; ++c) {
      activity.ops_s[c] +=
          o.detail.ops_per_instr[c] * o.instrs / region_seconds;
      activity.lanes_s[c] +=
          o.detail.lanes_per_instr[c] * o.instrs / region_seconds;
    }
    activity.l1_access_s +=
        o.detail.l1_acc_per_instr * o.instrs / region_seconds;
    activity.l2_access_s +=
        o.detail.l2_acc_per_instr * o.instrs / region_seconds;
    activity.l3_access_s +=
        o.detail.l3_acc_per_instr * o.instrs / region_seconds;
  }
  activity.active_cores = concurrency_weighted / region_seconds;
  activity.total_cores = config.cores;
  stage_times_.kernel_s += lap_s(stage_t0);
  span_t0 = trace_lap("kernel", point, span_t0);

  // --- Machine level: MPI replay ------------------------------------------
  deadline::set_stage("replay");
  verify::fault_point("pipeline.replay", point);
  netsim::DimemasEngine net(options_.network);
  netsim::ReplayOptions ropts;
  ropts.region_scale = std::move(scales);
  ropts.region_jitter_sigma = makespan_jitter_sigma(app, config.cores);
  const netsim::ReplayResult replay =
      net.replay(trace_of(app, config.ranks), ropts);
  stage_times_.replay_s += lap_s(stage_t0);
  span_t0 = trace_lap("replay", point, span_t0);

  // --- Power ---------------------------------------------------------------
  deadline::set_stage("power");
  verify::fault_point("pipeline.power", point);
  const powersim::CorePower core_power(config.core, config.vector_bits,
                                       config.freq_ghz);
  const powersim::CachePower cache_power(config.cache_config(config.cores),
                                         config.freq_ghz);

  SimResult r;
  r.app = app.name;
  r.config = config;
  r.region_seconds = region_seconds;
  r.wall_seconds = replay.total_seconds;
  r.ipc = ipc;
  r.avg_concurrency = activity.active_cores;
  r.busy_fraction = busy_seconds / (region_seconds * config.cores);
  r.contention_factor = contention_max;
  r.mpki_l1 = mpki_l1;
  r.mpki_l2 = mpki_l2;
  r.mpki_l3 = mpki_l3;
  r.gmem_req_s = dram_req / region_seconds / 1e9;
  r.mem_gbps = mem_bytes / region_seconds / 1e9;

  r.core_l1_w = core_power.evaluate_w(activity);
  r.l2_l3_w = cache_power.evaluate_w(activity);
  if (config.mem_tech == dramsim::MemTech::kHbm2) {
    // The paper could not report HBM energy (no vendor power data, §V-D);
    // we follow the same convention.
    r.dram_power_known = false;
    r.dram_w = 0.0;
  } else {
    const powersim::DramPower dram_power(
        powersim::DramPower::dimms_for_channels(config.mem_channels));
    r.dram_w = dram_power.evaluate_w(node_dram, region_seconds);
  }
  r.node_w = r.core_l1_w + r.l2_l3_w + r.dram_w;
  r.energy_j = r.dram_power_known ? r.node_w * r.wall_seconds : 0.0;
  stage_times_.power_s += lap_s(stage_t0);
  trace_lap("power", point, span_t0);
  ++stage_times_.points;
  return r;
}

}  // namespace musa::core
