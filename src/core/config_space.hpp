// The architectural design space (paper Table I) and the unconventional
// application-specific configurations (paper Table II), plus the axis-wise
// grid description (SpaceAxes) the static space analyzer
// (verify/space_analysis.hpp) reasons over without enumerating points.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "cpusim/core_config.hpp"
#include "dramsim/timing.hpp"

namespace musa::core {

/// One simulated machine point: node microarchitecture + scale.
struct MachineConfig {
  cpusim::CoreConfig core = cpusim::core_medium();
  std::string cache_label = "32M:256K";
  double freq_ghz = 2.0;
  int vector_bits = 128;
  int mem_channels = 4;
  dramsim::MemTech mem_tech = dramsim::MemTech::kDdr4_2333;
  int cores = 32;   // cores per node
  int ranks = 256;  // MPI ranks (one per node)

  /// L2/L3 configuration for this label, sized for `num_cores` L2s.
  cachesim::HierarchyConfig cache_config(int num_cores) const;

  /// Unique identifier, e.g. "medium|32M:256K|2.0GHz|128b|4ch-DDR4-2333|32c".
  std::string id() const;

  /// The key used to find a config's normalisation partner: the id with the
  /// named dimension blanked out (dimension ∈ {core, cache, freq, vector,
  /// channels, cores}).
  std::string id_without(const std::string& dimension) const;

  /// Inverse of id(): parses "core|cache|F.FGHz|Nb|Nch-TECH|Nc" back into a
  /// config (ranks, which the id does not carry, defaults to 256). Throws
  /// SimError naming the broken field; `dse_lint --explain` uses this to
  /// lint a point given on the command line.
  static MachineConfig parse_id(const std::string& id);
};

/// Axis-wise description of a rectangular design-space grid: the set of
/// candidate values per dimension, whose cross product is the space. The
/// paper's 864-point grid and the ≥10⁶-point extended grid are both
/// instances; the static analyzer (verify/space_analysis.hpp) classifies
/// whole sub-boxes of such a grid against the constraint rules without
/// visiting individual points.
///
/// Dimension order is fixed (core outermost .. ranks innermost) and the
/// linear index is row-major over it, so enumerating a SpaceAxes whose axes
/// equal the paper grid yields configs in exactly the
/// ConfigSpace::full_space() order — cache and journal keys line up.
struct SpaceAxes {
  static constexpr int kDims = 8;
  enum : int {
    kDimCore = 0,
    kDimCache = 1,
    kDimFreq = 2,
    kDimVector = 3,
    kDimChannels = 4,
    kDimTech = 5,
    kDimCores = 6,
    kDimRanks = 7,
  };

  std::vector<cpusim::CoreConfig> core_presets;
  std::vector<std::string> cache_labels;
  std::vector<double> freqs_ghz;
  std::vector<int> vector_bits;
  std::vector<int> mem_channels;
  std::vector<dramsim::MemTech> mem_techs;
  std::vector<int> core_counts;
  std::vector<int> rank_counts;

  /// The paper's Table I grid as axes: 4 × 3 × 4 × 3 × 2 × 1 × 3 × 1 = 864.
  static SpaceAxes paper();

  /// A ≥10⁶-point extended grid (ROADMAP item 2): every memory technology,
  /// 0.5–6.0 GHz in 0.1 steps, vector widths 32–8192, 1–128 channels and
  /// 1–2048 cores. Deliberately contains infeasible regions (vector widths
  /// outside [64, 4096], 128 channels, 2048 cores, aggregate-L2-vs-L3
  /// overflows at high core counts) so the analyzer has something to prune.
  static SpaceAxes extended();

  std::uint64_t points() const;
  int dim_size(int dim) const;
  static const char* dim_name(int dim);

  /// Human-readable value of one axis entry, e.g. "2.0GHz" or "DDR4-2333".
  std::string value_name(int dim, int index) const;

  /// Config at a per-dimension index tuple / row-major linear index.
  MachineConfig config_at(const std::array<int, kDims>& idx) const;
  MachineConfig config_at(std::uint64_t linear) const;
  std::uint64_t linear_of(const std::array<int, kDims>& idx) const;
};

/// Enumerates the paper's 864-point grid:
/// 4 OoO × 3 caches × 4 frequencies × 3 vector widths × 2 channel counts ×
/// 3 core counts.
class ConfigSpace {
 public:
  static const std::vector<std::string>& cache_labels();
  static const std::vector<double>& frequencies();
  static const std::vector<int>& vector_widths();
  static const std::vector<int>& channel_counts();
  static const std::vector<int>& core_counts();

  /// All 864 configurations, 256 ranks each.
  static std::vector<MachineConfig> full_space();

  /// The best-performing conventional point used as the Table II baseline.
  static MachineConfig dse_best(const std::string& app_name);

  /// Table II rows: (label, config) pairs for SPMZ and LULESH.
  static std::vector<std::pair<std::string, MachineConfig>>
  unconventional(const std::string& app_name);
};

}  // namespace musa::core
