// The architectural design space (paper Table I) and the unconventional
// application-specific configurations (paper Table II).
#pragma once

#include <string>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "cpusim/core_config.hpp"
#include "dramsim/timing.hpp"

namespace musa::core {

/// One simulated machine point: node microarchitecture + scale.
struct MachineConfig {
  cpusim::CoreConfig core = cpusim::core_medium();
  std::string cache_label = "32M:256K";
  double freq_ghz = 2.0;
  int vector_bits = 128;
  int mem_channels = 4;
  dramsim::MemTech mem_tech = dramsim::MemTech::kDdr4_2333;
  int cores = 32;   // cores per node
  int ranks = 256;  // MPI ranks (one per node)

  /// L2/L3 configuration for this label, sized for `num_cores` L2s.
  cachesim::HierarchyConfig cache_config(int num_cores) const;

  /// Unique identifier, e.g. "medium|32M:256K|2.0GHz|128b|4ch-DDR4-2333|32c".
  std::string id() const;

  /// The key used to find a config's normalisation partner: the id with the
  /// named dimension blanked out (dimension ∈ {core, cache, freq, vector,
  /// channels, cores}).
  std::string id_without(const std::string& dimension) const;
};

/// Enumerates the paper's 864-point grid:
/// 4 OoO × 3 caches × 4 frequencies × 3 vector widths × 2 channel counts ×
/// 3 core counts.
class ConfigSpace {
 public:
  static const std::vector<std::string>& cache_labels();
  static const std::vector<double>& frequencies();
  static const std::vector<int>& vector_widths();
  static const std::vector<int>& channel_counts();
  static const std::vector<int>& core_counts();

  /// All 864 configurations, 256 ranks each.
  static std::vector<MachineConfig> full_space();

  /// The best-performing conventional point used as the Table II baseline.
  static MachineConfig dse_best(const std::string& app_name);

  /// Table II rows: (label, config) pairs for SPMZ and LULESH.
  static std::vector<std::pair<std::string, MachineConfig>>
  unconventional(const std::string& app_name);
};

}  // namespace musa::core
