// The MUSA multiscale simulation pipeline (the paper's contribution).
//
// For one (application, machine configuration) pair it chains every
// substrate, exactly mirroring §II "Simulation":
//
//   1. detailed mode — the application's sampled kernel trace runs through
//      the vector-fusion pass and the OoO core model against the configured
//      cache hierarchy and DRAM system, yielding per-task timing, stall
//      attribution and activity counters;
//   2. the simulated runtime system schedules the region's task instances
//      onto the configured number of cores (with dispatch overhead and
//      memory-bandwidth contention) → region duration at node level;
//   3. the Dimemas-style engine replays the 256-rank MPI burst trace with
//      compute bursts rescaled by (2) → application wall time;
//   4. the McPAT/DRAMPower-like models convert activity rates into the
//      paper's three power components and energy-to-solution.
//
// Burst mode ("hardware-agnostic", §V-A) runs steps 2–3 with task durations
// taken directly from the reference trace, skipping the microarchitecture.
//
// Reduced-scale caches: L2/L3 capacities *and* application working sets are
// co-scaled by 1/8 (L1 by 1/4) so that reuse distances fall inside the
// sampled trace window (DESIGN.md §8). Miss ratios and every capacity ratio
// the paper sweeps are preserved; Table I sizes are reported unscaled.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/apps.hpp"
#include "core/config_space.hpp"
#include "core/stage_memo.hpp"
#include "cpusim/runtime.hpp"
#include "dramsim/dram.hpp"
#include "isa/instr.hpp"
#include "netsim/dimemas.hpp"

namespace musa::core {

/// Everything one simulation point produces.
struct SimResult {
  std::string app;
  MachineConfig config;

  // Performance.
  double region_seconds = 0.0;  // compute region at node level
  double wall_seconds = 0.0;    // full application, 256 ranks
  double ipc = 0.0;             // single-core detailed IPC
  double avg_concurrency = 0.0;
  double busy_fraction = 0.0;
  double contention_factor = 1.0;

  // Memory profile (Fig. 1).
  double mpki_l1 = 0.0, mpki_l2 = 0.0, mpki_l3 = 0.0;
  double gmem_req_s = 0.0;  // node-level giga-requests/s to DRAM
  double mem_gbps = 0.0;    // achieved node DRAM bandwidth

  // Power/energy (Figs 5–9 b/c).
  double core_l1_w = 0.0;
  double l2_l3_w = 0.0;
  double dram_w = 0.0;
  bool dram_power_known = true;  // false for HBM (paper lacks data too)
  double node_w = 0.0;
  double energy_j = 0.0;  // node power × wall time
};

/// Burst-mode (hardware-agnostic) outcome for the scaling study (Fig. 2).
struct BurstResult {
  double region_seconds = 0.0;  // single compute region, node level
  double wall_seconds = 0.0;    // full parallel region incl. MPI
};

/// Wall-clock attribution of run() calls to pipeline stages, accumulated
/// per Pipeline instance; the DSE engine merges the per-worker totals into
/// its sweep report so throughput regressions are attributable to a stage.
struct StageTimes {
  double burst_s = 0.0;   // hardware-agnostic pre-pass (active-core estimate)
  double kernel_s = 0.0;  // detailed core/cache/DRAM simulation
  double replay_s = 0.0;  // machine-level MPI replay
  double power_s = 0.0;   // power/energy models
  std::uint64_t points = 0;  // full-pipeline simulations timed

  double total_s() const { return burst_s + kernel_s + replay_s + power_s; }
  void merge(const StageTimes& o) {
    burst_s += o.burst_s;
    kernel_s += o.kernel_s;
    replay_s += o.replay_s;
    power_s += o.power_s;
    points += o.points;
  }
};

struct PipelineOptions {
  std::uint64_t warm_instrs = 320'000;    // functional warm-up slice
  std::uint64_t measure_instrs = 256'000;  // measured detailed slice
  int cache_scale = 8;                    // reduced-scale factor (§8)
  double node_bw_efficiency = 0.63;       // usable fraction of peak DRAM BW
  netsim::NetworkConfig network;          // MareNostrum IV-like defaults
  std::uint64_t seed = 1;
  /// Force the core model's retained single-step reference path instead of
  /// the batched block replay. Results are bit-identical either way (the
  /// equivalence property test proves it per core run; sweep_bench proves
  /// it across the full space) — this knob exists so sweep_bench can
  /// measure the block path's kernel-stage speedup against the reference.
  /// Deliberately excluded from the options fingerprint: memoized stage
  /// values do not depend on it.
  bool single_step_core = false;
};

/// Fingerprint of every option a memoized stage value depends on (seed,
/// slice sizes, cache scale, bandwidth efficiency — the network config only
/// affects the replay stage, which is never memoized). A StageMemo carries
/// the fingerprint it was built for and Pipeline refuses a mismatch.
std::uint64_t pipeline_options_fingerprint(const PipelineOptions& options);

class Pipeline {
 public:
  /// With a `memo`, the redundant stages (burst pre-pass, kernel stream
  /// generation, cache warm-up state, perfect-memory run, region/trace
  /// building) are shared across every Pipeline attached to the same memo
  /// — bit-identical results, see stage_memo.hpp. Without one, every
  /// stage recomputes per point exactly as before (`run_dse --no-memo`).
  explicit Pipeline(PipelineOptions options = {},
                    std::shared_ptr<StageMemo> memo = nullptr);

  /// Full multiscale simulation of one design point.
  SimResult run(const apps::AppModel& app, const MachineConfig& config);

  /// Hardware-agnostic simulation (paper §V-A): task durations straight
  /// from the reference trace; optionally record timelines for Figs 3/4.
  BurstResult run_burst(const apps::AppModel& app, int cores, int ranks,
                        cpusim::NodeResult* node_out = nullptr,
                        netsim::ReplayResult* replay_out = nullptr);

  const PipelineOptions& options() const { return options_; }

  /// The attached stage memo (null when memoization is off).
  const std::shared_ptr<StageMemo>& memo() const { return memo_; }

  /// Cumulative per-stage wall time of every run() on this instance.
  const StageTimes& stage_times() const { return stage_times_; }
  void reset_stage_times() { stage_times_ = StageTimes{}; }

 private:
  struct DetailedTiming {
    cpusim::TaskTiming task;
    double ipc = 0.0;
    double mpki_l1 = 0.0, mpki_l2 = 0.0, mpki_l3 = 0.0;
    // Per scalar instruction, for node-level scaling.
    std::array<double, isa::kNumOpClasses> ops_per_instr{};
    std::array<double, isa::kNumOpClasses> lanes_per_instr{};
    double l1_acc_per_instr = 0.0, l2_acc_per_instr = 0.0,
           l3_acc_per_instr = 0.0;
    double dram_req_per_instr = 0.0;  // reads + write-backs
    dramsim::DramCounters dram_per_minstr;  // commands per 1e6 instrs
  };

  DetailedTiming simulate_kernel(const apps::AppModel& app,
                                 std::size_t phase_index,
                                 const apps::Phase& phase,
                                 const MachineConfig& config,
                                 double active_cores);

  const trace::Region& region_of(const apps::AppModel& app,
                                 std::size_t phase);
  const trace::AppTrace& trace_of(const apps::AppModel& app, int ranks);

  PipelineOptions options_;
  std::shared_ptr<StageMemo> memo_;
  StageTimes stage_times_;
  // Private per-instance caches used when no shared memo is attached,
  // keyed by (app fingerprint, phase/ranks) — no string building per call.
  std::unordered_map<MemoKey, trace::Region, MemoKeyHash> regions_;
  std::unordered_map<MemoKey, trace::AppTrace, MemoKeyHash> traces_;
};

}  // namespace musa::core
