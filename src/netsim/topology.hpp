// Network topologies for the replay engine.
//
// Dimemas models an abstract latency/bandwidth network; production machines
// differ mostly in *distance* (hop count) and shared-medium contention.
// This module adds the classical topologies so network sensitivity can be
// studied (the paper's related work — CODES — focuses on exactly this):
//
//   kCrossbar — non-blocking, every pair one hop (the paper's baseline,
//               MareNostrum-like fat network),
//   kBus      — single shared medium: all transfers serialise,
//   kTorus2D  — square 2-D torus, Manhattan-with-wraparound hop distance,
//   kFatTree  — two-level switch hierarchy of the given radix: 2 hops
//               inside a leaf switch, 4 hops across.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace musa::netsim {

enum class Topology : std::uint8_t { kCrossbar, kBus, kTorus2D, kFatTree };

constexpr const char* topology_name(Topology t) {
  switch (t) {
    case Topology::kCrossbar: return "crossbar";
    case Topology::kBus: return "bus";
    case Topology::kTorus2D: return "torus2d";
    case Topology::kFatTree: return "fat-tree";
  }
  return "?";
}

/// Switch radix used by kFatTree leaf switches.
constexpr int kFatTreeRadix = 16;

/// Hop count between two ranks for a topology with P nodes.
int hop_count(Topology topology, int src, int dst, int nodes);

/// Network diameter (worst-case hops) — used for collective cost scaling.
int diameter(Topology topology, int nodes);

}  // namespace musa::netsim
