#include "netsim/dimemas.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "common/check.hpp"
#include "common/deadline.hpp"
#include "common/rng.hpp"

namespace musa::netsim {

namespace {

/// Deterministic ~N(1, sigma) factor for burst `idx` of `rank`.
double jitter_factor(int rank, int idx, double sigma) {
  if (sigma <= 0.0) return 1.0;
  Rng rng((static_cast<std::uint64_t>(rank) << 24) ^
          (static_cast<std::uint64_t>(idx) * 0x9e3779b9ull) ^
          0x51c0ffeeull);
  return std::max(0.3, rng.next_normal(1.0, sigma));
}

struct Message {
  double arrival = 0.0;
};

struct Collective {
  int entered = 0;
  double max_enter = 0.0;
  double completion = -1.0;  // < 0 until all ranks entered
};

struct PendingReq {
  bool is_recv = false;
  int peer = -1;
  double completion = -1.0;  // resolved completion; < 0 = unmatched recv
};

struct RankState {
  std::size_t ip = 0;   // next event index
  double t = 0.0;
  bool done = false;
  int collectives_crossed = 0;
  std::unordered_map<int, PendingReq> reqs;
};

int ceil_log2(int p) {
  int bits = 0;
  int v = 1;
  while (v < p) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

ReplayResult DimemasEngine::replay(const trace::AppTrace& app,
                                   const ReplayOptions& options) const {
  const int P = app.num_ranks();
  MUSA_CHECK_MSG(P >= 1, "trace has no ranks");

  auto scale_of = [&](int region_id) {
    if (region_id >= 0 &&
        static_cast<std::size_t>(region_id) < options.region_scale.size())
      return options.region_scale[region_id];
    return 1.0;
  };

  std::vector<RankState> st(P);
  // Per (src,dst) in-flight message queues; key = src * P + dst.
  std::unordered_map<std::int64_t, std::deque<Message>> channels;
  std::vector<double> out_link_free(P, 0.0);
  std::vector<Collective> collectives;
  double bus_free = 0.0;  // shared medium (Topology::kBus only)

  ReplayResult result;
  result.ranks.resize(P);

  const int tree_depth = std::max(1, ceil_log2(P));

  auto push_seg = [&](int rank, double start, double end, RankSeg::Kind k) {
    if (options.record_timeline && end > start)
      result.timeline.push_back(
          {.rank = rank, .start = start, .end = end, .kind = k});
  };

  // Sender-side transfer: serialises on the rank's output link (and, for a
  // bus topology, on the shared medium); latency scales with the topology's
  // hop distance. Returns the message's arrival time at the destination and
  // the time the *sender* may continue (injection for eager, full transfer
  // for rendezvous).
  auto transmit = [&](int src, int dst, double post_t, std::uint64_t bytes,
                      double& sender_continue) {
    const double inject = static_cast<double>(bytes) /
                          (config_.bandwidth_gbps * 1e9);
    double start = std::max(post_t, out_link_free[src]);
    if (config_.topology == Topology::kBus) {
      start = std::max(start, bus_free);
      bus_free = start + inject;
    }
    out_link_free[src] = start + inject;
    const int hops = hop_count(config_.topology, src, dst, P);
    const double arrival = start + config_.latency_s * hops + inject;
    sender_continue = bytes <= config_.eager_threshold ? start + inject
                                                       : arrival;
    return arrival;
  };

  bool all_done = false;
  while (!all_done) {
    deadline::poll();
    bool progress = false;
    all_done = true;

    for (int r = 0; r < P; ++r) {
      RankState& s = st[r];
      if (s.done) continue;
      const auto& events = app.ranks[r].events;

      // Advance this rank until it blocks or drains.
      while (s.ip < events.size()) {
        const trace::BurstEvent& e = events[s.ip];

        if (e.kind == trace::BurstEvent::Kind::kCompute) {
          const double d = e.seconds * scale_of(e.region_id) *
                           jitter_factor(r, static_cast<int>(s.ip),
                                         options.region_jitter_sigma);
          push_seg(r, s.t, s.t + d, RankSeg::Kind::kCompute);
          result.ranks[r].compute_s += d;
          s.t += d;
          ++s.ip;
          progress = true;
          continue;
        }

        const double entry = s.t;
        bool blocked = false;
        switch (e.op) {
          case trace::MpiOp::kSend:
          case trace::MpiOp::kIsend: {
            double cont = entry;
            const double arrival = transmit(r, e.peer, entry, e.bytes, cont);
            channels[static_cast<std::int64_t>(r) * P + e.peer].push_back(
                {arrival});
            if (e.op == trace::MpiOp::kSend) {
              s.t = cont;
            } else {
              // Isend returns immediately; Wait resolves at `cont`.
              s.reqs[e.req] = {.is_recv = false, .peer = e.peer,
                               .completion = cont};
            }
            break;
          }
          case trace::MpiOp::kRecv: {
            auto& q = channels[static_cast<std::int64_t>(e.peer) * P + r];
            if (q.empty()) {
              if (st[e.peer].done)
                throw SimError("Recv with no matching Send in trace");
              blocked = true;
              break;
            }
            s.t = std::max(entry, q.front().arrival);
            q.pop_front();
            break;
          }
          case trace::MpiOp::kIrecv: {
            // Never blocks: try to bind a message now; otherwise resolve at
            // the matching Wait.
            auto& q = channels[static_cast<std::int64_t>(e.peer) * P + r];
            PendingReq req{.is_recv = true, .peer = e.peer};
            if (!q.empty()) {
              req.completion = q.front().arrival;
              q.pop_front();
            }
            s.reqs[e.req] = req;
            break;
          }
          case trace::MpiOp::kWait: {
            auto it = s.reqs.find(e.req);
            MUSA_CHECK_MSG(it != s.reqs.end(), "Wait on unknown request");
            PendingReq& req = it->second;
            if (req.is_recv && req.completion < 0) {
              auto& q =
                  channels[static_cast<std::int64_t>(req.peer) * P + r];
              if (q.empty()) {
                if (st[req.peer].done)
                  throw SimError("Wait(recv) with no matching Send");
                blocked = true;
                break;
              }
              req.completion = q.front().arrival;
              q.pop_front();
            }
            s.t = std::max(entry, req.completion);
            s.reqs.erase(it);
            break;
          }
          case trace::MpiOp::kAllreduce:
          case trace::MpiOp::kBarrier: {
            const int k = s.collectives_crossed;
            if (static_cast<std::size_t>(k) >= collectives.size())
              collectives.resize(k + 1);
            Collective& col = collectives[k];
            // Count this rank's entry exactly once across re-tries (a
            // blocked rank revisits the same event on every pass; the
            // sentinel request id marks "entry already registered").
            if (!s.reqs.count(-1000 - k)) {
              s.reqs[-1000 - k] = {};  // sentinel: entry registered
              ++col.entered;
              col.max_enter = std::max(col.max_enter, entry);
              if (col.entered == P) {
                // Tree collectives: each of the log2(P) stages crosses the
                // topology (diameter hops at worst in the upper stages).
                const int dia = diameter(config_.topology, P);
                const double step =
                    e.op == trace::MpiOp::kAllreduce
                        ? 2.0 * tree_depth * config_.transfer_s(e.bytes, dia)
                        : 1.0 * tree_depth * config_.latency_s * dia;
                col.completion = col.max_enter + step;
              }
            }
            if (col.completion < 0) {
              blocked = true;
              break;
            }
            s.reqs.erase(-1000 - k);
            ++s.collectives_crossed;
            s.t = std::max(entry, col.completion);
            break;
          }
        }

        if (blocked) break;

        // Account MPI time and advance.
        const bool collective = e.op == trace::MpiOp::kAllreduce ||
                                e.op == trace::MpiOp::kBarrier;
        const double waited = s.t - entry;
        if (collective) {
          result.ranks[r].collective_s += waited;
          push_seg(r, entry, s.t, RankSeg::Kind::kCollective);
        } else {
          result.ranks[r].p2p_s += waited;
          push_seg(r, entry, s.t, RankSeg::Kind::kP2p);
        }
        ++s.ip;
        progress = true;
      }

      if (s.ip >= events.size() && !s.done) {
        s.done = true;
        result.ranks[r].finish_s = s.t;
        progress = true;
      }
      all_done = all_done && s.done;
    }

    if (!all_done && !progress)
      throw SimError("MPI replay deadlock: no rank can progress");
  }

  for (const auto& rs : result.ranks)
    result.total_seconds = std::max(result.total_seconds, rs.finish_s);
  return result;
}

}  // namespace musa::netsim
