// Dimemas-equivalent MPI replay engine.
//
// Replays the burst traces of all ranks against an abstract network model
// (latency + bandwidth with per-node output-link serialisation, eager /
// rendezvous point-to-point protocols, logarithmic-tree collectives with
// barrier semantics). Compute bursts are rescaled per region with factors
// obtained from detailed node simulation — this is exactly how MUSA stitches
// micro-architecture results into full-application, full-machine time
// (paper §II "Simulation").
//
// The engine is a multi-pass coroutine-style simulator: each rank advances
// until it blocks on an unmatched message or an incomplete collective; the
// driver loops until all ranks drain (a non-progressing pass indicates an
// inconsistent trace and raises SimError).
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/topology.hpp"
#include "trace/burst.hpp"

namespace musa::netsim {

struct NetworkConfig {
  double latency_s = 1.5e-6;      // per-hop zero-byte latency
  double bandwidth_gbps = 12.0;   // per-link bandwidth (GB/s)
  std::uint64_t eager_threshold = 32 * 1024;  // rendezvous above this size
  Topology topology = Topology::kCrossbar;

  /// Point-to-point transfer time over `hops` network hops.
  double transfer_s(std::uint64_t bytes, int hops = 1) const {
    return latency_s * std::max(1, hops) +
           static_cast<double>(bytes) / (bandwidth_gbps * 1e9);
  }
};

struct ReplayOptions {
  /// Multiplies compute bursts of each region_id (default 1.0 when absent):
  /// simulated_region_time / reference_region_time from the node simulator.
  std::vector<double> region_scale;

  /// Stddev of per-(rank, burst) multiplicative noise on compute bursts.
  /// Models the *lumpiness* of node-level makespans: with few tasks per
  /// core, per-rank region durations vary run to run, and synchronising
  /// collectives turn that variance into wait time that grows with core
  /// count — the paper's main source of full-application efficiency loss
  /// (§V-A: "load imbalance across different MPI ranks in the presence of
  /// synchronization barriers"). Deterministic in (rank, burst index).
  double region_jitter_sigma = 0.0;

  bool record_timeline = false;
};

/// Per-rank activity segment for Fig. 4-style timelines.
struct RankSeg {
  enum class Kind : std::uint8_t { kCompute, kP2p, kCollective };
  int rank = 0;
  double start = 0.0;
  double end = 0.0;
  Kind kind = Kind::kCompute;
};

struct RankStats {
  double compute_s = 0.0;  // time in (rescaled) compute bursts
  double p2p_s = 0.0;      // time in point-to-point calls and waits
  double collective_s = 0.0;  // time blocked in Allreduce/Barrier
  double finish_s = 0.0;   // when the rank drained its trace
};

struct ReplayResult {
  double total_seconds = 0.0;  // max finish over ranks
  std::vector<RankStats> ranks;
  std::vector<RankSeg> timeline;  // only if options.record_timeline

  double total_compute() const {
    double acc = 0.0;
    for (const auto& r : ranks) acc += r.compute_s;
    return acc;
  }
  double total_mpi() const {
    double acc = 0.0;
    for (const auto& r : ranks) acc += r.p2p_s + r.collective_s;
    return acc;
  }
};

class DimemasEngine {
 public:
  explicit DimemasEngine(const NetworkConfig& config) : config_(config) {}

  ReplayResult replay(const trace::AppTrace& app,
                      const ReplayOptions& options) const;

 private:
  NetworkConfig config_;
};

}  // namespace musa::netsim
