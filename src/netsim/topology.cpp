#include "netsim/topology.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace musa::netsim {

namespace {
/// Smallest g with g*g >= nodes: the torus grid edge.
int grid_edge(int nodes) {
  int g = 1;
  while (g * g < nodes) ++g;
  return g;
}

int torus_axis_distance(int a, int b, int edge) {
  const int d = std::abs(a - b);
  return std::min(d, edge - d);
}
}  // namespace

int hop_count(Topology topology, int src, int dst, int nodes) {
  MUSA_CHECK_MSG(nodes >= 1, "topology needs at least one node");
  MUSA_CHECK_MSG(src >= 0 && src < nodes && dst >= 0 && dst < nodes,
                 "rank out of range for topology");
  if (src == dst) return 0;
  switch (topology) {
    case Topology::kCrossbar:
    case Topology::kBus:
      return 1;
    case Topology::kTorus2D: {
      const int edge = grid_edge(nodes);
      const int dx = torus_axis_distance(src % edge, dst % edge, edge);
      const int dy = torus_axis_distance(src / edge, dst / edge, edge);
      return std::max(1, dx + dy);
    }
    case Topology::kFatTree:
      return src / kFatTreeRadix == dst / kFatTreeRadix ? 2 : 4;
  }
  return 1;
}

int diameter(Topology topology, int nodes) {
  switch (topology) {
    case Topology::kCrossbar:
    case Topology::kBus:
      return 1;
    case Topology::kTorus2D: {
      const int edge = grid_edge(nodes);
      return std::max(1, 2 * (edge / 2));
    }
    case Topology::kFatTree:
      return nodes <= kFatTreeRadix ? 2 : 4;
  }
  return 1;
}

}  // namespace musa::netsim
