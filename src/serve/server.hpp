// DSE-as-a-service: a persistent sweep server (DESIGN.md §7i "Serving").
//
// One process owns the expensive sweep state — a shared StageMemo and a
// journal-backed result cache — and answers point / sub-space queries from
// many concurrent clients over AF_UNIX (and optionally loopback TCP)
// sockets, speaking the JSON-lines grammar of serve/wire.hpp over the
// elastic sweep's newline framing (sweep::LineChannel, babble cap
// included). Where the elastic controller (src/sweep) amortises one batch
// sweep across worker *processes*, the server amortises the warm state
// across *queries over time*: the second client asking about a point pays
// a cache lookup, not a simulation.
//
// Execution model:
//   * one I/O thread: poll(2) over the listeners and every client,
//     admission control, request parsing;
//   * N compute threads, each owning a private core::Pipeline attached to
//     one shared StageMemo (the DseEngine worker pattern), executing
//     points through the same core::PointRunner containment the batch
//     engine and elastic workers use — served rows are byte-identical to
//     a batch sweep's by construction;
//   * a point-granular scheduler: strict priority tiers, round-robin
//     across jobs within a tier, so a 1-point query never queues behind a
//     thousand-point space sweep from another client (fairness), and an
//     in-flight dedup map so concurrent requests for the same key share
//     one computation.
//
// Admission control: a request whose statically-pruned plan would push the
// queued-point total past `max_queue_points` gets a `busy` reply (retry
// later); one that could never fit gets an `error`. Sub-space requests are
// pruned by the static space analyzer (verify/space_analysis.hpp) inside
// make_sweep_plan before they are admitted, so infeasible regions cost
// O(boxes), not O(points), and are reported as `skipped`.
//
// Cache invalidation: the result journal is keyed to the pipeline-options
// fingerprint via a sidecar file; starting the server with different
// options discards the stale journal instead of serving rows computed
// under another model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/pipeline.hpp"

namespace musa::serve {

struct ServeOptions {
  /// AF_UNIX listening socket path ("" = no unix listener).
  std::string socket_path;
  /// Loopback TCP listener port: -1 = off, 0 = ephemeral (tcp_port() tells
  /// which), else the given port. Always bound to 127.0.0.1 — the wire has
  /// no authentication; exposing it wider is a reverse proxy's job.
  int tcp_port = -1;
  /// Result cache artifact; the journal lives at "<cache_path>.journal"
  /// (the DseEngine naming, so batch tools can inspect it) and the
  /// fingerprint sidecar at "<cache_path>.fp".
  std::string cache_path = "serve_cache.csv";
  /// Compute threads (0 = default_thread_count()).
  int threads = 0;
  /// Admission bound: maximum queued-but-unfinished points across all
  /// requests. A request that would exceed it is told `busy`.
  std::uint64_t max_queue_points = 4096;
  /// Connected-client bound; excess connections are refused with an error
  /// line and closed.
  int max_clients = 64;
  /// Honor {"op":"shutdown"} from clients (off by default: any client
  /// could stop the daemon).
  bool allow_shutdown = false;
  bool verbose = false;
  /// Model options every answer is computed under; fingerprinted into the
  /// cache sidecar.
  core::PipelineOptions pipeline;
};

/// Monotone counters snapshot (mirrored into obs metrics under "serve.*").
struct ServeStats {
  std::uint64_t requests = 0;     // parsed request lines
  std::uint64_t busy = 0;         // busy replies (admission backpressure)
  std::uint64_t errors = 0;       // error replies
  std::uint64_t computed = 0;     // points simulated by this process
  std::uint64_t cache_hits = 0;   // points answered from the journal
  std::uint64_t dedup_hits = 0;   // points answered by piggybacking on an
                                  //   in-flight computation
  std::uint64_t failed = 0;       // FAIL replies (quarantined points)
  std::uint64_t done = 0;         // requests fully answered
  std::uint64_t clients = 0;      // connections accepted
  std::uint64_t babbling = 0;     // clients dropped by the line cap
  std::uint64_t invalidated = 0;  // 1 if startup discarded a stale cache
};

class DseServer {
 public:
  explicit DseServer(ServeOptions options);
  ~DseServer();

  DseServer(const DseServer&) = delete;
  DseServer& operator=(const DseServer&) = delete;

  /// Binds the listeners and spawns the I/O and compute threads. Throws
  /// SimError when a socket cannot be bound or no listener is configured.
  void start();

  /// Blocks until a shutdown is requested (signal handler via
  /// request_stop(), or a client shutdown op).
  void wait();

  /// Async-signal-ish stop request: flags the server and wakes the I/O
  /// thread. Safe to call from any thread, including request handlers.
  void request_stop();

  /// Full stop: request_stop() plus joining every thread and closing every
  /// socket. Pending queries are cancelled, not drained — their clients
  /// see EOF. Idempotent.
  void stop();

  /// True once a stop has been requested (signal, shutdown op, or stop()).
  /// Safe to poll from a signal-driven daemon loop.
  bool stopping() const;

  /// Bound TCP port after start() (resolves an ephemeral request); -1 when
  /// no TCP listener.
  int tcp_port() const;

  /// The pipeline-options fingerprint answers are computed under.
  std::uint64_t fingerprint() const;

  ServeStats stats() const;

  /// True on platforms with the socket machinery (everything but Windows).
  static bool supported();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace musa::serve
