#include "serve/wire.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace musa::serve {

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

namespace {

/// Recursive-descent JSON parser over a string. Strictness knobs: depth
/// bound, full-consume enforced by the caller, no extensions (comments,
/// trailing commas, bare words) — a request that is not valid JSON is
/// rejected wholesale, same policy as a journal record that fails its
/// checksum.
class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : s_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing garbage");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 16;

  bool fail(const std::string& what) {
    if (error_ != nullptr)
      *error_ = "json: " + what + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word, std::size_t len) {
    if (s_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= s_.size()) return fail("unexpected end");
    switch (s_[pos_]) {
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return literal("null", 4);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return literal("true", 4);
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return literal("false", 5);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return string(&out->string);
      case '[':
        return array(out, depth);
      case '{':
        return object(out, depth);
      default:
        return number(out);
    }
  }

  bool array(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue elem;
      if (!value(&elem, depth + 1)) return false;
      out->array.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool object(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"')
        return fail("expected member name");
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(&member, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool hex4(std::uint32_t* out) {
    if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        return fail("bad \\u escape");
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  void append_utf8(std::string* out, std::uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool string(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character");
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= s_.size()) return fail("truncated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: pair it
            if (pos_ + 2 > s_.size() || s_[pos_] != '\\' ||
                s_[pos_ + 1] != 'u')
              return fail("lone high surrogate");
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!hex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF)
              return fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    // Integer part: 0 | [1-9][0-9]* — leading zeros are not JSON.
    if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9')
      return fail("bad number");
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9')
        return fail("bad fraction");
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9')
        return fail("bad exponent");
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    out->kind = JsonValue::Kind::kNumber;
    errno = 0;
    out->number = std::strtod(s_.c_str() + start, nullptr);
    if (errno == ERANGE) return fail("number out of range");
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string* error_;
};

/// An exact small integer in [lo, hi] or nothing — fractional or
/// out-of-range numbers are rejected, not truncated.
bool small_int(const JsonValue& v, int lo, int hi, int* out) {
  if (v.kind != JsonValue::Kind::kNumber) return false;
  const double d = v.number;
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d || i < lo || i > hi) return false;
  *out = i;
  return true;
}

/// Hex-string fingerprint ("0f3a..." up to 16 digits, full-consume).
bool parse_fp_hex(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    else
      return false;
  }
  *out = v;
  return true;
}

int dim_index(const std::string& name) {
  for (int d = 0; d < core::SpaceAxes::kDims; ++d)
    if (name == core::SpaceAxes::dim_name(d)) return d;
  return -1;
}

}  // namespace

bool parse_json(const std::string& text, JsonValue* out, std::string* error) {
  return JsonParser(text, error).parse(out);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool parse_request(const std::string& line, Request* out, std::string* error) {
  *out = Request{};
  JsonValue doc;
  if (!parse_json(line, &doc, error)) return false;
  if (doc.kind != JsonValue::Kind::kObject) {
    *error = "request must be a JSON object";
    return false;
  }

  // Pull the id out first so even a rejected request can be correlated.
  if (const JsonValue* id = doc.find("id")) {
    if (id->kind != JsonValue::Kind::kString) {
      *error = "\"id\" must be a string";
      return false;
    }
    out->id = id->string;
  }

  const JsonValue* op = doc.find("op");
  if (op == nullptr || op->kind != JsonValue::Kind::kString) {
    *error = "missing \"op\"";
    return false;
  }
  if (op->string == "point") {
    out->op = Request::Op::kPoint;
  } else if (op->string == "space") {
    out->op = Request::Op::kSpace;
  } else if (op->string == "ping") {
    out->op = Request::Op::kPing;
  } else if (op->string == "shutdown") {
    out->op = Request::Op::kShutdown;
  } else {
    *error = "unknown op \"" + op->string + "\"";
    return false;
  }

  if (const JsonValue* pr = doc.find("priority")) {
    if (!small_int(*pr, -100, 100, &out->priority)) {
      *error = "\"priority\" must be an integer in [-100, 100]";
      return false;
    }
  }
  if (const JsonValue* fp = doc.find("fingerprint")) {
    if (fp->kind != JsonValue::Kind::kString ||
        !parse_fp_hex(fp->string, &out->fingerprint)) {
      *error = "\"fingerprint\" must be a hex string";
      return false;
    }
    out->has_fingerprint = true;
  }

  if (out->op == Request::Op::kPing || out->op == Request::Op::kShutdown)
    return true;

  if (out->id.empty()) {
    *error = "missing \"id\"";
    return false;
  }
  const JsonValue* app = doc.find("app");
  if (app == nullptr || app->kind != JsonValue::Kind::kString ||
      app->string.empty()) {
    *error = "missing \"app\"";
    return false;
  }
  out->app = app->string;

  if (out->op == Request::Op::kPoint) {
    const JsonValue* cfg = doc.find("config");
    if (cfg == nullptr || cfg->kind != JsonValue::Kind::kString ||
        cfg->string.empty()) {
      *error = "point request needs \"config\"";
      return false;
    }
    out->config_id = cfg->string;
    return true;
  }

  // space
  if (const JsonValue* base = doc.find("base")) {
    if (base->kind != JsonValue::Kind::kString ||
        (base->string != "paper" && base->string != "extended")) {
      *error = "\"base\" must be \"paper\" or \"extended\"";
      return false;
    }
    out->base = base->string;
  }
  if (const JsonValue* where = doc.find("where")) {
    if (where->kind != JsonValue::Kind::kObject) {
      *error = "\"where\" must be an object";
      return false;
    }
    for (const auto& [dim, vals] : where->object) {
      const int d = dim_index(dim);
      if (d < 0) {
        *error = "unknown dimension \"" + dim + "\"";
        return false;
      }
      if (vals.kind != JsonValue::Kind::kArray || vals.array.empty()) {
        *error = "\"where\"." + dim + " must be a non-empty array";
        return false;
      }
      for (const auto& v : vals.array) {
        if (v.kind != JsonValue::Kind::kString || v.string.empty()) {
          *error = "\"where\"." + dim + " values must be strings";
          return false;
        }
        out->where[static_cast<std::size_t>(d)].push_back(v.string);
      }
    }
  }
  return true;
}

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

std::string reply_result(const std::string& id, const std::string& key,
                         const std::string& row, bool cached) {
  return "{\"id\":\"" + json_escape(id) + "\",\"key\":\"" + json_escape(key) +
         "\",\"row\":\"" + json_escape(row) +
         (cached ? "\",\"cached\":true}" : "\",\"cached\":false}");
}

std::string reply_failed(const std::string& id, const std::string& key,
                         const std::string& error_class) {
  return "{\"id\":\"" + json_escape(id) + "\",\"key\":\"" + json_escape(key) +
         "\",\"failed\":true,\"class\":\"" + json_escape(error_class) + "\"}";
}

std::string reply_done(const std::string& id, std::uint64_t points,
                       std::uint64_t skipped, std::uint64_t failed,
                       std::uint64_t wall_us) {
  return "{\"id\":\"" + json_escape(id) +
         "\",\"done\":true,\"points\":" + std::to_string(points) +
         ",\"skipped\":" + std::to_string(skipped) +
         ",\"failed\":" + std::to_string(failed) +
         ",\"wall_us\":" + std::to_string(wall_us) + "}";
}

std::string reply_busy(const std::string& id) {
  return "{\"id\":\"" + json_escape(id) + "\",\"busy\":true}";
}

std::string reply_error(const std::string& id, const std::string& message) {
  return "{\"id\":\"" + json_escape(id) + "\",\"error\":\"" +
         json_escape(message) + "\"}";
}

std::string reply_pong(const std::string& id, std::uint64_t fingerprint,
                       std::uint64_t cache_points) {
  return "{\"id\":\"" + json_escape(id) +
         "\",\"pong\":true,\"fingerprint\":\"" + fingerprint_hex(fingerprint) +
         "\",\"cache_points\":" + std::to_string(cache_points) + "}";
}

std::string reply_ok(const std::string& id) {
  return "{\"id\":\"" + json_escape(id) + "\",\"ok\":true}";
}

}  // namespace musa::serve
