// Wire grammar of the DSE server (DESIGN.md §7i "Serving").
//
// Requests and replies are JSON objects, one per line, carried over the
// same newline framing the elastic sweep already speaks
// (sweep::LineChannel, including its 64 KiB babble cap). Four operations:
//
//   {"id":"r1","op":"point","app":"hydro",
//    "config":"medium|32M:256K|2.0GHz|128b|4ch-DDR4-2333|32c"}
//   {"id":"r2","op":"space","app":"hydro","base":"paper",
//    "where":{"freq":["2.0GHz"],"channels":["4ch"]},"priority":1}
//   {"id":"r3","op":"ping"}
//   {"id":"r4","op":"shutdown"}
//
// A `space` request names a sub-box of a SpaceAxes grid by per-dimension
// value-name allow-lists; the server statically prunes it with the space
// analyzer before admission. An optional "fingerprint" (hex string) pins
// the pipeline-options fingerprint the client expects; a mismatch is
// rejected instead of silently answering from a different model.
//
// Replies (one line each, `id` echoes the request):
//
//   {"id":..,"key":..,"row":"<cells,comma-joined>","cached":bool}  per point
//   {"id":..,"key":..,"failed":true,"class":"model"}               per FAIL
//   {"id":..,"done":true,"points":N,"skipped":K,"failed":F,"wall_us":U}
//   {"id":..,"busy":true}          admission backpressure — retry later
//   {"id":..,"error":"..."}        malformed/rejected request
//   {"id":..,"pong":true,"fingerprint":"<hex>","cache_points":N}
//   {"id":..,"ok":true}            shutdown acknowledged
//
// `row` is DseEngine::to_row joined with commas — byte-identical to the
// cells a batch sweep journals/caches for the same point, which is what
// lets a client (and the loadtest gate) diff served answers against a
// local sweep verbatim.
//
// The parser below is deliberately strict, in the spirit of the journal
// loader: full-consume, depth-limited, range-checked — a malformed request
// earns an error reply, never a zero-valued field.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/config_space.hpp"

namespace musa::serve {

/// Minimal JSON document: null / bool / number / string / array / object.
/// Object members keep insertion order (deterministic error messages).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member with `key`, or nullptr. Objects only.
  const JsonValue* find(const std::string& key) const;
};

/// Strict parse of one complete JSON document: full-consume (trailing
/// whitespace only), RFC-shaped numbers, \uXXXX escapes with surrogate
/// pairing, nesting depth ≤ 16. False → *error says what and where.
bool parse_json(const std::string& text, JsonValue* out, std::string* error);

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslash, control characters).
std::string json_escape(const std::string& s);

struct Request {
  enum class Op { kPoint, kSpace, kPing, kShutdown };

  std::string id;
  Op op = Op::kPing;
  int priority = 0;  // larger = dispatched first; [-100, 100]

  // point / space
  std::string app;

  // point: a MachineConfig::parse_id identifier.
  std::string config_id;

  // space: base grid plus per-dimension allow-lists of axis value names
  // (empty list = every value of that dimension).
  std::string base = "paper";  // "paper" | "extended"
  std::array<std::vector<std::string>, core::SpaceAxes::kDims> where;

  // Optional pipeline-options fingerprint pin.
  bool has_fingerprint = false;
  std::uint64_t fingerprint = 0;
};

/// Parses one request line. On failure returns false with *error set; *out
/// keeps whatever `id` was readable so the error reply can still correlate.
bool parse_request(const std::string& line, Request* out, std::string* error);

// Reply builders — one JSON line each, no trailing newline.
std::string reply_result(const std::string& id, const std::string& key,
                         const std::string& row, bool cached);
std::string reply_failed(const std::string& id, const std::string& key,
                         const std::string& error_class);
std::string reply_done(const std::string& id, std::uint64_t points,
                       std::uint64_t skipped, std::uint64_t failed,
                       std::uint64_t wall_us);
std::string reply_busy(const std::string& id);
std::string reply_error(const std::string& id, const std::string& message);
std::string reply_pong(const std::string& id, std::uint64_t fingerprint,
                       std::uint64_t cache_points);
std::string reply_ok(const std::string& id);

/// "%016llx" of a fingerprint — the wire encoding (JSON numbers cannot
/// carry 64 bits losslessly).
std::string fingerprint_hex(std::uint64_t fp);

}  // namespace musa::serve
