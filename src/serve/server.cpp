#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/fsio.hpp"
#include "common/journal.hpp"
#include "common/parallel.hpp"
#include "core/dse.hpp"
#include "core/point_runner.hpp"
#include "obs/metrics.hpp"
#include "serve/wire.hpp"
#include "sweep/protocol.hpp"

#ifndef _WIN32
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace musa::serve {

namespace {

obs::Counter& m_requests() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("serve.requests");
  return c;
}
obs::Counter& m_busy() {
  static obs::Counter& c = obs::MetricRegistry::global().counter("serve.busy");
  return c;
}
obs::Counter& m_errors() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("serve.errors");
  return c;
}
obs::Counter& m_computed() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("serve.points.computed");
  return c;
}
obs::Counter& m_cache_hits() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("serve.points.cache_hit");
  return c;
}
obs::Counter& m_dedup() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("serve.points.dedup");
  return c;
}
obs::Gauge& m_queue_points() {
  static obs::Gauge& g =
      obs::MetricRegistry::global().gauge("serve.queue.points");
  return g;
}
obs::Histogram& m_request_us() {
  static obs::Histogram& h =
      obs::MetricRegistry::global().histogram("serve.request.us");
  return h;
}

std::string join_cells(const std::vector<std::string>& cells) {
  std::string out;
  for (const auto& c : cells) {
    if (!out.empty()) out += ',';
    out += c;
  }
  return out;
}

}  // namespace

#ifndef _WIN32

struct DseServer::Impl {
  explicit Impl(ServeOptions opts) : options(std::move(opts)) {}

  // ---- connection state -------------------------------------------------

  /// One connected client. Sends are serialised against close by `mu` so a
  /// compute thread finishing a point cannot race the I/O thread reaping
  /// the connection.
  struct Client {
    explicit Client(int fd) : ch(fd) {}
    sweep::LineChannel ch;
    std::mutex mu;
    bool closed = false;

    bool send(const std::string& line) {
      std::lock_guard<std::mutex> lock(mu);
      if (closed) return false;
      return ch.send(line);
    }
    void shut() {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
      ch.close();
    }
  };
  using ClientPtr = std::shared_ptr<Client>;

  /// One admitted request. Owns its plan/options because PointRunner keeps
  /// references into them; the Job itself is kept alive by shared_ptrs in
  /// the scheduler, the workers, and the in-flight waiter lists.
  struct Job {
    ClientPtr client;
    std::string id;
    int priority = 0;
    core::SweepOptions sweep;
    core::SweepPlan plan;
    std::unique_ptr<core::PointRunner> runner;
    std::uint64_t skipped = 0;  // statically pruned grid points
    std::size_t next = 0;       // dispatch cursor; guarded by sched_mu
    std::atomic<std::uint64_t> remaining{0};  // point replies still owed
    std::atomic<std::uint64_t> failed{0};
    std::atomic<bool> cancelled{false};
    std::chrono::steady_clock::time_point t0;
  };
  using JobPtr = std::shared_ptr<Job>;

  // ---- immutable after start() ------------------------------------------

  ServeOptions options;
  std::uint64_t fingerprint = 0;
  int unix_fd = -1;
  int tcp_fd = -1;
  int bound_tcp_port = -1;
  int wake_r = -1, wake_w = -1;
  std::shared_ptr<core::StageMemo> memo;
  std::unique_ptr<ResultJournal> journal;

  std::thread io;
  std::vector<std::thread> workers;
  bool started = false;
  bool joined = false;

  // ---- scheduler --------------------------------------------------------

  std::mutex sched_mu;
  std::condition_variable sched_cv;
  std::vector<JobPtr> jobs;       // jobs with undispatched points
  std::size_t rr = 0;             // round-robin cursor within a tier
  std::uint64_t pending_points = 0;
  bool stopping = false;

  // In-flight dedup: key → jobs waiting for the computation another worker
  // already started. Guarded by inflight_mu.
  std::mutex inflight_mu;
  std::unordered_map<std::string, std::vector<JobPtr>> inflight;

  // ---- shutdown coordination --------------------------------------------

  std::mutex stop_mu;
  std::condition_variable stop_cv;
  std::atomic<bool> stop_requested{false};

  // ---- clients (I/O thread only) ----------------------------------------

  std::vector<ClientPtr> clients;

  // ---- stats ------------------------------------------------------------

  std::atomic<std::uint64_t> s_requests{0}, s_busy{0}, s_errors{0},
      s_computed{0}, s_cache_hits{0}, s_dedup{0}, s_failed{0}, s_done{0},
      s_clients{0}, s_babbling{0}, s_invalidated{0};
  std::atomic<std::uint64_t> cached_points{0};

  // ---- startup ----------------------------------------------------------

  void open_cache() {
    fingerprint = core::pipeline_options_fingerprint(options.pipeline);
    const std::string fp_path = options.cache_path + ".fp";
    const std::string want = fingerprint_hex(fingerprint);
    std::string prev = read_file_from(fp_path, 0);
    while (!prev.empty() && (prev.back() == '\n' || prev.back() == '\r'))
      prev.pop_back();
    if (!prev.empty() && prev != want) {
      // The cache was computed under different pipeline options: rows in
      // it answer a different model. Discard every journal belonging to
      // the artifact rather than serve stale bytes.
      for (const auto& stale : find_journals(options.cache_path))
        std::remove(stale.c_str());
      s_invalidated.store(1);
      if (options.verbose)
        std::fprintf(stderr,
                     "[serve] cache fingerprint %s != %s — discarded\n",
                     prev.c_str(), want.c_str());
    }
    atomic_write_file(fp_path, want + "\n");
    journal = std::make_unique<ResultJournal>(options.cache_path + ".journal",
                                              core::DseEngine::csv_header());
    cached_points.store(journal->size());
  }

  static void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }

  void open_listeners() {
    if (!options.socket_path.empty()) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (options.socket_path.size() >= sizeof addr.sun_path)
        throw SimError("serve: socket path too long: " + options.socket_path,
                       ErrorClass::kConfig);
      std::memcpy(addr.sun_path, options.socket_path.c_str(),
                  options.socket_path.size() + 1);
      unix_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (unix_fd < 0)
        throw SimError("serve: socket(AF_UNIX) failed", ErrorClass::kIo);
      ::unlink(options.socket_path.c_str());  // stale socket from a crash
      if (::bind(unix_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
              0 ||
          ::listen(unix_fd, 128) < 0)
        throw SimError("serve: cannot listen on " + options.socket_path,
                       ErrorClass::kIo);
      set_nonblocking(unix_fd);
    }
    if (options.tcp_port >= 0) {
      tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (tcp_fd < 0)
        throw SimError("serve: socket(AF_INET) failed", ErrorClass::kIo);
      const int one = 1;
      ::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(options.tcp_port));
      if (::bind(tcp_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
              0 ||
          ::listen(tcp_fd, 128) < 0)
        throw SimError("serve: cannot listen on 127.0.0.1:" +
                           std::to_string(options.tcp_port),
                       ErrorClass::kIo);
      sockaddr_in bound{};
      socklen_t len = sizeof bound;
      ::getsockname(tcp_fd, reinterpret_cast<sockaddr*>(&bound), &len);
      bound_tcp_port = static_cast<int>(ntohs(bound.sin_port));
      set_nonblocking(tcp_fd);
    }
    if (unix_fd < 0 && tcp_fd < 0)
      throw SimError("serve: no listener configured (socket_path/tcp_port)",
                     ErrorClass::kConfig);
    int pipefd[2];
    if (::pipe(pipefd) < 0)
      throw SimError("serve: pipe failed", ErrorClass::kIo);
    wake_r = pipefd[0];
    wake_w = pipefd[1];
    set_nonblocking(wake_r);
    set_nonblocking(wake_w);
  }

  // ---- admission (I/O thread) -------------------------------------------

  /// Restricts `axes` to the value names in `where`; every name must match
  /// an axis entry. Throws SimError(kConfig) on an unknown name.
  static core::SpaceAxes filter_axes(
      core::SpaceAxes axes,
      const std::array<std::vector<std::string>,
                       core::SpaceAxes::kDims>& where) {
    for (int d = 0; d < core::SpaceAxes::kDims; ++d) {
      const auto& names = where[static_cast<std::size_t>(d)];
      if (names.empty()) continue;
      std::vector<int> keep;
      for (const auto& name : names) {
        bool found = false;
        for (int i = 0; i < axes.dim_size(d); ++i) {
          if (axes.value_name(d, i) != name) continue;
          if (std::find(keep.begin(), keep.end(), i) == keep.end())
            keep.push_back(i);
          found = true;
          break;
        }
        if (!found)
          throw SimError("unknown value \"" + name + "\" for dimension \"" +
                             core::SpaceAxes::dim_name(d) + "\"",
                         ErrorClass::kConfig);
      }
      std::sort(keep.begin(), keep.end());  // preserve axis enumeration order
      const auto select = [&keep](auto& axis) {
        auto out = axis;
        out.clear();
        for (const int i : keep)
          out.push_back(axis[static_cast<std::size_t>(i)]);
        axis = std::move(out);
      };
      switch (d) {
        case core::SpaceAxes::kDimCore: select(axes.core_presets); break;
        case core::SpaceAxes::kDimCache: select(axes.cache_labels); break;
        case core::SpaceAxes::kDimFreq: select(axes.freqs_ghz); break;
        case core::SpaceAxes::kDimVector: select(axes.vector_bits); break;
        case core::SpaceAxes::kDimChannels: select(axes.mem_channels); break;
        case core::SpaceAxes::kDimTech: select(axes.mem_techs); break;
        case core::SpaceAxes::kDimCores: select(axes.core_counts); break;
        default: select(axes.rank_counts); break;
      }
    }
    return axes;
  }

  void handle_request(const ClientPtr& client, const std::string& line) {
    s_requests.fetch_add(1);
    m_requests().add();
    Request req;
    std::string error;
    if (!parse_request(line, &req, &error)) {
      s_errors.fetch_add(1);
      m_errors().add();
      client->send(reply_error(req.id, error));
      return;
    }
    switch (req.op) {
      case Request::Op::kPing:
        client->send(reply_pong(req.id, fingerprint, cached_points.load()));
        return;
      case Request::Op::kShutdown:
        if (!options.allow_shutdown) {
          s_errors.fetch_add(1);
          m_errors().add();
          client->send(reply_error(req.id, "shutdown disabled"));
          return;
        }
        client->send(reply_ok(req.id));
        request_stop();
        return;
      case Request::Op::kPoint:
      case Request::Op::kSpace:
        break;
    }
    if (req.has_fingerprint && req.fingerprint != fingerprint) {
      s_errors.fetch_add(1);
      m_errors().add();
      client->send(reply_error(
          req.id, "pipeline fingerprint mismatch: server has " +
                      fingerprint_hex(fingerprint)));
      return;
    }

    auto job = std::make_shared<Job>();
    job->client = client;
    job->id = req.id;
    job->priority = req.priority;
    job->t0 = std::chrono::steady_clock::now();
    job->sweep.verbose = false;
    job->sweep.fail_fast = false;
    job->sweep.apps = {req.app};
    try {
      if (req.op == Request::Op::kPoint) {
        job->sweep.configs = {core::MachineConfig::parse_id(req.config_id)};
      } else {
        const core::SpaceAxes base = req.base == "extended"
                                         ? core::SpaceAxes::extended()
                                         : core::SpaceAxes::paper();
        job->sweep.axes = filter_axes(base, req.where);
      }
      // Unknown app, malformed config id, per-point lint failure, or the
      // static analyzer choking on the sub-box all surface here — before
      // any queue slot is consumed.
      job->plan = core::make_sweep_plan(job->sweep);
    } catch (const SimError& e) {
      s_errors.fetch_add(1);
      m_errors().add();
      client->send(reply_error(req.id, e.what()));
      return;
    }
    job->skipped = job->plan.statically_skipped;
    job->runner = std::make_unique<core::PointRunner>(job->plan, job->sweep);
    job->remaining.store(job->plan.size());

    if (job->plan.size() == 0) {
      // Everything the request named was statically infeasible (or the box
      // was empty): answer immediately, no queue slot consumed.
      finish_job(*job);
      return;
    }
    if (job->plan.size() > options.max_queue_points) {
      s_errors.fetch_add(1);
      m_errors().add();
      client->send(reply_error(
          req.id, "request of " + std::to_string(job->plan.size()) +
                      " points exceeds queue capacity of " +
                      std::to_string(options.max_queue_points)));
      return;
    }
    {
      std::lock_guard<std::mutex> lock(sched_mu);
      if (pending_points + job->plan.size() > options.max_queue_points) {
        s_busy.fetch_add(1);
        m_busy().add();
        client->send(reply_busy(req.id));
        return;
      }
      pending_points += job->plan.size();
      m_queue_points().set(static_cast<double>(pending_points));
      jobs.push_back(job);
    }
    sched_cv.notify_all();
  }

  // ---- I/O thread -------------------------------------------------------

  void accept_on(int listen_fd) {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN / transient — poll will call us again
      s_clients.fetch_add(1);
      if (static_cast<int>(clients.size()) >= options.max_clients) {
        sweep::LineChannel refuse(fd);
        refuse.send(reply_error("", "server full"));
        continue;  // destructor closes
      }
      clients.push_back(std::make_shared<Client>(fd));
    }
  }

  void drop_client(const ClientPtr& client) {
    client->shut();
    {
      std::lock_guard<std::mutex> lock(sched_mu);
      for (const auto& j : jobs)
        if (j->client == client) j->cancelled.store(true);
    }
    sched_cv.notify_all();  // let workers drain the cancelled jobs
  }

  void io_main() {
    std::vector<pollfd> fds;
    while (!stop_requested.load()) {
      fds.clear();
      fds.push_back({wake_r, POLLIN, 0});
      if (unix_fd >= 0) fds.push_back({unix_fd, POLLIN, 0});
      if (tcp_fd >= 0) fds.push_back({tcp_fd, POLLIN, 0});
      const std::size_t first_client = fds.size();
      const std::size_t n_clients = clients.size();
      for (const auto& c : clients) fds.push_back({c->ch.fd(), POLLIN, 0});

      if (::poll(fds.data(), fds.size(), 500) < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (stop_requested.load()) break;

      std::size_t at = 0;
      if ((fds[at++].revents & POLLIN) != 0) {
        char buf[64];
        while (::read(wake_r, buf, sizeof buf) > 0) {
        }
        if (stop_requested.load()) break;
      }
      if (unix_fd >= 0 && (fds[at++].revents & POLLIN) != 0)
        accept_on(unix_fd);
      if (tcp_fd >= 0 && (fds[at++].revents & POLLIN) != 0) accept_on(tcp_fd);

      bool reap = false;
      for (std::size_t i = 0; i < n_clients; ++i) {
        const short ev = fds[first_client + i].revents;
        if ((ev & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const ClientPtr& c = clients[i];
        std::vector<std::string> lines;
        const bool alive = c->ch.drain(&lines);
        for (const auto& line : lines) {
          if (line.empty()) continue;
          handle_request(c, line);
        }
        if (!alive) {
          if (c->ch.babbling()) s_babbling.fetch_add(1);
          drop_client(c);
          reap = true;
        }
        if (stop_requested.load()) break;
      }
      if (reap)
        clients.erase(std::remove_if(clients.begin(), clients.end(),
                                     [](const ClientPtr& c) {
                                       return c->ch.fd() < 0;
                                     }),
                      clients.end());
    }
    for (const auto& c : clients) drop_client(c);
    clients.clear();
  }

  // ---- compute workers ---------------------------------------------------

  /// Accounts `n` answered points against `job`; the last one triggers the
  /// final `done` line and the request-latency observation.
  void finish_points(Job& job, std::uint64_t n) {
    if (job.remaining.fetch_sub(n) != n) return;
    finish_job(job);
  }

  void finish_job(Job& job) {
    const auto wall = std::chrono::steady_clock::now() - job.t0;
    const auto wall_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(wall).count());
    s_done.fetch_add(1);
    m_request_us().observe(wall_us);
    if (job.cancelled.load()) return;  // client is gone; nobody to tell
    const std::uint64_t failed = job.failed.load();
    job.client->send(reply_done(job.id, job.plan.size() - failed,
                                job.skipped, failed, wall_us));
  }

  /// Picks the next point under sched_mu: drain cancelled jobs, then the
  /// highest priority tier, round-robin across jobs within it — one point
  /// at a time, so a small request from one client overtakes the long tail
  /// of a big one instead of queueing behind it.
  bool pick_locked(JobPtr* out_job, std::uint64_t* out_idx) {
    for (std::size_t i = 0; i < jobs.size();) {
      JobPtr& j = jobs[i];
      if (!j->cancelled.load()) {
        ++i;
        continue;
      }
      const std::uint64_t undispatched = j->plan.size() - j->next;
      pending_points -= undispatched;
      m_queue_points().set(static_cast<double>(pending_points));
      JobPtr dead = std::move(j);
      jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(i));
      if (undispatched > 0) finish_points(*dead, undispatched);
    }
    if (jobs.empty()) {
      rr = 0;
      return false;
    }
    int best = INT_MIN;
    for (const auto& j : jobs) best = std::max(best, j->priority);
    const std::size_t n = jobs.size();
    rr %= n;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t at = (rr + k) % n;
      JobPtr j = jobs[at];
      if (j->priority != best) continue;
      *out_job = j;
      *out_idx = j->next++;
      --pending_points;
      m_queue_points().set(static_cast<double>(pending_points));
      rr = (at + 1) % n;
      if (j->next == j->plan.size())
        jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(at));
      return true;
    }
    return false;
  }

  void send_point_reply(Job& job, const std::string& key,
                        const std::string& row, const std::string& fail_class,
                        bool ok, bool cached) {
    if (!job.cancelled.load()) {
      if (ok) {
        job.client->send(reply_result(job.id, key, row, cached));
      } else {
        job.failed.fetch_add(1);
        s_failed.fetch_add(1);
        job.client->send(reply_failed(job.id, key, fail_class));
      }
    } else if (!ok) {
      job.failed.fetch_add(1);
    }
    finish_points(job, 1);
  }

  void process_point(core::Pipeline& pipeline, const JobPtr& job,
                     std::uint64_t idx) {
    if (job->cancelled.load()) {
      finish_points(*job, 1);
      return;
    }
    const std::string& key = job->plan.keys[idx];

    // Cache first: a key the journal already answers — good row or
    // quarantine — costs a map lookup, never a simulation.
    std::vector<std::string> cells;
    if (journal->find_row(key, &cells)) {
      s_cache_hits.fetch_add(1);
      m_cache_hits().add();
      send_point_reply(*job, key, join_cells(cells), "", true, true);
      return;
    }
    ResultJournal::FailRecord fail;
    if (journal->find_fail(key, &fail)) {
      s_cache_hits.fetch_add(1);
      m_cache_hits().add();
      send_point_reply(*job, key, "", fail.error_class, false, true);
      return;
    }

    // In-flight dedup: if another worker is already simulating this key,
    // enlist as a waiter — it will deliver our reply with its own.
    {
      std::lock_guard<std::mutex> lock(inflight_mu);
      auto it = inflight.find(key);
      if (it != inflight.end()) {
        it->second.push_back(job);
        s_dedup.fetch_add(1);
        m_dedup().add();
        return;
      }
      inflight.emplace(key, std::vector<JobPtr>{});
    }

    // Compute through the shared containment executor: journals the row
    // (or the FAIL record) exactly as a batch sweep would — byte-identical
    // cache artifacts whichever way a point was first asked for.
    core::SimResult slot;
    const bool ok = job->runner->run(pipeline, idx, journal.get(), &slot);
    std::string row, fail_class;
    if (ok) {
      row = join_cells(core::DseEngine::to_row(slot));
      cached_points.fetch_add(1);
      s_computed.fetch_add(1);
      m_computed().add();
    } else {
      fail_class = journal->find_fail(key, &fail) ? fail.error_class
                                                  : "model";
    }

    std::vector<JobPtr> waiters;
    {
      std::lock_guard<std::mutex> lock(inflight_mu);
      auto it = inflight.find(key);
      if (it != inflight.end()) {
        waiters = std::move(it->second);
        inflight.erase(it);
      }
    }
    send_point_reply(*job, key, row, fail_class, ok, /*cached=*/false);
    for (const auto& w : waiters)
      send_point_reply(*w, key, row, fail_class, ok, /*cached=*/true);
  }

  void worker_main() {
    core::Pipeline pipeline(options.pipeline, memo);
    for (;;) {
      JobPtr job;
      std::uint64_t idx = 0;
      {
        std::unique_lock<std::mutex> lock(sched_mu);
        sched_cv.wait(lock, [this] { return stopping || !jobs.empty(); });
        if (stopping) return;
        if (!pick_locked(&job, &idx)) continue;
      }
      process_point(pipeline, job, idx);
    }
  }

  // ---- lifecycle ---------------------------------------------------------

  void start() {
    MUSA_CHECK_MSG(!started, "serve: start() called twice");
    open_cache();
    open_listeners();
    memo = std::make_shared<core::StageMemo>(fingerprint);
    int threads = options.threads > 0 ? options.threads
                                      : default_thread_count();
    threads = std::max(1, threads);
    for (int t = 0; t < threads; ++t)
      workers.emplace_back([this] { worker_main(); });
    io = std::thread([this] { io_main(); });
    started = true;
    if (options.verbose) {
      if (unix_fd >= 0)
        std::fprintf(stderr, "[serve] listening on %s\n",
                     options.socket_path.c_str());
      if (tcp_fd >= 0)
        std::fprintf(stderr, "[serve] listening on 127.0.0.1:%d\n",
                     bound_tcp_port);
    }
  }

  void request_stop() {
    stop_requested.store(true);
    if (wake_w >= 0) {
      const char b = 'x';
      [[maybe_unused]] const ssize_t n = ::write(wake_w, &b, 1);
    }
    stop_cv.notify_all();
  }

  void stop() {
    if (!started || joined) return;
    request_stop();
    if (io.joinable()) io.join();
    {
      std::lock_guard<std::mutex> lock(sched_mu);
      stopping = true;
      for (const auto& j : jobs) j->cancelled.store(true);
    }
    sched_cv.notify_all();
    for (auto& w : workers)
      if (w.joinable()) w.join();
    workers.clear();
    if (unix_fd >= 0) ::close(unix_fd);
    if (tcp_fd >= 0) ::close(tcp_fd);
    if (wake_r >= 0) ::close(wake_r);
    if (wake_w >= 0) ::close(wake_w);
    unix_fd = tcp_fd = wake_r = wake_w = -1;
    if (!options.socket_path.empty())
      ::unlink(options.socket_path.c_str());
    joined = true;
  }

  void wait() {
    std::unique_lock<std::mutex> lock(stop_mu);
    // Bounded waits: a request_stop() from a signal handler may not be
    // able to safely notify the condvar, so never rely on the wakeup.
    while (!stop_requested.load())
      stop_cv.wait_for(lock, std::chrono::milliseconds(200));
  }
};

bool DseServer::supported() { return true; }

#else  // _WIN32: no AF_UNIX/poll machinery — construction works, start throws

struct DseServer::Impl {
  explicit Impl(ServeOptions opts) : options(std::move(opts)) {}
  ServeOptions options;
  std::uint64_t fingerprint = 0;
  int bound_tcp_port = -1;
  std::atomic<std::uint64_t> s_requests{0}, s_busy{0}, s_errors{0},
      s_computed{0}, s_cache_hits{0}, s_dedup{0}, s_failed{0}, s_done{0},
      s_clients{0}, s_babbling{0}, s_invalidated{0};
  std::atomic<bool> stop_requested{false};
  void start() {
    throw SimError("serve: not supported on this platform",
                   ErrorClass::kConfig);
  }
  void stop() {}
  void wait() {}
  void request_stop() { stop_requested.store(true); }
};

bool DseServer::supported() { return false; }

#endif

DseServer::DseServer(ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

DseServer::~DseServer() { impl_->stop(); }

void DseServer::start() { impl_->start(); }
void DseServer::wait() { impl_->wait(); }
void DseServer::request_stop() { impl_->request_stop(); }
void DseServer::stop() { impl_->stop(); }

bool DseServer::stopping() const { return impl_->stop_requested.load(); }

int DseServer::tcp_port() const { return impl_->bound_tcp_port; }

std::uint64_t DseServer::fingerprint() const { return impl_->fingerprint; }

ServeStats DseServer::stats() const {
  ServeStats s;
  s.requests = impl_->s_requests.load();
  s.busy = impl_->s_busy.load();
  s.errors = impl_->s_errors.load();
  s.computed = impl_->s_computed.load();
  s.cache_hits = impl_->s_cache_hits.load();
  s.dedup_hits = impl_->s_dedup.load();
  s.failed = impl_->s_failed.load();
  s.done = impl_->s_done.load();
  s.clients = impl_->s_clients.load();
  s.babbling = impl_->s_babbling.load();
  s.invalidated = impl_->s_invalidated.load();
  return s;
}

}  // namespace musa::serve
