// Set-associative cache model with LRU replacement and write-back,
// write-allocate policy. One instance models one cache array; the 3-level
// node hierarchy is assembled in hierarchy.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace musa::cachesim {

constexpr std::uint64_t kLineBytes = 64;

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  int ways = 8;
  int latency_cycles = 4;  // load-to-use latency on hit

  std::uint64_t num_sets() const { return size_bytes / kLineBytes / ways; }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  double miss_ratio() const {
    return accesses ? static_cast<double>(misses) / accesses : 0.0;
  }
  /// Misses per kilo-instruction given an instruction count.
  double mpki(std::uint64_t instrs) const {
    return instrs ? 1000.0 * static_cast<double>(misses) / instrs : 0.0;
  }
};

/// Result of one cache access.
struct AccessOutcome {
  bool hit = false;
  bool writeback = false;        // a dirty victim was evicted
  std::uint64_t victim_addr = 0; // line address of the dirty victim
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Looks up `addr`; on miss the line is allocated (possibly evicting a
  /// dirty victim, reported in the outcome so the caller can propagate the
  /// write-back down the hierarchy). `is_write` marks the line dirty.
  ///
  /// Defined inline below: this is the innermost call of the replay hot
  /// loop (tens of millions of calls per sweep) and must not cost a
  /// cross-TU call per line.
  AccessOutcome access(std::uint64_t addr, bool is_write);

  /// Hit-only probe for the batched replay fast path: if `addr` hits, the
  /// side effects are exactly those of access() on a hit (access count, LRU
  /// stamp, dirty marking) and the call returns true. On a miss it touches
  /// NOTHING — no counters, no allocation — so the caller can re-drive the
  /// same address through access() and end up in the identical state a
  /// single access() call would have produced. Skips the victim tracking
  /// access() performs up front, which is pure waste on the ~95% of replay
  /// accesses that hit.
  bool try_hit(std::uint64_t addr, bool is_write);

  /// True if the line holding addr is currently resident (no state change).
  bool probe(std::uint64_t addr) const;

  /// Invalidate all lines and optionally clear statistics.
  void flush(bool clear_stats = true);

  /// Clear statistics only (contents stay warm) — used after cache warm-up.
  void reset_stats() { stats_ = CacheStats{}; }

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // global stamp; smaller = older
    bool valid = false;
    bool dirty = false;
  };

  /// Set/tag split of a line address. Most arrays have power-of-two set
  /// counts, where the div/mod pair (20+ cycle latency each, on every access
  /// of the sweep hot path) reduces to mask and shift; the generic path
  /// stays for scaled L3 shares, whose set counts are arbitrary.
  void split(std::uint64_t line_addr, std::uint64_t& set,
             std::uint64_t& tag) const {
    if (set_mask_ != 0) {
      set = line_addr & set_mask_;
      tag = line_addr >> tag_shift_;
    } else {
      set = line_addr % num_sets_;
      tag = line_addr / num_sets_;
    }
  }

  CacheConfig config_;
  CacheStats stats_;
  std::vector<Line> lines_;  // sets × ways, row-major by set
  std::uint64_t num_sets_;
  std::uint64_t set_mask_ = 0;  // num_sets_ - 1 if power of two, else 0
  int tag_shift_ = 0;
  std::uint64_t stamp_ = 0;
  // Last line try_hit resolved, so back-to-back probes of one line (the
  // common streaming pattern: consecutive lanes walking a 64-byte line)
  // skip the way scan. A line can only stop being resident through a miss
  // allocation, so access() drops the hint on every miss; lines_ never
  // reallocates after construction, so the cached pointer stays valid.
  std::uint64_t hint_line_ = ~0ull;
  Line* hint_ = nullptr;
};

inline AccessOutcome Cache::access(std::uint64_t addr, bool is_write) {
  ++stats_.accesses;
  const std::uint64_t line_addr = addr / kLineBytes;
  std::uint64_t set, tag;
  split(line_addr, set, tag);
  MUSA_DCHECK_MSG((set + 1) * config_.ways <= lines_.size(),
                  "set index out of range");
  Line* base = &lines_[set * config_.ways];

  Line* victim = base;
  for (int w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = ++stamp_;
      line.dirty = line.dirty || is_write;
      return {.hit = true};
    }
    if (!line.valid) {
      victim = &line;  // prefer an invalid way
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }

  ++stats_.misses;
  hint_line_ = ~0ull;  // the allocation below may replace the hinted line
  AccessOutcome out;
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    out.writeback = true;
    out.victim_addr = (victim->tag * num_sets_ + set) * kLineBytes;
  }
  victim->tag = tag;
  victim->valid = true;
  victim->dirty = is_write;
  victim->lru = ++stamp_;
  return out;
}

inline bool Cache::try_hit(std::uint64_t addr, bool is_write) {
  const std::uint64_t line_addr = addr / kLineBytes;
  if (line_addr == hint_line_) {
    ++stats_.accesses;
    hint_->lru = ++stamp_;
    hint_->dirty = hint_->dirty || is_write;
    return true;
  }
  std::uint64_t set, tag;
  split(line_addr, set, tag);
  MUSA_DCHECK_MSG((set + 1) * config_.ways <= lines_.size(),
                  "set index out of range");
  Line* base = &lines_[set * config_.ways];
  for (int w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      ++stats_.accesses;
      line.lru = ++stamp_;
      line.dirty = line.dirty || is_write;
      hint_line_ = line_addr;
      hint_ = &line;
      return true;
    }
  }
  return false;
}

}  // namespace musa::cachesim
