// Set-associative cache model with LRU replacement and write-back,
// write-allocate policy. One instance models one cache array; the 3-level
// node hierarchy is assembled in hierarchy.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace musa::cachesim {

constexpr std::uint64_t kLineBytes = 64;

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  int ways = 8;
  int latency_cycles = 4;  // load-to-use latency on hit

  std::uint64_t num_sets() const { return size_bytes / kLineBytes / ways; }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  double miss_ratio() const {
    return accesses ? static_cast<double>(misses) / accesses : 0.0;
  }
  /// Misses per kilo-instruction given an instruction count.
  double mpki(std::uint64_t instrs) const {
    return instrs ? 1000.0 * static_cast<double>(misses) / instrs : 0.0;
  }
};

/// Result of one cache access.
struct AccessOutcome {
  bool hit = false;
  bool writeback = false;        // a dirty victim was evicted
  std::uint64_t victim_addr = 0; // line address of the dirty victim
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Looks up `addr`; on miss the line is allocated (possibly evicting a
  /// dirty victim, reported in the outcome so the caller can propagate the
  /// write-back down the hierarchy). `is_write` marks the line dirty.
  AccessOutcome access(std::uint64_t addr, bool is_write);

  /// True if the line holding addr is currently resident (no state change).
  bool probe(std::uint64_t addr) const;

  /// Invalidate all lines and optionally clear statistics.
  void flush(bool clear_stats = true);

  /// Clear statistics only (contents stay warm) — used after cache warm-up.
  void reset_stats() { stats_ = CacheStats{}; }

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // global stamp; smaller = older
    bool valid = false;
    bool dirty = false;
  };

  /// Set/tag split of a line address. Most arrays have power-of-two set
  /// counts, where the div/mod pair (20+ cycle latency each, on every access
  /// of the sweep hot path) reduces to mask and shift; the generic path
  /// stays for scaled L3 shares, whose set counts are arbitrary.
  void split(std::uint64_t line_addr, std::uint64_t& set,
             std::uint64_t& tag) const {
    if (set_mask_ != 0) {
      set = line_addr & set_mask_;
      tag = line_addr >> tag_shift_;
    } else {
      set = line_addr % num_sets_;
      tag = line_addr / num_sets_;
    }
  }

  CacheConfig config_;
  CacheStats stats_;
  std::vector<Line> lines_;  // sets × ways, row-major by set
  std::uint64_t num_sets_;
  std::uint64_t set_mask_ = 0;  // num_sets_ - 1 if power of two, else 0
  int tag_shift_ = 0;
  std::uint64_t stamp_ = 0;
};

}  // namespace musa::cachesim
