#include "cachesim/cache.hpp"

#include "common/check.hpp"

namespace musa::cachesim {

Cache::Cache(const CacheConfig& config) : config_(config) {
  MUSA_CHECK_MSG(config.ways > 0, "cache needs at least one way");
  MUSA_CHECK_MSG(config.size_bytes >= kLineBytes * config.ways,
                 "cache smaller than one set");
  num_sets_ = config.num_sets();
  MUSA_CHECK_MSG(num_sets_ > 0, "cache has zero sets");
  if ((num_sets_ & (num_sets_ - 1)) == 0) {
    set_mask_ = num_sets_ - 1;
    while ((1ull << tag_shift_) < num_sets_) ++tag_shift_;
  }
  lines_.assign(num_sets_ * config.ways, Line{});
}

bool Cache::probe(std::uint64_t addr) const {
  const std::uint64_t line_addr = addr / kLineBytes;
  std::uint64_t set, tag;
  split(line_addr, set, tag);
  const Line* base = &lines_[set * config_.ways];
  for (int w = 0; w < config_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

void Cache::flush(bool clear_stats) {
  for (auto& line : lines_) line = Line{};
  hint_line_ = ~0ull;
  if (clear_stats) stats_ = CacheStats{};
}

}  // namespace musa::cachesim
