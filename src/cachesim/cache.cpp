#include "cachesim/cache.hpp"

#include "common/check.hpp"

namespace musa::cachesim {

Cache::Cache(const CacheConfig& config) : config_(config) {
  MUSA_CHECK_MSG(config.ways > 0, "cache needs at least one way");
  MUSA_CHECK_MSG(config.size_bytes >= kLineBytes * config.ways,
                 "cache smaller than one set");
  num_sets_ = config.num_sets();
  MUSA_CHECK_MSG(num_sets_ > 0, "cache has zero sets");
  lines_.assign(num_sets_ * config.ways, Line{});
}

AccessOutcome Cache::access(std::uint64_t addr, bool is_write) {
  ++stats_.accesses;
  const std::uint64_t line_addr = addr / kLineBytes;
  // Sets need not be a power of two (e.g. 96 MB L3), so index by modulo.
  const std::uint64_t set = line_addr % num_sets_;
  const std::uint64_t tag = line_addr / num_sets_;
  MUSA_DCHECK_MSG((set + 1) * config_.ways <= lines_.size(),
                  "set index out of range");
  Line* base = &lines_[set * config_.ways];

  Line* victim = base;
  for (int w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = ++stamp_;
      line.dirty = line.dirty || is_write;
      return {.hit = true};
    }
    if (!line.valid) {
      victim = &line;  // prefer an invalid way
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }

  ++stats_.misses;
  AccessOutcome out;
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    out.writeback = true;
    out.victim_addr = (victim->tag * num_sets_ + set) * kLineBytes;
  }
  victim->tag = tag;
  victim->valid = true;
  victim->dirty = is_write;
  victim->lru = ++stamp_;
  return out;
}

bool Cache::probe(std::uint64_t addr) const {
  const std::uint64_t line_addr = addr / kLineBytes;
  const std::uint64_t set = line_addr % num_sets_;
  const std::uint64_t tag = line_addr / num_sets_;
  const Line* base = &lines_[set * config_.ways];
  for (int w = 0; w < config_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

void Cache::flush(bool clear_stats) {
  for (auto& line : lines_) line = Line{};
  if (clear_stats) stats_ = CacheStats{};
}

}  // namespace musa::cachesim
