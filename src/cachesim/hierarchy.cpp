#include "cachesim/hierarchy.hpp"

#include "common/check.hpp"
#include "common/units.hpp"

namespace musa::cachesim {

HierarchyConfig cache_32m_256k(int num_cores) {
  HierarchyConfig c;
  c.l2 = {.size_bytes = 256 * kKiB, .ways = 8, .latency_cycles = 9};
  c.l3 = {.size_bytes = 32 * kMiB, .ways = 16, .latency_cycles = 68};
  c.num_cores = num_cores;
  return c;
}

HierarchyConfig cache_64m_512k(int num_cores) {
  HierarchyConfig c;
  c.l2 = {.size_bytes = 512 * kKiB, .ways = 16, .latency_cycles = 11};
  c.l3 = {.size_bytes = 64 * kMiB, .ways = 16, .latency_cycles = 70};
  c.num_cores = num_cores;
  return c;
}

HierarchyConfig cache_96m_1m(int num_cores) {
  HierarchyConfig c;
  c.l2 = {.size_bytes = 1 * kMiB, .ways = 16, .latency_cycles = 13};
  c.l3 = {.size_bytes = 96 * kMiB, .ways = 16, .latency_cycles = 72};
  c.num_cores = num_cores;
  return c;
}

MemHierarchy::MemHierarchy(const HierarchyConfig& config)
    : config_(config), l3_(config.l3) {
  MUSA_CHECK_MSG(config.num_cores >= 1, "hierarchy needs at least one core");
  l1_.reserve(config.num_cores);
  l2_.reserve(config.num_cores);
  for (int c = 0; c < config.num_cores; ++c) {
    l1_.emplace_back(config.l1);
    l2_.emplace_back(config.l2);
  }
}

MemOutcome MemHierarchy::access(int core, std::uint64_t addr, bool is_write) {
  // Hottest simulator path (one call per memory access): debug-only check.
  MUSA_DCHECK_MSG(core >= 0 && core < config_.num_cores, "core out of range");
  MemOutcome out;

  const AccessOutcome a1 = l1_[core].access(addr, is_write);
  if (a1.hit) {
    out.level = HitLevel::kL1;
    out.latency_cycles = config_.l1.latency_cycles;
    return out;
  }

  // L1 dirty victim is absorbed by L2 (write-allocate at L2).
  if (a1.writeback) {
    const AccessOutcome wb = l2_[core].access(a1.victim_addr, /*write=*/true);
    if (!wb.hit && wb.writeback) {
      const AccessOutcome wb3 = l3_.access(wb.victim_addr, /*write=*/true);
      if (!wb3.hit && wb3.writeback) {
        ++out.dram_writebacks;
        out.wb_addr = wb3.victim_addr;
      }
    }
  }

  const AccessOutcome a2 = l2_[core].access(addr, is_write);
  if (a2.writeback) {
    const AccessOutcome wb3 = l3_.access(a2.victim_addr, /*write=*/true);
    if (!wb3.hit && wb3.writeback) {
      ++out.dram_writebacks;
      out.wb_addr = wb3.victim_addr;
    }
  }
  if (a2.hit) {
    out.level = HitLevel::kL2;
    out.latency_cycles = config_.l2.latency_cycles;
    return out;
  }

  const AccessOutcome a3 = l3_.access(addr, is_write);
  if (a3.writeback) {
    ++out.dram_writebacks;
    out.wb_addr = a3.victim_addr;
  }
  if (a3.hit) {
    out.level = HitLevel::kL3;
    out.latency_cycles = config_.l3.latency_cycles;
    return out;
  }

  out.level = HitLevel::kMemory;
  out.latency_cycles = config_.l3.latency_cycles;  // + DRAM, added by caller
  out.dram_read = true;
  return out;
}

void MemHierarchy::reset_stats() {
  for (auto& c : l1_) c.reset_stats();
  for (auto& c : l2_) c.reset_stats();
  l3_.reset_stats();
}

CacheStats MemHierarchy::total_l1_stats() const {
  CacheStats total;
  for (const auto& c : l1_) {
    total.accesses += c.stats().accesses;
    total.misses += c.stats().misses;
    total.writebacks += c.stats().writebacks;
  }
  return total;
}

CacheStats MemHierarchy::total_l2_stats() const {
  CacheStats total;
  for (const auto& c : l2_) {
    total.accesses += c.stats().accesses;
    total.misses += c.stats().misses;
    total.writebacks += c.stats().writebacks;
  }
  return total;
}

}  // namespace musa::cachesim
