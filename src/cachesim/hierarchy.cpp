#include "cachesim/hierarchy.hpp"

#include "common/check.hpp"
#include "common/units.hpp"

namespace musa::cachesim {

HierarchyConfig cache_32m_256k(int num_cores) {
  HierarchyConfig c;
  c.l2 = {.size_bytes = 256 * kKiB, .ways = 8, .latency_cycles = 9};
  c.l3 = {.size_bytes = 32 * kMiB, .ways = 16, .latency_cycles = 68};
  c.num_cores = num_cores;
  return c;
}

HierarchyConfig cache_64m_512k(int num_cores) {
  HierarchyConfig c;
  c.l2 = {.size_bytes = 512 * kKiB, .ways = 16, .latency_cycles = 11};
  c.l3 = {.size_bytes = 64 * kMiB, .ways = 16, .latency_cycles = 70};
  c.num_cores = num_cores;
  return c;
}

HierarchyConfig cache_96m_1m(int num_cores) {
  HierarchyConfig c;
  c.l2 = {.size_bytes = 1 * kMiB, .ways = 16, .latency_cycles = 13};
  c.l3 = {.size_bytes = 96 * kMiB, .ways = 16, .latency_cycles = 72};
  c.num_cores = num_cores;
  return c;
}

MemHierarchy::MemHierarchy(const HierarchyConfig& config)
    : config_(config), l3_(config.l3) {
  MUSA_CHECK_MSG(config.num_cores >= 1, "hierarchy needs at least one core");
  l1_.reserve(config.num_cores);
  l2_.reserve(config.num_cores);
  for (int c = 0; c < config.num_cores; ++c) {
    l1_.emplace_back(config.l1);
    l2_.emplace_back(config.l2);
  }
}

void MemHierarchy::reset_stats() {
  for (auto& c : l1_) c.reset_stats();
  for (auto& c : l2_) c.reset_stats();
  l3_.reset_stats();
}

CacheStats MemHierarchy::total_l1_stats() const {
  CacheStats total;
  for (const auto& c : l1_) {
    total.accesses += c.stats().accesses;
    total.misses += c.stats().misses;
    total.writebacks += c.stats().writebacks;
  }
  return total;
}

CacheStats MemHierarchy::total_l2_stats() const {
  CacheStats total;
  for (const auto& c : l2_) {
    total.accesses += c.stats().accesses;
    total.misses += c.stats().misses;
    total.writebacks += c.stats().writebacks;
  }
  return total;
}

}  // namespace musa::cachesim
