// Three-level node cache hierarchy: private L1 + L2 per core, shared L3.
//
// Matches the paper's Table I structure (L1 fixed at 32 kB; L2/L3 swept).
// Non-inclusive: misses allocate at every level on the fill path; dirty
// victims write back to the next level, with L3 victims reported to the
// caller as DRAM write traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache.hpp"

namespace musa::cachesim {

struct HierarchyConfig {
  CacheConfig l1{.size_bytes = 32 * 1024, .ways = 8, .latency_cycles = 4};
  CacheConfig l2{.size_bytes = 256 * 1024, .ways = 8, .latency_cycles = 9};
  CacheConfig l3{.size_bytes = 32ull * 1024 * 1024, .ways = 16,
                 .latency_cycles = 68};
  int num_cores = 1;
};

/// Paper Table I cache presets (L3 total : L2 per core).
HierarchyConfig cache_32m_256k(int num_cores);
HierarchyConfig cache_64m_512k(int num_cores);
HierarchyConfig cache_96m_1m(int num_cores);

/// Where an access was served from.
enum class HitLevel : std::uint8_t { kL1, kL2, kL3, kMemory };

/// Result of a hierarchy access, consumed by the core timing model.
struct MemOutcome {
  HitLevel level = HitLevel::kL1;
  int latency_cycles = 0;      // load-to-use latency up to (excl.) DRAM
  bool dram_read = false;      // caller must fetch the line from DRAM
  std::uint64_t dram_writebacks = 0;  // dirty L3 victims (DRAM writes)
  std::uint64_t wb_addr = 0;   // address of the (last) DRAM write-back
};

class MemHierarchy {
 public:
  explicit MemHierarchy(const HierarchyConfig& config);

  /// One 64-byte-line access by `core`. Propagates misses and write-backs
  /// through the levels; DRAM cost is *not* included in latency_cycles —
  /// the caller adds it (it depends on the DRAM model's queue state).
  MemOutcome access(int core, std::uint64_t addr, bool is_write);

  const HierarchyConfig& config() const { return config_; }
  const CacheStats& l1_stats(int core) const { return l1_[core].stats(); }
  const CacheStats& l2_stats(int core) const { return l2_[core].stats(); }
  const CacheStats& l3_stats() const { return l3_.stats(); }

  /// Aggregated over all cores.
  CacheStats total_l1_stats() const;
  CacheStats total_l2_stats() const;

  /// Clear statistics at every level; cache contents stay warm.
  void reset_stats();

 private:
  HierarchyConfig config_;
  std::vector<Cache> l1_;
  std::vector<Cache> l2_;
  Cache l3_;
};

}  // namespace musa::cachesim
