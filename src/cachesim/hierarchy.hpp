// Three-level node cache hierarchy: private L1 + L2 per core, shared L3.
//
// Matches the paper's Table I structure (L1 fixed at 32 kB; L2/L3 swept).
// Non-inclusive: misses allocate at every level on the fill path; dirty
// victims write back to the next level, with L3 victims reported to the
// caller as DRAM write traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache.hpp"

namespace musa::cachesim {

struct HierarchyConfig {
  CacheConfig l1{.size_bytes = 32 * 1024, .ways = 8, .latency_cycles = 4};
  CacheConfig l2{.size_bytes = 256 * 1024, .ways = 8, .latency_cycles = 9};
  CacheConfig l3{.size_bytes = 32ull * 1024 * 1024, .ways = 16,
                 .latency_cycles = 68};
  int num_cores = 1;
};

/// Paper Table I cache presets (L3 total : L2 per core).
HierarchyConfig cache_32m_256k(int num_cores);
HierarchyConfig cache_64m_512k(int num_cores);
HierarchyConfig cache_96m_1m(int num_cores);

/// Where an access was served from.
enum class HitLevel : std::uint8_t { kL1, kL2, kL3, kMemory };

/// Result of a hierarchy access, consumed by the core timing model.
struct MemOutcome {
  HitLevel level = HitLevel::kL1;
  int latency_cycles = 0;      // load-to-use latency up to (excl.) DRAM
  bool dram_read = false;      // caller must fetch the line from DRAM
  std::uint64_t dram_writebacks = 0;  // dirty L3 victims (DRAM writes)
  std::uint64_t wb_addr = 0;   // address of the (last) DRAM write-back
};

class MemHierarchy {
 public:
  explicit MemHierarchy(const HierarchyConfig& config);

  /// One 64-byte-line access by `core`. Propagates misses and write-backs
  /// through the levels; DRAM cost is *not* included in latency_cycles —
  /// the caller adds it (it depends on the DRAM model's queue state).
  /// Defined inline below (replay hot path).
  MemOutcome access(int core, std::uint64_t addr, bool is_write);

  /// Batched form for the SoA replay path: one access per entry of a
  /// coalesced line list (each `addrs[i]` the representative address of a
  /// distinct line), outcomes written to `out[0..n)`. Exactly equivalent to
  /// n access() calls in order — the tag-array walk just stays hot in one
  /// tight loop with the per-level set masks already resolved, instead of
  /// being re-entered from the core model per lane.
  void access_block(int core, const std::uint64_t* addrs, std::size_t n,
                    bool is_write, MemOutcome* out);

  /// L1 hit-only probe (see Cache::try_hit): true — and the exact access()
  /// L1-hit side effects — when `addr` hits `core`'s L1; false and NO state
  /// change otherwise. The batched replay path uses it to resolve the
  /// dominant single-line L1-hit accesses without building outcome records
  /// or entering the miss plumbing.
  bool l1_try_hit(int core, std::uint64_t addr, bool is_write);

  /// Direct handle on `core`'s L1 array for the batched replay loop: probing
  /// through l1_try_hit() re-resolves the vector element on every op, while
  /// the replay loop runs millions of probes against one fixed core.
  Cache& l1_cache(int core) {
    MUSA_DCHECK_MSG(core >= 0 && core < config_.num_cores, "core out of range");
    return l1_[core];
  }

  const HierarchyConfig& config() const { return config_; }
  const CacheStats& l1_stats(int core) const { return l1_[core].stats(); }
  const CacheStats& l2_stats(int core) const { return l2_[core].stats(); }
  const CacheStats& l3_stats() const { return l3_.stats(); }

  /// Aggregated over all cores.
  CacheStats total_l1_stats() const;
  CacheStats total_l2_stats() const;

  /// Clear statistics at every level; cache contents stay warm.
  void reset_stats();

 private:
  HierarchyConfig config_;
  std::vector<Cache> l1_;
  std::vector<Cache> l2_;
  Cache l3_;
};

inline MemOutcome MemHierarchy::access(int core, std::uint64_t addr,
                                       bool is_write) {
  // Hottest simulator path (one call per memory access): debug-only check.
  MUSA_DCHECK_MSG(core >= 0 && core < config_.num_cores, "core out of range");
  MemOutcome out;

  const AccessOutcome a1 = l1_[core].access(addr, is_write);
  if (a1.hit) {
    out.level = HitLevel::kL1;
    out.latency_cycles = config_.l1.latency_cycles;
    return out;
  }

  // L1 dirty victim is absorbed by L2 (write-allocate at L2).
  if (a1.writeback) {
    const AccessOutcome wb = l2_[core].access(a1.victim_addr, /*write=*/true);
    if (!wb.hit && wb.writeback) {
      const AccessOutcome wb3 = l3_.access(wb.victim_addr, /*write=*/true);
      if (!wb3.hit && wb3.writeback) {
        ++out.dram_writebacks;
        out.wb_addr = wb3.victim_addr;
      }
    }
  }

  const AccessOutcome a2 = l2_[core].access(addr, is_write);
  if (a2.writeback) {
    const AccessOutcome wb3 = l3_.access(a2.victim_addr, /*write=*/true);
    if (!wb3.hit && wb3.writeback) {
      ++out.dram_writebacks;
      out.wb_addr = wb3.victim_addr;
    }
  }
  if (a2.hit) {
    out.level = HitLevel::kL2;
    out.latency_cycles = config_.l2.latency_cycles;
    return out;
  }

  const AccessOutcome a3 = l3_.access(addr, is_write);
  if (a3.writeback) {
    ++out.dram_writebacks;
    out.wb_addr = a3.victim_addr;
  }
  if (a3.hit) {
    out.level = HitLevel::kL3;
    out.latency_cycles = config_.l3.latency_cycles;
    return out;
  }

  out.level = HitLevel::kMemory;
  out.latency_cycles = config_.l3.latency_cycles;  // + DRAM, added by caller
  out.dram_read = true;
  return out;
}

inline void MemHierarchy::access_block(int core, const std::uint64_t* addrs,
                                       std::size_t n, bool is_write,
                                       MemOutcome* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = access(core, addrs[i], is_write);
}

inline bool MemHierarchy::l1_try_hit(int core, std::uint64_t addr,
                                     bool is_write) {
  MUSA_DCHECK_MSG(core >= 0 && core < config_.num_cores, "core out of range");
  return l1_[core].try_hit(addr, is_write);
}

}  // namespace musa::cachesim
