// Vector-fusion model (paper §III, "Support for vectorization").
//
// MUSA traces SIMD code *decomposed into scalar lanes*: every dynamic lane of
// a static vector instruction carries the same `static_id` marker. At
// simulation time this pass re-fuses marked scalar instructions into wide
// operations of the requested vector length:
//
//  * lanes of the same static instruction are accumulated until
//    `vector_bits / element_bits` of them have been seen, then emitted as a
//    single fused operation;
//  * fusing *beyond* the traced width works by combining dynamic instances of
//    the same static instruction across consecutive loop iterations — the
//    paper requires the basic block to execute "several times in a row",
//    which we enforce with a maximum fusion distance: a group that stays
//    partial for too long (short trip-count loops, e.g. LULESH) is flushed
//    unfused, so short loops see no benefit from wider units;
//  * memory operations fuse too: the fused access covers all lane addresses
//    (contiguous lanes coalesce into fewer cache-line touches, strided lanes
//    do not), which models the bandwidth cost the paper accounts for.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/flat_table.hpp"
#include "isa/instr.hpp"

namespace musa::trace {
class InstrSource;  // forward-declared; defined in trace/instr_source.hpp
}

namespace musa::isa {

/// A (possibly) fused operation handed to the timing model.
struct FusedInstr {
  Instr first;            // representative instruction (op, regs, first addr)
  std::uint16_t lanes = 1;    // how many scalar lanes were fused
  std::int64_t stride = 0;    // address stride between consecutive lanes
  std::uint32_t bytes = 0;    // total bytes touched (mem ops only)
};

/// A fixed-size batch of fused operations in structure-of-arrays layout —
/// exactly the fields the core timing model reads, one preallocated column
/// each (DESIGN.md §7f). The scoreboard walks columns sequentially instead
/// of paying a next(FusedInstr&) call and a 40-byte struct copy per op;
/// emission order within and across blocks is identical to next().
struct FusedBlock {
  static constexpr std::size_t kCapacity = 256;

  std::size_t size = 0;
  std::array<OpClass, kCapacity> cls;
  std::array<std::uint8_t, kCapacity> dst;
  std::array<std::uint8_t, kCapacity> src1;
  std::array<std::uint8_t, kCapacity> src2;
  std::array<std::uint16_t, kCapacity> lanes;
  std::array<std::uint64_t, kCapacity> addr;
  std::array<std::int64_t, kCapacity> stride;

  void put(const Instr& first, std::uint16_t n_lanes, std::int64_t s) {
    cls[size] = first.op;
    dst[size] = first.dst;
    src1[size] = first.src1;
    src2[size] = first.src2;
    lanes[size] = n_lanes;
    addr[size] = first.addr;
    stride[size] = s;
    ++size;
  }
};

struct FusionStats {
  std::uint64_t in_instrs = 0;    // scalar instructions consumed
  std::uint64_t out_instrs = 0;   // fused operations emitted
  std::uint64_t full_groups = 0;  // groups fused to the full target width
  std::uint64_t partial_flushes = 0;  // groups flushed below target width
};

/// Streaming fusion transformer. Wraps an InstrSource and yields FusedInstr.
///
/// `vector_bits` ∈ {64, 128, 256, ...}: 64 disables fusion (pure scalar).
/// `element_bits` is the traced lane width (64 for double-precision codes).
class VectorFusion {
 public:
  /// `max_fusion_distance` overrides kMaxFusionDistance (ablation knob).
  VectorFusion(trace::InstrSource& source, int vector_bits,
               int element_bits = 64, std::uint64_t max_fusion_distance = 0);

  /// Next fused operation; false at end of stream (all groups flushed).
  bool next(FusedInstr& out);

  /// Fills `out` with up to FusedBlock::kCapacity fused operations — the
  /// same operations, in the same order, that repeated next() calls would
  /// produce (statistics update identically too). Returns false only when
  /// the stream is exhausted (out.size == 0).
  bool next_block(FusedBlock& out);

  const FusionStats& stats() const { return stats_; }
  int target_lanes() const { return target_lanes_; }

  /// Disable bulk source pulls (take_block). A consumer that can stop early
  /// and later resume the *same* source (time-quantum core runs) must not
  /// read ahead of what it retires — instructions handed out in bulk but
  /// left unconsumed at the stop point would be lost. Call before the first
  /// next()/next_block().
  void disable_bulk_pull() { bulk_pull_ = false; }

  /// Groups older than this many consumed instructions are flushed partial.
  /// Models the "executed several times in a row" requirement: a loop whose
  /// trip count ends before the group fills never reaches the full width.
  static constexpr std::uint64_t kMaxFusionDistance = 4096;

 private:
  struct Group {
    Instr first;
    std::uint16_t count = 0;  // 0 = slot closed (no open group for this id)
    std::int64_t stride = 0;
    std::uint32_t bytes = 0;
    std::uint64_t started_at = 0;  // in_instrs when the group opened
  };

  /// Slot for `static_id`: direct-indexed for small ids, hashed overflow
  /// otherwise. With insert=false returns nullptr when no group is open.
  Group* group_of(std::uint32_t static_id, bool insert);
  void emit_group(const Group& g, FusedInstr& out);
  void close_group(std::uint32_t static_id, bool partial);
  void push_ready(const FusedInstr& f);
  bool pop_ready(FusedInstr& out);
  bool ready_empty() const { return ready_head_ >= ready_.size(); }
  void flush_stale();
  void refresh_front_deadline();
  /// Pulls the next scalar instruction, preferring the bulk block the
  /// source handed out (no virtual call — and no copy — per instruction on
  /// replay). Returns nullptr at end of stream; the pointer is valid until
  /// the next pull.
  const Instr* pull();

  /// Ids below this index `groups_` directly (one array load per lane).
  /// All in-tree trace producers emit ids far below it; anything larger
  /// falls back to `overflow_` so foreign traces still work.
  static constexpr std::uint32_t kDirectIds = 4096;

  trace::InstrSource& source_;
  int target_lanes_;
  std::uint64_t max_distance_ = kMaxFusionDistance;
  // Hot path: groups are indexed directly by static_id (trace generators
  // emit small dense ids), and open ids are kept in opening order so the
  // stale check inspects only the *oldest* group — O(1) per instruction
  // where the former unordered_map version scanned every bucket.
  std::vector<Group> groups_;           // slot per static_id; count==0 free
  FlatTable64<Group> overflow_;         // groups for ids >= kDirectIds
  std::vector<std::uint32_t> active_;   // open ids, oldest first
  std::vector<FusedInstr> ready_;       // completed ops awaiting emission
  std::size_t ready_head_ = 0;          // ready_ front (popped lazily)
  // in_instrs count past which active_.front() goes stale (UINT64_MAX when
  // nothing is open): one compare per instruction instead of a group lookup.
  std::uint64_t front_deadline_ = ~0ull;
  const Instr* block_ = nullptr;        // bulk run from take_block()
  std::size_t block_pos_ = 0, block_len_ = 0;
  Instr scratch_;                       // pull() landing slot for next()
  FusionStats stats_;
  bool source_done_ = false;
  bool bulk_pull_ = true;
};

}  // namespace musa::isa
