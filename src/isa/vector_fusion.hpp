// Vector-fusion model (paper §III, "Support for vectorization").
//
// MUSA traces SIMD code *decomposed into scalar lanes*: every dynamic lane of
// a static vector instruction carries the same `static_id` marker. At
// simulation time this pass re-fuses marked scalar instructions into wide
// operations of the requested vector length:
//
//  * lanes of the same static instruction are accumulated until
//    `vector_bits / element_bits` of them have been seen, then emitted as a
//    single fused operation;
//  * fusing *beyond* the traced width works by combining dynamic instances of
//    the same static instruction across consecutive loop iterations — the
//    paper requires the basic block to execute "several times in a row",
//    which we enforce with a maximum fusion distance: a group that stays
//    partial for too long (short trip-count loops, e.g. LULESH) is flushed
//    unfused, so short loops see no benefit from wider units;
//  * memory operations fuse too: the fused access covers all lane addresses
//    (contiguous lanes coalesce into fewer cache-line touches, strided lanes
//    do not), which models the bandwidth cost the paper accounts for.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/instr.hpp"

namespace musa::trace {
class InstrSource;  // forward-declared; defined in trace/instr_source.hpp
}

namespace musa::isa {

/// A (possibly) fused operation handed to the timing model.
struct FusedInstr {
  Instr first;            // representative instruction (op, regs, first addr)
  std::uint16_t lanes = 1;    // how many scalar lanes were fused
  std::int64_t stride = 0;    // address stride between consecutive lanes
  std::uint32_t bytes = 0;    // total bytes touched (mem ops only)
};

struct FusionStats {
  std::uint64_t in_instrs = 0;    // scalar instructions consumed
  std::uint64_t out_instrs = 0;   // fused operations emitted
  std::uint64_t full_groups = 0;  // groups fused to the full target width
  std::uint64_t partial_flushes = 0;  // groups flushed below target width
};

/// Streaming fusion transformer. Wraps an InstrSource and yields FusedInstr.
///
/// `vector_bits` ∈ {64, 128, 256, ...}: 64 disables fusion (pure scalar).
/// `element_bits` is the traced lane width (64 for double-precision codes).
class VectorFusion {
 public:
  /// `max_fusion_distance` overrides kMaxFusionDistance (ablation knob).
  VectorFusion(trace::InstrSource& source, int vector_bits,
               int element_bits = 64, std::uint64_t max_fusion_distance = 0);

  /// Next fused operation; false at end of stream (all groups flushed).
  bool next(FusedInstr& out);

  const FusionStats& stats() const { return stats_; }
  int target_lanes() const { return target_lanes_; }

  /// Groups older than this many consumed instructions are flushed partial.
  /// Models the "executed several times in a row" requirement: a loop whose
  /// trip count ends before the group fills never reaches the full width.
  static constexpr std::uint64_t kMaxFusionDistance = 4096;

 private:
  struct Group {
    Instr first;
    std::uint16_t count = 0;
    std::int64_t stride = 0;
    std::uint32_t bytes = 0;
    std::uint64_t started_at = 0;  // in_instrs when the group opened
  };

  void emit_group(const Group& g, FusedInstr& out);
  bool flush_one(FusedInstr& out, bool only_stale);

  trace::InstrSource& source_;
  int target_lanes_;
  std::uint64_t max_distance_ = kMaxFusionDistance;
  std::unordered_map<std::uint32_t, Group> groups_;
  std::vector<FusedInstr> ready_;  // completed groups awaiting emission
  FusionStats stats_;
  bool source_done_ = false;
};

}  // namespace musa::isa
