// Architecture-neutral dynamic instruction record.
//
// This mirrors what MUSA's DynamoRIO-based tracer emits: opcode class,
// register operands, and memory address/size for loads/stores. Vector
// instructions are traced *decomposed into scalar lanes* carrying a marker
// (`static_id` + `lane`) identifying the originating static SIMD instruction;
// the simulator's fusion pass (vector_fusion.hpp) re-widens them to the
// simulated vector length (paper §III, "Support for vectorization").
#pragma once

#include <cstdint>

namespace musa::isa {

/// Functional classes the timing model distinguishes.
enum class OpClass : std::uint8_t {
  kIntAlu,   // integer ALU / address arithmetic
  kIntMul,   // integer multiply
  kFpAdd,    // FP add/sub/compare
  kFpMul,    // FP multiply / FMA
  kFpDiv,    // FP divide / sqrt
  kLoad,     // memory read
  kStore,    // memory write
  kBranch,   // control flow
};

constexpr int kNumOpClasses = 8;

constexpr bool is_fp(OpClass op) {
  return op == OpClass::kFpAdd || op == OpClass::kFpMul ||
         op == OpClass::kFpDiv;
}
constexpr bool is_mem(OpClass op) {
  return op == OpClass::kLoad || op == OpClass::kStore;
}

constexpr const char* op_class_name(OpClass op) {
  switch (op) {
    case OpClass::kIntAlu: return "int_alu";
    case OpClass::kIntMul: return "int_mul";
    case OpClass::kFpAdd: return "fp_add";
    case OpClass::kFpMul: return "fp_mul";
    case OpClass::kFpDiv: return "fp_div";
    case OpClass::kLoad: return "load";
    case OpClass::kStore: return "store";
    case OpClass::kBranch: return "branch";
  }
  return "?";
}

/// Register index space: 0..31 integer, 32..63 FP. kNoReg = no operand.
constexpr std::uint8_t kNoReg = 0xff;
constexpr int kNumRegs = 64;
constexpr std::uint8_t kFpRegBase = 32;

/// One dynamic instruction. Kept as a 24-byte POD: traces are streamed by
/// the million, so size matters.
struct Instr {
  std::uint64_t addr = 0;       // effective address (mem ops only)
  std::uint32_t static_id = 0;  // originating static instruction (fusion key)
  std::uint16_t lane = 0;       // SIMD lane index within static_id group
  std::uint8_t size = 0;        // access size in bytes (mem ops only)
  OpClass op = OpClass::kIntAlu;
  std::uint8_t dst = kNoReg;    // destination register
  std::uint8_t src1 = kNoReg;   // source registers
  std::uint8_t src2 = kNoReg;
  std::uint8_t vectorizable = 0;  // 1 if part of a fusable SIMD group
};

static_assert(sizeof(Instr) <= 24, "Instr should stay compact");

}  // namespace musa::isa
