// Execution latencies per functional class (cycles, non-memory).
// Memory latencies come from the cache/DRAM simulators instead.
#pragma once

#include "isa/instr.hpp"

namespace musa::isa {

/// Typical server-core execution latencies; loads/stores return the
/// address-generation cost only (the memory system adds the rest).
constexpr int exec_latency(OpClass op) {
  switch (op) {
    case OpClass::kIntAlu: return 1;
    case OpClass::kIntMul: return 3;
    case OpClass::kFpAdd: return 3;
    case OpClass::kFpMul: return 4;
    case OpClass::kFpDiv: return 18;
    case OpClass::kLoad: return 1;
    case OpClass::kStore: return 1;
    case OpClass::kBranch: return 1;
  }
  return 1;
}

}  // namespace musa::isa
