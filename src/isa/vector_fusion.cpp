#include "isa/vector_fusion.hpp"

#include "common/check.hpp"
#include "trace/instr_source.hpp"

namespace musa::isa {

VectorFusion::VectorFusion(trace::InstrSource& source, int vector_bits,
                           int element_bits,
                           std::uint64_t max_fusion_distance)
    : source_(source) {
  MUSA_CHECK_MSG(element_bits > 0 && vector_bits >= element_bits,
                 "vector width must be at least one element wide");
  MUSA_CHECK_MSG(vector_bits % element_bits == 0,
                 "vector width must be a whole number of elements");
  target_lanes_ = vector_bits / element_bits;
  if (max_fusion_distance > 0) max_distance_ = max_fusion_distance;
}

VectorFusion::Group* VectorFusion::group_of(std::uint32_t static_id,
                                            bool insert) {
  if (static_id < kDirectIds) {
    if (static_id >= groups_.size()) {
      if (!insert) return nullptr;
      groups_.resize(static_id + 1);
    }
    Group* g = &groups_[static_id];
    if (!insert && g->count == 0) return nullptr;
    return g;
  }
  return insert ? &overflow_.find_or_insert(static_id)
                : overflow_.find(static_id);
}

void VectorFusion::emit_group(const Group& g, FusedInstr& out) {
  out.first = g.first;
  out.lanes = g.count;
  out.stride = g.stride;
  out.bytes = is_mem(g.first.op) ? g.bytes : 0;
  ++stats_.out_instrs;
  if (g.count == target_lanes_ && target_lanes_ > 1) ++stats_.full_groups;
}

void VectorFusion::refresh_front_deadline() {
  if (active_.empty()) {
    front_deadline_ = ~0ull;
  } else {
    const Group* g = group_of(active_.front(), /*insert=*/false);
    front_deadline_ = g->started_at + max_distance_;
  }
}

void VectorFusion::close_group(std::uint32_t static_id, bool partial) {
  if (partial) ++stats_.partial_flushes;
  if (static_id < kDirectIds)
    groups_[static_id].count = 0;
  else
    overflow_.erase(static_id);
  // Closures overwhelmingly hit the front (stale flushes always do; full
  // groups fill in opening order for regular loop bodies), so the scan is
  // effectively O(1) and active_ stays a handful of entries deep.
  for (std::size_t i = 0; i < active_.size(); ++i)
    if (active_[i] == static_id) {
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
      if (i == 0) refresh_front_deadline();
      return;
    }
}

void VectorFusion::flush_stale() {
  // Groups older than the fusion window flush partial — the loop's run
  // ended before the group filled. active_ is ordered by opening time
  // (started_at is monotone), so only the front can be stale; close_group
  // advances front_deadline_ as fronts retire.
  while (stats_.in_instrs > front_deadline_) {
    const std::uint32_t id = active_.front();
    const Group* g = group_of(id, /*insert=*/false);
    FusedInstr stale;
    emit_group(*g, stale);
    close_group(id, /*partial=*/g->count < target_lanes_);
    push_ready(stale);
  }
}

void VectorFusion::push_ready(const FusedInstr& f) { ready_.push_back(f); }

bool VectorFusion::pop_ready(FusedInstr& out) {
  if (ready_head_ >= ready_.size()) return false;
  out = ready_[ready_head_++];
  if (ready_head_ >= ready_.size()) {
    ready_.clear();
    ready_head_ = 0;
  }
  return true;
}

const Instr* VectorFusion::pull() {
  if (block_pos_ < block_len_) return &block_[block_pos_++];
  if (bulk_pull_) {
    block_len_ = source_.take_block(&block_, static_cast<std::size_t>(-1));
    if (block_len_ > 0) {
      block_pos_ = 1;
      return &block_[0];
    }
  }
  return source_.next(scratch_) ? &scratch_ : nullptr;
}

bool VectorFusion::next(FusedInstr& out) {
  while (true) {
    // Emit anything already produced, preserving completion order.
    if (pop_ready(out)) return true;

    const Instr* pulled = source_done_ ? nullptr : pull();
    if (pulled == nullptr) {
      // End of stream: drain remaining partial groups, oldest first.
      source_done_ = true;
      if (active_.empty()) return false;
      const std::uint32_t id = active_.front();
      const Group* g = group_of(id, /*insert=*/false);
      emit_group(*g, out);
      close_group(id, /*partial=*/g->count < target_lanes_);
      return true;
    }
    const Instr& in = *pulled;
    ++stats_.in_instrs;

    // Distance ticks on *every* consumed instruction, vectorizable or not.
    // The deadline gate keeps the flush machinery out of line of the common
    // case (front_deadline_ is UINT64_MAX when nothing is open).
    if (stats_.in_instrs > front_deadline_) flush_stale();

    if (!in.vectorizable || target_lanes_ <= 1) {
      ++stats_.out_instrs;
      if (ready_empty()) {
        // Stale flushes "completed" before this instruction, so it can only
        // short-circuit past ready_ when nothing is queued there. That is
        // the overwhelmingly common case, and it writes the emitted op once
        // instead of round-tripping two copies through push/pop_ready.
        out.first = in;
        out.lanes = 1;
        out.stride = 0;
        out.bytes = is_mem(in.op) ? in.size : 0;
        return true;
      }
      FusedInstr scalar;
      scalar.first = in;
      scalar.lanes = 1;
      scalar.stride = 0;
      scalar.bytes = is_mem(in.op) ? in.size : 0;
      push_ready(scalar);
      continue;
    }

    Group& g = *group_of(in.static_id, /*insert=*/true);
    if (g.count == 0) {
      g.first = in;
      g.count = 1;
      g.stride = 0;
      g.bytes = in.size;
      g.started_at = stats_.in_instrs;
      if (active_.empty()) front_deadline_ = g.started_at + max_distance_;
      active_.push_back(in.static_id);
    } else {
      if (g.count == 1)
        g.stride = static_cast<std::int64_t>(in.addr) -
                   static_cast<std::int64_t>(g.first.addr);
      ++g.count;
      g.bytes += in.size;
    }

    if (g.count >= target_lanes_) {
      FusedInstr full;
      emit_group(g, full);
      close_group(in.static_id, /*partial=*/false);
      if (ready_empty()) {
        out = full;
        return true;
      }
      push_ready(full);
    }
  }
}

bool VectorFusion::next_block(FusedBlock& out) {
  // Same state machine as next(), with emissions landing directly in the
  // block's columns. Invariant at the top of each iteration: either ready_
  // has queued ops (drained first, preserving completion order) or it is
  // empty and the freshly produced op can be written straight to the block.
  //
  // The loop-carried state (instruction counters, stale deadline, source
  // run cursor, ready-queue emptiness) lives in stack locals: the column
  // stores into `out` could alias any member as far as the compiler can
  // tell, so member-resident state would be reloaded after every emitted
  // op. The locals sync with the members around the rare slow paths —
  // source refill, stale flush, group emission — which are the only places
  // the members are read or written by the helpers.
  out.size = 0;
  std::uint64_t in_instrs = stats_.in_instrs;
  std::uint64_t out_instrs = stats_.out_instrs;
  std::uint64_t deadline = front_deadline_;
  const int tl = target_lanes_;
  const Instr* run = block_ + block_pos_;
  const Instr* run_end = block_ + block_len_;
  bool have_ready = ready_head_ < ready_.size();

  const auto sync_out = [&] {
    stats_.in_instrs = in_instrs;
    stats_.out_instrs = out_instrs;
    block_pos_ = static_cast<std::size_t>(run - block_);
  };

  while (out.size < FusedBlock::kCapacity) {
    if (have_ready) {
      const FusedInstr& f = ready_[ready_head_++];
      out.put(f.first, f.lanes, f.stride);
      if (ready_head_ >= ready_.size()) {
        ready_.clear();
        ready_head_ = 0;
        have_ready = false;
      }
      continue;
    }

    const Instr* pulled;
    if (run < run_end) {
      pulled = run++;
    } else {
      sync_out();
      pulled = source_done_ ? nullptr : pull();
      run = block_ + block_pos_;  // pull() may have refilled the bulk run
      run_end = block_ + block_len_;
      if (pulled == nullptr) {
        // End of stream: drain remaining partial groups, oldest first.
        source_done_ = true;
        if (active_.empty()) break;
        const std::uint32_t id = active_.front();
        const Group* g = group_of(id, /*insert=*/false);
        FusedInstr drained;
        emit_group(*g, drained);
        close_group(id, /*partial=*/g->count < tl);
        out.put(drained.first, drained.lanes, drained.stride);
        out_instrs = stats_.out_instrs;
        deadline = front_deadline_;
        continue;
      }
    }
    const Instr& in = *pulled;
    ++in_instrs;

    if (in_instrs > deadline) {
      sync_out();
      flush_stale();
      out_instrs = stats_.out_instrs;
      deadline = front_deadline_;
      have_ready = ready_head_ < ready_.size();
    }

    if (!in.vectorizable || tl <= 1) {
      ++out_instrs;
      if (!have_ready) {
        out.put(in, /*n_lanes=*/1, /*s=*/0);
        continue;
      }
      // Stale flushes completed "before" this instruction: queue it behind
      // them so the next iterations emit everything in completion order.
      FusedInstr scalar;
      scalar.first = in;
      scalar.lanes = 1;
      scalar.stride = 0;
      scalar.bytes = is_mem(in.op) ? in.size : 0;
      push_ready(scalar);
      continue;
    }

    Group& g = *group_of(in.static_id, /*insert=*/true);
    if (g.count == 0) {
      g.first = in;
      g.count = 1;
      g.stride = 0;
      g.bytes = in.size;
      g.started_at = in_instrs;
      if (active_.empty()) {
        front_deadline_ = g.started_at + max_distance_;
        deadline = front_deadline_;
      }
      active_.push_back(in.static_id);
    } else {
      if (g.count == 1)
        g.stride = static_cast<std::int64_t>(in.addr) -
                   static_cast<std::int64_t>(g.first.addr);
      ++g.count;
      g.bytes += in.size;
    }

    if (g.count >= tl) {
      FusedInstr full;
      stats_.out_instrs = out_instrs;  // emit_group counts the emission
      emit_group(g, full);
      close_group(in.static_id, /*partial=*/false);
      out_instrs = stats_.out_instrs;
      deadline = front_deadline_;
      if (!have_ready) {
        out.put(full.first, full.lanes, full.stride);
        continue;
      }
      push_ready(full);
    }
  }
  sync_out();
  return out.size > 0;
}

}  // namespace musa::isa
