#include "isa/vector_fusion.hpp"

#include "common/check.hpp"
#include "trace/instr_source.hpp"

namespace musa::isa {

VectorFusion::VectorFusion(trace::InstrSource& source, int vector_bits,
                           int element_bits,
                           std::uint64_t max_fusion_distance)
    : source_(source) {
  MUSA_CHECK_MSG(element_bits > 0 && vector_bits >= element_bits,
                 "vector width must be at least one element wide");
  MUSA_CHECK_MSG(vector_bits % element_bits == 0,
                 "vector width must be a whole number of elements");
  target_lanes_ = vector_bits / element_bits;
  if (max_fusion_distance > 0) max_distance_ = max_fusion_distance;
}

void VectorFusion::emit_group(const Group& g, FusedInstr& out) {
  out.first = g.first;
  out.lanes = g.count;
  out.stride = g.stride;
  out.bytes = is_mem(g.first.op) ? g.bytes : 0;
  ++stats_.out_instrs;
  if (g.count == target_lanes_ && target_lanes_ > 1) ++stats_.full_groups;
}

bool VectorFusion::flush_one(FusedInstr& out, bool only_stale) {
  for (auto it = groups_.begin(); it != groups_.end(); ++it) {
    if (only_stale &&
        stats_.in_instrs - it->second.started_at <= max_distance_)
      continue;
    emit_group(it->second, out);
    if (it->second.count < target_lanes_) ++stats_.partial_flushes;
    groups_.erase(it);
    return true;
  }
  return false;
}

bool VectorFusion::next(FusedInstr& out) {
  while (true) {
    // Emit anything already produced, preserving completion order.
    if (!ready_.empty()) {
      out = ready_.front();
      ready_.erase(ready_.begin());
      return true;
    }

    isa::Instr in;
    if (source_done_ || !source_.next(in)) {
      // End of stream: drain remaining partial groups.
      source_done_ = true;
      return flush_one(out, /*only_stale=*/false);
    }
    ++stats_.in_instrs;

    // Groups older than the fusion window flush partial — the loop's run
    // ended before the group filled. Distance ticks on *every* consumed
    // instruction, vectorizable or not.
    FusedInstr stale;
    while (flush_one(stale, /*only_stale=*/true)) ready_.push_back(stale);

    if (!in.vectorizable || target_lanes_ <= 1) {
      FusedInstr scalar;
      scalar.first = in;
      scalar.lanes = 1;
      scalar.stride = 0;
      scalar.bytes = is_mem(in.op) ? in.size : 0;
      ++stats_.out_instrs;
      ready_.push_back(scalar);
      continue;
    }

    auto [it, inserted] = groups_.try_emplace(in.static_id);
    Group& g = it->second;
    if (inserted) {
      g.first = in;
      g.count = 1;
      g.bytes = in.size;
      g.started_at = stats_.in_instrs;
    } else {
      if (g.count == 1)
        g.stride = static_cast<std::int64_t>(in.addr) -
                   static_cast<std::int64_t>(g.first.addr);
      ++g.count;
      g.bytes += in.size;
    }

    if (g.count >= target_lanes_) {
      FusedInstr full;
      emit_group(g, full);
      groups_.erase(it);
      ready_.push_back(full);
    }
  }
}

}  // namespace musa::isa
