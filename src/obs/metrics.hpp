// Lock-cheap metric registry: named counters, gauges and histograms shared
// by every subsystem (DESIGN.md §7e "Observability").
//
// Counters and histograms are *striped*: each metric owns a small array of
// cache-line-padded atomic cells, and a thread writes only the cell indexed
// by its thread id — the same merge-on-snapshot discipline as the
// StageMemo hit/miss counters, generalised. An add() is therefore one
// relaxed fetch_add with no false sharing between workers; snapshot() sums
// the stripes. The registry mutex is touched only on metric *creation*
// (cold — call sites cache the returned reference in a function-local
// static) and on snapshot.
//
// Naming scheme: lowercase dotted "subsystem.object.event", units as a
// trailing component where they matter ("sweep.worker.busy_us"). Metrics
// are process-global and monotone within a process; per-run deltas are the
// caller's job (see MetricRegistry::reset for benches/tests).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace musa::obs {

/// Small dense id for the calling thread, assigned on first use; stable for
/// the thread's lifetime. Doubles as the trace `tid` and the stripe index
/// (mod kStripes), so a worker always hits the same cell.
std::uint32_t thread_id();

/// Stripe count per metric: enough that a worker pool (clamped to 1024 but
/// in practice core-count-sized) rarely shares a cell, small enough that a
/// metric costs ~4 kB.
constexpr std::uint32_t kStripes = 64;

namespace detail {
struct alignas(64) Cell {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

/// Monotone counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[thread_id() % kStripes].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() noexcept {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::Cell, kStripes> cells_;
};

/// Last-write-wins instantaneous value (occupancy, queue depth, ...).
class Gauge {
 public:
  void set(double v) noexcept { bits_.store(pack(v), std::memory_order_relaxed); }
  double value() const noexcept { return unpack(bits_.load(std::memory_order_relaxed)); }
  void reset() noexcept { bits_.store(pack(0.0), std::memory_order_relaxed); }

 private:
  // Stored as bit pattern: atomic<double> arithmetic is not needed and
  // atomic<uint64_t> is lock-free everywhere we build.
  static std::uint64_t pack(double v) {
    std::uint64_t b;
    static_assert(sizeof b == sizeof v);
    __builtin_memcpy(&b, &v, sizeof b);
    return b;
  }
  static double unpack(std::uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof v);
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

/// Histogram of non-negative integer samples (we use microseconds) in
/// power-of-two buckets: bucket b counts samples with bit_width(v) == b,
/// i.e. v in [2^(b-1), 2^b). Bucket 0 counts zeros. 44 buckets cover
/// ~200 days in µs.
class Histogram {
 public:
  static constexpr std::uint32_t kBuckets = 44;

  void observe(std::uint64_t v) noexcept {
    Shard& s = shards_[thread_id() % kStripes];
    const std::uint32_t b =
        std::min<std::uint32_t>(kBuckets - 1, bit_width_u64(v));
    s.buckets[b].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const {
      return count ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }
    /// Upper bound of the bucket holding the q-quantile sample (q in
    /// [0, 1]) — a factor-of-two estimate, which is all a one-screen
    /// summary needs.
    std::uint64_t quantile_bound(double q) const;
  };

  Snapshot snapshot() const {
    Snapshot out;
    for (const auto& s : shards_) {
      out.sum += s.sum.load(std::memory_order_relaxed);
      for (std::uint32_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t n = s.buckets[b].load(std::memory_order_relaxed);
        out.buckets[b] += n;
        out.count += n;
      }
    }
    return out;
  }

  void reset() noexcept {
    for (auto& s : shards_) {
      s.sum.store(0, std::memory_order_relaxed);
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static std::uint32_t bit_width_u64(std::uint64_t v) noexcept {
    return v == 0 ? 0 : 64 - static_cast<std::uint32_t>(__builtin_clzll(v));
  }
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Shard, kStripes> shards_;
};

/// Merged point-in-time view of every registered metric, sorted by name —
/// deterministic export order for metrics.json and the summary table.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

class MetricRegistry {
 public:
  /// The process-wide registry every subsystem instruments into.
  static MetricRegistry& global();

  /// Create-or-get by name. The returned reference is valid for the
  /// registry's lifetime; call sites cache it (function-local static) so
  /// the map lookup is paid once, not per increment. A name registered as
  /// one kind cannot be re-registered as another (throws SimError).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (benches and tests that want per-run deltas).
  /// Registered names and cached references stay valid.
  void reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, Kind kind);

  mutable std::shared_mutex mu_;
  // std::map: stable node storage *and* name-sorted iteration for free.
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace musa::obs
