// RAII trace spans over a bounded lock-free event ring (DESIGN.md §7e).
//
// Tracing is *off by default* and armed process-wide by Tracer::install()
// (run_dse --trace-out / MUSA_TRACE). When disarmed, constructing a Span is
// one relaxed atomic load and a branch — cheap enough for per-point,
// per-stage scopes in the sweep hot path (the ≤2% sweep_bench budget).
// When armed, a Span captures a start timestamp and, on destruction, pushes
// one complete ("X") trace event into the ring: stage name, point key,
// worker thread id, outcome (ok / fail / quarantined / memo-hit) and retry
// attempt.
//
// The ring is a fixed-capacity MPMC structure: writers claim a slot with
// one fetch_add and publish it with a release store of the slot's sequence
// number; when the ring wraps, the oldest events are overwritten and
// counted as dropped (observability must never stall the sweep). Draining
// is a *quiescent* operation — the exporter runs after the worker pool has
// joined, so it sees fully published slots only.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

namespace musa::obs {

/// What a span's scope did. kNone renders as no annotation.
enum class Outcome : std::uint8_t {
  kNone,
  kOk,
  kFail,
  kQuarantined,
  kMemoHit,
  kRetry,
};

const char* outcome_name(Outcome o);

/// One timeline event. Fixed-size and trivially copyable so the ring never
/// allocates: `key` holds a truncated copy of the point key.
struct TraceEvent {
  static constexpr std::size_t kKeyBytes = 56;

  std::uint64_t ts_us = 0;   // start, µs since the tracer epoch
  std::uint64_t dur_us = 0;  // 0 for instant events
  const char* name = "";     // static string: stage / event name
  char phase = 'X';          // Chrome trace_event phase: 'X' span, 'i' instant
  Outcome outcome = Outcome::kNone;
  std::uint8_t attempt = 0;  // retry attempt (0 = unset)
  std::uint16_t tid = 0;     // obs::thread_id() of the emitting worker
  char key[kKeyBytes] = {};  // NUL-terminated, truncated point key
};

class Tracer {
 public:
  /// Arms tracing with a ring of `capacity` events (rounded up to a power
  /// of two). Records the epoch: a steady-clock zero for durations plus a
  /// wall-clock anchor so traces from sibling shard *processes* land on one
  /// timeline when merged. Idempotent; re-installing clears prior events.
  static void install(std::size_t capacity = 1u << 17);

  /// Disarms tracing and frees the ring.
  static void shutdown();

  /// One relaxed load — the only cost every disabled span pays.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// µs since the steady epoch (0 when not installed).
  static std::uint64_t now_us();

  /// Wall-clock µs (Unix time) of the steady epoch; exporters add this to
  /// event timestamps so shard processes share a time base.
  static std::uint64_t epoch_unix_us();

  /// Pushes one event (no-op when disarmed). Lock-free, never blocks.
  static void emit(const TraceEvent& ev);

  /// Events recorded so far, sorted by ts — call only while no emitter is
  /// running (after worker join). Does not clear the ring.
  static std::vector<TraceEvent> drain();

  /// Events lost to ring wrap-around since install().
  static std::uint64_t dropped();

 private:
  static std::atomic<bool> enabled_;
};

/// Copies `key` into `ev.key`, truncating to the fixed buffer.
void set_event_key(TraceEvent& ev, std::string_view key);

/// RAII scope emitting one complete span event on destruction.
class Span {
 public:
  Span(const char* name, std::string_view key = {}) {
    if (!Tracer::enabled()) return;
    armed_ = true;
    ev_.name = name;
    ev_.ts_us = Tracer::now_us();
    set_event_key(ev_, key);
  }
  ~Span() {
    if (!armed_) return;
    ev_.dur_us = Tracer::now_us() - ev_.ts_us;
    Tracer::emit(ev_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_outcome(Outcome o) {
    if (armed_) ev_.outcome = o;
  }
  void set_attempt(int attempt) {
    if (armed_)
      ev_.attempt = static_cast<std::uint8_t>(
          attempt < 0 ? 0 : attempt > 255 ? 255 : attempt);
  }

 private:
  bool armed_ = false;
  TraceEvent ev_;
};

/// Zero-duration instant event ("i" phase) — quarantines, retries,
/// memo hits. No-op when tracing is disarmed.
void instant(const char* name, std::string_view key,
             Outcome outcome = Outcome::kNone);

}  // namespace musa::obs
