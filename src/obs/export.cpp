#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/check.hpp"

namespace musa::obs {

namespace {

/// JSON string escaping: quotes, backslashes, and control characters (the
/// point keys and exception-derived names must never corrupt the trace).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_file_or_throw(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  out.flush();
  if (!out)
    throw SimError("cannot write " + path, ErrorClass::kIo);
}

std::string metadata_event_json(const TraceMeta& meta) {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                "\"tid\":0,\"args\":{\"name\":\"",
                meta.pid);
  return std::string(buf) + json_escape(meta.process_name) + "\"}}";
}

}  // namespace

std::string trace_event_json(const TraceEvent& ev,
                             std::uint64_t epoch_unix_us,
                             const TraceMeta& meta) {
  char head[192];
  std::snprintf(head, sizeof head,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",%s"
                "\"ts\":%llu,\"dur\":%llu,\"pid\":%d,\"tid\":%u,\"args\":{",
                ev.name, ev.phase == 'i' ? "event" : "stage", ev.phase,
                ev.phase == 'i' ? "\"s\":\"t\"," : "",
                static_cast<unsigned long long>(epoch_unix_us + ev.ts_us),
                static_cast<unsigned long long>(ev.dur_us), meta.pid,
                static_cast<unsigned>(ev.tid));
  std::string out = head;
  bool first = true;
  const auto arg = [&](const char* k, const std::string& v) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += k;
    out += "\":\"";
    out += json_escape(v);
    out += '"';
  };
  if (ev.key[0] != '\0') arg("key", ev.key);
  if (ev.outcome != Outcome::kNone) arg("outcome", outcome_name(ev.outcome));
  if (ev.attempt != 0) {
    if (!first) out += ',';
    first = false;
    out += "\"attempt\":" + std::to_string(ev.attempt);
  }
  out += "}}";
  return out;
}

void write_trace_jsonl(const std::string& path,
                       const std::vector<TraceEvent>& events,
                       std::uint64_t epoch_unix_us, const TraceMeta& meta) {
  std::string body = metadata_event_json(meta);
  body += '\n';
  for (const TraceEvent& ev : events) {
    body += trace_event_json(ev, epoch_unix_us, meta);
    body += '\n';
  }
  write_file_or_throw(path, body);
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        std::uint64_t epoch_unix_us, const TraceMeta& meta,
                        const std::vector<std::string>& sidecar_paths) {
  std::string body = "{\"traceEvents\":[\n";
  bool first = true;
  const auto push = [&](const std::string& line) {
    if (line.empty()) return;
    if (!first) body += ",\n";
    first = false;
    body += line;
  };
  push(metadata_event_json(meta));
  // Sidecar lines are already complete event objects on the shared wall
  // clock; splice them in verbatim.
  for (const std::string& sidecar : sidecar_paths) {
    std::ifstream in(sidecar);
    if (!in) continue;  // a shard that never traced is not an error
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line.front() != '{') continue;
      push(line);
    }
  }
  for (const TraceEvent& ev : events)
    push(trace_event_json(ev, epoch_unix_us, meta));
  body += "\n],\"displayTimeUnit\":\"ms\"}\n";
  write_file_or_throw(path, body);
}

std::string trace_sidecar_path(const std::string& trace_path, int shard_index,
                               int shard_count) {
  return trace_path + ".shard-" + std::to_string(shard_index) + "-of-" +
         std::to_string(shard_count) + ".events.jsonl";
}

std::vector<std::string> find_trace_sidecars(const std::string& trace_path) {
  namespace fs = std::filesystem;
  const fs::path artifact(trace_path);
  const fs::path dir =
      artifact.has_parent_path() ? artifact.parent_path() : fs::path(".");
  const std::string stem = artifact.filename().string() + ".";
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= stem.size() || name.compare(0, stem.size(), stem) != 0)
      continue;
    if (!name.ends_with(".events.jsonl")) continue;
    out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snap) {
  std::string body = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    body += first ? "\n" : ",\n";
    first = false;
    body += "    \"" + json_escape(name) +
            "\": " + std::to_string(value);
  }
  body += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    body += first ? "\n" : ",\n";
    first = false;
    body += "    \"" + json_escape(name) + "\": " + buf;
  }
  body += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    char buf[224];
    std::snprintf(buf, sizeof buf,
                  "{\"count\": %llu, \"sum\": %llu, \"mean\": %.3f, "
                  "\"p50\": %llu, \"p95\": %llu, \"p99\": %llu}",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum), h.mean(),
                  static_cast<unsigned long long>(h.quantile_bound(0.50)),
                  static_cast<unsigned long long>(h.quantile_bound(0.95)),
                  static_cast<unsigned long long>(h.quantile_bound(0.99)));
    body += first ? "\n" : ",\n";
    first = false;
    body += "    \"" + json_escape(name) + "\": " + buf;
  }
  body += "\n  }\n}\n";
  write_file_or_throw(path, body);
}

std::string summary_table(const MetricsSnapshot& snap) {
  std::string out;
  char buf[192];
  bool any = false;
  for (const auto& [name, value] : snap.counters) {
    if (value == 0) continue;  // unexercised seams would drown the screen
    if (!any) {
      out += "  counter                                   value\n";
      any = true;
    }
    std::snprintf(buf, sizeof buf, "  %-36s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  any = false;
  for (const auto& [name, value] : snap.gauges) {
    if (!any) {
      out += "  gauge                                     value\n";
      any = true;
    }
    std::snprintf(buf, sizeof buf, "  %-36s %12.4g\n", name.c_str(), value);
    out += buf;
  }
  any = false;
  for (const auto& [name, h] : snap.histograms) {
    if (h.count == 0) continue;
    if (!any) {
      out += "  histogram                                 count"
             "       mean        p50        p95\n";
      any = true;
    }
    std::snprintf(buf, sizeof buf, "  %-36s %10llu %10.1f %10llu %10llu\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean(),
                  static_cast<unsigned long long>(h.quantile_bound(0.50)),
                  static_cast<unsigned long long>(h.quantile_bound(0.95)));
    out += buf;
  }
  if (out.empty()) out = "  (no metrics recorded)\n";
  return out;
}

}  // namespace musa::obs
