#include "obs/metrics.hpp"

#include <mutex>

#include "common/check.hpp"

namespace musa::obs {

std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint64_t Histogram::Snapshot::quantile_bound(double q) const {
  if (count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (std::uint32_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) return b == 0 ? 0 : (1ull << b) - 1;
  }
  return (1ull << (kBuckets - 1)) - 1;
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

MetricRegistry::Entry& MetricRegistry::entry(std::string_view name,
                                             Kind kind) {
  {
    std::shared_lock lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      MUSA_CHECK_MSG(it->second.kind == kind,
                     "metric registered twice with different kinds: " +
                         std::string(name));
      return it->second;
    }
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] = entries_.try_emplace(std::string(name));
  if (inserted) {
    it->second.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        it->second.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        it->second.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        it->second.histogram = std::make_unique<Histogram>();
        break;
    }
  } else {
    MUSA_CHECK_MSG(it->second.kind == kind,
                   "metric registered twice with different kinds: " +
                       std::string(name));
  }
  return it->second;
}

Counter& MetricRegistry::counter(std::string_view name) {
  return *entry(name, Kind::kCounter).counter;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  return *entry(name, Kind::kGauge).gauge;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  return *entry(name, Kind::kHistogram).histogram;
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MetricsSnapshot out;
  std::shared_lock lock(mu_);
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out.counters.emplace_back(name, e.counter->value());
        break;
      case Kind::kGauge:
        out.gauges.emplace_back(name, e.gauge->value());
        break;
      case Kind::kHistogram:
        out.histograms.emplace_back(name, e.histogram->snapshot());
        break;
    }
  }
  return out;
}

void MetricRegistry::reset() {
  std::unique_lock lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter: e.counter->reset(); break;
      case Kind::kGauge: e.gauge->reset(); break;
      case Kind::kHistogram: e.histogram->reset(); break;
    }
  }
}

}  // namespace musa::obs
