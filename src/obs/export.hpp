// Exporters for the observability subsystem (DESIGN.md §7e): Chrome
// trace_event JSON (loadable in Perfetto / chrome://tracing), the per-shard
// JSONL sidecar protocol that lets separate shard *processes* contribute to
// one merged timeline, a flat metrics.json snapshot, and the one-screen
// end-of-sweep summary table.
//
// Sidecar protocol: a sharded run cannot know when its siblings finish, so
// each traced process writes `<trace>.{tag}.events.jsonl` — one complete
// Chrome trace_event object per line, timestamps already anchored to wall
// clock (Tracer::epoch_unix_us) so processes share a time base. The run
// that finalizes the sweep merges every sidecar plus its own events into
// the single `<trace>` JSON and deletes the sidecars — the same
// merge-on-finalize discipline as the result journals.
//
// Exports are best-effort observability artifacts, not crash-safe state:
// they use plain buffered writes, never the fsync'd journal machinery.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace musa::obs {

/// Viewer identity of the emitting process: `pid` becomes the Chrome trace
/// pid (one lane per shard), `process_name` its label.
struct TraceMeta {
  int pid = 0;
  std::string process_name = "musa";
};

/// One event as a complete Chrome trace_event JSON object (no trailing
/// newline). `epoch_unix_us` is added to the event's relative timestamp.
std::string trace_event_json(const TraceEvent& ev,
                             std::uint64_t epoch_unix_us,
                             const TraceMeta& meta);

/// Writes events as JSONL (one object per line, metadata first).
/// Throws SimError{io} on write failure.
void write_trace_jsonl(const std::string& path,
                       const std::vector<TraceEvent>& events,
                       std::uint64_t epoch_unix_us, const TraceMeta& meta);

/// Writes a self-contained Chrome trace JSON from in-process events plus
/// any already-serialised sidecar JSONL files (their lines are spliced in
/// verbatim). Perfetto and chrome://tracing load the result directly.
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        std::uint64_t epoch_unix_us, const TraceMeta& meta,
                        const std::vector<std::string>& sidecar_paths = {});

/// Sidecar path for one shard process: `<trace>.shard-i-of-N.events.jsonl`.
std::string trace_sidecar_path(const std::string& trace_path, int shard_index,
                               int shard_count);

/// Every sidecar belonging to `trace_path`, sorted for deterministic merge
/// order.
std::vector<std::string> find_trace_sidecars(const std::string& trace_path);

/// Flat JSON snapshot of every registered metric:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// mean, p50, p95, p99}}}. Throws SimError{io} on write failure.
void write_metrics_json(const std::string& path, const MetricsSnapshot& snap);

/// One-screen, name-sorted text rendering of a snapshot (end-of-sweep
/// summary). Zero-valued counters are elided.
std::string summary_table(const MetricsSnapshot& snap);

}  // namespace musa::obs
