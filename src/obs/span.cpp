#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>

#include "obs/metrics.hpp"

namespace musa::obs {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kNone: return "";
    case Outcome::kOk: return "ok";
    case Outcome::kFail: return "fail";
    case Outcome::kQuarantined: return "quarantined";
    case Outcome::kMemoHit: return "memo-hit";
    case Outcome::kRetry: return "retry";
  }
  return "";
}

void set_event_key(TraceEvent& ev, std::string_view key) {
  const std::size_t n = std::min(key.size(), TraceEvent::kKeyBytes - 1);
  std::memcpy(ev.key, key.data(), n);
  ev.key[n] = '\0';
}

namespace {

struct Slot {
  // seq == claim index + 1 once the payload below is fully written; a
  // release store here pairs with the quiescent drain's acquire load.
  std::atomic<std::uint64_t> seq{0};
  TraceEvent ev;
};

struct Ring {
  explicit Ring(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots = std::make_unique<Slot[]>(cap);
    mask = cap - 1;
  }
  std::unique_ptr<Slot[]> slots;
  std::size_t mask = 0;
  std::atomic<std::uint64_t> head{0};
  std::chrono::steady_clock::time_point steady_epoch{};
  std::uint64_t epoch_unix_us = 0;
};

// Owned pointer, swapped only by install()/shutdown() — both are
// quiescent operations (no emitters running), like drain().
Ring* g_ring = nullptr;

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

void Tracer::install(std::size_t capacity) {
  shutdown();
  auto* ring = new Ring(capacity);
  ring->steady_epoch = std::chrono::steady_clock::now();
  ring->epoch_unix_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  g_ring = ring;
  enabled_.store(true, std::memory_order_release);
}

void Tracer::shutdown() {
  enabled_.store(false, std::memory_order_release);
  delete g_ring;
  g_ring = nullptr;
}

std::uint64_t Tracer::now_us() {
  const Ring* ring = g_ring;
  if (ring == nullptr) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ring->steady_epoch)
          .count());
}

std::uint64_t Tracer::epoch_unix_us() {
  const Ring* ring = g_ring;
  return ring != nullptr ? ring->epoch_unix_us : 0;
}

void Tracer::emit(const TraceEvent& ev) {
  Ring* ring = g_ring;
  if (ring == nullptr || !enabled()) return;
  const std::uint64_t idx =
      ring->head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring->slots[idx & ring->mask];
  slot.ev = ev;
  slot.ev.tid = static_cast<std::uint16_t>(thread_id());
  slot.seq.store(idx + 1, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::drain() {
  const Ring* ring = g_ring;
  std::vector<TraceEvent> out;
  if (ring == nullptr) return out;
  const std::uint64_t head = ring->head.load(std::memory_order_acquire);
  const std::uint64_t cap = ring->mask + 1;
  out.reserve(std::min<std::uint64_t>(head, cap));
  for (std::uint64_t i = 0; i <= ring->mask; ++i) {
    const Slot& slot = ring->slots[i];
    if (slot.seq.load(std::memory_order_acquire) == 0) continue;
    out.push_back(slot.ev);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us != b.ts_us ? a.ts_us < b.ts_us
                                        : a.dur_us > b.dur_us;
            });
  return out;
}

std::uint64_t Tracer::dropped() {
  const Ring* ring = g_ring;
  if (ring == nullptr) return 0;
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  const std::uint64_t cap = ring->mask + 1;
  return head > cap ? head - cap : 0;
}

void instant(const char* name, std::string_view key, Outcome outcome) {
  if (!Tracer::enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'i';
  ev.ts_us = Tracer::now_us();
  ev.outcome = outcome;
  set_event_key(ev, key);
  Tracer::emit(ev);
}

}  // namespace musa::obs
