#include "apps/apps.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace musa::apps {

namespace {

// ---------------------------------------------------------------------------
// HYDRO: Godunov-scheme compressible hydrodynamics. Compute-bound and cache
// friendly (Fig. 1: L1 6.0 / L2 1.8 / L3 0.2 MPKI); best-scaling code of the
// five (Fig. 2); working set per core fits in 512 kB L2 (4× L2-MPKI drop
// when upgrading from 256 kB, §V-B.2); moderately vectorisable (+20% at
// 512-bit); small tasks that expose the runtime dispatch bottleneck above
// 2.5 GHz (Fig. 9a).
// ---------------------------------------------------------------------------
AppModel make_hydro() {
  AppModel a;
  a.name = "hydro";
  a.kernel.name = "hydro_godunov";
  a.kernel.vec_body = {.loads = 2, .fp_add = 2, .fp_mul = 2, .stores = 1};
  a.kernel.vec_trip = 16;
  a.kernel.vec_ws_bytes = 24 * kKiB;  // L1-resident slice
  a.kernel.vec_stride = 8;
  a.kernel.scalar_tail = {.int_alu = 60, .int_mul = 4, .fp_add = 30,
                          .fp_mul = 30, .fp_div = 2, .loads = 60,
                          .stores = 25, .branches = 20};
  a.kernel.ilp_chains = 6;
  a.kernel.streams = {
      {.share = 0.133, .ws_bytes = 96 * kKiB, .stride = 8},   // L2-resident
      {.share = 0.090,
       .ws_bytes = 224 * kKiB,
       .stride = 8,
       .dependent = true},  // fits 512 kB L2 (serialising indirection)
      {.share = 0.006, .ws_bytes = 96 * kMiB, .stride = 8},   // DRAM stream
      {.share = 0.771, .ws_bytes = 24 * kKiB, .stride = 8},   // L1-resident
  };
  a.task_instrs = 96e3;  // small tasks: runtime-bound at high frequency
  a.tasks_per_region = 768;
  a.task_imbalance = 0.04;
  a.serial_segments = 0;
  a.ref_region_seconds = 12e-3;  // 768 × ~16 µs reference tasks
  a.iterations = 8;
  a.rank_imbalance = 0.015;
  a.p2p_neighbors = 2;
  a.p2p_bytes = 256 * 1024;
  a.allreduce = false;
  a.barrier = false;  // neighbour exchange only: no global sync pressure
  a.dispatch_overhead_s = 140e-9;  // binds above 2.5 GHz (Fig. 9a)
  return a;
}

// ---------------------------------------------------------------------------
// SP-MZ: NAS multi-zone scalar-pentadiagonal solver. Streaming access with
// very high L1 MPKI (Fig. 1: 97 / 22 / 13.8); the most vectorisable code
// (+75% at 512-bit, still gaining at 2048-bit in Table II); no serialised
// segments, but too few coarse zones to fill 64 cores (§V-A).
// ---------------------------------------------------------------------------
AppModel make_spmz() {
  AppModel a;
  a.name = "spmz";
  a.kernel.name = "spmz_sweep";
  a.kernel.vec_body = {.loads = 3, .fp_add = 3, .fp_mul = 3, .stores = 2};
  a.kernel.vec_trip = 64;  // long vector loops: fusable to 2048-bit
  a.kernel.vec_ws_bytes = 128 * kKiB;  // L2-resident streaming tiles
  a.kernel.vec_stride = 8;
  a.kernel.scalar_tail = {.int_alu = 20, .int_mul = 1, .fp_add = 8,
                          .fp_mul = 8, .fp_div = 1, .loads = 36,
                          .stores = 15, .branches = 6};
  a.kernel.ilp_chains = 6;
  a.kernel.load_use_prob = 0.15;  // streaming sweeps: few load-use chains
  a.kernel.streams = {
      // Line-strided (stride 64) streams: every access a new line.
      {.share = 0.350, .ws_bytes = 48 * kKiB, .stride = 64},   // L2 hit
      {.share = 0.160, .ws_bytes = 400 * kKiB, .stride = 64},  // L3 hit
      {.share = 0.050, .ws_bytes = 64 * kMiB, .stride = 64},   // DRAM
      {.share = 0.440, .ws_bytes = 24 * kKiB, .stride = 8},    // L1-resident
  };
  a.task_instrs = 600e3;  // coarse zones
  a.tasks_per_region = 80;
  a.task_imbalance = 0.30;  // zone sizes differ
  a.serial_segments = 0;
  a.ref_region_seconds = 28.8e-3;
  a.iterations = 8;
  a.rank_imbalance = 0.05;
  a.p2p_neighbors = 2;
  a.p2p_bytes = 1024 * 1024;
  a.allreduce = false;
  a.barrier = true;
  return a;
}

// ---------------------------------------------------------------------------
// BT-MZ: NAS multi-zone block-tridiagonal solver. Compute-intensive,
// moderate cache sensitivity (+9% with larger caches), serialised segments
// between sweeps (§V-A), moderate vectorisation.
// ---------------------------------------------------------------------------
AppModel make_btmz() {
  AppModel a;
  a.name = "btmz";
  a.kernel.name = "btmz_solve";
  a.kernel.vec_body = {.loads = 2, .fp_add = 3, .fp_mul = 3, .stores = 1};
  a.kernel.vec_trip = 24;
  a.kernel.vec_ws_bytes = 128 * kKiB;
  a.kernel.vec_stride = 8;
  a.kernel.scalar_tail = {.int_alu = 50, .int_mul = 3, .fp_add = 40,
                          .fp_mul = 40, .fp_div = 3, .loads = 65,
                          .stores = 25, .branches = 15};
  a.kernel.ilp_chains = 5;
  a.kernel.streams = {
      {.share = 0.020, .ws_bytes = 48 * kKiB, .stride = 64},   // L2 hit
      {.share = 0.012,
       .ws_bytes = 256 * kKiB,
       .stride = 64,
       .dependent = true},  // 512 kB-sensitive (serialising indirection)
      {.share = 0.004, .ws_bytes = 64 * kMiB, .stride = 64},   // DRAM
      {.share = 0.964, .ws_bytes = 26 * kKiB, .stride = 8},    // L1-resident
  };
  a.task_instrs = 400e3;
  a.tasks_per_region = 256;
  a.task_imbalance = 0.20;
  a.serial_segments = 3;       // inter-sweep serial sections
  a.serial_task_work = 1.0;
  a.ref_region_seconds = 51.2e-3;
  a.iterations = 8;
  a.rank_imbalance = 0.06;
  a.p2p_neighbors = 2;
  a.p2p_bytes = 384 * 1024;
  a.allreduce = false;
  a.barrier = true;
  return a;
}

// ---------------------------------------------------------------------------
// Specfem3D: spectral-element seismic wave propagation. Irregular
// (unstructured-mesh) access with long dependence chains — strongly
// OoO-sensitive (−60% on the low-end core, the only code > 5% slower on
// medium, §V-B.3); cache-size-insensitive; high per-core bandwidth demand
// that does not scale because only a handful of tasks exist (Fig. 3).
// ---------------------------------------------------------------------------
AppModel make_spec3d() {
  AppModel a;
  a.name = "spec3d";
  a.kernel.name = "spec3d_element";
  a.kernel.vec_body = {.loads = 3, .fp_add = 2, .fp_mul = 3, .stores = 1};
  a.kernel.vec_trip = 32;
  a.kernel.vec_ws_bytes = 96 * kKiB;  // element matrices: L2-resident
  a.kernel.vec_stride = 8;
  a.kernel.scalar_tail = {.int_alu = 55, .int_mul = 4, .fp_add = 35,
                          .fp_mul = 35, .fp_div = 2, .loads = 60,
                          .stores = 20, .branches = 14};
  a.kernel.ilp_chains = 1;  // serial update chains: latency-bound
  a.kernel.streams = {
      // Irregular (stride-0) gathers through the unstructured mesh.
      {.share = 0.050, .ws_bytes = 48 * kKiB, .stride = 0},   // L2 hit
      {.share = 0.020, .ws_bytes = 640 * kKiB, .stride = 0},  // L3 hit
      {.share = 0.020, .ws_bytes = 96 * kMiB, .stride = 0},   // DRAM
      {.share = 0.910, .ws_bytes = 24 * kKiB, .stride = 8},   // L1-resident
  };
  a.task_instrs = 2.4e6;  // very coarse tasks...
  a.tasks_per_region = 14;  // ...and far too few of them (Fig. 3)
  a.task_imbalance = 0.25;
  a.serial_segments = 0;
  a.ref_region_seconds = 28.8e-3;
  a.iterations = 8;
  a.rank_imbalance = 0.05;
  a.p2p_neighbors = 2;
  a.p2p_bytes = 192 * 1024;
  a.allreduce = true;
  a.allreduce_bytes = 64;
  a.barrier = false;
  return a;
}

// ---------------------------------------------------------------------------
// LULESH: unstructured shock hydrodynamics. Heavily memory-bandwidth-bound
// (the only code gaining from 8 channels: +60% at 64 cores, §V-B.4); short
// inner loops defeat the fusion model (no SIMD gain, §V-B.1); thread-level
// load imbalance limits 64-core scaling (§V-A) and rank-level imbalance
// fills MPI barriers (Fig. 4).
// ---------------------------------------------------------------------------
AppModel make_lulesh() {
  AppModel a;
  a.name = "lulesh";
  a.kernel.name = "lulesh_hourglass";
  a.kernel.vec_body = {.loads = 2, .fp_add = 1, .fp_mul = 1, .stores = 1};
  a.kernel.vec_trip = 3;  // short loops: groups never fill past 128-bit
  a.kernel.vec_ws_bytes = 24 * kKiB;  // L1-resident gather slice
  a.kernel.vec_stride = 8;
  a.kernel.scalar_tail = {.int_alu = 45, .int_mul = 3, .fp_add = 25,
                          .fp_mul = 25, .fp_div = 2, .loads = 40,
                          .stores = 20, .branches = 12};
  a.kernel.ilp_chains = 4;
  a.kernel.streams = {
      {.share = 0.040, .ws_bytes = 32 * kKiB, .stride = 8},    // L2 hit
      {.share = 0.005, .ws_bytes = 420 * kKiB, .stride = 64},  // L2-size-sens.
      {.share = 0.035, .ws_bytes = 256 * kMiB, .stride = 64},  // DRAM stream
      {.share = 0.920, .ws_bytes = 24 * kKiB, .stride = 8},    // L1-resident
  };
  a.task_instrs = 150e3;
  a.tasks_per_region = 72;
  a.task_imbalance = 0.35;  // thread load imbalance (§V-A)
  a.serial_segments = 0;
  a.ref_region_seconds = 24e-3;
  a.iterations = 8;
  a.rank_imbalance = 0.12;  // rank imbalance → barrier waits (Fig. 4)
  a.p2p_neighbors = 2;
  a.p2p_bytes = 768 * 1024;
  a.allreduce = true;  // global dt reduction every iteration
  a.allreduce_bytes = 8;
  a.barrier = true;
  return a;
}

}  // namespace

const std::vector<AppModel>& registry() {
  static const std::vector<AppModel> apps = {
      make_hydro(), make_spmz(), make_btmz(), make_spec3d(), make_lulesh()};
  return apps;
}

const AppModel& find_app(const std::string& name) {
  for (const auto& a : registry())
    if (a.name == name) return a;
  throw SimError("unknown application: " + name);
}

std::vector<Phase> AppModel::phases() const {
  std::vector<Phase> all;
  Phase primary;
  primary.name = name + "_main";
  primary.kernel = kernel;
  primary.task_instrs = task_instrs;
  primary.tasks_per_region = tasks_per_region;
  primary.task_imbalance = task_imbalance;
  primary.serial_segments = serial_segments;
  primary.serial_task_work = serial_task_work;
  primary.ref_region_seconds = ref_region_seconds;
  all.push_back(std::move(primary));
  all.insert(all.end(), extra_phases.begin(), extra_phases.end());
  return all;
}

trace::Region make_region(const Phase& phase, std::uint64_t seed) {
  MUSA_CHECK_MSG(phase.tasks_per_region > 0, "region needs tasks");
  trace::Region region;
  region.name = phase.name + "_region";
  Rng rng(seed ^ 0x9d2c'5680'1c3a'77f1ull);

  const int chunks = phase.serial_segments + 1;
  const int per_chunk =
      (phase.tasks_per_region + chunks - 1) / chunks;

  std::int32_t prev_serial = -1;  // index of the serial task gating a chunk
  int produced = 0;
  for (int c = 0; c < chunks && produced < phase.tasks_per_region; ++c) {
    std::vector<std::int32_t> chunk_tasks;
    const int count = std::min(per_chunk, phase.tasks_per_region - produced);
    for (int i = 0; i < count; ++i, ++produced) {
      trace::TaskInstance t;
      t.type = 0;
      t.work = std::max(0.15, rng.next_normal(1.0, phase.task_imbalance));
      if (prev_serial >= 0) t.deps.push_back(prev_serial);
      chunk_tasks.push_back(static_cast<std::int32_t>(region.tasks.size()));
      region.tasks.push_back(std::move(t));
    }
    if (c + 1 < chunks) {
      // Serial section: depends on the whole chunk, gates the next one.
      trace::TaskInstance s;
      s.type = 0;
      s.work = phase.serial_task_work;
      s.deps = chunk_tasks;
      prev_serial = static_cast<std::int32_t>(region.tasks.size());
      region.tasks.push_back(std::move(s));
    }
  }
  return region;
}

trace::Region make_region(const AppModel& app, std::uint64_t seed) {
  return make_region(app.phases().front(), seed);
}

trace::AppTrace make_burst_trace(const AppModel& app, int ranks,
                                 std::uint64_t seed) {
  MUSA_CHECK_MSG(ranks >= 1, "need at least one rank");
  trace::AppTrace trace;
  trace.app_name = app.name;
  trace.ranks.resize(ranks);

  // Static per-rank compute skew (domain decomposition imbalance) plus
  // per-iteration jitter.
  Rng rng(seed ^ 0xace1'2462'9d1e'4b2full);
  std::vector<double> rank_factor(ranks);
  for (int r = 0; r < ranks; ++r)
    rank_factor[r] = std::max(0.5, rng.next_normal(1.0, app.rank_imbalance));

  for (int r = 0; r < ranks; ++r) {
    trace.ranks[r].rank = r;
    auto& ev = trace.ranks[r].events;
    const int right = (r + 1) % ranks;
    const int left = (r + ranks - 1) % ranks;
    const std::vector<Phase> phases = app.phases();
    for (int it = 0; it < app.iterations; ++it) {
      for (std::size_t ph = 0; ph < phases.size(); ++ph) {
        const double jitter =
            std::max(0.7, rng.next_normal(1.0, app.rank_imbalance / 3));
        ev.push_back(trace::BurstEvent::compute(
            phases[ph].ref_region_seconds * rank_factor[r] * jitter,
            /*region=*/static_cast<int>(ph)));
      }
      if (ranks > 1 && app.p2p_neighbors >= 1) {
        // Ring halo exchange with non-blocking pairs.
        ev.push_back(trace::BurstEvent::mpi(trace::MpiOp::kIrecv, left,
                                            app.p2p_bytes, /*req=*/0));
        ev.push_back(trace::BurstEvent::mpi(trace::MpiOp::kIsend, right,
                                            app.p2p_bytes, /*req=*/1));
        if (app.p2p_neighbors >= 2) {
          ev.push_back(trace::BurstEvent::mpi(trace::MpiOp::kIrecv, right,
                                              app.p2p_bytes, /*req=*/2));
          ev.push_back(trace::BurstEvent::mpi(trace::MpiOp::kIsend, left,
                                              app.p2p_bytes, /*req=*/3));
        }
        ev.push_back(
            trace::BurstEvent::mpi(trace::MpiOp::kWait, left, 0, /*req=*/0));
        ev.push_back(
            trace::BurstEvent::mpi(trace::MpiOp::kWait, right, 0, /*req=*/1));
        if (app.p2p_neighbors >= 2) {
          ev.push_back(trace::BurstEvent::mpi(trace::MpiOp::kWait, right, 0,
                                              /*req=*/2));
          ev.push_back(trace::BurstEvent::mpi(trace::MpiOp::kWait, left, 0,
                                              /*req=*/3));
        }
      }
      if (ranks > 1 && app.allreduce)
        ev.push_back(trace::BurstEvent::mpi(trace::MpiOp::kAllreduce, -1,
                                            app.allreduce_bytes));
      if (ranks > 1 && app.barrier)
        ev.push_back(trace::BurstEvent::mpi(trace::MpiOp::kBarrier, -1, 0));
    }
  }
  return trace;
}

}  // namespace musa::apps
