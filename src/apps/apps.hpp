// The five HPC application models (paper §IV-B).
//
// Each model replaces a traced real application (DESIGN.md §2) with a
// statistically equivalent generator of:
//   * a detailed kernel instruction stream (trace::KernelProfile) —
//     calibrated against the paper's Fig. 1 cache/memory profile and the
//     §V discussion of vectorisability, working sets and ILP;
//   * a task-level Region (task counts, imbalance, serial segments) —
//     calibrated against the Fig. 2 scaling behaviour;
//   * a 256-rank MPI burst trace (iterative halo exchange + collectives,
//     with per-rank load imbalance) — calibrated against Fig. 2b / Fig. 4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/burst.hpp"
#include "trace/kernel.hpp"
#include "trace/region.hpp"

namespace musa::apps {

/// One compute region (phase) of an application's timestep: its detailed
/// kernel statistics plus the task-level structure of the region. MUSA
/// samples and simulates each region independently and stitches them back
/// in the replay (the burst trace tags bursts with the region id).
struct Phase {
  std::string name;
  trace::KernelProfile kernel;
  double task_instrs = 2e5;     // scalar instructions per work-1.0 task
  int tasks_per_region = 512;
  double task_imbalance = 0.05; // stddev of task work (thread imbalance)
  int serial_segments = 0;      // serialised tasks splitting the region
  double serial_task_work = 4.0;
  double ref_region_seconds = 0.01;  // serial reference time of the region
};

struct AppModel {
  std::string name;
  trace::KernelProfile kernel;

  // Task-level structure of the primary compute region.
  double task_instrs = 2e5;     // scalar instructions per work-1.0 task
  int tasks_per_region = 512;
  double task_imbalance = 0.05; // stddev of task work (thread imbalance)
  int serial_segments = 0;      // serialised tasks splitting the region
  double serial_task_work = 4.0;
  double ref_region_seconds = 0.01;  // serial reference time of the region

  /// Additional compute regions executed after the primary one in every
  /// iteration (region ids 1, 2, ... in the burst trace). The five paper
  /// applications are modelled single-phase; multi-phase codes (see
  /// examples/multiphase_app) use this to give each region its own kernel.
  std::vector<Phase> extra_phases;

  // MPI structure (burst trace).
  int iterations = 8;
  double rank_imbalance = 0.03; // stddev of per-rank compute factor
  int p2p_neighbors = 2;        // ring directions exchanged per iteration
  std::uint64_t p2p_bytes = 256 * 1024;
  bool allreduce = false;
  std::uint64_t allreduce_bytes = 64;
  bool barrier = true;

  // Runtime-system cost (constant software time, per task dispatch).
  double dispatch_overhead_s = 100e-9;

  /// All compute regions in execution order: the primary phase (synthesised
  /// from the fields above) followed by extra_phases.
  std::vector<Phase> phases() const;
};

/// The five applications in the paper's plotting order:
/// hydro, spmz, btmz, spec3d, lulesh.
const std::vector<AppModel>& registry();

/// Look up by name; throws SimError if unknown.
const AppModel& find_app(const std::string& name);

/// Task graph of one compute region (deterministic in seed).
trace::Region make_region(const Phase& phase, std::uint64_t seed = 1);

/// Task graph of the application's primary region (compatibility shim).
trace::Region make_region(const AppModel& app, std::uint64_t seed = 1);

/// Whole-application burst trace for `ranks` MPI ranks.
trace::AppTrace make_burst_trace(const AppModel& app, int ranks,
                                 std::uint64_t seed = 2);

}  // namespace musa::apps
