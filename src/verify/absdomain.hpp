// Interval abstract domain over the design-space grid.
//
// A Box is a hyper-rectangle of a SpaceAxes grid: one half-open index range
// per dimension into that dimension's sorted candidate list. Every concrete
// MachineConfig inside the box projects, per dimension, to a value within
// the box's range — the classic interval abstraction, specialised to finite
// value axes.
//
// Each constraint rule that check_machine() can emit has an *abstract
// transfer function* here: given a box it returns
//   kSat       — every point in the box satisfies the rule,
//   kViolated  — every point in the box violates the rule,
//   kUnknown   — the rule cannot decide the whole box (mixed, or the
//                abstraction is too coarse at this width).
//
// Transfer-function contract (the soundness argument, DESIGN.md §7g):
//   1. Soundness: kSat/kViolated verdicts hold for *every* concrete point
//      of the box. Transfer functions may only consult (a) the concrete
//      rule predicate itself, evaluated on whole candidate values of the
//      dimensions the rule reads, and (b) documented monotonicity of the
//      violation condition in a numeric dimension.
//   2. Exactness at singletons: a box of width 1 in every dependency
//      dimension must decide (never kUnknown) and must equal the concrete
//      rule verdict — this is what makes the recursive box-splitting engine
//      (space_analysis.hpp) terminate with the exact pointwise answer.
//   3. Honest dependencies: `deps` lists exactly the dimensions the
//      concrete predicate reads; the splitting engine only splits
//      dependency dimensions of the first undecided rule.
// Per-box cost is O(Σ |dimension values in range|) — never the product.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config_space.hpp"
#include "verify/constraint.hpp"

namespace musa::verify {

/// Three-valued abstract verdict.
enum class Tri : std::uint8_t { kSat, kViolated, kUnknown };

const char* tri_name(Tri t);

/// A hyper-rectangle of a SpaceAxes grid: per-dimension half-open index
/// ranges [begin, end) into the axis value lists.
struct Box {
  std::array<int, core::SpaceAxes::kDims> begin{};
  std::array<int, core::SpaceAxes::kDims> end{};

  /// The whole grid.
  static Box full(const core::SpaceAxes& axes);

  int width(int dim) const { return end[dim] - begin[dim]; }
  std::uint64_t points() const;
  bool contains(const std::array<int, core::SpaceAxes::kDims>& idx) const;

  /// "core[0,4) cache[1,2) ..." — only non-full dims when `axes` given.
  std::string str() const;
};

/// Verdict of one abstract rule on one box.
struct AbsVerdict {
  Tri status = Tri::kUnknown;
  std::string detail;  // kViolated: offending values, from the concrete rule
};

/// Abstract counterpart of one concrete rule.
struct AbsRule {
  std::string id;      // equals the concrete rule id (machine_rule_ids())
  std::uint32_t deps;  // bitmask of SpaceAxes dims the transfer fn reads
  std::function<AbsVerdict(const core::SpaceAxes&, const Box&)> check;
};

/// The abstract counterpart of every rule in machine_rule_ids(), in the
/// same order. A coverage test asserts the id lists match exactly.
const std::vector<AbsRule>& abstract_machine_rules();

/// First-undecided classification of a box against the rule catalogue:
/// walks abstract_machine_rules() in order and stops at the first rule that
/// is not kSat. kViolated means every point in the box violates `rule` and
/// every *earlier* rule is satisfied box-wide — i.e. `rule` is exactly the
/// first rule pointwise lint would report for each point, which is what
/// makes analyzer kill counts diffable against pointwise reports. kUnknown
/// names the first undecided rule and its deps so the splitting engine
/// knows which dimensions to bisect.
struct BoxVerdict {
  Tri status = Tri::kSat;
  std::string rule;    // empty when kSat
  std::uint32_t deps = 0;
  std::string detail;  // kViolated only
};

BoxVerdict classify_box(const core::SpaceAxes& axes, const Box& box);

}  // namespace musa::verify
