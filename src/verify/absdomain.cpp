#include "verify/absdomain.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "verify/config_rules.hpp"

namespace musa::verify {

const char* tri_name(Tri t) {
  switch (t) {
    case Tri::kSat: return "sat";
    case Tri::kViolated: return "violated";
    case Tri::kUnknown: return "unknown";
  }
  return "?";
}

Box Box::full(const core::SpaceAxes& axes) {
  Box b;
  for (int d = 0; d < core::SpaceAxes::kDims; ++d) {
    b.begin[d] = 0;
    b.end[d] = axes.dim_size(d);
  }
  return b;
}

std::uint64_t Box::points() const {
  std::uint64_t n = 1;
  for (int d = 0; d < core::SpaceAxes::kDims; ++d) {
    if (end[d] <= begin[d]) return 0;
    n *= static_cast<std::uint64_t>(end[d] - begin[d]);
  }
  return n;
}

bool Box::contains(const std::array<int, core::SpaceAxes::kDims>& idx) const {
  for (int d = 0; d < core::SpaceAxes::kDims; ++d)
    if (idx[d] < begin[d] || idx[d] >= end[d]) return false;
  return true;
}

std::string Box::str() const {
  std::string out;
  for (int d = 0; d < core::SpaceAxes::kDims; ++d) {
    if (!out.empty()) out += ' ';
    out += std::string(core::SpaceAxes::dim_name(d)) + "[" +
           std::to_string(begin[d]) + "," + std::to_string(end[d]) + ")";
  }
  return out;
}

namespace {

using core::MachineConfig;
using core::SpaceAxes;

constexpr std::uint32_t bit(int dim) { return 1u << static_cast<unsigned>(dim); }

/// The concrete predicate of a registered rule, by id — abstract transfer
/// functions never re-implement a rule's logic, they evaluate the real one
/// on whole candidate values (soundness by construction on categorical and
/// per-value dimensions).
template <typename T>
const typename RuleSet<T>::CheckFn& concrete_rule(const RuleSet<T>& set,
                                                  const std::string& id) {
  for (const auto& r : set.rules())
    if (r.id == id) return r.check;
  throw SimError("absdomain: no concrete rule with id " + id);
}

/// Evaluates a pass/fail predicate (empty string = pass) on every candidate
/// index of one dimension within the box: all pass → kSat, all fail →
/// kViolated (detail = first failure), mixed → kUnknown. Exact whenever the
/// rule depends on this dimension alone, including at singletons.
AbsVerdict scan_dim(const Box& box, int dim,
                    const std::function<std::string(int)>& pred) {
  int pass = 0;
  int fail = 0;
  std::string first_fail;
  for (int i = box.begin[dim]; i < box.end[dim]; ++i) {
    std::string detail = pred(i);
    if (detail.empty()) {
      ++pass;
    } else {
      if (fail == 0) first_fail = std::move(detail);
      ++fail;
    }
    if (pass > 0 && fail > 0) return {Tri::kUnknown, {}};
  }
  if (fail == 0) return {Tri::kSat, {}};
  return {Tri::kViolated, std::move(first_fail)};
}

/// Machine-level rule whose concrete predicate reads exactly one
/// MachineConfig field: probe configs vary that field over the axis while
/// every other field keeps its (valid) default.
AbsVerdict machine_axis_rule(const SpaceAxes& axes, const Box& box, int dim,
                             const std::string& id) {
  const auto& fn = concrete_rule(machine_rules(), id);
  return scan_dim(box, dim, [&](int i) {
    MachineConfig probe;
    switch (dim) {
      case SpaceAxes::kDimFreq: probe.freq_ghz = axes.freqs_ghz[i]; break;
      case SpaceAxes::kDimVector: probe.vector_bits = axes.vector_bits[i]; break;
      case SpaceAxes::kDimChannels:
        probe.mem_channels = axes.mem_channels[i];
        break;
      case SpaceAxes::kDimCores: probe.cores = axes.core_counts[i]; break;
      case SpaceAxes::kDimRanks: probe.ranks = axes.rank_counts[i]; break;
      default:
        throw SimError("absdomain: machine_axis_rule on non-machine dim");
    }
    return fn(probe);
  });
}

AbsVerdict core_axis_rule(const SpaceAxes& axes, const Box& box,
                          const std::string& id) {
  const auto& fn = concrete_rule(core_rules(), id);
  return scan_dim(box, SpaceAxes::kDimCore,
                  [&](int i) { return fn(axes.core_presets[i]); });
}

AbsVerdict dram_axis_rule(const SpaceAxes& axes, const Box& box,
                          const std::string& id) {
  const auto& fn = concrete_rule(dram_rules(), id);
  return scan_dim(box, SpaceAxes::kDimTech, [&](int i) {
    return fn(dramsim::timing_for(axes.mem_techs[i]));
  });
}

/// Hierarchy rules that read only the per-level geometry the cache label
/// determines (cache.geometry / cache.pow2 / cache.latency-order never look
/// at num_cores): resolve each label at num_cores = 1 and evaluate the
/// concrete predicate. An unresolvable label counts as a failure here too,
/// but classification never reaches these rules for such a box —
/// cache.label precedes them in the catalogue.
AbsVerdict hierarchy_label_rule(const SpaceAxes& axes, const Box& box,
                                const std::string& id) {
  const auto& fn = concrete_rule(hierarchy_rules(), id);
  return scan_dim(box, SpaceAxes::kDimCache, [&](int i) -> std::string {
    MachineConfig probe;
    probe.cache_label = axes.cache_labels[i];
    try {
      return fn(probe.cache_config(1));
    } catch (const SimError& e) {
      return e.what();
    }
  });
}

AbsVerdict cache_label_rule(const SpaceAxes& axes, const Box& box) {
  return scan_dim(box, SpaceAxes::kDimCache, [&](int i) -> std::string {
    MachineConfig probe;
    probe.cache_label = axes.cache_labels[i];
    try {
      probe.cache_config(1);
      return {};
    } catch (const SimError& e) {
      return e.what();
    }
  });
}

AbsVerdict cache_cores_rule(const SpaceAxes& axes, const Box& box) {
  const auto& fn = concrete_rule(hierarchy_rules(), "cache.cores");
  return scan_dim(box, SpaceAxes::kDimCores, [&](int i) {
    cachesim::HierarchyConfig h;  // rule reads num_cores only
    h.num_cores = axes.core_counts[i];
    return fn(h);
  });
}

/// cache.inclusion couples the cache label with the core count. Its
/// violation condition — L1 > L2, or num_cores·L2 > shared L3 — is
/// nondecreasing in num_cores, so per label it suffices to evaluate the
/// concrete rule at the smallest and largest core counts in the box:
/// failing at the minimum fails everywhere, passing at the maximum passes
/// everywhere, and anything else is a genuine mixed region.
AbsVerdict cache_inclusion_rule(const SpaceAxes& axes, const Box& box) {
  const auto& fn = concrete_rule(hierarchy_rules(), "cache.inclusion");
  const int kCores = SpaceAxes::kDimCores;
  int lo = axes.core_counts[box.begin[kCores]];
  int hi = lo;
  for (int i = box.begin[kCores]; i < box.end[kCores]; ++i) {
    lo = std::min(lo, axes.core_counts[i]);
    hi = std::max(hi, axes.core_counts[i]);
  }
  int sat = 0;
  int vio = 0;
  std::string first_fail;
  for (int i = box.begin[SpaceAxes::kDimCache]; i < box.end[SpaceAxes::kDimCache];
       ++i) {
    MachineConfig probe;
    probe.cache_label = axes.cache_labels[i];
    std::string at_lo;
    std::string at_hi;
    try {
      at_lo = fn(probe.cache_config(lo));
      at_hi = fn(probe.cache_config(hi));
    } catch (const SimError& e) {
      // Unresolvable label counts as violated here too, though cache.label
      // precedes this rule in the catalogue and reports it first.
      at_lo = e.what();
      at_hi = at_lo;
    }
    if (!at_lo.empty()) {
      // Fails at the minimum core count → fails box-wide for this label.
      if (vio == 0) first_fail = std::move(at_lo);
      ++vio;
    } else if (at_hi.empty()) {
      ++sat;  // passes at the maximum core count → passes box-wide
    } else {
      return {Tri::kUnknown, {}};  // mixed along cores for this label
    }
    if (sat > 0 && vio > 0) return {Tri::kUnknown, {}};
  }
  if (vio == 0) return {Tri::kSat, {}};
  return {Tri::kViolated, std::move(first_fail)};
}

AbsRule make_abstract(const std::string& id) {
  using SA = SpaceAxes;
  if (id == "freq.range")
    return {id, bit(SA::kDimFreq), [id](const SpaceAxes& a, const Box& b) {
              return machine_axis_rule(a, b, SA::kDimFreq, id);
            }};
  if (id == "vector.width")
    return {id, bit(SA::kDimVector), [id](const SpaceAxes& a, const Box& b) {
              return machine_axis_rule(a, b, SA::kDimVector, id);
            }};
  if (id == "mem.channels")
    return {id, bit(SA::kDimChannels), [id](const SpaceAxes& a, const Box& b) {
              return machine_axis_rule(a, b, SA::kDimChannels, id);
            }};
  if (id == "machine.size")
    return {id, bit(SA::kDimCores) | bit(SA::kDimRanks),
            [id](const SpaceAxes& a, const Box& b) {
              // cores ∈ [1,1024] AND ranks ∈ [1,2^20]: the two predicates
              // are independent, so scan each axis with the other held at
              // its valid default. A point violates iff either axis value
              // does.
              const AbsVerdict c = machine_axis_rule(a, b, SA::kDimCores, id);
              if (c.status == Tri::kViolated) return c;
              const AbsVerdict r = machine_axis_rule(a, b, SA::kDimRanks, id);
              if (r.status == Tri::kViolated) return r;
              if (c.status == Tri::kSat && r.status == Tri::kSat) return c;
              return AbsVerdict{Tri::kUnknown, {}};
            }};
  if (id.rfind("core.", 0) == 0)
    return {id, bit(SA::kDimCore), [id](const SpaceAxes& a, const Box& b) {
              return core_axis_rule(a, b, id);
            }};
  if (id == "cache.label")
    return {id, bit(SA::kDimCache), [](const SpaceAxes& a, const Box& b) {
              return cache_label_rule(a, b);
            }};
  if (id == "cache.geometry" || id == "cache.pow2" ||
      id == "cache.latency-order")
    return {id, bit(SA::kDimCache), [id](const SpaceAxes& a, const Box& b) {
              return hierarchy_label_rule(a, b, id);
            }};
  if (id == "cache.cores")
    return {id, bit(SA::kDimCores), [](const SpaceAxes& a, const Box& b) {
              return cache_cores_rule(a, b);
            }};
  if (id == "cache.inclusion")
    return {id, bit(SA::kDimCache) | bit(SA::kDimCores),
            [](const SpaceAxes& a, const Box& b) {
              return cache_inclusion_rule(a, b);
            }};
  if (id.rfind("dram.", 0) == 0)
    return {id, bit(SA::kDimTech), [id](const SpaceAxes& a, const Box& b) {
              return dram_axis_rule(a, b, id);
            }};
  // A new concrete rule without an abstract counterpart must fail loudly:
  // the analyzer would otherwise silently stop covering it.
  throw SimError("absdomain: no abstract transfer function for rule " + id);
}

}  // namespace

const std::vector<AbsRule>& abstract_machine_rules() {
  static const std::vector<AbsRule> rules = [] {
    std::vector<AbsRule> out;
    for (const auto& id : machine_rule_ids()) out.push_back(make_abstract(id));
    return out;
  }();
  return rules;
}

BoxVerdict classify_box(const core::SpaceAxes& axes, const Box& box) {
  MUSA_CHECK_MSG(box.points() > 0, "classify_box: empty box");
  for (const auto& rule : abstract_machine_rules()) {
    const AbsVerdict v = rule.check(axes, box);
    if (v.status == Tri::kSat) continue;
    return {v.status, rule.id, rule.deps, v.detail};
  }
  return {};
}

}  // namespace musa::verify
