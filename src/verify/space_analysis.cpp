#include "verify/space_analysis.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/check.hpp"
#include "verify/config_rules.hpp"

namespace musa::verify {

namespace {

using core::SpaceAxes;

/// Split dimension for an undecided box: the widest dimension among the
/// undecided rule's dependencies (the rule cannot stay undecided once all
/// its dependency dims are singletons — transfer functions are exact
/// there — so a splittable dep dim always exists).
int pick_split_dim(const Box& box, std::uint32_t deps) {
  int best = -1;
  int best_width = 1;
  for (int d = 0; d < SpaceAxes::kDims; ++d) {
    if ((deps & (1u << static_cast<unsigned>(d))) == 0) continue;
    if (box.width(d) > best_width) {
      best = d;
      best_width = box.width(d);
    }
  }
  MUSA_CHECK_MSG(best >= 0,
                 "space analysis: rule undecided on a singleton box — a "
                 "transfer function broke the exactness contract");
  return best;
}

}  // namespace

AnalysisReport analyze(const core::SpaceAxes& axes, AnalysisOptions opts) {
  const auto t0 = std::chrono::steady_clock::now();
  AnalysisReport report;
  report.total_points = axes.points();
  MUSA_CHECK_MSG(report.total_points > 0, "space analysis: empty grid");
  for (int d = 0; d < SpaceAxes::kDims; ++d)
    report.dim_feasible[d].assign(static_cast<std::size_t>(axes.dim_size(d)),
                                  false);
  std::map<std::string, std::uint64_t> kills;

  std::vector<Box> work{Box::full(axes)};
  while (!work.empty()) {
    const Box box = work.back();
    work.pop_back();
    ++report.boxes_classified;
    MUSA_CHECK_MSG(report.boxes_classified <= opts.max_boxes,
                   "space analysis: box budget exceeded (max_boxes)");
    const BoxVerdict v = classify_box(axes, box);
    switch (v.status) {
      case Tri::kSat: {
        report.feasible_points += box.points();
        for (int d = 0; d < SpaceAxes::kDims; ++d)
          for (int i = box.begin[d]; i < box.end[d]; ++i)
            report.dim_feasible[d][static_cast<std::size_t>(i)] = true;
        report.boxes.push_back({box, BoxClass::kFeasible, {}, {}});
        break;
      }
      case Tri::kViolated: {
        kills[v.rule] += box.points();
        report.boxes.push_back(
            {box, BoxClass::kInfeasible, v.rule, v.detail});
        break;
      }
      case Tri::kUnknown: {
        const int dim = pick_split_dim(box, v.deps);
        const int mid = box.begin[dim] + box.width(dim) / 2;
        Box lo = box;
        Box hi = box;
        lo.end[dim] = mid;
        hi.begin[dim] = mid;
        work.push_back(lo);
        work.push_back(hi);
        break;
      }
    }
  }

  // Kill counts in catalogue order, zero-count rules included so two
  // reports (or a report and a pointwise lint) always line up row-by-row.
  for (const auto& id : machine_rule_ids())
    report.kill_counts.emplace_back(id, kills.count(id) ? kills[id] : 0);

  report.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

BoxClass classify_point(const AnalysisReport& report,
                        const std::array<int, SpaceAxes::kDims>& idx) {
  for (const auto& leaf : report.boxes)
    if (leaf.box.contains(idx)) return leaf.cls;
  throw SimError("space analysis: point not covered by the partition");
}

std::vector<std::uint64_t> feasible_indices(const core::SpaceAxes& axes,
                                            const AnalysisReport& report) {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(report.feasible_points));
  std::array<int, SpaceAxes::kDims> idx{};
  for (const auto& leaf : report.boxes) {
    if (leaf.cls != BoxClass::kFeasible) continue;
    // Odometer over the box's index ranges.
    idx = leaf.box.begin;
    while (true) {
      out.push_back(axes.linear_of(idx));
      int d = SpaceAxes::kDims - 1;
      for (; d >= 0; --d) {
        if (++idx[d] < leaf.box.end[d]) break;
        idx[d] = leaf.box.begin[d];
      }
      if (d < 0) break;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

AgreementReport check_agreement(const core::SpaceAxes& axes,
                                const AnalysisReport& report,
                                std::size_t max_examples) {
  AgreementReport agree;
  std::array<int, SpaceAxes::kDims> idx{};
  for (const auto& leaf : report.boxes) {
    idx = leaf.box.begin;
    while (true) {
      ++agree.points;
      const core::MachineConfig config = axes.config_at(idx);
      const std::vector<Violation> v = check_machine(config);
      const bool point_feasible = v.empty();
      const bool box_feasible = leaf.cls == BoxClass::kFeasible;
      std::string why;
      if (point_feasible != box_feasible)
        why = std::string("pointwise ") +
              (point_feasible ? "feasible" : "infeasible") + " but box says " +
              (box_feasible ? "feasible" : "infeasible");
      else if (!point_feasible && v.front().rule != leaf.killing_rule)
        why = "pointwise first rule " + v.front().rule +
              " != box killing rule " + leaf.killing_rule;
      if (!why.empty()) {
        ++agree.disagreements;
        if (agree.examples.size() < max_examples)
          agree.examples.push_back(config.id() + ": " + why);
      }
      int d = SpaceAxes::kDims - 1;
      for (; d >= 0; --d) {
        if (++idx[d] < leaf.box.end[d]) break;
        idx[d] = leaf.box.begin[d];
      }
      if (d < 0) break;
    }
  }
  return agree;
}

double MetricBounds::min_time_s(double instructions, double dram_bytes) const {
  double t = 0.0;
  if (instr_per_s_hi > 0.0) t = std::max(t, instructions / instr_per_s_hi);
  if (bw_gbps_hi > 0.0) t = std::max(t, dram_bytes / (bw_gbps_hi * 1e9));
  return t;
}

MetricBounds bound_metrics(const core::SpaceAxes& axes, const Box& box) {
  MUSA_CHECK_MSG(box.points() > 0, "bound_metrics: empty box");
  MetricBounds b;

  // result.ipc-bound lifted: IPC <= issue_width × lanes, lanes =
  // max(1, vector_bits / 64); both factors are maximised at the box's
  // upper corner of their axes.
  int vec_hi = axes.vector_bits[box.begin[SpaceAxes::kDimVector]];
  for (int i = box.begin[SpaceAxes::kDimVector];
       i < box.end[SpaceAxes::kDimVector]; ++i)
    vec_hi = std::max(vec_hi, axes.vector_bits[i]);
  const double lanes = std::max(1, vec_hi / 64);
  for (int i = box.begin[SpaceAxes::kDimCore]; i < box.end[SpaceAxes::kDimCore];
       ++i)
    b.ipc_hi = std::max(b.ipc_hi, axes.core_presets[i].issue_width * lanes);

  double freq_hi = 0.0;
  for (int i = box.begin[SpaceAxes::kDimFreq]; i < box.end[SpaceAxes::kDimFreq];
       ++i)
    freq_hi = std::max(freq_hi, axes.freqs_ghz[i]);
  int cores_hi = 0;
  for (int i = box.begin[SpaceAxes::kDimCores];
       i < box.end[SpaceAxes::kDimCores]; ++i)
    cores_hi = std::max(cores_hi, axes.core_counts[i]);
  b.instr_per_s_hi = cores_hi * freq_hi * 1e9 * b.ipc_hi;

  // result.bandwidth lifted: achieved GB/s <= channels × per-channel peak.
  double peak_hi = 0.0;
  for (int i = box.begin[SpaceAxes::kDimTech]; i < box.end[SpaceAxes::kDimTech];
       ++i)
    peak_hi = std::max(peak_hi,
                       dramsim::timing_for(axes.mem_techs[i]).peak_gbps());
  int ch_hi = 0;
  for (int i = box.begin[SpaceAxes::kDimChannels];
       i < box.end[SpaceAxes::kDimChannels]; ++i)
    ch_hi = std::max(ch_hi, axes.mem_channels[i]);
  b.bw_gbps_hi = ch_hi * peak_hi;
  return b;
}

}  // namespace musa::verify
