#include "verify/constraint.hpp"

#include <cinttypes>
#include <cstdio>

namespace musa::verify {

std::string describe(const std::vector<Violation>& violations,
                     std::size_t max_shown) {
  std::string out;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i == max_shown) {
      out += "  ... and " + std::to_string(violations.size() - max_shown) +
             " more violation(s)\n";
      break;
    }
    out += "  " + violations[i].str() + "\n";
  }
  if (!out.empty()) out.pop_back();  // trailing newline
  return out;
}

void raise_if(const std::vector<Violation>& violations, ErrorClass cls) {
  if (violations.empty()) return;
  throw SimError(std::to_string(violations.size()) +
                     " constraint violation(s):\n" + describe(violations),
                 cls);
}

std::string kv(const char* name, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%g", name, value);
  return buf;
}

std::string kv(const char* name, std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%" PRIu64, name, value);
  return buf;
}

std::string kv(const char* name, std::int64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%" PRId64, name, value);
  return buf;
}

}  // namespace musa::verify
