// Static design-space analysis: partition a SpaceAxes grid into
// all-feasible and all-infeasible boxes without visiting individual points.
//
// The engine classifies the full box with the abstract rules
// (absdomain.hpp); an undecided box is bisected along a dependency
// dimension of the first undecided rule and the halves recurse. Because
// every transfer function is exact on singleton boxes, the recursion always
// terminates with a partition whose per-point classification equals
// pointwise RuleSet::check() — the paper's 864-point grid is one feasible
// box, and a ≥10⁶-point extended grid resolves in hundreds of boxes, i.e.
// O(boxes · rules) work instead of O(points · rules).
//
// On top of the partition, MetricBounds lifts the result invariants
// (result.ipc-bound, result.bandwidth — src/verify/invariants.cpp) to
// static per-box bounds, the enabling layer for dominance pruning in guided
// search (analysis/pareto.hpp: prune_dominated).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/config_space.hpp"
#include "verify/absdomain.hpp"

namespace musa::verify {

struct AnalysisOptions {
  /// Safety valve on the split recursion: exceeding it throws SimError
  /// (a correct rule catalogue stays far below — the bound exists so a
  /// buggy never-deciding transfer function cannot hang the analyzer).
  std::uint64_t max_boxes = 1u << 20;
};

enum class BoxClass : std::uint8_t { kFeasible, kInfeasible };

/// One leaf of the partition.
struct ClassifiedBox {
  Box box;
  BoxClass cls = BoxClass::kFeasible;
  std::string killing_rule;  // infeasible only: first violated rule id
  std::string detail;        // infeasible only: offending values
};

struct AnalysisReport {
  std::uint64_t total_points = 0;
  std::uint64_t feasible_points = 0;
  std::vector<ClassifiedBox> boxes;  // exact partition of the grid

  /// Points killed per rule id, in machine_rule_ids() order. Attribution is
  /// exact: a box is killed by rule R only when every earlier rule is
  /// satisfied box-wide, so these counts diff cleanly against a pointwise
  /// lint report keyed on first-violated rule.
  std::vector<std::pair<std::string, std::uint64_t>> kill_counts;

  /// Per dimension: which axis values appear in at least one feasible point.
  std::array<std::vector<bool>, core::SpaceAxes::kDims> dim_feasible;

  std::uint64_t boxes_classified = 0;  // classify_box calls (O(boxes))
  double wall_s = 0.0;

  double feasible_fraction() const {
    return total_points == 0
               ? 0.0
               : static_cast<double>(feasible_points) /
                     static_cast<double>(total_points);
  }
};

/// Partitions the grid. Cost is O(boxes · rules · Σ dim sizes); no term is
/// proportional to the point count.
AnalysisReport analyze(const core::SpaceAxes& axes, AnalysisOptions opts = {});

/// Classification of one point per the partition (linear scan over leaves;
/// meant for tests and spot queries, not bulk enumeration).
BoxClass classify_point(const AnalysisReport& report,
                        const std::array<int, core::SpaceAxes::kDims>& idx);

/// Row-major linear indices of every feasible point, sorted ascending — the
/// enumeration order of the grid, so a plan built from these matches the
/// order a pointwise enumeration would produce (for the paper axes:
/// ConfigSpace::full_space() order). O(feasible points), unavoidable for an
/// explicit plan, but with zero rule evaluations.
std::vector<std::uint64_t> feasible_indices(const core::SpaceAxes& axes,
                                            const AnalysisReport& report);

/// Exhaustive cross-check of the partition against pointwise
/// check_machine(): classification must match at every point, and for
/// infeasible points the box's killing rule must equal the first rule the
/// pointwise report names. O(points) — the CI agreement gate runs it on the
/// 864-point paper grid.
struct AgreementReport {
  std::uint64_t points = 0;
  std::uint64_t disagreements = 0;
  std::vector<std::string> examples;  // first few mismatches, for the log
};

AgreementReport check_agreement(const core::SpaceAxes& axes,
                                const AnalysisReport& report,
                                std::size_t max_examples = 8);

/// Static metric bounds over a box — the result invariants lifted from
/// per-point checks to per-region bounds (monotone in the box's upper
/// corner, so evaluating at the corner bounds every point):
///   · ipc_hi: issue_width × vector lanes (result.ipc-bound),
///   · instr_per_s_hi: cores × freq × ipc_hi,
///   · bw_gbps_hi: channels × per-channel peak (result.bandwidth).
/// min_time_s() combines them into a roofline-style lower bound on region
/// time, usable as a CostBound for dominance pruning before simulating.
struct MetricBounds {
  double ipc_hi = 0.0;
  double instr_per_s_hi = 0.0;
  double bw_gbps_hi = 0.0;

  /// Lower bound on the time to retire `instructions` while moving
  /// `dram_bytes` through memory: no point in the box can beat both the
  /// compute and the bandwidth roofline.
  double min_time_s(double instructions, double dram_bytes) const;
};

MetricBounds bound_metrics(const core::SpaceAxes& axes, const Box& box);

}  // namespace musa::verify
