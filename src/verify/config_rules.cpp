#include "verify/config_rules.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

namespace musa::verify {

namespace {

/// Geometry shared by every cache level: at least one way, an integral and
/// positive number of sets (CacheConfig::num_sets truncates, so a size that
/// is not a multiple of line·ways would silently shrink the cache).
std::string check_cache_geometry(const char* level,
                                 const cachesim::CacheConfig& c) {
  if (c.ways < 1)
    return std::string(level) + " needs at least one way, " + kv("ways", c.ways);
  const std::uint64_t set_bytes =
      cachesim::kLineBytes * static_cast<std::uint64_t>(c.ways);
  if (c.size_bytes < set_bytes)
    return std::string(level) + " smaller than one set: " +
           kv("size_bytes", c.size_bytes) + " < " + kv("line*ways", set_bytes);
  if (c.size_bytes % set_bytes != 0)
    return std::string(level) + " size not a multiple of line*ways (sets " +
           "would truncate): " + kv("size_bytes", c.size_bytes) + ", " +
           kv("line*ways", set_bytes);
  if (c.latency_cycles < 1)
    return std::string(level) + " hit latency must be >= 1 cycle, " +
           kv("latency_cycles", c.latency_cycles);
  return {};
}

}  // namespace

const RuleSet<cpusim::CoreConfig>& core_rules() {
  static const RuleSet<cpusim::CoreConfig> rules = [] {
    RuleSet<cpusim::CoreConfig> r;
    r.add("core.issue-width", "dispatch/commit width in [1, 16]",
          [](const cpusim::CoreConfig& c) -> std::string {
            if (c.issue_width < 1 || c.issue_width > 16)
              return kv("issue_width", c.issue_width) + " outside [1, 16]";
            return {};
          });
    r.add("core.rob", "ROB holds at least one dispatch group, at most 4096",
          [](const cpusim::CoreConfig& c) -> std::string {
            if (c.rob < c.issue_width || c.rob > 4096)
              return kv("rob", c.rob) + " outside [" +
                     kv("issue_width", c.issue_width) + ", 4096]";
            return {};
          });
    r.add("core.units", "at least one ALU, FPU and load/store port",
          [](const cpusim::CoreConfig& c) -> std::string {
            if (c.alus < 1 || c.fpus < 1 || c.lsus < 1)
              return kv("alus", c.alus) + ", " + kv("fpus", c.fpus) + ", " +
                     kv("lsus", c.lsus) + " — all must be >= 1";
            return {};
          });
    r.add("core.store-buffer", "store buffer holds at least one store",
          [](const cpusim::CoreConfig& c) -> std::string {
            if (c.store_buffer < 1)
              return kv("store_buffer", c.store_buffer) + " must be >= 1";
            return {};
          });
    r.add("core.regfiles",
          "physical register files can rename a full dispatch group",
          [](const cpusim::CoreConfig& c) -> std::string {
            if (c.irf < c.issue_width || c.frf < 1)
              return kv("irf", c.irf) + ", " + kv("frf", c.frf) +
                     " too small for " + kv("issue_width", c.issue_width);
            return {};
          });
    return r;
  }();
  return rules;
}

const RuleSet<cachesim::HierarchyConfig>& hierarchy_rules() {
  static const RuleSet<cachesim::HierarchyConfig> rules = [] {
    RuleSet<cachesim::HierarchyConfig> r;
    r.add("cache.geometry",
          "every level has >= 1 way, integral sets, latency >= 1",
          [](const cachesim::HierarchyConfig& h) -> std::string {
            if (std::string e = check_cache_geometry("L1", h.l1); !e.empty())
              return e;
            if (std::string e = check_cache_geometry("L2", h.l2); !e.empty())
              return e;
            return check_cache_geometry("L3", h.l3);
          });
    r.add("cache.pow2",
          "private L1/L2 capacities and all way counts are powers of two",
          [](const cachesim::HierarchyConfig& h) -> std::string {
            if (!is_pow2(h.l1.size_bytes))
              return "L1 " + kv("size_bytes", h.l1.size_bytes) +
                     " not a power of two";
            if (!is_pow2(h.l2.size_bytes))
              return "L2 " + kv("size_bytes", h.l2.size_bytes) +
                     " not a power of two";
            for (const auto& [level, ways] :
                 {std::pair{"L1", h.l1.ways}, std::pair{"L2", h.l2.ways},
                  std::pair{"L3", h.l3.ways}})
              if (!is_pow2(static_cast<std::uint64_t>(ways)))
                return std::string(level) + " " + kv("ways", ways) +
                       " not a power of two";
            return {};
          });
    r.add("cache.inclusion",
          "capacity ordering L1 <= L2 per core, num_cores*L2 <= shared L3",
          [](const cachesim::HierarchyConfig& h) -> std::string {
            if (h.l1.size_bytes > h.l2.size_bytes)
              return "L1 " + kv("size_bytes", h.l1.size_bytes) +
                     " exceeds L2 " + kv("size_bytes", h.l2.size_bytes);
            const std::uint64_t l2_total =
                h.l2.size_bytes * static_cast<std::uint64_t>(
                                      std::max(1, h.num_cores));
            if (l2_total > h.l3.size_bytes)
              return "aggregate L2 " + kv("num_cores*l2", l2_total) +
                     " exceeds shared L3 " + kv("size_bytes", h.l3.size_bytes);
            return {};
          });
    r.add("cache.latency-order", "hit latency is monotone L1 <= L2 <= L3",
          [](const cachesim::HierarchyConfig& h) -> std::string {
            if (h.l1.latency_cycles > h.l2.latency_cycles ||
                h.l2.latency_cycles > h.l3.latency_cycles)
              return kv("l1", h.l1.latency_cycles) + ", " +
                     kv("l2", h.l2.latency_cycles) + ", " +
                     kv("l3", h.l3.latency_cycles) + " not monotone";
            return {};
          });
    r.add("cache.cores", "hierarchy is sized for at least one core",
          [](const cachesim::HierarchyConfig& h) -> std::string {
            if (h.num_cores < 1)
              return kv("num_cores", h.num_cores) + " must be >= 1";
            return {};
          });
    return r;
  }();
  return rules;
}

const RuleSet<dramsim::DramTiming>& dram_rules() {
  static const RuleSet<dramsim::DramTiming> rules = [] {
    RuleSet<dramsim::DramTiming> r;
    r.add("dram.positive",
          "clock, core timings, geometry and bus width are all positive",
          [](const dramsim::DramTiming& t) -> std::string {
            if (t.tCK <= 0 || t.tRCD <= 0 || t.tRP <= 0 || t.tCAS <= 0 ||
                t.tRAS <= 0 || t.tRFC <= 0 || t.tREFI <= 0 || t.tFAW < 0)
              return "non-positive timing: " + kv("tCK", t.tCK) + ", " +
                     kv("tRCD", t.tRCD) + ", " + kv("tRP", t.tRP) + ", " +
                     kv("tCL", t.tCAS) + ", " + kv("tRAS", t.tRAS) + ", " +
                     kv("tRFC", t.tRFC) + ", " + kv("tREFI", t.tREFI) +
                     ", " + kv("tFAW", t.tFAW);
            if (t.banks < 1 || t.ranks < 1 || t.bytes_per_clock <= 0)
              return kv("banks", t.banks) + ", " + kv("ranks", t.ranks) +
                     ", " + kv("bytes_per_clock", t.bytes_per_clock) +
                     " — all must be positive";
            return {};
          });
    r.add("dram.row-closure",
          "tRAS covers activate-to-data: tRAS >= tRCD + tCL",
          [](const dramsim::DramTiming& t) -> std::string {
            if (t.tRAS < t.tRCD + t.tCAS)
              return kv("tRAS", t.tRAS) + " < " + kv("tRCD", t.tRCD) +
                     " + " + kv("tCL", t.tCAS);
            return {};
          });
    r.add("dram.precharge", "tRP is at least one clock",
          [](const dramsim::DramTiming& t) -> std::string {
            if (t.tRP < t.tCK)
              return kv("tRP", t.tRP) + " < " + kv("tCK", t.tCK);
            return {};
          });
    r.add("dram.refresh", "a refresh cycle fits in its interval: tRFC < tREFI",
          [](const dramsim::DramTiming& t) -> std::string {
            if (t.tRFC >= t.tREFI)
              return kv("tRFC", t.tRFC) + " >= " + kv("tREFI", t.tREFI);
            return {};
          });
    r.add("dram.faw", "four-activate window covers four clocks",
          [](const dramsim::DramTiming& t) -> std::string {
            if (t.tFAW > 0 && t.tFAW < 4 * t.tCK)
              return kv("tFAW", t.tFAW) + " < 4*" + kv("tCK", t.tCK);
            return {};
          });
    r.add("dram.row-buffer",
          "row buffer is a power of two and holds at least one line",
          [](const dramsim::DramTiming& t) -> std::string {
            if (t.row_bytes < cachesim::kLineBytes || !is_pow2(t.row_bytes))
              return kv("row_bytes", t.row_bytes) +
                     " must be a power of two >= 64";
            return {};
          });
    r.add("dram.banks-pow2", "bank count is a power of two",
          [](const dramsim::DramTiming& t) -> std::string {
            if (!is_pow2(static_cast<std::uint64_t>(t.banks)))
              return kv("banks", t.banks) + " not a power of two";
            return {};
          });
    return r;
  }();
  return rules;
}

const RuleSet<core::MachineConfig>& machine_rules() {
  static const RuleSet<core::MachineConfig> rules = [] {
    RuleSet<core::MachineConfig> r;
    r.add("freq.range", "core frequency in [0.1, 10] GHz",
          [](const core::MachineConfig& c) -> std::string {
            if (!(c.freq_ghz >= 0.1 && c.freq_ghz <= 10.0))
              return kv("freq_ghz", c.freq_ghz) + " outside [0.1, 10]";
            return {};
          });
    r.add("vector.width", "vector width a power of two in [64, 4096] bits",
          [](const core::MachineConfig& c) -> std::string {
            if (c.vector_bits < 64 || c.vector_bits > 4096 ||
                !is_pow2(static_cast<std::uint64_t>(c.vector_bits)))
              return kv("vector_bits", c.vector_bits) +
                     " not a power of two in [64, 4096]";
            return {};
          });
    r.add("mem.channels", "memory channel count in [1, 64]",
          [](const core::MachineConfig& c) -> std::string {
            if (c.mem_channels < 1 || c.mem_channels > 64)
              return kv("mem_channels", c.mem_channels) + " outside [1, 64]";
            return {};
          });
    r.add("machine.size", "cores in [1, 1024], ranks in [1, 1048576]",
          [](const core::MachineConfig& c) -> std::string {
            if (c.cores < 1 || c.cores > 1024)
              return kv("cores", c.cores) + " outside [1, 1024]";
            if (c.ranks < 1 || c.ranks > 1 << 20)
              return kv("ranks", c.ranks) + " outside [1, 1048576]";
            return {};
          });
    return r;
  }();
  return rules;
}

const std::vector<std::string>& machine_rule_ids() {
  static const std::vector<std::string> ids = [] {
    std::vector<std::string> out;
    for (const auto& r : machine_rules().rules()) out.push_back(r.id);
    for (const auto& r : core_rules().rules()) out.push_back(r.id);
    // Label resolution precedes hierarchy evaluation: an unresolvable
    // cache label is reported as "cache.label" *instead of* the cache.*
    // rules, so it sits before them in the catalogue.
    out.emplace_back("cache.label");
    for (const auto& r : hierarchy_rules().rules()) out.push_back(r.id);
    for (const auto& r : dram_rules().rules()) out.push_back(r.id);
    return out;
  }();
  return ids;
}

std::vector<Violation> check_machine(const core::MachineConfig& config) {
  const std::string subject = config.id();
  std::vector<Violation> out = machine_rules().check(config, subject);
  const auto merge = [&out](std::vector<Violation> v) {
    out.insert(out.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  };
  merge(core_rules().check(config.core, subject));
  try {
    merge(hierarchy_rules().check(config.cache_config(config.cores), subject));
  } catch (const SimError& e) {
    out.push_back({"cache.label", subject, e.what()});
  }
  merge(dram_rules().check(dramsim::timing_for(config.mem_tech), subject));
  return out;
}

void validate_machine(const core::MachineConfig& config) {
  raise_if(check_machine(config));
}

}  // namespace musa::verify
