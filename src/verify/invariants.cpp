#include "verify/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <map>
#include <utility>

#include "core/dse.hpp"

namespace musa::verify {

namespace {

// Tolerances: kRelEps absorbs the %.9g round-trip through the CSV cache
// (values are stored to 9 significant digits); kModelSlack absorbs benign
// model-side rounding in bounds that compare across independently computed
// quantities (e.g. achieved vs peak bandwidth).
constexpr double kRelEps = 1e-6;
constexpr double kModelSlack = 0.02;

bool close(double a, double b) {
  return std::abs(a - b) <= kRelEps * std::max({std::abs(a), std::abs(b), 1.0});
}

/// Scalar-IPC upper bound: the core commits at most issue_width fused
/// instructions per cycle, and vector fusion packs at most
/// vector_bits / 64 scalar (64-bit element) operations into each.
double ipc_bound(const core::MachineConfig& c) {
  const double lanes = std::max(1, c.vector_bits / 64);
  return c.core.issue_width * lanes;
}

}  // namespace

const RuleSet<core::SimResult>& result_rules() {
  static const RuleSet<core::SimResult> rules = [] {
    using core::SimResult;
    RuleSet<SimResult> r;
    r.add("result.finite", "every metric is a finite number (no NaN/inf)",
          [](const SimResult& s) -> std::string {
            const std::pair<const char*, double> fields[] = {
                {"region_s", s.region_seconds}, {"wall_s", s.wall_seconds},
                {"ipc", s.ipc},                 {"concurrency", s.avg_concurrency},
                {"busy_frac", s.busy_fraction}, {"contention", s.contention_factor},
                {"mpki_l1", s.mpki_l1},         {"mpki_l2", s.mpki_l2},
                {"mpki_l3", s.mpki_l3},         {"gmem_req_s", s.gmem_req_s},
                {"mem_gbps", s.mem_gbps},       {"core_l1_w", s.core_l1_w},
                {"l2_l3_w", s.l2_l3_w},         {"dram_w", s.dram_w},
                {"node_w", s.node_w},           {"energy_j", s.energy_j}};
            for (const auto& [name, v] : fields)
              if (!std::isfinite(v)) return std::string(name) + " is not finite";
            return {};
          });
    r.add("result.nonnegative", "no metric is negative",
          [](const SimResult& s) -> std::string {
            const std::pair<const char*, double> fields[] = {
                {"region_s", s.region_seconds}, {"wall_s", s.wall_seconds},
                {"ipc", s.ipc},                 {"concurrency", s.avg_concurrency},
                {"busy_frac", s.busy_fraction}, {"mpki_l1", s.mpki_l1},
                {"mpki_l2", s.mpki_l2},         {"mpki_l3", s.mpki_l3},
                {"gmem_req_s", s.gmem_req_s},   {"mem_gbps", s.mem_gbps},
                {"core_l1_w", s.core_l1_w},     {"l2_l3_w", s.l2_l3_w},
                {"dram_w", s.dram_w},           {"node_w", s.node_w},
                {"energy_j", s.energy_j}};
            for (const auto& [name, v] : fields)
              if (v < 0.0) return kv(name, v) + " is negative";
            return {};
          });
    r.add("result.time-order",
          "positive region time; wall time covers the compute region",
          [](const SimResult& s) -> std::string {
            if (!(s.region_seconds > 0.0))
              return kv("region_s", s.region_seconds) + " must be positive";
            if (s.wall_seconds < s.region_seconds * (1.0 - kModelSlack))
              return kv("wall_s", s.wall_seconds) + " < " +
                     kv("region_s", s.region_seconds);
            return {};
          });
    r.add("result.ipc-bound",
          "CPI >= 1 / (issue width x vector lanes): IPC below the core peak",
          [](const SimResult& s) -> std::string {
            const double bound = ipc_bound(s.config);
            if (!(s.ipc > 0.0))
              return kv("ipc", s.ipc) + " must be positive";
            if (s.ipc > bound * (1.0 + kRelEps))
              return kv("ipc", s.ipc) + " exceeds " +
                     kv("issue_width*lanes", bound);
            return {};
          });
    r.add("result.bandwidth",
          "achieved DRAM bandwidth below the channel-aggregate peak",
          [](const SimResult& s) -> std::string {
            const double peak =
                dramsim::timing_for(s.config.mem_tech).peak_gbps() *
                s.config.mem_channels;
            if (s.mem_gbps > peak * (1.0 + kModelSlack))
              return kv("mem_gbps", s.mem_gbps) + " exceeds " +
                     kv("channels*peak_gbps", peak);
            return {};
          });
    r.add("result.utilization",
          "busy fraction <= 1, concurrency <= cores, contention >= 1",
          [](const SimResult& s) -> std::string {
            if (s.busy_fraction > 1.0 + kRelEps)
              return kv("busy_frac", s.busy_fraction) + " exceeds 1";
            if (s.avg_concurrency > s.config.cores * (1.0 + kRelEps))
              return kv("concurrency", s.avg_concurrency) + " exceeds " +
                     kv("cores", s.config.cores);
            if (s.contention_factor < 1.0 - kRelEps)
              return kv("contention", s.contention_factor) + " below 1";
            return {};
          });
    r.add("result.mpki-order",
          "miss rates thin down the hierarchy: MPKI L1 >= L2 >= L3",
          [](const SimResult& s) -> std::string {
            if (s.mpki_l1 < s.mpki_l2 * (1.0 - kRelEps) ||
                s.mpki_l2 < s.mpki_l3 * (1.0 - kRelEps))
              return kv("mpki_l1", s.mpki_l1) + ", " +
                     kv("mpki_l2", s.mpki_l2) + ", " +
                     kv("mpki_l3", s.mpki_l3) + " not monotone";
            return {};
          });
    r.add("result.power-split",
          "node power is the sum of its components; unknown DRAM power "
          "reports zero watts",
          [](const SimResult& s) -> std::string {
            if (!close(s.node_w, s.core_l1_w + s.l2_l3_w + s.dram_w))
              return kv("node_w", s.node_w) + " != " +
                     kv("core_l1_w", s.core_l1_w) + " + " +
                     kv("l2_l3_w", s.l2_l3_w) + " + " + kv("dram_w", s.dram_w);
            if (!s.dram_power_known && s.dram_w != 0.0)
              return kv("dram_w", s.dram_w) +
                     " reported with dram_power_known=false";
            return {};
          });
    r.add("result.energy-conservation",
          "energy equals node power x wall time (zero when power unknown)",
          [](const SimResult& s) -> std::string {
            if (!s.dram_power_known) {
              if (s.energy_j != 0.0)
                return kv("energy_j", s.energy_j) +
                       " reported with dram_power_known=false";
              return {};
            }
            if (!close(s.energy_j, s.node_w * s.wall_seconds))
              return kv("energy_j", s.energy_j) + " != " +
                     kv("node_w", s.node_w) + " * " +
                     kv("wall_s", s.wall_seconds);
            return {};
          });
    return r;
  }();
  return rules;
}

std::vector<Violation> check_result(const core::SimResult& r) {
  return result_rules().check(r, core::DseEngine::point_key(r.app, r.config));
}

void verify_result(const core::SimResult& r) {
  raise_if(check_result(r), ErrorClass::kInvariant);
}

std::vector<Violation> check_results(const std::vector<core::SimResult>& rs) {
  std::vector<Violation> out;
  for (const auto& r : rs) {
    std::vector<Violation> v = check_result(r);
    out.insert(out.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  }
  return out;
}

std::vector<Violation> check_core_timeline(
    const std::vector<cpusim::TimelineSeg>& segs, int cores, double makespan,
    const std::string& subject) {
  std::vector<Violation> out;
  const double limit = makespan * (1.0 + kRelEps);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const auto& s = segs[i];
    const std::string where = "segment " + std::to_string(i);
    if (s.core < 0 || s.core >= cores)
      out.push_back({"timeline.core-range", subject,
                     where + ": " + kv("core", s.core) + " outside [0, " +
                         std::to_string(cores) + ")"});
    if (!(s.start >= 0.0) || s.end < s.start)
      out.push_back({"timeline.monotone", subject,
                     where + ": " + kv("start", s.start) + ", " +
                         kv("end", s.end) + " not ordered"});
    if (s.end > limit)
      out.push_back({"timeline.bounds", subject,
                     where + ": " + kv("end", s.end) + " exceeds " +
                         kv("makespan", makespan)});
  }
  return out;
}

std::vector<Violation> check_rank_timeline(
    const std::vector<netsim::RankSeg>& segs, int ranks, double makespan,
    const std::string& subject) {
  std::vector<Violation> out;
  const double limit = makespan * (1.0 + kRelEps);
  std::map<int, double> last_end;  // per-rank monotonicity cursor
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const auto& s = segs[i];
    const std::string where = "segment " + std::to_string(i);
    if (s.rank < 0 || s.rank >= ranks) {
      out.push_back({"timeline.rank-range", subject,
                     where + ": " + kv("rank", s.rank) + " outside [0, " +
                         std::to_string(ranks) + ")"});
      continue;
    }
    if (!(s.start >= 0.0) || s.end < s.start)
      out.push_back({"timeline.monotone", subject,
                     where + ": " + kv("start", s.start) + ", " +
                         kv("end", s.end) + " not ordered"});
    double& cursor = last_end[s.rank];
    if (s.start < cursor * (1.0 - kRelEps))
      out.push_back({"timeline.overlap", subject,
                     where + ": " + kv("start", s.start) +
                         " overlaps previous segment ending at " +
                         kv("end", cursor) + " on rank " +
                         std::to_string(s.rank)});
    cursor = std::max(cursor, s.end);
    if (s.end > limit)
      out.push_back({"timeline.bounds", subject,
                     where + ": " + kv("end", s.end) + " exceeds " +
                         kv("makespan", makespan)});
  }
  return out;
}

}  // namespace musa::verify
