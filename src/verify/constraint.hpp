// Declarative constraint engine: named rules over configuration and result
// types, evaluated before a sweep spends hours simulating (config rules) or
// after results exist (invariants.hpp). A rule is a pure predicate that
// either passes or explains its failure; a RuleSet evaluates every rule and
// collects Violations instead of stopping at the first, so `dse_lint` can
// report everything wrong with a sweep point at once. enforce() converts
// violations into the library-wide musa::SimError.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace musa::verify {

/// One failed constraint: which rule, on what subject, and why.
struct Violation {
  std::string rule;     // dotted rule id, e.g. "dram.row-closure"
  std::string subject;  // what was checked, e.g. a config id or CSV row
  std::string detail;   // offending values, human-readable

  std::string str() const { return subject + ": " + rule + ": " + detail; }
};

/// Formats violations for an exception message or a lint report (one per
/// line, capped at `max_shown` with a "... and N more" tail).
std::string describe(const std::vector<Violation>& violations,
                     std::size_t max_shown = 8);

/// Throws SimError listing `violations`, tagged with `cls` so the sweep
/// supervisor can classify the failure (config lint vs result invariant);
/// no-op when the list is empty.
void raise_if(const std::vector<Violation>& violations,
              ErrorClass cls = ErrorClass::kConfig);

/// A named set of constraints over one subject type. Rules are registered
/// once (typically into a function-local static) and evaluated many times.
template <typename T>
class RuleSet {
 public:
  /// Check function: returns "" when the rule holds, otherwise the failure
  /// detail (offending values included by the rule author).
  using CheckFn = std::function<std::string(const T&)>;

  struct Rule {
    std::string id;       // dotted id, unique within the set
    std::string summary;  // one-line description for `dse_lint --rules`
    CheckFn check;
  };

  RuleSet& add(std::string id, std::string summary, CheckFn check) {
    rules_.push_back(
        {std::move(id), std::move(summary), std::move(check)});
    return *this;
  }

  /// Evaluates every rule against `value`; `subject` names the value in the
  /// returned violations (e.g. the machine-config id).
  std::vector<Violation> check(const T& value,
                               const std::string& subject) const {
    std::vector<Violation> out;
    for (const auto& rule : rules_) {
      std::string detail = rule.check(value);
      if (!detail.empty())
        out.push_back({rule.id, subject, std::move(detail)});
    }
    return out;
  }

  /// Like check(), but throws SimError on the first evaluation that found
  /// any violation.
  void enforce(const T& value, const std::string& subject,
               ErrorClass cls = ErrorClass::kConfig) const {
    raise_if(check(value, subject), cls);
  }

  const std::vector<Rule>& rules() const { return rules_; }

 private:
  std::vector<Rule> rules_;
};

/// True if `v` is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Shorthand for rule authors: "name=value" with %g formatting.
std::string kv(const char* name, double value);
std::string kv(const char* name, std::uint64_t value);
std::string kv(const char* name, std::int64_t value);
inline std::string kv(const char* name, int value) {
  return kv(name, static_cast<std::int64_t>(value));
}

}  // namespace musa::verify
