#include "verify/faultpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "common/check.hpp"
#include "common/deadline.hpp"
#include "common/journal.hpp"  // fnv1a64

namespace musa::verify {

namespace {

/// Global active plan + per-(spec, key) fire counters. Guarded by a mutex:
/// fault sites sit at stage boundaries (a handful of calls per sweep
/// point), never inside the per-instruction hot loops.
struct GlobalPlan {
  std::mutex mu;
  FaultPlan plan;
  bool armed = false;
  std::unordered_map<std::string, int> fires;  // "<spec-index>|<key>" -> n
};

GlobalPlan& global_plan() {
  static GlobalPlan g;
  return g;
}

double num_field(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0')
    throw SimError(std::string("bad MUSA_FAULT ") + what + ": \"" + s + "\"",
                   ErrorClass::kConfig);
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

FaultKind parse_kind(const std::string& name) {
  for (FaultKind k : {FaultKind::kIo, FaultKind::kModel, FaultKind::kInjected,
                      FaultKind::kDelay, FaultKind::kCorrupt, FaultKind::kKill,
                      FaultKind::kHang, FaultKind::kBabble})
    if (name == fault_kind_name(k)) return k;
  throw SimError("bad MUSA_FAULT kind: \"" + name +
                     "\" (want io|model|injected|delay|corrupt|"
                     "kill|hang|babble)",
                 ErrorClass::kConfig);
}

bool is_process_kind(FaultKind kind) {
  return kind == FaultKind::kKill || kind == FaultKind::kHang ||
         kind == FaultKind::kBabble;
}

/// One fault evaluation: checks the pure decision, then the per-(spec,key)
/// fire budget, and acts. Returns true for a fired corrupt-kind spec.
bool evaluate(std::size_t spec_index, const FaultSpec& spec, const char* site,
              const std::string& key) {
  if (!spec.matches(site)) return false;
  if (!fault_decision(spec, site, key)) return false;

  {
    GlobalPlan& g = global_plan();
    std::lock_guard<std::mutex> lock(g.mu);
    int max_fires = 0;  // 0 = unlimited
    if (spec.kind == FaultKind::kCorrupt)
      max_fires = spec.param > 0 ? spec.param : 1;
    else if (is_process_kind(spec.kind))
      max_fires = 1;  // param is a duration here, never a fire budget
    else if (spec.kind != FaultKind::kDelay)
      max_fires = spec.param;
    if (max_fires > 0) {
      int& n = g.fires[std::to_string(spec_index) + "|" + key];
      if (n >= max_fires) return false;  // fault has cleared
      ++n;
    }
  }

  const std::string where =
      std::string("injected fault at ") + site + " for " + key;
  switch (spec.kind) {
    case FaultKind::kIo:
      throw SimError(where + " (io)", ErrorClass::kIo, site);
    case FaultKind::kModel:
      throw SimError(where + " (model)", ErrorClass::kModel, site);
    case FaultKind::kInjected:
      throw SimError(where, ErrorClass::kInjected, site);
    case FaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(spec.param > 0 ? spec.param : 1000));
      // A delay only *becomes* a fault through the watchdog: poll it here
      // so sites past the hot loops still convert to timeout quarantines.
      deadline::check_now();
      return false;
    case FaultKind::kCorrupt:
      return true;
    case FaultKind::kKill:
    case FaultKind::kHang:
    case FaultKind::kBabble:
      return true;  // reported by process_fault(); the caller acts
  }
  return false;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIo: return "io";
    case FaultKind::kModel: return "model";
    case FaultKind::kInjected: return "injected";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kKill: return "kill";
    case FaultKind::kHang: return "hang";
    case FaultKind::kBabble: return "babble";
  }
  return "injected";
}

bool FaultSpec::matches(const char* site_name) const {
  if (!site.empty() && site.back() == '*')
    return std::string_view(site_name).substr(0, site.size() - 1) ==
           std::string_view(site).substr(0, site.size() - 1);
  return site == site_name;
}

bool fault_decision(const FaultSpec& spec, const char* site,
                    const std::string& key) {
  if (spec.prob <= 0.0) return false;
  if (spec.prob >= 1.0) return true;
  // Decision = hash(site | key) mixed with the seed, mapped to [0, 1).
  // Pure in its inputs: independent of threads, shards, and retries.
  std::uint64_t h = fnv1a64(std::string(site) + "|" + key);
  h ^= (spec.seed + 1) * 0x9E3779B97F4A7C15ull;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  const double u =
      static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
  return u < spec.prob;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  for (const std::string& item : split(text, ',')) {
    if (item.empty()) continue;
    const std::vector<std::string> f = split(item, ':');
    if (f.size() < 4 || f.size() > 5)
      throw SimError("bad MUSA_FAULT spec \"" + item +
                         "\" (want site:kind:seed:prob[:param])",
                     ErrorClass::kConfig);
    FaultSpec spec;
    spec.site = f[0];
    if (spec.site.empty())
      throw SimError("bad MUSA_FAULT spec \"" + item + "\": empty site",
                     ErrorClass::kConfig);
    spec.kind = parse_kind(f[1]);
    spec.seed = static_cast<std::uint64_t>(num_field(f[2], "seed"));
    spec.prob = num_field(f[3], "prob");
    if (spec.prob < 0.0 || spec.prob > 1.0)
      throw SimError("bad MUSA_FAULT prob in \"" + item + "\" (want [0,1])",
                     ErrorClass::kConfig);
    if (f.size() == 5) {
      spec.param = static_cast<int>(num_field(f[4], "param"));
      if (spec.param < 0)
        throw SimError("bad MUSA_FAULT param in \"" + item + "\" (want >= 0)",
                       ErrorClass::kConfig);
    }
    plan.specs_.push_back(std::move(spec));
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once before workers spawn.
  const char* env = std::getenv("MUSA_FAULT");
  return env != nullptr ? parse(env) : FaultPlan{};
}

std::string FaultPlan::str() const {
  std::string out;
  for (const FaultSpec& s : specs_) {
    if (!out.empty()) out += ", ";
    out += s.site;
    out += ':';
    out += fault_kind_name(s.kind);
    out += " p=" + std::to_string(s.prob);
    if (s.param > 0) out += " param=" + std::to_string(s.param);
  }
  return out.empty() ? "none" : out;
}

void FaultPlan::install(FaultPlan plan) {
  GlobalPlan& g = global_plan();
  std::lock_guard<std::mutex> lock(g.mu);
  g.armed = !plan.empty();
  g.plan = std::move(plan);
  g.fires.clear();
}

bool FaultPlan::active() {
  GlobalPlan& g = global_plan();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.armed;
}

void fault_point(const char* site, const std::string& key) {
  GlobalPlan& g = global_plan();
  // Snapshot the specs under the lock, evaluate outside it (evaluation can
  // sleep or throw). Plans are installed before workers spawn, so the copy
  // is only contention, not a race window.
  std::vector<FaultSpec> specs;
  {
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.armed) return;
    specs = g.plan.specs();
  }
  for (std::size_t i = 0; i < specs.size(); ++i)
    if (specs[i].kind != FaultKind::kCorrupt && !is_process_kind(specs[i].kind))
      evaluate(i, specs[i], site, key);
}

bool fault_corrupt(const char* site, const std::string& key) {
  GlobalPlan& g = global_plan();
  std::vector<FaultSpec> specs;
  {
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.armed) return false;
    specs = g.plan.specs();
  }
  bool corrupt = false;
  for (std::size_t i = 0; i < specs.size(); ++i)
    if (specs[i].kind == FaultKind::kCorrupt &&
        evaluate(i, specs[i], site, key))
      corrupt = true;
  return corrupt;
}

ProcessFault process_fault(const char* site, const std::string& key) {
  GlobalPlan& g = global_plan();
  std::vector<FaultSpec> specs;
  {
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.armed) return {};
    specs = g.plan.specs();
  }
  // First armed process-kind spec that fires wins; one verdict per call
  // keeps the worker's reaction unambiguous (it cannot both die and hang).
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!is_process_kind(specs[i].kind)) continue;
    if (!evaluate(i, specs[i], site, key)) continue;
    ProcessFault fault;
    switch (specs[i].kind) {
      case FaultKind::kKill:
        fault.action = ProcessFault::Action::kKill;
        break;
      case FaultKind::kHang:
        fault.action = ProcessFault::Action::kHang;
        fault.delay_ms = specs[i].param > 0 ? specs[i].param : 60000;
        break;
      default:
        fault.action = ProcessFault::Action::kBabble;
        fault.delay_ms = specs[i].param > 0 ? specs[i].param : 1000;
        break;
    }
    return fault;
  }
  return {};
}

}  // namespace musa::verify
