// Deterministic fault injection — how the sweep supervisor itself is
// tested.
//
// Named fault sites sit at the pipeline's stage boundaries (trace load,
// burst pre-pass, kernel replay, DRAM construction, power, journal append).
// A FaultPlan — parsed from `MUSA_FAULT` or `run_dse --inject` — arms a set
// of fault specs against those sites:
//
//   MUSA_FAULT = spec[,spec...]
//   spec       = site:kind:seed:prob[:param]
//
//   site   fault-site name, exact or prefix glob ("pipeline.*")
//   kind   io | model | injected  -> throw SimError of that class
//          delay                  -> sleep `param` ms, then poll the
//                                    watchdog (a delay under an armed
//                                    deadline becomes a timeout quarantine)
//          corrupt                -> fault_corrupt() returns true (the
//                                    journal then writes a checksum-
//                                    detectable corrupted record)
//          kill | hang | babble   -> process-level faults, reported by
//                                    process_fault() and acted on by the
//                                    elastic sweep worker: die by SIGKILL,
//                                    stop computing but keep the process
//                                    (heartbeats stop too), or keep
//                                    heartbeating without making progress
//   seed   decision seed (determinism knob)
//   prob   firing probability in [0, 1]
//   param  io/model/injected: max fires per (spec, key); 0 = unlimited.
//          A fault with param=N "clears after N attempts" — the retry-policy
//          tests use this. delay: sleep milliseconds (fires unlimited).
//          corrupt: max fires per key, default 1 (a corrupt fault that
//          re-fires on every recompute would never converge).
//          hang/babble: how long to misbehave, in milliseconds (defaults
//          60000 / 1000); process kinds always budget 1 fire per
//          (spec, key) per process — a respawned worker that drew the same
//          chunk faults again (it is a fresh process), while the
//          controller's in-process fallback never evaluates worker sites,
//          which is what bounds the convergence chain.
//
// Whether a spec fires for a given (site, key) is a pure function of
// (site, key, seed, prob) — independent of thread schedule, worker count,
// and sharding — so a chaos run is reproducible bit-for-bit and a given
// sweep point faults identically on every retry until its max-fires budget
// clears. Keys are sweep-point keys ("app|config-id") or file paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace musa::verify {

enum class FaultKind { kIo, kModel, kInjected, kDelay, kCorrupt,
                       kKill, kHang, kBabble };

const char* fault_kind_name(FaultKind kind);

struct FaultSpec {
  std::string site;  // exact name, or prefix glob ending in '*'
  FaultKind kind = FaultKind::kInjected;
  std::uint64_t seed = 0;
  double prob = 1.0;
  int param = 0;  // max fires (throwing kinds) / delay ms (kDelay)

  bool matches(const char* site_name) const;
};

/// Pure firing decision (no fire-count bookkeeping) — exposed so tests can
/// predict exactly which points a chaos plan will hit.
bool fault_decision(const FaultSpec& spec, const char* site,
                    const std::string& key);

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses "site:kind:seed:prob[:param][,spec...]"; throws
  /// SimError{config} on malformed input.
  static FaultPlan parse(const std::string& text);

  /// Plan from the MUSA_FAULT environment variable (empty when unset).
  static FaultPlan from_env();

  bool empty() const { return specs_.empty(); }
  const std::vector<FaultSpec>& specs() const { return specs_; }
  std::string str() const;

  /// Installs `plan` as the process-global active plan (replacing any
  /// previous one and resetting fire counters). Install before spawning
  /// sweep workers; sites consult the global plan lock-free when empty.
  static void install(FaultPlan plan);
  static void clear() { install(FaultPlan{}); }
  static bool active();

 private:
  std::vector<FaultSpec> specs_;
};

/// Evaluates every armed spec matching `site` for `key`: may throw a
/// SimError (io/model/injected kinds, class-tagged accordingly) or sleep
/// (delay kind; afterwards the watchdog deadline is polled, so a delayed
/// point under budget quarantines as `timeout`). No-op without a plan.
void fault_point(const char* site, const std::string& key);

/// True when a corrupt-kind spec fires at `site` for `key`.
bool fault_corrupt(const char* site, const std::string& key);

/// Verdict of the process-level fault kinds (kill/hang/babble) at a site.
/// Unlike fault_point(), nothing is thrown or slept here: the caller — the
/// elastic sweep worker, at site "worker.chunk" keyed by chunk id — is the
/// one that must die, stall, or babble, because only it knows its own
/// heartbeat machinery. In-process execution never consults this, so the
/// controller's fallback path is immune by construction.
struct ProcessFault {
  enum class Action { kNone, kKill, kHang, kBabble };
  Action action = Action::kNone;
  int delay_ms = 0;  // how long to hang / babble
};
ProcessFault process_fault(const char* site, const std::string& key);

}  // namespace musa::verify
