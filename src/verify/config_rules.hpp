// Static configuration linting: every sweep point is checked against these
// rule sets *before* simulation, so a physically impossible machine (DRAM
// timings that violate JEDEC closure, an L2 smaller than the L1 it backs, a
// zero-width core) fails in milliseconds instead of polluting a multi-hour
// sweep. `bench/dse_lint` exposes the same rules offline.
#pragma once

#include "cachesim/hierarchy.hpp"
#include "core/config_space.hpp"
#include "cpusim/core_config.hpp"
#include "dramsim/timing.hpp"
#include "verify/constraint.hpp"

namespace musa::verify {

/// OoO core structural bounds: positive widths and unit counts, a ROB that
/// can hold at least one dispatch group, register files that can rename it.
const RuleSet<cpusim::CoreConfig>& core_rules();

/// Cache-hierarchy shape: per-level geometry (integral set count), L1/L2
/// power-of-two capacity, capacity ordering L1 <= L2 and num_cores·L2 <= L3,
/// monotone latencies. The shared L3 may be non-power-of-two (the paper's
/// 96 MB point); it only needs an integral set count.
const RuleSet<cachesim::HierarchyConfig>& hierarchy_rules();

/// JEDEC-style timing-parameter closure: positive periods, row-cycle
/// closure tRAS >= tRCD + tCL, refresh that fits its interval, power-of-two
/// bank count and row size.
const RuleSet<dramsim::DramTiming>& dram_rules();

/// Machine-level dimensions: frequency range, power-of-two vector width,
/// channel count, node/machine size.
const RuleSet<core::MachineConfig>& machine_rules();

/// Full cross-layer lint of one sweep point: machine_rules plus core_rules
/// on the core preset, hierarchy_rules on the resolved cache config, and
/// dram_rules on the resolved memory technology. An unresolvable cache
/// label or memory tech is itself reported as a violation.
std::vector<Violation> check_machine(const core::MachineConfig& config);

/// The stable machine-readable catalogue of every rule id check_machine()
/// can emit, in its emission order (machine, core, cache.label, cache.*,
/// dram.*). This is the shared vocabulary between pointwise lint reports
/// and the static analyzer's per-rule kill counts: both key on these ids,
/// so the two reports are directly diffable. Ids are unique, lowercase,
/// dotted (asserted by test_space_analysis).
const std::vector<std::string>& machine_rule_ids();

/// Throws SimError naming the config id if check_machine() finds anything.
void validate_machine(const core::MachineConfig& config);

}  // namespace musa::verify
