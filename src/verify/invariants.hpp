// Result verification: physical-consistency invariants checked after every
// simulated sweep point and over every result row loaded from a cache or
// journal. A simulation that emits a NaN, breaks energy = power · time, or
// reports more IPC than the core can issue is a model bug (or on-disk
// corruption) — it must never flow silently into a paper figure.
//
// Freshly computed points are enforced (violations throw SimError naming
// the offending point); rows loaded from disk are filtered (a violating row
// is dropped and recomputed, exactly like a checksum failure). The
// `--no-verify` flag on run_dse / SweepOptions::verify turns enforcement
// off for perf experiments.
#pragma once

#include "core/pipeline.hpp"
#include "cpusim/runtime.hpp"
#include "netsim/dimemas.hpp"
#include "verify/constraint.hpp"

namespace musa::verify {

/// The invariant set over one simulation result. Bounds are cross-layer:
/// IPC against the core's issue width and vector lanes, bandwidth against
/// the memory technology's channel peak, energy against power · time.
const RuleSet<core::SimResult>& result_rules();

/// Evaluates result_rules() with the point key "app|config-id" as subject.
std::vector<Violation> check_result(const core::SimResult& r);

/// Throws SimError naming the offending point on any violation.
void verify_result(const core::SimResult& r);

/// Lints a whole result set (a loaded cache); returns every violation.
std::vector<Violation> check_results(const std::vector<core::SimResult>& rs);

/// Node-level task timeline sanity (Fig. 3 input): segments are
/// time-ordered (start <= end), inside [0, makespan], on a valid core.
std::vector<Violation> check_core_timeline(
    const std::vector<cpusim::TimelineSeg>& segs, int cores, double makespan,
    const std::string& subject);

/// Rank-level MPI timeline sanity (Fig. 4 input): per-rank segments are
/// monotone non-overlapping, inside [0, makespan], on a valid rank.
std::vector<Violation> check_rank_timeline(
    const std::vector<netsim::RankSeg>& segs, int ranks, double makespan,
    const std::string& subject);

}  // namespace musa::verify
