#!/usr/bin/env python3
"""Render the paper's figure panels from the DSE result cache.

Reads dse_cache.csv (produced by build/bench/run_dse) and emits, per swept
dimension, the normalised speed-up / power / energy series as CSV files
ready for any plotting tool, plus quick ASCII bar charts on stdout.

Usage:
  tools/plot_figures.py [--cache dse_cache.csv] [--out figures/]
"""
import argparse
import collections
import csv
import os
import sys

APPS = ["hydro", "spmz", "btmz", "spec3d", "lulesh"]
DIMENSIONS = {
    "fig5_vector": ("vector_bits", ["128", "256", "512"]),
    "fig6_cache": ("cache", ["32M:256K", "64M:512K", "96M:1M"]),
    "fig7_ooo": ("core", ["aggressive", "lowend", "high", "medium"]),
    "fig8_channels": ("channels", ["4", "8"]),
    "fig9_freq": ("freq_ghz", ["1.5", "2", "2.5", "3"]),
}
DIM_COLUMNS = ["core", "cache", "freq_ghz", "vector_bits", "channels",
               "tech", "cores"]


def load_rows(path):
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def key_without(row, dim):
    return tuple(row[c] if c != dim else "*" for c in DIM_COLUMNS)


def normalised(rows, app, cores, dim, value, baseline, metric):
    base = {}
    for r in rows:
        if r["app"] != app or r["cores"] != cores or r[dim] != baseline:
            continue
        base[key_without(r, dim)] = metric(r)
    ratios = []
    for r in rows:
        if r["app"] != app or r["cores"] != cores or r[dim] != value:
            continue
        b = base.get(key_without(r, dim))
        if b:
            ratios.append(metric(r) / b)
    return sum(ratios) / len(ratios) if ratios else float("nan")


def bar(value, scale=30.0):
    n = max(0, int(round(value * scale / 2.0)))
    return "#" * n


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--cache", default="dse_cache.csv")
    ap.add_argument("--out", default="figures")
    ap.add_argument("--cores", default="64")
    args = ap.parse_args()

    if not os.path.exists(args.cache):
        sys.exit(f"{args.cache} not found — run build/bench/run_dse first")
    rows = load_rows(args.cache)
    os.makedirs(args.out, exist_ok=True)

    region = lambda r: float(r["region_s"])
    power = lambda r: float(r["node_w"])
    energy = lambda r: float(r["region_s"]) * float(r["node_w"])

    for name, (dim, values) in DIMENSIONS.items():
        baseline = values[0]
        out_path = os.path.join(args.out, f"{name}.csv")
        with open(out_path, "w", newline="") as f:
            w = csv.writer(f)
            w.writerow(["app"] + [f"speedup_{v}" for v in values] +
                       [f"power_{v}" for v in values] +
                       [f"energy_{v}" for v in values])
            print(f"\n== {name} (normalised to {dim}={baseline}, "
                  f"{args.cores} cores) ==")
            for app in APPS:
                speed = [1.0 / normalised(rows, app, args.cores, dim, v,
                                          baseline, region) for v in values]
                pw = [normalised(rows, app, args.cores, dim, v, baseline,
                                 power) for v in values]
                en = [normalised(rows, app, args.cores, dim, v, baseline,
                                 energy) for v in values]
                w.writerow([app] + [f"{x:.4f}" for x in speed + pw + en])
                series = "  ".join(f"{v}:{s:.2f} {bar(s)}"
                                   for v, s in zip(values, speed))
                print(f"  {app:<8} {series}")
        print(f"  -> {out_path}")

    print("\nDone. CSVs are gnuplot/matplotlib-ready.")


if __name__ == "__main__":
    main()
