#!/usr/bin/env python3
"""Inspect the DSE sweep cache and its write-ahead journals.

Shows, for an in-flight (possibly sharded) sweep, how many points each
journal holds, how many records are corrupt or truncated, per-app
coverage, and whether the union of all journals covers the full
864 x 5 plan.

Journal format (see src/common/journal.cpp):
  musa-journal v1
  <header cells, comma-separated>
  <key> \t <cells, comma-separated> \t <fnv1a64 hex of "key\tcells">

where <key> is "app|config-id". A key prefixed "FAIL!" is a quarantine
record: its four cells are {error class, stage, attempts, message}, and a
good row for the same key (in any journal) supersedes it. A key prefixed
"LEASE!" is an elastic-controller lease event (DESIGN.md §7h): its six
cells are {event, chunk, worker, begin, end, detail}. Lease events also
land in the `<cache>.leases` audit sidecar, which survives finalize; the
"lease accounting" section below reconciles them — every chunk a lease
ever touched must end committed, which is what the CI chaos leg greps
for after kill -9-ing workers mid-sweep.

Usage:
  tools/journal_status.py [cache.csv]     # default: dse_cache.csv
"""
import collections
import glob
import os
import sys

FULL_PLAN = 864 * 5  # Table I grid x five applications
FAIL_PREFIX = "FAIL!"  # reserved quarantine-record key prefix
LEASE_PREFIX = "LEASE!"  # reserved lease-event key prefix
# Writer vocabulary of src/common/journal.cpp known_lease_event(); an
# event outside it is writer/reader version skew, same as dse_lint.
KNOWN_LEASE_EVENTS = {"granted", "revoked", "committed", "spawned",
                      "respawned", "killed", "inprocess", "abandoned"}


def fnv1a64(data: bytes) -> int:
    h = 0xCBF29CE484222325
    for b in data:
        h ^= b
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def read_journal(path):
    """Return (header, {key: cells}, {key: fail_cells}, [lease_cells],
    dropped_count)."""
    entries, fails, leases, dropped = {}, {}, [], 0
    with open(path, "rb") as f:
        lines = f.read().split(b"\n")
    if len(lines) < 2 or lines[0] != b"musa-journal v1":
        return None, entries, fails, leases, 0
    header = lines[1].decode(errors="replace").split(",")
    for line in lines[2:]:
        if not line:
            continue
        parts = line.split(b"\t")
        if len(parts) != 3:
            dropped += 1
            continue
        key, cells, checksum = parts
        if format(fnv1a64(key + b"\t" + cells), "016x").encode() != checksum:
            dropped += 1
            continue
        key = key.decode()
        cells = cells.decode().split(",")
        if key.startswith(FAIL_PREFIX):
            if len(cells) != 4:  # {class, stage, attempts, message}
                dropped += 1
                continue
            fails[key[len(FAIL_PREFIX):]] = cells
        elif key.startswith(LEASE_PREFIX):
            if len(cells) != 6:  # {event, chunk, worker, begin, end, detail}
                dropped += 1
                continue
            leases.append(cells)
        else:
            entries[key] = cells
    # Good beats FAIL within one journal (order-independent resolution).
    for key in entries:
        fails.pop(key, None)
    return header, entries, fails, leases, dropped


def cache_row_count(path):
    with open(path) as f:
        header = f.readline().rstrip("\n").split(",")
        good = bad = 0
        for line in f:
            if len(line.rstrip("\n").split(",")) == len(header):
                good += 1
            else:
                bad += 1  # truncated tail; run_dse will repair it
    return good, bad


def main():
    cache = sys.argv[1] if len(sys.argv) > 1 else "dse_cache.csv"
    journals = sorted(
        p for p in glob.glob(glob.escape(cache) + ".*")
        if p.endswith(".journal")
    )

    if os.path.exists(cache):
        good, bad = cache_row_count(cache)
        note = f" ({bad} malformed)" if bad else ""
        status = "complete" if good == FULL_PLAN and not bad else "PARTIAL"
        print(f"{cache}: {good}/{FULL_PLAN} rows{note} -> {status}")
    else:
        print(f"{cache}: absent")

    union, fail_union, lease_events = {}, {}, []
    # The lease audit sidecar is journal-format but not a working journal:
    # it survives finalize, so lease accounting works on a finished sweep.
    lease_log = cache + ".leases"
    for path in journals + ([lease_log] if os.path.exists(lease_log) else []):
        header, entries, fails, leases, dropped = read_journal(path)
        if header is None:
            print(f"{path}: not a musa journal")
            continue
        note = (f", {dropped} corrupt/truncated record(s) dropped"
                if dropped else "")
        qnote = f", {len(fails)} quarantined" if fails else ""
        lnote = f", {len(leases)} lease event(s)" if leases else ""
        print(f"{path}: {len(entries)} point(s){note}{qnote}{lnote}")
        union.update(entries)
        fail_union.update(fails)
        lease_events.extend(leases)

    # Good beats FAIL across journals too: a point one shard quarantined
    # but a sibling completed is not quarantined.
    for key in union:
        fail_union.pop(key, None)

    if journals:
        per_app = collections.Counter(k.split("|", 1)[0] for k in union)
        total = len(union)
        print(f"\njournaled union: {total}/{FULL_PLAN} points"
              f" ({100.0 * total / FULL_PLAN:.1f}%)")
        for app in sorted(per_app):
            print(f"  {app:8s} {per_app[app]}")
        if fail_union:
            print(f"\nquarantined: {len(fail_union)} point(s)"
                  " (rerun run_dse --retry-failed to recompute)")
            by_class = collections.Counter(
                cells[0] for cells in fail_union.values())
            for cls in sorted(by_class):
                print(f"  class {cls:9s} {by_class[cls]}")
            for key in sorted(fail_union):
                cls, stage, attempts, message = fail_union[key]
                print(f"  {key}: class={cls} stage={stage or 'unknown'}"
                      f" attempts={attempts} {message}")
    else:
        print("no journals found; nothing in flight")

    if lease_events:
        # Reconciliation: every chunk a lease ever touched must end with a
        # committed event — that is the elastic controller's convergence
        # claim, and what CI asserts after killing workers mid-sweep.
        by_event = collections.Counter(e[0] for e in lease_events)
        unknown = sorted({e[0] for e in lease_events} - KNOWN_LEASE_EVENTS)
        touched, committed = set(), set()
        for cells in lease_events:
            event, chunk = cells[0], cells[1]
            try:
                c = int(chunk)
            except ValueError:
                continue
            if c < 0:
                continue  # not chunk-scoped (spawn/kill bookkeeping)
            if event == "committed":
                committed.add(c)
            elif event in ("granted", "revoked", "inprocess"):
                touched.add(c)
        unaccounted = sorted(touched - committed)
        counts = ", ".join(
            f"{by_event[e]} {e}"
            for e in ("granted", "revoked", "committed", "spawned",
                      "respawned", "killed", "inprocess", "abandoned")
            if by_event[e])
        verdict = "OK" if not unaccounted and not unknown else "BAD"
        print(f"\nlease accounting: {counts} -> {verdict}")
        if unaccounted:
            print(f"  unaccounted chunk(s): {unaccounted}"
                  " (touched by a lease but never committed)")
        if unknown:
            print(f"  unknown lease event(s): {unknown}"
                  " (writer/reader version skew)")


if __name__ == "__main__":
    main()
