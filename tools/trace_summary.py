#!/usr/bin/env python3
"""Summarise (and validate) a MUSA Chrome trace produced by run_dse.

Loads a merged Chrome trace_event JSON (`run_dse --trace-out sweep.json`)
or one or more raw `*.events.jsonl` shard sidecars, validates the event
stream (well-formed JSON, required fields, non-negative durations,
per-(pid, tid) monotone start timestamps), and prints:

  * per-stage duration totals (burst / kernel / replay / power / point),
  * per-(pid, tid) worker lane occupancy over the trace's span,
  * outcome counts (ok / fail / quarantined / memo-hit / retry),
  * instant-event counts (quarantine / retry markers).

CI's chaos leg uses `--expect-quarantines N` to assert the merged trace
carries exactly one quarantine marker per injected fault: any mismatch
(or any validation error) exits 1.

Usage:
  tools/trace_summary.py sweep.trace.json
  tools/trace_summary.py sweep.trace.json --expect-quarantines 3
  tools/trace_summary.py shard-*.events.jsonl
"""
import argparse
import json
import sys

COMPLETE, INSTANT, METADATA = "X", "i", "M"
REQUIRED = ("name", "ph", "ts", "pid", "tid")


def load_events(path):
    """Return the list of event dicts in `path` (trace JSON or JSONL)."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    if path.endswith(".jsonl"):
        return [json.loads(line) for line in text.splitlines() if line]
    doc = json.loads(text)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace (no traceEvents)")
    return doc["traceEvents"]


def validate(events, errors):
    """Structural checks; appends human-readable problems to `errors`."""
    last_ts = {}  # (pid, tid) -> last complete-event start ts
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        if ev.get("ph") == METADATA:
            # Metadata events carry no timestamp, only identity.
            if "name" not in ev or "pid" not in ev:
                errors.append(f"{where}: metadata event missing name/pid")
            continue
        missing = [k for k in REQUIRED if k not in ev]
        if missing:
            errors.append(f"{where}: missing {','.join(missing)}")
            continue
        if ev["ph"] not in (COMPLETE, INSTANT):
            errors.append(f"{where}: unknown phase {ev['ph']!r}")
            continue
        if ev["ph"] == COMPLETE and ev.get("dur", 0) < 0:
            errors.append(f"{where}: negative duration")
        lane = (ev["pid"], ev["tid"])
        # Tracer::drain sorts by ts, and sidecars are wall-clock anchored:
        # within one worker lane start times must never run backwards.
        if ev["ph"] == COMPLETE:
            if lane in last_ts and ev["ts"] < last_ts[lane]:
                errors.append(
                    f"{where}: ts {ev['ts']} < predecessor "
                    f"{last_ts[lane]} in lane pid={lane[0]} tid={lane[1]}"
                )
            last_ts[lane] = ev["ts"]


def summarise(events):
    stages = {}  # name -> [count, total_us]
    lanes = {}  # (pid, tid) -> busy_us over complete 'point' spans
    outcomes = {}
    instants = {}
    t_min, t_max = None, None
    for ev in events:
        if not isinstance(ev, dict) or ev.get("ph") == METADATA:
            continue
        outcome = ev.get("args", {}).get("outcome")
        if outcome:
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
        if ev.get("ph") == INSTANT:
            instants[ev["name"]] = instants.get(ev["name"], 0) + 1
            continue
        if ev.get("ph") != COMPLETE:
            continue
        dur = ev.get("dur", 0)
        s = stages.setdefault(ev["name"], [0, 0])
        s[0] += 1
        s[1] += dur
        # Occupancy counts only top-level point spans: stage spans nest
        # inside them, so adding both would double-count the lane.
        if ev["name"] == "point":
            lane = (ev["pid"], ev["tid"])
            lanes[lane] = lanes.get(lane, 0) + dur
        t_min = ev["ts"] if t_min is None else min(t_min, ev["ts"])
        t_max = max(t_max or 0, ev["ts"] + dur)
    span_us = (t_max - t_min) if t_min is not None else 0
    return stages, lanes, outcomes, instants, span_us


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="+", help="trace JSON and/or JSONL files")
    ap.add_argument(
        "--expect-quarantines",
        type=int,
        default=None,
        metavar="N",
        help="exit 1 unless exactly N quarantine markers are present",
    )
    args = ap.parse_args()

    events, errors = [], []
    for path in args.paths:
        try:
            events.extend(load_events(path))
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"ERROR: {e}", file=sys.stderr)
            return 1
    validate(events, errors)
    stages, lanes, outcomes, instants, span_us = summarise(events)

    print(f"{len(events)} event(s) from {len(args.paths)} file(s), "
          f"spanning {span_us / 1e6:.3f}s")
    if stages:
        print("per-stage totals:")
        for name in sorted(stages, key=lambda n: -stages[n][1]):
            count, total = stages[name]
            print(f"  {name:16s} {count:6d} span(s) {total / 1e6:10.3f}s")
    if lanes and span_us > 0:
        print("worker lanes (occupancy = point-span time / trace span):")
        for pid, tid in sorted(lanes):
            busy = lanes[(pid, tid)]
            print(f"  pid {pid:3d} tid {tid:4d}  busy {busy / 1e6:8.3f}s "
                  f"({100.0 * busy / span_us:5.1f}%)")
    if outcomes:
        print("outcomes:",
              ", ".join(f"{k}={outcomes[k]}" for k in sorted(outcomes)))
    if instants:
        print("instant markers:",
              ", ".join(f"{k}={instants[k]}" for k in sorted(instants)))

    for e in errors:
        print(f"INVALID: {e}", file=sys.stderr)
    if errors:
        return 1

    if args.expect_quarantines is not None:
        got = instants.get("quarantine", 0)
        if got != args.expect_quarantines:
            print(
                f"FAIL: expected {args.expect_quarantines} quarantine "
                f"marker(s), found {got}",
                file=sys.stderr,
            )
            return 1
        print(f"quarantine markers match expectation ({got})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
