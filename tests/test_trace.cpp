// Unit tests for the trace layer: synthetic kernel sources, burst traces,
// and regions.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/check.hpp"
#include "trace/burst.hpp"
#include "trace/instr_source.hpp"
#include "trace/kernel.hpp"
#include "trace/region.hpp"

namespace musa::trace {
namespace {

KernelProfile tiny_profile() {
  KernelProfile p;
  p.name = "tiny";
  p.vec_body = {.loads = 1, .fp_add = 1, .fp_mul = 1, .stores = 1};
  p.vec_trip = 4;
  p.scalar_tail = {.int_alu = 4, .int_mul = 1, .fp_add = 2, .fp_mul = 2,
                   .fp_div = 1, .loads = 4, .stores = 2, .branches = 2};
  p.streams = {{.share = 0.5, .ws_bytes = 4096, .stride = 8},
               {.share = 0.5, .ws_bytes = 1 << 20, .stride = 64}};
  return p;
}

TEST(KernelSource, DeterministicReplay) {
  KernelSource a(tiny_profile(), 1000, 42);
  KernelSource b(tiny_profile(), 1000, 42);
  isa::Instr ia, ib;
  while (a.next(ia)) {
    ASSERT_TRUE(b.next(ib));
    EXPECT_EQ(ia.op, ib.op);
    EXPECT_EQ(ia.addr, ib.addr);
    EXPECT_EQ(ia.static_id, ib.static_id);
  }
  EXPECT_FALSE(b.next(ib));
}

TEST(KernelSource, ResetReplaysIdentically) {
  KernelSource src(tiny_profile(), 500, 7);
  std::vector<isa::Instr> first;
  isa::Instr in;
  while (src.next(in)) first.push_back(in);
  src.reset();
  std::size_t i = 0;
  while (src.next(in)) {
    ASSERT_LT(i, first.size());
    EXPECT_EQ(in.addr, first[i].addr);
    EXPECT_EQ(in.op, first[i].op);
    ++i;
  }
  EXPECT_EQ(i, first.size());
}

TEST(KernelSource, RespectsBudgetWithinOneIteration) {
  const auto p = tiny_profile();
  KernelSource src(p, 100, 1);
  isa::Instr in;
  std::uint64_t n = 0;
  while (src.next(in)) ++n;
  EXPECT_GE(n, 100u);
  EXPECT_LE(n, 100u + static_cast<std::uint64_t>(p.instrs_per_outer()));
}

TEST(KernelSource, InstructionMixMatchesProfile) {
  const auto p = tiny_profile();
  const int per_outer = p.instrs_per_outer();
  KernelSource src(p, static_cast<std::uint64_t>(per_outer) * 10, 3);
  isa::Instr in;
  int counts[isa::kNumOpClasses] = {};
  while (src.next(in)) ++counts[static_cast<int>(in.op)];
  // Per 10 outer iterations: vec contributes trip * body, tail contributes
  // its own counts.
  EXPECT_EQ(counts[static_cast<int>(isa::OpClass::kLoad)],
            10 * (p.vec_trip * p.vec_body.loads + p.scalar_tail.loads));
  EXPECT_EQ(counts[static_cast<int>(isa::OpClass::kStore)],
            10 * (p.vec_trip * p.vec_body.stores + p.scalar_tail.stores));
  EXPECT_EQ(counts[static_cast<int>(isa::OpClass::kFpDiv)],
            10 * p.scalar_tail.fp_div);
  EXPECT_EQ(counts[static_cast<int>(isa::OpClass::kBranch)],
            10 * p.scalar_tail.branches);
}

TEST(KernelSource, VectorLanesCarryMarkers) {
  KernelSource src(tiny_profile(), 200, 5);
  isa::Instr in;
  bool saw_vectorizable = false;
  while (src.next(in)) {
    if (in.vectorizable) {
      saw_vectorizable = true;
      EXPECT_GT(in.static_id, 0u);
      EXPECT_LT(in.lane, tiny_profile().vec_trip);
    }
  }
  EXPECT_TRUE(saw_vectorizable);
}

TEST(KernelSource, StreamAddressesStayInWorkingSet) {
  KernelProfile p = tiny_profile();
  p.streams = {{.share = 1.0, .ws_bytes = 4096, .stride = 8}};
  KernelSource src(p, 5000, 11);
  isa::Instr in;
  while (src.next(in)) {
    if (!isa::is_mem(in.op) || in.vectorizable) continue;
    // Stream base is a multiple of 2^32; offset below ws_bytes.
    EXPECT_LT(in.addr % (1ull << 32), 4096u);
  }
}

TEST(KernelSource, RandomStreamCoversWorkingSet) {
  KernelProfile p = tiny_profile();
  p.streams = {{.share = 1.0, .ws_bytes = 1 << 16, .stride = 0}};
  KernelSource src(p, 20000, 13);
  isa::Instr in;
  std::set<std::uint64_t> lines;
  while (src.next(in))
    if (isa::is_mem(in.op) && !in.vectorizable)
      lines.insert(in.addr % (1ull << 32) / 64);
  EXPECT_GT(lines.size(), 500u);  // many distinct lines of the 1024 possible
}

TEST(KernelSource, DependentStreamChainsLoads) {
  KernelProfile p = tiny_profile();
  p.streams = {{.share = 1.0, .ws_bytes = 1 << 20, .stride = 64,
                .dependent = true}};
  KernelSource src(p, 2000, 17);
  isa::Instr in;
  bool chained = false;
  while (src.next(in)) {
    if (in.op == isa::OpClass::kLoad && !in.vectorizable) {
      // Chain loads: destination feeds the next load's address register.
      EXPECT_EQ(in.dst, in.src1);
      chained = true;
    }
  }
  EXPECT_TRUE(chained);
}

TEST(KernelSource, RejectsBadProfiles) {
  KernelProfile empty;
  EXPECT_THROW(KernelSource(empty, 100), SimError);
  KernelProfile bad = tiny_profile();
  bad.ilp_chains = 0;
  EXPECT_THROW(KernelSource(bad, 100), SimError);
  KernelProfile small_ws = tiny_profile();
  small_ws.streams = {{.share = 1.0, .ws_bytes = 32, .stride = 8}};
  EXPECT_THROW(KernelSource(small_ws, 100), SimError);
}

TEST(BurstEvent, FactoryFunctions) {
  const BurstEvent c = BurstEvent::compute(0.5, 3);
  EXPECT_EQ(c.kind, BurstEvent::Kind::kCompute);
  EXPECT_DOUBLE_EQ(c.seconds, 0.5);
  EXPECT_EQ(c.region_id, 3);

  const BurstEvent m = BurstEvent::mpi(MpiOp::kIsend, 7, 1024, 2);
  EXPECT_EQ(m.kind, BurstEvent::Kind::kMpi);
  EXPECT_EQ(m.peer, 7);
  EXPECT_EQ(m.bytes, 1024u);
  EXPECT_EQ(m.req, 2);
}

TEST(BurstEvent, MpiOpNames) {
  EXPECT_STREQ(mpi_op_name(MpiOp::kAllreduce), "Allreduce");
  EXPECT_STREQ(mpi_op_name(MpiOp::kIrecv), "Irecv");
}

TEST(Region, TotalWorkSumsTaskWork) {
  Region r;
  r.tasks.push_back({.type = 0, .work = 1.5});
  r.tasks.push_back({.type = 0, .work = 2.5});
  EXPECT_DOUBLE_EQ(r.total_work(), 4.0);
}

TEST(SpanSource, ServesSuffixFromBeginAndResetsToBegin) {
  std::vector<isa::Instr> instrs;
  KernelSource gen(tiny_profile(), 200);
  isa::Instr in;
  while (gen.next(in)) instrs.push_back(in);
  ASSERT_GE(instrs.size(), 200u);

  // A SpanSource starting at `begin` must replay exactly the tail a full
  // drain would produce after consuming `begin` instructions — this is what
  // makes the memoized measured run identical to the plain one.
  const std::size_t begin = 70;
  SpanSource span(instrs, begin);
  for (std::size_t i = begin; i < instrs.size(); ++i) {
    ASSERT_TRUE(span.next(in));
    EXPECT_EQ(in.op, instrs[i].op);
    EXPECT_EQ(in.addr, instrs[i].addr);
    EXPECT_EQ(in.dst, instrs[i].dst);
  }
  EXPECT_FALSE(span.next(in));

  // reset() rewinds to `begin`, not to the vector head.
  span.reset();
  ASSERT_TRUE(span.next(in));
  EXPECT_EQ(in.op, instrs[begin].op);
  EXPECT_EQ(in.addr, instrs[begin].addr);

  // begin == 0 serves the whole vector; begin past the end is empty.
  SpanSource whole(instrs);
  std::size_t n = 0;
  while (whole.next(in)) ++n;
  EXPECT_EQ(n, instrs.size());
  SpanSource past(instrs, instrs.size() + 5);
  EXPECT_FALSE(past.next(in));
}

class KernelSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelSeedSweep, AllSeedsProduceFullBudget) {
  KernelSource src(tiny_profile(), 300, GetParam());
  isa::Instr in;
  std::uint64_t n = 0;
  while (src.next(in)) ++n;
  EXPECT_GE(n, 300u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelSeedSweep,
                         ::testing::Values(1, 2, 3, 1000, 0xdeadbeef));

}  // namespace
}  // namespace musa::trace
