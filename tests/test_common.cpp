// Unit tests for the common utilities: RNG determinism, streaming
// statistics, table/CSV round-trips, and invariant checks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace musa {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(11);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[r.next_below(8)];
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.next_normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng r(3);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = r.next_double() * 100;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
}

TEST(Stats, GeomeanOfPowersOfTwo) {
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
}

TEST(Units, FrequencyRoundTrip) {
  Frequency f{2.5};
  EXPECT_NEAR(f.cycles_to_seconds(f.seconds_to_cycles(1.25)), 1.25, 1e-12);
  EXPECT_NEAR(f.period_ns(), 0.4, 1e-12);
}

TEST(Check, ThrowsSimErrorWithContext) {
  try {
    MUSA_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
  }
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"app", "x"});
  t.row().cell("hydro").cell(1.5, 2);
  t.row().cell("lulesh").cell(10.25, 2);
  const std::string s = t.str();
  EXPECT_NE(s.find("hydro"), std::string::npos);
  EXPECT_NE(s.find("10.25"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RejectsTooManyCells) {
  TextTable t({"only"});
  t.row().cell("a");
  EXPECT_THROW(t.cell("b"), SimError);
}

TEST(Csv, RoundTripsThroughText) {
  CsvDoc doc({"a", "b"});
  doc.add_row({"1", "2"});
  doc.add_row({"x", "y"});
  const CsvDoc parsed = CsvDoc::parse(doc.str());
  ASSERT_EQ(parsed.rows().size(), 2u);
  EXPECT_EQ(parsed.rows()[1][1], "y");
  EXPECT_EQ(parsed.column("b"), 1u);
  EXPECT_THROW(parsed.column("zz"), SimError);
}

TEST(Csv, RejectsRaggedRow) {
  CsvDoc doc({"a", "b"});
  EXPECT_THROW(doc.add_row({"only-one"}), SimError);
}

TEST(Csv, FileRoundTrip) {
  CsvDoc doc({"k", "v"});
  doc.add_row({"answer", "42"});
  const std::string path = std::string(::testing::TempDir()) + "musa_csv_test.csv";
  doc.save(path);
  ASSERT_TRUE(CsvDoc::file_exists(path));
  const CsvDoc loaded = CsvDoc::load(path);
  EXPECT_EQ(loaded.rows()[0][0], "answer");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace musa
