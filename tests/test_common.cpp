// Unit tests for the common utilities: RNG determinism, streaming
// statistics, table/CSV round-trips, and invariant checks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <cstdint>
#include <unordered_map>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/flat_table.hpp"
#include "common/parallel.hpp"
#include "common/parse.hpp"
#include "common/progress.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace musa {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(11);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[r.next_below(8)];
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.next_normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng r(3);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = r.next_double() * 100;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
}

TEST(Stats, GeomeanOfPowersOfTwo) {
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
}

TEST(Stats, GeomeanSkipsNonPositiveEntriesWithCount) {
  // The old implementation returned NaN (log of a negative) or -inf (log
  // of zero) here; the fixed one skips the bad entries and reports how
  // many were dropped.
  std::size_t skipped = 0;
  EXPECT_NEAR(geomean({2.0, 0.0, 8.0, -3.0}, &skipped), 4.0, 1e-12);
  EXPECT_EQ(skipped, 2u);

  skipped = 0;
  const double nan = std::nan("");
  EXPECT_NEAR(geomean({nan, 4.0}, &skipped), 4.0, 1e-12);
  EXPECT_EQ(skipped, 1u);

  // All entries degenerate: no positive sample remains, result is 0.
  skipped = 0;
  EXPECT_EQ(geomean({0.0, -1.0}, &skipped), 0.0);
  EXPECT_EQ(skipped, 2u);
}

TEST(Stats, GeomeanStrictThrowsOnNonPositive) {
  EXPECT_NEAR(geomean_strict({2.0, 8.0}), 4.0, 1e-12);
  try {
    geomean_strict({2.0, 0.0, 8.0});
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::kConfig);
    // The message names the offending index so the caller can find the
    // degenerate ratio in its input.
    EXPECT_NE(std::string(e.what()).find("sample 1"), std::string::npos);
  }
  EXPECT_THROW(geomean_strict({-1.0}), SimError);
  EXPECT_THROW(geomean_strict({std::nan("")}), SimError);
}

TEST(Stats, StddevSingleSampleIsZeroLikeRunningStats) {
  // n == 1 must agree between the free function and the accumulator:
  // zero spread, not NaN from the n-1 denominator.
  EXPECT_EQ(stddev({42.0}), 0.0);
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
}

TEST(RunningStats, MergeOfSingletonsMatchesWholeVector) {
  // Every sample in its own accumulator, merged pairwise — the worst case
  // for a merge formula that divides by (n-1) or assumes n >= 2.
  const std::vector<double> xs = {5.0, -1.0, 3.5, 8.0};
  RunningStats merged;
  for (double x : xs) {
    RunningStats single;
    single.add(x);
    merged.merge(single);
  }
  RunningStats whole;
  for (double x : xs) whole.add(x);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-12);
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
}

TEST(RunningStats, MergeOfRandomSplitsMatchesWholeVector) {
  // Property test: for random data and random partitions into k parts,
  // merging the parts equals accumulating the whole vector.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(60));
    const int parts = 1 + static_cast<int>(rng.next_below(8));
    std::vector<RunningStats> split(parts);
    RunningStats whole;
    for (int i = 0; i < n; ++i) {
      const double x = rng.next_normal(0.0, 50.0);
      whole.add(x);
      split[rng.next_below(static_cast<std::uint64_t>(parts))].add(x);
    }
    RunningStats merged;  // also covers merging into an empty accumulator
    for (const auto& part : split) merged.merge(part);
    ASSERT_EQ(merged.count(), whole.count()) << "trial " << trial;
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9) << "trial " << trial;
    EXPECT_NEAR(merged.stddev(), whole.stddev(), 1e-9) << "trial " << trial;
    EXPECT_EQ(merged.min(), whole.min()) << "trial " << trial;
    EXPECT_EQ(merged.max(), whole.max()) << "trial " << trial;
  }
}

TEST(Units, FrequencyRoundTrip) {
  Frequency f{2.5};
  EXPECT_NEAR(f.cycles_to_seconds(f.seconds_to_cycles(1.25)), 1.25, 1e-12);
  EXPECT_NEAR(f.period_ns(), 0.4, 1e-12);
}

TEST(Check, ThrowsSimErrorWithContext) {
  try {
    MUSA_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
  }
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"app", "x"});
  t.row().cell("hydro").cell(1.5, 2);
  t.row().cell("lulesh").cell(10.25, 2);
  const std::string s = t.str();
  EXPECT_NE(s.find("hydro"), std::string::npos);
  EXPECT_NE(s.find("10.25"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RejectsTooManyCells) {
  TextTable t({"only"});
  t.row().cell("a");
  EXPECT_THROW(t.cell("b"), SimError);
}

TEST(Csv, RoundTripsThroughText) {
  CsvDoc doc({"a", "b"});
  doc.add_row({"1", "2"});
  doc.add_row({"x", "y"});
  const CsvDoc parsed = CsvDoc::parse(doc.str());
  ASSERT_EQ(parsed.rows().size(), 2u);
  EXPECT_EQ(parsed.rows()[1][1], "y");
  EXPECT_EQ(parsed.column("b"), 1u);
  EXPECT_THROW(parsed.column("zz"), SimError);
}

TEST(Csv, RejectsRaggedRow) {
  CsvDoc doc({"a", "b"});
  EXPECT_THROW(doc.add_row({"only-one"}), SimError);
}

TEST(Csv, FileRoundTrip) {
  CsvDoc doc({"k", "v"});
  doc.add_row({"answer", "42"});
  const std::string path = std::string(::testing::TempDir()) + "musa_csv_test.csv";
  doc.save(path);
  ASSERT_TRUE(CsvDoc::file_exists(path));
  const CsvDoc loaded = CsvDoc::load(path);
  EXPECT_EQ(loaded.rows()[0][0], "answer");
  std::remove(path.c_str());
}

TEST(Csv, RejectsCellsContainingDelimiters) {
  CsvDoc doc({"a", "b"});
  EXPECT_THROW(doc.add_row({"with,comma", "x"}), SimError);
  EXPECT_THROW(doc.add_row({"x", "with\nnewline"}), SimError);
  EXPECT_THROW(doc.add_row({"x", "with\rreturn"}), SimError);
  doc.add_row({"clean", "cells"});  // unaffected
  EXPECT_EQ(doc.rows().size(), 1u);
}

TEST(Csv, SaveIsAtomicReplaceLeavingNoTempFile) {
  const std::string path =
      std::string(::testing::TempDir()) + "musa_csv_atomic.csv";
  CsvDoc first({"k"});
  first.add_row({"old"});
  first.save(path);
  CsvDoc second({"k"});
  second.add_row({"new"});
  second.save(path);
  EXPECT_EQ(CsvDoc::load(path).rows()[0][0], "new");
  EXPECT_FALSE(CsvDoc::file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Parallel, WorkQueueDispensesDisjointCoveringChunks) {
  WorkQueue q(10, 4);
  std::uint64_t b = 0, e = 0;
  ASSERT_TRUE(q.next(b, e));
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(e, 4u);
  ASSERT_TRUE(q.next(b, e));
  EXPECT_EQ(b, 4u);
  EXPECT_EQ(e, 8u);
  ASSERT_TRUE(q.next(b, e));
  EXPECT_EQ(b, 8u);
  EXPECT_EQ(e, 10u);  // final partial chunk clamped to n
  EXPECT_FALSE(q.next(b, e));
  EXPECT_THROW(WorkQueue(5, 0), SimError);
}

TEST(Parallel, DynamicSchedulingRunsEveryItemOnceUnderSkew) {
  // Per-item cost skewed >10x (sweep points vary this much across apps):
  // dynamic chunk stealing must still run each index exactly once.
  const std::uint64_t n = 300;
  std::vector<std::atomic<int>> hits(n);
  parallel_dynamic(n, 8, 1, [&](std::uint64_t i) {
    if (i % 37 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    hits[i].fetch_add(1);
  });
  for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, ParallelWorkersRethrowsWorkerException) {
  EXPECT_THROW(parallel_workers(4,
                                [](int w) {
                                  if (w == 2) throw SimError("worker 2 died");
                                }),
               SimError);
}

TEST(Progress, FormatDurationScalesUnits) {
  EXPECT_EQ(format_duration(5.2), "5s");
  EXPECT_EQ(format_duration(75.0), "1m15s");
  EXPECT_EQ(format_duration(3660.0), "1h01m");
  EXPECT_EQ(format_duration(-1.0), "?");
}

TEST(Progress, LineReportsRateAndEta) {
  ProgressReporter pr("sweep", 100, /*min_interval_s=*/1.0,
                      /*enabled=*/false);
  const std::string line = pr.line(50, 10.0);
  EXPECT_NE(line.find("sweep: 50/100"), std::string::npos);
  EXPECT_NE(line.find("50.0%"), std::string::npos);
  EXPECT_NE(line.find("5.00/s"), std::string::npos);
  EXPECT_NE(line.find("ETA 10s"), std::string::npos);
  // Finished: nothing remains to estimate — "-", never the old "ETA 0s".
  EXPECT_NE(pr.line(100, 20.0).find("ETA -"), std::string::npos);
  EXPECT_EQ(pr.line(100, 20.0).find("ETA 0s"), std::string::npos);
  pr.tick(100);  // disabled reporter stays silent but counts
  EXPECT_EQ(pr.done(), 100u);
}

TEST(Progress, LineReportsUnknownEtaOnZeroRate) {
  ProgressReporter pr("sweep", 100, /*min_interval_s=*/1.0,
                      /*enabled=*/false);
  // Zero elapsed time (or zero completions) means the rate is unmeasurable:
  // the ETA is unknown, not the old divide-by-zero "ETA 0s".
  EXPECT_NE(pr.line(50, 0.0).find("ETA ?"), std::string::npos);
  EXPECT_NE(pr.line(0, 10.0).find("ETA ?"), std::string::npos);
  // Overshoot (done > total, e.g. duplicate journal replay) is "done".
  EXPECT_NE(pr.line(120, 10.0).find("ETA -"), std::string::npos);
}

TEST(Progress, FinalLinePrintsExactlyOnceUnderFakeClock) {
  ProgressReporter pr("sweep", 4, /*min_interval_s=*/10.0,
                      /*enabled=*/true);
  std::vector<std::string> lines;
  pr.set_sink([&](const std::string& s) { lines.push_back(s); });

  pr.tick_at(1, 0.1);  // first tick always prints
  pr.tick_at(1, 0.2);  // inside the 10s rate-limit window: silent
  ASSERT_EQ(lines.size(), 1u);
  // The finishing tick lands inside min_interval_s too, but the 100% line
  // must print anyway — and exactly once, even when more ticks follow.
  pr.tick_at(2, 0.3);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("4/4"), std::string::npos);
  EXPECT_NE(lines[1].find("ETA -"), std::string::npos);
  pr.tick_at(1, 0.4);  // past-total tick: no duplicate final line
  pr.tick_at(0, 99.0);
  EXPECT_EQ(lines.size(), 2u);
  EXPECT_EQ(pr.done(), 5u);
}

TEST(Progress, IntermediateLinesRespectMinInterval) {
  ProgressReporter pr("sweep", 100, /*min_interval_s=*/2.0,
                      /*enabled=*/true);
  std::vector<std::string> lines;
  pr.set_sink([&](const std::string& s) { lines.push_back(s); });
  pr.tick_at(10, 0.5);  // first due line (interval measured from -inf)
  pr.tick_at(10, 1.0);  // within 2s of the last print: suppressed
  pr.tick_at(10, 2.6);  // due again
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("10/100"), std::string::npos);
  EXPECT_NE(lines[1].find("30/100"), std::string::npos);
}

TEST(FlatTable64, InsertFindGrow) {
  FlatTable64<int> t(4);  // force several grows
  for (std::uint64_t k = 0; k < 1000; ++k) t.insert(k * 11, static_cast<int>(k));
  EXPECT_EQ(t.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const int* v = t.find(k * 11);
    ASSERT_NE(v, nullptr) << "key " << k * 11;
    EXPECT_EQ(*v, static_cast<int>(k));
  }
  EXPECT_EQ(t.find(7), nullptr);
  EXPECT_FALSE(t.contains(7));
}

TEST(FlatTable64, FindOrInsertReturnsStableSlotPerCall) {
  FlatTable64<int> t;
  int& a = t.find_or_insert(42);
  a = 7;
  EXPECT_EQ(t.find_or_insert(42), 7);  // same slot, not a fresh default
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlatTable64, EraseBackwardShiftKeepsProbeChainsIntact) {
  // Colliding keys probe past each other; erasing one must not break lookup
  // of the others (the backward-shift must relocate displaced entries).
  FlatTable64<int> t(8);
  const std::uint64_t cap = t.capacity();
  std::vector<std::uint64_t> keys;
  // Keys engineered to share a home slot: same value after the Fibonacci
  // hash is infeasible to construct directly, so just use enough keys that
  // chains form at this small capacity.
  for (std::uint64_t k = 1; keys.size() < cap / 2; ++k) keys.push_back(k * 97);
  for (std::uint64_t k : keys) t.insert(k, static_cast<int>(k));
  // Erase every other key; the rest must stay findable.
  for (std::size_t i = 0; i < keys.size(); i += 2) EXPECT_TRUE(t.erase(keys[i]));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const int* v = t.find(keys[i]);
    if (i % 2 == 0) {
      EXPECT_EQ(v, nullptr);
    } else {
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(*v, static_cast<int>(keys[i]));
    }
  }
  EXPECT_FALSE(t.erase(123456789));  // absent key
}

TEST(FlatTable64, RandomChurnMatchesStdUnorderedMap) {
  FlatTable64<std::uint64_t> t;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(1234);
  for (int step = 0; step < 50000; ++step) {
    const std::uint64_t key = rng.next_below(512);  // small space → collisions
    switch (rng.next_below(3)) {
      case 0: {  // insert/overwrite
        const std::uint64_t val = rng.next_u64();
        t.find_or_insert(key) = val;
        ref[key] = val;
        break;
      }
      case 1:  // erase
        EXPECT_EQ(t.erase(key), ref.erase(key) > 0);
        break;
      default: {  // lookup
        const std::uint64_t* v = t.find(key);
        const auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr);
          EXPECT_EQ(*v, it->second);
        }
      }
    }
    ASSERT_EQ(t.size(), ref.size());
  }
  for (const auto& [k, v] : ref) {
    const std::uint64_t* got = t.find(k);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, v);
  }
}

TEST(FlatTable64, ClearEmptiesButKeepsCapacity) {
  FlatTable64<int> t;
  for (std::uint64_t k = 0; k < 100; ++k) t.insert(k, 1);
  const std::size_t cap = t.capacity();
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.capacity(), cap);
  EXPECT_EQ(t.find(5), nullptr);
  t.insert(5, 2);
  EXPECT_EQ(*t.find(5), 2);
}


// ---- Strict wire/journal field parsers (common/parse.hpp) ------------------
//
// Every rejection case here is a line the old atoi-style decoding would
// have silently turned into 0 — a *valid* chunk id / offset / attempt
// count — before the hardening pass. The matrix pins the full-consume
// contract both parsers share.

TEST(Parse, U64AcceptsOnlyWholeDecimalNumbers) {
  std::uint64_t v = 99;
  EXPECT_TRUE(parse_u64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("42", &v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(parse_u64("18446744073709551615", &v));  // UINT64_MAX
  EXPECT_EQ(v, 18446744073709551615ull);

  const char* rejected[] = {
      "",      " ",      " 1",   "1 ",    "+1",    "-1",   "- 1",
      "1.5",   "1e3",    "0x10", "12abc", "abc",   "\t7",  "7\n",
      "18446744073709551616",  // UINT64_MAX + 1
      "99999999999999999999999999",
  };
  for (const char* s : rejected) {
    v = 7;
    EXPECT_FALSE(parse_u64(s, &v)) << "accepted: [" << s << "]";
  }
}

TEST(Parse, IntAcceptsOptionalMinusAndEnforcesRange) {
  int v = 99;
  EXPECT_TRUE(parse_int("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(parse_int("-1", &v));
  EXPECT_EQ(v, -1);
  EXPECT_TRUE(parse_int("2147483647", &v));
  EXPECT_EQ(v, 2147483647);
  EXPECT_TRUE(parse_int("-2147483648", &v));
  EXPECT_EQ(v, -2147483648);

  const char* rejected[] = {
      "",   "-",   "--1",  "+1",  " 1",  "1 ",  "1.0",
      "2147483648", "-2147483649", "12x", "0x1",
  };
  for (const char* s : rejected) {
    v = 7;
    EXPECT_FALSE(parse_int(s, &v)) << "accepted: [" << s << "]";
  }
}

}  // namespace
}  // namespace musa
