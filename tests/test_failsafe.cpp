// Tests for the failure-containment subsystem: the cooperative per-point
// watchdog (common/deadline), the deterministic fault-injection harness
// (verify/faultpoint), and the sweep supervisor's quarantine / retry /
// strict / retry-failed semantics (core/dse).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <thread>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/deadline.hpp"
#include "common/journal.hpp"
#include "core/dse.hpp"
#include "core/pipeline.hpp"
#include "verify/faultpoint.hpp"

namespace musa {
namespace {

std::string tmp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Every test that installs a fault plan must disarm it on exit, pass or
/// fail — a leaked plan would poison unrelated tests in this binary.
struct FaultGuard {
  ~FaultGuard() { verify::FaultPlan::clear(); }
};

core::PipelineOptions fast_options() {
  core::PipelineOptions o;
  o.warm_instrs = 40'000;
  o.measure_instrs = 40'000;
  return o;
}

core::SweepOptions tiny_sweep() {
  core::SweepOptions o;
  o.verbose = false;
  o.apps = {"hydro", "btmz"};
  core::MachineConfig narrow;
  narrow.cores = 4;
  narrow.ranks = 4;
  core::MachineConfig wide = narrow;
  wide.vector_bits = 512;
  o.configs = {narrow, wide};
  o.retry_backoff_s = 0.001;  // keep retry tests fast
  return o;
}

std::vector<std::string> tiny_keys(const core::SweepOptions& o) {
  std::vector<std::string> keys;
  for (const auto& app : o.apps)
    for (const auto& config : o.configs)
      keys.push_back(core::DseEngine::point_key(app, config));
  return keys;
}

// ---- Watchdog (common/deadline) -------------------------------------------

TEST(Deadline, UnarmedBudgetIsANoOp) {
  deadline::Scope scope(0.0);  // budget <= 0 arms nothing
  for (int i = 0; i < 5000; ++i) deadline::poll();
  EXPECT_FALSE(deadline::expired());
  EXPECT_NO_THROW(deadline::check_now());
}

TEST(Deadline, ExpiredBudgetThrowsTimeoutFromPoll) {
  deadline::set_stage("kernel");
  try {
    deadline::Scope scope(1e-6);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    // Stride polling: the clock is read at most once per 2^10 polls, so a
    // full stride must be enough to trip the deadline.
    for (std::uint32_t i = 0; i <= deadline::kPollStride; ++i)
      deadline::poll();
    FAIL() << "expired deadline not detected";
  } catch (const SimError& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::kTimeout);
    EXPECT_EQ(e.stage(), "kernel");
    EXPECT_NE(std::string(e.what()).find("wall-clock budget"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("kernel"), std::string::npos);
  }
  deadline::set_stage("");
}

TEST(Deadline, ScopesTightenOnly) {
  deadline::Scope outer(1e-6);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  {
    // An inner scope may not extend the outer deadline.
    deadline::Scope inner(3600.0);
    EXPECT_TRUE(deadline::expired());
    EXPECT_THROW(deadline::check_now(), SimError);
  }
  EXPECT_TRUE(deadline::expired());
}

TEST(Deadline, ScopeRestoresOuterStateButKeepsStage) {
  EXPECT_FALSE(deadline::expired());
  {
    deadline::Scope scope(3600.0);
    deadline::set_stage("replay");
    EXPECT_FALSE(deadline::expired());
  }
  // Budget restored (disarmed), stage marker survives the scope.
  EXPECT_FALSE(deadline::expired());
  EXPECT_NO_THROW(deadline::check_now());
  EXPECT_STREQ(deadline::current_stage(), "replay");
  deadline::set_stage("");
}

TEST(Deadline, SetStageReturnsPrevious) {
  const char* prev = deadline::set_stage("burst");
  EXPECT_STREQ(deadline::current_stage(), "burst");
  deadline::set_stage(prev);
}

// ---- Fault harness (verify/faultpoint) ------------------------------------

TEST(FaultPoint, DecisionIsPureAndSeedSensitive) {
  verify::FaultSpec spec;
  spec.site = "pipeline.kernel";
  spec.seed = 42;
  spec.prob = 0.5;
  const std::string key = "hydro|some-config";

  const bool first = verify::fault_decision(spec, "pipeline.kernel", key);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(verify::fault_decision(spec, "pipeline.kernel", key), first);

  // Some seed must flip the decision, and prob bounds must be exact.
  bool flipped = false;
  for (std::uint64_t s = 0; s < 64 && !flipped; ++s) {
    spec.seed = s;
    flipped = verify::fault_decision(spec, "pipeline.kernel", key) != first;
  }
  EXPECT_TRUE(flipped) << "decision ignores the seed";
  spec.prob = 1.0;
  EXPECT_TRUE(verify::fault_decision(spec, "pipeline.kernel", key));
  spec.prob = 0.0;
  EXPECT_FALSE(verify::fault_decision(spec, "pipeline.kernel", key));
}

TEST(FaultPoint, ParseAcceptsSpecListsAndRejectsMalformed) {
  const auto plan =
      verify::FaultPlan::parse("pipeline.*:io:7:0.25:3,journal.append:delay:1:1:20");
  ASSERT_EQ(plan.specs().size(), 2u);
  EXPECT_EQ(plan.specs()[0].kind, verify::FaultKind::kIo);
  EXPECT_EQ(plan.specs()[0].param, 3);
  EXPECT_DOUBLE_EQ(plan.specs()[0].prob, 0.25);
  EXPECT_EQ(plan.specs()[1].kind, verify::FaultKind::kDelay);

  for (const char* bad :
       {"siteonly", "a:b", "a:nokind:0:1", "a:io:0:2.0", "a:io:0:-0.1",
        "a:io:zzz:1", "a:io:0:1:-2", ":io:0:1", "a:io:0:1:1:extra"})
    EXPECT_THROW(verify::FaultPlan::parse(bad), SimError) << bad;
  try {
    verify::FaultPlan::parse("a:nokind:0:1");
  } catch (const SimError& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::kConfig);
  }
}

TEST(FaultPoint, PrefixGlobMatchesSiteFamilies) {
  verify::FaultSpec spec;
  spec.site = "pipeline.*";
  EXPECT_TRUE(spec.matches("pipeline.kernel"));
  EXPECT_TRUE(spec.matches("pipeline.burst"));
  EXPECT_FALSE(spec.matches("dram.sim"));
  spec.site = "dram.sim";
  EXPECT_TRUE(spec.matches("dram.sim"));
  EXPECT_FALSE(spec.matches("dram.sim2"));
}

TEST(FaultPoint, ThrowingFaultClearsAfterMaxFires) {
  FaultGuard guard;
  verify::FaultPlan::install(verify::FaultPlan::parse("site.x:io:3:1:2"));
  const std::string key = "k";
  for (int i = 0; i < 2; ++i) {
    try {
      verify::fault_point("site.x", key);
      FAIL() << "fault did not fire (attempt " << i + 1 << ")";
    } catch (const SimError& e) {
      EXPECT_EQ(e.error_class(), ErrorClass::kIo);
    }
  }
  // Fire budget exhausted: the "transient" fault has cleared.
  EXPECT_NO_THROW(verify::fault_point("site.x", key));
  // Budgets are per key: a different key still faults.
  EXPECT_THROW(verify::fault_point("site.x", "other"), SimError);
}

TEST(FaultPoint, CorruptFiresOncePerKeyByDefault) {
  FaultGuard guard;
  verify::FaultPlan::install(verify::FaultPlan::parse("journal.append:corrupt:9:1"));
  EXPECT_TRUE(verify::fault_corrupt("journal.append", "a"));
  EXPECT_FALSE(verify::fault_corrupt("journal.append", "a"));  // converges
  EXPECT_TRUE(verify::fault_corrupt("journal.append", "b"));
  // Corrupt specs never throw from fault_point (they only flag the writer).
  EXPECT_NO_THROW(verify::fault_point("journal.append", "c"));
}

// ---- Sweep supervisor integration (core/dse) ------------------------------

TEST(FailsafeSweep, QuarantinesExactlyThePredictedPoints) {
  FaultGuard guard;
  const core::SweepOptions opts = tiny_sweep();
  const std::vector<std::string> keys = tiny_keys(opts);

  // Pick a seed whose p=0.5 decision hits a strict, non-empty subset of
  // the four points — fault_decision is pure, so the test can predict the
  // chaos outcome exactly.
  verify::FaultSpec spec;
  spec.site = "pipeline.kernel";
  spec.kind = verify::FaultKind::kModel;
  spec.prob = 0.5;
  std::set<std::string> predicted;
  for (std::uint64_t seed = 0; seed < 256 && predicted.empty(); ++seed) {
    spec.seed = seed;
    std::set<std::string> hit;
    for (const auto& key : keys)
      if (verify::fault_decision(spec, "pipeline.kernel", key)) hit.insert(key);
    if (!hit.empty() && hit.size() < keys.size()) predicted = hit;
  }
  ASSERT_FALSE(predicted.empty());

  // Reference cache: same sweep, no faults.
  const std::string ref_cache = tmp_path("musa_failsafe_ref.csv");
  {
    core::Pipeline p(fast_options());
    core::DseEngine ref(p, ref_cache, opts);
    ref.clear_cache();
    EXPECT_TRUE(ref.sweep().finalized);
  }

  const std::string cache = tmp_path("musa_failsafe_chaos.csv");
  core::Pipeline p(fast_options());
  {
    core::DseEngine dse(p, cache, opts);
    dse.clear_cache();
    verify::FaultPlan::install(
        verify::FaultPlan::parse("pipeline.kernel:model:" +
                                 std::to_string(spec.seed) + ":0.5"));
    const core::SweepReport rep = dse.sweep();

    EXPECT_FALSE(rep.finalized);  // quarantines block cache finalization
    EXPECT_EQ(rep.quarantined, predicted.size());
    EXPECT_EQ(rep.computed, keys.size() - predicted.size());
    EXPECT_EQ(rep.retries, 0u);  // model faults are never retried
    std::set<std::string> quarantined;
    for (const auto& q : rep.quarantine) {
      quarantined.insert(q.key);
      EXPECT_EQ(q.error_class, "model");
      EXPECT_EQ(q.stage, "pipeline.kernel");
      EXPECT_EQ(q.attempts, 1);
      EXPECT_NE(q.message.find("injected fault"), std::string::npos);
    }
    EXPECT_EQ(quarantined, predicted);
    // Results are unavailable while points are quarantined, and the error
    // says how to recover.
    try {
      dse.results();
      FAIL() << "results() served a quarantined sweep";
    } catch (const SimError& e) {
      EXPECT_NE(std::string(e.what()).find("retry-failed"), std::string::npos);
    }
  }

  // Without --retry-failed, quarantined points stay skipped run after run.
  {
    core::DseEngine again(p, cache, opts);
    const core::SweepReport rep = again.sweep();
    EXPECT_FALSE(rep.finalized);
    EXPECT_EQ(rep.computed, 0u);
    EXPECT_EQ(rep.quarantined, predicted.size());
  }

  // Clear the faults and retry the quarantined points: the sweep converges
  // to a finalized cache byte-identical to the fault-free reference.
  verify::FaultPlan::clear();
  {
    core::SweepOptions retry = opts;
    retry.retry_failed = true;
    core::DseEngine fixed(p, cache, retry);
    const core::SweepReport rep = fixed.sweep();
    EXPECT_TRUE(rep.finalized);
    EXPECT_EQ(rep.quarantined, 0u);
    EXPECT_EQ(rep.computed, predicted.size());
    EXPECT_EQ(rep.resumed, keys.size() - predicted.size());
  }
  EXPECT_EQ(read_file(cache), read_file(ref_cache));
  EXPECT_TRUE(find_journals(cache).empty());

  std::remove(cache.c_str());
  std::remove(ref_cache.c_str());
}

TEST(FailsafeSweep, TransientIoFaultsRetryInPlaceAndSucceed) {
  FaultGuard guard;
  const std::string cache = tmp_path("musa_failsafe_io.csv");
  core::SweepOptions opts = tiny_sweep();
  ASSERT_EQ(opts.max_io_attempts, 3);

  // Every point's journal append throws io twice (param=2 fires per key),
  // then the fault clears — inside the 3-attempt budget, so the whole
  // sweep must succeed without a single quarantine.
  verify::FaultPlan::install(
      verify::FaultPlan::parse("journal.append:io:1:1:2"));
  core::Pipeline p(fast_options());
  core::DseEngine dse(p, cache, opts);
  dse.clear_cache();
  const core::SweepReport rep = dse.sweep();

  EXPECT_TRUE(rep.finalized);
  EXPECT_EQ(rep.quarantined, 0u);
  EXPECT_EQ(rep.computed, 4u);
  EXPECT_EQ(rep.retries, 8u);  // 2 io retries for each of the 4 points
  std::remove(cache.c_str());
}

TEST(FailsafeSweep, IoFaultBeyondRetryBudgetQuarantinesWithAttemptCount) {
  FaultGuard guard;
  const std::string cache = tmp_path("musa_failsafe_io_exhaust.csv");
  const core::SweepOptions opts = tiny_sweep();

  // Unlimited fires (param 0): io keeps failing past the retry budget.
  verify::FaultPlan::install(verify::FaultPlan::parse("journal.append:io:1:1"));
  core::Pipeline p(fast_options());
  core::DseEngine dse(p, cache, opts);
  dse.clear_cache();
  const core::SweepReport rep = dse.sweep();

  EXPECT_EQ(rep.quarantined, 4u);
  EXPECT_EQ(rep.computed, 0u);
  for (const auto& q : rep.quarantine) {
    EXPECT_EQ(q.error_class, "io");
    EXPECT_EQ(q.attempts, opts.max_io_attempts);  // retried, then contained
  }
  std::remove(cache.c_str());
  for (const auto& j : find_journals(cache)) std::remove(j.c_str());
}

TEST(FailsafeSweep, StrictModeRethrowsTheFirstFailure) {
  FaultGuard guard;
  const std::string cache = tmp_path("musa_failsafe_strict.csv");
  core::SweepOptions opts = tiny_sweep();
  opts.fail_fast = true;

  verify::FaultPlan::install(
      verify::FaultPlan::parse("pipeline.kernel:injected:1:1"));
  core::Pipeline p(fast_options());
  core::DseEngine dse(p, cache, opts);
  dse.clear_cache();
  try {
    dse.sweep();
    FAIL() << "--strict sweep swallowed the failure";
  } catch (const SimError& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::kInjected);
  }
  std::remove(cache.c_str());
  for (const auto& j : find_journals(cache)) std::remove(j.c_str());
}

TEST(FailsafeSweep, InMemorySweepIsAlwaysFailFast) {
  FaultGuard guard;
  verify::FaultPlan::install(
      verify::FaultPlan::parse("pipeline.kernel:model:1:1"));
  core::Pipeline p(fast_options());
  // No cache path -> no journal -> nowhere to quarantine: must throw even
  // though fail_fast is off.
  core::DseEngine dse(p, "", tiny_sweep());
  EXPECT_THROW(dse.recompute(), SimError);
}

TEST(FailsafeSweep, DelayedPointQuarantinesAsTimeout) {
  FaultGuard guard;
  const std::string cache = tmp_path("musa_failsafe_timeout.csv");
  core::SweepOptions opts = tiny_sweep();
  opts.point_timeout_s = 0.02;

  // Every point sleeps 80ms at the kernel boundary — four times its
  // budget — and must be contained as a `timeout`, not retried.
  verify::FaultPlan::install(
      verify::FaultPlan::parse("pipeline.kernel:delay:1:1:80"));
  core::Pipeline p(fast_options());
  {
    core::DseEngine dse(p, cache, opts);
    dse.clear_cache();
    const core::SweepReport rep = dse.sweep();
    EXPECT_EQ(rep.quarantined, 4u);
    EXPECT_EQ(rep.retries, 0u);
    for (const auto& q : rep.quarantine) {
      EXPECT_EQ(q.error_class, "timeout");
      EXPECT_EQ(q.attempts, 1);
      EXPECT_NE(q.message.find("wall-clock budget"), std::string::npos);
    }
  }

  // Remove the delay and loosen the budget (healthy points need real wall
  // clock): retry-failed completes the sweep under a still-armed watchdog.
  verify::FaultPlan::clear();
  core::SweepOptions retry = opts;
  retry.point_timeout_s = 3600.0;
  retry.retry_failed = true;
  core::DseEngine fixed(p, cache, retry);
  const core::SweepReport rep = fixed.sweep();
  EXPECT_TRUE(rep.finalized);
  EXPECT_EQ(rep.quarantined, 0u);
  EXPECT_EQ(rep.computed, 4u);
  std::remove(cache.c_str());
}

TEST(FailsafeSweep, CorruptedJournalAppendsRecomputeOnResume) {
  FaultGuard guard;
  const std::string cache = tmp_path("musa_failsafe_corrupt.csv");
  const core::SweepOptions opts = tiny_sweep();
  const std::vector<std::string> keys = tiny_keys(opts);

  // Pick a seed whose corrupt fault hits a strict, non-empty subset of the
  // points' journal appends.
  verify::FaultSpec spec;
  spec.site = "journal.append";
  spec.kind = verify::FaultKind::kCorrupt;
  spec.prob = 0.4;
  std::set<std::string> predicted;
  for (std::uint64_t seed = 0; seed < 256 && predicted.empty(); ++seed) {
    spec.seed = seed;
    std::set<std::string> hit;
    for (const auto& key : keys)
      if (verify::fault_decision(spec, "journal.append", key)) hit.insert(key);
    if (!hit.empty() && hit.size() < keys.size()) predicted = hit;
  }
  ASSERT_FALSE(predicted.empty());

  // Corrupt those points' journal records in flight (checksum-detectable,
  // default single fire per key). The write happens, the in-memory map does
  // not remember it — exactly a crash just before the record landed.
  core::Pipeline p(fast_options());
  {
    core::DseEngine dse(p, cache, opts);
    dse.clear_cache();
    verify::FaultPlan::install(verify::FaultPlan::parse(
        "journal.append:corrupt:" + std::to_string(spec.seed) + ":0.4"));
    const core::SweepReport rep = dse.sweep();
    // The sweep itself sees no failure; only the journal bytes were hit,
    // so the cache cannot finalize (the corrupt points are not covered).
    EXPECT_EQ(rep.quarantined, 0u);
    EXPECT_EQ(rep.computed, 4u);
    EXPECT_FALSE(rep.finalized);
  }
  verify::FaultPlan::clear();

  // Resume: the corrupt records are dropped (counted) and exactly those
  // points recompute; the cache finalizes with all four points present.
  core::DseEngine again(p, cache, opts);
  const core::SweepReport rep = again.sweep();
  EXPECT_TRUE(rep.finalized);
  EXPECT_EQ(rep.dropped, predicted.size());
  EXPECT_EQ(rep.computed, predicted.size());
  EXPECT_EQ(rep.quarantined, 0u);
  EXPECT_EQ(CsvDoc::load(cache).rows().size(), 4u);
  std::remove(cache.c_str());
}

}  // namespace
}  // namespace musa
