// Unit tests for the OoO core timing model.
#include <gtest/gtest.h>

#include <vector>

#include "cachesim/hierarchy.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "cpusim/core_config.hpp"
#include "cpusim/core_model.hpp"
#include "dramsim/dram.hpp"
#include "isa/latencies.hpp"
#include "trace/instr_source.hpp"
#include "trace/kernel.hpp"

namespace musa::cpusim {
namespace {

struct TestRig {
  cachesim::MemHierarchy hierarchy{cachesim::cache_32m_256k(1)};
  dramsim::DramSystem dram{dramsim::ddr4_2333(), 4};
};

isa::Instr alu(std::uint8_t dst, std::uint8_t src1 = isa::kNoReg,
               std::uint8_t src2 = isa::kNoReg) {
  isa::Instr in;
  in.op = isa::OpClass::kIntAlu;
  in.dst = dst;
  in.src1 = src1;
  in.src2 = src2;
  return in;
}

CoreStats run_instrs(std::vector<isa::Instr> instrs, const CoreConfig& cfg,
                     TestRig& rig, CoreRunOptions opts = {}) {
  trace::VectorSource src(std::move(instrs));
  CoreModel core(cfg, {2.0}, rig.hierarchy, rig.dram);
  return core.run(src, opts);
}

TEST(CoreModel, IndependentOpsReachIssueWidth) {
  std::vector<isa::Instr> instrs;
  for (int i = 0; i < 4000; ++i)
    instrs.push_back(alu(static_cast<std::uint8_t>(i % 8)));
  CoreConfig cfg = core_medium();
  TestRig rig;
  const CoreStats s = run_instrs(instrs, cfg, rig);
  // Independent 1-cycle ALU ops: bound by min(issue width, #ALUs) = 3.
  EXPECT_NEAR(s.ipc(), 3.0, 0.2);
}

TEST(CoreModel, SerialChainBoundByLatency) {
  std::vector<isa::Instr> instrs;
  for (int i = 0; i < 1000; ++i) instrs.push_back(alu(1, 1));  // dep chain
  TestRig rig;
  const CoreStats s = run_instrs(instrs, core_aggressive(), rig);
  EXPECT_NEAR(s.cycles, 1000.0, 50.0);  // 1 cycle per chained op
}

TEST(CoreModel, FpChainBoundByFpLatency) {
  std::vector<isa::Instr> instrs;
  for (int i = 0; i < 500; ++i) {
    isa::Instr in;
    in.op = isa::OpClass::kFpMul;
    in.dst = 40;
    in.src1 = 40;
    instrs.push_back(in);
  }
  TestRig rig;
  const CoreStats s = run_instrs(instrs, core_aggressive(), rig);
  EXPECT_NEAR(s.cycles, 500.0 * isa::exec_latency(isa::OpClass::kFpMul),
              100.0);
}

TEST(CoreModel, FuContentionSerializes) {
  std::vector<isa::Instr> instrs;
  for (int i = 0; i < 2000; ++i)
    instrs.push_back(alu(static_cast<std::uint8_t>(i % 8)));
  TestRig rig1, rig3;
  CoreConfig one_alu = core_medium();
  one_alu.alus = 1;
  const CoreStats s1 = run_instrs(instrs, one_alu, rig1);
  const CoreStats s3 = run_instrs(instrs, core_medium(), rig3);
  EXPECT_GT(s1.cycles, 2.5 * s3.cycles / 3.0 * 2.0);  // ~3x slower
}

TEST(CoreModel, RobLimitsMemoryLevelParallelism) {
  // Independent loads with distinct uncached lines: a big ROB overlaps
  // misses, a small one cannot.
  auto make_loads = [] {
    std::vector<isa::Instr> instrs;
    Rng rng(21);  // random addresses: spread banks/channels, no prefetch
    for (int i = 0; i < 2000; ++i) {
      isa::Instr in;
      in.op = isa::OpClass::kLoad;
      in.dst = static_cast<std::uint8_t>(isa::kFpRegBase + (i % 12));
      in.addr = rng.next_below(1ull << 34) & ~63ull;
      in.size = 8;
      instrs.push_back(in);
      // Pad with independent ALU work so DRAM is latency- (not bandwidth-)
      // bound: the ROB window then sets how many misses overlap.
      for (int k = 0; k < 7; ++k)
        instrs.push_back(alu(static_cast<std::uint8_t>(k % 8)));
    }
    return instrs;
  };
  TestRig rig_small, rig_big;
  const CoreStats small = run_instrs(make_loads(), core_low_end(), rig_small);
  const CoreStats big = run_instrs(make_loads(), core_aggressive(), rig_big);
  EXPECT_GT(small.cycles, 1.2 * big.cycles);
}

TEST(CoreModel, PerfectMemoryIsFaster) {
  trace::KernelProfile p;
  p.vec_body = {.loads = 1, .fp_add = 1, .fp_mul = 1, .stores = 1};
  p.vec_trip = 8;
  p.scalar_tail = {.int_alu = 4, .loads = 6, .stores = 2, .branches = 1};
  p.streams = {{.share = 1.0, .ws_bytes = 64 * 1024 * 1024, .stride = 0}};
  TestRig rig_real, rig_perfect;
  trace::KernelSource s1(p, 20000), s2(p, 20000);
  CoreModel c1(core_medium(), {2.0}, rig_real.hierarchy, rig_real.dram);
  CoreModel c2(core_medium(), {2.0}, rig_perfect.hierarchy, rig_perfect.dram);
  const CoreStats real = c1.run(s1, {.vector_bits = 128});
  const CoreStats perfect =
      c2.run(s2, {.vector_bits = 128, .perfect_memory = true});
  EXPECT_LT(perfect.cycles, real.cycles);
  EXPECT_EQ(perfect.scalar_instrs, real.scalar_instrs);
}

TEST(CoreModel, PrefetcherHidesStridedMissLatency) {
  // Same miss count: a sequential stream (prefetchable) must run faster
  // than a scattered one (not prefetchable).
  auto make = [](bool sequential) {
    std::vector<isa::Instr> instrs;
    for (int i = 0; i < 4000; ++i) {
      isa::Instr in;
      in.op = isa::OpClass::kLoad;
      in.dst = static_cast<std::uint8_t>(isa::kFpRegBase + (i % 12));
      in.addr = sequential
                    ? static_cast<std::uint64_t>(i) * 64
                    : (static_cast<std::uint64_t>(i) * 7919 * 4096) %
                          (1ull << 34);
      in.size = 8;
      instrs.push_back(in);
    }
    return instrs;
  };
  TestRig rig_seq, rig_rand;
  const CoreStats seq = run_instrs(make(true), core_medium(), rig_seq);
  const CoreStats rnd = run_instrs(make(false), core_medium(), rig_rand);
  EXPECT_LT(seq.cycles, rnd.cycles);
}

TEST(CoreModel, PrefetcherEvictsOldestInsteadOfClearing) {
  // Touch thousands of distinct 32 KiB regions with short sequential runs:
  // each run trains the stride detector and leaves prefetched lines that
  // are never consumed, so the inflight table overflows its 8192-entry
  // capacity. The prefetcher must shed the *oldest* entries (counted in
  // pf_evictions), not wipe the table.
  std::vector<isa::Instr> instrs;
  for (int r = 0; r < 4000; ++r) {
    const std::uint64_t base = static_cast<std::uint64_t>(r) * (2ull << 20);
    for (int i = 0; i < 4; ++i) {
      isa::Instr in;
      in.op = isa::OpClass::kLoad;
      in.dst = static_cast<std::uint8_t>(isa::kFpRegBase + (i % 12));
      in.addr = base + static_cast<std::uint64_t>(i) * 64;
      in.size = 8;
      instrs.push_back(in);
    }
  }
  TestRig rig;
  const CoreStats s = run_instrs(instrs, core_medium(), rig);
  EXPECT_GT(s.pf_evictions, 0u);
  EXPECT_EQ(s.scalar_instrs, 16000u);
}

TEST(CoreModel, VectorFusionSpeedsUpMarkedLoops) {
  trace::KernelProfile p;
  p.vec_body = {.loads = 2, .fp_add = 2, .fp_mul = 2, .stores = 1};
  p.vec_trip = 32;
  p.scalar_tail = {.int_alu = 2, .branches = 1};
  p.vec_ws_bytes = 8 * 1024;
  p.ilp_chains = 8;
  auto cycles_at = [&](int bits) {
    TestRig rig;
    trace::KernelSource src(p, 30000);
    CoreModel core(core_aggressive(), {2.0}, rig.hierarchy, rig.dram);
    return core.run(src, {.vector_bits = bits}).cycles;
  };
  const double c128 = cycles_at(128);
  const double c512 = cycles_at(512);
  EXPECT_GT(c128 / c512, 1.5);  // wide SIMD pays off on long loops
}

TEST(CoreModel, MaxScalarInstrsStopsEarly) {
  std::vector<isa::Instr> instrs(5000, alu(1));
  TestRig rig;
  const CoreStats s =
      run_instrs(instrs, core_medium(), rig, {.max_scalar_instrs = 1000});
  EXPECT_GE(s.scalar_instrs, 1000u);
  EXPECT_LT(s.scalar_instrs, 1100u);
}

TEST(CoreModel, ClassCountsAreConsistent) {
  trace::KernelProfile p;
  p.vec_body = {.loads = 1, .fp_add = 1, .fp_mul = 0, .stores = 0};
  p.vec_trip = 4;
  p.scalar_tail = {.int_alu = 3, .loads = 2, .stores = 1, .branches = 1};
  TestRig rig;
  trace::KernelSource src(p, 11000);
  CoreModel core(core_medium(), {2.0}, rig.hierarchy, rig.dram);
  const CoreStats s = core.run(src, {.vector_bits = 128});
  std::uint64_t lanes = 0, ops = 0;
  for (int c = 0; c < isa::kNumOpClasses; ++c) {
    lanes += s.class_lanes[c];
    ops += s.class_ops[c];
  }
  EXPECT_EQ(lanes, s.scalar_instrs);
  EXPECT_EQ(ops, s.fused_ops);
  EXPECT_LE(s.fused_ops, s.scalar_instrs);
}

TEST(CoreModel, StatsExposeDramTraffic) {
  trace::KernelProfile p;
  p.scalar_tail = {.int_alu = 1, .loads = 4};
  p.streams = {{.share = 1.0, .ws_bytes = 256 * 1024 * 1024, .stride = 64}};
  TestRig rig;
  trace::KernelSource src(p, 20000);
  CoreModel core(core_medium(), {2.0}, rig.hierarchy, rig.dram);
  const CoreStats s = core.run(src, {.vector_bits = 128});
  EXPECT_GT(s.dram_reads, 0u);
  EXPECT_GT(s.dram_bytes(), 0.0);
  EXPECT_GT(s.dram_gbps({2.0}), 0.0);
  EXPECT_GT(s.mpki_l3(), 0.0);
}

TEST(CoreModel, RejectsBrokenConfigs) {
  TestRig rig;
  CoreConfig bad = core_medium();
  bad.rob = 0;
  EXPECT_THROW(CoreModel(bad, {2.0}, rig.hierarchy, rig.dram), SimError);
  bad = core_medium();
  bad.lsus = 0;
  EXPECT_THROW(CoreModel(bad, {2.0}, rig.hierarchy, rig.dram), SimError);
}

TEST(CoreConfig, PresetsMatchTableI) {
  EXPECT_EQ(core_low_end().rob, 40);
  EXPECT_EQ(core_low_end().issue_width, 2);
  EXPECT_EQ(core_medium().rob, 180);
  EXPECT_EQ(core_high().issue_width, 6);
  EXPECT_EQ(core_aggressive().rob, 300);
  EXPECT_EQ(core_aggressive().fpus, 4);
  EXPECT_EQ(core_presets().size(), 4u);
}

TEST(CoreConfig, OooCapabilityOrdersPresets) {
  EXPECT_LT(core_low_end().ooo_capability(), core_medium().ooo_capability());
  EXPECT_LT(core_medium().ooo_capability(), core_high().ooo_capability());
  EXPECT_LT(core_high().ooo_capability(), core_aggressive().ooo_capability());
}

// Property: every preset is strictly slower than or equal to a preset with
// strictly more resources, on the same trace.
class PresetOrdering : public ::testing::TestWithParam<int> {};

TEST_P(PresetOrdering, LowEndNeverBeatsAggressive) {
  trace::KernelProfile p;
  p.vec_body = {.loads = 2, .fp_add = 2, .fp_mul = 2, .stores = 1};
  p.vec_trip = 16;
  p.scalar_tail = {.int_alu = 8, .loads = 6, .stores = 3, .branches = 2};
  p.ilp_chains = GetParam();
  TestRig rig_low, rig_agg;
  trace::KernelSource s1(p, 15000), s2(p, 15000);
  CoreModel low(core_low_end(), {2.0}, rig_low.hierarchy, rig_low.dram);
  CoreModel agg(core_aggressive(), {2.0}, rig_agg.hierarchy, rig_agg.dram);
  EXPECT_GE(low.run(s1, {.vector_bits = 128}).cycles,
            agg.run(s2, {.vector_bits = 128}).cycles);
}

INSTANTIATE_TEST_SUITE_P(IlpLevels, PresetOrdering,
                         ::testing::Values(1, 2, 4, 8));

// ---- Stream-prefetcher unit tests (detector and FIFO edge cases) ---------

TEST(StreamPrefetcher, SameLineRepeatMissKeepsConfidence) {
  StreamPrefetcher pf;
  EXPECT_FALSE(pf.observe_miss(100));
  EXPECT_FALSE(pf.observe_miss(101));
  EXPECT_TRUE(pf.observe_miss(102));  // ascending run: stream established
  // The same line missing again (evicted and re-fetched between demands)
  // says nothing about the stream's direction — it used to zero the
  // confidence and tear down an established stream.
  EXPECT_TRUE(pf.observe_miss(102));
  EXPECT_TRUE(pf.observe_miss(103));  // the stream keeps going
}

TEST(StreamPrefetcher, FreshRegionNeedsARealAscendingRun) {
  StreamPrefetcher pf;
  // First-ever misses on lines 1 and 2 of a region: a zero-initialised
  // last_line scored line 1 as continuing a phantom stream from line 0,
  // reaching confidence one miss early. With the kNoLine sentinel a fresh
  // region needs a full three-miss ascending run like any other.
  EXPECT_FALSE(pf.observe_miss(1));
  EXPECT_FALSE(pf.observe_miss(2));
  EXPECT_TRUE(pf.observe_miss(3));
}

TEST(StreamPrefetcher, FifoCompactionBoundsMemoryUnderChurn) {
  // Admit-then-consume churn: every fifo entry goes dead immediately and
  // the inflight table never overflows, so the old head-past-capacity
  // predicate never fired and the dead prefix grew without bound. The
  // dead-fraction predicate must hold the bound at every step.
  StreamPrefetcher pf;
  for (std::uint64_t i = 0; i < 200'000; ++i) {
    pf.admit(i, 0.0);
    ASSERT_LE(pf.fifo.size(),
              2 * (pf.inflight.size() + StreamPrefetcher::kCompactSlack));
    pf.inflight.erase(i);  // demand access consumes the line right away
  }
  EXPECT_EQ(pf.inflight.size(), 0u);
}

TEST(StreamPrefetcher, CompactionPreservesLiveEntriesInOrder) {
  StreamPrefetcher pf;
  // A handful of long-lived lines, then heavy short-lived churn that
  // triggers compaction many times over.
  for (std::uint64_t i = 0; i < 8; ++i) pf.admit(1'000'000 + i, 1.0);
  for (std::uint64_t i = 0; i < 50'000; ++i) {
    pf.admit(i, 0.0);
    ASSERT_LE(pf.fifo.size(),
              2 * (pf.inflight.size() + StreamPrefetcher::kCompactSlack));
    pf.inflight.erase(i);
  }
  // The live lines survived every compaction, still in admission order.
  std::vector<std::uint64_t> live;
  for (std::size_t i = pf.fifo_head; i < pf.fifo.size(); ++i) {
    const auto* e = pf.inflight.find(pf.fifo[i].first);
    if (e != nullptr && e->seq == pf.fifo[i].second)
      live.push_back(pf.fifo[i].first);
  }
  ASSERT_EQ(live.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(live[i], 1'000'000 + i);
}

// ---- Block-vs-scalar replay equivalence ----------------------------------

void expect_identical_stats(const CoreStats& a, const CoreStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);  // bit-identical, not approximately equal
  EXPECT_EQ(a.fused_ops, b.fused_ops);
  EXPECT_EQ(a.scalar_instrs, b.scalar_instrs);
  for (int c = 0; c < isa::kNumOpClasses; ++c) {
    EXPECT_EQ(a.class_ops[c], b.class_ops[c]);
    EXPECT_EQ(a.class_lanes[c], b.class_lanes[c]);
  }
  EXPECT_EQ(a.l1_accesses, b.l1_accesses);
  EXPECT_EQ(a.l1_misses, b.l1_misses);
  EXPECT_EQ(a.l2_accesses, b.l2_accesses);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.l3_accesses, b.l3_accesses);
  EXPECT_EQ(a.l3_misses, b.l3_misses);
  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_EQ(a.dram_writes, b.dram_writes);
  EXPECT_EQ(a.pf_evictions, b.pf_evictions);
  EXPECT_EQ(a.dram.acts, b.dram.acts);
  EXPECT_EQ(a.dram.pres, b.dram.pres);
  EXPECT_EQ(a.dram.reads, b.dram.reads);
  EXPECT_EQ(a.dram.writes, b.dram.writes);
  EXPECT_EQ(a.dram.refreshes, b.dram.refreshes);
}

TEST(CoreModel, BlockAndSingleStepPathsAreBitIdentical) {
  // Property: for random (core config, kernel profile, seed) triples the
  // batched block path must produce bit-identical CoreStats to the
  // retained single-step reference path — the 24-point bench must not be
  // the only equivalence oracle.
  Rng rng(0xb10c);
  const std::vector<CoreConfig> presets = core_presets();
  for (int trial = 0; trial < 50; ++trial) {
    trace::KernelProfile p;
    p.vec_body = {.loads = static_cast<int>(rng.next_below(3)),
                  .fp_add = static_cast<int>(rng.next_below(3)),
                  .fp_mul = static_cast<int>(rng.next_below(3)),
                  .stores = static_cast<int>(rng.next_below(2))};
    p.vec_trip = static_cast<int>(rng.next_below(40));
    p.scalar_tail = {
        .int_alu = 1 + static_cast<int>(rng.next_below(6)),
        .fp_add = static_cast<int>(rng.next_below(4)),
        .fp_div = static_cast<int>(rng.next_below(2)),
        .loads = static_cast<int>(rng.next_below(6)),
        .stores = static_cast<int>(rng.next_below(3)),
        .branches = 1};
    p.ilp_chains = 1 + static_cast<int>(rng.next_below(8));
    p.load_use_prob = rng.next_double();
    const std::int64_t strides[] = {0, 8, 64, 4096};
    p.streams = {{.share = 1.0,
                  .ws_bytes = 64 * 1024ull << rng.next_below(7),
                  .stride = strides[rng.next_below(4)],
                  .dependent = rng.bernoulli(0.3)}};
    const int bits = 64 << rng.next_below(4);  // 64 .. 512
    const std::uint64_t seed = rng.next_u64();
    const CoreConfig& cfg = presets[rng.next_below(presets.size())];

    auto run_path = [&](bool single_step) {
      TestRig rig;
      trace::KernelSource src(p, 6000, seed);
      CoreModel core(cfg, {2.0}, rig.hierarchy, rig.dram);
      return core.run(src,
                      {.vector_bits = bits, .single_step = single_step});
    };
    const CoreStats blocked = run_path(false);
    const CoreStats reference = run_path(true);
    expect_identical_stats(blocked, reference);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "diverged at trial " << trial << " (vector_bits="
                    << bits << ", seed=" << seed << ")";
      break;
    }
  }
}

TEST(CoreModel, PfEvictionsUnchangedAcrossReplayPaths) {
  // The eviction-heavy workload of PrefetcherEvictsOldestInsteadOfClearing:
  // the stream-detector fixes and the batched path must not shift the
  // pf_evictions accounting between the two replay paths.
  std::vector<isa::Instr> instrs;
  for (int r = 0; r < 4000; ++r) {
    const std::uint64_t base = static_cast<std::uint64_t>(r) * (2ull << 20);
    for (int i = 0; i < 4; ++i) {
      isa::Instr in;
      in.op = isa::OpClass::kLoad;
      in.dst = static_cast<std::uint8_t>(isa::kFpRegBase + (i % 12));
      in.addr = base + static_cast<std::uint64_t>(i) * 64;
      in.size = 8;
      instrs.push_back(in);
    }
  }
  TestRig rig_blocked, rig_reference;
  const CoreStats blocked =
      run_instrs(instrs, core_medium(), rig_blocked, {});
  const CoreStats reference =
      run_instrs(instrs, core_medium(), rig_reference, {.single_step = true});
  EXPECT_GT(blocked.pf_evictions, 0u);
  EXPECT_EQ(blocked.pf_evictions, reference.pf_evictions);
}

}  // namespace
}  // namespace musa::cpusim
