// Tests for the elastic sweep subsystem (src/sweep, DESIGN.md §7h): the
// LeaseTable state machine under a fake clock, the incremental
// JournalTailer, and the ElasticController's convergence contract — any
// mix of worker deaths and partial journals must still end with a cache
// byte-identical to a fault-free in-process sweep.
//
// The LeaseTable takes every time-dependent decision through an explicit
// `now` parameter, so lease expiry, straggler detection, and median
// feeding are tested without a single sleep. The controller tests fork
// real workers over the tiny 4-point space — small enough to stay fast,
// real enough to cover fork/socketpair/journal plumbing end to end.
#include <gtest/gtest.h>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <cstdio>
#include <memory>
#include <fstream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/journal.hpp"
#include "core/dse.hpp"
#include "core/pipeline.hpp"
#include "core/point_runner.hpp"
#include "sweep/controller.hpp"
#include "sweep/protocol.hpp"
#include "sweep/lease.hpp"
#include "sweep/worker.hpp"
#include "verify/faultpoint.hpp"

namespace musa {
namespace {

std::string tmp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

struct FaultGuard {
  ~FaultGuard() { verify::FaultPlan::clear(); }
};

core::PipelineOptions fast_options() {
  core::PipelineOptions o;
  o.warm_instrs = 40'000;
  o.measure_instrs = 40'000;
  return o;
}

core::SweepOptions tiny_sweep() {
  core::SweepOptions o;
  o.verbose = false;
  o.apps = {"hydro", "btmz"};
  core::MachineConfig narrow;
  narrow.cores = 4;
  narrow.ranks = 4;
  core::MachineConfig wide = narrow;
  wide.vector_bits = 512;
  o.configs = {narrow, wide};
  o.retry_backoff_s = 0.001;
  return o;
}

/// Removes the cache, its journals, and the lease audit log so every test
/// starts from nothing.
void clear_artifacts(const std::string& cache) {
  std::remove(cache.c_str());
  for (const auto& j : find_journals(cache)) std::remove(j.c_str());
  std::remove(sweep::ElasticController::lease_log_path(cache).c_str());
}

/// The reference result: a plain fault-free in-process sweep over the same
/// plan, finalized into `cache`. Returns the cache bytes.
std::string reference_cache(const std::string& cache) {
  clear_artifacts(cache);
  core::Pipeline pipeline(fast_options());
  core::DseEngine dse(pipeline, cache, tiny_sweep());
  dse.sweep(false);
  return read_file(cache);
}

sweep::ElasticOptions fast_elastic(int workers) {
  sweep::ElasticOptions e;
  e.workers = workers;
  e.lease_points = 1;  // one point per lease: maximum re-lease churn
  e.heartbeat_s = 0.05;
  return e;
}

// ---- LeaseTable: chunk carving and grants ---------------------------------

TEST(LeaseTable, CarvesPendingListIntoBoundedChunks) {
  sweep::ElasticOptions opt;
  opt.lease_points = 4;
  sweep::LeaseTable table(10, opt);
  ASSERT_EQ(table.chunk_count(), 3);
  EXPECT_EQ(table.chunk(0).begin, 0u);
  EXPECT_EQ(table.chunk(0).end, 4u);
  EXPECT_EQ(table.chunk(2).begin, 8u);
  EXPECT_EQ(table.chunk(2).end, 10u);  // short tail chunk
  EXPECT_EQ(table.chunk(2).points(), 2u);
  EXPECT_FALSE(table.all_committed());
}

TEST(LeaseTable, GrantsLowestPendingChunkAndTracksHolder) {
  sweep::ElasticOptions opt;
  opt.lease_points = 2;
  sweep::LeaseTable table(6, opt);
  table.add_worker(7, 0.0);
  table.add_worker(8, 0.0);
  EXPECT_EQ(table.grant(7, 0.0), 0);
  EXPECT_EQ(table.grant(8, 0.0), 1);
  EXPECT_EQ(table.held_by(7), 0);
  EXPECT_EQ(table.held_by(8), 1);
  EXPECT_EQ(table.chunk(0).phase, sweep::LeaseChunk::Phase::kLeased);
  // Third grant takes the last chunk; a fourth finds nothing.
  EXPECT_EQ(table.grant(7, 0.0), 2);
  EXPECT_EQ(table.grant(8, 0.0), -1);
}

// ---- LeaseTable: lease expiry under a fake clock --------------------------

TEST(LeaseTable, StaleWorkerDetectionUsesBeatAge) {
  sweep::ElasticOptions opt;
  opt.heartbeat_s = 0.25;
  opt.stale_beats = 8.0;  // stale after 2.0 fake seconds of silence
  sweep::LeaseTable table(4, opt);
  table.add_worker(0, 0.0);
  table.add_worker(1, 0.0);
  table.beat(0, 1.0);  // worker 0 beats once, then goes silent
  table.beat(1, 2.9);  // worker 1 keeps beating

  EXPECT_TRUE(table.stale_workers(2.9).empty());  // 0 silent for 1.9s: fine
  const std::vector<int> stale = table.stale_workers(3.1);
  ASSERT_EQ(stale.size(), 1u);  // 0 silent for 2.1s: expired
  EXPECT_EQ(stale[0], 0);
  table.remove_worker(0);
  EXPECT_TRUE(table.stale_workers(3.1).empty());
  EXPECT_EQ(table.live_workers(), 1);
}

TEST(LeaseTable, RevokeReturnsChunkToPendingOnce) {
  sweep::ElasticOptions opt;
  opt.lease_points = 2;
  sweep::LeaseTable table(4, opt);
  table.add_worker(0, 0.0);
  EXPECT_FALSE(table.revoke(0));  // pending: nothing to revoke
  ASSERT_EQ(table.grant(0, 0.0), 0);
  EXPECT_TRUE(table.revoke(0));
  EXPECT_EQ(table.chunk(0).phase, sweep::LeaseChunk::Phase::kPending);
  EXPECT_EQ(table.chunk(0).holder, -1);
  EXPECT_EQ(table.chunk(0).revocations, 1);
  EXPECT_FALSE(table.revoke(0));  // already back in the pool
  // The revoked chunk is immediately re-grantable (to anyone).
  EXPECT_EQ(table.grant(0, 1.0), 0);
}

// ---- LeaseTable: re-lease and commit idempotence --------------------------

TEST(LeaseTable, CommitWinsAgainstRevocationRace) {
  // A straggler's rows can land after its lease was revoked: commit must
  // be legal from kPending, and a later revoke of the committed chunk a
  // no-op — the point of idempotent journal rows is that *someone*
  // finishing is always safe.
  sweep::ElasticOptions opt;
  opt.lease_points = 2;
  sweep::LeaseTable table(4, opt);
  table.add_worker(0, 0.0);
  ASSERT_EQ(table.grant(0, 0.0), 0);
  ASSERT_TRUE(table.revoke(0));          // straggler rule fired...
  EXPECT_TRUE(table.commit(0, 5.0));     // ...but its rows landed anyway
  EXPECT_EQ(table.chunk(0).phase, sweep::LeaseChunk::Phase::kCommitted);
  EXPECT_FALSE(table.commit(0, 6.0));    // duplicate commit: no-op
  EXPECT_FALSE(table.revoke(0));         // late revoke loses
  EXPECT_EQ(table.committed_points(), 2u);
  // A commit from the revoked (pending) state must NOT feed the duration
  // median: granted_at no longer describes who did the work.
  EXPECT_EQ(table.median_duration(), 0.0);
}

TEST(LeaseTable, LeasedCommitsFeedTheDurationMedian) {
  sweep::ElasticOptions opt;
  opt.lease_points = 1;
  sweep::LeaseTable table(5, opt);
  table.add_worker(0, 0.0);
  double t = 0.0;
  for (const double dur : {0.1, 0.3, 0.2}) {
    const int c = table.grant(0, t);
    ASSERT_GE(c, 0);
    ASSERT_TRUE(table.commit(c, t + dur));
    t += 1.0;
  }
  EXPECT_NEAR(table.median_duration(), 0.2, 1e-9);
}

// ---- LeaseTable: straggler revocation -------------------------------------

TEST(LeaseTable, StragglerDetectionNeedsMediansAndThreshold) {
  sweep::ElasticOptions opt;
  opt.lease_points = 1;
  opt.straggler_factor = 4.0;
  opt.straggler_min_s = 0.5;
  opt.min_medians = 3;
  sweep::LeaseTable table(8, opt);
  table.add_worker(0, 0.0);
  table.add_worker(1, 0.0);

  // Worker 1 takes a lease that will straggle from t=0.
  const int slow = table.grant(1, 0.0);
  ASSERT_GE(slow, 0);
  // Two quick commits: not enough medians, no straggler verdict yet even
  // far past any threshold.
  for (int i = 0; i < 2; ++i) {
    const int c = table.grant(0, 10.0 + i);
    ASSERT_TRUE(table.commit(c, 10.1 + i));
  }
  EXPECT_TRUE(table.stragglers(20.0).empty());
  // Third commit arms the rule: median 0.1s, threshold max(0.5, 4x0.1).
  const int c = table.grant(0, 12.0);
  ASSERT_TRUE(table.commit(c, 12.1));
  EXPECT_TRUE(table.stragglers(0.49).empty());  // under straggler_min_s
  const std::vector<int> late = table.stragglers(20.0);
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0], slow);
}

TEST(LeaseTable, PoisonedChunksLeaveTheGrantPool) {
  sweep::ElasticOptions opt;
  opt.lease_points = 1;
  opt.poison_limit = 2;
  sweep::LeaseTable table(2, opt);
  table.add_worker(0, 0.0);
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(table.grant(0, 0.0), 0);  // chunk 0 is lowest pending
    ASSERT_TRUE(table.revoke(0));
  }
  EXPECT_TRUE(table.poisoned(0));
  EXPECT_EQ(table.grant(0, 1.0), 1);  // grants now skip the poisoned chunk
  const std::vector<int> poisoned = table.poisoned_pending();
  ASSERT_EQ(poisoned.size(), 1u);
  EXPECT_EQ(poisoned[0], 0);
}

// ---- JournalTailer --------------------------------------------------------

TEST(JournalTailer, IncrementallyDeliversOnlyNewRecords) {
  const std::string path = tmp_path("tailer_incr.journal");
  std::remove(path.c_str());
  const std::vector<std::string> header = {"k", "v"};
  ResultJournal journal(path, header);
  journal.append("a|1", {"a", "1"});
  journal.append("b|2", {"b", "2"});

  JournalTailer tailer(path, header);
  JournalTailer::Batch batch = tailer.poll();
  ASSERT_EQ(batch.entries.size(), 2u);
  EXPECT_EQ(batch.entries[0].first, "a|1");
  EXPECT_EQ(batch.dropped, 0u);

  EXPECT_TRUE(tailer.poll().entries.empty());  // no news: cheap no-op

  journal.append_fail("c|3", {"io", "burst", 2, "boom"});
  LeaseRecord lease;
  lease.event = "granted";
  lease.chunk = 0;
  lease.worker = 1;
  lease.end = 4;
  journal.append_lease(lease);
  journal.append("d|4", {"d", "4"});
  batch = tailer.poll();
  ASSERT_EQ(batch.entries.size(), 1u);  // only the new entry, not a re-read
  EXPECT_EQ(batch.entries[0].first, "d|4");
  ASSERT_EQ(batch.fail_keys.size(), 1u);
  EXPECT_EQ(batch.fail_keys[0], "c|3");
  ASSERT_EQ(batch.leases.size(), 1u);
  EXPECT_EQ(batch.leases[0].event, "granted");
  EXPECT_EQ(batch.leases[0].end, 4u);
}

TEST(JournalTailer, LeavesPartialTrailingLineUnconsumed) {
  const std::string path = tmp_path("tailer_partial.journal");
  std::remove(path.c_str());
  const std::vector<std::string> header = {"k", "v"};
  { ResultJournal journal(path, header); journal.append("a|1", {"a", "1"}); }

  JournalTailer tailer(path, header);
  ASSERT_EQ(tailer.poll().entries.size(), 1u);
  const std::uint64_t consumed = tailer.offset();

  // A crashed writer's torn tail: record bytes without the newline yet.
  std::string full;
  {
    const std::string copy = tmp_path("tailer_partial2.journal");
    std::remove(copy.c_str());
    ResultJournal other(copy, header);
    other.append("b|2", {"b", "2"});
    const std::string text = read_file(copy);
    const std::size_t second_nl = text.find('\n', text.find('\n') + 1);
    full = text.substr(second_nl + 1);  // the complete record line
    std::remove(copy.c_str());
  }
  std::ofstream(path, std::ios::app | std::ios::binary)
      << full.substr(0, full.size() - 1);  // strip the newline
  EXPECT_TRUE(tailer.poll().entries.empty());
  EXPECT_EQ(tailer.offset(), consumed);  // not consumed, not dropped

  std::ofstream(path, std::ios::app | std::ios::binary) << "\n";
  JournalTailer::Batch batch = tailer.poll();
  ASSERT_EQ(batch.entries.size(), 1u);
  EXPECT_EQ(batch.entries[0].first, "b|2");
}

TEST(JournalTailer, DropsCorruptRecordsAndDetectsReplacement) {
  const std::string path = tmp_path("tailer_corrupt.journal");
  std::remove(path.c_str());
  const std::vector<std::string> header = {"k", "v"};
  { ResultJournal journal(path, header); journal.append("a|1", {"a", "1"}); }

  JournalTailer tailer(path, header);
  ASSERT_EQ(tailer.poll().entries.size(), 1u);
  std::ofstream(path, std::ios::app | std::ios::binary)
      << "x|9\tx,9\tdeadbeefdeadbeef\n";
  JournalTailer::Batch batch = tailer.poll();
  EXPECT_TRUE(batch.entries.empty());
  EXPECT_EQ(batch.dropped, 1u);

  // Compaction-style replacement: a fresh, shorter journal under the same
  // path. The tailer must notice (inode/size) and re-read from scratch —
  // consumers are idempotent, re-delivery is safe, silence is not.
  std::remove(path.c_str());
  { ResultJournal journal(path, header); journal.append("b|2", {"b", "2"}); }
  batch = tailer.poll();
  ASSERT_EQ(batch.entries.size(), 1u);
  EXPECT_EQ(batch.entries[0].first, "b|2");
}

// ---- ElasticController: convergence contracts -----------------------------

#ifndef _WIN32

TEST(ElasticController, MatchesInProcessSweepByteForByte) {
  const std::string ref = tmp_path("elastic_ref.csv");
  const std::string cache = tmp_path("elastic_run.csv");
  const std::string want = reference_cache(ref);
  ASSERT_FALSE(want.empty());

  clear_artifacts(cache);
  core::Pipeline pipeline(fast_options());
  sweep::ElasticController controller(pipeline, cache, tiny_sweep(),
                                      fast_elastic(2));
  const sweep::ElasticReport report = controller.run();
  EXPECT_EQ(report.points, 4u);
  EXPECT_EQ(report.resolved, 4u);
  EXPECT_GE(report.spawned, 1);

  core::DseEngine dse(pipeline, cache, tiny_sweep());
  const core::SweepReport merged = dse.sweep(false);
  EXPECT_TRUE(merged.finalized);
  EXPECT_EQ(merged.computed, 0u) << "workers should have resolved all keys";
  EXPECT_EQ(read_file(cache), want);
}

TEST(ElasticController, DuplicateRowsFromReLeasingConverge) {
  // Two workers race one-point leases; then the whole phase reruns on top
  // of complete journals (a controller restart after losing no state).
  // Duplicate rows are byte-identical, so the second pass must resolve
  // instantly and change nothing.
  const std::string ref = tmp_path("elastic_dup_ref.csv");
  const std::string cache = tmp_path("elastic_dup.csv");
  const std::string want = reference_cache(ref);

  clear_artifacts(cache);
  core::Pipeline pipeline(fast_options());
  {
    sweep::ElasticController controller(pipeline, cache, tiny_sweep(),
                                        fast_elastic(2));
    EXPECT_EQ(controller.run().resolved, 4u);
  }
  {
    sweep::ElasticController controller(pipeline, cache, tiny_sweep(),
                                        fast_elastic(2));
    const sweep::ElasticReport again = controller.run();
    EXPECT_EQ(again.points, 0u);   // journals already cover every key
    EXPECT_EQ(again.spawned, 0);   // nothing pending: no forks at all
  }
  core::DseEngine dse(pipeline, cache, tiny_sweep());
  dse.sweep(false);
  EXPECT_EQ(read_file(cache), want);
}

TEST(ElasticController, ResumesFromPartialWorkerJournal) {
  // A prior run's worker journal holds 2 of 4 keys (its process died and
  // never came back). The controller must treat those keys as resolved,
  // lease out only the residue, and the finalize pass must still produce
  // the byte-identical cache.
  const std::string ref = tmp_path("elastic_part_ref.csv");
  const std::string cache = tmp_path("elastic_part.csv");
  const std::string want = reference_cache(ref);

  clear_artifacts(cache);
  const core::SweepOptions opts = tiny_sweep();
  const core::SweepPlan plan = core::make_sweep_plan(opts);
  ASSERT_EQ(plan.size(), 4u);
  core::Pipeline pipeline(fast_options());
  {
    ResultJournal journal(sweep::worker_journal_path(cache, 0),
                          core::DseEngine::csv_header());
    core::PointRunner runner(plan, opts);
    EXPECT_TRUE(runner.run(pipeline, 0, &journal, nullptr));
    EXPECT_TRUE(runner.run(pipeline, 2, &journal, nullptr));
  }
  sweep::ElasticController controller(pipeline, cache, opts,
                                      fast_elastic(1));
  const sweep::ElasticReport report = controller.run();
  EXPECT_EQ(report.points, 2u);  // only the residue was pending
  EXPECT_EQ(report.resolved, 2u);

  core::DseEngine dse(pipeline, cache, opts);
  const core::SweepReport merged = dse.sweep(false);
  EXPECT_TRUE(merged.finalized);
  EXPECT_EQ(read_file(cache), want);
}

TEST(ElasticController, SurvivesKillNineOnEveryLease) {
  // worker.chunk:kill with p=1 murders every worker the moment it accepts
  // any lease: respawns burn down, chunks poison, and the controller must
  // still converge by computing everything in-process — byte-identically.
  const std::string ref = tmp_path("elastic_kill_ref.csv");
  const std::string cache = tmp_path("elastic_kill.csv");
  const std::string want = reference_cache(ref);

  clear_artifacts(cache);
  FaultGuard guard;
  verify::FaultPlan::install(verify::FaultPlan::parse("worker.chunk:kill:5:1"));
  core::Pipeline pipeline(fast_options());
  sweep::ElasticOptions eopt = fast_elastic(2);
  eopt.lease_points = 2;  // 2 chunks of 2 points
  sweep::ElasticController controller(pipeline, cache, tiny_sweep(), eopt);
  const sweep::ElasticReport report = controller.run();
  EXPECT_EQ(report.resolved, 4u);
  EXPECT_GT(report.deaths, 0);
  EXPECT_GT(report.inprocess_chunks, 0);
  verify::FaultPlan::clear();  // the finalize pass must run fault-free

  core::DseEngine dse(pipeline, cache, tiny_sweep());
  dse.sweep(false);
  EXPECT_EQ(read_file(cache), want);
}

TEST(ElasticController, WritesAuditableLeaseLog) {
  const std::string cache = tmp_path("elastic_audit.csv");
  clear_artifacts(cache);
  core::Pipeline pipeline(fast_options());
  sweep::ElasticController controller(pipeline, cache, tiny_sweep(),
                                      fast_elastic(2));
  controller.run();

  const std::string log = sweep::ElasticController::lease_log_path(cache);
  ASSERT_TRUE(CsvDoc::file_exists(log));
  const ResultJournal::LoadResult lr =
      ResultJournal::read(log, core::DseEngine::csv_header());
  EXPECT_TRUE(lr.entries.empty());  // audit log: lease events only
  EXPECT_EQ(lr.dropped, 0u);
  ASSERT_FALSE(lr.leases.empty());
  int grants = 0, commits = 0;
  for (const auto& lease : lr.leases) {
    EXPECT_TRUE(known_lease_event(lease.event)) << lease.event;
    grants += lease.event == "granted" ? 1 : 0;
    commits += lease.event == "committed" ? 1 : 0;
  }
  EXPECT_EQ(commits, 4);  // 4 one-point chunks, each committed exactly once
  EXPECT_GE(grants, 4);
}

TEST(ElasticController, RejectsShardedPlansAndEmptyCache) {
  core::Pipeline pipeline(fast_options());
  core::SweepOptions sharded = tiny_sweep();
  sharded.shard_count = 2;
  EXPECT_THROW(sweep::ElasticController(pipeline, tmp_path("x.csv"), sharded,
                                        fast_elastic(2)),
               SimError);
  EXPECT_THROW(
      sweep::ElasticController(pipeline, "", tiny_sweep(), fast_elastic(2)),
      SimError);
}


// ---- LineChannel: malformed-frame hardening (babble cap) -------------------
//
// The elastic wire predates network exposure: a worker is our own forked
// binary. The DSE server puts arbitrary clients on the same framing, so
// the channel enforces kMaxLineBytes — lines beyond it mark the peer
// babbling and close the connection, with the receive buffer provably
// bounded throughout.

/// A connected AF_UNIX pair: `writer` sends raw bytes, `ch` is the channel
/// under test. The channel end is non-blocking, like every poll-driven
/// channel in the controller and the server.
struct ChannelPair {
  ChannelPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    EXPECT_EQ(::fcntl(fds[1], F_SETFL, O_NONBLOCK), 0);
    writer = fds[0];
    ch = std::make_unique<sweep::LineChannel>(fds[1]);
  }
  ~ChannelPair() {
    if (writer >= 0) ::close(writer);
  }
  void write(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(writer, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }
  int writer = -1;
  std::unique_ptr<sweep::LineChannel> ch;
};

TEST(LineChannel, DeliversCompleteLinesAndBuffersThePartialTail) {
  ChannelPair pair;
  pair.write("one\ntwo\npart");
  std::vector<std::string> lines;
  EXPECT_TRUE(pair.ch->drain(&lines));
  EXPECT_EQ(lines, (std::vector<std::string>{"one", "two"}));
  EXPECT_EQ(pair.ch->buffered(), 4u);
  EXPECT_FALSE(pair.ch->babbling());
  pair.write("ial\n");
  lines.clear();
  EXPECT_TRUE(pair.ch->drain(&lines));
  EXPECT_EQ(lines, (std::vector<std::string>{"partial"}));
  EXPECT_EQ(pair.ch->buffered(), 0u);
}

TEST(LineChannel, LineAtExactlyTheCapIsDelivered) {
  ChannelPair pair;
  const std::string max_line(sweep::LineChannel::kMaxLineBytes, 'a');
  pair.write(max_line + "\n");
  std::vector<std::string> lines;
  EXPECT_TRUE(pair.ch->drain(&lines));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].size(), sweep::LineChannel::kMaxLineBytes);
  EXPECT_FALSE(pair.ch->babbling());
}

TEST(LineChannel, OverlongCompleteLineFlagsBabblingAfterGoodLines) {
  ChannelPair pair;
  pair.write("good\n" +
             std::string(sweep::LineChannel::kMaxLineBytes + 1, 'x') +
             "\n");
  std::vector<std::string> lines;
  EXPECT_FALSE(pair.ch->drain(&lines));
  // Lines completed before the flood are still delivered; the over-long
  // one is not, and the channel is closed with its buffer discarded.
  EXPECT_EQ(lines, (std::vector<std::string>{"good"}));
  EXPECT_TRUE(pair.ch->babbling());
  EXPECT_EQ(pair.ch->buffered(), 0u);
  EXPECT_LT(pair.ch->fd(), 0);
}

TEST(LineChannel, NewlinelessFloodIsCutOffWithBoundedBuffering) {
  ChannelPair pair;
  const std::string chunk(4096, 'z');
  bool flagged = false;
  // Feed the flood chunk by chunk, draining as a poll loop would: the
  // buffer must never exceed the cap at any observation point, and the
  // channel must flag the peer before the flood grows further.
  for (int i = 0; i < 64 && !flagged; ++i) {
    pair.write(chunk);
    std::vector<std::string> lines;
    flagged = !pair.ch->drain(&lines);
    EXPECT_TRUE(lines.empty());
    EXPECT_LE(pair.ch->buffered(), sweep::LineChannel::kMaxLineBytes);
  }
  EXPECT_TRUE(flagged);
  EXPECT_TRUE(pair.ch->babbling());
  EXPECT_EQ(pair.ch->buffered(), 0u);
}

TEST(LineChannel, BlockingReadLineEnforcesTheCapToo) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Both ends blocking — the worker-side read path. The flood is written
  // in full before the read, so the reader never blocks: the cap trips
  // first.
  const std::string flood(sweep::LineChannel::kMaxLineBytes + 1, 'y');
  std::size_t off = 0;
  while (off < flood.size()) {
    const ssize_t n =
        ::send(fds[0], flood.data() + off, flood.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
  sweep::LineChannel ch(fds[1]);
  std::string line;
  EXPECT_FALSE(ch.read_line(&line));
  EXPECT_TRUE(ch.babbling());
  ::close(fds[0]);
}

#endif  // !_WIN32

}  // namespace
}  // namespace musa
