// Unit tests for trace serialisation (burst traces, regions, instruction
// streams) — the durable-artifact layer of the methodology.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "apps/apps.hpp"
#include "common/check.hpp"
#include "trace/kernel.hpp"
#include "trace/trace_io.hpp"

namespace musa::trace {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

struct FileGuard {
  std::string path;
  ~FileGuard() { std::remove(path.c_str()); }
};

TEST(TraceIo, BurstTraceRoundTrip) {
  const auto& app = apps::find_app("lulesh");
  const AppTrace original = apps::make_burst_trace(app, 8);
  const std::string path = temp_path("musa_burst.trc");
  FileGuard guard{path};

  save_app_trace(original, path);
  const AppTrace loaded = load_app_trace(path);

  EXPECT_EQ(loaded.app_name, original.app_name);
  ASSERT_EQ(loaded.ranks.size(), original.ranks.size());
  for (std::size_t r = 0; r < original.ranks.size(); ++r) {
    const auto& a = original.ranks[r].events;
    const auto& b = loaded.ranks[r].events;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].kind, b[i].kind);
      if (a[i].kind == BurstEvent::Kind::kCompute) {
        EXPECT_DOUBLE_EQ(a[i].seconds, b[i].seconds);
        EXPECT_EQ(a[i].region_id, b[i].region_id);
      } else {
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].peer, b[i].peer);
        EXPECT_EQ(a[i].bytes, b[i].bytes);
        EXPECT_EQ(a[i].req, b[i].req);
      }
    }
  }
}

TEST(TraceIo, RegionRoundTrip) {
  const auto& app = apps::find_app("btmz");  // has serial gates (deps)
  const Region original = apps::make_region(app);
  const std::string path = temp_path("musa_region.trc");
  FileGuard guard{path};

  save_region(original, path);
  const Region loaded = load_region(path);

  EXPECT_EQ(loaded.name, original.name);
  ASSERT_EQ(loaded.tasks.size(), original.tasks.size());
  for (std::size_t i = 0; i < original.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.tasks[i].work, original.tasks[i].work);
    EXPECT_EQ(loaded.tasks[i].deps, original.tasks[i].deps);
    EXPECT_EQ(loaded.tasks[i].critical, original.tasks[i].critical);
  }
}

TEST(TraceIo, InstrTraceSpoolsAndReplays) {
  const auto& app = apps::find_app("hydro");
  KernelSource source(app.kernel, 5000, 99);
  const std::string path = temp_path("musa_instr.trc");
  FileGuard guard{path};

  const std::uint64_t written = spool_instr_trace(source, path);
  EXPECT_GE(written, 5000u);

  FileInstrSource replay(path);
  EXPECT_EQ(replay.size(), written);

  // Replays bit-identically against a fresh generator.
  KernelSource reference(app.kernel, 5000, 99);
  isa::Instr a, b;
  std::uint64_t n = 0;
  while (replay.next(a)) {
    ASSERT_TRUE(reference.next(b));
    EXPECT_EQ(a.addr, b.addr);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.static_id, b.static_id);
    ++n;
  }
  EXPECT_EQ(n, written);

  // reset() replays again.
  replay.reset();
  ASSERT_TRUE(replay.next(a));
}

TEST(TraceIo, SpoolRespectsLimit) {
  const auto& app = apps::find_app("spmz");
  KernelSource source(app.kernel, 100000, 1);
  const std::string path = temp_path("musa_instr_lim.trc");
  FileGuard guard{path};
  EXPECT_EQ(spool_instr_trace(source, path, 1234), 1234u);
  EXPECT_EQ(FileInstrSource(path).size(), 1234u);
}

TEST(TraceIo, DescribeIdentifiesAllFormats) {
  const auto& app = apps::find_app("hydro");
  const std::string p1 = temp_path("musa_d1.trc");
  const std::string p2 = temp_path("musa_d2.trc");
  const std::string p3 = temp_path("musa_d3.trc");
  FileGuard g1{p1}, g2{p2}, g3{p3};
  save_app_trace(apps::make_burst_trace(app, 4), p1);
  save_region(apps::make_region(app), p2);
  KernelSource src(app.kernel, 100, 1);
  spool_instr_trace(src, p3);

  EXPECT_NE(describe_trace_file(p1).find("burst trace"), std::string::npos);
  EXPECT_NE(describe_trace_file(p1).find("ranks=4"), std::string::npos);
  EXPECT_NE(describe_trace_file(p2).find("region"), std::string::npos);
  EXPECT_NE(describe_trace_file(p3).find("instruction trace"),
            std::string::npos);
}

TEST(TraceIo, RejectsWrongMagicAndTruncation) {
  const std::string path = temp_path("musa_bad.trc");
  FileGuard guard{path};
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a trace";
  }
  EXPECT_THROW(load_app_trace(path), SimError);
  EXPECT_THROW(load_region(path), SimError);
  EXPECT_THROW(FileInstrSource{path}, SimError);
  EXPECT_THROW(describe_trace_file(path), SimError);

  // Valid header but truncated body.
  const auto& app = apps::find_app("hydro");
  save_app_trace(apps::make_burst_trace(app, 4), path);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(load_app_trace(path), SimError);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_app_trace("/nonexistent/path.trc"), SimError);
  EXPECT_THROW(save_region(Region{}, "/nonexistent/dir/x.trc"), SimError);
}

// ---- Corruption matrix ----------------------------------------------------
// Hardened loaders must reject *every* damaged variant of a valid file —
// not just the easy cases — and always with SimError class `io`, never a
// silent misparse, hang, or non-SimError crash.

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(TraceIo, EveryTruncationOfARegionIsRejected) {
  const Region original = apps::make_region(apps::find_app("btmz"));
  const std::string path = temp_path("musa_region_trunc.trc");
  FileGuard guard{path};
  save_region(original, path);
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 8u);

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    spit(path, bytes.substr(0, len));
    EXPECT_THROW(load_region(path), SimError) << "prefix length " << len;
  }
  // The untouched file still round-trips: the matrix did not overfit.
  spit(path, bytes);
  EXPECT_EQ(load_region(path).tasks.size(), original.tasks.size());
}

TEST(TraceIo, TruncatedBurstTracesAreRejected) {
  const AppTrace original =
      apps::make_burst_trace(apps::find_app("hydro"), 2);
  const std::string path = temp_path("musa_burst_trunc.trc");
  FileGuard guard{path};
  save_app_trace(original, path);
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 8u);

  // Burst traces are bigger; walk the prefix lattice with a stride plus
  // every boundary in the header and the final record.
  for (std::size_t len = 0; len < bytes.size();
       len += (len < 32 || len + 32 >= bytes.size()) ? 1 : 7) {
    spit(path, bytes.substr(0, len));
    EXPECT_THROW(load_app_trace(path), SimError) << "prefix length " << len;
  }
  spit(path, bytes);
  EXPECT_EQ(load_app_trace(path).ranks.size(), original.ranks.size());
}

TEST(TraceIo, HeaderByteFlipsAreRejected) {
  const std::string path = temp_path("musa_burst_flip.trc");
  FileGuard guard{path};
  save_app_trace(apps::make_burst_trace(apps::find_app("hydro"), 2), path);
  const std::string bytes = slurp(path);
  ASSERT_GE(bytes.size(), 8u);

  // Magic (bytes 0-3) and version (bytes 4-7): any single-bit damage in
  // the header must be fatal, for every bit of every byte.
  for (std::size_t i = 0; i < 8; ++i)
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = bytes;
      damaged[i] = static_cast<char>(damaged[i] ^ (1 << bit));
      spit(path, damaged);
      EXPECT_THROW(load_app_trace(path), SimError)
          << "byte " << i << " bit " << bit;
    }
}

TEST(TraceIo, TrailingGarbageIsRejected) {
  // A shrunk length field leaves declared-contents < file size; the loader
  // must notice the leftover bytes instead of silently ignoring them.
  const std::string burst = temp_path("musa_burst_trail.trc");
  const std::string region = temp_path("musa_region_trail.trc");
  FileGuard g1{burst}, g2{region};
  save_app_trace(apps::make_burst_trace(apps::find_app("hydro"), 2), burst);
  save_region(apps::make_region(apps::find_app("btmz")), region);

  for (const std::string& path : {burst, region})
    spit(path, slurp(path) + "junk");
  EXPECT_THROW(load_app_trace(burst), SimError);
  EXPECT_THROW(load_region(region), SimError);
}

TEST(TraceIo, CorruptionErrorsCarryIoClassAndContext) {
  const std::string path = temp_path("musa_burst_ctx.trc");
  FileGuard guard{path};
  save_app_trace(apps::make_burst_trace(apps::find_app("hydro"), 2), path);
  const std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() / 2));

  try {
    load_app_trace(path);
    FAIL() << "truncated trace loaded";
  } catch (const SimError& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::kIo);
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos)
        << "error does not name the file: " << what;
    EXPECT_NE(what.find("byte offset"), std::string::npos)
        << "error does not locate the damage: " << what;
  }
}

}  // namespace
}  // namespace musa::trace
