// Validation suite: closed-form analytic models cross-checking the
// simulators, the stand-in for the paper's validation against MareNostrum
// runs (DESIGN.md §2 — "first-principles unit validation").
#include <gtest/gtest.h>

#include <vector>

#include "cachesim/hierarchy.hpp"
#include "common/rng.hpp"
#include "cpusim/core_model.hpp"
#include "cpusim/runtime.hpp"
#include "dramsim/dram.hpp"
#include "netsim/dimemas.hpp"
#include "powersim/power.hpp"
#include "trace/instr_source.hpp"
#include "trace/kernel.hpp"

namespace musa {
namespace {

// --- Roofline: a streaming kernel's throughput is bounded by min(compute,
// bandwidth) and approaches the bandwidth roof when memory-intense. --------
TEST(Validation, StreamingKernelHitsBandwidthRoof) {
  trace::KernelProfile p;
  p.scalar_tail = {.int_alu = 1, .loads = 4};  // ~0.8 loads/instr
  p.streams = {{.share = 1.0, .ws_bytes = 1ull << 30, .stride = 64}};
  cachesim::MemHierarchy h(cachesim::cache_32m_256k(1));
  dramsim::DramSystem dram(dramsim::ddr4_2333(), 1);  // one channel roof
  trace::KernelSource src(p, 60000);
  cpusim::CoreModel core(cpusim::core_aggressive(), {2.0}, h, dram);
  const cpusim::CoreStats s = core.run(src, {.vector_bits = 128});
  const double achieved = s.dram_gbps({2.0});
  const double roof = dram.peak_gbps();
  EXPECT_GT(achieved, 0.5 * roof);   // streaming + prefetch nears the roof
  EXPECT_LE(achieved, roof * 1.02);  // and cannot exceed it
}

// --- Amdahl: a region with serial fraction f saturates at 1/f. ------------
TEST(Validation, AmdahlCeilingHolds) {
  trace::Region r;
  const int parallel_tasks = 90;
  // 10% serial: a gate task after every 9 parallel tasks.
  std::int32_t prev_gate = -1;
  for (int chunk = 0; chunk < 10; ++chunk) {
    std::vector<std::int32_t> ids;
    for (int i = 0; i < parallel_tasks / 10; ++i) {
      trace::TaskInstance t;
      t.work = 1.0;
      if (prev_gate >= 0) t.deps.push_back(prev_gate);
      ids.push_back(static_cast<std::int32_t>(r.tasks.size()));
      r.tasks.push_back(t);
    }
    trace::TaskInstance gate;
    gate.work = 1.0;
    gate.deps = ids;
    prev_gate = static_cast<std::int32_t>(r.tasks.size());
    r.tasks.push_back(gate);
  }
  const std::vector<cpusim::TaskTiming> timing = {{.seconds_per_work = 1e-6}};
  cpusim::RuntimeSim sim;
  const double t1 =
      sim.run(r, timing, {.cores = 1, .dispatch_overhead_s = 0}).seconds;
  const double t64 =
      sim.run(r, timing, {.cores = 64, .dispatch_overhead_s = 0}).seconds;
  const double serial_frac = 10.0 / 100.0;
  const double amdahl = 1.0 / (serial_frac + (1 - serial_frac) / 64.0);
  EXPECT_LE(t1 / t64, amdahl * 1.01);
  EXPECT_GT(t1 / t64, amdahl * 0.5);
}

// --- LogP-ish: allreduce time follows the 2·log2(P) tree formula. ---------
TEST(Validation, AllreduceMatchesTreeModel) {
  for (int P : {4, 32, 256}) {
    trace::AppTrace t;
    t.ranks.resize(P);
    for (int r = 0; r < P; ++r) {
      t.ranks[r].rank = r;
      t.ranks[r].events.push_back(
          trace::BurstEvent::mpi(trace::MpiOp::kAllreduce, -1, 256));
    }
    netsim::NetworkConfig net;
    const double measured =
        netsim::DimemasEngine(net).replay(t, {}).total_seconds;
    int log2p = 0;
    while ((1 << log2p) < P) ++log2p;
    const double model = 2.0 * log2p * net.transfer_s(256);
    EXPECT_NEAR(measured, model, model * 0.01) << "P=" << P;
  }
}

// --- Dennard-style check: dynamic power ratio across the V/f curve. -------
TEST(Validation, DynamicEnergyFollowsVSquared) {
  const auto cfg = cpusim::core_medium();
  const powersim::CorePower p15(cfg, 128, 1.5);
  const powersim::CorePower p30(cfg, 128, 3.0);
  const double e15 = p15.op_energy_j(isa::OpClass::kFpMul, 1);
  const double e30 = p30.op_energy_j(isa::OpClass::kFpMul, 1);
  // V(3.0)/V(1.5) = 1.05/0.75 = 1.4 -> energy ratio 1.96.
  EXPECT_NEAR(e30 / e15, 1.96, 0.01);
}

// --- Little's law: in-flight misses = throughput x latency, bounded by
// the ROB window. -----------------------------------------------------------
TEST(Validation, MissThroughputBoundedByWindowOverLatency) {
  // Random loads, 1 per 8 instructions; the lowend ROB of 40 holds at most
  // 5 loads, so miss throughput <= 5 / avg_latency.
  std::vector<isa::Instr> instrs;
  Rng rng(31);
  const int loads = 1500;
  for (int i = 0; i < loads; ++i) {
    isa::Instr ld;
    ld.op = isa::OpClass::kLoad;
    ld.dst = static_cast<std::uint8_t>(isa::kFpRegBase + (i % 12));
    ld.addr = rng.next_below(1ull << 34) & ~63ull;
    ld.size = 8;
    instrs.push_back(ld);
    for (int k = 0; k < 7; ++k) {
      isa::Instr a;
      a.op = isa::OpClass::kIntAlu;
      a.dst = static_cast<std::uint8_t>(k % 8);
      instrs.push_back(a);
    }
  }
  cachesim::MemHierarchy h(cachesim::cache_32m_256k(1));
  dramsim::DramSystem dram(dramsim::ddr4_2333(), 4);
  trace::VectorSource src(std::move(instrs));
  cpusim::CoreModel core(cpusim::core_low_end(), {2.0}, h, dram);
  const cpusim::CoreStats s = core.run(src, {.vector_bits = 64});
  const double cycles_per_load = s.cycles / loads;
  // DRAM latency here is ~150-250 cycles; window 40/8 = 5 loads in flight
  // means >= latency/5 cycles per load. Check the order of magnitude.
  EXPECT_GT(cycles_per_load, 20.0);
  EXPECT_LT(cycles_per_load, 400.0);
}

// --- DRAM refresh overhead: ~tRFC/tREFI of time is lost, few percent. -----
TEST(Validation, RefreshOverheadIsFewPercent) {
  const auto t = dramsim::ddr4_2333();
  const double overhead = t.tRFC / t.tREFI;
  EXPECT_GT(overhead, 0.02);
  EXPECT_LT(overhead, 0.08);
}

// --- Energy accounting: node energy equals integral of components. --------
TEST(Validation, EnergyEqualsPowerTimesTime) {
  powersim::PowerBreakdown b{.core_l1_w = 120, .l2_l3_w = 25, .dram_w = 12};
  const double duration = 3.5;
  EXPECT_DOUBLE_EQ(b.total() * duration, (120 + 25 + 12) * 3.5);
}

}  // namespace
}  // namespace musa
