// Unit tests for PCA and timeline rendering.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/pareto.hpp"
#include "analysis/pca.hpp"
#include "analysis/timeline.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace musa::analysis {
namespace {

TEST(Pca, PerfectlyCorrelatedVariablesLoadTogether) {
  std::vector<std::vector<double>> obs;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.next_double();
    obs.push_back({x, 2.0 * x + 1.0});
  }
  const PcaResult r = pca(obs, {"a", "b"});
  // One component explains everything; loadings have equal magnitude.
  EXPECT_GT(r.explained_variance[0], 0.99);
  EXPECT_NEAR(std::abs(r.components[0][0]), std::abs(r.components[0][1]),
              1e-6);
  // Same sign: they evolve together.
  EXPECT_GT(r.components[0][0] * r.components[0][1], 0.0);
}

TEST(Pca, AntiCorrelatedVariablesLoadOpposite) {
  std::vector<std::vector<double>> obs;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.next_double();
    obs.push_back({x, -x});
  }
  const PcaResult r = pca(obs, {"up", "down"});
  EXPECT_LT(r.components[0][0] * r.components[0][1], 0.0);
}

TEST(Pca, IndependentVariablesSplitVariance) {
  std::vector<std::vector<double>> obs;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i)
    obs.push_back({rng.next_double(), rng.next_double()});
  const PcaResult r = pca(obs, {"a", "b"});
  EXPECT_NEAR(r.explained_variance[0], 0.5, 0.1);
}

TEST(Pca, ConstantVariableGetsZeroLoading) {
  std::vector<std::vector<double>> obs;
  Rng rng(4);
  for (int i = 0; i < 50; ++i) obs.push_back({rng.next_double(), 7.0});
  const PcaResult r = pca(obs, {"x", "const"});
  EXPECT_NEAR(r.components[0][1], 0.0, 1e-9);
}

TEST(Pca, ExplainedVarianceSumsToOne) {
  std::vector<std::vector<double>> obs;
  Rng rng(5);
  for (int i = 0; i < 200; ++i)
    obs.push_back({rng.next_double(), rng.next_double() * 3,
                   rng.next_double() + 0.5 * rng.next_double()});
  const PcaResult r = pca(obs, {"a", "b", "c"});
  double total = 0.0;
  for (double v : r.explained_variance) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Components are ordered by decreasing variance.
  for (std::size_t k = 1; k < r.explained_variance.size(); ++k)
    EXPECT_LE(r.explained_variance[k], r.explained_variance[k - 1] + 1e-12);
}

TEST(Pca, ComponentsAreUnitVectors) {
  std::vector<std::vector<double>> obs;
  Rng rng(6);
  for (int i = 0; i < 100; ++i)
    obs.push_back({rng.next_double(), rng.next_double(), rng.next_double()});
  const PcaResult r = pca(obs, {"a", "b", "c"});
  for (const auto& comp : r.components) {
    double norm = 0.0;
    for (double c : comp) norm += c * c;
    EXPECT_NEAR(norm, 1.0, 1e-6);
  }
}

TEST(Pca, RejectsDegenerateInput) {
  EXPECT_THROW(pca({}, {"a"}), SimError);
  EXPECT_THROW(pca({{1.0}}, {"a"}), SimError);
  EXPECT_THROW(pca({{1.0}, {2.0, 3.0}}, {"a"}), SimError);  // ragged
}

TEST(Pareto, ExtractsNonDominatedPoints) {
  const auto front = pareto_front({
      {1.0, 10.0, 0},  // fastest
      {2.0, 5.0, 1},   // on front
      {3.0, 6.0, 2},   // dominated by 1
      {4.0, 1.0, 3},   // most frugal
      {1.5, 11.0, 4},  // dominated by 0
  });
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].tag, 0u);
  EXPECT_EQ(front[1].tag, 1u);
  EXPECT_EQ(front[2].tag, 3u);
}

TEST(Pareto, SinglePointIsItsOwnFront) {
  const auto front = pareto_front({{3.0, 3.0, 7}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].tag, 7u);
  EXPECT_TRUE(pareto_front({}).empty());
}

TEST(Pareto, DuplicateCoordinatesKeepOne) {
  const auto front = pareto_front({{1.0, 1.0, 0}, {1.0, 1.0, 1}});
  EXPECT_EQ(front.size(), 1u);
}

TEST(Pareto, HypervolumeOfKnownFront) {
  // Front {(1,3),(2,1)}, reference (4,4):
  // rectangles: (4-2)x(4-1)=6 plus (2-1)x(4-3)=1 -> 7.
  const auto front = pareto_front({{1.0, 3.0, 0}, {2.0, 1.0, 1}});
  EXPECT_DOUBLE_EQ(hypervolume(front, 4.0, 4.0), 7.0);
  EXPECT_DOUBLE_EQ(hypervolume({}, 4.0, 4.0), 0.0);
}

TEST(Pareto, HypervolumeRejectsBadReference) {
  const auto front = pareto_front({{2.0, 2.0, 0}});
  EXPECT_THROW(hypervolume(front, 1.0, 1.0), SimError);
}

TEST(Pareto, PrunesRegionsThatCannotImproveTheFront) {
  // Front {(1,3),(2,1)}. A region whose best corner is dominated (or merely
  // matched) by a front point is pruned; a corner strictly better in either
  // coordinate survives.
  const auto front = pareto_front({{1.0, 3.0, 0}, {2.0, 1.0, 1}});
  const auto kept = prune_dominated(front, {
      {3.0, 2.0, 10},   // (2,1) <= (3,2): pruned
      {2.0, 1.0, 11},   // exactly matched by (2,1): cannot *strictly* improve
      {0.5, 9.0, 12},   // left of the whole front: survives
      {1.5, 2.0, 13},   // beats (1,3) in y before (2,1) applies: survives
      {9.0, 0.5, 14},   // below the whole front: survives
  });
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].tag, 12u);
  EXPECT_EQ(kept[1].tag, 13u);
  EXPECT_EQ(kept[2].tag, 14u);
}

TEST(Pareto, PruneWithEmptyFrontKeepsEverything) {
  const auto kept = prune_dominated({}, {{1.0, 1.0, 0}, {2.0, 2.0, 1}});
  EXPECT_EQ(kept.size(), 2u);
}

TEST(Pareto, PruneToleratesUnsortedDominatedFrontInput) {
  // Callers may pass any point set as "front"; the dominated subset is
  // re-derived internally.
  const std::vector<CostPoint> messy = {
      {5.0, 5.0, 0}, {2.0, 1.0, 1}, {1.0, 3.0, 2}, {2.5, 2.5, 3}};
  const auto kept = prune_dominated(messy, {{3.0, 3.0, 7}, {0.5, 0.5, 8}});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].tag, 8u);
}

TEST(Timeline, CoreTimelinePaintsBusySegments) {
  std::vector<cpusim::TimelineSeg> segs = {
      {.core = 0, .start = 0.0, .end = 1.0, .task_type = 0},
      {.core = 1, .start = 0.5, .end = 1.0, .task_type = 0},
  };
  const std::string out = render_core_timeline(segs, 4, 1.0, {.width = 20});
  EXPECT_NE(out.find("cpu  0 |####################"), std::string::npos);
  EXPECT_NE(out.find("occupancy: 37.5%"), std::string::npos);
  // Idle cores render as dots.
  EXPECT_NE(out.find("cpu  3 |...................."), std::string::npos);
}

TEST(Timeline, RankTimelineMarksPhases) {
  std::vector<netsim::RankSeg> segs = {
      {.rank = 0, .start = 0.0, .end = 0.5,
       .kind = netsim::RankSeg::Kind::kCompute},
      {.rank = 0, .start = 0.5, .end = 1.0,
       .kind = netsim::RankSeg::Kind::kCollective},
      {.rank = 1, .start = 0.0, .end = 1.0,
       .kind = netsim::RankSeg::Kind::kP2p},
  };
  const std::string out = render_rank_timeline(segs, 2, 1.0, {.width = 10});
  EXPECT_NE(out.find("CCCCC"), std::string::npos);
  EXPECT_NE(out.find("BBBBB"), std::string::npos);
  EXPECT_NE(out.find("pppppppppp"), std::string::npos);
}

TEST(Timeline, DownsamplesManyRanks) {
  std::vector<netsim::RankSeg> segs;
  for (int r = 0; r < 256; ++r)
    segs.push_back({.rank = r, .start = 0.0, .end = 1.0,
                    .kind = netsim::RankSeg::Kind::kCompute});
  const std::string out =
      render_rank_timeline(segs, 256, 1.0, {.width = 20, .max_rows = 16});
  // 16 rows rendered, strided by 16.
  EXPECT_NE(out.find("rank   0"), std::string::npos);
  EXPECT_NE(out.find("rank 240"), std::string::npos);
  EXPECT_EQ(out.find("rank   1 "), std::string::npos);
}

TEST(Timeline, RejectsEmptyInput) {
  EXPECT_THROW(render_core_timeline({}, 0, 1.0), SimError);
  EXPECT_THROW(render_rank_timeline({}, 4, 0.0), SimError);
}

}  // namespace
}  // namespace musa::analysis
