// Tests for the cross-point stage memoization layer (core/stage_memo.hpp).
//
// The load-bearing property is *byte identity*: a memoized sweep must write
// exactly the bytes a non-memoized sweep writes — cache file, journal rows,
// every formatted metric. The tests below run real sub-sweeps both ways and
// compare raw bytes, and hammer the shared memo from 8 threads so the TSan
// CI leg exercises the concurrent paths.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/journal.hpp"
#include "common/parallel.hpp"
#include "core/dse.hpp"

namespace musa::core {
namespace {

std::string tmp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Reduced trace slices: the identity property is path-equality, not slice
/// size, and the full 320k-instruction warm-up would make these tests the
/// slowest in the suite.
PipelineOptions fast_options() {
  PipelineOptions o;
  o.warm_instrs = 40'000;
  o.measure_instrs = 32'000;
  return o;
}

/// 36 configs spanning every memo key dimension: 4 core presets × 3
/// frequencies × 3 vector widths. With two apps this is the 72-point
/// sub-sweep the byte-identity tests run.
std::vector<MachineConfig> sub_space() {
  std::vector<MachineConfig> configs;
  for (const auto& core : cpusim::core_presets())
    for (double freq : {1.5, 2.0, 2.5})
      for (int vec : {128, 256, 512}) {
        MachineConfig c;
        c.core = core;
        c.freq_ghz = freq;
        c.vector_bits = vec;
        configs.push_back(c);
      }
  return configs;
}

SweepOptions sub_sweep(bool memoize) {
  SweepOptions o;
  o.verbose = false;
  o.memoize = memoize;
  o.apps = {"hydro", "lulesh"};
  o.configs = sub_space();
  return o;
}

TEST(StageMemo, MemoizedPipelineMatchesPlainPointwise) {
  const apps::AppModel& app = apps::find_app("spmz");
  MachineConfig config;
  config.freq_ghz = 2.5;
  config.mem_channels = 8;

  Pipeline plain(fast_options());
  auto memo = std::make_shared<StageMemo>(
      pipeline_options_fingerprint(fast_options()));
  Pipeline memoized(fast_options(), memo);

  const SimResult a = plain.run(app, config);
  const SimResult b = memoized.run(app, config);
  EXPECT_EQ(DseEngine::to_row(a), DseEngine::to_row(b));
}

TEST(StageMemo, SecondRunHitsEveryTable) {
  const apps::AppModel& app = apps::find_app("hydro");
  auto memo = std::make_shared<StageMemo>(
      pipeline_options_fingerprint(fast_options()));
  Pipeline pipeline(fast_options(), memo);

  const SimResult first = pipeline.run(app, MachineConfig{});
  const MemoStats cold = memo->stats();
  EXPECT_GT(cold.total_misses(), 0u);

  const SimResult second = pipeline.run(app, MachineConfig{});
  const MemoStats warm = memo->stats();
  // The repeat run computes nothing new...
  EXPECT_EQ(warm.total_misses(), cold.total_misses());
  // ...every stage is served from the memo...
  EXPECT_GT(warm.burst_hits, cold.burst_hits);
  EXPECT_GT(warm.region_hits, cold.region_hits);
  EXPECT_GT(warm.trace_hits, cold.trace_hits);
  EXPECT_GT(warm.stream_hits, cold.stream_hits);
  EXPECT_GT(warm.warm_hits, cold.warm_hits);
  EXPECT_GT(warm.perfect_hits, cold.perfect_hits);
  // ...and the result is still bit-identical.
  EXPECT_EQ(DseEngine::to_row(first), DseEngine::to_row(second));
}

TEST(StageMemo, RejectsMemoBuiltForDifferentOptions) {
  auto memo = std::make_shared<StageMemo>(
      pipeline_options_fingerprint(fast_options()));
  EXPECT_THROW(Pipeline(PipelineOptions{}, memo), SimError);
  PipelineOptions other = fast_options();
  other.seed = 99;
  EXPECT_THROW(Pipeline(other, memo), SimError);
  EXPECT_NO_THROW(Pipeline(fast_options(), memo));
}

TEST(StageMemo, SubSweepCacheIsByteIdenticalWithAndWithoutMemo) {
  const std::string on_path = tmp_path("musa_memo_on.csv");
  const std::string off_path = tmp_path("musa_memo_off.csv");

  Pipeline pipe_on(fast_options());
  DseEngine on(pipe_on, on_path, sub_sweep(/*memoize=*/true));
  on.recompute();
  ASSERT_TRUE(on.report().finalized);
  // The sweep actually exercised the memo: with 2 apps and 36 configs all
  // sharing (cores, cache, channels), all but a handful of lookups hit.
  EXPECT_GT(on.report().memo.total_hits(), 0u);
  EXPECT_GT(on.report().memo.stream_hits, on.report().memo.stream_misses);

  Pipeline pipe_off(fast_options());
  DseEngine off(pipe_off, off_path, sub_sweep(/*memoize=*/false));
  off.recompute();
  ASSERT_TRUE(off.report().finalized);
  EXPECT_EQ(off.report().memo.total_hits() + off.report().memo.total_misses(),
            0u);

  const std::string on_bytes = slurp(on_path);
  ASSERT_FALSE(on_bytes.empty());
  EXPECT_EQ(on_bytes, slurp(off_path));
  std::remove(on_path.c_str());
  std::remove(off_path.c_str());
}

TEST(StageMemo, ShardJournalRowsAreByteIdenticalWithAndWithoutMemo) {
  // An unfinalized shard leaves its journal behind; the journalled row
  // strings (what the cache is later assembled from) must not depend on
  // memoization either. Rows are compared as key -> row maps because the
  // append order depends on worker interleaving, which is not part of the
  // byte-identity contract (the finalized cache is written in plan order).
  const auto shard_rows = [&](bool memoize) {
    const std::string cache =
        tmp_path(memoize ? "musa_memo_sh_on.csv" : "musa_memo_sh_off.csv");
    SweepOptions o = sub_sweep(memoize);
    o.shard_index = 0;
    o.shard_count = 2;
    Pipeline pipe(fast_options());
    DseEngine dse(pipe, cache, o);
    const SweepReport rep = dse.sweep(/*force=*/true);
    EXPECT_FALSE(rep.finalized);
    EXPECT_EQ(rep.computed, rep.shard_points);
    ResultJournal::LoadResult lr = ResultJournal::read(
        cache + ".shard-0-of-2.journal", DseEngine::csv_header());
    EXPECT_FALSE(lr.schema_mismatch);
    EXPECT_EQ(lr.dropped, 0u);
    std::remove((cache + ".shard-0-of-2.journal").c_str());
    return lr.entries;
  };

  const ResultJournal::Entries with_memo = shard_rows(true);
  const ResultJournal::Entries without_memo = shard_rows(false);
  ASSERT_EQ(with_memo.size(), without_memo.size());
  ASSERT_GT(with_memo.size(), 0u);
  for (const auto& [key, row] : with_memo) {
    const auto it = without_memo.find(key);
    ASSERT_NE(it, without_memo.end()) << "missing key: " << key;
    EXPECT_EQ(row, it->second) << "row differs for " << key;
  }
}

TEST(StageMemo, EightWorkersHammeringSharedMemoAgreeWithPlain) {
  // 8 threads × 6 points through one StageMemo: every worker must get the
  // same bytes the memo-less pipeline computes. Under the TSan CI leg this
  // is the data-race hammer for the shared tables.
  const apps::AppModel& app = apps::find_app("btmz");
  std::vector<MachineConfig> configs;
  for (const auto& core : cpusim::core_presets()) {
    MachineConfig c;
    c.core = core;
    configs.push_back(c);
  }
  for (int vec : {256, 512}) {
    MachineConfig c;
    c.vector_bits = vec;
    configs.push_back(c);
  }

  std::vector<std::vector<std::string>> expected;
  Pipeline plain(fast_options());
  expected.reserve(configs.size());
  for (const auto& c : configs)
    expected.push_back(DseEngine::to_row(plain.run(app, c)));

  auto memo = std::make_shared<StageMemo>(
      pipeline_options_fingerprint(fast_options()));
  constexpr int kWorkers = 8;
  std::vector<std::vector<std::vector<std::string>>> got(kWorkers);
  parallel_workers(kWorkers, [&](int w) {
    Pipeline local(fast_options(), memo);
    for (const auto& c : configs)
      got[static_cast<std::size_t>(w)].push_back(
          DseEngine::to_row(local.run(app, c)));
  });

  for (int w = 0; w < kWorkers; ++w)
    EXPECT_EQ(got[static_cast<std::size_t>(w)], expected)
        << "worker " << w << " diverged";
  const MemoStats stats = memo->stats();
  EXPECT_GT(stats.total_hits(), 0u);
}

}  // namespace
}  // namespace musa::core
