// Unit and property tests for the DRAM system model.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "dramsim/dram.hpp"
#include "dramsim/timing.hpp"

namespace musa::dramsim {
namespace {

TEST(Timing, Ddr4PeakBandwidth) {
  const DramTiming t = ddr4_2333();
  // 2333 MT/s x 8 B = 18.66 GB/s per channel.
  EXPECT_NEAR(t.peak_gbps(), 18.66, 0.1);
  EXPECT_NEAR(t.burst_ns(), 64.0 / t.bytes_per_clock * t.tCK, 1e-12);
}

TEST(Timing, HbmFasterAndWider) {
  EXPECT_GT(hbm2().peak_gbps(), ddr4_2333().peak_gbps());
  EXPECT_GT(hbm2().banks, ddr4_2333().banks);
  EXPECT_EQ(default_channels(MemTech::kHbm2), 16);
  EXPECT_EQ(default_channels(MemTech::kDdr4_2333), 4);
}

TEST(Timing, NamesResolve) {
  EXPECT_STREQ(mem_tech_name(MemTech::kDdr4_2333), "DDR4-2333");
  EXPECT_STREQ(mem_tech_name(MemTech::kHbm2), "HBM2");
  EXPECT_EQ(timing_for(MemTech::kHbm2).name, "HBM2");
}

TEST(DramChannel, RowHitFasterThanRowMiss) {
  // Banks are line-interleaved: line 16 (addr 1024) maps back to bank 0
  // within the same row (16 banks, 8 kB rows).
  DramChannel ch(ddr4_2333());
  const double t0 = ch.request(0.0, 0, false);          // row miss (ACT)
  const double t1 = ch.request(t0, 1024, false) - t0;   // same bank+row: hit
  const double far = 1ull << 26;
  const double t2_start = t0 + t1 + 1000;
  const double t2 =
      ch.request(t2_start, far, false) - t2_start;  // new row in same bank?
  EXPECT_LT(t1, t0);  // row hit cheaper than cold ACT+CAS
  EXPECT_GT(ch.counters().row_hits, 0u);
  EXPECT_GT(t2, 0.0);
}

TEST(DramChannel, CountsCommands) {
  DramChannel ch(ddr4_2333());
  ch.request(0.0, 0, false);
  ch.request(100.0, 0, true);
  EXPECT_EQ(ch.counters().reads, 1u);
  EXPECT_EQ(ch.counters().writes, 1u);
  EXPECT_GE(ch.counters().acts, 1u);
  ch.reset_counters();
  EXPECT_EQ(ch.counters().reads, 0u);
}

TEST(DramChannel, RefreshBlocksBank) {
  DramTiming t = ddr4_2333();
  DramChannel ch(t);
  ch.request(0.0, 0, false);
  // Jump past several refresh intervals: the request must account refreshes.
  const double late = 5 * t.tREFI + 1.0;
  ch.request(late, 64, false);
  EXPECT_GE(ch.counters().refreshes, 5u);
}

TEST(DramChannel, BandwidthCeilingHolds) {
  // Offered load far above peak: completion time is bounded below by
  // bytes / peak bandwidth (the data bus serialises).
  DramTiming t = ddr4_2333();
  DramChannel ch(t);
  const int n = 2000;
  double last = 0.0;
  for (int i = 0; i < n; ++i)
    last = ch.request(0.0, static_cast<std::uint64_t>(i) * 64, false);
  const double min_ns = n * t.burst_ns();
  EXPECT_GE(last, min_ns * 0.99);
  // And not wildly above it for a sequential (row-friendly) pattern.
  EXPECT_LT(last, min_ns * 3.0);
}

TEST(DramChannel, MonotonicCompletionForOrderedArrivals) {
  DramChannel ch(ddr4_2333());
  Rng rng(9);
  double t = 0.0, last_done = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += rng.next_double() * 10.0;
    const double done = ch.request(t, rng.next_u64() % (1ull << 30), false);
    EXPECT_GE(done, t);
    // Data bus serialisation: completions are ordered.
    EXPECT_GE(done, last_done);
    last_done = done;
  }
}

TEST(DramSystem, InterleavesChannels) {
  DramSystem sys(ddr4_2333(), 4);
  for (int i = 0; i < 8; ++i)
    sys.request(0.0, static_cast<std::uint64_t>(i) * 64, false);
  EXPECT_EQ(sys.total_counters().reads, 8u);
  EXPECT_NEAR(sys.peak_gbps(), 4 * 18.66, 0.5);
}

TEST(DramSystem, MoreChannelsFinishSooner) {
  auto drain_time = [&](int channels) {
    DramSystem sys(ddr4_2333(), channels);
    double last = 0.0;
    for (int i = 0; i < 4000; ++i)
      last = std::max(last, sys.request(0.0, static_cast<std::uint64_t>(i) * 64,
                                        false));
    return last;
  };
  const double t4 = drain_time(4);
  const double t8 = drain_time(8);
  EXPECT_LT(t8, t4);
  EXPECT_GT(t4 / t8, 1.5);  // bandwidth-bound: ~2x
  EXPECT_LT(t4 / t8, 2.5);
}

TEST(DramSystem, ToleratesOutOfOrderArrivalAcrossChannels) {
  DramSystem sys(ddr4_2333(), 2);
  sys.request(1000.0, 0, false);
  // Earlier time on the same channel: clamped, must not throw or go back.
  const double done = sys.request(10.0, 128, false);
  EXPECT_GE(done, 1000.0);
}

TEST(DramSystem, RejectsZeroChannels) {
  EXPECT_THROW(DramSystem(ddr4_2333(), 0), SimError);
}

TEST(DramCounters, MergeAccumulates) {
  DramCounters a, b;
  a.reads = 3;
  a.busy_ns = 1.5;
  b.reads = 4;
  b.acts = 2;
  b.busy_ns = 2.5;
  a.merge(b);
  EXPECT_EQ(a.reads, 7u);
  EXPECT_EQ(a.acts, 2u);
  EXPECT_DOUBLE_EQ(a.busy_ns, 4.0);
}

TEST(Timing, AllStandardsHaveSaneParameters) {
  for (auto tech : {MemTech::kDdr4_2333, MemTech::kDdr4_2666,
                    MemTech::kLpddr4_3200, MemTech::kWideIo2,
                    MemTech::kHbm2}) {
    const DramTiming t = timing_for(tech);
    EXPECT_GT(t.tCK, 0.0) << t.name;
    EXPECT_GT(t.peak_gbps(), 1.0) << t.name;
    EXPECT_GT(t.banks, 0) << t.name;
    EXPECT_GE(t.tRAS, t.tRCD) << t.name;
    EXPECT_GT(t.tREFI, t.tRFC) << t.name;
    EXPECT_EQ(t.name, mem_tech_name(tech));
    EXPECT_GE(default_channels(tech), 1) << t.name;
  }
}

TEST(Timing, BandwidthOrderingAcrossStandards) {
  // Per-channel peak: HBM2 > Wide-IO2 > DDR4-2666 > DDR4-2333 > LPDDR4.
  EXPECT_GT(hbm2().peak_gbps(), ddr4_2666().peak_gbps());
  EXPECT_GT(wide_io2().peak_gbps(), ddr4_2333().peak_gbps());
  EXPECT_GT(ddr4_2666().peak_gbps(), ddr4_2333().peak_gbps());
  EXPECT_LT(lpddr4_3200().peak_gbps(), ddr4_2333().peak_gbps());
}

// Property: random traffic at increasing intensity yields increasing
// average latency (queueing), for every technology.
class QueueingSweep : public ::testing::TestWithParam<MemTech> {};

TEST_P(QueueingSweep, LatencyGrowsWithLoad) {
  auto avg_latency = [&](double interarrival_ns) {
    DramSystem sys(timing_for(GetParam()), 1);
    Rng rng(5);
    double t = 0.0, total = 0.0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
      t += interarrival_ns;
      total += sys.request(t, rng.next_u64() % (1ull << 28), false) - t;
    }
    return total / n;
  };
  EXPECT_GT(avg_latency(2.0), avg_latency(50.0));
}

INSTANTIATE_TEST_SUITE_P(Techs, QueueingSweep,
                         ::testing::Values(MemTech::kDdr4_2333,
                                           MemTech::kDdr4_2666,
                                           MemTech::kLpddr4_3200,
                                           MemTech::kWideIo2,
                                           MemTech::kHbm2));

}  // namespace
}  // namespace musa::dramsim
