// Tests for the OpenMP worksharing builders, plus property-based fuzzing of
// the runtime scheduler over random task DAGs.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "cpusim/runtime.hpp"
#include "trace/worksharing.hpp"

namespace musa::trace {
namespace {

const std::vector<cpusim::TaskTiming> kUnitTiming = {
    {.seconds_per_work = 1e-6, .mem_stall_frac = 0.0, .dram_gbps = 0.0}};

cpusim::RuntimeConfig team(int threads) {
  return {.cores = threads, .dispatch_overhead_s = 0.0,
          .bw_capacity_gbps = 0.0};
}

TEST(ParallelFor, StaticDefaultMakesOneChunkPerThread) {
  const Region r = make_parallel_for(100, 8, OmpSchedule::kStatic);
  ASSERT_EQ(r.tasks.size(), 8u);
  EXPECT_DOUBLE_EQ(r.total_work(), 100.0);
  // Remainder spread: chunks are 13 or 12 iterations.
  for (const auto& t : r.tasks) {
    EXPECT_GE(t.work, 12.0);
    EXPECT_LE(t.work, 13.0);
  }
}

TEST(ParallelFor, StaticChunkedSerializesPerThreadSlot) {
  const Region r =
      make_parallel_for(64, 4, OmpSchedule::kStatic, /*chunk=*/4);
  EXPECT_EQ(r.tasks.size(), 16u);
  // Chunks 0..3 have no deps (first per slot); later chunks chain.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.tasks[i].deps.empty());
  for (std::size_t i = 4; i < r.tasks.size(); ++i) {
    ASSERT_EQ(r.tasks[i].deps.size(), 1u);
    EXPECT_EQ(r.tasks[i].deps[0], static_cast<std::int32_t>(i - 4));
  }
}

TEST(ParallelFor, DynamicMakesFixedChunks) {
  const Region r =
      make_parallel_for(103, 8, OmpSchedule::kDynamic, /*chunk=*/10);
  ASSERT_EQ(r.tasks.size(), 11u);  // 10 full + 1 tail of 3
  EXPECT_DOUBLE_EQ(r.tasks.back().work, 3.0);
  for (const auto& t : r.tasks) EXPECT_TRUE(t.deps.empty());
}

TEST(ParallelFor, GuidedChunksShrink) {
  const Region r =
      make_parallel_for(1000, 4, OmpSchedule::kGuided, /*chunk=*/16);
  ASSERT_GT(r.tasks.size(), 4u);
  // Non-increasing chunk sizes until the floor.
  for (std::size_t i = 1; i < r.tasks.size(); ++i)
    EXPECT_LE(r.tasks[i].work, r.tasks[i - 1].work + 1e-9);
  EXPECT_DOUBLE_EQ(r.total_work(), 1000.0);
}

TEST(ParallelFor, IterationCostsSkewChunks) {
  // Triangular cost: later iterations are pricier; static default chunks
  // then carry unequal work — the load-imbalance OpenMP users know well.
  const Region r = make_parallel_for(
      100, 4, OmpSchedule::kStatic, 0,
      [](std::int64_t i) { return static_cast<double>(i); });
  ASSERT_EQ(r.tasks.size(), 4u);
  EXPECT_LT(r.tasks.front().work, r.tasks.back().work);
}

TEST(ParallelFor, DynamicBeatsStaticOnSkewedLoops) {
  const auto cost = [](std::int64_t i) {
    return i < 90 ? 1.0 : 30.0;  // a few very expensive tail iterations
  };
  const Region stat = make_parallel_for(100, 4, OmpSchedule::kStatic, 0, cost);
  const Region dyn =
      make_parallel_for(100, 4, OmpSchedule::kDynamic, 2, cost);
  cpusim::RuntimeSim sim;
  const double t_static = sim.run(stat, kUnitTiming, team(4)).seconds;
  const double t_dynamic = sim.run(dyn, kUnitTiming, team(4)).seconds;
  EXPECT_LT(t_dynamic, t_static);
}

TEST(ParallelFor, RejectsDegenerateInput) {
  EXPECT_THROW(make_parallel_for(0, 4, OmpSchedule::kStatic), SimError);
  EXPECT_THROW(make_parallel_for(10, 0, OmpSchedule::kStatic), SimError);
  EXPECT_THROW(make_parallel_for(10, 4, OmpSchedule::kDynamic, -1), SimError);
}

TEST(Critical, SectionsSerialize) {
  Region r = make_parallel_for(8, 8, OmpSchedule::kStatic);
  for (int i = 0; i < 4; ++i) add_critical(r, 1.0);
  cpusim::RuntimeSim sim;
  const auto out = sim.run(r, kUnitTiming, team(8));
  // 1 unit of parallel work + 4 serialized critical units.
  EXPECT_NEAR(out.seconds, 5e-6, 1e-7);
}

TEST(TaskTree, LeavesCarryTheWork) {
  const Region r = make_task_tree(16, 2.0);
  int leaves = 0;
  for (const auto& t : r.tasks)
    if (t.work == 2.0) ++leaves;
  EXPECT_EQ(leaves, 16);
  // Tree parallelises: 16 leaves on 16 cores ~ depth * split + leaf time.
  cpusim::RuntimeSim sim;
  const auto out = sim.run(r, kUnitTiming, team(16));
  EXPECT_LT(out.seconds, 16 * 2e-6 / 4);  // far better than serial
}

TEST(TaskTree, SingleLeafIsOneTask) {
  const Region r = make_task_tree(1, 3.0);
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_DOUBLE_EQ(r.tasks[0].work, 3.0);
}

// ---- Property-based fuzz: random DAGs through the scheduler --------------
//
// For any DAG and any core count, the makespan must satisfy the classic
// list-scheduling bounds: at least max(critical path, total work / cores),
// at most total work (+ the 2-approximation bound for safety margins).
class DagFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DagFuzz, MakespanWithinListSchedulingBounds) {
  Rng rng(GetParam());
  Region region;
  const int n = 20 + static_cast<int>(rng.next_below(120));
  std::vector<double> path(n, 0.0);  // longest path ending at i (seconds)
  double critical = 0.0, total = 0.0;
  for (int i = 0; i < n; ++i) {
    TaskInstance t;
    t.type = 0;
    t.work = 0.5 + rng.next_double() * 4.0;
    double longest = 0.0;
    if (i > 0) {
      const int deps = static_cast<int>(rng.next_below(3));
      for (int d = 0; d < deps; ++d) {
        const auto dep = static_cast<std::int32_t>(rng.next_below(i));
        if (std::find(t.deps.begin(), t.deps.end(), dep) == t.deps.end()) {
          t.deps.push_back(dep);
          longest = std::max(longest, path[dep]);
        }
      }
    }
    path[i] = longest + t.work * 1e-6;
    critical = std::max(critical, path[i]);
    total += t.work * 1e-6;
    region.tasks.push_back(std::move(t));
  }

  cpusim::RuntimeSim sim;
  for (int cores : {1, 3, 8, 32}) {
    const auto out = sim.run(region, kUnitTiming, team(cores));
    const double lower = std::max(critical, total / cores);
    EXPECT_GE(out.seconds, lower * 0.999) << "cores=" << cores;
    EXPECT_LE(out.seconds, total * 1.001) << "cores=" << cores;
    // Graham's bound for list scheduling: <= work/cores + critical path.
    EXPECT_LE(out.seconds, total / cores + critical + 1e-12)
        << "cores=" << cores;
    EXPECT_NEAR(out.busy_seconds, total, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace musa::trace
