// Unit tests for the MUSA core: configuration space, pipeline plumbing,
// and the DSE engine's normalisation machinery.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/journal.hpp"
#include "core/config_space.hpp"
#include "core/dse.hpp"
#include "core/pipeline.hpp"

namespace musa::core {
namespace {

TEST(ConfigSpace, Has864UniquePoints) {
  const auto space = ConfigSpace::full_space();
  ASSERT_EQ(space.size(), 864u);
  std::unordered_set<std::string> ids;
  for (const auto& c : space) ids.insert(c.id());
  EXPECT_EQ(ids.size(), 864u);
}

TEST(ConfigSpace, DimensionsMatchTableI) {
  EXPECT_EQ(ConfigSpace::cache_labels().size(), 3u);
  EXPECT_EQ(ConfigSpace::frequencies().size(), 4u);
  EXPECT_EQ(ConfigSpace::vector_widths().size(), 3u);
  EXPECT_EQ(ConfigSpace::channel_counts().size(), 2u);
  EXPECT_EQ(ConfigSpace::core_counts().size(), 3u);
  // 4 x 3 x 4 x 3 x 2 x 3 = 864.
  EXPECT_EQ(4 * 3 * 4 * 3 * 2 * 3, 864);
}

TEST(MachineConfig, IdEncodesEveryDimension) {
  MachineConfig c;
  c.core = cpusim::core_high();
  c.cache_label = "96M:1M";
  c.freq_ghz = 2.5;
  c.vector_bits = 512;
  c.mem_channels = 8;
  c.cores = 64;
  const std::string id = c.id();
  EXPECT_NE(id.find("high"), std::string::npos);
  EXPECT_NE(id.find("96M:1M"), std::string::npos);
  EXPECT_NE(id.find("2.5GHz"), std::string::npos);
  EXPECT_NE(id.find("512b"), std::string::npos);
  EXPECT_NE(id.find("8ch"), std::string::npos);
  EXPECT_NE(id.find("64c"), std::string::npos);
}

TEST(MachineConfig, IdWithoutBlanksOneDimension) {
  MachineConfig a, b;
  a.vector_bits = 128;
  b.vector_bits = 512;
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(a.id_without("vector"), b.id_without("vector"));
  EXPECT_NE(a.id_without("cache"), b.id_without("vector"));
}

TEST(MachineConfig, CacheConfigResolvesLabels) {
  MachineConfig c;
  c.cache_label = "64M:512K";
  EXPECT_EQ(c.cache_config(4).l2.size_bytes, 512u * 1024);
  EXPECT_EQ(c.cache_config(4).num_cores, 4);
  c.cache_label = "bogus";
  EXPECT_THROW(c.cache_config(1), SimError);
}

TEST(ConfigSpace, TableIIConfigsMatchPaper) {
  const auto spmz = ConfigSpace::unconventional("spmz");
  ASSERT_EQ(spmz.size(), 3u);
  EXPECT_EQ(spmz[0].first, "Best-DSE");
  EXPECT_EQ(spmz[1].second.vector_bits, 1024);
  EXPECT_EQ(spmz[2].second.vector_bits, 2048);
  EXPECT_EQ(spmz[1].second.core.label, "high");

  const auto lulesh = ConfigSpace::unconventional("lulesh");
  EXPECT_EQ(lulesh[1].second.mem_channels, 16);
  EXPECT_EQ(lulesh[1].second.vector_bits, 64);
  EXPECT_EQ(lulesh[2].second.mem_tech, dramsim::MemTech::kHbm2);
  EXPECT_THROW(ConfigSpace::unconventional("hydro"), SimError);
}

TEST(Metrics, AccessorsReadResultFields) {
  SimResult r;
  r.region_seconds = 2.0;
  r.wall_seconds = 3.0;
  r.node_w = 10.0;
  EXPECT_DOUBLE_EQ(metrics::region_time(r), 2.0);
  EXPECT_DOUBLE_EQ(metrics::wall_time(r), 3.0);
  EXPECT_DOUBLE_EQ(metrics::node_power(r), 10.0);
  EXPECT_DOUBLE_EQ(metrics::region_energy(r), 20.0);
}

TEST(DseEngine, DimensionValueFormatting) {
  MachineConfig c;
  c.freq_ghz = 1.5;
  EXPECT_EQ(DseEngine::dimension_value(c, "freq"), "1.5GHz");
  EXPECT_EQ(DseEngine::dimension_value(c, "vector"), "128b");
  EXPECT_EQ(DseEngine::dimension_value(c, "channels"), "4ch-DDR4-2333");
  EXPECT_EQ(DseEngine::dimension_value(c, "cores"), "32c");
  EXPECT_EQ(DseEngine::dimension_value(c, "core"), "medium");
  EXPECT_EQ(DseEngine::dimension_value(c, "cache"), "32M:256K");
  EXPECT_THROW(DseEngine::dimension_value(c, "nope"), SimError);
}

// Pipeline smoke tests with a reduced trace window (fast).
PipelineOptions fast_options() {
  PipelineOptions o;
  o.warm_instrs = 40'000;
  o.measure_instrs = 40'000;
  return o;
}

TEST(Pipeline, ProducesSaneResult) {
  Pipeline p(fast_options());
  MachineConfig config;
  config.cores = 32;
  config.ranks = 16;  // small machine for speed
  const SimResult r = p.run(apps::find_app("btmz"), config);
  EXPECT_GT(r.region_seconds, 0.0);
  EXPECT_GT(r.wall_seconds, r.region_seconds);  // several iterations + MPI
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_LE(r.ipc, 8.0);
  EXPECT_GT(r.avg_concurrency, 1.0);
  EXPECT_LE(r.avg_concurrency, 32.0);
  EXPECT_GT(r.core_l1_w, 0.0);
  EXPECT_GT(r.l2_l3_w, 0.0);
  EXPECT_GT(r.dram_w, 0.0);
  EXPECT_NEAR(r.node_w, r.core_l1_w + r.l2_l3_w + r.dram_w, 1e-9);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_GT(r.mpki_l1, 0.0);
  EXPECT_GE(r.mpki_l1, r.mpki_l2);
}

TEST(Pipeline, MoreCoresShrinkRegion) {
  Pipeline p(fast_options());
  const auto& app = apps::find_app("hydro");
  MachineConfig one, many;
  one.cores = 1;
  one.ranks = 8;
  many.cores = 32;
  many.ranks = 8;
  const SimResult r1 = p.run(app, one);
  const SimResult r32 = p.run(app, many);
  EXPECT_GT(r1.region_seconds / r32.region_seconds, 10.0);
}

TEST(Pipeline, BurstModeMatchesHardwareAgnosticSemantics) {
  Pipeline p(fast_options());
  const auto& app = apps::find_app("spmz");
  const BurstResult serial = p.run_burst(app, 1, 8);
  const BurstResult par = p.run_burst(app, 32, 8);
  EXPECT_GT(serial.region_seconds, par.region_seconds);
  EXPECT_GT(serial.wall_seconds, par.wall_seconds);
  // Serial region equals the reference duration (no contention modelled).
  EXPECT_NEAR(serial.region_seconds,
              app.ref_region_seconds * apps::make_region(app).total_work() /
                  app.tasks_per_region,
              serial.region_seconds * 0.25);
}

TEST(Pipeline, HbmConfigsHaveNoEnergy) {
  Pipeline p(fast_options());
  MachineConfig c;
  c.mem_tech = dramsim::MemTech::kHbm2;
  c.mem_channels = 16;
  c.cores = 32;
  c.ranks = 8;
  const SimResult r = p.run(apps::find_app("lulesh"), c);
  EXPECT_FALSE(r.dram_power_known);
  EXPECT_DOUBLE_EQ(r.dram_w, 0.0);
  EXPECT_DOUBLE_EQ(r.energy_j, 0.0);
}

// Handcrafted DSE cache exercising the normalisation math end to end:
// two configs differing only in vector width, for two apps.
TEST(DseEngine, NormalisedRatiosFromSyntheticCache) {
  const std::string path =
      std::string(::testing::TempDir()) + "musa_dse_synthetic.csv";
  CsvDoc doc(
      {"app",        "core",      "cache",     "freq_ghz", "vector_bits",
       "channels",   "tech",      "cores",     "ranks",    "region_s",
       "wall_s",     "ipc",       "concurrency", "busy_frac",
       "contention", "mpki_l1",   "mpki_l2",   "mpki_l3",  "gmem_req_s",
       "mem_gbps",   "core_l1_w", "l2_l3_w",   "dram_w",   "dram_known",
       "node_w",     "energy_j"});
  auto row = [&](const std::string& app, int vec, double region,
                 double power) {
    doc.add_row({app, "medium", "32M:256K", "2", std::to_string(vec), "4",
                 "DDR4-2333", "32", "256", std::to_string(region), "1", "1",
                 "16", "0.5", "1", "10", "5", "1", "0.1", "10",
                 std::to_string(power * 0.7), std::to_string(power * 0.2),
                 std::to_string(power * 0.1), "1", std::to_string(power),
                 "1"});
  };
  row("hydro", 128, 1.0, 100.0);
  row("hydro", 512, 0.5, 150.0);  // 2x faster, 1.5x power
  row("lulesh", 128, 1.0, 100.0);
  row("lulesh", 512, 1.0, 130.0);  // no speed-up
  doc.save(path);

  // Restrict the plan to the synthetic grid so the coverage validator
  // accepts the cache as complete.
  SweepOptions opts;
  opts.verbose = false;
  // The handcrafted rows exercise the normalisation math, not the physics:
  // they are not energy-consistent, so skip the result invariant checks
  // (which would drop and recompute them).
  opts.verify = false;
  opts.apps = {"hydro", "lulesh"};
  MachineConfig narrow, wide;
  wide.vector_bits = 512;
  opts.configs = {narrow, wide};

  Pipeline p(fast_options());
  DseEngine dse(p, path, opts);
  const NormStat hydro_t = dse.normalized_ratio(
      "hydro", 32, "vector", "512b", "128b", metrics::region_time);
  EXPECT_EQ(hydro_t.n, 1);
  EXPECT_NEAR(hydro_t.mean, 0.5, 1e-9);  // speed-up = 1/mean = 2x
  const NormStat lulesh_t = dse.normalized_ratio(
      "lulesh", 32, "vector", "512b", "128b", metrics::region_time);
  EXPECT_NEAR(lulesh_t.mean, 1.0, 1e-9);

  const NormStat hydro_p = dse.normalized_ratio(
      "hydro", 32, "vector", "512b", "128b", metrics::node_power);
  EXPECT_NEAR(hydro_p.mean, 1.5, 1e-9);

  const auto split =
      dse.power_split("hydro", 32, "vector", "512b", "128b");
  EXPECT_NEAR(split.core_l1 + split.l2_l3 + split.dram, 1.5, 1e-9);
  EXPECT_NEAR(split.core_l1, 1.05, 1e-9);  // 0.7 x 1.5

  // Energy ratio = (power x region) ratio = 1.5 x 0.5.
  const NormStat hydro_e = dse.normalized_ratio(
      "hydro", 32, "vector", "512b", "128b", metrics::region_energy);
  EXPECT_NEAR(hydro_e.mean, 0.75, 1e-9);

  // Baseline itself normalises to exactly 1.
  const NormStat self = dse.normalized_ratio(
      "hydro", 32, "vector", "128b", "128b", metrics::region_time);
  EXPECT_NEAR(self.mean, 1.0, 1e-12);

  // Averages filter by dimension value.
  const NormStat avg =
      dse.average("hydro", 32, "vector", "512b", metrics::node_power);
  EXPECT_NEAR(avg.mean, 150.0, 1e-9);

  std::remove(path.c_str());
}

TEST(Pipeline, MultiPhaseRegionsSumAndScaleIndependently) {
  // Two-phase app: phase 0 scales to 64 cores, phase 1 (16 tasks) cannot.
  apps::AppModel app = apps::find_app("hydro");
  app.name = "twophase_pipe";
  apps::Phase solve;
  solve.name = "solve";
  solve.kernel = apps::find_app("spec3d").kernel;
  solve.task_instrs = 1e6;
  solve.tasks_per_region = 16;
  solve.task_imbalance = 0.1;
  solve.ref_region_seconds = 4e-3;
  app.extra_phases.push_back(solve);

  Pipeline p(fast_options());
  const BurstResult serial = p.run_burst(app, 1, 4);
  const BurstResult par = p.run_burst(app, 64, 4);
  const double speedup = serial.region_seconds / par.region_seconds;
  // Whole-timestep speed-up sits between the solve cap (~16x on its share)
  // and the flux region's near-linear scaling.
  EXPECT_GT(speedup, 10.0);
  EXPECT_LT(speedup, 50.0);

  MachineConfig config;
  config.cores = 32;
  config.ranks = 4;
  const SimResult r = p.run(app, config);
  EXPECT_GT(r.region_seconds, 0.0);
  EXPECT_GT(r.node_w, 0.0);

  // The same app without the extra phase has a shorter region.
  apps::AppModel single = apps::find_app("hydro");
  const SimResult rs = p.run(single, config);
  EXPECT_GT(r.region_seconds, rs.region_seconds);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

// Exact string round-trip of the cache row codec for every core preset and
// memory technology, including the HBM2 unknown-power flag.
TEST(DseEngine, RowRoundTripForEveryPresetAndTech) {
  for (const auto& preset : cpusim::core_presets()) {
    for (auto tech :
         {dramsim::MemTech::kDdr4_2333, dramsim::MemTech::kDdr4_2666,
          dramsim::MemTech::kLpddr4_3200, dramsim::MemTech::kWideIo2,
          dramsim::MemTech::kHbm2}) {
      SimResult r;
      r.app = "spec3d";
      r.config.core = preset;
      r.config.cache_label = "64M:512K";
      r.config.freq_ghz = 2.5;
      r.config.vector_bits = 256;
      r.config.mem_channels = 8;
      r.config.mem_tech = tech;
      r.config.cores = 64;
      r.config.ranks = 128;
      r.region_seconds = 0.03125;
      r.wall_seconds = 1.5;
      r.ipc = 2.25;
      r.avg_concurrency = 48.5;
      r.busy_fraction = 0.75;
      r.contention_factor = 1.125;
      r.mpki_l1 = 12.5;
      r.mpki_l2 = 6.25;
      r.mpki_l3 = 0.5;
      r.gmem_req_s = 0.015625;
      r.mem_gbps = 42.5;
      r.core_l1_w = 3.5;
      r.l2_l3_w = 2.25;
      r.dram_w = tech == dramsim::MemTech::kHbm2 ? 0.0 : 9.75;
      r.dram_power_known = tech != dramsim::MemTech::kHbm2;
      r.node_w = r.core_l1_w + r.l2_l3_w + r.dram_w;
      r.energy_j = r.dram_power_known ? r.node_w * r.wall_seconds : 0.0;

      const SimResult q = DseEngine::from_row(DseEngine::to_row(r));
      EXPECT_EQ(q.app, r.app);
      EXPECT_EQ(q.config.id(), r.config.id());
      EXPECT_EQ(q.config.mem_tech, r.config.mem_tech);
      EXPECT_EQ(q.config.ranks, r.config.ranks);
      EXPECT_DOUBLE_EQ(q.region_seconds, r.region_seconds);
      EXPECT_DOUBLE_EQ(q.wall_seconds, r.wall_seconds);
      EXPECT_DOUBLE_EQ(q.ipc, r.ipc);
      EXPECT_DOUBLE_EQ(q.avg_concurrency, r.avg_concurrency);
      EXPECT_DOUBLE_EQ(q.busy_fraction, r.busy_fraction);
      EXPECT_DOUBLE_EQ(q.contention_factor, r.contention_factor);
      EXPECT_DOUBLE_EQ(q.mpki_l1, r.mpki_l1);
      EXPECT_DOUBLE_EQ(q.mpki_l2, r.mpki_l2);
      EXPECT_DOUBLE_EQ(q.mpki_l3, r.mpki_l3);
      EXPECT_DOUBLE_EQ(q.gmem_req_s, r.gmem_req_s);
      EXPECT_DOUBLE_EQ(q.mem_gbps, r.mem_gbps);
      EXPECT_DOUBLE_EQ(q.core_l1_w, r.core_l1_w);
      EXPECT_DOUBLE_EQ(q.l2_l3_w, r.l2_l3_w);
      EXPECT_DOUBLE_EQ(q.dram_w, r.dram_w);
      EXPECT_EQ(q.dram_power_known, r.dram_power_known);
      EXPECT_DOUBLE_EQ(q.node_w, r.node_w);
      EXPECT_DOUBLE_EQ(q.energy_j, r.energy_j);
      // And the serialised form is a fixed point.
      EXPECT_EQ(DseEngine::to_row(q), DseEngine::to_row(r));
    }
  }
}

// A 2-app x 2-config plan small enough to sweep for real in tests.
SweepOptions tiny_sweep(int shard_index = 0, int shard_count = 1) {
  SweepOptions o;
  o.verbose = false;
  o.shard_index = shard_index;
  o.shard_count = shard_count;
  o.apps = {"hydro", "btmz"};
  MachineConfig narrow;
  narrow.cores = 4;
  narrow.ranks = 4;
  MachineConfig wide = narrow;
  wide.vector_bits = 512;
  o.configs = {narrow, wide};
  return o;
}

TEST(DseEngine, SweepJournalsAndResumesAfterKill) {
  const std::string cache =
      std::string(::testing::TempDir()) + "musa_dse_resume.csv";
  Pipeline p(fast_options());
  {
    DseEngine fresh(p, cache, tiny_sweep());
    fresh.clear_cache();
    const SweepReport rep = fresh.sweep();
    EXPECT_TRUE(rep.finalized);
    EXPECT_EQ(rep.total, 4u);
    EXPECT_EQ(rep.computed, 4u);
    EXPECT_EQ(rep.resumed, 0u);
    EXPECT_EQ(rep.stages.points, 4u);
    EXPECT_GT(rep.stages.kernel_s, 0.0);
    EXPECT_EQ(fresh.results().size(), 4u);
  }
  ASSERT_TRUE(CsvDoc::file_exists(cache));
  EXPECT_TRUE(find_journals(cache).empty());  // journal cleaned up
  const std::string reference = read_file(cache);

  // Simulate a kill -9 mid-sweep: no cache, a journal holding 2 of the 4
  // points (as the crashed process would have left behind).
  const CsvDoc doc = CsvDoc::load(cache);
  std::remove(cache.c_str());
  {
    ResultJournal j(cache + ".journal", DseEngine::csv_header());
    for (std::size_t i : {0u, 3u}) {
      const SimResult r = DseEngine::from_row(doc.rows()[i]);
      j.append(DseEngine::point_key(r.app, r.config), doc.rows()[i]);
    }
  }

  DseEngine resumed(p, cache, tiny_sweep());
  const SweepReport rep = resumed.sweep();
  EXPECT_TRUE(rep.finalized);
  EXPECT_EQ(rep.resumed, 2u);
  EXPECT_EQ(rep.computed, 2u);  // only the missing points re-ran
  // The merged cache is byte-identical to the uninterrupted run.
  EXPECT_EQ(read_file(cache), reference);
  EXPECT_TRUE(find_journals(cache).empty());
  resumed.clear_cache();
}

TEST(DseEngine, TruncatedCacheIsDetectedAndRepaired) {
  const std::string cache =
      std::string(::testing::TempDir()) + "musa_dse_trunc.csv";
  Pipeline p(fast_options());
  {
    DseEngine fresh(p, cache, tiny_sweep());
    fresh.clear_cache();
    fresh.sweep();
  }
  const std::string reference = read_file(cache);

  // Line-level truncation: drop the last data row. The old loader accepted
  // this silently; now it must be detected and exactly one point re-run.
  const std::string::size_type cut =
      reference.find_last_of('\n', reference.size() - 2);
  write_file(cache, reference.substr(0, cut + 1));
  {
    DseEngine eng(p, cache, tiny_sweep());
    const SweepReport rep = eng.sweep();
    EXPECT_TRUE(rep.finalized);
    EXPECT_EQ(rep.resumed, 3u);
    EXPECT_EQ(rep.computed, 1u);
    EXPECT_EQ(read_file(cache), reference);
  }

  // Byte-level truncation (ragged final row, as a kill mid-write leaves):
  // the damaged line is dropped, the three intact rows are salvaged, and
  // only the lost point is re-simulated.
  write_file(cache, reference.substr(0, cut + 11));
  {
    DseEngine eng(p, cache, tiny_sweep());
    const SweepReport rep = eng.sweep();
    EXPECT_TRUE(rep.finalized);
    EXPECT_EQ(rep.resumed, 3u);
    EXPECT_EQ(rep.computed, 1u);
    EXPECT_EQ(read_file(cache), reference);
  }

  // A duplicated row is also rejected, salvaged, and rewritten cleanly.
  const CsvDoc doc = CsvDoc::parse(reference);
  CsvDoc dup(doc.header());
  for (const auto& row : doc.rows()) dup.add_row(row);
  dup.add_row(doc.rows()[1]);
  dup.save(cache);
  {
    DseEngine eng(p, cache, tiny_sweep());
    const SweepReport rep = eng.sweep();
    EXPECT_TRUE(rep.finalized);
    EXPECT_EQ(rep.computed, 0u);  // all four points salvaged
    EXPECT_EQ(read_file(cache), reference);
    eng.clear_cache();
  }
}

TEST(DseEngine, ShardedJournalsMergeIntoSingleProcessResult) {
  const std::string cache =
      std::string(::testing::TempDir()) + "musa_dse_shard.csv";
  Pipeline p(fast_options());
  {
    DseEngine fresh(p, cache, tiny_sweep());
    fresh.clear_cache();
    fresh.sweep();
  }
  const std::string reference = read_file(cache);
  std::remove(cache.c_str());

  DseEngine s0(p, cache, tiny_sweep(0, 2));
  const SweepReport r0 = s0.sweep();
  EXPECT_FALSE(r0.finalized);
  EXPECT_EQ(r0.shard_points, 2u);
  EXPECT_EQ(r0.computed, 2u);
  EXPECT_THROW(s0.results(), SimError);  // siblings still missing
  EXPECT_EQ(find_journals(cache).size(), 1u);

  DseEngine s1(p, cache, tiny_sweep(1, 2));
  const SweepReport r1 = s1.sweep();
  EXPECT_TRUE(r1.finalized);  // last shard merges everything
  EXPECT_EQ(r1.computed, 2u);
  EXPECT_EQ(s1.results().size(), 4u);
  EXPECT_EQ(read_file(cache), reference);
  EXPECT_TRUE(find_journals(cache).empty());
  s1.clear_cache();
}

TEST(DseEngine, PowerMetricsSkipUnknownDramPower) {
  const std::string path =
      std::string(::testing::TempDir()) + "musa_dse_hbm.csv";
  SimResult ddr;
  ddr.app = "hydro";
  ddr.region_seconds = 1.0;
  ddr.wall_seconds = 2.0;
  ddr.core_l1_w = 70.0;
  ddr.l2_l3_w = 20.0;
  ddr.dram_w = 10.0;
  ddr.node_w = 100.0;
  ddr.energy_j = 200.0;
  SimResult hbm = ddr;
  hbm.config.mem_tech = dramsim::MemTech::kHbm2;
  hbm.config.mem_channels = 16;
  hbm.region_seconds = 0.5;
  hbm.dram_power_known = false;
  hbm.dram_w = 0.0;
  hbm.node_w = 90.0;  // partial: Core+L1 + L2+L3 only
  hbm.energy_j = 0.0;
  CsvDoc doc(DseEngine::csv_header());
  doc.add_row(DseEngine::to_row(ddr));
  doc.add_row(DseEngine::to_row(hbm));
  doc.save(path);

  SweepOptions opts;
  opts.verbose = false;
  opts.verify = false;  // handcrafted rows, not physically consistent
  opts.apps = {"hydro"};
  opts.configs = {ddr.config, hbm.config};
  Pipeline p(fast_options());
  DseEngine dse(p, path, opts);

  // Time metrics still see the HBM point...
  const NormStat t = dse.normalized_ratio(
      "hydro", 32, "channels", "16ch-HBM2", "4ch-DDR4-2333",
      metrics::region_time);
  EXPECT_EQ(t.n, 1);
  EXPECT_NEAR(t.mean, 0.5, 1e-12);
  // ...but power/energy aggregation excludes it instead of folding the
  // partial node_w into the ratio.
  const NormStat e = dse.normalized_ratio(
      "hydro", 32, "channels", "16ch-HBM2", "4ch-DDR4-2333",
      metrics::region_energy);
  EXPECT_EQ(e.n, 0);
  const NormStat pw =
      dse.average("hydro", 32, "channels", "16ch-HBM2", metrics::node_power);
  EXPECT_EQ(pw.n, 0);
  const NormStat tw =
      dse.average("hydro", 32, "channels", "16ch-HBM2", metrics::region_time);
  EXPECT_EQ(tw.n, 1);
  const auto split =
      dse.power_split("hydro", 32, "channels", "16ch-HBM2", "4ch-DDR4-2333");
  EXPECT_DOUBLE_EQ(split.core_l1, 0.0);
  EXPECT_DOUBLE_EQ(split.l2_l3, 0.0);
  EXPECT_DOUBLE_EQ(split.dram, 0.0);
  std::remove(path.c_str());
}

TEST(Pipeline, StageTimesAccumulatePerRun) {
  Pipeline p(fast_options());
  MachineConfig c;
  c.cores = 4;
  c.ranks = 4;
  EXPECT_EQ(p.stage_times().points, 0u);
  p.run(apps::find_app("hydro"), c);
  const StageTimes& st = p.stage_times();
  EXPECT_EQ(st.points, 1u);
  EXPECT_GT(st.kernel_s, 0.0);
  EXPECT_GE(st.burst_s, 0.0);
  EXPECT_GE(st.replay_s, 0.0);
  EXPECT_GE(st.power_s, 0.0);
  EXPECT_NEAR(st.total_s(),
              st.burst_s + st.kernel_s + st.replay_s + st.power_s, 1e-12);
  StageTimes other = st;
  other.merge(st);
  EXPECT_EQ(other.points, 2u);
  EXPECT_DOUBLE_EQ(other.kernel_s, 2 * st.kernel_s);
  p.reset_stage_times();
  EXPECT_EQ(p.stage_times().points, 0u);
}

TEST(DseEngine, RejectsInvalidShardSpec) {
  Pipeline p(fast_options());
  SweepOptions bad;
  bad.shard_index = 2;
  bad.shard_count = 2;
  EXPECT_THROW(DseEngine(p, "x.csv", bad), SimError);
  SweepOptions no_cache = tiny_sweep(0, 2);
  EXPECT_THROW(DseEngine(p, "", no_cache), SimError);
}

TEST(DseEngine, RejectsStaleCacheSchema) {
  const std::string path =
      std::string(::testing::TempDir()) + "musa_dse_stale.csv";
  CsvDoc doc({"wrong", "schema"});
  doc.add_row({"1", "2"});
  doc.save(path);
  Pipeline p(fast_options());
  DseEngine dse(p, path);
  EXPECT_THROW(dse.results(), SimError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace musa::core
