// Static design-space analyzer (verify/absdomain + verify/space_analysis):
// abstract-rule coverage, exact agreement with pointwise lint on the paper
// grid, O(boxes) analysis of the extended grid, randomized soundness over
// arbitrary sub-boxes, and the monotone metric bounds against computed rows
// from the committed sweep cache.
#include <algorithm>
#include <array>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.hpp"
#include "core/config_space.hpp"
#include "core/dse.hpp"
#include "core/pipeline.hpp"
#include "verify/absdomain.hpp"
#include "verify/config_rules.hpp"
#include "verify/space_analysis.hpp"

namespace {

using musa::core::ConfigSpace;
using musa::core::MachineConfig;
using musa::core::SpaceAxes;
using musa::verify::AgreementReport;
using musa::verify::AnalysisReport;
using musa::verify::Box;
using musa::verify::BoxClass;
using musa::verify::BoxVerdict;
using musa::verify::Tri;

TEST(AbsDomain, EveryConcreteRuleHasAnAbstractCounterpart) {
  const std::vector<std::string>& concrete = musa::verify::machine_rule_ids();
  const auto& abstract = musa::verify::abstract_machine_rules();
  ASSERT_EQ(concrete.size(), abstract.size());
  for (std::size_t i = 0; i < concrete.size(); ++i)
    EXPECT_EQ(concrete[i], abstract[i].id) << "catalogue order diverged at " << i;
}

TEST(AbsDomain, RuleIdsAreUniqueAndDotted) {
  std::vector<std::string> ids = musa::verify::machine_rule_ids();
  for (const auto& id : ids)
    EXPECT_NE(id.find('.'), std::string::npos) << id << " is not dotted";
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "duplicate rule id";
}

TEST(AbsDomain, FullPaperBoxClassifiesSat) {
  const SpaceAxes axes = SpaceAxes::paper();
  const BoxVerdict v = musa::verify::classify_box(axes, Box::full(axes));
  EXPECT_EQ(v.status, Tri::kSat);
  EXPECT_TRUE(v.rule.empty());
}

TEST(SpaceAnalysis, PaperGridIsOneFeasibleBox) {
  const SpaceAxes axes = SpaceAxes::paper();
  const AnalysisReport report = musa::verify::analyze(axes);
  EXPECT_EQ(report.total_points, 864u);
  EXPECT_EQ(report.feasible_points, 864u);
  ASSERT_EQ(report.boxes.size(), 1u);
  EXPECT_EQ(report.boxes[0].cls, BoxClass::kFeasible);
  for (const auto& [rule, count] : report.kill_counts)
    EXPECT_EQ(count, 0u) << rule;
  for (int d = 0; d < SpaceAxes::kDims; ++d)
    for (int i = 0; i < axes.dim_size(d); ++i)
      EXPECT_TRUE(report.dim_feasible[d][i])
          << axes.dim_name(d) << "[" << i << "]";
}

TEST(SpaceAnalysis, PaperGridAgreesExactlyWithPointwiseLint) {
  const SpaceAxes axes = SpaceAxes::paper();
  const AnalysisReport report = musa::verify::analyze(axes);
  const AgreementReport agree = musa::verify::check_agreement(axes, report);
  EXPECT_EQ(agree.points, 864u);
  EXPECT_EQ(agree.disagreements, 0u)
      << (agree.examples.empty() ? "" : agree.examples[0]);
}

TEST(SpaceAnalysis, PaperPlanReproducesFullSpaceOrder) {
  const SpaceAxes axes = SpaceAxes::paper();
  const AnalysisReport report = musa::verify::analyze(axes);
  const std::vector<std::uint64_t> linear =
      musa::verify::feasible_indices(axes, report);
  const std::vector<MachineConfig> reference = ConfigSpace::full_space();
  ASSERT_EQ(linear.size(), reference.size());
  for (std::size_t i = 0; i < linear.size(); ++i)
    EXPECT_EQ(axes.config_at(linear[i]).id(), reference[i].id())
        << "plan order diverged at index " << i;
}

TEST(SpaceAnalysis, ExtendedGridAnalyzedWithoutEnumeratingPoints) {
  const SpaceAxes axes = SpaceAxes::extended();
  ASSERT_GE(axes.points(), 1000000u) << "extended grid shrank below 10^6";
  const AnalysisReport report = musa::verify::analyze(axes);
  EXPECT_EQ(report.total_points, axes.points());

  // O(boxes): the partition must be orders of magnitude below the point
  // count (the acceptance claim "without enumerating points").
  EXPECT_LT(report.boxes_classified, 10000u);
  EXPECT_LT(report.boxes.size(), 1000u);

  // The grid deliberately contains infeasible regions; each expected killer
  // must claim points, and kill counts + feasible must cover the grid.
  std::uint64_t killed = 0;
  std::uint64_t by_rule[4] = {0, 0, 0, 0};
  for (const auto& [rule, count] : report.kill_counts) {
    killed += count;
    if (rule == "vector.width") by_rule[0] = count;
    if (rule == "mem.channels") by_rule[1] = count;
    if (rule == "machine.size") by_rule[2] = count;
    if (rule == "cache.inclusion") by_rule[3] = count;
  }
  EXPECT_EQ(report.feasible_points + killed, report.total_points);
  EXPECT_GT(by_rule[0], 0u) << "vector.width";
  EXPECT_GT(by_rule[1], 0u) << "mem.channels";
  EXPECT_GT(by_rule[2], 0u) << "machine.size";
  EXPECT_GT(by_rule[3], 0u) << "cache.inclusion";
  EXPECT_GT(report.feasible_points, 0u);
  EXPECT_LT(report.feasible_points, report.total_points);
}

/// The grid restricted to one box: per-dimension slices of the axis lists.
SpaceAxes slice(const SpaceAxes& axes, const Box& box) {
  SpaceAxes out;
  const auto cut = [&box](auto& dst, const auto& src, int dim) {
    dst.assign(src.begin() + box.begin[dim], src.begin() + box.end[dim]);
  };
  cut(out.core_presets, axes.core_presets, SpaceAxes::kDimCore);
  cut(out.cache_labels, axes.cache_labels, SpaceAxes::kDimCache);
  cut(out.freqs_ghz, axes.freqs_ghz, SpaceAxes::kDimFreq);
  cut(out.vector_bits, axes.vector_bits, SpaceAxes::kDimVector);
  cut(out.mem_channels, axes.mem_channels, SpaceAxes::kDimChannels);
  cut(out.mem_techs, axes.mem_techs, SpaceAxes::kDimTech);
  cut(out.core_counts, axes.core_counts, SpaceAxes::kDimCores);
  cut(out.rank_counts, axes.rank_counts, SpaceAxes::kDimRanks);
  return out;
}

// Randomized soundness property: for ~200 random boxes of the extended grid
// the partition must agree with exhaustive pointwise check_machine() at
// every point inside — no box labelled feasible may contain a violating
// point and vice versa, and the killing rule must equal the first pointwise
// violation. Widths are capped so the exhaustive cross-check stays cheap.
TEST(SpaceAnalysis, RandomBoxesAgreeWithExhaustivePointwiseCheck) {
  const SpaceAxes axes = SpaceAxes::extended();
  std::mt19937 rng(20260808u);
  for (int trial = 0; trial < 200; ++trial) {
    Box box;
    for (int d = 0; d < SpaceAxes::kDims; ++d) {
      const int size = axes.dim_size(d);
      std::uniform_int_distribution<int> width_dist(1, std::min(2, size));
      const int width = width_dist(rng);
      std::uniform_int_distribution<int> begin_dist(0, size - width);
      box.begin[d] = begin_dist(rng);
      box.end[d] = box.begin[d] + width;
    }
    const SpaceAxes sub = slice(axes, box);
    const AnalysisReport report = musa::verify::analyze(sub);
    const AgreementReport agree = musa::verify::check_agreement(sub, report);
    ASSERT_EQ(agree.disagreements, 0u)
        << "trial " << trial << " box " << box.str() << ": "
        << (agree.examples.empty() ? "" : agree.examples[0]);

    // classify_box on the *unsplit* box must itself be sound: a decided
    // verdict has to match every point (kUnknown is always allowed).
    const BoxVerdict v = musa::verify::classify_box(sub, Box::full(sub));
    if (v.status == Tri::kSat) {
      ASSERT_EQ(report.feasible_points, report.total_points)
          << "trial " << trial << ": kSat box contains violating points";
    }
    if (v.status == Tri::kViolated) {
      ASSERT_EQ(report.feasible_points, 0u)
          << "trial " << trial << ": kViolated box contains feasible points";
    }
  }
}

TEST(SpaceAnalysis, SingletonBoxesAlwaysDecide) {
  const SpaceAxes axes = SpaceAxes::extended();
  std::mt19937 rng(7u);
  for (int trial = 0; trial < 64; ++trial) {
    Box box;
    for (int d = 0; d < SpaceAxes::kDims; ++d) {
      std::uniform_int_distribution<int> dist(0, axes.dim_size(d) - 1);
      box.begin[d] = dist(rng);
      box.end[d] = box.begin[d] + 1;
    }
    const BoxVerdict v = musa::verify::classify_box(axes, box);
    ASSERT_NE(v.status, Tri::kUnknown)
        << "exactness-at-singletons contract broken at " << box.str();
    std::array<int, SpaceAxes::kDims> idx{};
    for (int d = 0; d < SpaceAxes::kDims; ++d) idx[d] = box.begin[d];
    const MachineConfig config = axes.config_at(idx);
    const auto violations = musa::verify::check_machine(config);
    if (v.status == Tri::kSat) {
      EXPECT_TRUE(violations.empty()) << config.id();
    } else {
      ASSERT_FALSE(violations.empty()) << config.id();
      EXPECT_EQ(v.rule, violations[0].rule) << config.id();
    }
  }
}

TEST(SpaceAnalysis, MetricBoundsAreMonotoneInBoxInclusion) {
  const SpaceAxes axes = SpaceAxes::extended();
  const Box full = Box::full(axes);
  const musa::verify::MetricBounds outer =
      musa::verify::bound_metrics(axes, full);
  std::mt19937 rng(99u);
  for (int trial = 0; trial < 32; ++trial) {
    Box box;
    for (int d = 0; d < SpaceAxes::kDims; ++d) {
      const int size = axes.dim_size(d);
      std::uniform_int_distribution<int> begin_dist(0, size - 1);
      box.begin[d] = begin_dist(rng);
      std::uniform_int_distribution<int> end_dist(box.begin[d] + 1, size);
      box.end[d] = end_dist(rng);
    }
    const musa::verify::MetricBounds inner =
        musa::verify::bound_metrics(axes, box);
    EXPECT_LE(inner.ipc_hi, outer.ipc_hi);
    EXPECT_LE(inner.instr_per_s_hi, outer.instr_per_s_hi);
    EXPECT_LE(inner.bw_gbps_hi, outer.bw_gbps_hi);
    // The roofline lower bound is anti-monotone: a subset can only be
    // slower-or-equal at its best corner.
    EXPECT_GE(inner.min_time_s(1e12, 1e12), outer.min_time_s(1e12, 1e12));
  }
}

/// Locates the committed sweep cache: tests run from the build tree, the
/// cache lives at the repo root (or wherever MUSA_DSE_CACHE points).
std::string find_cache() {
  if (const char* env = std::getenv("MUSA_DSE_CACHE"))
    if (musa::CsvDoc::file_exists(env)) return env;
  for (const char* p : {"dse_cache.csv", "../dse_cache.csv",
                        "../../dse_cache.csv", "../../../dse_cache.csv"})
    if (musa::CsvDoc::file_exists(p)) return p;
  return {};
}

// Monotone-bound property against real computed rows: every row of the
// committed cache must sit under the static bounds of its singleton box —
// the per-point result invariants, re-derived through the analyzer's
// region-level lifting.
TEST(SpaceAnalysis, StaticBoundsHoldForCommittedCacheRows) {
  const std::string path = find_cache();
  if (path.empty()) GTEST_SKIP() << "committed dse_cache.csv not found";
  const musa::CsvDoc doc = musa::CsvDoc::load(path);
  ASSERT_EQ(doc.header(), musa::core::DseEngine::csv_header());

  const SpaceAxes axes = SpaceAxes::paper();
  const auto index_of = [](const auto& values, const auto& v) {
    for (std::size_t i = 0; i < values.size(); ++i)
      if (values[i] == v) return static_cast<int>(i);
    return -1;
  };
  std::size_t checked = 0;
  for (const auto& row : doc.rows()) {
    const musa::core::SimResult r = musa::core::DseEngine::from_row(row);
    std::array<int, SpaceAxes::kDims> idx{};
    int core = -1;
    for (std::size_t i = 0; i < axes.core_presets.size(); ++i)
      if (axes.core_presets[i].label == r.config.core.label)
        core = static_cast<int>(i);
    idx[SpaceAxes::kDimCore] = core;
    idx[SpaceAxes::kDimCache] = index_of(axes.cache_labels, r.config.cache_label);
    idx[SpaceAxes::kDimFreq] = index_of(axes.freqs_ghz, r.config.freq_ghz);
    idx[SpaceAxes::kDimVector] = index_of(axes.vector_bits, r.config.vector_bits);
    idx[SpaceAxes::kDimChannels] =
        index_of(axes.mem_channels, r.config.mem_channels);
    idx[SpaceAxes::kDimTech] = index_of(axes.mem_techs, r.config.mem_tech);
    idx[SpaceAxes::kDimCores] = index_of(axes.core_counts, r.config.cores);
    idx[SpaceAxes::kDimRanks] = index_of(axes.rank_counts, r.config.ranks);
    ASSERT_TRUE(std::all_of(idx.begin(), idx.end(),
                            [](int i) { return i >= 0; }))
        << "cache row off the paper grid: " << r.config.id();

    Box box;
    for (int d = 0; d < SpaceAxes::kDims; ++d) {
      box.begin[d] = idx[d];
      box.end[d] = idx[d] + 1;
    }
    const musa::verify::MetricBounds b = musa::verify::bound_metrics(axes, box);
    EXPECT_LE(r.ipc, b.ipc_hi * (1.0 + 1e-6)) << r.config.id();
    // result.bandwidth grants the model 2% slack over the aggregate peak;
    // the static bound inherits it.
    EXPECT_LE(r.mem_gbps, b.bw_gbps_hi * 1.02 * (1.0 + 1e-6)) << r.config.id();
    ++checked;
  }
  EXPECT_EQ(checked, doc.rows().size());
}

TEST(DseEngine, AxesDrivenPlanSkipsInfeasibleBoxes) {
  // A 2-point grid with one statically-infeasible value (8192-bit vectors):
  // the analyzer must cut it at plan construction, before any simulation.
  SpaceAxes axes;
  axes.core_presets = {musa::cpusim::core_high()};
  axes.cache_labels = {"64M:512K"};
  axes.freqs_ghz = {2.0};
  axes.vector_bits = {512, 8192};
  axes.mem_channels = {8};
  axes.mem_techs = {musa::dramsim::MemTech::kDdr4_2666};
  axes.core_counts = {8};
  axes.rank_counts = {256};

  musa::core::SweepOptions opts;
  opts.axes = axes;
  opts.apps = {"hydro"};
  opts.verbose = false;
  musa::core::Pipeline pipeline;
  musa::core::DseEngine dse(pipeline, /*cache_path=*/"", opts);
  const musa::core::SweepReport rep = dse.sweep();
  EXPECT_EQ(rep.statically_skipped, 1u);
  EXPECT_GE(rep.analysis_boxes, 1u);
  EXPECT_EQ(rep.total, 1u);
  const auto& results = dse.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].config.vector_bits, 512);
}

TEST(DseEngine, AxesIgnoredWhenVerificationIsOff) {
  SpaceAxes axes;
  axes.core_presets = {musa::cpusim::core_high()};
  axes.cache_labels = {"64M:512K"};
  axes.freqs_ghz = {2.0};
  axes.vector_bits = {512, 8192};
  axes.mem_channels = {8};
  axes.mem_techs = {musa::dramsim::MemTech::kDdr4_2666};
  axes.core_counts = {8};
  axes.rank_counts = {256};

  musa::core::SweepOptions opts;
  opts.axes = axes;
  opts.apps = {"hydro"};
  opts.verbose = false;
  opts.verify = false;  // --no-verify sweeps the grid unlinted, as before
  musa::core::Pipeline pipeline;
  musa::core::DseEngine dse(pipeline, /*cache_path=*/"", opts);
  const musa::core::SweepReport rep = dse.sweep();
  EXPECT_EQ(rep.statically_skipped, 0u);
  EXPECT_EQ(rep.total, 2u);
}

}  // namespace
