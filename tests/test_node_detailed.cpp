// Tests for the multi-core detailed validation mode: shared-resource
// pressure must appear, and the production per-core-share approximation
// must land in the same ballpark.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/apps.hpp"
#include "common/check.hpp"
#include "core/pipeline.hpp"
#include "cpusim/node_detailed.hpp"

namespace musa::cpusim {
namespace {

NodeDetailedConfig small_node(int cores) {
  NodeDetailedConfig c;
  c.caches = cachesim::cache_32m_256k(cores);
  // Reduced scale, as in the pipeline (DESIGN.md section 8).
  c.caches.l1.size_bytes /= 4;
  c.caches.l2.size_bytes /= 8;
  c.caches.l3.size_bytes /= 8;
  c.dram_timing = dramsim::ddr4_2333();
  c.dram_channels = 4;
  c.cores = cores;
  c.instrs_per_core = 40'000;
  return c;
}

trace::KernelProfile scaled_kernel(const std::string& app) {
  trace::KernelProfile k = apps::find_app(app).kernel;
  k.vec_ws_bytes /= 8;
  for (auto& s : k.streams)
    s.ws_bytes = std::max<std::uint64_t>(256, s.ws_bytes / 8);
  return k;
}

TEST(NodeDetailed, ProducesPerCoreStats) {
  const auto r = run_node_detailed(scaled_kernel("btmz"), small_node(4));
  ASSERT_EQ(r.per_core.size(), 4u);
  for (const auto& s : r.per_core) {
    EXPECT_GT(s.cycles, 0.0);
    EXPECT_GE(s.scalar_instrs, 40'000u);
  }
  EXPECT_GT(r.avg_cpi, 0.0);
  EXPECT_GT(r.dram_gbps, 0.0);
}

TEST(NodeDetailed, SharedL3ContentionRaisesMisses) {
  // spec3d's irregular stream fits an exclusive L3 but 16 copies overflow
  // a shared one: per-core L3 MPKI must grow with sharers. Shrink the L3
  // further so the capacity wall sits between 1 and 16 working sets.
  auto cfg1 = small_node(1);
  cfg1.caches.l3.size_bytes /= 4;  // 1 MB shared array
  auto cfg16 = small_node(16);
  cfg16.caches.l3.size_bytes /= 4;
  const auto solo = run_node_detailed(scaled_kernel("spec3d"), cfg1);
  const auto shared = run_node_detailed(scaled_kernel("spec3d"), cfg16);
  EXPECT_GT(shared.l3_mpki, solo.l3_mpki * 1.2);
}

TEST(NodeDetailed, BandwidthContentionSlowsMemoryBoundCores) {
  // lulesh under 16 sharers: each core sees a fraction of the channels,
  // so CPI degrades versus running alone.
  const auto solo = run_node_detailed(scaled_kernel("lulesh"), small_node(1));
  const auto shared =
      run_node_detailed(scaled_kernel("lulesh"), small_node(16));
  EXPECT_GT(shared.avg_cpi, solo.avg_cpi * 1.1);
}

TEST(NodeDetailed, ComputeBoundKernelsInterfereLessThanMemoryBound) {
  // hydro (compute-bound) must degrade far less under sharing than lulesh
  // (bandwidth-bound). Absolute inflation includes the quantum-ordering
  // pessimism (see node_detailed.hpp), so compare relative degradation.
  const auto hydro1 = run_node_detailed(scaled_kernel("hydro"), small_node(1));
  const auto hydro8 = run_node_detailed(scaled_kernel("hydro"), small_node(8));
  const auto lulesh1 =
      run_node_detailed(scaled_kernel("lulesh"), small_node(1));
  const auto lulesh8 =
      run_node_detailed(scaled_kernel("lulesh"), small_node(8));
  const double hydro_infl = hydro8.avg_cpi / hydro1.avg_cpi;
  const double lulesh_infl = lulesh8.avg_cpi / lulesh1.avg_cpi;
  EXPECT_LT(hydro_infl, lulesh_infl);
  EXPECT_LT(hydro_infl, 2.5);
}

TEST(NodeDetailed, RejectsDegenerateConfig) {
  NodeDetailedConfig c = small_node(0);
  EXPECT_THROW(run_node_detailed(scaled_kernel("hydro"), c), SimError);
}

TEST(PipelineKernel, TinyMeasureSliceStaysFinite) {
  // measure_instrs < 4 used to truncate the perfect-memory slice to zero
  // instructions: the stall-attribution CPI divided by a zero instruction
  // count and the NaN propagated silently into every derived metric. The
  // slice is now clamped to at least one instruction and an empty perfect
  // run raises a config error naming the point instead of emitting NaN.
  core::PipelineOptions opts;
  opts.warm_instrs = 0;
  opts.measure_instrs = 2;
  core::Pipeline pipe(opts);
  const auto r = pipe.run(apps::find_app("hydro"), core::MachineConfig{});
  EXPECT_TRUE(std::isfinite(r.ipc));
  EXPECT_GT(r.ipc, 0.0);
  ASSERT_TRUE(std::isfinite(r.region_seconds));
  EXPECT_GT(r.region_seconds, 0.0);
}

}  // namespace
}  // namespace musa::cpusim
