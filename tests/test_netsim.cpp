// Unit tests for the Dimemas-style MPI replay engine.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "netsim/dimemas.hpp"
#include "trace/burst.hpp"

namespace musa::netsim {
namespace {

using trace::AppTrace;
using trace::BurstEvent;
using trace::MpiOp;

AppTrace two_ranks() {
  AppTrace t;
  t.ranks.resize(2);
  t.ranks[0].rank = 0;
  t.ranks[1].rank = 1;
  return t;
}

NetworkConfig fast_net() {
  return {.latency_s = 1e-6, .bandwidth_gbps = 10.0,
          .eager_threshold = 32 * 1024};
}

TEST(Dimemas, ComputeOnlyRanksFinishIndependently) {
  AppTrace t = two_ranks();
  t.ranks[0].events.push_back(BurstEvent::compute(1.0, 0));
  t.ranks[1].events.push_back(BurstEvent::compute(2.0, 0));
  DimemasEngine net(fast_net());
  const ReplayResult r = net.replay(t, {});
  EXPECT_NEAR(r.total_seconds, 2.0, 1e-9);
  EXPECT_NEAR(r.ranks[0].finish_s, 1.0, 1e-9);
}

TEST(Dimemas, RegionScaleRescalesComputeBursts) {
  AppTrace t = two_ranks();
  t.ranks[0].events.push_back(BurstEvent::compute(1.0, 0));
  t.ranks[1].events.push_back(BurstEvent::compute(1.0, 0));
  DimemasEngine net(fast_net());
  ReplayOptions opts;
  opts.region_scale = {0.25};
  EXPECT_NEAR(net.replay(t, opts).total_seconds, 0.25, 1e-9);
}

TEST(Dimemas, PerRegionScalesApplyIndependently) {
  AppTrace t = two_ranks();
  for (int r = 0; r < 2; ++r) {
    t.ranks[r].events.push_back(BurstEvent::compute(1.0, /*region=*/0));
    t.ranks[r].events.push_back(BurstEvent::compute(1.0, /*region=*/1));
  }
  DimemasEngine net(fast_net());
  ReplayOptions opts;
  opts.region_scale = {0.5, 2.0};
  EXPECT_NEAR(net.replay(t, opts).total_seconds, 2.5, 1e-9);
}

TEST(Dimemas, EagerSendDoesNotBlockSender) {
  AppTrace t = two_ranks();
  t.ranks[0].events.push_back(BurstEvent::mpi(MpiOp::kSend, 1, 1024));
  t.ranks[0].events.push_back(BurstEvent::compute(1.0, 0));
  t.ranks[1].events.push_back(BurstEvent::compute(0.5, 0));
  t.ranks[1].events.push_back(BurstEvent::mpi(MpiOp::kRecv, 0, 1024));
  DimemasEngine net(fast_net());
  const ReplayResult r = net.replay(t, {});
  // Sender continues after injecting 1 kB (~0.1 µs), not after the match.
  EXPECT_LT(r.ranks[0].finish_s, 1.001);
  // Receiver completes at max(post, arrival) = 0.5 s.
  EXPECT_NEAR(r.ranks[1].finish_s, 0.5, 1e-3);
}

TEST(Dimemas, RendezvousSenderPaysFullTransfer) {
  AppTrace t = two_ranks();
  const std::uint64_t big = 100 * 1024 * 1024;  // 100 MB >> eager threshold
  t.ranks[0].events.push_back(BurstEvent::mpi(MpiOp::kSend, 1, big));
  t.ranks[1].events.push_back(BurstEvent::mpi(MpiOp::kRecv, 0, big));
  DimemasEngine net(fast_net());
  const ReplayResult r = net.replay(t, {});
  const double expect = fast_net().transfer_s(big);
  EXPECT_NEAR(r.ranks[0].finish_s, expect, expect * 0.01);
  EXPECT_NEAR(r.ranks[1].finish_s, expect, expect * 0.01);
}

TEST(Dimemas, RecvWaitsForLateSender) {
  AppTrace t = two_ranks();
  t.ranks[0].events.push_back(BurstEvent::compute(2.0, 0));
  t.ranks[0].events.push_back(BurstEvent::mpi(MpiOp::kSend, 1, 8));
  t.ranks[1].events.push_back(BurstEvent::mpi(MpiOp::kRecv, 0, 8));
  DimemasEngine net(fast_net());
  const ReplayResult r = net.replay(t, {});
  EXPECT_GT(r.ranks[1].finish_s, 2.0);
  EXPECT_GT(r.ranks[1].p2p_s, 1.9);  // blocked nearly the whole time
}

TEST(Dimemas, IsendIrecvWaitRoundTrip) {
  AppTrace t = two_ranks();
  auto& r0 = t.ranks[0].events;
  auto& r1 = t.ranks[1].events;
  r0.push_back(BurstEvent::mpi(MpiOp::kIrecv, 1, 64, 0));
  r0.push_back(BurstEvent::mpi(MpiOp::kIsend, 1, 64, 1));
  r0.push_back(BurstEvent::compute(0.1, 0));
  r0.push_back(BurstEvent::mpi(MpiOp::kWait, 1, 0, 0));
  r0.push_back(BurstEvent::mpi(MpiOp::kWait, 1, 0, 1));
  r1.push_back(BurstEvent::mpi(MpiOp::kIrecv, 0, 64, 0));
  r1.push_back(BurstEvent::mpi(MpiOp::kIsend, 0, 64, 1));
  r1.push_back(BurstEvent::compute(0.1, 0));
  r1.push_back(BurstEvent::mpi(MpiOp::kWait, 0, 0, 0));
  r1.push_back(BurstEvent::mpi(MpiOp::kWait, 0, 0, 1));
  DimemasEngine net(fast_net());
  const ReplayResult r = net.replay(t, {});
  EXPECT_NEAR(r.total_seconds, 0.1, 0.01);  // overlapped exchange
}

TEST(Dimemas, BarrierSynchronisesAllRanks) {
  AppTrace t;
  t.ranks.resize(4);
  for (int i = 0; i < 4; ++i) {
    t.ranks[i].rank = i;
    t.ranks[i].events.push_back(BurstEvent::compute(0.5 * (i + 1), 0));
    t.ranks[i].events.push_back(BurstEvent::mpi(MpiOp::kBarrier, -1, 0));
    t.ranks[i].events.push_back(BurstEvent::compute(0.1, 0));
  }
  DimemasEngine net(fast_net());
  const ReplayResult r = net.replay(t, {});
  // Everyone leaves the barrier after the slowest (2.0 s) entrant.
  for (int i = 0; i < 4; ++i) EXPECT_GT(r.ranks[i].finish_s, 2.09);
  EXPECT_GT(r.ranks[0].collective_s, 1.4);  // rank 0 waited ~1.5 s
}

TEST(Dimemas, AllreduceCostsLogTreeTransfers) {
  AppTrace t;
  t.ranks.resize(8);
  for (int i = 0; i < 8; ++i) {
    t.ranks[i].rank = i;
    t.ranks[i].events.push_back(
        BurstEvent::mpi(MpiOp::kAllreduce, -1, 1024));
  }
  const NetworkConfig net_cfg = fast_net();
  DimemasEngine net(net_cfg);
  const ReplayResult r = net.replay(t, {});
  const double expect = 2.0 * 3 * net_cfg.transfer_s(1024);  // 2·log2(8)
  EXPECT_NEAR(r.total_seconds, expect, expect * 0.01);
}

TEST(Dimemas, JitterIsDeterministicAndBounded) {
  AppTrace t = two_ranks();
  for (int i = 0; i < 16; ++i) {
    t.ranks[0].events.push_back(BurstEvent::compute(1.0, 0));
    t.ranks[1].events.push_back(BurstEvent::compute(1.0, 0));
  }
  DimemasEngine net(fast_net());
  ReplayOptions opts;
  opts.region_jitter_sigma = 0.2;
  const ReplayResult a = net.replay(t, opts);
  const ReplayResult b = net.replay(t, opts);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  // Jitter perturbs but does not explode: within ±60% of nominal total.
  EXPECT_NEAR(a.total_seconds, 16.0, 16.0 * 0.6);
  EXPECT_NE(a.total_seconds, 16.0);
}

TEST(Dimemas, TimelineRecordsSegments) {
  AppTrace t = two_ranks();
  t.ranks[0].events.push_back(BurstEvent::compute(1.0, 0));
  t.ranks[0].events.push_back(BurstEvent::mpi(MpiOp::kBarrier, -1, 0));
  t.ranks[1].events.push_back(BurstEvent::compute(2.0, 0));
  t.ranks[1].events.push_back(BurstEvent::mpi(MpiOp::kBarrier, -1, 0));
  DimemasEngine net(fast_net());
  ReplayOptions opts;
  opts.record_timeline = true;
  const ReplayResult r = net.replay(t, opts);
  bool compute_seen = false, collective_seen = false;
  for (const auto& seg : r.timeline) {
    if (seg.kind == RankSeg::Kind::kCompute) compute_seen = true;
    if (seg.kind == RankSeg::Kind::kCollective) collective_seen = true;
    EXPECT_LE(seg.start, seg.end);
  }
  EXPECT_TRUE(compute_seen);
  EXPECT_TRUE(collective_seen);
}

TEST(Dimemas, DetectsUnmatchedRecv) {
  AppTrace t = two_ranks();
  t.ranks[0].events.push_back(BurstEvent::mpi(MpiOp::kRecv, 1, 64));
  // Rank 1 never sends.
  t.ranks[1].events.push_back(BurstEvent::compute(0.1, 0));
  DimemasEngine net(fast_net());
  EXPECT_THROW(net.replay(t, {}), SimError);
}

TEST(Dimemas, AccountsComputeAndMpiSeparately) {
  AppTrace t = two_ranks();
  t.ranks[0].events.push_back(BurstEvent::compute(1.0, 0));
  t.ranks[0].events.push_back(BurstEvent::mpi(MpiOp::kBarrier, -1, 0));
  t.ranks[1].events.push_back(BurstEvent::compute(3.0, 0));
  t.ranks[1].events.push_back(BurstEvent::mpi(MpiOp::kBarrier, -1, 0));
  DimemasEngine net(fast_net());
  const ReplayResult r = net.replay(t, {});
  EXPECT_NEAR(r.total_compute(), 4.0, 1e-6);
  EXPECT_NEAR(r.ranks[0].collective_s, 2.0, 0.01);
  EXPECT_NEAR(r.total_mpi(), 2.0, 0.05);
}

class RankCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankCountSweep, RingExchangeDrainsAtAnyScale) {
  const int P = GetParam();
  AppTrace t;
  t.ranks.resize(P);
  for (int r = 0; r < P; ++r) {
    t.ranks[r].rank = r;
    auto& ev = t.ranks[r].events;
    ev.push_back(BurstEvent::compute(0.01, 0));
    ev.push_back(BurstEvent::mpi(MpiOp::kIrecv, (r + P - 1) % P, 4096, 0));
    ev.push_back(BurstEvent::mpi(MpiOp::kIsend, (r + 1) % P, 4096, 1));
    ev.push_back(BurstEvent::mpi(MpiOp::kWait, -1, 0, 0));
    ev.push_back(BurstEvent::mpi(MpiOp::kWait, -1, 0, 1));
    ev.push_back(BurstEvent::mpi(MpiOp::kBarrier, -1, 0));
  }
  DimemasEngine net(fast_net());
  const ReplayResult r = net.replay(t, {});
  EXPECT_GT(r.total_seconds, 0.01);
  EXPECT_LT(r.total_seconds, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankCountSweep,
                         ::testing::Values(2, 3, 16, 64, 256));

}  // namespace
}  // namespace musa::netsim
