// Unit tests for the ISA layer: opcode classification, latencies, and the
// vector-fusion pass (paper §III SIMD model).
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "isa/instr.hpp"
#include "isa/latencies.hpp"
#include "isa/vector_fusion.hpp"
#include "trace/instr_source.hpp"

namespace musa::isa {
namespace {

Instr scalar(OpClass op) {
  Instr in;
  in.op = op;
  return in;
}

Instr lane(std::uint32_t static_id, std::uint16_t lane_idx,
           std::uint64_t addr = 0, OpClass op = OpClass::kFpAdd) {
  Instr in;
  in.op = op;
  in.static_id = static_id;
  in.lane = lane_idx;
  in.vectorizable = 1;
  in.addr = addr;
  in.size = 8;
  return in;
}

TEST(OpClass, Classification) {
  EXPECT_TRUE(is_fp(OpClass::kFpAdd));
  EXPECT_TRUE(is_fp(OpClass::kFpMul));
  EXPECT_TRUE(is_fp(OpClass::kFpDiv));
  EXPECT_FALSE(is_fp(OpClass::kLoad));
  EXPECT_TRUE(is_mem(OpClass::kLoad));
  EXPECT_TRUE(is_mem(OpClass::kStore));
  EXPECT_FALSE(is_mem(OpClass::kBranch));
}

TEST(OpClass, NamesAreUnique) {
  std::vector<std::string> names;
  for (int c = 0; c < kNumOpClasses; ++c)
    names.emplace_back(op_class_name(static_cast<OpClass>(c)));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Latencies, DivSlowerThanMul) {
  EXPECT_GT(exec_latency(OpClass::kFpDiv), exec_latency(OpClass::kFpMul));
  EXPECT_GE(exec_latency(OpClass::kFpMul), exec_latency(OpClass::kFpAdd));
  EXPECT_EQ(exec_latency(OpClass::kIntAlu), 1);
}

TEST(VectorFusion, ScalarWidthPassesThrough) {
  trace::VectorSource src({lane(1, 0), lane(1, 1), lane(1, 2)});
  VectorFusion fusion(src, /*vector_bits=*/64);
  FusedInstr op;
  int count = 0;
  while (fusion.next(op)) {
    EXPECT_EQ(op.lanes, 1);
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(VectorFusion, FusesFullGroups) {
  trace::VectorSource src({lane(1, 0), lane(1, 1), lane(1, 2), lane(1, 3)});
  VectorFusion fusion(src, /*vector_bits=*/256);  // 4 lanes of 64-bit
  FusedInstr op;
  ASSERT_TRUE(fusion.next(op));
  EXPECT_EQ(op.lanes, 4);
  EXPECT_FALSE(fusion.next(op));
  EXPECT_EQ(fusion.stats().full_groups, 1u);
  EXPECT_EQ(fusion.stats().partial_flushes, 0u);
}

TEST(VectorFusion, PartialGroupFlushedAtEnd) {
  trace::VectorSource src({lane(1, 0), lane(1, 1), lane(1, 2)});
  VectorFusion fusion(src, /*vector_bits=*/256);
  FusedInstr op;
  ASSERT_TRUE(fusion.next(op));
  EXPECT_EQ(op.lanes, 3);  // flushed partial at end of stream
  EXPECT_EQ(fusion.stats().partial_flushes, 1u);
}

TEST(VectorFusion, NonVectorizablePassesThroughImmediately) {
  Instr sc = scalar(OpClass::kIntAlu);
  trace::VectorSource src({lane(1, 0), sc, lane(1, 1)});
  VectorFusion fusion(src, /*vector_bits=*/128);
  FusedInstr op;
  ASSERT_TRUE(fusion.next(op));
  EXPECT_EQ(op.first.op, OpClass::kIntAlu);  // scalar emitted first
  ASSERT_TRUE(fusion.next(op));
  EXPECT_EQ(op.lanes, 2);  // then the completed pair
}

TEST(VectorFusion, CapturesAddressStride) {
  trace::VectorSource src(
      {lane(1, 0, 1000, OpClass::kLoad), lane(1, 1, 1008, OpClass::kLoad),
       lane(1, 2, 1016, OpClass::kLoad), lane(1, 3, 1024, OpClass::kLoad)});
  VectorFusion fusion(src, /*vector_bits=*/256);
  FusedInstr op;
  ASSERT_TRUE(fusion.next(op));
  EXPECT_EQ(op.stride, 8);
  EXPECT_EQ(op.first.addr, 1000u);
  EXPECT_EQ(op.bytes, 32u);  // 4 lanes x 8 bytes
}

TEST(VectorFusion, InterleavedGroupsFuseIndependently) {
  // Two static instructions interleaved, as in a real loop body.
  trace::VectorSource src({lane(1, 0), lane(2, 0), lane(1, 1), lane(2, 1)});
  VectorFusion fusion(src, /*vector_bits=*/128);
  FusedInstr op;
  ASSERT_TRUE(fusion.next(op));
  EXPECT_EQ(op.first.static_id, 1u);
  EXPECT_EQ(op.lanes, 2);
  ASSERT_TRUE(fusion.next(op));
  EXPECT_EQ(op.first.static_id, 2u);
  EXPECT_EQ(op.lanes, 2);
}

TEST(VectorFusion, StaleGroupsFlushPartial) {
  // One lone lane followed by > kMaxFusionDistance fillers: the group must
  // flush below target width (the short-trip-count-loop behaviour).
  std::vector<Instr> instrs;
  instrs.push_back(lane(7, 0));
  for (std::uint64_t i = 0; i < VectorFusion::kMaxFusionDistance + 10; ++i)
    instrs.push_back(scalar(OpClass::kIntAlu));
  instrs.push_back(lane(7, 1));  // arrives too late to join
  trace::VectorSource src(std::move(instrs));
  VectorFusion fusion(src, /*vector_bits=*/512);
  FusedInstr op;
  std::uint64_t fused_lane_ops = 0;
  while (fusion.next(op))
    if (op.first.static_id == 7) ++fused_lane_ops;
  EXPECT_EQ(fused_lane_ops, 2u);  // two separate partial emissions
  EXPECT_GE(fusion.stats().partial_flushes, 1u);
}

TEST(VectorFusion, ConservesScalarInstructions) {
  std::vector<Instr> instrs;
  for (int g = 0; g < 10; ++g)
    for (int l = 0; l < 7; ++l) instrs.push_back(lane(g + 1, l));
  trace::VectorSource src(std::move(instrs));
  VectorFusion fusion(src, /*vector_bits=*/256);
  FusedInstr op;
  std::uint64_t lanes = 0;
  while (fusion.next(op)) lanes += op.lanes;
  EXPECT_EQ(lanes, 70u);
  EXPECT_EQ(fusion.stats().in_instrs, 70u);
}

TEST(VectorFusion, RejectsInvalidWidths) {
  trace::VectorSource src({});
  EXPECT_THROW(VectorFusion(src, 32), musa::SimError);  // below element
  EXPECT_THROW(VectorFusion(src, 100, 64), musa::SimError);
}

class FusionWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(FusionWidthSweep, OutputCountShrinksWithWidth) {
  const int bits = GetParam();
  std::vector<Instr> instrs;
  for (int g = 0; g < 4; ++g)
    for (int l = 0; l < 64; ++l)
      instrs.push_back(lane(g + 1, l, 4096 + l * 8, OpClass::kLoad));
  trace::VectorSource src(std::move(instrs));
  VectorFusion fusion(src, bits);
  FusedInstr op;
  std::uint64_t out = 0, lanes = 0;
  while (fusion.next(op)) {
    ++out;
    lanes += op.lanes;
    EXPECT_LE(op.lanes, bits / 64);
  }
  EXPECT_EQ(lanes, 256u);  // conservation
  EXPECT_EQ(out, 256u / (bits / 64));  // exact fusion: trip divides lanes
}

INSTANTIATE_TEST_SUITE_P(Widths, FusionWidthSweep,
                         ::testing::Values(64, 128, 256, 512, 1024, 2048));

}  // namespace
}  // namespace musa::isa
