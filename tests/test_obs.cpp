// Unit tests for the observability subsystem (src/obs/): the striped
// metric registry, the lock-free span tracer, and the Chrome-trace /
// metrics.json exporters — including a round-trip through a minimal
// in-test JSON validator (the merged trace must always parse).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace musa::obs {
namespace {

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator: enough of RFC 8259 to reject
// the truncation/escaping bugs an exporter can produce (unterminated
// strings, raw control characters, trailing garbage, unbalanced braces).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const unsigned char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i)
            if (pos_ + i >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_ + i])))
              return false;
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            std::string(".eE+-").find(s_[pos_]) != std::string::npos))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool json_valid(const std::string& text) {
  return JsonChecker(text).valid();
}

// ---------------------------------------------------------------------------
// Metric registry

TEST(ObsMetrics, CounterSumsAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8, kAdds = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, RegistryCreateOrGetReturnsSameMetric) {
  auto& reg = MetricRegistry::global();
  Counter& a = reg.counter("test.obs.same");
  Counter& b = reg.counter("test.obs.same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  a.reset();
}

TEST(ObsMetrics, RegistryRejectsKindMismatch) {
  auto& reg = MetricRegistry::global();
  reg.counter("test.obs.kind_clash");
  EXPECT_THROW(reg.gauge("test.obs.kind_clash"), SimError);
  EXPECT_THROW(reg.histogram("test.obs.kind_clash"), SimError);
}

TEST(ObsMetrics, SnapshotIsNameSortedAndResetZeroes) {
  auto& reg = MetricRegistry::global();
  reg.counter("test.obs.snap.b").add(2);
  reg.counter("test.obs.snap.a").add(1);
  reg.gauge("test.obs.snap.g").set(2.5);

  const MetricsSnapshot snap = reg.snapshot();
  // std::map iteration gives ascending names — the export order contract.
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  std::uint64_t a = 0, b = 0;
  for (const auto& [name, v] : snap.counters) {
    if (name == "test.obs.snap.a") a = v;
    if (name == "test.obs.snap.b") b = v;
  }
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);

  reg.reset();
  EXPECT_EQ(reg.counter("test.obs.snap.a").value(), 0u);
  EXPECT_EQ(reg.gauge("test.obs.snap.g").value(), 0.0);
}

TEST(ObsMetrics, HistogramBucketsAndQuantiles) {
  Histogram h;
  // Bucket b holds values with bit_width == b: 0→0, 1→1, [2,3]→2, [4,7]→3.
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(7);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 13u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_NEAR(snap.mean(), 13.0 / 5.0, 1e-12);
  // Quantile bounds are bucket upper bounds: p0 lands in bucket 0, p100 in
  // bucket 3 (upper bound 2^3 - 1 = 7).
  EXPECT_EQ(snap.quantile_bound(0.0), 0u);
  EXPECT_EQ(snap.quantile_bound(1.0), 7u);
  EXPECT_EQ(snap.quantile_bound(0.5), 3u);  // median sample 2 → bucket 2

  Histogram::Snapshot empty;
  EXPECT_EQ(empty.quantile_bound(0.5), 0u);
  EXPECT_EQ(empty.mean(), 0.0);
}

// ---------------------------------------------------------------------------
// Tracer + spans

class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::shutdown(); }
};

TEST_F(TracerTest, DisabledSpansEmitNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    Span s("stage", "key");
    s.set_outcome(Outcome::kOk);
  }
  instant("marker", "key");
  TraceEvent ev;
  ev.name = "manual";
  Tracer::emit(ev);  // no-op when disarmed
  EXPECT_TRUE(Tracer::drain().empty());
  EXPECT_EQ(Tracer::now_us(), 0u);
}

TEST_F(TracerTest, SpansRecordOutcomeAttemptAndMonotoneTs) {
  Tracer::install();
  ASSERT_TRUE(Tracer::enabled());
  {
    Span s("burst", "hydro|cfg1");
    s.set_outcome(Outcome::kOk);
    s.set_attempt(2);
  }
  { Span s("kernel", "hydro|cfg1"); }
  instant("quarantine", "hydro|cfg2", Outcome::kQuarantined);

  const auto events = Tracer::drain();
  ASSERT_EQ(events.size(), 3u);
  // drain() sorts by ts; every complete event must carry dur and phase 'X'.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
  const TraceEvent* burst = nullptr;
  const TraceEvent* mark = nullptr;
  for (const auto& ev : events) {
    if (std::string(ev.name) == "burst") burst = &ev;
    if (std::string(ev.name) == "quarantine") mark = &ev;
  }
  ASSERT_NE(burst, nullptr);
  EXPECT_EQ(burst->phase, 'X');
  EXPECT_EQ(burst->outcome, Outcome::kOk);
  EXPECT_EQ(burst->attempt, 2);
  EXPECT_STREQ(burst->key, "hydro|cfg1");
  ASSERT_NE(mark, nullptr);
  EXPECT_EQ(mark->phase, 'i');
  EXPECT_EQ(mark->dur_us, 0u);
  EXPECT_EQ(mark->outcome, Outcome::kQuarantined);
}

TEST_F(TracerTest, ReinstallClearsRingAndLongKeysTruncate) {
  Tracer::install();
  { Span s("old", ""); }
  EXPECT_EQ(Tracer::drain().size(), 1u);
  Tracer::install();  // re-arm: prior events must be gone
  const std::string long_key(200, 'k');
  { Span s("fresh", long_key); }
  const auto events = Tracer::drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "fresh");
  EXPECT_EQ(std::string(events[0].key).size(), TraceEvent::kKeyBytes - 1);
}

TEST_F(TracerTest, TinyRingOverwritesOldestAndCountsDropped) {
  Tracer::install(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.name = "e";
    ev.ts_us = static_cast<std::uint64_t>(i);
    Tracer::emit(ev);
  }
  const auto events = Tracer::drain();
  EXPECT_EQ(events.size(), 4u);  // ring capacity
  EXPECT_EQ(Tracer::dropped(), 6u);
  // The *newest* events survive a wrap — the end of the sweep is the part
  // worth keeping when the ring is undersized.
  for (const auto& ev : events) EXPECT_GE(ev.ts_us, 6u);
}

TEST_F(TracerTest, ConcurrentEmittersLoseNothingWithinCapacity) {
  Tracer::install(/*capacity=*/1 << 12);
  constexpr int kThreads = 8, kEach = 200;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([] {
      for (int i = 0; i < kEach; ++i) Span s("mt", "k");
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(Tracer::drain().size(),
            static_cast<std::size_t>(kThreads) * kEach);
  EXPECT_EQ(Tracer::dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Exporters

TEST(ObsExport, TraceEventJsonEscapesHostileKeys) {
  TraceEvent ev;
  ev.name = "stage";
  ev.ts_us = 5;
  ev.dur_us = 7;
  ev.outcome = Outcome::kOk;
  set_event_key(ev, "app\"with\\quotes\tand\ncontrol\x01" "chars");
  const std::string json = trace_event_json(ev, 1000, TraceMeta{3, "shard"});
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\\\"with\\\\quotes"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1005"), std::string::npos);  // epoch applied
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"ok\""), std::string::npos);
}

TEST(ObsExport, ChromeTraceRoundTripIsValidAndOrdered) {
  Tracer::install();
  for (int i = 0; i < 4; ++i) {
    Span s("stage", "p" + std::to_string(i));
    s.set_outcome(Outcome::kOk);
  }
  const auto events = Tracer::drain();
  const std::uint64_t epoch = Tracer::epoch_unix_us();
  Tracer::shutdown();
  ASSERT_EQ(events.size(), 4u);

  const std::string path = tmp_path("obs_roundtrip.trace.json");
  write_chrome_trace(path, events, epoch, TraceMeta{1, "proc \"one\""});
  const std::string body = slurp(path);
  EXPECT_TRUE(json_valid(body)) << body;
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("process_name"), std::string::npos);
  EXPECT_NE(body.find("proc \\\"one\\\""), std::string::npos);
  // Events land in drain() order: wall-anchored ts never runs backwards.
  std::uint64_t last = 0;
  std::size_t at = 0, seen = 0;
  while ((at = body.find("\"ts\":", at)) != std::string::npos) {
    const std::uint64_t ts = std::stoull(body.substr(at + 5));
    EXPECT_GE(ts, last);
    EXPECT_GE(ts, epoch);
    last = ts;
    ++at;
    ++seen;
  }
  EXPECT_EQ(seen, 4u);  // metadata carries no ts
  std::remove(path.c_str());
}

TEST(ObsExport, SidecarMergeSplicesAllShardsIntoOneTimeline) {
  const std::string trace = tmp_path("obs_merge.trace.json");

  // Shard 0 serialises its events to a sidecar (what a non-finalizing
  // run_dse shard does)...
  TraceEvent ev0;
  ev0.name = "point";
  ev0.ts_us = 10;
  ev0.dur_us = 5;
  set_event_key(ev0, "shard0-point");
  const std::string sidecar = trace_sidecar_path(trace, 0, 2);
  EXPECT_NE(sidecar.find("shard-0-of-2.events.jsonl"), std::string::npos);
  write_trace_jsonl(sidecar, {ev0}, /*epoch_unix_us=*/1000,
                    TraceMeta{0, "shard 0"});
  const auto found = find_trace_sidecars(trace);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], sidecar);

  // ...and the finalizing shard merges it with its own events.
  TraceEvent ev1;
  ev1.name = "point";
  ev1.ts_us = 20;
  ev1.dur_us = 5;
  set_event_key(ev1, "shard1-point");
  write_chrome_trace(trace, {ev1}, /*epoch_unix_us=*/1000,
                     TraceMeta{1, "shard 1"}, found);

  const std::string body = slurp(trace);
  EXPECT_TRUE(json_valid(body)) << body;
  EXPECT_NE(body.find("shard0-point"), std::string::npos);
  EXPECT_NE(body.find("shard1-point"), std::string::npos);
  // Each shard keeps its own pid lane in the merged view.
  EXPECT_NE(body.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(body.find("\"pid\":1"), std::string::npos);
  std::remove(sidecar.c_str());
  std::remove(trace.c_str());
}

TEST(ObsExport, MetricsJsonAndSummaryTableRenderSnapshot) {
  auto& reg = MetricRegistry::global();
  reg.reset();
  reg.counter("test.obs.export.count").add(7);
  reg.histogram("test.obs.export.us").observe(100);
  reg.histogram("test.obs.export.us").observe(300);

  const std::string path = tmp_path("obs_metrics.json");
  write_metrics_json(path, reg.snapshot());
  const std::string body = slurp(path);
  EXPECT_TRUE(json_valid(body)) << body;
  EXPECT_NE(body.find("\"test.obs.export.count\": 7"), std::string::npos);
  EXPECT_NE(body.find("\"count\": 2"), std::string::npos);

  const std::string table = summary_table(reg.snapshot());
  EXPECT_NE(table.find("test.obs.export.count"), std::string::npos);
  EXPECT_NE(table.find("test.obs.export.us"), std::string::npos);
  // Zero-valued counters are elided from the one-screen summary.
  reg.counter("test.obs.export.zero");
  EXPECT_EQ(summary_table(reg.snapshot()).find("test.obs.export.zero"),
            std::string::npos);
  std::remove(path.c_str());
  reg.reset();
}

}  // namespace
}  // namespace musa::obs
