// Rejection matrix for the src/verify subsystem: every class of physically
// impossible configuration and every corrupted-result shape must be caught
// by a *named* rule, and the paper's own presets/space/results must pass.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/parallel.hpp"
#include "core/config_space.hpp"
#include "core/dse.hpp"
#include "core/pipeline.hpp"
#include "verify/config_rules.hpp"
#include "verify/invariants.hpp"

namespace musa::verify {
namespace {

/// True if any violation in `v` carries the given rule id.
bool has_rule(const std::vector<Violation>& v, const std::string& rule) {
  for (const auto& violation : v)
    if (violation.rule == rule) return true;
  return false;
}

std::string rules_of(const std::vector<Violation>& v) {
  std::string out;
  for (const auto& violation : v) out += violation.rule + " ";
  return out;
}

#define EXPECT_RULE(violations, rule)                               \
  EXPECT_TRUE(has_rule(violations, rule))                           \
      << "expected rule " << rule << ", got: " << rules_of(violations)

// ---------------------------------------------------------------------------
// The paper's own design points are clean.

TEST(ConfigRules, FullSpaceAndTable2AreClean) {
  for (const auto& config : core::ConfigSpace::full_space()) {
    const auto v = check_machine(config);
    EXPECT_TRUE(v.empty()) << config.id() << ": " << describe(v);
  }
  for (const char* app : {"spmz", "lulesh"})
    for (const auto& [label, config] : core::ConfigSpace::unconventional(app)) {
      const auto v = check_machine(config);
      EXPECT_TRUE(v.empty()) << label << ": " << describe(v);
    }
}

TEST(ConfigRules, DramPresetsAreClean) {
  for (auto tech :
       {dramsim::MemTech::kDdr4_2333, dramsim::MemTech::kDdr4_2666,
        dramsim::MemTech::kLpddr4_3200, dramsim::MemTech::kWideIo2,
        dramsim::MemTech::kHbm2}) {
    const dramsim::DramTiming t = dramsim::timing_for(tech);
    const auto v = dram_rules().check(t, t.name);
    EXPECT_TRUE(v.empty()) << t.name << ": " << describe(v);
  }
}

// ---------------------------------------------------------------------------
// Configuration rejection matrix.

TEST(ConfigRules, RejectsBrokenDramRowClosure) {
  dramsim::DramTiming t = dramsim::timing_for(dramsim::MemTech::kDdr4_2333);
  t.tRAS = t.tRCD + t.tCAS - 1.0;  // row closes before data is out
  EXPECT_RULE(dram_rules().check(t, "bad"), "dram.row-closure");
}

TEST(ConfigRules, RejectsRefreshLongerThanInterval) {
  dramsim::DramTiming t = dramsim::timing_for(dramsim::MemTech::kDdr4_2333);
  t.tRFC = t.tREFI + 1.0;  // refresh never finishes before the next one
  EXPECT_RULE(dram_rules().check(t, "bad"), "dram.refresh");
}

TEST(ConfigRules, RejectsNonPow2DramGeometry) {
  dramsim::DramTiming t = dramsim::timing_for(dramsim::MemTech::kDdr4_2333);
  t.banks = 12;
  EXPECT_RULE(dram_rules().check(t, "bad"), "dram.banks-pow2");
  t = dramsim::timing_for(dramsim::MemTech::kDdr4_2333);
  t.row_bytes = 1000;
  EXPECT_RULE(dram_rules().check(t, "bad"), "dram.row-buffer");
}

TEST(ConfigRules, RejectsNegativeDramTiming) {
  dramsim::DramTiming t = dramsim::timing_for(dramsim::MemTech::kDdr4_2333);
  t.tRCD = -1.0;
  EXPECT_RULE(dram_rules().check(t, "bad"), "dram.positive");
}

TEST(ConfigRules, RejectsNonPow2Cache) {
  core::MachineConfig c;
  cachesim::HierarchyConfig h = c.cache_config(c.cores);
  h.l2.size_bytes = 3 * 100 * 1024;  // not a power of two (but integral sets)
  EXPECT_RULE(hierarchy_rules().check(h, "bad"), "cache.pow2");
}

TEST(ConfigRules, AcceptsNonPow2SharedL3) {
  // The paper's 96 MB L3 is not a power of two; only the private levels are
  // required to be.
  core::MachineConfig c;
  c.cache_label = "96M:1M";
  const auto v = hierarchy_rules().check(c.cache_config(c.cores), "96M");
  EXPECT_TRUE(v.empty()) << describe(v);
}

TEST(ConfigRules, RejectsL2SmallerThanL1) {
  core::MachineConfig c;
  cachesim::HierarchyConfig h = c.cache_config(c.cores);
  h.l2.size_bytes = h.l1.size_bytes / 2;
  EXPECT_RULE(hierarchy_rules().check(h, "bad"), "cache.inclusion");
}

TEST(ConfigRules, RejectsAggregateL2LargerThanL3) {
  core::MachineConfig c;
  cachesim::HierarchyConfig h = c.cache_config(c.cores);
  h.num_cores = static_cast<int>(h.l3.size_bytes / h.l2.size_bytes) + 1;
  EXPECT_RULE(hierarchy_rules().check(h, "bad"), "cache.inclusion");
}

TEST(ConfigRules, RejectsTruncatingSetCount) {
  core::MachineConfig c;
  cachesim::HierarchyConfig h = c.cache_config(c.cores);
  h.l3.size_bytes += 1;  // no longer a multiple of line*ways
  EXPECT_RULE(hierarchy_rules().check(h, "bad"), "cache.geometry");
}

TEST(ConfigRules, RejectsNonMonotoneLatency) {
  core::MachineConfig c;
  cachesim::HierarchyConfig h = c.cache_config(c.cores);
  h.l1.latency_cycles = h.l3.latency_cycles + 1;
  EXPECT_RULE(hierarchy_rules().check(h, "bad"), "cache.latency-order");
}

TEST(ConfigRules, RejectsZeroWidthCore) {
  cpusim::CoreConfig c = cpusim::core_medium();
  c.issue_width = 0;
  EXPECT_RULE(core_rules().check(c, "bad"), "core.issue-width");
}

TEST(ConfigRules, RejectsRobSmallerThanDispatchGroup) {
  cpusim::CoreConfig c = cpusim::core_medium();
  c.rob = c.issue_width - 1;
  EXPECT_RULE(core_rules().check(c, "bad"), "core.rob");
}

TEST(ConfigRules, RejectsCoreWithoutUnits) {
  cpusim::CoreConfig c = cpusim::core_medium();
  c.fpus = 0;
  EXPECT_RULE(core_rules().check(c, "bad"), "core.units");
}

TEST(ConfigRules, RejectsMachineDimensionViolations) {
  core::MachineConfig c;
  c.freq_ghz = 0.0;
  EXPECT_RULE(machine_rules().check(c, "bad"), "freq.range");
  c = {};
  c.vector_bits = 96;  // not a power of two
  EXPECT_RULE(machine_rules().check(c, "bad"), "vector.width");
  c = {};
  c.mem_channels = 0;
  EXPECT_RULE(machine_rules().check(c, "bad"), "mem.channels");
  c = {};
  c.cores = 0;
  EXPECT_RULE(machine_rules().check(c, "bad"), "machine.size");
}

TEST(ConfigRules, ReportsUnknownCacheLabelAsViolation) {
  core::MachineConfig c;
  c.cache_label = "not-a-preset";
  EXPECT_RULE(check_machine(c), "cache.label");
}

TEST(ConfigRules, ValidateMachineThrowsNamingTheRule) {
  core::MachineConfig c;
  c.core.issue_width = 0;
  try {
    validate_machine(c);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("core.issue-width"),
              std::string::npos)
        << e.what();
  }
}

TEST(ConfigRules, CollectsEveryViolationNotJustTheFirst) {
  core::MachineConfig c;
  c.freq_ghz = -1.0;
  c.vector_bits = 17;
  c.core.issue_width = 0;
  const auto v = check_machine(c);
  EXPECT_RULE(v, "freq.range");
  EXPECT_RULE(v, "vector.width");
  EXPECT_RULE(v, "core.issue-width");
}

// ---------------------------------------------------------------------------
// Result invariants: a physically consistent result, then break one law at
// a time and expect the matching rule.

core::SimResult consistent_result() {
  core::SimResult r;
  r.app = "hydro";  // default MachineConfig: medium/32M:256K/2GHz/128b/4ch
  r.region_seconds = 0.5;
  r.wall_seconds = 1.0;
  r.ipc = 1.5;  // bound = 4 issue * 2 lanes = 8
  r.avg_concurrency = 16.0;
  r.busy_fraction = 0.8;
  r.contention_factor = 1.2;
  r.mpki_l1 = 10.0;
  r.mpki_l2 = 5.0;
  r.mpki_l3 = 1.0;
  r.gmem_req_s = 0.01;
  r.mem_gbps = 10.0;
  r.core_l1_w = 70.0;
  r.l2_l3_w = 20.0;
  r.dram_w = 10.0;
  r.dram_power_known = true;
  r.node_w = 100.0;
  r.energy_j = 100.0;  // node_w * wall_s
  return r;
}

TEST(ResultInvariants, ConsistentResultIsClean) {
  const auto v = check_result(consistent_result());
  EXPECT_TRUE(v.empty()) << describe(v);
}

TEST(ResultInvariants, RejectsNegativeEnergy) {
  core::SimResult r = consistent_result();
  r.energy_j = -1.0;
  EXPECT_RULE(check_result(r), "result.nonnegative");
}

TEST(ResultInvariants, RejectsNanIpc) {
  core::SimResult r = consistent_result();
  r.ipc = std::numeric_limits<double>::quiet_NaN();
  EXPECT_RULE(check_result(r), "result.finite");
}

TEST(ResultInvariants, RejectsInfinitePower) {
  core::SimResult r = consistent_result();
  r.node_w = std::numeric_limits<double>::infinity();
  EXPECT_RULE(check_result(r), "result.finite");
}

TEST(ResultInvariants, RejectsIpcAboveCorePeak) {
  core::SimResult r = consistent_result();
  r.ipc = 8.5;  // above issue_width(4) * lanes(2)
  EXPECT_RULE(check_result(r), "result.ipc-bound");
}

TEST(ResultInvariants, RejectsWallShorterThanRegion) {
  core::SimResult r = consistent_result();
  r.wall_seconds = r.region_seconds * 0.5;
  EXPECT_RULE(check_result(r), "result.time-order");
}

TEST(ResultInvariants, RejectsBandwidthAboveChannelPeak) {
  core::SimResult r = consistent_result();
  const double peak =
      dramsim::timing_for(r.config.mem_tech).peak_gbps() *
      r.config.mem_channels;
  r.mem_gbps = peak * 1.5;
  EXPECT_RULE(check_result(r), "result.bandwidth");
}

TEST(ResultInvariants, RejectsBusyFractionAboveOne) {
  core::SimResult r = consistent_result();
  r.busy_fraction = 1.1;
  EXPECT_RULE(check_result(r), "result.utilization");
}

TEST(ResultInvariants, RejectsConcurrencyAboveCoreCount) {
  core::SimResult r = consistent_result();
  r.avg_concurrency = r.config.cores + 1.0;
  EXPECT_RULE(check_result(r), "result.utilization");
}

TEST(ResultInvariants, RejectsInvertedMpki) {
  core::SimResult r = consistent_result();
  r.mpki_l2 = r.mpki_l1 * 2.0;  // L2 missing more than L1
  EXPECT_RULE(check_result(r), "result.mpki-order");
}

TEST(ResultInvariants, RejectsPowerSplitMismatch) {
  core::SimResult r = consistent_result();
  r.node_w = r.core_l1_w + r.l2_l3_w + r.dram_w + 5.0;
  EXPECT_RULE(check_result(r), "result.power-split");
}

TEST(ResultInvariants, RejectsEnergyPowerTimeMismatch) {
  core::SimResult r = consistent_result();
  r.energy_j = r.node_w * r.wall_seconds * 1.5;
  EXPECT_RULE(check_result(r), "result.energy-conservation");
}

TEST(ResultInvariants, UnknownDramPowerMustReportZero) {
  core::SimResult r = consistent_result();
  r.dram_power_known = false;  // HBM2 convention: dram_w and energy_j zeroed
  EXPECT_RULE(check_result(r), "result.power-split");
  EXPECT_RULE(check_result(r), "result.energy-conservation");
  r.dram_w = 0.0;
  r.node_w = r.core_l1_w + r.l2_l3_w;
  r.energy_j = 0.0;
  const auto v = check_result(r);
  EXPECT_TRUE(v.empty()) << describe(v);
}

TEST(ResultInvariants, VerifyResultThrowsNamingThePoint) {
  core::SimResult r = consistent_result();
  r.energy_j = -1.0;
  try {
    verify_result(r);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(core::DseEngine::point_key(r.app, r.config)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("result.nonnegative"), std::string::npos) << what;
  }
}

TEST(ResultInvariants, CheckResultsAggregatesOverTheSet) {
  std::vector<core::SimResult> rs(3, consistent_result());
  rs[1].ipc = std::numeric_limits<double>::quiet_NaN();
  rs[2].energy_j = -5.0;
  const auto v = check_results(rs);
  EXPECT_RULE(v, "result.finite");
  EXPECT_RULE(v, "result.nonnegative");
}

// ---------------------------------------------------------------------------
// Timeline checks (figure 3/4 inputs).

TEST(TimelineChecks, CleanCoreTimelinePasses) {
  std::vector<cpusim::TimelineSeg> segs = {
      {0, 0.0, 1.0, 0}, {1, 0.5, 2.0, 0}, {0, 1.0, 2.0, 1}};
  const auto v = check_core_timeline(segs, 2, 2.0, "t");
  EXPECT_TRUE(v.empty()) << describe(v);
}

TEST(TimelineChecks, RejectsOutOfRangeCore) {
  std::vector<cpusim::TimelineSeg> segs = {{5, 0.0, 1.0, 0}};
  EXPECT_RULE(check_core_timeline(segs, 2, 2.0, "t"), "timeline.core-range");
}

TEST(TimelineChecks, RejectsBackwardsSegment) {
  std::vector<cpusim::TimelineSeg> segs = {{0, 1.0, 0.5, 0}};
  EXPECT_RULE(check_core_timeline(segs, 2, 2.0, "t"), "timeline.monotone");
}

TEST(TimelineChecks, RejectsSegmentPastMakespan) {
  std::vector<cpusim::TimelineSeg> segs = {{0, 0.0, 3.0, 0}};
  EXPECT_RULE(check_core_timeline(segs, 2, 2.0, "t"), "timeline.bounds");
}

TEST(TimelineChecks, RejectsOverlappingRankSegments) {
  using netsim::RankSeg;
  std::vector<RankSeg> segs = {{0, 0.0, 1.0, RankSeg::Kind::kCompute},
                               {0, 0.5, 1.5, RankSeg::Kind::kP2p}};
  EXPECT_RULE(check_rank_timeline(segs, 1, 2.0, "t"), "timeline.overlap");
  // The same two segments on different ranks are fine.
  segs[1].rank = 1;
  const auto v = check_rank_timeline(segs, 2, 2.0, "t");
  EXPECT_TRUE(v.empty()) << describe(v);
}

TEST(TimelineChecks, RejectsOutOfRangeRank) {
  using netsim::RankSeg;
  std::vector<RankSeg> segs = {{7, 0.0, 1.0, RankSeg::Kind::kCompute}};
  EXPECT_RULE(check_rank_timeline(segs, 2, 2.0, "t"), "timeline.rank-range");
}

// ---------------------------------------------------------------------------
// DseEngine integration: a cached row that breaks an invariant is dropped
// and recomputed, exactly like crash damage.

TEST(VerifyIntegration, InvalidCachedRowIsDroppedAndRecomputed) {
  const std::string path =
      std::string(::testing::TempDir()) + "musa_verify_cache.csv";
  core::SweepOptions opts;
  opts.verbose = false;
  opts.apps = {"hydro"};
  opts.configs = {core::MachineConfig{}};
  opts.configs[0].cores = 4;
  opts.configs[0].ranks = 4;

  core::Pipeline p([] {
    core::PipelineOptions o;
    o.warm_instrs = 40'000;
    o.measure_instrs = 40'000;
    return o;
  }());

  // First sweep computes the point for real and finalizes the cache.
  {
    core::DseEngine dse(p, path, opts);
    dse.clear_cache();
    const core::SweepReport rep = dse.sweep();
    ASSERT_TRUE(rep.finalized);
    ASSERT_EQ(rep.computed, 1u);
    EXPECT_EQ(rep.invalid, 0u);
  }

  // Corrupt the cached row into a physically impossible one (negative
  // energy) without touching its CSV structure.
  CsvDoc doc = CsvDoc::load(path);
  core::SimResult r = core::DseEngine::from_row(doc.rows()[0]);
  r.energy_j = -1.0;
  CsvDoc bad(core::DseEngine::csv_header());
  bad.add_row(core::DseEngine::to_row(r));
  bad.save(path);

  // The next sweep must reject the row and recompute the point.
  {
    core::DseEngine dse(p, path, opts);
    const core::SweepReport rep = dse.sweep();
    EXPECT_TRUE(rep.finalized);
    EXPECT_EQ(rep.invalid, 1u);
    EXPECT_EQ(rep.computed, 1u);
    ASSERT_EQ(dse.results().size(), 1u);
    EXPECT_GT(dse.results()[0].energy_j, 0.0);
    dse.clear_cache();
  }
}

// ---------------------------------------------------------------------------
// MUSA_THREADS parsing: garbage must never turn into a bogus worker count.

class ThreadEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("MUSA_THREADS");
    if (prev != nullptr) saved_ = prev;
  }
  void TearDown() override {
    if (saved_.empty())
      ::unsetenv("MUSA_THREADS");
    else
      ::setenv("MUSA_THREADS", saved_.c_str(), 1);
  }
  static void set(const char* v) { ::setenv("MUSA_THREADS", v, 1); }

 private:
  std::string saved_;
};

TEST_F(ThreadEnv, HonoursValidOverride) {
  set("8");
  EXPECT_EQ(default_thread_count(), 8);
  set("1");
  EXPECT_EQ(default_thread_count(), 1);
}

TEST_F(ThreadEnv, ClampsOutOfRangeValues) {
  set("0");  // "no parallelism" clamps up to one worker
  EXPECT_EQ(default_thread_count(), 1);
  set("999999");
  EXPECT_EQ(default_thread_count(), 1024);
}

TEST_F(ThreadEnv, IgnoresGarbage) {
  const int fallback = [] {
    ::unsetenv("MUSA_THREADS");
    return default_thread_count();
  }();
  EXPECT_GE(fallback, 1);
  for (const char* bad : {"", "abc", "4x", "-3", "2.5", " 8 ", "0x10"}) {
    set(bad);
    EXPECT_EQ(default_thread_count(), fallback) << "MUSA_THREADS=" << bad;
  }
}

}  // namespace
}  // namespace musa::verify
