// Integration tests: run the full multiscale pipeline end-to-end and check
// that the paper's qualitative findings hold as invariants. These use a
// reduced trace window and few MPI ranks, so they run in seconds.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "core/config_space.hpp"
#include "core/pipeline.hpp"

namespace musa::core {
namespace {

PipelineOptions fast_options() {
  PipelineOptions o;
  o.warm_instrs = 80'000;
  o.measure_instrs = 64'000;
  return o;
}

MachineConfig base_config(int cores = 64) {
  MachineConfig c;
  c.cores = cores;
  c.ranks = 16;
  return c;
}

class PipelineFixture : public ::testing::Test {
 protected:
  Pipeline pipeline{fast_options()};

  SimResult run(const std::string& app, MachineConfig config) {
    return pipeline.run(apps::find_app(app), config);
  }
};

TEST_F(PipelineFixture, HydroScalesBestInBurstMode) {
  // Paper §V-A: HYDRO is the only app above 75% efficiency at 64 cores.
  double hydro_eff = 0.0;
  for (const auto& app : apps::registry()) {
    const BurstResult serial = pipeline.run_burst(app, 1, 4);
    const BurstResult par = pipeline.run_burst(app, 64, 4);
    const double eff = serial.region_seconds / par.region_seconds / 64.0;
    if (app.name == "hydro") {
      hydro_eff = eff;
      EXPECT_GT(eff, 0.75) << app.name;
    } else {
      EXPECT_LT(eff, 0.75) << app.name;
    }
  }
  EXPECT_GT(hydro_eff, 0.0);
}

TEST_F(PipelineFixture, MpiOverheadsReduceEfficiency) {
  // Fig. 2b lies below Fig. 2a for every application.
  for (const auto& app : apps::registry()) {
    const BurstResult serial = pipeline.run_burst(app, 1, 16);
    const BurstResult par = pipeline.run_burst(app, 64, 16);
    const double region_speedup = serial.region_seconds / par.region_seconds;
    const double wall_speedup = serial.wall_seconds / par.wall_seconds;
    EXPECT_LE(wall_speedup, region_speedup * 1.05) << app.name;
  }
}

TEST_F(PipelineFixture, WideVectorsHelpSpmzNotLulesh) {
  // Paper Fig. 5a: SP-MZ gains most from 512-bit units; LULESH gains none.
  MachineConfig narrow = base_config();
  MachineConfig wide = base_config();
  wide.vector_bits = 512;
  const double spmz_gain = run("spmz", narrow).region_seconds /
                           run("spmz", wide).region_seconds;
  const double lulesh_gain = run("lulesh", narrow).region_seconds /
                             run("lulesh", wide).region_seconds;
  EXPECT_GT(spmz_gain, 1.3);
  EXPECT_LT(lulesh_gain, 1.1);
  EXPECT_GT(spmz_gain, lulesh_gain);
}

TEST_F(PipelineFixture, OnlyLuleshGainsFromEightChannels) {
  // Paper Fig. 8a / §V-B.4.
  MachineConfig ch4 = base_config();
  MachineConfig ch8 = base_config();
  ch8.mem_channels = 8;
  const double lulesh_gain = run("lulesh", ch4).region_seconds /
                             run("lulesh", ch8).region_seconds;
  EXPECT_GT(lulesh_gain, 1.15);
  for (const std::string app : {"hydro", "btmz", "spec3d"}) {
    const double gain =
        run(app, ch4).region_seconds / run(app, ch8).region_seconds;
    EXPECT_LT(gain, 1.08) << app;
  }
}

TEST_F(PipelineFixture, LowEndCoresAreMuchSlower) {
  // Paper Fig. 7a: low-end ~35%+ slower than aggressive.
  MachineConfig lowend = base_config();
  lowend.core = cpusim::core_low_end();
  MachineConfig aggressive = base_config();
  aggressive.core = cpusim::core_aggressive();
  for (const std::string app : {"hydro", "spec3d", "btmz"}) {
    const double slowdown = run(app, lowend).region_seconds /
                            run(app, aggressive).region_seconds;
    EXPECT_GT(slowdown, 1.3) << app;
  }
}

TEST_F(PipelineFixture, MediumCoresAreCloseToAggressive) {
  // Paper §V-B.3: intermediate OoO configs lose little performance while
  // consuming substantially less power.
  MachineConfig medium = base_config();
  medium.core = cpusim::core_medium();
  MachineConfig aggressive = base_config();
  aggressive.core = cpusim::core_aggressive();
  const SimResult med = run("lulesh", medium);
  const SimResult agg = run("lulesh", aggressive);
  EXPECT_LT(med.region_seconds / agg.region_seconds, 1.15);
  EXPECT_LT(med.core_l1_w, agg.core_l1_w);
}

TEST_F(PipelineFixture, HydroWorkingSetFitsIn512kL2) {
  // Paper §V-B.2: L2-MPKI drops ~4x when L2 grows 256 kB -> 512 kB.
  // HYDRO's 512 kB-sensitive stream has a long reuse distance, so this
  // check needs the full-size trace window.
  Pipeline full;  // default (production) window
  MachineConfig small = base_config();
  MachineConfig big = base_config();
  big.cache_label = "64M:512K";
  const SimResult s = full.run(apps::find_app("hydro"), small);
  const SimResult b = full.run(apps::find_app("hydro"), big);
  EXPECT_GT(s.mpki_l2 / b.mpki_l2, 3.0);
  EXPECT_LT(b.region_seconds, s.region_seconds);
}

TEST_F(PipelineFixture, Spec3dIsCacheInsensitive) {
  MachineConfig small = base_config();
  MachineConfig big = base_config();
  big.cache_label = "96M:1M";
  const double gain = run("spec3d", small).region_seconds /
                      run("spec3d", big).region_seconds;
  EXPECT_NEAR(gain, 1.0, 0.06);
}

TEST_F(PipelineFixture, FrequencyScalesAllButMemoryBound) {
  MachineConfig slow = base_config();
  slow.freq_ghz = 1.5;
  MachineConfig fast = base_config();
  fast.freq_ghz = 3.0;
  const double btmz_gain =
      run("btmz", slow).region_seconds / run("btmz", fast).region_seconds;
  const double lulesh_gain = run("lulesh", slow).region_seconds /
                             run("lulesh", fast).region_seconds;
  EXPECT_GT(btmz_gain, 1.6);   // near-linear
  EXPECT_LT(lulesh_gain, 1.3); // bandwidth wall
}

TEST_F(PipelineFixture, FrequencyRaisesPowerSuperlinearly) {
  MachineConfig slow = base_config();
  slow.freq_ghz = 1.5;
  MachineConfig fast = base_config();
  fast.freq_ghz = 3.0;
  const SimResult s = run("btmz", slow);
  const SimResult f = run("btmz", fast);
  const double perf = s.region_seconds / f.region_seconds;
  const double power = f.node_w / s.node_w;
  EXPECT_GT(power, perf);  // paper: +1% perf costs +1.25% power
}

TEST_F(PipelineFixture, EightChannelsCostAboutTenPercentNodePower) {
  MachineConfig ch4 = base_config();
  MachineConfig ch8 = base_config();
  ch8.mem_channels = 8;
  const SimResult a = run("btmz", ch4);
  const SimResult b = run("btmz", ch8);
  EXPECT_GT(b.dram_w / a.dram_w, 1.5);  // ~2x DRAM power (background-bound)
  EXPECT_LT(b.dram_w / a.dram_w, 2.1);
  EXPECT_LT(b.node_w / a.node_w, 1.25);  // but modest node impact
}

TEST_F(PipelineFixture, IdleCoresWasteLeakage) {
  // Spec3D leaves most of a 64-core node idle: node power per unit of
  // busy work is far worse than for HYDRO (the paper's co-design message).
  const SimResult spec = run("spec3d", base_config());
  const SimResult hydro = run("hydro", base_config());
  EXPECT_LT(spec.busy_fraction, 0.4);
  EXPECT_GT(hydro.busy_fraction, 0.7);
}

TEST_F(PipelineFixture, Spec3dMostOooSensitiveAmongMedium) {
  MachineConfig medium = base_config();
  medium.core = cpusim::core_medium();
  MachineConfig aggressive = base_config();
  aggressive.core = cpusim::core_aggressive();
  const double spec_ratio = run("spec3d", medium).region_seconds /
                            run("spec3d", aggressive).region_seconds;
  const double hydro_ratio = run("hydro", medium).region_seconds /
                             run("hydro", aggressive).region_seconds;
  EXPECT_GT(spec_ratio, hydro_ratio * 0.99);
}

class EveryAppEveryCoreCount
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(EveryAppEveryCoreCount, PipelineIsDeterministic) {
  const auto [app_name, cores] = GetParam();
  PipelineOptions o;
  o.warm_instrs = 40'000;
  o.measure_instrs = 24'000;
  Pipeline p1(o), p2(o);
  MachineConfig c;
  c.cores = cores;
  c.ranks = 8;
  const SimResult a = p1.run(apps::find_app(app_name), c);
  const SimResult b = p2.run(apps::find_app(app_name), c);
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_DOUBLE_EQ(a.node_w, b.node_w);
  EXPECT_DOUBLE_EQ(a.mpki_l1, b.mpki_l1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EveryAppEveryCoreCount,
    ::testing::Combine(::testing::Values("hydro", "spmz", "btmz", "spec3d",
                                         "lulesh"),
                       ::testing::Values(1, 32, 64)));

}  // namespace
}  // namespace musa::core
