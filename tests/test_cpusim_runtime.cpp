// Unit tests for the simulated runtime system (task scheduling).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "cpusim/runtime.hpp"
#include "trace/region.hpp"

namespace musa::cpusim {
namespace {

trace::Region uniform_region(int n, double work = 1.0) {
  trace::Region r;
  for (int i = 0; i < n; ++i) r.tasks.push_back({.type = 0, .work = work});
  return r;
}

const std::vector<TaskTiming> kUnitTiming = {
    {.seconds_per_work = 1e-6, .mem_stall_frac = 0.0, .dram_gbps = 0.0}};

RuntimeConfig cores(int n, double overhead = 0.0) {
  return {.cores = n, .dispatch_overhead_s = overhead,
          .bw_capacity_gbps = 0.0};
}

TEST(RuntimeSim, SingleTaskSingleCore) {
  RuntimeSim sim;
  const NodeResult r = sim.run(uniform_region(1), kUnitTiming, cores(1));
  EXPECT_NEAR(r.seconds, 1e-6, 1e-12);
  EXPECT_NEAR(r.busy_seconds, 1e-6, 1e-12);
  ASSERT_EQ(r.timeline.size(), 1u);
  EXPECT_EQ(r.timeline[0].core, 0);
}

TEST(RuntimeSim, PerfectScalingOnIndependentTasks) {
  RuntimeSim sim;
  const NodeResult serial = sim.run(uniform_region(64), kUnitTiming, cores(1));
  const NodeResult par = sim.run(uniform_region(64), kUnitTiming, cores(32));
  EXPECT_NEAR(serial.seconds / par.seconds, 32.0, 0.5);
  EXPECT_NEAR(par.avg_concurrency, 32.0, 0.5);
}

TEST(RuntimeSim, SpeedupCappedByTaskCount) {
  RuntimeSim sim;
  const NodeResult serial = sim.run(uniform_region(8), kUnitTiming, cores(1));
  const NodeResult par = sim.run(uniform_region(8), kUnitTiming, cores(64));
  EXPECT_NEAR(serial.seconds / par.seconds, 8.0, 0.2);  // only 8 tasks
}

TEST(RuntimeSim, DependenciesSerialize) {
  trace::Region r;
  for (int i = 0; i < 10; ++i) {
    trace::TaskInstance t;
    t.work = 1.0;
    if (i > 0) t.deps.push_back(i - 1);
    r.tasks.push_back(t);
  }
  RuntimeSim sim;
  const NodeResult out = sim.run(r, kUnitTiming, cores(8));
  EXPECT_NEAR(out.seconds, 10e-6, 1e-9);  // a chain cannot parallelise
}

TEST(RuntimeSim, FanOutAfterGate) {
  // Task 0 gates 9 parallel tasks: makespan = 1 + ceil(9/9) with 9 cores.
  trace::Region r;
  r.tasks.push_back({.work = 1.0});
  for (int i = 0; i < 9; ++i) {
    trace::TaskInstance t;
    t.work = 1.0;
    t.deps.push_back(0);
    r.tasks.push_back(t);
  }
  RuntimeSim sim;
  const NodeResult out = sim.run(r, kUnitTiming, cores(9));
  EXPECT_NEAR(out.seconds, 2e-6, 1e-9);
}

TEST(RuntimeSim, CriticalTasksHoldGlobalLock) {
  trace::Region r;
  for (int i = 0; i < 16; ++i)
    r.tasks.push_back({.work = 1.0, .critical = true});
  RuntimeSim sim;
  const NodeResult out = sim.run(r, kUnitTiming, cores(16));
  EXPECT_NEAR(out.seconds, 16e-6, 1e-8);  // fully serialised by the lock
}

TEST(RuntimeSim, DispatchOverheadBottlenecks) {
  // Tasks of 1 µs, overhead 0.5 µs, many cores: the serial dispatch stage
  // caps throughput at 1 task per 0.5 µs.
  RuntimeSim sim;
  const NodeResult out =
      sim.run(uniform_region(100), kUnitTiming, cores(64, 0.5e-6));
  EXPECT_GT(out.seconds, 100 * 0.5e-6 * 0.99);
}

TEST(RuntimeSim, TimelineHasNoCoreOverlap) {
  trace::Region r = uniform_region(40);
  // Add jitter in work so the schedule is non-trivial.
  for (std::size_t i = 0; i < r.tasks.size(); ++i)
    r.tasks[i].work = 1.0 + 0.1 * static_cast<double>(i % 7);
  RuntimeSim sim;
  const NodeResult out = sim.run(r, kUnitTiming, cores(4));
  std::vector<std::vector<TimelineSeg>> per_core(4);
  for (const auto& seg : out.timeline) per_core[seg.core].push_back(seg);
  for (auto& segs : per_core) {
    std::sort(segs.begin(), segs.end(),
              [](const TimelineSeg& a, const TimelineSeg& b) {
                return a.start < b.start;
              });
    for (std::size_t i = 1; i < segs.size(); ++i)
      EXPECT_GE(segs[i].start, segs[i - 1].end - 1e-12);
  }
}

TEST(RuntimeSim, BusyEqualsTotalWork) {
  RuntimeSim sim;
  trace::Region r = uniform_region(25, 2.0);
  const NodeResult out = sim.run(r, kUnitTiming, cores(8));
  EXPECT_NEAR(out.busy_seconds, 25 * 2.0 * 1e-6, 1e-9);
  EXPECT_NEAR(out.busy_fraction(8), out.busy_seconds / (out.seconds * 8),
              1e-12);
}

TEST(RuntimeSim, BandwidthContentionDilatesMemoryTime) {
  const std::vector<TaskTiming> hungry = {
      {.seconds_per_work = 1e-6, .mem_stall_frac = 0.8, .dram_gbps = 4.0}};
  RuntimeSim sim;
  RuntimeConfig cfg = cores(32);
  cfg.bw_capacity_gbps = 40.0;  // 32 tasks x 4 GB/s = 128 >> 40
  const NodeResult out = sim.run(uniform_region(64), hungry, cfg);
  EXPECT_GT(out.contention_factor, 1.2);
  RuntimeConfig wide = cfg;
  wide.bw_capacity_gbps = 1000.0;
  const NodeResult free_run = sim.run(uniform_region(64), hungry, wide);
  EXPECT_GT(out.seconds, free_run.seconds);
  EXPECT_GT(out.mem_gbps, 0.0);
}

TEST(RuntimeSim, ImbalanceHurtsAtScale) {
  trace::Region skewed = uniform_region(64);
  skewed.tasks[0].work = 8.0;  // one straggler
  RuntimeSim sim;
  const NodeResult out = sim.run(skewed, kUnitTiming, cores(64));
  EXPECT_NEAR(out.seconds, 8e-6, 1e-9);  // bound by the straggler
}

TEST(RuntimeSim, LptBeatsFifoOnSkewedTasks) {
  // Classic LPT advantage: a long task created last ruins FIFO makespan.
  trace::Region r = uniform_region(9);
  r.tasks.push_back({.type = 0, .work = 8.0});  // straggler, created last
  RuntimeSim sim;
  RuntimeConfig fifo = cores(2);
  RuntimeConfig lpt = cores(2);
  lpt.policy = SchedPolicy::kLpt;
  const double t_fifo = sim.run(r, kUnitTiming, fifo).seconds;
  const double t_lpt = sim.run(r, kUnitTiming, lpt).seconds;
  EXPECT_LT(t_lpt, t_fifo);
  // LPT starts the straggler first: makespan ~ max(8, 9/1+...) ~ 9e-6.
  EXPECT_NEAR(t_lpt, 9e-6, 1e-6);
}

TEST(RuntimeSim, PoliciesPreserveTotalWork) {
  trace::Region r = uniform_region(33);
  for (std::size_t i = 0; i < r.tasks.size(); ++i)
    r.tasks[i].work = 0.5 + static_cast<double>(i % 5);
  RuntimeSim sim;
  for (auto policy : {SchedPolicy::kFifo, SchedPolicy::kLpt,
                      SchedPolicy::kSpt}) {
    RuntimeConfig cfg = cores(4);
    cfg.policy = policy;
    const NodeResult out = sim.run(r, kUnitTiming, cfg);
    double expect = 0.0;
    for (const auto& t : r.tasks) expect += t.work * 1e-6;
    EXPECT_NEAR(out.busy_seconds, expect, 1e-9)
        << sched_policy_name(policy);
  }
}

TEST(RuntimeSim, SptRunsShortTasksFirst) {
  trace::Region r;
  r.tasks.push_back({.type = 0, .work = 5.0});
  r.tasks.push_back({.type = 0, .work = 1.0});
  RuntimeSim sim;
  RuntimeConfig cfg = cores(1);
  cfg.policy = SchedPolicy::kSpt;
  const NodeResult out = sim.run(r, kUnitTiming, cfg);
  // The short task (index 1) starts first on the single core.
  ASSERT_EQ(out.timeline.size(), 2u);
  EXPECT_LT(out.timeline[0].end, 2e-6);
}

TEST(RuntimeSim, RejectsInvalidInput) {
  RuntimeSim sim;
  EXPECT_THROW(sim.run(trace::Region{}, kUnitTiming, cores(1)), SimError);
  EXPECT_THROW(sim.run(uniform_region(1), kUnitTiming, cores(0)), SimError);
  trace::Region bad = uniform_region(2);
  bad.tasks[1].type = 5;  // no timing entry
  EXPECT_THROW(sim.run(bad, kUnitTiming, cores(1)), SimError);
  trace::Region fwd = uniform_region(2);
  fwd.tasks[0].deps.push_back(1);  // forward dependency
  EXPECT_THROW(sim.run(fwd, kUnitTiming, cores(1)), SimError);
}

class CoreCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoreCountSweep, EfficiencyNeverExceedsOne) {
  RuntimeSim sim;
  const int n = GetParam();
  const NodeResult serial =
      sim.run(uniform_region(256), kUnitTiming, cores(1, 1e-9));
  const NodeResult par =
      sim.run(uniform_region(256), kUnitTiming, cores(n, 1e-9));
  const double speedup = serial.seconds / par.seconds;
  EXPECT_LE(speedup, n * 1.001);
  EXPECT_GE(speedup, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Cores, CoreCountSweep,
                         ::testing::Values(1, 2, 8, 32, 64, 128));

}  // namespace
}  // namespace musa::cpusim
