// Unit and property tests for the cache simulator.
#include <gtest/gtest.h>

#include "cachesim/cache.hpp"
#include "cachesim/hierarchy.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace musa::cachesim {
namespace {

TEST(Cache, ColdMissThenHit) {
  Cache c({.size_bytes = 4096, .ways = 4, .latency_cycles = 2});
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1038, false).hit);  // same 64 B line
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEvictsOldest) {
  // 2-way, pick addresses mapping to the same set.
  Cache c({.size_bytes = 2 * 64 * 4, .ways = 2});  // 4 sets, 2 ways
  const std::uint64_t set_stride = 4 * 64;  // same set every 4 lines
  c.access(0 * set_stride, false);
  c.access(1 * set_stride, false);
  c.access(0 * set_stride, false);  // refresh line 0
  c.access(2 * set_stride, false);  // evicts line 1 (LRU)
  EXPECT_TRUE(c.probe(0 * set_stride));
  EXPECT_FALSE(c.probe(1 * set_stride));
  EXPECT_TRUE(c.probe(2 * set_stride));
}

TEST(Cache, DirtyVictimReportsWriteback) {
  Cache c({.size_bytes = 2 * 64, .ways = 1});  // 2 sets, direct mapped
  c.access(0, true);  // dirty
  const AccessOutcome out = c.access(2 * 64, false);  // same set 0
  EXPECT_TRUE(out.writeback);
  EXPECT_EQ(out.victim_addr, 0u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanVictimNoWriteback) {
  Cache c({.size_bytes = 2 * 64, .ways = 1});
  c.access(0, false);
  EXPECT_FALSE(c.access(2 * 64, false).writeback);
}

TEST(Cache, NonPowerOfTwoCapacity) {
  // 96 MB-class configuration: sets are not a power of two.
  Cache c({.size_bytes = 96 * kMiB, .ways = 16});
  EXPECT_EQ(c.config().num_sets(), 96 * kMiB / 64 / 16);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) c.access(rng.next_u64() % (1ull << 40), false);
  EXPECT_EQ(c.stats().accesses, 10000u);
  EXPECT_LE(c.stats().misses, c.stats().accesses);
}

TEST(Cache, FlushClearsContents) {
  Cache c({.size_bytes = 4096, .ways = 4});
  c.access(0x40, false);
  c.flush(/*clear_stats=*/false);
  EXPECT_FALSE(c.probe(0x40));
  EXPECT_EQ(c.stats().accesses, 1u);  // stats preserved
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(Cache, RejectsDegenerateConfigs) {
  EXPECT_THROW(Cache({.size_bytes = 64, .ways = 2}), SimError);
  EXPECT_THROW(Cache({.size_bytes = 4096, .ways = 0}), SimError);
}

TEST(CacheStats, MpkiComputation) {
  CacheStats s;
  s.accesses = 1000;
  s.misses = 50;
  EXPECT_DOUBLE_EQ(s.mpki(10000), 5.0);
  EXPECT_DOUBLE_EQ(s.miss_ratio(), 0.05);
  EXPECT_DOUBLE_EQ(CacheStats{}.mpki(0), 0.0);
}

// Property: a working set that fits is fully resident after one pass.
class ResidencySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResidencySweep, FittingWorkingSetHitsAfterWarmup) {
  const std::uint64_t ws = GetParam();
  Cache c({.size_bytes = 256 * 1024, .ways = 8});
  for (std::uint64_t a = 0; a < ws; a += 64) c.access(a, false);  // warm
  c.reset_stats();
  for (std::uint64_t a = 0; a < ws; a += 64) c.access(a, false);
  if (ws <= 256 * 1024) {
    EXPECT_EQ(c.stats().misses, 0u) << "ws=" << ws;
  } else {
    EXPECT_GT(c.stats().misses, 0u) << "ws=" << ws;  // cyclic LRU thrash
  }
}

INSTANTIATE_TEST_SUITE_P(WorkingSets, ResidencySweep,
                         ::testing::Values(16 * 1024, 64 * 1024, 128 * 1024,
                                           256 * 1024, 512 * 1024,
                                           1024 * 1024));

TEST(Hierarchy, LevelsReportCorrectly) {
  MemHierarchy h(cache_32m_256k(1));
  const MemOutcome first = h.access(0, 0x10000, false);
  EXPECT_EQ(first.level, HitLevel::kMemory);
  EXPECT_TRUE(first.dram_read);
  const MemOutcome second = h.access(0, 0x10000, false);
  EXPECT_EQ(second.level, HitLevel::kL1);
  EXPECT_EQ(second.latency_cycles, h.config().l1.latency_cycles);
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  HierarchyConfig cfg = cache_32m_256k(1);
  MemHierarchy h(cfg);
  // Touch enough distinct lines to overflow L1 (32 kB) but not L2 (256 kB).
  for (std::uint64_t a = 0; a < 128 * 1024; a += 64) h.access(0, a, false);
  const MemOutcome out = h.access(0, 0, false);  // evicted from L1, in L2
  EXPECT_EQ(out.level, HitLevel::kL2);
}

TEST(Hierarchy, PrivateCachesDoNotInterfere) {
  HierarchyConfig cfg = cache_32m_256k(2);
  MemHierarchy h(cfg);
  h.access(0, 0x4000, false);
  // Core 1 misses its own L1/L2 but hits the shared L3.
  const MemOutcome out = h.access(1, 0x4000, false);
  EXPECT_EQ(out.level, HitLevel::kL3);
  EXPECT_EQ(h.l1_stats(0).accesses, 1u);
  EXPECT_EQ(h.l1_stats(1).accesses, 1u);
}

TEST(Hierarchy, WritebackCascadesToDram) {
  // Tiny custom hierarchy so evictions cascade fast.
  HierarchyConfig cfg;
  cfg.l1 = {.size_bytes = 2 * 64, .ways = 1, .latency_cycles = 1};
  cfg.l2 = {.size_bytes = 4 * 64, .ways = 1, .latency_cycles = 3};
  cfg.l3 = {.size_bytes = 8 * 64, .ways = 1, .latency_cycles = 10};
  cfg.num_cores = 1;
  MemHierarchy h(cfg);
  std::uint64_t wb = 0;
  // Dirty many conflicting lines; eventually dirty L3 victims emerge.
  for (std::uint64_t i = 0; i < 64; ++i) {
    const MemOutcome out = h.access(0, i * 8 * 64, true);
    wb += out.dram_writebacks;
  }
  EXPECT_GT(wb, 0u);
}

TEST(Hierarchy, TotalsAggregateCores) {
  MemHierarchy h(cache_32m_256k(4));
  for (int core = 0; core < 4; ++core) h.access(core, 0x9000, false);
  EXPECT_EQ(h.total_l1_stats().accesses, 4u);
  EXPECT_EQ(h.total_l1_stats().misses, 4u);
  EXPECT_EQ(h.l3_stats().accesses, 4u);
  EXPECT_EQ(h.l3_stats().misses, 1u);  // first core allocated it
}

TEST(Hierarchy, ResetStatsKeepsContents) {
  MemHierarchy h(cache_32m_256k(1));
  h.access(0, 0x2000, false);
  h.reset_stats();
  EXPECT_EQ(h.l3_stats().accesses, 0u);
  EXPECT_EQ(h.access(0, 0x2000, false).level, HitLevel::kL1);  // still warm
}

TEST(Hierarchy, RejectsBadCoreIndex) {
  // The core-index range check sits on the hottest path in the simulator,
  // so it is a MUSA_DCHECK: enforced in debug/sanitizer builds, compiled
  // out in release builds.
#if MUSA_DCHECK_ENABLED
  MemHierarchy h(cache_32m_256k(2));
  EXPECT_THROW(h.access(2, 0, false), SimError);
  EXPECT_THROW(h.access(-1, 0, false), SimError);
#else
  GTEST_SKIP() << "core-index bounds are debug-only (MUSA_DCHECK)";
#endif
}

TEST(Hierarchy, PresetsMatchTableI) {
  EXPECT_EQ(cache_32m_256k(1).l3.size_bytes, 32 * kMiB);
  EXPECT_EQ(cache_32m_256k(1).l2.size_bytes, 256 * kKiB);
  EXPECT_EQ(cache_64m_512k(1).l2.ways, 16);
  EXPECT_EQ(cache_96m_1m(1).l3.latency_cycles, 72);
  EXPECT_EQ(cache_96m_1m(1).l2.latency_cycles, 13);
}

// Property: larger caches never miss more on a repeating pattern.
class CacheMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CacheMonotonicity, BiggerIsNeverWorseOnLoops) {
  const std::uint64_t ws = 96 * 1024;
  auto misses_with = [&](std::uint64_t size) {
    Cache c({.size_bytes = size, .ways = 8});
    for (int pass = 0; pass < 4; ++pass)
      for (std::uint64_t a = 0; a < ws; a += 64)
        c.access(a, false);
    return c.stats().misses;
  };
  const std::uint64_t small = 16 * 1024 << GetParam();
  EXPECT_GE(misses_with(small), misses_with(small * 2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheMonotonicity, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace musa::cachesim
