// Tests for the DSE server (src/serve, DESIGN.md §7i): end-to-end over a
// real AF_UNIX socket — byte-identity of served rows against a batch
// sweep, the journal-backed cache and in-flight dedup, point-granular
// fairness and priority, busy backpressure, fingerprint-keyed cache
// invalidation across restarts, and the wire-hardening contract (malformed
// requests earn error replies, babbling clients earn a disconnect; the
// server never dies).
//
// Every sweep here is a handful of 40k-instruction points, so the whole
// file stays in tier-1 time while still exercising the real socket, the
// real scheduler, and the real PointRunner containment.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/journal.hpp"
#include "core/config_space.hpp"
#include "core/dse.hpp"
#include "core/pipeline.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "sweep/protocol.hpp"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace musa {
namespace {

std::string tmp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

core::PipelineOptions fast_options() {
  core::PipelineOptions o;
  o.warm_instrs = 40'000;
  o.measure_instrs = 40'000;
  return o;
}

/// Fresh options per test: unique socket + cache so tests cannot see each
/// other's state, and a clean slate on every run.
serve::ServeOptions serve_options(const std::string& tag) {
  serve::ServeOptions o;
  o.socket_path = tmp_path("musa_srv_" + tag + ".sock");
  o.cache_path = tmp_path("musa_srv_" + tag + ".csv");
  o.threads = 2;
  o.pipeline = fast_options();
  std::remove(o.cache_path.c_str());
  std::remove((o.cache_path + ".fp").c_str());
  for (const auto& j : find_journals(o.cache_path)) std::remove(j.c_str());
  return o;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  EXPECT_LT(path.size(), sizeof addr.sun_path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0)
      << "cannot connect to " << path;
  return fd;
}

/// Blocking read of the next reply line, parsed. Fails the test on EOF or
/// unparseable bytes — the server must never emit either to a well-behaved
/// client.
serve::JsonValue read_reply(sweep::LineChannel& ch) {
  std::string line;
  EXPECT_TRUE(ch.read_line(&line)) << "server closed the connection";
  serve::JsonValue v;
  std::string err;
  EXPECT_TRUE(serve::parse_json(line, &v, &err)) << err << ": " << line;
  return v;
}

bool has_field(const serve::JsonValue& v, const char* key) {
  return v.find(key) != nullptr;
}

std::string str_field(const serve::JsonValue& v, const char* key) {
  const serve::JsonValue* f = v.find(key);
  return f != nullptr ? f->string : std::string();
}

double num_field(const serve::JsonValue& v, const char* key) {
  const serve::JsonValue* f = v.find(key);
  return f != nullptr ? f->number : -1.0;
}

/// The reference answer: one point through a plain batch sweep with the
/// same options. Served rows must equal this verbatim.
std::string batch_row(const core::MachineConfig& cfg) {
  core::SweepOptions sw;
  sw.verbose = false;
  sw.apps = {"hydro"};
  sw.configs = {cfg};
  core::Pipeline pipeline(fast_options());
  core::DseEngine dse(pipeline, "", sw);
  dse.recompute();
  std::string joined;
  for (const auto& cell : core::DseEngine::to_row(dse.results().at(0))) {
    if (!joined.empty()) joined += ',';
    joined += cell;
  }
  return joined;
}

std::string point_request(const std::string& id,
                          const core::MachineConfig& cfg,
                          int priority = 0) {
  return "{\"id\":\"" + id + "\",\"op\":\"point\",\"app\":\"hydro\"," +
         "\"config\":\"" + cfg.id() + "\",\"priority\":" +
         std::to_string(priority) + "}";
}

/// A 4-point paper sub-space: everything pinned except frequency.
std::string space_request(const std::string& id, int priority = 0) {
  return "{\"id\":\"" + id + "\",\"op\":\"space\",\"app\":\"hydro\"," +
         "\"base\":\"paper\",\"priority\":" + std::to_string(priority) +
         ",\"where\":{\"core\":[\"medium\"],\"cache\":[\"32M:256K\"],"
         "\"vector\":[\"128b\"],\"channels\":[\"4ch\"],"
         "\"tech\":[\"DDR4-2333\"],\"cores\":[\"1c\"],"
         "\"ranks\":[\"256r\"]}}";
}

core::MachineConfig tiny_config() {
  // Point queries name their config by MachineConfig::id(), which does not
  // encode `ranks` (the paper grid has a single rank count) — so stay on
  // the default ranks for the id round-trip to be exact.
  core::MachineConfig c;
  c.cores = 4;
  return c;
}

TEST(Serve, PointRepliesAreByteIdenticalToBatchAndThenCached) {
  serve::ServeOptions opts = serve_options("point");
  serve::DseServer server(opts);
  server.start();

  const core::MachineConfig cfg = tiny_config();
  const std::string expect = batch_row(cfg);

  sweep::LineChannel ch(connect_unix(opts.socket_path));
  ASSERT_TRUE(ch.send(point_request("q1", cfg)));
  serve::JsonValue result = read_reply(ch);
  EXPECT_EQ(str_field(result, "key"), "hydro|" + cfg.id());
  EXPECT_EQ(str_field(result, "row"), expect);
  EXPECT_FALSE(result.find("cached")->boolean);  // computed fresh
  serve::JsonValue done = read_reply(ch);
  EXPECT_TRUE(has_field(done, "done"));
  EXPECT_EQ(num_field(done, "points"), 1.0);
  EXPECT_EQ(num_field(done, "failed"), 0.0);
  EXPECT_GT(num_field(done, "wall_us"), 0.0);

  // Ask again: same bytes, served from the journal this time.
  ASSERT_TRUE(ch.send(point_request("q2", cfg)));
  result = read_reply(ch);
  EXPECT_EQ(str_field(result, "row"), expect);
  EXPECT_TRUE(result.find("cached")->boolean);
  read_reply(ch);  // done

  server.stop();
  const serve::ServeStats s = server.stats();
  EXPECT_EQ(s.computed, 1u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.done, 2u);
}

TEST(Serve, ConcurrentClientsForOneKeyShareOneComputation) {
  serve::ServeOptions opts = serve_options("dedup");
  serve::DseServer server(opts);
  server.start();

  const core::MachineConfig cfg = tiny_config();
  constexpr int kClients = 8;
  std::vector<std::string> rows(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      sweep::LineChannel ch(connect_unix(opts.socket_path));
      std::string id = "c";
      id += std::to_string(c);
      ASSERT_TRUE(ch.send(point_request(id, cfg)));
      rows[static_cast<std::size_t>(c)] =
          str_field(read_reply(ch), "row");
      read_reply(ch);  // done
    });
  }
  for (auto& t : threads) t.join();
  server.stop();

  for (int c = 1; c < kClients; ++c) EXPECT_EQ(rows[0], rows[c]);
  EXPECT_EQ(rows[0], batch_row(cfg));
  const serve::ServeStats s = server.stats();
  // One simulation total; everyone else piggybacked on it (dedup) or read
  // the journal entry it left behind (cache hit).
  EXPECT_EQ(s.computed, 1u);
  EXPECT_EQ(s.cache_hits + s.dedup_hits, kClients - 1u);
}

TEST(Serve, SmallQueryIsNotStarvedBehindLargeJob) {
  serve::ServeOptions opts = serve_options("fair");
  opts.threads = 1;  // deterministic: one point in flight at a time
  serve::DseServer server(opts);
  server.start();

  sweep::LineChannel ch(connect_unix(opts.socket_path));
  ASSERT_TRUE(ch.send(space_request("big")));        // 4 points
  ASSERT_TRUE(ch.send(point_request("small", tiny_config())));

  // Round-robin at point granularity: the 1-point request must complete
  // long before the 4-point space drains — its done line arrives first.
  std::vector<std::string> done_order;
  while (done_order.size() < 2) {
    const serve::JsonValue v = read_reply(ch);
    if (has_field(v, "done")) done_order.push_back(str_field(v, "id"));
    ASSERT_FALSE(has_field(v, "error")) << str_field(v, "error");
  }
  EXPECT_EQ(done_order[0], "small");
  EXPECT_EQ(done_order[1], "big");
  server.stop();
}

TEST(Serve, HigherPriorityJobDrainsFirst) {
  serve::ServeOptions opts = serve_options("prio");
  opts.threads = 1;
  serve::DseServer server(opts);
  server.start();

  sweep::LineChannel ch(connect_unix(opts.socket_path));
  // The 4-point space outranks the later 1-point query: strict priority
  // tiers mean the small job waits its turn this time.
  ASSERT_TRUE(ch.send(space_request("big", /*priority=*/10)));
  ASSERT_TRUE(ch.send(point_request("small", tiny_config(),
                                    /*priority=*/0)));
  std::vector<std::string> done_order;
  while (done_order.size() < 2) {
    const serve::JsonValue v = read_reply(ch);
    if (has_field(v, "done")) done_order.push_back(str_field(v, "id"));
    ASSERT_FALSE(has_field(v, "error")) << str_field(v, "error");
  }
  EXPECT_EQ(done_order[0], "big");
  EXPECT_EQ(done_order[1], "small");
  server.stop();
}

TEST(Serve, AdmissionBackpressureIsBusyAndTransient) {
  serve::ServeOptions opts = serve_options("busy");
  opts.threads = 1;
  opts.max_queue_points = 4;
  serve::DseServer server(opts);
  server.start();

  sweep::LineChannel ch(connect_unix(opts.socket_path));
  // A request that could never fit is a permanent error, not a retryable
  // busy: 4 freqs x 2 channel counts = 8 points > capacity 4.
  ASSERT_TRUE(ch.send(
      "{\"id\":\"huge\",\"op\":\"space\",\"app\":\"hydro\","
      "\"where\":{\"core\":[\"medium\"],\"cache\":[\"32M:256K\"],"
      "\"vector\":[\"128b\"],\"tech\":[\"DDR4-2333\"],"
      "\"cores\":[\"1c\"],\"ranks\":[\"256r\"]}}"));
  serve::JsonValue v = read_reply(ch);
  ASSERT_TRUE(has_field(v, "error"));
  EXPECT_NE(str_field(v, "error").find("exceeds queue capacity"),
            std::string::npos);

  // Fill the queue, then ask for 4 more points: busy.
  ASSERT_TRUE(ch.send(space_request("first")));
  ASSERT_TRUE(ch.send(space_request("second")));
  bool saw_busy = false;
  bool first_done = false;
  while (!first_done) {
    v = read_reply(ch);
    if (has_field(v, "busy")) {
      EXPECT_EQ(str_field(v, "id"), "second");
      saw_busy = true;
    }
    if (has_field(v, "done") && str_field(v, "id") == "first")
      first_done = true;
  }
  EXPECT_TRUE(saw_busy);

  // Busy is transient: once the queue drained, the same request goes
  // through (cached now, so it completes immediately).
  ASSERT_TRUE(ch.send(space_request("retry")));
  bool retry_done = false;
  while (!retry_done) {
    v = read_reply(ch);
    ASSERT_FALSE(has_field(v, "busy"));
    ASSERT_FALSE(has_field(v, "error")) << str_field(v, "error");
    if (has_field(v, "done") && str_field(v, "id") == "retry")
      retry_done = true;
  }
  server.stop();
  EXPECT_GE(server.stats().busy, 1u);
}

TEST(Serve, FingerprintGuardsTheCacheAcrossRestarts) {
  serve::ServeOptions opts = serve_options("fp");
  const core::MachineConfig cfg = tiny_config();
  {
    serve::DseServer server(opts);
    server.start();
    sweep::LineChannel ch(connect_unix(opts.socket_path));
    ASSERT_TRUE(ch.send(point_request("warm", cfg)));
    read_reply(ch);  // result
    read_reply(ch);  // done
    server.stop();
    EXPECT_EQ(server.stats().invalidated, 0u);
  }
  {
    // Same options: the journal survives and the point is a cache hit.
    serve::DseServer server(opts);
    server.start();
    sweep::LineChannel ch(connect_unix(opts.socket_path));
    ASSERT_TRUE(ch.send("{\"id\":\"p\",\"op\":\"ping\"}"));
    EXPECT_EQ(num_field(read_reply(ch), "cache_points"), 1.0);
    ASSERT_TRUE(ch.send(point_request("hit", cfg)));
    EXPECT_TRUE(read_reply(ch).find("cached")->boolean);
    read_reply(ch);  // done
    server.stop();
    EXPECT_EQ(server.stats().invalidated, 0u);
    EXPECT_EQ(server.stats().computed, 0u);
  }
  {
    // Different model options: rows computed under the old fingerprint
    // must not be served — the stale journal is discarded on startup.
    serve::ServeOptions changed = opts;
    changed.pipeline.measure_instrs = 80'000;
    serve::DseServer server(changed);
    server.start();
    sweep::LineChannel ch(connect_unix(opts.socket_path));
    ASSERT_TRUE(ch.send("{\"id\":\"p\",\"op\":\"ping\"}"));
    EXPECT_EQ(num_field(read_reply(ch), "cache_points"), 0.0);
    server.stop();
    EXPECT_EQ(server.stats().invalidated, 1u);
  }
}

TEST(Serve, MalformedRequestsEarnErrorsNotCrashes) {
  serve::ServeOptions opts = serve_options("bad");
  serve::DseServer server(opts);
  server.start();

  sweep::LineChannel ch(connect_unix(opts.socket_path));
  const std::vector<std::string> bad = {
      "not json at all",
      "{\"id\":\"a\"",                                   // truncated
      "[1,2,3]",                                         // not an object
      "{} trailing",                                     // full-consume
      "{\"id\":\"a\",\"op\":\"explode\"}",               // unknown op
      "{\"id\":\"a\",\"op\":\"point\"}",                 // missing app
      "{\"id\":\"a\",\"op\":\"point\",\"app\":\"hydro\"}",  // no config
      "{\"id\":\"a\",\"op\":\"point\",\"app\":\"nosuch\","
      "\"config\":\"x\"}",                               // unknown app
      "{\"id\":\"a\",\"op\":\"point\",\"app\":\"hydro\","
      "\"config\":\"garbage\"}",                         // bad config id
      "{\"id\":\"a\",\"op\":\"space\",\"app\":\"hydro\","
      "\"where\":{\"flux\":[\"1x\"]}}",                  // unknown dim
      "{\"id\":\"a\",\"op\":\"space\",\"app\":\"hydro\","
      "\"base\":\"imagined\"}",                          // unknown base
      "{\"id\":\"a\",\"op\":\"point\",\"app\":\"hydro\","
      "\"config\":\"x\",\"priority\":1e9}",              // out-of-range
      "{\"id\":\"a\",\"op\":\"ping\",\"fingerprint\":\"zz\"}",  // bad hex
      "{\"id\":\"a\",\"op\":\"shutdown\"}",              // disabled
  };
  for (const auto& line : bad) {
    ASSERT_TRUE(ch.send(line)) << line;
    const serve::JsonValue v = read_reply(ch);
    EXPECT_TRUE(has_field(v, "error")) << "no error for: " << line;
  }
  // A stale fingerprint on an otherwise valid request is refused too.
  ASSERT_TRUE(ch.send(
      "{\"id\":\"a\",\"op\":\"point\",\"app\":\"hydro\",\"config\":\"" +
      tiny_config().id() + "\",\"fingerprint\":\"deadbeef\"}"));
  EXPECT_NE(str_field(read_reply(ch), "error").find("fingerprint"),
            std::string::npos);

  // After all that abuse the connection still serves: the error replies
  // are per-request, not connection-fatal.
  ASSERT_TRUE(ch.send("{\"id\":\"p\",\"op\":\"ping\"}"));
  EXPECT_TRUE(has_field(read_reply(ch), "pong"));
  server.stop();
  EXPECT_GE(server.stats().errors, bad.size());
}

TEST(Serve, BabblingClientIsDisconnectedOthersUnaffected) {
  serve::ServeOptions opts = serve_options("babble");
  serve::DseServer server(opts);
  server.start();

  // A newline-less flood one byte past the line cap: the server must cut
  // the connection instead of buffering without bound.
  {
    const int fd = connect_unix(opts.socket_path);
    const std::string chunk(4096, 'x');
    std::size_t sent = 0;
    bool peer_gone = false;
    while (sent <= sweep::LineChannel::kMaxLineBytes) {
      const ssize_t n = ::send(fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
      if (n <= 0) {
        peer_gone = true;  // reset mid-flood: the drop already happened
        break;
      }
      sent += static_cast<std::size_t>(n);
    }
    if (!peer_gone) {
      char byte = 0;
      EXPECT_EQ(::recv(fd, &byte, 1, 0), 0) << "babbler was not dropped";
    }
    ::close(fd);
  }
  // The babbler's fate is its own: a fresh client gets service.
  sweep::LineChannel ch(connect_unix(opts.socket_path));
  ASSERT_TRUE(ch.send("{\"id\":\"p\",\"op\":\"ping\"}"));
  EXPECT_TRUE(has_field(read_reply(ch), "pong"));
  server.stop();
  EXPECT_EQ(server.stats().babbling, 1u);
}

TEST(Serve, SpaceQueryPrunesInfeasibleRegionsStatically) {
  serve::ServeOptions opts = serve_options("space");
  serve::DseServer server(opts);
  server.start();

  // Extended base, everything pinned except vector width ∈ {32b, 128b}.
  // 32 bits violates the vector.width rule: the analyzer must cut it
  // before simulation and report it as skipped.
  sweep::LineChannel ch(connect_unix(opts.socket_path));
  ASSERT_TRUE(ch.send(
      "{\"id\":\"s\",\"op\":\"space\",\"app\":\"hydro\","
      "\"base\":\"extended\","
      "\"where\":{\"core\":[\"medium\"],\"cache\":[\"32M:256K\"],"
      "\"freq\":[\"2.0GHz\"],\"vector\":[\"32b\",\"128b\"],"
      "\"channels\":[\"4ch\"],\"tech\":[\"DDR4-2333\"],"
      "\"cores\":[\"1c\"],\"ranks\":[\"256r\"]}}"));
  const serve::JsonValue result = read_reply(ch);
  EXPECT_NE(str_field(result, "key").find("128b"), std::string::npos);
  const serve::JsonValue done = read_reply(ch);
  ASSERT_TRUE(has_field(done, "done"));
  EXPECT_EQ(num_field(done, "points"), 1.0);
  EXPECT_EQ(num_field(done, "skipped"), 1.0);
  server.stop();
  EXPECT_EQ(server.stats().computed, 1u);
}

}  // namespace
}  // namespace musa

#endif  // !_WIN32
