// Unit tests for network topologies and their effect on the replay engine,
// plus the common parallel_for utility.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "netsim/dimemas.hpp"
#include "netsim/topology.hpp"

namespace musa::netsim {
namespace {

TEST(Topology, CrossbarIsOneHop) {
  EXPECT_EQ(hop_count(Topology::kCrossbar, 0, 255, 256), 1);
  EXPECT_EQ(hop_count(Topology::kCrossbar, 3, 3, 256), 0);
  EXPECT_EQ(diameter(Topology::kCrossbar, 256), 1);
}

TEST(Topology, Torus2dManhattanWithWraparound) {
  // 16 nodes -> 4x4 grid. Node 0 = (0,0), node 5 = (1,1): 2 hops.
  EXPECT_EQ(hop_count(Topology::kTorus2D, 0, 5, 16), 2);
  // Node 3 = (3,0): wraparound distance 1 from node 0.
  EXPECT_EQ(hop_count(Topology::kTorus2D, 0, 3, 16), 1);
  // Opposite corner (2,2) from (0,0): 2+2 = 4 hops.
  EXPECT_EQ(hop_count(Topology::kTorus2D, 0, 10, 16), 4);
  EXPECT_EQ(diameter(Topology::kTorus2D, 16), 4);
  EXPECT_EQ(diameter(Topology::kTorus2D, 256), 16);
}

TEST(Topology, TorusIsSymmetric) {
  for (int a = 0; a < 16; ++a)
    for (int b = 0; b < 16; ++b)
      EXPECT_EQ(hop_count(Topology::kTorus2D, a, b, 16),
                hop_count(Topology::kTorus2D, b, a, 16));
}

TEST(Topology, FatTreeLeafLocality) {
  EXPECT_EQ(hop_count(Topology::kFatTree, 0, 15, 256), 2);   // same leaf
  EXPECT_EQ(hop_count(Topology::kFatTree, 0, 16, 256), 4);   // across
  EXPECT_EQ(diameter(Topology::kFatTree, 8), 2);
  EXPECT_EQ(diameter(Topology::kFatTree, 256), 4);
}

TEST(Topology, RejectsOutOfRange) {
  EXPECT_THROW(hop_count(Topology::kTorus2D, 0, 99, 16), SimError);
  EXPECT_THROW(hop_count(Topology::kCrossbar, -1, 0, 16), SimError);
}

TEST(Topology, NamesResolve) {
  EXPECT_STREQ(topology_name(Topology::kTorus2D), "torus2d");
  EXPECT_STREQ(topology_name(Topology::kBus), "bus");
}

// --- Topology effect on the replay engine ---------------------------------

trace::AppTrace ring_trace(int P, std::uint64_t bytes) {
  trace::AppTrace t;
  t.ranks.resize(P);
  for (int r = 0; r < P; ++r) {
    t.ranks[r].rank = r;
    auto& ev = t.ranks[r].events;
    ev.push_back(trace::BurstEvent::mpi(trace::MpiOp::kIrecv,
                                        (r + P - 1) % P, bytes, 0));
    ev.push_back(
        trace::BurstEvent::mpi(trace::MpiOp::kIsend, (r + 1) % P, bytes, 1));
    ev.push_back(trace::BurstEvent::mpi(trace::MpiOp::kWait, -1, 0, 0));
    ev.push_back(trace::BurstEvent::mpi(trace::MpiOp::kWait, -1, 0, 1));
  }
  return t;
}

TEST(TopologyReplay, BusSerializesTransfers) {
  const trace::AppTrace t = ring_trace(16, 1 << 20);
  NetworkConfig xbar;
  NetworkConfig bus = xbar;
  bus.topology = Topology::kBus;
  const double t_xbar =
      DimemasEngine(xbar).replay(t, {}).total_seconds;
  const double t_bus = DimemasEngine(bus).replay(t, {}).total_seconds;
  // 16 concurrent 1 MB transfers share one medium: ~16x the crossbar time.
  EXPECT_GT(t_bus / t_xbar, 8.0);
}

TEST(TopologyReplay, TorusAddsHopLatency) {
  // Tiny messages: latency-dominated, so hops show directly.
  const trace::AppTrace t = ring_trace(64, 8);
  NetworkConfig xbar;
  NetworkConfig torus = xbar;
  torus.topology = Topology::kTorus2D;
  const double t_xbar = DimemasEngine(xbar).replay(t, {}).total_seconds;
  const double t_torus = DimemasEngine(torus).replay(t, {}).total_seconds;
  // Ring neighbours are 1 hop apart in the torus too, except the wraparound
  // pair crossing rows; torus is never faster.
  EXPECT_GE(t_torus, t_xbar * 0.999);
}

TEST(TopologyReplay, CollectivesScaleWithDiameter) {
  trace::AppTrace t;
  t.ranks.resize(64);
  for (int r = 0; r < 64; ++r) {
    t.ranks[r].rank = r;
    t.ranks[r].events.push_back(
        trace::BurstEvent::mpi(trace::MpiOp::kBarrier, -1, 0));
  }
  NetworkConfig xbar;
  NetworkConfig torus = xbar;
  torus.topology = Topology::kTorus2D;
  const double t_xbar = DimemasEngine(xbar).replay(t, {}).total_seconds;
  const double t_torus = DimemasEngine(torus).replay(t, {}).total_seconds;
  EXPECT_NEAR(t_torus / t_xbar, diameter(Topology::kTorus2D, 64), 0.01);
}

}  // namespace
}  // namespace musa::netsim

namespace musa {
namespace {

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, 4, [&](std::uint64_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialFallback) {
  std::vector<int> order;
  parallel_for(10, 1, [&](std::uint64_t i) {
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(parallel_for(100, 4,
                            [](std::uint64_t i) {
                              if (i == 57) throw SimError("boom");
                            }),
               SimError);
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges) {
  int calls = 0;
  parallel_for(0, 8, [&](std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> atomic_calls{0};
  parallel_for(3, 16, [&](std::uint64_t) { ++atomic_calls; });
  EXPECT_EQ(atomic_calls.load(), 3);
}

TEST(ParallelBlocks, OneBlockPerWorkerCoversRange) {
  std::vector<std::atomic<int>> hits(100);
  std::atomic<int> blocks{0};
  parallel_blocks(100, 3, [&](std::uint64_t b, std::uint64_t e) {
    ++blocks;
    for (std::uint64_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_LE(blocks.load(), 3);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DefaultThreadCount, AtLeastOne) {
  EXPECT_GE(default_thread_count(), 1);
}

}  // namespace
}  // namespace musa
